#!/usr/bin/env bash
# CI gate: vet plus the full test suite under the race detector.
# The parallel search engine and the memoized compile caches are
# concurrency-heavy; every change must keep this script green.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "CI OK"
