#!/usr/bin/env bash
# CI gate: vet plus the full test suite under the race detector.
# The parallel search engine and the memoized compile caches are
# concurrency-heavy; every change must keep this script green.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== builtin-shadowing guard =="
# Shadowing a Go builtin (cap, len, new, ...) compiles fine but silently
# disables the builtin for the rest of the scope; it has caused real
# confusion here (countSpace's space cap). Ban declarations and parameters
# named after the common offenders. min/max are excluded: they are
# conventional local names throughout the repo and predate the builtins.
shadow_pat='(cap|len|new|copy|make|append|delete)'
if grep -rnE "(^|[^.[:alnum:]_])${shadow_pat}[[:space:]]*(:=|= [^=])" --include='*.go' . ||
   grep -rnE "[(,][[:space:]]*${shadow_pat}[[:space:]]+[*[]?[A-Za-z]" --include='*.go' .; then
  echo "identifier shadows a Go builtin (see above); rename it"
  exit 1
fi

echo "== go test -race =="
go test -race ./...

echo "== inlinelint (examples must be error-clean) =="
# The shipped MinC programs are the reference corpus for "no error
# findings": an error-severity lint regression shows up here before
# anywhere else. Warning/info interproc findings are legitimate on the
# examples (e.g. collatz reads @peak on the zero-trip-loop path), so the
# gate is the -severity error threshold, not emptiness at every severity.
lint_out="$(go run ./cmd/inlinelint -severity error -check examples/minc/*.minc examples/minc/linked/*.minc testdata/matrixsum.minc)"
if [[ -n "${lint_out}" ]]; then
  echo "${lint_out}"
  echo "inlinelint reported error findings on the example corpus"
  exit 1
fi

echo "== interproc lint differential smoke =="
# The interprocedural summary cache and the -no-interproc-cache scratch
# oracle must render byte-identical findings over the examples plus the
# interproc lint fixtures (the cache is shared across files, so this also
# exercises cross-module core reuse).
ip_files=(examples/minc/*.minc testdata/lint/interproc/*.minc)
ip_cached="$(go run ./cmd/inlinelint "${ip_files[@]}")" || true
ip_scratch="$(go run ./cmd/inlinelint -no-interproc-cache "${ip_files[@]}")" || true
if [[ "${ip_cached}" != "${ip_scratch}" ]]; then
  echo "interproc cache / -no-interproc-cache disagree:"
  diff <(echo "${ip_cached}") <(echo "${ip_scratch}") || true
  exit 1
fi

echo "== interproc summary fuzz smoke =="
# A handful of executions of the cached-vs-scratch differential fuzzer
# (full seed corpus runs under `go test -race ./...` above).
go test -run '^$' -fuzz FuzzInterprocSummaries -fuzztime 30x ./internal/analysis/interproc >/dev/null

echo "== delta-engine bench smoke =="
# One iteration each: catches compile errors or assertion failures in the
# delta-vs-full, config-identity, and pruned-vs-exhaustive benchmarks
# without paying bench time.
go test -run '^$' -bench 'DeltaVsFull|ConfigKey|OptimalPrunedVsExhaustive|FnCacheColdVsWarm|CycleRepriceVsReinterp' -benchtime=1x . >/dev/null
go test -run '^$' -bench 'ICacheNaive|ICacheIndexed' -benchtime=1x ./internal/interp >/dev/null

echo "== fn content cache differential smoke =="
# The content-addressed per-function cache and the -no-fncache legacy-key
# oracle must report identical optima on the example corpus, and a warm
# -cache-dir rerun must reproduce the cold run's stdout byte for byte.
fncache_dir="$(mktemp -d)"
trap 'rm -rf "${fncache_dir}"' EXIT
for f in examples/minc/*.minc; do
  cached="$(go run ./cmd/inlinesearch -max-space 65536 "$f" 2>/dev/null | grep -E '^(optimal:|optimal inline sites:)')" || continue
  oracle="$(go run ./cmd/inlinesearch -max-space 65536 -no-fncache "$f" 2>/dev/null | grep -E '^(optimal:|optimal inline sites:)')"
  if [[ "${cached}" != "${oracle}" ]]; then
    echo "fncache / -no-fncache disagree on ${f}:"
    diff <(echo "${cached}") <(echo "${oracle}") || true
    exit 1
  fi
done
cold_out="$(go run ./cmd/mincc -inline optimal -S -cache-dir "${fncache_dir}" testdata/matrixsum.minc 2>/dev/null)"
warm_out="$(go run ./cmd/mincc -inline optimal -S -cache-dir "${fncache_dir}" testdata/matrixsum.minc 2>/dev/null)"
if [[ "${cold_out}" != "${warm_out}" ]]; then
  echo "warm -cache-dir rerun changed mincc stdout:"
  diff <(echo "${cold_out}") <(echo "${warm_out}") || true
  exit 1
fi

echo "== pruned-search differential smoke =="
# The branch-and-bound search and the -no-prune exhaustive recursion must
# report identical optima (size and site set) on the example corpus.
for f in examples/minc/*.minc; do
  pruned="$(go run ./cmd/inlinesearch -max-space 65536 "$f" 2>/dev/null | grep -E '^(optimal:|optimal inline sites:)')" || continue
  exhaustive="$(go run ./cmd/inlinesearch -max-space 65536 -no-prune "$f" 2>/dev/null | grep -E '^(optimal:|optimal inline sites:)')"
  if [[ "${pruned}" != "${exhaustive}" ]]; then
    echo "pruned / -no-prune disagree on ${f}:"
    diff <(echo "${pruned}") <(echo "${exhaustive}") || true
    exit 1
  fi
done

echo "== cycle-delta differential smoke =="
# The incremental cycle pricer and the -no-cycledelta whole-module oracle
# must render byte-identical stdout for cycle-aware tuning on every
# example, and the pareto sweep must print a frontier. The same identity
# must hold for the pareto experiment over a scaled corpus, where the
# repricer sees thousands of probes.
for f in examples/minc/*.minc; do
  cdelta="$(go run ./cmd/inlinetune -objective weighted "$f" 2>/dev/null)"
  coracle="$(go run ./cmd/inlinetune -objective weighted -no-cycledelta "$f" 2>/dev/null)"
  if [[ "${cdelta}" != "${coracle}" ]]; then
    echo "cycle delta / -no-cycledelta disagree on ${f}:"
    diff <(echo "${cdelta}") <(echo "${coracle}") || true
    exit 1
  fi
done
pareto_out="$(go run ./cmd/inlinetune -objective pareto examples/minc/collatz.minc 2>/dev/null)"
if ! grep -q 'lambda' <<<"${pareto_out}"; then
  echo "pareto sweep printed no frontier:"
  echo "${pareto_out}"
  exit 1
fi
pexp_delta="$(go run ./cmd/inlinebench -exp pareto -scale 0.1 2>/dev/null)"
pexp_oracle="$(go run ./cmd/inlinebench -exp pareto -scale 0.1 -no-cycledelta -jobs 2 2>/dev/null)"
if [[ "${pexp_delta}" != "${pexp_oracle}" ]]; then
  echo "pareto experiment: cycle delta / -no-cycledelta disagree:"
  diff <(echo "${pexp_delta}") <(echo "${pexp_oracle}") || true
  exit 1
fi

echo "== linked-module differential smoke =="
# Cross-module (LTO-style) mode: link the whole example corpus into one
# module (every example exports `entry`, so duplicate exports exercise the
# -link-dup rename path) and require the component-sharded optimal search
# and the -no-shard merged-compiler oracle to render byte-identical stdout.
link_files=(examples/minc/*.minc examples/minc/linked/*.minc)
link_sharded="$(go run ./cmd/inlinesearch -link -link-dup rename "${link_files[@]}" 2>/dev/null)"
link_merged="$(go run ./cmd/inlinesearch -link -link-dup rename -no-shard "${link_files[@]}" 2>/dev/null)"
if [[ "${link_sharded}" != "${link_merged}" ]]; then
  echo "linked search: sharded / -no-shard disagree:"
  diff <(echo "${link_sharded}") <(echo "${link_merged}") || true
  exit 1
fi
if ! grep -q '^optimal:' <<<"${link_sharded}"; then
  echo "linked search did not report an optimum:"
  echo "${link_sharded}"
  exit 1
fi
# Sharded bench smoke: one iteration of the plan-build scaling benchmark
# (all four linked profiles, including the 10x/30x mega-modules) catches
# linker or generator regressions without paying search time.
go test -run '^$' -bench 'LinkedPlanBuildScale' -benchtime=1x ./internal/link >/dev/null

echo "== incremental re-link differential smoke =="
# The warm relink session (unchanged components replayed from the
# content-keyed result cache) and the -no-relink cold oracle (a fresh link
# plus full search per step) must render byte-identical stdout over the
# shipped edit scripts, for all three CLIs.
relink_args=(examples/minc/linked/app.minc examples/minc/linked/mathlib.minc)
relink_warm="$(go run ./cmd/inlinesearch -relink examples/minc/linked/edits.txt -link-dup rename "${relink_args[@]}" 2>/dev/null)"
relink_cold="$(go run ./cmd/inlinesearch -relink examples/minc/linked/edits.txt -no-relink -link-dup rename "${relink_args[@]}" 2>/dev/null)"
if [[ "${relink_warm}" != "${relink_cold}" ]]; then
  echo "inlinesearch: -relink / -no-relink disagree:"
  diff <(echo "${relink_warm}") <(echo "${relink_cold}") || true
  exit 1
fi
relinktune_warm="$(go run ./cmd/inlinetune -relink examples/minc/linked/edits_tune.txt -rounds 3 -link-dup rename "${relink_args[@]}" 2>/dev/null)"
relinktune_cold="$(go run ./cmd/inlinetune -relink examples/minc/linked/edits_tune.txt -rounds 3 -no-relink -link-dup rename "${relink_args[@]}" 2>/dev/null)"
if [[ "${relinktune_warm}" != "${relinktune_cold}" ]]; then
  echo "inlinetune: -relink / -no-relink disagree:"
  diff <(echo "${relinktune_warm}") <(echo "${relinktune_cold}") || true
  exit 1
fi
relinkcc_warm="$(go run ./cmd/mincc -inline optimal -relink examples/minc/linked/edits.txt -link-dup rename "${relink_args[@]}" 2>/dev/null)"
relinkcc_cold="$(go run ./cmd/mincc -inline optimal -relink examples/minc/linked/edits.txt -no-relink -link-dup rename "${relink_args[@]}" 2>/dev/null)"
if [[ "${relinkcc_warm}" != "${relinkcc_cold}" ]]; then
  echo "mincc: -relink / -no-relink disagree:"
  diff <(echo "${relinkcc_warm}") <(echo "${relinkcc_cold}") || true
  exit 1
fi
# A few executions of the random-edit-script relink differential fuzzer
# (the seed corpus runs in full under `go test -race ./...` above), plus
# one iteration of the edit-one-TU bench to catch assertion failures
# without paying bench time.
go test -run '^$' -fuzz FuzzRelinkDifferential -fuzztime 30x ./internal/link >/dev/null
go test -run '^$' -bench 'RelinkEditOneTU' -benchtime=1x ./internal/link >/dev/null

echo "== inlined service smoke =="
# Boot the daemon on an ephemeral port, replay a scaled corpus against it
# with the load harness in verify mode (cross-client byte-identity plus a
# local single-threaded recompute of every search), then SIGTERM and
# require a clean drain. The race-mode service tier itself runs above as
# part of `go test -race ./...` (internal/server + daemon_test.go).
inlined_dir="$(mktemp -d)"
trap 'rm -rf "${fncache_dir}" "${inlined_dir}"' EXIT
go build -o "${inlined_dir}/inlined" ./cmd/inlined
go build -o "${inlined_dir}/inlineload" ./cmd/inlineload
"${inlined_dir}/inlined" -addr 127.0.0.1:0 -cache-dir "${inlined_dir}/store" \
  2>"${inlined_dir}/inlined.log" &
inlined_pid=$!
inlined_addr=""
for _ in $(seq 1 100); do
  inlined_addr="$(sed -n 's#^inlined: listening on http://##p' "${inlined_dir}/inlined.log")"
  [[ -n "${inlined_addr}" ]] && break
  sleep 0.1
done
if [[ -z "${inlined_addr}" ]]; then
  echo "inlined did not report a listen address:"
  cat "${inlined_dir}/inlined.log"
  kill "${inlined_pid}" 2>/dev/null || true
  exit 1
fi
if ! "${inlined_dir}/inlineload" -addr "${inlined_addr}" -smoke; then
  echo "inlineload smoke replay failed against ${inlined_addr}"
  kill "${inlined_pid}" 2>/dev/null || true
  exit 1
fi
# Linked-session replay: two clients drive the same edit-patch-search
# script through their own /link sessions; -verify byte-compares every
# step across clients and against a cold single-threaded link+search.
if ! "${inlined_dir}/inlineload" -addr "${inlined_addr}" -linked linked-tiny -clients 2 -steps 4 -verify; then
  echo "inlineload linked replay failed against ${inlined_addr}"
  kill "${inlined_pid}" 2>/dev/null || true
  exit 1
fi
kill -TERM "${inlined_pid}"
if ! wait "${inlined_pid}"; then
  echo "inlined exited non-zero after SIGTERM:"
  cat "${inlined_dir}/inlined.log"
  exit 1
fi
if ! grep -q "drained" "${inlined_dir}/inlined.log"; then
  echo "inlined log missing drain confirmation:"
  cat "${inlined_dir}/inlined.log"
  exit 1
fi

echo "== checked-mode smoke =="
# Per-step invariant verification across all three CLIs; each run fails
# loudly (with stage/pass attribution) if any pipeline step breaks the IR.
go run ./cmd/mincc -check -inline os -run trace -arg 6 testdata/matrixsum.minc >/dev/null
go run ./cmd/inlinesearch -check testdata/matrixsum.minc >/dev/null
go run ./cmd/inlinebench -check -exp fig3 -scale 0.05 >/dev/null

echo "CI OK"
