#!/usr/bin/env bash
# CI gate: vet plus the full test suite under the race detector.
# The parallel search engine and the memoized compile caches are
# concurrency-heavy; every change must keep this script green.
set -euo pipefail
cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== inlinelint (examples must be clean) =="
# The shipped MinC programs are the reference corpus for "no findings":
# a lint regression (false positive) shows up here before anywhere else.
lint_out="$(go run ./cmd/inlinelint -check examples/minc/*.minc testdata/matrixsum.minc)"
if [[ -n "${lint_out}" ]]; then
  echo "${lint_out}"
  echo "inlinelint reported findings on the clean example corpus"
  exit 1
fi

echo "== delta-engine bench smoke =="
# One iteration each: catches compile errors or assertion failures in the
# delta-vs-full and config-identity benchmarks without paying bench time.
go test -run '^$' -bench 'DeltaVsFull|ConfigKey' -benchtime=1x . >/dev/null

echo "== checked-mode smoke =="
# Per-step invariant verification across all three CLIs; each run fails
# loudly (with stage/pass attribution) if any pipeline step breaks the IR.
go run ./cmd/mincc -check -inline os -run trace -arg 6 testdata/matrixsum.minc >/dev/null
go run ./cmd/inlinesearch -check testdata/matrixsum.minc >/dev/null
go run ./cmd/inlinebench -check -exp fig3 -scale 0.05 >/dev/null

echo "CI OK"
