module optinline

go 1.22
