package experiments

import (
	"fmt"

	"optinline/internal/autotune"
	"optinline/internal/stats"
)

// perBenchmarkRel renders a per-benchmark table of autotuned size relative
// to the -Os heuristic, given a per-file tuned-size selector.
func (h *Harness) perBenchmarkRel(sizeOf func(fd *fileData) int) (*stats.Table, []float64, float64) {
	var tb stats.Table
	tb.Header = []string{"benchmark", "-Os size", "autotuned", "rel size"}
	var rels []float64
	var totalHeur, totalTuned float64
	for _, bench := range h.order {
		files := h.byName[bench]
		if len(files) == 0 {
			continue
		}
		var hsum, tsum float64
		for _, fd := range files {
			hsum += float64(fd.heurSize)
			tsum += float64(sizeOf(fd))
		}
		rel := tsum / hsum * 100
		rels = append(rels, rel)
		totalHeur += hsum
		totalTuned += tsum
		tb.AddRow(bench, int(hsum), int(tsum), fmt.Sprintf("%.1f%%", rel))
	}
	return &tb, rels, totalTuned / totalHeur * 100
}

// Fig10 reproduces Figure 10: one round of clean-slate autotuning vs the
// -Os heuristic. The paper: 14 of 20 benchmarks shrink, median 97.95%,
// largest single-benchmark reduction 27.6%.
func (h *Harness) Fig10() Result {
	h.ensureTuned()
	tb, rels, total := h.perBenchmarkRel(func(fd *fileData) int {
		return roundSize(fd.clean, 1)
	})
	shrink, grow := countDirections(rels)
	text := fmt.Sprintf(
		"Clean-slate autotuning (1 round) vs -Os heuristic.\n\n%s\nBenchmarks shrinking: %d, inflating: %d (paper: 14 shrink, 5 inflate).\nMedian relative size: %.2f%% (paper 97.95%%). Total: %.2f%%.\n",
		tb.String(), shrink, grow, stats.Median(rels), total)
	return Result{ID: "fig10", Title: "Clean-slate autotuning (Figure 10)", Text: text}
}

// Fig12 reproduces Figure 12: heuristic-initialized autotuning. The paper:
// 19 of 20 benchmarks shrink, median 97.6%, total 95.14%.
func (h *Harness) Fig12() Result {
	h.ensureTuned()
	tb, rels, total := h.perBenchmarkRel(func(fd *fileData) int {
		return roundSize(fd.init, 1)
	})
	shrink, grow := countDirections(rels)
	text := fmt.Sprintf(
		"Heuristic-initialized autotuning (1 round) vs -Os heuristic.\n\n%s\nBenchmarks shrinking: %d, inflating: %d (paper: 19 shrink, 0 inflate).\nMedian relative size: %.2f%% (paper 97.6%%). Total: %.2f%% (paper 95.14%%).\n",
		tb.String(), shrink, grow, stats.Median(rels), total)
	return Result{ID: "fig12", Title: "Heuristic-initialized autotuning (Figure 12)", Text: text}
}

// Table3 reproduces Table 3: benchmarks where clean-slate beats the
// heuristic-initialized variant (local-minimum effect).
func (h *Harness) Table3() Result {
	h.ensureTuned()
	var tb stats.Table
	tb.Header = []string{"benchmark", "clean slate", "heuristic-init"}
	worse := 0
	for _, bench := range h.order {
		files := h.byName[bench]
		if len(files) == 0 {
			continue
		}
		var hsum, csum, isum float64
		for _, fd := range files {
			hsum += float64(fd.heurSize)
			csum += float64(roundSize(fd.clean, 1))
			isum += float64(roundSize(fd.init, 1))
		}
		if csum < isum {
			worse++
			tb.AddRow(bench,
				fmt.Sprintf("%.1f%%", csum/hsum*100),
				fmt.Sprintf("%.1f%%", isum/hsum*100))
		}
	}
	text := fmt.Sprintf(
		"Benchmarks faring worse with heuristic initialization (paper lists 7,\ne.g. mfc 72.4%% clean vs 79%% initialized).\n\n%s\n%d of %d benchmarks prefer the clean slate.\n",
		tb.String(), worse, len(h.order))
	return Result{ID: "tab3", Title: "Clean slate vs heuristic-init (Table 3)", Text: text}
}

// Fig15 reproduces Figure 15: per-file best of clean-slate and
// heuristic-initialized tuning. Paper: median 96.4%, total 93.95%.
func (h *Harness) Fig15() Result {
	h.ensureTuned()
	tb, rels, total := h.perBenchmarkRel(func(fd *fileData) int {
		return mini(roundSize(fd.clean, 1), roundSize(fd.init, 1))
	})
	text := fmt.Sprintf(
		"Best of clean-slate and heuristic-initialized (1 round each), per file.\n\n%s\nMedian relative size: %.2f%% (paper 96.4%%). Total: %.2f%% (paper 93.95%%).\n",
		tb.String(), stats.Median(rels), total)
	return Result{ID: "fig15", Title: "Combined autotuning (Figure 15)", Text: text}
}

// Fig16 reproduces Figure 16: how often the (combined, 1-round) autotuner
// finds the true optimum on the exhaustive set. Paper: 81% vs LLVM's 46%.
func (h *Harness) Fig16() Result {
	set := h.exhaustiveSet()
	h.ensureTuned()
	tunerOpt, heurOpt := 0, 0
	var tunerOver []float64
	for _, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		best := mini(roundSize(fd.clean, 1), roundSize(fd.init, 1))
		if best <= opt.Size {
			tunerOpt++
		} else {
			tunerOver = append(tunerOver, (float64(best)/float64(opt.Size)-1)*100)
		}
		if fd.heurSize <= opt.Size {
			heurOpt++
		}
	}
	var tb stats.Table
	tb.Header = []string{"strategy", "optimal found", "share", "paper"}
	tb.AddRow("-Os heuristic", heurOpt, pct(float64(heurOpt), float64(len(set))), "46%")
	tb.AddRow("local autotuner", tunerOpt, pct(float64(tunerOpt), float64(len(set))), "81%")
	text := fmt.Sprintf(
		"Optimality of local autotuning on %d exhaustively searched files.\n\n%s\nMedian overhead of non-optimal autotuned files: %.2f%%.\n",
		len(set), tb.String(), stats.Median(tunerOver))
	return Result{ID: "fig16", Title: "Optimality of autotuning (Figure 16)", Text: text}
}

// Fig17 reproduces Figure 17: round-based autotuning, per-round medians for
// both initializations. Paper medians: clean 97.95/97.02/96.46/96.38,
// init 97.63/96.39/96.21/96.1.
func (h *Harness) Fig17() Result {
	h.ensureTuned()
	rounds := h.cfg.Rounds
	var tb stats.Table
	header := []string{"benchmark", "init"}
	for r := 1; r <= rounds; r++ {
		header = append(header, fmt.Sprintf("round %d", r))
	}
	tb.Header = header
	medians := func(sel func(fd *fileData) autotune.Result) []float64 {
		var meds []float64
		for r := 1; r <= rounds; r++ {
			var rels []float64
			for _, bench := range h.order {
				files := h.byName[bench]
				if len(files) == 0 {
					continue
				}
				var hsum, tsum float64
				for _, fd := range files {
					hsum += float64(fd.heurSize)
					tsum += float64(bestUpTo(sel(fd), r))
				}
				rels = append(rels, tsum/hsum*100)
			}
			meds = append(meds, stats.Median(rels))
		}
		return meds
	}
	for _, bench := range h.order {
		files := h.byName[bench]
		if len(files) == 0 {
			continue
		}
		for _, kind := range []string{"clean", "llvm-init"} {
			row := []interface{}{bench, kind}
			var hsum float64
			for _, fd := range files {
				hsum += float64(fd.heurSize)
			}
			for r := 1; r <= rounds; r++ {
				var tsum float64
				for _, fd := range files {
					if kind == "clean" {
						tsum += float64(bestUpTo(fd.clean, r))
					} else {
						tsum += float64(bestUpTo(fd.init, r))
					}
				}
				row = append(row, fmt.Sprintf("%.1f%%", tsum/hsum*100))
			}
			tb.AddRow(row...)
		}
	}
	cleanMeds := medians(func(fd *fileData) autotune.Result { return fd.clean })
	initMeds := medians(func(fd *fileData) autotune.Result { return fd.init })
	text := fmt.Sprintf(
		"Round-based autotuning vs -Os (best configuration up to each round).\n\n%s\nPer-round medians, clean slate: %s (paper 97.95/97.02/96.46/96.38)\nPer-round medians, llvm-init:   %s (paper 97.63/96.39/96.21/96.10)\n",
		tb.String(), fmtMeds(cleanMeds), fmtMeds(initMeds))
	return Result{ID: "fig17", Title: "Round-based autotuning (Figure 17)", Text: text}
}

// Table4 reproduces Table 4: the per-round decision trace of one file whose
// size keeps improving across rounds.
func (h *Harness) Table4() Result {
	h.ensureTuned()
	// Pick the file with the largest total improvement across rounds of the
	// initialized session with at least 2 effective rounds.
	var pick *fileData
	bestGain := 1.0
	for _, fd := range h.files {
		if len(fd.init.Rounds) < 2 || fd.heurSize == 0 {
			continue
		}
		gain := float64(fd.init.FinalSize) / float64(fd.heurSize)
		if gain < bestGain {
			bestGain = gain
			pick = fd
		}
	}
	if pick == nil {
		return Result{ID: "tab4", Title: "Per-round trace (Table 4)", Text: "no multi-round file at this scale\n"}
	}
	var tb stats.Table
	tb.Header = []string{"", "heuristic"}
	for _, r := range pick.init.Rounds {
		tb.Header = append(tb.Header, fmt.Sprintf("round %d", r.Round))
	}
	inl := []interface{}{"# inlined", pick.heurCfg.InlineCount()}
	non := []interface{}{"# non inlined", len(pick.graph.Sites()) - pick.heurCfg.InlineCount()}
	rel := []interface{}{"rel. size", "100%"}
	for _, r := range pick.init.Rounds {
		inl = append(inl, r.Inlined)
		non = append(non, r.NotInlined)
		rel = append(rel, fmt.Sprintf("%.1f%%", float64(r.Size)/float64(pick.heurSize)*100))
	}
	tb.AddRow(inl...)
	tb.AddRow(non...)
	tb.AddRow(rel...)
	text := fmt.Sprintf("Heuristic-initialized tuning trace of %s (paper's example:\n100%% -> 71.6%% -> 41.2%% -> 41.4%% -> 35.8%%).\n\n%s", pick.file.Name, tb.String())
	return Result{ID: "tab4", Title: "Per-round inlining changes (Table 4)", Text: text}
}

// Fig18 reproduces Figure 18: best of both initializations with all rounds.
// Paper: median 95.65%, total 92.95% (a 7.05% improvement).
func (h *Harness) Fig18() Result {
	h.ensureTuned()
	tb, rels, total := h.perBenchmarkRel(func(fd *fileData) int {
		return mini(fd.clean.Size, fd.init.Size)
	})
	text := fmt.Sprintf(
		"Round-based (x%d) clean-slate + heuristic-init combined vs -Os.\n\n%s\nMedian relative size: %.2f%% (paper 95.65%%). Total: %.2f%% (paper 92.95%%).\n",
		h.cfg.Rounds, tb.String(), stats.Median(rels), total)
	return Result{ID: "fig18", Title: "Combined round-based autotuning (Figure 18)", Text: text}
}

// Fig11, Fig13, Fig14 are the case-study call graphs. Each picks the file
// that best exhibits the phenomenon and renders both configurations as DOT.

// Fig11: the local pairwise scope misses group-DCE opportunities that the
// heuristic's eager inlining happens to capture (tuned > heuristic).
func (h *Harness) Fig11() Result {
	h.ensureTuned()
	fd := h.pickExtreme(func(fd *fileData) float64 {
		return ratio(roundSize(fd.clean, 1), fd.heurSize) // largest = worst tuner
	})
	if fd == nil {
		return Result{ID: "fig11", Title: "Local scope limitation (Figure 11)", Text: "corpus too small\n"}
	}
	text := fmt.Sprintf(
		"%s: clean-slate autotuned size is %d%% of the heuristic's.\nThe local, one-edge-at-a-time scope cannot discover wins that require\ninlining several call sites of the same callee at once.\n\n%s",
		fd.file.Name, int(ratio(roundSize(fd.clean, 1), fd.heurSize)*100),
		fd.graph.SideBySideDOT(fd.file.Name, "autotuned", fd.clean.Config, "heuristic", fd.heurCfg))
	return Result{ID: "fig11", Title: "Local scope limitation (Figure 11)", Text: text}
}

// Fig13: a file that fares better with clean-slate tuning (the heuristic's
// decisions are a local minimum the tuner cannot escape).
func (h *Harness) Fig13() Result {
	h.ensureTuned()
	fd := h.pickExtreme(func(fd *fileData) float64 {
		return ratio(roundSize(fd.init, 1), roundSize(fd.clean, 1))
	})
	if fd == nil {
		return Result{ID: "fig13", Title: "Clean slate wins (Figure 13)", Text: "corpus too small\n"}
	}
	text := fmt.Sprintf(
		"%s: clean slate %d%% vs heuristic-init %d%% (relative to -Os 100%%).\n\n%s",
		fd.file.Name,
		int(ratio(roundSize(fd.clean, 1), fd.heurSize)*100),
		int(ratio(roundSize(fd.init, 1), fd.heurSize)*100),
		fd.graph.SideBySideDOT(fd.file.Name, "clean-slate", fd.clean.Config, "llvm-init", fd.init.Config))
	return Result{ID: "fig13", Title: "Clean slate wins (Figure 13)", Text: text}
}

// Fig14: a file that fares better with heuristic-initialized tuning.
func (h *Harness) Fig14() Result {
	h.ensureTuned()
	fd := h.pickExtreme(func(fd *fileData) float64 {
		return ratio(roundSize(fd.clean, 1), roundSize(fd.init, 1))
	})
	if fd == nil {
		return Result{ID: "fig14", Title: "Heuristic-init wins (Figure 14)", Text: "corpus too small\n"}
	}
	text := fmt.Sprintf(
		"%s: heuristic-init %d%% vs clean slate %d%% (relative to -Os 100%%).\n\n%s",
		fd.file.Name,
		int(ratio(roundSize(fd.init, 1), fd.heurSize)*100),
		int(ratio(roundSize(fd.clean, 1), fd.heurSize)*100),
		fd.graph.SideBySideDOT(fd.file.Name, "llvm-init", fd.init.Config, "clean-slate", fd.clean.Config))
	return Result{ID: "fig14", Title: "Heuristic-init wins (Figure 14)", Text: text}
}

// pickExtreme returns the file maximizing score among files with a usable
// number of edges, or nil.
func (h *Harness) pickExtreme(score func(fd *fileData) float64) *fileData {
	var best *fileData
	bestScore := 0.0
	for _, fd := range h.files {
		if fd.edges < 2 || fd.edges > 40 {
			continue
		}
		if s := score(fd); s > bestScore {
			best, bestScore = fd, s
		}
	}
	return best
}

func countDirections(rels []float64) (shrink, grow int) {
	for _, r := range rels {
		if r < 99.95 {
			shrink++
		} else if r > 100.05 {
			grow++
		}
	}
	return shrink, grow
}

func fmtMeds(meds []float64) string {
	s := ""
	for i, m := range meds {
		if i > 0 {
			s += "/"
		}
		s += fmt.Sprintf("%.2f", m)
	}
	return s
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
