package experiments

import (
	"strings"
	"testing"
)

// smallHarness builds a scaled-down corpus shared by the tests in this file.
var harnessCache *Harness

func smallHarness(t *testing.T) *Harness {
	t.Helper()
	if harnessCache == nil {
		harnessCache = NewHarness(Config{Scale: 0.3, ExhaustiveCap: 1 << 10, Rounds: 2})
	}
	return harnessCache
}

func TestHarnessBuildsCorpus(t *testing.T) {
	h := smallHarness(t)
	if len(h.Benchmarks()) != 20 {
		t.Fatalf("benchmarks=%d", len(h.Benchmarks()))
	}
	if len(h.Files()) == 0 {
		t.Fatal("no non-trivial files")
	}
	for _, fd := range h.Files() {
		if fd.edges == 0 {
			t.Fatalf("%s: trivial file leaked into non-trivial set", fd.file.Name)
		}
		if fd.noInlineSize <= 0 || fd.heurSize <= 0 {
			t.Fatalf("%s: sizes not positive", fd.file.Name)
		}
	}
}

func TestInliningHelpsOverall(t *testing.T) {
	// Figure 1's premise: the heuristic's inlining shrinks the corpus
	// overall relative to no inlining.
	h := smallHarness(t)
	var off, on float64
	for _, fd := range h.Files() {
		off += float64(fd.noInlineSize)
		on += float64(fd.heurSize)
	}
	if on >= off {
		t.Fatalf("heuristic inlining did not shrink the corpus: %0.f -> %0.f", off, on)
	}
}

func TestExhaustiveSetNonEmptyAndOptimalHolds(t *testing.T) {
	h := smallHarness(t)
	set := h.exhaustiveSet()
	if len(set) == 0 {
		t.Fatal("no exhaustively searchable files at this scale")
	}
	for _, fd := range set {
		opt, ok := fd.optimal(h.cfg)
		if !ok {
			t.Fatalf("%s: optimal not computed", fd.file.Name)
		}
		if opt.Size > fd.heurSize || opt.Size > fd.noInlineSize {
			t.Fatalf("%s: optimum %d worse than heuristic %d / no-inline %d",
				fd.file.Name, opt.Size, fd.heurSize, fd.noInlineSize)
		}
	}
}

func TestTunerSizesBounded(t *testing.T) {
	h := smallHarness(t)
	h.ensureTuned()
	for _, fd := range h.Files() {
		if fd.clean.Size > fd.clean.InitSize {
			t.Fatalf("%s: clean tuning made it worse", fd.file.Name)
		}
		if fd.init.Size > fd.init.InitSize {
			t.Fatalf("%s: initialized tuning made it worse", fd.file.Name)
		}
		if fd.init.InitSize != fd.heurSize {
			t.Fatalf("%s: init size %d != heuristic size %d", fd.file.Name, fd.init.InitSize, fd.heurSize)
		}
	}
}

func TestTunerBeatsHeuristicOnExhaustiveSet(t *testing.T) {
	// Figure 16's headline: the combined autotuner finds the optimum more
	// often than the heuristic.
	h := smallHarness(t)
	set := h.exhaustiveSet()
	h.ensureTuned()
	tuner, heur := 0, 0
	for _, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		if mini(roundSize(fd.clean, 1), roundSize(fd.init, 1)) <= opt.Size {
			tuner++
		}
		if fd.heurSize <= opt.Size {
			heur++
		}
	}
	if tuner < heur {
		t.Fatalf("autotuner optimal count %d < heuristic %d", tuner, heur)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	h := smallHarness(t)
	for _, id := range IDs() {
		if id == "llvm-case" || id == "sqlite-case" {
			continue // exercised separately with tighter scaling
		}
		res, err := h.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.ID != id || strings.TrimSpace(res.Text) == "" {
			t.Fatalf("%s: empty result", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	h := smallHarness(t)
	if _, err := h.Run("fig999"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestCaseStudiesScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("case studies are slow")
	}
	h := NewHarness(Config{Scale: 0.08, Rounds: 2, ExhaustiveCap: 1 << 8})
	for _, id := range []string{"llvm-case", "sqlite-case"} {
		res, err := h.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(res.Text, "%") {
			t.Fatalf("%s: no percentages in output:\n%s", id, res.Text)
		}
	}
}

func TestRoundHelpers(t *testing.T) {
	h := smallHarness(t)
	h.ensureTuned()
	for _, fd := range h.Files()[:minInt(5, len(h.Files()))] {
		if bestUpTo(fd.clean, 1) > fd.clean.InitSize {
			t.Fatal("bestUpTo exceeded init")
		}
		if bestUpTo(fd.clean, 99) != mini(fd.clean.Size, fd.clean.InitSize) {
			t.Fatal("bestUpTo(all) should equal overall best")
		}
		if roundSize(fd.clean, 1) != fd.clean.Rounds[0].Size {
			t.Fatal("roundSize(1) mismatch")
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestExperimentsDeterministic(t *testing.T) {
	// Two independently built harnesses must render byte-identical results
	// (catches map-iteration nondeterminism anywhere in the pipeline).
	cfg := Config{Scale: 0.15, ExhaustiveCap: 1 << 8, Rounds: 1}
	h1 := NewHarness(cfg)
	h2 := NewHarness(cfg)
	for _, id := range []string{"fig1", "fig3", "tab1", "fig7", "tab2", "fig9"} {
		r1, err1 := h1.Run(id)
		r2, err2 := h2.Run(id)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", id, err1, err2)
		}
		if r1.Text != r2.Text {
			t.Fatalf("%s differs across harnesses:\n--- a ---\n%s\n--- b ---\n%s", id, r1.Text, r2.Text)
		}
	}
}
