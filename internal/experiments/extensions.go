package experiments

import (
	"fmt"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/mlheur"
	"optinline/internal/outline"
	"optinline/internal/stats"
)

// The experiments below cover the extensions the paper proposes beyond its
// own evaluation: training a learned inlining policy on optimal decisions
// (Section 6, "Learning inlining heuristics"), combining the autotuner with
// an outliner (Section 7, "Outlining"), and tuning for runtime instead of
// size (Section 6, "Exhaustive search for performance").

// MLGoCase trains a logistic-regression policy on the optimal decisions of
// half the exhaustive set and evaluates it on the held-out half, comparing
// decision accuracy and resulting sizes against the hand-written heuristic.
func (h *Harness) MLGoCase() Result {
	set := h.exhaustiveSet()
	if len(set) < 4 {
		return Result{ID: "mlgo-case", Title: "Learned inlining policy (Section 6)", Text: "corpus too small\n"}
	}
	var train, test []mlheur.Example
	var testFiles []*fileData
	for i, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		ds := mlheur.Dataset(fd.comp.Module(), fd.graph, opt.Config)
		if i%2 == 0 {
			train = append(train, ds...)
		} else {
			test = append(test, ds...)
			testFiles = append(testFiles, fd)
		}
	}
	model, err := mlheur.Train(train, mlheur.TrainOptions{})
	if err != nil {
		return Result{ID: "mlgo-case", Title: "Learned inlining policy (Section 6)", Text: err.Error() + "\n"}
	}

	var relLearned, relHeur []float64
	learnedOptimal, heurOptimal := 0, 0
	for _, fd := range testFiles {
		opt, _ := fd.optimal(h.cfg)
		cfg := model.Config(fd.comp.Module(), fd.graph)
		size := fd.comp.Size(cfg)
		relLearned = append(relLearned, float64(size)/float64(opt.Size)*100)
		relHeur = append(relHeur, float64(fd.heurSize)/float64(opt.Size)*100)
		if size <= opt.Size {
			learnedOptimal++
		}
		if fd.heurSize <= opt.Size {
			heurOptimal++
		}
	}
	var tb stats.Table
	tb.Header = []string{"policy", "median size vs optimal", "optimal found"}
	tb.AddRow("-Os heuristic", fmt.Sprintf("%.1f%%", stats.Median(relHeur)),
		pct(float64(heurOptimal), float64(len(testFiles))))
	tb.AddRow("learned (trained on optimal)", fmt.Sprintf("%.1f%%", stats.Median(relLearned)),
		pct(float64(learnedOptimal), float64(len(testFiles))))
	text := fmt.Sprintf(
		"Logistic regression over %d call-site features, trained on %d optimal\ndecisions, evaluated on %d held-out files (the data pipeline the paper's\nSection 6 proposes; decision accuracy on held-out sites: %.1f%%, majority\nbaseline %.1f%%).\n\n%s",
		mlheur.NFeatures, len(train), len(testFiles),
		model.Accuracy(test)*100, mlheur.MajorityBaseline(test)*100, tb.String())
	return Result{ID: "mlgo-case", Title: "Learned inlining policy (Section 6)", Text: text}
}

// OutlineCase measures the additional size reduction of running the
// outliner after autotuned inlining (the combination suggested in the
// paper's Section 7).
func (h *Harness) OutlineCase() Result {
	h.ensureTuned()
	var tunedTotal, outlinedTotal float64
	improved, files := 0, 0
	for _, fd := range h.files {
		cfg := fd.clean.Config
		if fd.init.Size < fd.clean.Size {
			cfg = fd.init.Config
		}
		built, err := fd.comp.Build(cfg)
		if err != nil {
			continue
		}
		before := codegen.ModuleSize(built, codegen.TargetX86)
		outline.Module(built, outline.Options{Target: codegen.TargetX86})
		after := codegen.ModuleSize(built, codegen.TargetX86)
		files++
		tunedTotal += float64(before)
		outlinedTotal += float64(after)
		if after < before {
			improved++
		}
	}
	text := fmt.Sprintf(
		"Outlining after combined autotuned inlining, %d files.\nFiles further reduced: %d. Additional size reduction: %.2f%%.\n(The paper's Section 7 cites Chabbi et al.'s outliner as combinable with\nits autotuner; here both run in one pipeline.)\n",
		files, improved, (1-outlinedTotal/tunedTotal)*100)
	return Result{ID: "outline-case", Title: "Autotuning + outlining (Section 7)", Text: text}
}

// PerfCase tunes a subset of files for interpreter cycles instead of bytes
// (Section 6's "exhaustive search for performance" direction) and reports
// the cycle/size trade against the -Os heuristic.
func (h *Harness) PerfCase() Result {
	h.ensureTuned()
	var tb stats.Table
	tb.Header = []string{"file", "cycles vs -Os", "size vs -Os"}
	var cycleRels, sizeRels []float64
	count := 0
	for _, fd := range h.files {
		if count >= 12 || fd.edges < 3 || fd.edges > 30 {
			continue
		}
		obj := func(cfg *callgraph.Config) int64 {
			built, err := fd.comp.Build(cfg)
			if err != nil {
				return 1 << 40
			}
			res, err := interp.Run(built, "entry", []int64{7}, interp.Options{
				Fuel:   5_000_000,
				SizeOf: codegen.SizeOf(built, codegen.TargetX86),
			})
			if err != nil {
				return 1 << 40
			}
			return res.Cycles
		}
		baseCycles := obj(fd.heurCfg)
		if baseCycles >= 1<<40 {
			continue // not executable within fuel
		}
		res := autotune.TuneObjective(fd.graph, obj, fd.heurCfg, autotune.Options{
			Rounds: 2, Workers: h.cfg.Workers,
		})
		tunedCycles := obj(res.Config)
		tunedSize := fd.comp.Size(res.Config)
		cr := float64(tunedCycles) / float64(baseCycles) * 100
		sr := float64(tunedSize) / float64(fd.heurSize) * 100
		cycleRels = append(cycleRels, cr)
		sizeRels = append(sizeRels, sr)
		tb.AddRow(fd.file.Name, fmt.Sprintf("%.1f%%", cr), fmt.Sprintf("%.1f%%", sr))
		count++
	}
	text := fmt.Sprintf(
		"Autotuning for cycles (interpreter cost model) instead of bytes,\nheuristic-initialized, on %d executable files.\n\n%s\nMedian: cycles %.1f%% of -Os, size %.1f%% of -Os — the dual of Figure 19:\ntuning the other metric trades it against the first.\n",
		count, tb.String(), stats.Median(cycleRels), stats.Median(sizeRels))
	return Result{ID: "perf-case", Title: "Tuning for performance (Section 6)", Text: text}
}
