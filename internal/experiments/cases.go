package experiments

import (
	"fmt"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

// LLVMCase reproduces Section 5.2.3's LLVM case study: heuristic-initialized
// round-based tuning over the llvm-lib corpus (files with much larger call
// graphs than the SPEC-like suite). The paper reports a 15.21% total size
// reduction over three rounds.
func (h *Harness) LLVMCase() Result {
	bench := workload.LLVMCodebase()
	rounds := 3
	var tb stats.Table
	tb.Header = []string{"file", "calls", "-Os size", "tuned", "rel size"}
	var totalHeur, totalTuned float64
	files := bench.Files
	if h.cfg.Scale < 1 {
		n := scaleInt(len(files), h.cfg.Scale)
		files = files[:n]
	}
	type row struct {
		name       string
		edges      int
		heur, tune int
	}
	rows := make([]row, len(files))
	parallelFor(len(files), 1, func(i int) { // files run serially; edges within a file run in parallel
		f := files[i]
		comp := compile.New(f.Module, codegen.TargetX86)
		g := comp.Graph()
		hc := heuristic.OsConfig(comp.Module(), g)
		heurSize := comp.Size(hc)
		res := autotune.Tune(comp, hc, autotune.Options{Rounds: rounds, Workers: h.cfg.Workers})
		rows[i] = row{name: f.Name, edges: len(g.Edges), heur: heurSize, tune: res.Size}
	})
	for _, r := range rows {
		totalHeur += float64(r.heur)
		totalTuned += float64(r.tune)
		tb.AddRow(r.name, r.edges, r.heur, r.tune, fmt.Sprintf("%.1f%%", float64(r.tune)/float64(r.heur)*100))
	}
	reduction := (1 - totalTuned/totalHeur) * 100
	text := fmt.Sprintf(
		"Heuristic-initialized tuning (%d rounds) of the llvm-lib corpus.\n\n%s\nTotal size reduction: %.2f%% (paper 15.21%% over 3 rounds).\n",
		rounds, tb.String(), reduction)
	return Result{ID: "llvm-case", Title: "LLVM codebase case study (Section 5.2.3)", Text: text}
}

// SQLiteCase reproduces Section 5.2.3's SQLite case study: the amalgamation
// tuned for the X86 target (clean slate and heuristic-init, 4 rounds each)
// and for the WASM-like target, where the baseline disables inlining (as
// emcc -Os does) and the -Os heuristic inflates the binary.
func (h *Harness) SQLiteCase() Result {
	f := workload.SQLiteAmalgamation()
	if h.cfg.Scale < 1 {
		// A scaled-down session for benches: regenerate a smaller unit.
		f = smallSQLite(h.cfg.Scale)
	}
	rounds := h.cfg.Rounds
	var text string

	// X86: baseline is the -Os heuristic.
	{
		comp := compile.New(f.Module, codegen.TargetX86)
		g := comp.Graph()
		hc := heuristic.OsConfig(comp.Module(), g)
		heurSize := comp.Size(hc)
		clean := autotune.Tune(comp, nil, autotune.Options{Rounds: rounds, Workers: h.cfg.Workers})
		inited := autotune.Tune(comp, hc, autotune.Options{Rounds: rounds, Workers: h.cfg.Workers})
		text += fmt.Sprintf(
			"X86 (%d inlinable calls): -Os %d bytes.\n  clean slate: %.1f%% of -Os (paper 89.7%%)\n  heur-init:   %.1f%% of -Os (paper 91.6%%)\n",
			len(g.Edges), heurSize,
			float64(clean.Size)/float64(heurSize)*100,
			float64(inited.Size)/float64(heurSize)*100)
	}

	// WASM: baseline disables inlining entirely.
	{
		comp := compile.New(f.Module, codegen.TargetWASM)
		g := comp.Graph()
		noInline := comp.Size(callgraph.NewConfig())
		hc := heuristic.OsConfig(comp.Module(), g)
		heurSize := comp.Size(hc)
		clean := autotune.Tune(comp, nil, autotune.Options{Rounds: rounds, Workers: h.cfg.Workers})
		text += fmt.Sprintf(
			"\nWASM: no-inline baseline %d bytes.\n  -Os heuristic: %.1f%% of baseline (paper +18.3%%)\n  tuned:         %.1f%% of baseline (paper -0.96..-1.26%%)\n",
			noInline,
			float64(heurSize)/float64(noInline)*100,
			float64(clean.Size)/float64(noInline)*100)
	}
	return Result{ID: "sqlite-case", Title: "SQLite case study (Section 5.2.3)", Text: text}
}

func smallSQLite(scale float64) workload.File {
	p := workload.Profile{
		Name: "sqlite-small", Files: 1,
		TotalEdges:   scaleInt(600, scale),
		ConstArgProb: 0.4, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.08, BranchProb: 0.5, MultiRootPct: 0.12,
	}
	return workload.Generate(p).Files[0]
}
