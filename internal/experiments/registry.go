package experiments

import (
	"fmt"
	"sort"
)

// IDs returns all experiment identifiers in presentation order.
func IDs() []string {
	return []string{
		"fig1", "fig3", "tab1",
		"fig7", "tab2", "fig8", "fig9",
		"fig10", "fig11", "fig12", "tab3", "fig13", "fig14",
		"fig15", "fig16", "fig17", "tab4", "fig18", "fig19",
		"llvm-case", "sqlite-case",
		"mlgo-case", "outline-case", "perf-case",
		"linked-case", "pareto",
	}
}

// Run executes one experiment by ID.
func (h *Harness) Run(id string) (Result, error) {
	switch id {
	case "fig1":
		return h.Fig1(), nil
	case "fig3":
		return h.Fig3(), nil
	case "tab1":
		return h.Table1(), nil
	case "fig7":
		return h.Fig7(), nil
	case "tab2":
		return h.Table2(), nil
	case "fig8":
		return h.Fig8(), nil
	case "fig9":
		return h.Fig9(), nil
	case "fig10":
		return h.Fig10(), nil
	case "fig11":
		return h.Fig11(), nil
	case "fig12":
		return h.Fig12(), nil
	case "tab3":
		return h.Table3(), nil
	case "fig13":
		return h.Fig13(), nil
	case "fig14":
		return h.Fig14(), nil
	case "fig15":
		return h.Fig15(), nil
	case "fig16":
		return h.Fig16(), nil
	case "fig17":
		return h.Fig17(), nil
	case "tab4":
		return h.Table4(), nil
	case "fig18":
		return h.Fig18(), nil
	case "fig19":
		return h.Fig19(), nil
	case "llvm-case":
		return h.LLVMCase(), nil
	case "sqlite-case":
		return h.SQLiteCase(), nil
	case "mlgo-case":
		return h.MLGoCase(), nil
	case "outline-case":
		return h.OutlineCase(), nil
	case "perf-case":
		return h.PerfCase(), nil
	case "linked-case":
		return h.LinkedCase(), nil
	case "pareto":
		return h.Pareto(), nil
	case "linked-scale":
		// Heavy (mega-module tuning); deliberately not in IDs()/RunAll.
		return h.LinkedScale(), nil
	}
	known := IDs()
	sort.Strings(known)
	return Result{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// RunAll executes every experiment, concurrently up to the harness's
// worker budget, and returns the results in presentation order. The
// expensive per-file work (exhaustive searches, tuning sessions) is
// precomputed first in the same sequence a sequential run would trigger
// it, so the rendered output is identical for any worker count.
func (h *Harness) RunAll() []Result {
	h.exhaustiveSet()
	h.ensureTuned()
	ids := IDs()
	out := make([]Result, len(ids))
	parallelFor(len(ids), h.cfg.Workers, func(i int) {
		r, err := h.Run(ids[i])
		if err != nil {
			r = Result{ID: ids[i], Title: ids[i], Text: "error: " + err.Error()}
		}
		out[i] = r
	})
	return out
}
