package experiments

import (
	"fmt"
	"math"

	"optinline/internal/search"
	"optinline/internal/stats"
)

// Fig1 reproduces Figure 1: binary size with the -Os heuristic relative to
// inlining disabled, per benchmark. The paper reports 30%..77%.
func (h *Harness) Fig1() Result {
	var labels []string
	var values []float64
	var tb stats.Table
	tb.Header = []string{"benchmark", "no-inline", "-Os heuristic", "rel size"}
	for _, bench := range h.order {
		files := h.byName[bench]
		if len(files) == 0 {
			continue
		}
		var off, on float64
		for _, fd := range files {
			off += float64(fd.noInlineSize)
			on += float64(fd.heurSize)
		}
		rel := on / off * 100
		tb.AddRow(bench, int(off), int(on), fmt.Sprintf("%.0f%%", rel))
		labels = append(labels, bench)
		values = append(values, rel)
	}
	text := "Size with inlining (-Os heuristic) relative to inlining disabled.\n\n" +
		tb.String() + "\n" + stats.Bar(labels, values, 40)
	return Result{ID: "fig1", Title: "Size change due to inlining (Figure 1)", Text: text}
}

// Fig3 reproduces Figure 3: log2 of the naive inlining search space per
// benchmark (the paper's values range 1.4 .. 11,833; this corpus is scaled
// down ~20x with the same ordering).
func (h *Harness) Fig3() Result {
	var tb stats.Table
	tb.Header = []string{"benchmark", "files", "log2(#configurations)"}
	var labels []string
	var values []float64
	for _, bench := range h.order {
		total := 0.0
		for _, fd := range h.byName[bench] {
			total += search.NaiveSpaceLog2(fd.graph)
		}
		tb.AddRow(bench, len(h.byName[bench]), total)
		labels = append(labels, bench)
		values = append(values, total)
	}
	text := "Naive inlining search-space size per benchmark (sum over files).\n\n" +
		tb.String() + "\n" + stats.Bar(labels, values, 40)
	return Result{ID: "fig3", Title: "Naive inlining search space (Figure 3)", Text: text}
}

// Table1 reproduces Table 1: naive vs recursively partitioned search-space
// size percentiles over the eligible files, plus the total reduction.
func (h *Harness) Table1() Result {
	var naive, rec []float64
	var totalNaive, totalRec float64
	eligible := 0
	for _, fd := range h.files {
		n, capped := search.RecursiveSpaceSize(fd.graph, 1<<20)
		if capped {
			continue
		}
		eligible++
		nl := search.NaiveSpaceLog2(fd.graph)
		rl := math.Log2(float64(n))
		naive = append(naive, nl)
		rec = append(rec, rl)
		totalNaive += nl // log2 of a product = sum of logs; totals are the
		totalRec = log2Add(totalRec, rl)
	}
	var tb stats.Table
	tb.Header = []string{"space", "median", "75th", "95th", "max", "geo mean"}
	row := func(name string, xs []float64) {
		tb.AddRow(name,
			stats.Median(xs), stats.Percentile(xs, 75),
			stats.Percentile(xs, 95), stats.Max(xs), geoOfLogs(xs))
	}
	row("naive", naive)
	row("recursive", rec)
	text := fmt.Sprintf(
		"Per-file search-space size percentiles (log2) over %d files with\nrecursive space <= 2^20.\n\n%s\nTotal: naive 2^%.0f -> recursive 2^%.1f (paper: 2^349 -> 2^25.2).\n",
		eligible, tb.String(), totalNaive, totalRec)
	return Result{ID: "tab1", Title: "Search-space size reduction (Table 1)", Text: text}
}

// log2Add accumulates log2(2^a + 2^b).
func log2Add(a, b float64) float64 {
	if a == 0 {
		return b
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log2(1+math.Pow(2, b-a))
}

// geoOfLogs computes the geometric mean of sizes given their log2 values:
// 2^(mean of logs), reported as log2 to match the table (the paper reports
// geometric means 7.57 and 5.42 in the same scale).
func geoOfLogs(logs []float64) float64 {
	return stats.Mean(logs)
}
