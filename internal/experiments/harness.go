// Package experiments regenerates every table and figure of the paper's
// evaluation against the synthetic corpus. Each experiment renders the same
// rows/series the paper reports; EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/search"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

// Config scales and parallelizes an experiment run.
type Config struct {
	// Scale multiplies the workload size; 1.0 is the full corpus, benches
	// use smaller values. Values <= 0 default to 1.0.
	Scale float64
	// Workers for parallel per-file work; <= 0 means GOMAXPROCS.
	Workers int
	// ExhaustiveCap bounds the recursive search space of files included in
	// the exhaustive-search experiments; 0 defaults to 1<<14.
	ExhaustiveCap uint64
	// Rounds for round-based autotuning; 0 defaults to 4.
	Rounds int
	// DisableMemo turns off the per-function memoized compile path on
	// every compiler in the corpus. Debug/measurement knob: it exists so
	// the memo engine's speedup can be measured on one machine with one
	// binary (inlinebench -no-memo).
	DisableMemo bool
	// DisableDelta turns off the incremental delta-evaluation path on
	// every compiler in the corpus, keeping the memoized whole-config path
	// as a differential oracle (inlinebench -no-delta). Output must be
	// byte-identical either way.
	DisableDelta bool
	// Checked runs every compiler in checked compilation mode
	// (compile.Options.Check): invariants verified after every inline step
	// and opt pass. Much slower; regression tripwire for inlinebench -check.
	Checked bool
	// DisablePrune turns off the branch-and-bound layer of the optimal
	// search (component memo + admissible bounds), running the plain
	// exhaustive recursion instead (inlinebench -no-prune). Differential
	// oracle: output must be byte-identical either way.
	DisablePrune bool
	// DisableFnCache turns off the content-addressed per-function compile
	// cache on every compiler, falling back to the legacy per-module memo
	// keys (inlinebench -no-fncache). Differential oracle: output must be
	// byte-identical either way.
	DisableFnCache bool
	// FnCache, when non-nil, is the content-addressed cache shared by every
	// compiler in the corpus — typically compile.OpenFnCache(dir) so sizes
	// persist across runs. Nil creates a fresh in-memory cache, still
	// shared corpus-wide so duplicated helpers compile once per run.
	FnCache *compile.FnCache
	// DisableShard makes the linked-module experiments solve their
	// components on one merged compiler (link.ShardOptions.NoShard) instead
	// of per-component sub-modules (inlinebench -no-shard). Differential
	// oracle: output must be byte-identical either way.
	DisableShard bool
	// DisableCycleDelta makes every cycle pricer evaluate configurations
	// with the whole-module oracle instead of incremental repricing
	// (inlinebench -no-cycledelta). Differential oracle: output must be
	// byte-identical either way.
	DisableCycleDelta bool
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ExhaustiveCap == 0 {
		c.ExhaustiveCap = 1 << 14
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	return c
}

// Result is a rendered experiment.
type Result struct {
	ID    string
	Title string
	Text  string
}

// fileData caches everything computed about one translation unit.
type fileData struct {
	bench string
	file  workload.File
	comp  *compile.Compiler
	graph *callgraph.Graph
	edges int

	noInlineSize int
	heurCfg      *callgraph.Config
	heurSize     int

	once  sync.Once // guards tune
	clean autotune.Result
	init  autotune.Result

	optOnce sync.Once
	opt     search.Result
	optOK   bool

	profOnce sync.Once
	prof     *interp.Profile // baseline profile; nil if not interpretable
	priceMu  sync.Mutex
	pricers  map[int]*compile.CyclePricer // by i-cache capacity
}

// tuned runs (and caches) the two round-based tuning sessions.
func (fd *fileData) tuned(cfg Config) (clean, init autotune.Result) {
	fd.once.Do(func() {
		opts := autotune.Options{Rounds: cfg.Rounds, Workers: cfg.Workers}
		fd.clean = autotune.Tune(fd.comp, nil, opts)
		fd.init = autotune.Tune(fd.comp, fd.heurCfg, opts)
	})
	return fd.clean, fd.init
}

// profile interprets the no-inline baseline once (cached), returning nil
// for files without an entry root or whose dynamic call tree exceeds the
// fuel budget — the same skip rule as the Figure 19 measurement.
func (fd *fileData) profile() *interp.Profile {
	fd.profOnce.Do(func() {
		m, err := fd.comp.Build(callgraph.NewConfig())
		if err != nil || m.Func("entry") == nil {
			return
		}
		_, p, err := interp.Collect(m, "entry", []int64{7}, interp.Options{Fuel: 20_000_000})
		if err != nil {
			return
		}
		fd.prof = p
		fd.pricers = make(map[int]*compile.CyclePricer)
	})
	return fd.prof
}

// cyclePricer returns (and caches) a cycle pricer over the baseline profile
// at the given i-cache capacity. The profile's frame sequence is geometry-
// independent, so one interpretation backs every capacity.
func (fd *fileData) cyclePricer(cfg Config, cacheBytes int) *compile.CyclePricer {
	if fd.profile() == nil {
		return nil
	}
	fd.priceMu.Lock()
	defer fd.priceMu.Unlock()
	if p, ok := fd.pricers[cacheBytes]; ok {
		return p
	}
	p, err := fd.comp.NewCyclePricer(fd.prof, compile.CycleOptions{CacheBytes: cacheBytes})
	if err != nil {
		return nil
	}
	if cfg.DisableCycleDelta {
		p.SetCycleDelta(false)
	}
	fd.pricers[cacheBytes] = p
	return p
}

// optimal runs (and caches) the exhaustive search, bounded by the cap.
func (fd *fileData) optimal(cfg Config) (search.Result, bool) {
	fd.optOnce.Do(func() {
		fd.opt, fd.optOK = search.Optimal(fd.comp, search.Options{
			Workers:  cfg.Workers,
			MaxSpace: cfg.ExhaustiveCap,
			NoPrune:  cfg.DisablePrune,
		})
	})
	return fd.opt, fd.optOK
}

// roundSize returns the size after round r (1-based) of a session, falling
// back to the initial size when the session reached a fixpoint earlier.
func roundSize(res autotune.Result, r int) int {
	if len(res.Rounds) == 0 {
		return res.InitSize
	}
	if r > len(res.Rounds) {
		r = len(res.Rounds)
	}
	return res.Rounds[r-1].Size
}

// bestUpTo returns the best size over the init and rounds 1..r.
func bestUpTo(res autotune.Result, r int) int {
	best := res.InitSize
	for i := 0; i < r && i < len(res.Rounds); i++ {
		if res.Rounds[i].Size < best {
			best = res.Rounds[i].Size
		}
	}
	return best
}

// Harness owns the generated corpus and its per-file caches.
type Harness struct {
	cfg     Config
	suite   []workload.Benchmark
	files   []*fileData            // non-trivial files only
	byName  map[string][]*fileData // benchmark -> files
	order   []string               // benchmark order
	fncache *compile.FnCache       // shared across every file's compiler
}

// NewHarness generates the corpus and precomputes the cheap per-file data
// (call graph, no-inline size, heuristic configuration and size).
func NewHarness(cfg Config) *Harness {
	cfg = cfg.normalized()
	h := &Harness{cfg: cfg, byName: make(map[string][]*fileData), fncache: cfg.FnCache}
	if h.fncache == nil {
		h.fncache = compile.NewFnCache()
	}
	profiles := workload.SPECProfiles()
	for _, p := range profiles {
		p.Files = scaleInt(p.Files, cfg.Scale)
		p.TotalEdges = scaleInt(p.TotalEdges, cfg.Scale)
		bench := workload.Generate(p)
		h.suite = append(h.suite, bench)
		h.order = append(h.order, bench.Name)
	}
	type job struct {
		bench string
		file  workload.File
	}
	var jobs []job
	for _, b := range h.suite {
		for _, f := range b.Files {
			jobs = append(jobs, job{b.Name, f})
		}
	}
	results := make([]*fileData, len(jobs))
	parallelFor(len(jobs), cfg.Workers, func(i int) {
		f := jobs[i].file
		comp := compile.NewWithOptions(f.Module, codegen.TargetX86,
			compile.Options{Check: cfg.Checked, FnCache: h.fncache})
		if cfg.DisableMemo {
			comp.SetMemoize(false)
		}
		if cfg.DisableDelta {
			comp.SetDelta(false)
		}
		if cfg.DisableFnCache {
			comp.SetFnCache(false)
		}
		g := comp.Graph()
		if len(g.Edges) == 0 {
			return // trivial w.r.t. inlining, as in the paper's 746 files
		}
		hc := heuristic.OsConfig(comp.Module(), g)
		results[i] = &fileData{
			bench:        jobs[i].bench,
			file:         f,
			comp:         comp,
			graph:        g,
			edges:        len(g.Edges),
			noInlineSize: comp.Size(callgraph.NewConfig()),
			heurCfg:      hc,
			heurSize:     comp.Size(hc),
		}
	})
	for _, fd := range results {
		if fd == nil {
			continue
		}
		h.files = append(h.files, fd)
		h.byName[fd.bench] = append(h.byName[fd.bench], fd)
	}
	return h
}

// Benchmarks returns the benchmark names in canonical order.
func (h *Harness) Benchmarks() []string { return h.order }

// ConfigCacheStats aggregates the whole-configuration cache counters over
// every compiler in the corpus.
func (h *Harness) ConfigCacheStats() stats.CacheStats {
	var total stats.CacheStats
	for _, fd := range h.files {
		total = total.Add(fd.comp.ConfigCacheStats())
	}
	return total
}

// FuncCacheStats aggregates the per-function memo cache counters over
// every compiler in the corpus.
func (h *Harness) FuncCacheStats() stats.CacheStats {
	var total stats.CacheStats
	for _, fd := range h.files {
		total = total.Add(fd.comp.FuncCacheStats())
	}
	return total
}

// FnCache returns the content-addressed per-function cache shared by the
// corpus compilers (for Save after a -cache-dir run).
func (h *Harness) FnCache() *compile.FnCache { return h.fncache }

// FnCacheStats returns the shared content cache's counters: hits here mean
// a function compilation was skipped because some compiler — any file, any
// configuration, or a previous persisted run — already compiled a closure
// with identical content.
func (h *Harness) FnCacheStats() compile.FnCacheStats { return h.fncache.Stats() }

// DeltaStats aggregates the incremental-evaluation counters over every
// compiler in the corpus.
func (h *Harness) DeltaStats() stats.DeltaStats {
	var total stats.DeltaStats
	for _, fd := range h.files {
		total = total.Add(fd.comp.DeltaStats())
	}
	return total
}

// PruneStats aggregates the search branch-and-bound counters over every
// file whose optimal search has run. Files never searched (space over the
// cap, or the experiment set did not touch them) contribute nothing.
func (h *Harness) PruneStats() search.PruneStats {
	var total search.PruneStats
	for _, fd := range h.files {
		if fd.optOK {
			total = total.Add(fd.opt.Prune)
		}
	}
	return total
}

// CycleStats aggregates the cycle-pricer counters over every pricer the
// experiments created.
func (h *Harness) CycleStats() compile.CyclePricerStats {
	var total compile.CyclePricerStats
	for _, fd := range h.files {
		fd.priceMu.Lock()
		for _, p := range fd.pricers {
			total = total.Add(p.Stats())
		}
		fd.priceMu.Unlock()
	}
	return total
}

// Files returns every non-trivial file.
func (h *Harness) Files() []*fileData { return h.files }

// CheckFailures returns every checked-mode invariant violation latched by
// the corpus compilers (empty unless Config.Checked was set), formatted as
// "file: error". Size evaluations map build failures to InfSize, so this is
// the only place a checked experiment run surfaces what broke.
func (h *Harness) CheckFailures() []string {
	var out []string
	for _, fd := range h.files {
		if err := fd.comp.CheckFailure(); err != nil {
			out = append(out, fmt.Sprintf("%s: %v", fd.file.Name, err))
		}
	}
	return out
}

// exhaustiveSet returns the files whose recursive space fits the cap, with
// their optimal results computed.
func (h *Harness) exhaustiveSet() []*fileData {
	var out []*fileData
	var mu sync.Mutex
	parallelFor(len(h.files), h.cfg.Workers, func(i int) {
		fd := h.files[i]
		if _, ok := fd.optimal(h.cfg); ok {
			mu.Lock()
			out = append(out, fd)
			mu.Unlock()
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].file.Name < out[j].file.Name })
	return out
}

// ensureTuned tunes every file (cached), in parallel across files.
func (h *Harness) ensureTuned() {
	parallelFor(len(h.files), h.cfg.Workers, func(i int) {
		h.files[i].tuned(h.cfg)
	})
}

func scaleInt(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
	wg.Wait()
}

func pct(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", num/den*100)
}
