package experiments

import (
	"fmt"
	"sort"

	"optinline/internal/callgraph"
	"optinline/internal/search"
	"optinline/internal/stats"
)

// Fig7 reproduces Figure 7: the -Os heuristic versus optimal inlining over
// the exhaustively searched files. The paper finds the optimum in 46% of
// files, a 2.37% median overhead among the rest, 16% of files >= 5%
// overhead, 8.5% >= 10%, and a 281% maximum.
func (h *Harness) Fig7() Result {
	set := h.exhaustiveSet()
	optimalCount := 0
	var overheads []float64 // percent over optimal, non-optimal files only
	maxOver := 0.0
	for _, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		if fd.heurSize <= opt.Size {
			optimalCount++
			continue
		}
		ov := (float64(fd.heurSize)/float64(opt.Size) - 1) * 100
		overheads = append(overheads, ov)
		if ov > maxOver {
			maxOver = ov
		}
	}
	ge5, ge10 := 0, 0
	for _, ov := range overheads {
		if ov >= 5 {
			ge5++
		}
		if ov >= 10 {
			ge10++
		}
	}
	var tb stats.Table
	tb.Header = []string{"metric", "value", "paper"}
	tb.AddRow("exhaustively searched files", len(set), "1135")
	tb.AddRow("heuristic finds optimal", fmt.Sprintf("%d (%s)", optimalCount, pct(float64(optimalCount), float64(len(set)))), "526 (46%)")
	tb.AddRow("median overhead (non-optimal)", fmt.Sprintf("%.2f%%", stats.Median(overheads)), "2.37%")
	tb.AddRow("files with overhead >= 5%", fmt.Sprintf("%d (%s)", ge5, pct(float64(ge5), float64(len(set)))), "190 (16%)")
	tb.AddRow("files with overhead >= 10%", fmt.Sprintf("%d (%s)", ge10, pct(float64(ge10), float64(len(set)))), "97 (8.5%)")
	tb.AddRow("max overhead", fmt.Sprintf("%.0f%%", maxOver), "281%")
	return Result{
		ID:    "fig7",
		Title: "Heuristic vs optimal roofline (Figure 7)",
		Text:  "Roofline comparison on files with recursive space <= cap.\n\n" + tb.String(),
	}
}

// Table2 reproduces Table 2: the agreement matrix between optimal and
// heuristic decisions over every call site of the exhaustive set. The paper
// finds 72.7% agreement, with the heuristic too aggressive on 23.7% of
// decisions and too conservative on 3.6%.
func (h *Harness) Table2() Result {
	set := h.exhaustiveSet()
	var matrix [2][2]int
	totalSites := 0
	optInlined, heurInlined := 0, 0
	for _, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		m := callgraph.Agreement(fd.graph.Sites(), opt.Config, fd.heurCfg)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				matrix[a][b] += m[a][b]
			}
		}
		totalSites += len(fd.graph.Sites())
		optInlined += opt.Config.InlineCount()
		heurInlined += fd.heurCfg.InlineCount()
	}
	var tb stats.Table
	tb.Header = []string{"optimal", "heuristic", "decisions", "share"}
	tb.AddRow("no inline", "no inline", matrix[0][0], pct(float64(matrix[0][0]), float64(totalSites)))
	tb.AddRow("no inline", "inline", matrix[0][1], pct(float64(matrix[0][1]), float64(totalSites)))
	tb.AddRow("inline", "no inline", matrix[1][0], pct(float64(matrix[1][0]), float64(totalSites)))
	tb.AddRow("inline", "inline", matrix[1][1], pct(float64(matrix[1][1]), float64(totalSites)))
	agree := matrix[0][0] + matrix[1][1]
	direction := "the heuristic is too eager, as in the paper"
	if matrix[0][1] < matrix[1][0] {
		direction = "unlike the paper's LLVM, this heuristic errs slightly conservative"
	}
	text := fmt.Sprintf(
		"%s\nTotal decisions: %d. Agreement: %s (paper 72.7%%).\nOptimal inlines %s of calls (paper 49.3%%); heuristic inlines %s (paper 69.4%%)\n— %s.\n",
		tb.String(), totalSites,
		pct(float64(agree), float64(totalSites)),
		pct(float64(optInlined), float64(totalSites)),
		pct(float64(heurInlined), float64(totalSites)), direction)
	return Result{ID: "tab2", Title: "Optimal vs heuristic decisions (Table 2)", Text: text}
}

// Fig8 reproduces Figure 8: concrete call graphs where the heuristic
// inlines too aggressively, rendered as DOT (optimal vs heuristic labels).
func (h *Harness) Fig8() Result {
	set := h.exhaustiveSet()
	// The most instructive examples: largest heuristic/optimal ratio.
	sort.Slice(set, func(i, j int) bool {
		oi, _ := set[i].optimal(h.cfg)
		oj, _ := set[j].optimal(h.cfg)
		return ratio(set[i].heurSize, oi.Size) > ratio(set[j].heurSize, oj.Size)
	})
	text := ""
	for k, fd := range set {
		if k >= 2 {
			break
		}
		opt, _ := fd.optimal(h.cfg)
		text += fmt.Sprintf("%s (heuristic: %d%% of optimal)\n%s\n",
			fd.file.Name, int(ratio(fd.heurSize, opt.Size)*100),
			fd.graph.SideBySideDOT(fd.file.Name, "optimal", opt.Config, "heuristic", fd.heurCfg))
	}
	if text == "" {
		text = "no exhaustively searched files available at this scale\n"
	}
	return Result{ID: "fig8", Title: "Sample call graphs, optimal vs heuristic (Figure 8)", Text: text}
}

// Fig9 reproduces Figure 9: the histogram of inlined call-chain lengths in
// optimal vs heuristic configurations. The paper finds short chains
// dominate (4,861 one-edge chains for optimal) and the heuristic inlines
// more chains at every length.
func (h *Harness) Fig9() Result {
	set := h.exhaustiveSet()
	optHist := map[int]int{}
	heurHist := map[int]int{}
	for _, fd := range set {
		opt, _ := fd.optimal(h.cfg)
		for l, n := range search.ChainHistogram(search.ChainLengths(fd.graph, opt.Config)) {
			optHist[l] += n
		}
		for l, n := range search.ChainHistogram(search.ChainLengths(fd.graph, fd.heurCfg)) {
			heurHist[l] += n
		}
	}
	maxLen := 0
	for l := range optHist {
		if l > maxLen {
			maxLen = l
		}
	}
	for l := range heurHist {
		if l > maxLen {
			maxLen = l
		}
	}
	var tb stats.Table
	tb.Header = []string{"chain length", "optimal", "heuristic"}
	for l := 1; l <= maxLen; l++ {
		tb.AddRow(l, optHist[l], heurHist[l])
	}
	text := "Inlined call-chain length census over the exhaustive set.\n\n" + tb.String()
	if maxLen >= 1 && optHist[1] > optHist[2] {
		text += "\nLength-1 chains dominate, the paper's motivating insight for local autotuning.\n"
	}
	return Result{ID: "fig9", Title: "Inlined call-chain lengths (Figure 9)", Text: text}
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
