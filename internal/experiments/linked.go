package experiments

import (
	"fmt"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/link"
	"optinline/internal/search"
	"optinline/internal/workload"
)

// linkedLinker builds the linker for one linked profile, sharing the
// harness's content-addressed function cache across every compiler it
// spawns (per-component shards included).
func (h *Harness) linkedLinker(name string) (workload.LinkedProfile, *link.Linker, error) {
	lp, ok := workload.LinkedProfileByName(name)
	if !ok {
		return lp, nil, fmt.Errorf("linked profile %q missing", name)
	}
	l, err := link.New(link.CorpusTUs(workload.GenerateLinked(lp)), link.Options{})
	return lp, l, err
}

// linkedShardOpts is the shared shard configuration: harness cache, harness
// workers, and the -no-shard differential toggle.
func (h *Harness) linkedShardOpts() link.ShardOptions {
	return link.ShardOptions{
		Target:  codegen.TargetX86,
		Compile: compile.Options{FnCache: h.fncache},
		Workers: h.cfg.Workers,
		NoShard: h.cfg.DisableShard,
	}
}

// LinkedCase is the cross-module (LTO-style) experiment: linking the
// translation units of a multi-file corpus into one module turns cross-TU
// calls into candidates (the paper's amalgamation effect, Section 5.2.3,
// applied at link level), and the component-sharded search solves the
// merged module exactly at a scale one compiler would pay for in memory.
//
// linked-s is solved optimally, separate-vs-linked; linked-m is autotuned
// the same way. Both modes (sharded and -no-shard) print identical text.
func (h *Harness) LinkedCase() Result {
	var text string

	// linked-s: exact optima, separate compilation vs linked module.
	{
		lp, l, err := h.linkedLinker("linked-s")
		if err != nil {
			return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: " + err.Error()}
		}
		p := l.Plan()
		sepNoInline, sepOpt, sepSites := 0, 0, 0
		for _, tu := range l.TUs() {
			mod, err := tu.Load()
			if err != nil {
				return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: " + err.Error()}
			}
			comp := compile.NewWithOptions(mod, codegen.TargetX86, compile.Options{FnCache: h.fncache})
			sepNoInline += comp.Size(callgraph.NewConfig())
			res, ok := search.Optimal(comp, search.Options{Workers: h.cfg.Workers, MaxSpace: 1 << 20})
			if !ok {
				return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: per-TU space over cap"}
			}
			sepOpt += res.Size
			sepSites += len(comp.Graph().Edges)
		}
		res, ok, err := l.OptimalSearch(link.SearchOptions{ShardOptions: h.linkedShardOpts(), MaxSpace: 1 << 20})
		if err != nil || !ok {
			return Result{ID: "linked-case", Title: "Cross-module linking", Text: fmt.Sprintf("error: linked search ok=%v err=%v", ok, err)}
		}
		var maxComp link.ComponentStat
		for _, cs := range res.Components {
			if cs.Space > maxComp.Space {
				maxComp = cs
			}
		}
		text += fmt.Sprintf(
			"%s (optimal): %d TUs -> %d functions; %d candidate sites after linking\n"+
				"  (%d cross-TU, %d file-local names renamed apart, %d components)\n"+
				"  separate compilation: no-inline %d bytes, per-TU optima sum %d bytes (%d sites reachable)\n"+
				"  linked module:        optimal %d bytes = %s of separate optima, inlining %d of %d sites\n"+
				"  largest component: %d sites, space %d; total space %d evaluations\n",
			lp.Name, len(p.TUs), len(p.Funcs), len(p.Edges),
			p.CrossTU, p.Renamed, len(p.Components),
			sepNoInline, sepOpt, sepSites,
			res.Size, pct(float64(res.Size), float64(sepOpt)), res.Config.InlineCount(), len(p.Edges),
			maxComp.Edges, maxComp.Space, res.SpaceTotal)
	}

	// linked-m: the autotuner at the same split, separate vs linked.
	{
		lp, l, err := h.linkedLinker("linked-m")
		if err != nil {
			return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: " + err.Error()}
		}
		p := l.Plan()
		sepTuned := 0
		for _, tu := range l.TUs() {
			mod, err := tu.Load()
			if err != nil {
				return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: " + err.Error()}
			}
			comp := compile.NewWithOptions(mod, codegen.TargetX86, compile.Options{FnCache: h.fncache})
			hc := heuristic.OsConfig(comp.Module(), comp.Graph())
			res := autotune.Tune(comp, hc, autotune.Options{Rounds: h.cfg.Rounds, Workers: h.cfg.Workers})
			sepTuned += res.Size
		}
		tr, err := l.Tune(link.TuneOptions{ShardOptions: h.linkedShardOpts(), Rounds: h.cfg.Rounds, Init: link.InitOs})
		if err != nil {
			return Result{ID: "linked-case", Title: "Cross-module linking", Text: "error: " + err.Error()}
		}
		text += fmt.Sprintf(
			"\n%s (autotuned, %d rounds, -Os init): %d TUs, %d sites, %d components\n"+
				"  separate per-TU tuned sum: %d bytes\n"+
				"  linked sharded tuner:      %d bytes = %s of separate, inlining %d of %d sites\n",
			lp.Name, h.cfg.Rounds, len(p.TUs), len(p.Edges), len(p.Components),
			sepTuned,
			tr.Result.Size, pct(float64(tr.Result.Size), float64(sepTuned)),
			tr.Result.Config.InlineCount(), len(p.Edges))
	}
	return Result{ID: "linked-case", Title: "Cross-module linking case study (LTO-style amalgamation)", Text: text}
}

// LinkedScale is the heavy scale experiment behind the headline numbers:
// linked mega-modules 10x and 30x the largest single unit (the 600-edge
// SQLite amalgamation), component-sharded autotuning on the 10x module.
// Not part of IDs()/RunAll — run it explicitly (inlinebench -exp
// linked-scale).
func (h *Harness) LinkedScale() Result {
	var text string
	for _, name := range []string{"linked-x10", "linked-x30"} {
		lp, l, err := h.linkedLinker(name)
		if err != nil {
			return Result{ID: "linked-scale", Title: "Linked-module scale", Text: "error: " + err.Error()}
		}
		p := l.Plan()
		maxEdges := 0
		for ci := range p.Components {
			if n := len(p.ComponentEdges(ci)); n > maxEdges {
				maxEdges = n
			}
		}
		text += fmt.Sprintf(
			"%s: %d TUs -> %d functions, %d candidate sites (%d cross-TU, %d renamed)\n"+
				"  %d components, largest %d sites (vs sqlite-amalgamation's 600 total)\n",
			lp.Name, len(p.TUs), len(p.Funcs), len(p.Edges), p.CrossTU, p.Renamed,
			len(p.Components), maxEdges)
		if name == "linked-x10" {
			tr, err := l.Tune(link.TuneOptions{ShardOptions: h.linkedShardOpts(), Rounds: h.cfg.Rounds, Init: link.InitOs})
			if err != nil {
				return Result{ID: "linked-scale", Title: "Linked-module scale", Text: "error: " + err.Error()}
			}
			res := tr.Result
			text += fmt.Sprintf("  sharded tuner (%d rounds, -Os init): init %d -> best %d bytes (%s), inlining %d sites\n",
				h.cfg.Rounds, res.InitSize, res.Size,
				pct(float64(res.Size), float64(res.InitSize)), res.Config.InlineCount())
			for _, r := range res.Rounds {
				text += fmt.Sprintf("    round %d: %d bytes, %d toggles\n", r.Round, r.Size, r.Toggles)
			}
		}
	}
	return Result{ID: "linked-scale", Title: "Linked-module scale (10x / 30x the largest unit)", Text: text}
}
