package experiments

import (
	"fmt"
	"math"

	"optinline/internal/autotune"
	"optinline/internal/interp"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

// The pareto experiment bounds its per-file replay work: profiles with more
// frame events than this are skipped (and counted), like the fuel rule
// skips files whose dynamic call tree the interpreter cannot finish.
const paretoEventCap = 80_000

// paretoTightCache is the pressured i-cache capacity (bytes) of the second
// measurement column. One profile backs both geometries — the frame
// sequence does not depend on cache contents.
const paretoTightCache = 512

// paretoLambdas are the interior weights of the frontier sweep.
var paretoLambdas = []float64{0.01, 0.1, 1}

// Pareto extends the paper's Section 6 sketch: with cycles as a first-class
// objective, tune every profiled file of the SPECspeed-like subset at both
// ends of the size/speed spectrum and along a lambda sweep, and report how
// much runtime the size-optimal configuration leaves on the table relative
// to the speed-optimal one — at the default i-cache and under cache
// pressure, where the paper expects the trade-off to open up.
func (h *Harness) Pareto() Result {
	subset := workload.SPECSpeedSubset()
	type fileOut struct {
		bench            string
		ok               bool
		relDef, relTight float64 // size-opt cycles / speed-opt cycles, %
		spread           float64 // speed-opt bytes / size-opt bytes, %
		frontier         int
	}
	var files []*fileData
	for _, bench := range h.order {
		if !subset[bench] {
			continue
		}
		files = append(files, h.byName[bench]...)
	}
	outs := make([]fileOut, len(files))
	parallelFor(len(files), h.cfg.Workers, func(i int) {
		fd := files[i]
		outs[i].bench = fd.bench
		pr := fd.cyclePricer(h.cfg, 0)
		if pr == nil || pr.Events() > paretoEventCap {
			return
		}
		opts := autotune.Options{Rounds: h.cfg.Rounds, Workers: 1}
		sizeEnd := autotune.TuneWeighted(fd.comp, pr, 0, nil, opts)
		speedEnd := autotune.TuneCycles(fd.comp, pr, nil, opts)
		if speedEnd.Cycles <= 0 {
			return
		}
		pts := []autotune.ParetoPoint{
			{Lambda: 0, Size: sizeEnd.Size, Cycles: sizeEnd.Cycles, Config: sizeEnd.Config},
		}
		for _, l := range paretoLambdas {
			r := autotune.TuneWeighted(fd.comp, pr, l, nil, opts)
			pts = append(pts, autotune.ParetoPoint{Lambda: l, Size: r.Size, Cycles: r.Cycles, Config: r.Config})
		}
		pts = append(pts, autotune.ParetoPoint{Lambda: math.Inf(1), Size: speedEnd.Size, Cycles: speedEnd.Cycles, Config: speedEnd.Config})

		// Under cache pressure the size-optimal labels stay the same (bytes
		// do not depend on the cache), so reprice that config instead of
		// re-tuning; only the speed-optimal end needs its own session.
		prT := fd.cyclePricer(h.cfg, paretoTightCache)
		speedT := autotune.TuneCycles(fd.comp, prT, nil, opts)
		if speedT.Cycles <= 0 {
			return
		}
		outs[i] = fileOut{
			bench:    fd.bench,
			ok:       true,
			relDef:   float64(sizeEnd.Cycles) / float64(speedEnd.Cycles) * 100,
			relTight: float64(prT.Cycles(sizeEnd.Config)) / float64(speedT.Cycles) * 100,
			spread:   float64(speedEnd.Size) / float64(sizeEnd.Size) * 100,
			frontier: len(autotune.Frontier(pts)),
		}
	})

	type agg struct {
		relDef, relTight, spread []float64
		frontier                 int
		measured, skipped        int
	}
	byBench := make(map[string]*agg)
	for _, o := range outs {
		a := byBench[o.bench]
		if a == nil {
			a = &agg{}
			byBench[o.bench] = a
		}
		if !o.ok {
			a.skipped++
			continue
		}
		a.measured++
		a.relDef = append(a.relDef, o.relDef)
		a.relTight = append(a.relTight, o.relTight)
		a.spread = append(a.spread, o.spread)
		a.frontier += o.frontier
	}

	var tb stats.Table
	tb.Header = []string{"benchmark", "sizeopt/speedopt cycles", fmt.Sprintf("at %dB cache", paretoTightCache), "speedopt/sizeopt bytes", "frontier pts", "files"}
	var allDef, allTight []float64
	narrowed, widened := 0, 0
	for _, bench := range h.order {
		if !subset[bench] {
			continue
		}
		a := byBench[bench]
		if a == nil || a.measured == 0 {
			tb.AddRow(bench, "n/a", "n/a", "n/a", "n/a", 0)
			continue
		}
		def, tight := stats.GeoMean(a.relDef), stats.GeoMean(a.relTight)
		allDef = append(allDef, def)
		allTight = append(allTight, tight)
		switch {
		case tight < def-0.05:
			narrowed++
		case tight > def+0.05:
			widened++
		}
		tb.AddRow(bench,
			fmt.Sprintf("%.1f%%", def),
			fmt.Sprintf("%.1f%%", tight),
			fmt.Sprintf("%.1f%%", stats.GeoMean(a.spread)),
			fmt.Sprintf("%.1f", float64(a.frontier)/float64(a.measured)),
			a.measured)
	}
	text := fmt.Sprintf(
		"Size/speed Pareto frontier over the SPECspeed-like subset, profiled\ncycle model (default %d-byte i-cache vs a pressured %d-byte one).\nEvery cell tunes to a fixpoint at lambda = 0 (size endpoint),\nlambda in %v, and cycles-only (speed endpoint).\n\n%s\nGeometric mean: size-optimal costs %.1f%% of speed-optimal cycles at the\ndefault cache, %.1f%% under pressure. The paper's single-digit gap does\nnot transfer verbatim to this corpus: its C functions amortize the call\noverhead over bodies orders of magnitude larger, while the generated\nfunctions are call-dominated, so cycle tuning has far more to exploit\n(see EXPERIMENTS.md). The paper's cache-pressure mechanism does\nreproduce: pricing misses pushes speed tuning toward small code, so\npressure moves the two optima together on %d benchmark(s) and apart on\n%d.\n",
		interp.DefaultCacheBytes, paretoTightCache, paretoLambdas, tb.String(),
		stats.GeoMean(allDef), stats.GeoMean(allTight), narrowed, widened)
	return Result{ID: "pareto", Title: "Size x speed Pareto autotuning", Text: text}
}
