package experiments

import (
	"fmt"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/stats"
	"optinline/internal/workload"
)

// Fig19 reproduces Figure 19: the runtime cost of tuning inlining for size.
// Every file of the SPECspeed-like subset is executed under the cycle model
// (call overhead + i-cache), once compiled with the -Os heuristic and once
// with the combined size-tuned configuration. The paper reports a 3.6%
// geometric-mean slowdown (2% median), with mfc actually speeding up.
func (h *Harness) Fig19() Result {
	h.ensureTuned()
	subset := workload.SPECSpeedSubset()
	var tb stats.Table
	tb.Header = []string{"benchmark", "tuned/os cycles", "files measured"}
	var rels []float64
	for _, bench := range h.order {
		if !subset[bench] {
			continue
		}
		var osCycles, tunedCycles float64
		measured := 0
		for _, fd := range h.byName[bench] {
			tunedCfg := fd.clean.Config
			if fd.init.Size < fd.clean.Size {
				tunedCfg = fd.init.Config
			}
			oc, ok1 := h.runCycles(fd, fd.heurCfg)
			tc, ok2 := h.runCycles(fd, tunedCfg)
			if !ok1 || !ok2 {
				continue // dynamic call tree too large for the interpreter
			}
			osCycles += float64(oc)
			tunedCycles += float64(tc)
			measured++
		}
		if measured == 0 || osCycles == 0 {
			tb.AddRow(bench, "n/a", 0)
			continue
		}
		rel := tunedCycles / osCycles * 100
		rels = append(rels, rel)
		tb.AddRow(bench, fmt.Sprintf("%.1f%%", rel), measured)
	}
	text := fmt.Sprintf(
		"Runtime of size-tuned code relative to -Os, interpreter cycle model\n(call overhead + %d-byte i-cache).\n\n%s\nGeometric mean: %.1f%% (paper 103.6%%), median %.1f%% (paper 102%%).\n",
		interp.DefaultCacheBytes, tb.String(), stats.GeoMean(rels), stats.Median(rels))
	return Result{ID: "fig19", Title: "Performance cost of size tuning (Figure 19)", Text: text}
}

// runCycles compiles the file under cfg and executes its entry under the
// cycle model. ok is false when the file cannot be executed within fuel
// (some generated call DAGs have exponential dynamic call trees).
func (h *Harness) runCycles(fd *fileData, cfg *callgraph.Config) (int64, bool) {
	m, err := fd.comp.Build(cfg)
	if err != nil {
		return 0, false
	}
	if m.Func("entry") == nil {
		return 0, false
	}
	res, err := interp.Run(m, "entry", []int64{7}, interp.Options{
		Fuel:   20_000_000,
		SizeOf: codegen.SizeOf(m, codegen.TargetX86),
	})
	if err != nil {
		return 0, false
	}
	return res.Cycles, true
}
