package search

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/graph"
	"optinline/internal/lang"
)

// --- differential fuzz: pruned vs exhaustive vs brute force ----------------

// TestPrunedSearchDifferentialFuzz is the tentpole's oracle: on MinC
// programs from the generator, the branch-and-bound search must return the
// exact optimum the exhaustive recursion returns — same size AND same
// configuration key — while doing no more counted evaluations. Small graphs
// are additionally certified against brute force.
func TestPrunedSearchDifferentialFuzz(t *testing.T) {
	// Big enough that most generated programs are searchable, small enough
	// that the exhaustive oracle side stays affordable under -race.
	const maxSpace = 1 << 12
	// Walk seeds until 30 generated programs have actually been searched
	// (graphs that are empty or blow the space cap do not count).
	checked := 0
	for seed := int64(1); seed <= 200 && checked < 30; seed++ {
		name := fmt.Sprintf("prunefuzz%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		mod, err := lang.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		probe := compile.New(mod, codegen.TargetX86)
		if len(probe.Graph().Edges) == 0 {
			continue
		}

		cp := compile.New(mod, codegen.TargetX86)
		rp, okP := Optimal(cp, Options{MaxSpace: maxSpace})
		cn := compile.New(mod, codegen.TargetX86)
		rn, okN := Optimal(cn, Options{MaxSpace: maxSpace, NoPrune: true})
		if okP != okN {
			t.Fatalf("seed %d: MaxSpace disagreement pruned=%v exhaustive=%v", seed, okP, okN)
		}
		if !okP {
			continue
		}
		checked++
		if rp.Size != rn.Size {
			t.Fatalf("seed %d: pruned optimum %d != exhaustive optimum %d\n%s",
				seed, rp.Size, rn.Size, src)
		}
		if rp.Config.Key() != rn.Config.Key() {
			t.Fatalf("seed %d: pruned config {%s} != exhaustive config {%s}",
				seed, rp.Config.Key(), rn.Config.Key())
		}
		if rp.Evaluations > rn.Evaluations {
			t.Fatalf("seed %d: pruned search evaluated more than exhaustive: %d > %d",
				seed, rp.Evaluations, rn.Evaluations)
		}
		if !rp.Prune.Enabled || rn.Prune.Enabled {
			t.Fatalf("seed %d: prune stats gating wrong: pruned=%+v exhaustive=%+v",
				seed, rp.Prune, rn.Prune)
		}
		if e := len(probe.Graph().Edges); e <= 12 {
			cb := compile.New(mod, codegen.TargetX86)
			bestCfg, bestSize := NaiveOptimal(cb)
			if rp.Size != bestSize {
				t.Fatalf("seed %d: pruned optimum %d != brute-force optimum %d (E=%d)",
					seed, rp.Size, bestSize, e)
			}
			// Brute force enumerates in a different order, so only the size
			// is canonical; still, the returned configs must price equally.
			if got := cb.Size(rp.Config); got != bestSize {
				t.Fatalf("seed %d: pruned config prices to %d, brute force found %d",
					seed, got, bestSize)
			}
			_ = bestCfg
		}
	}
	if checked < 30 {
		t.Fatalf("fuzz corpus too small: only %d programs searched", checked)
	}
}

// TestPrunedSearchSavesWork pins that the layer actually prunes on a shape
// where sharing is guaranteed: long chains revisit identical component
// subproblems along both branches.
func TestPrunedSearchSavesWork(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	saved := false
	for trial := 0; trial < 20; trial++ {
		m := randomModule(rng)
		probe := compile.New(m, codegen.TargetX86)
		if e := len(probe.Graph().Edges); e < 5 || e > 12 {
			continue
		}
		cp := compile.New(m, codegen.TargetX86)
		rp, _ := Optimal(cp, Options{})
		cn := compile.New(m, codegen.TargetX86)
		rn, _ := Optimal(cn, Options{NoPrune: true})
		if rp.Size != rn.Size || rp.Config.Key() != rn.Config.Key() {
			t.Fatalf("trial %d: pruned (%d,{%s}) != exhaustive (%d,{%s})",
				trial, rp.Size, rp.Config.Key(), rn.Size, rn.Config.Key())
		}
		if rp.Evaluations < rn.Evaluations {
			saved = true
		}
	}
	if !saved {
		t.Fatal("pruned search never beat the exhaustive evaluation count")
	}
}

// --- edgeComponents: parallel edges, self-loops, split invariants ----------

func edgeIDSet(mg *graph.Multigraph) []int { return mg.EdgeIDs() }

func TestEdgeComponentsParallelEdges(t *testing.T) {
	// Two parallel edges between 0-1 plus an unrelated component 2-3.
	mg := &graph.Multigraph{N: 4, Edges: []graph.Edge{
		{ID: 1, U: 0, V: 1},
		{ID: 2, U: 1, V: 0}, // parallel, opposite stored orientation
		{ID: 3, U: 2, V: 3},
	}}
	subs := edgeComponents(mg)
	if len(subs) != 2 {
		t.Fatalf("got %d components, want 2", len(subs))
	}
	got0, got1 := edgeIDSet(subs[0]), edgeIDSet(subs[1])
	if fmt.Sprint(got0) != "[1 2]" || fmt.Sprint(got1) != "[3]" {
		t.Fatalf("component edge IDs = %v / %v, want [1 2] / [3]", got0, got1)
	}
}

func TestEdgeComponentsSelfLoops(t *testing.T) {
	// A self-loop is a one-node component with an edge; an isolated node
	// must not produce a component.
	mg := &graph.Multigraph{N: 3, Edges: []graph.Edge{
		{ID: 7, U: 1, V: 1},
		{ID: 9, U: 0, V: 2},
	}}
	subs := edgeComponents(mg)
	if len(subs) != 2 {
		t.Fatalf("got %d components, want 2", len(subs))
	}
	// Ordering is by smallest contained node: {0,2} before {1}.
	if fmt.Sprint(edgeIDSet(subs[0])) != "[9]" || fmt.Sprint(edgeIDSet(subs[1])) != "[7]" {
		t.Fatalf("component edge IDs = %v / %v, want [9] / [7]",
			edgeIDSet(subs[0]), edgeIDSet(subs[1]))
	}
	// A self-loop alone is a single edge-bearing component: no split.
	loop := &graph.Multigraph{N: 2, Edges: []graph.Edge{{ID: 3, U: 0, V: 0}}}
	if subs := edgeComponents(loop); len(subs) != 1 || subs[0] != loop {
		t.Fatalf("self-loop-only graph split unexpectedly: %v", subs)
	}
}

// randomMultigraph samples a multigraph with duplicate endpoints and
// self-loops allowed; edge IDs are distinct and dense from 1.
func randomMultigraph(rng *rand.Rand) *graph.Multigraph {
	n := 2 + rng.Intn(7)
	e := rng.Intn(12)
	mg := &graph.Multigraph{N: n}
	for i := 0; i < e; i++ {
		mg.Edges = append(mg.Edges, graph.Edge{ID: i + 1, U: rng.Intn(n), V: rng.Intn(n)})
	}
	return mg
}

// TestSearchSplitsPreserveEdges is the property test behind the space
// accounting: every split the search applies — the components partition,
// RemoveEdge, ContractEdge — preserves the multiset of surviving edge
// identities (site IDs), so no configuration is ever duplicated or lost.
func TestSearchSplitsPreserveEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	var walk func(mg *graph.Multigraph, depth int)
	walk = func(mg *graph.Multigraph, depth int) {
		if len(mg.Edges) == 0 || depth > 6 {
			return
		}
		parent := edgeIDSet(mg)
		if subs := edgeComponents(mg); len(subs) > 1 {
			var union []int
			for _, sub := range subs {
				union = append(union, edgeIDSet(sub)...)
			}
			sort.Ints(union)
			if fmt.Sprint(union) != fmt.Sprint(parent) {
				t.Fatalf("components partition lost edges: %v -> %v", parent, union)
			}
			for _, sub := range subs {
				walk(sub, depth+1)
			}
			return
		}
		e := SelectPartitionEdge(mg)
		removed, contracted := mg.RemoveEdge(e.ID), mg.ContractEdge(e.ID)
		want := make([]int, 0, len(parent)-1)
		for _, id := range parent {
			if id != e.ID {
				want = append(want, id)
			}
		}
		if fmt.Sprint(edgeIDSet(removed)) != fmt.Sprint(want) {
			t.Fatalf("RemoveEdge(%d): %v -> %v, want %v", e.ID, parent, edgeIDSet(removed), want)
		}
		if fmt.Sprint(edgeIDSet(contracted)) != fmt.Sprint(want) {
			t.Fatalf("ContractEdge(%d): %v -> %v, want %v", e.ID, parent, edgeIDSet(contracted), want)
		}
		// Contraction must never detach surviving edges from the merged
		// endpoint class: the contracted graph's node universe is unchanged.
		if contracted.N != mg.N {
			t.Fatalf("ContractEdge changed N: %d -> %d", mg.N, contracted.N)
		}
		walk(removed, depth+1)
		walk(contracted, depth+1)
	}
	for trial := 0; trial < 40; trial++ {
		walk(randomMultigraph(rng), 0)
	}
}

// TestPruneStatsString pins the stderr stats line format the CLIs print.
func TestPruneStatsString(t *testing.T) {
	if got := (PruneStats{}).String(); got != "disabled" {
		t.Fatalf("disabled stats = %q", got)
	}
	p := PruneStats{Enabled: true, Subtrees: 3, MemoHits: 4, MemoMisses: 5, BoundEvals: 6}
	want := "3 subtrees pruned, memo 4 hits / 5 misses, 6 bound evaluations"
	if got := p.String(); got != want {
		t.Fatalf("stats = %q, want %q", got, want)
	}
	sum := p.Add(PruneStats{Enabled: false, Subtrees: 1, MemoHits: 1, MemoMisses: 1, BoundEvals: 1})
	if !sum.Enabled || sum.Subtrees != 4 || sum.MemoHits != 5 || sum.MemoMisses != 6 || sum.BoundEvals != 7 {
		t.Fatalf("Add = %+v", sum)
	}
}
