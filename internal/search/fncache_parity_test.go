package search

import (
	"math/rand"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
)

// TestOptimalFnCacheMatchesNoFnCache: the exhaustive search over the
// content-addressed function cache must match the -no-fncache oracle and
// checked compilation mode bit for bit — optimal size, configuration key,
// space size, and the evaluation counter inlinesearch prints on stdout.
func TestOptimalFnCacheMatchesNoFnCache(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	trials, hits := 0, int64(0)
	for trials < 12 {
		m := randomModule(rng)
		cached := compile.New(m, codegen.TargetX86)
		if len(cached.Graph().Edges) == 0 {
			continue
		}
		trials++
		legacy := compile.New(m, codegen.TargetX86)
		legacy.SetFnCache(false)
		chk := compile.NewWithOptions(m, codegen.TargetX86, compile.Options{Check: true})
		rc, ok1 := Optimal(cached, Options{})
		rl, ok2 := Optimal(legacy, Options{})
		rk, ok3 := Optimal(chk, Options{})
		if err := chk.CheckFailure(); err != nil {
			t.Fatalf("trial %d: checked search: %v\nmodule:\n%s", trials, err, m.String())
		}
		if ok1 != ok2 || ok1 != ok3 {
			t.Fatalf("trial %d: ok diverges: %v / %v / %v", trials, ok1, ok2, ok3)
		}
		if rc.Size != rl.Size || rc.Size != rk.Size || rc.SpaceSize != rl.SpaceSize {
			t.Fatalf("trial %d: fncache %d / -no-fncache %d / checked %d (spaces %d vs %d)\nmodule:\n%s",
				trials, rc.Size, rl.Size, rk.Size, rc.SpaceSize, rl.SpaceSize, m.String())
		}
		if rc.Config.Key() != rl.Config.Key() || rc.Config.Key() != rk.Config.Key() {
			t.Fatalf("trial %d: optimal config keys diverge: %q / %q / %q",
				trials, rc.Config.Key(), rl.Config.Key(), rk.Config.Key())
		}
		if rc.Evaluations != rl.Evaluations {
			t.Fatalf("trial %d: evaluation counters diverge: fncache %d vs oracle %d",
				trials, rc.Evaluations, rl.Evaluations)
		}
		hits += cached.FnCache().Stats().Hits
	}
	if hits == 0 {
		t.Fatal("content cache never hit across the search corpus")
	}
}
