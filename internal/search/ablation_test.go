package search

import (
	"math/rand"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
)

func TestSelectorsAgreeOnCount(t *testing.T) {
	// Any selector explores a complete space: its count must be at least 2
	// for one edge and all selectors must agree on a single-edge graph.
	g := pathGraph(1)
	a, _ := countSpaceSel(g, 0, SelectFirstEdge)
	b, _ := countSpaceSel(g, 0, SelectLowestID)
	c, _ := countSpace(g, 0)
	if a != 2 || b != 2 || c != 2 {
		t.Fatalf("single edge counts: %d %d %d", a, b, c)
	}
}

func TestPaperSelectorBeatsBaselineOnPaths(t *testing.T) {
	// On a long path, the central-bridge heuristic splits the space while
	// first-edge chews one edge at a time.
	g := pathGraph(12)
	paper, _ := countSpace(g, 0)
	naiveSel, capped := countSpaceSel(g, 1<<20, SelectFirstEdge)
	if capped {
		t.Fatal("unexpected cap")
	}
	if paper >= naiveSel {
		t.Fatalf("paper selector (%d) should beat first-edge (%d) on P12", paper, naiveSel)
	}
}

func TestAblationAcrossRandomModules(t *testing.T) {
	// Aggregate over random call graphs: the paper's selector should not
	// lose to the structure-blind baseline overall.
	rng := rand.New(rand.NewSource(77))
	var paperTotal, baseTotal uint64
	for trial := 0; trial < 20; trial++ {
		m := randomModule(rng)
		c := compile.New(m, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) < 3 || len(g.Edges) > 14 {
			continue
		}
		p, c1 := RecursiveSpaceSize(g, 1<<22)
		b, c2 := SpaceSizeWith(g, 1<<22, SelectFirstEdge)
		if c1 || c2 {
			continue
		}
		paperTotal += p
		baseTotal += b
	}
	if paperTotal == 0 {
		t.Skip("no eligible graphs")
	}
	// The heuristic's advantage is structural: it wins by orders of
	// magnitude on bridge-rich graphs (see the path test above) and pays a
	// small combine overhead on dense ones. Overall it must stay within a
	// few percent of the structure-blind baseline even on unfavourable
	// random graphs.
	if float64(paperTotal) > 1.10*float64(baseTotal) {
		t.Fatalf("paper selector explored far more overall: %d vs %d", paperTotal, baseTotal)
	}
}
