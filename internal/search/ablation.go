package search

import "optinline/internal/graph"

// Selector picks the partition edge at a binary node of the inlining tree.
// The choice does not affect the optimality of the search, only how many
// configurations it must evaluate (Section 3.2 of the paper).
type Selector func(mg *graph.Multigraph) graph.Edge

// SelectFirstEdge is the ablation baseline: always partition on the first
// remaining edge, ignoring graph structure. On bridge-rich graphs this
// degenerates toward the naive 2^E exploration.
func SelectFirstEdge(mg *graph.Multigraph) graph.Edge {
	if len(mg.Edges) == 0 {
		panic("search: SelectFirstEdge on empty graph")
	}
	return mg.Edges[0]
}

// SelectLowestID partitions on the lowest-numbered edge; another
// structure-blind baseline that is stable under edge reordering.
func SelectLowestID(mg *graph.Multigraph) graph.Edge {
	if len(mg.Edges) == 0 {
		panic("search: SelectLowestID on empty graph")
	}
	best := mg.Edges[0]
	for _, e := range mg.Edges[1:] {
		if e.ID < best.ID {
			best = e
		}
	}
	return best
}

// SpaceSizeWith counts the recursively partitioned space under an arbitrary
// partition-edge selector, for ablating the paper's heuristic. Semantics
// match RecursiveSpaceSize.
func SpaceSizeWith(g interface{ Undirected() *graph.Multigraph }, limit uint64, sel Selector) (uint64, bool) {
	return countSpaceSel(g.Undirected(), limit, sel)
}

func countSpaceSel(mg *graph.Multigraph, limit uint64, sel Selector) (uint64, bool) {
	if len(mg.Edges) == 0 {
		return 1, false
	}
	subs := edgeComponents(mg)
	if len(subs) > 1 {
		total := uint64(1)
		for _, sub := range subs {
			n, capped := countSpaceSel(sub, limit, sel)
			total += n
			if capped || (limit > 0 && total > limit) {
				return total, true
			}
		}
		return total, false
	}
	e := sel(mg)
	n1, c1 := countSpaceSel(mg.RemoveEdge(e.ID), limit, sel)
	if c1 || (limit > 0 && n1 > limit) {
		return n1, true
	}
	n2, c2 := countSpaceSel(mg.ContractEdge(e.ID), limit, sel)
	total := n1 + n2
	return total, c2 || (limit > 0 && total > limit)
}
