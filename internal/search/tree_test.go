package search

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
)

// figure5Module builds a call structure shaped like the paper's Figure 5:
// F -> G -> K -> L -> H -> I, a 5-edge path whose central bridge partitions
// the space.
func figure5Module(t *testing.T) *ir.Module {
	t.Helper()
	src := `
func @i(%x) {
entry:
  %c = const 3
  %r = mul %x, %c
  ret %r
}
func @h(%x) {
entry:
  %r = call @i(%x) !site 5
  ret %r
}
func @l(%x) {
entry:
  %r = call @h(%x) !site 4
  ret %r
}
func @k(%x) {
entry:
  %r = call @l(%x) !site 3
  ret %r
}
func @g(%x) {
entry:
  %r = call @k(%x) !site 2
  ret %r
}
export func @f(%x) {
entry:
  %r = call @g(%x) !site 1
  ret %r
}
`
	m, err := ir.Parse("fig5", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildTreeFigure5(t *testing.T) {
	m := figure5Module(t)
	g := callgraph.Build(m)
	root, err := BuildTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if root.Kind != BinaryNode {
		t.Fatalf("root kind %v, want binary (connected graph)", root.Kind)
	}
	// Not inlining a central bridge must produce a components node.
	if root.NotInlined.Kind != ComponentsNode {
		t.Fatalf("no-inline side kind %v, want components\n%s", root.NotInlined.Kind, root)
	}
	leaves, comps := root.Count()
	counted, capped := RecursiveSpaceSize(g, 0)
	if capped || uint64(leaves+comps) != counted {
		t.Fatalf("tree count %d+%d != counted space %d", leaves, comps, counted)
	}
	// The tree count must beat the naive 2^5 = 32.
	if leaves+comps >= 32 {
		t.Fatalf("no reduction: %d", leaves+comps)
	}
}

func TestTreeEvaluateMatchesFusedSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trials := 0
	for trials < 12 {
		m := randomModule(rng)
		c := compile.New(m, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 || len(g.Edges) > 9 {
			continue
		}
		trials++
		root, err := BuildTree(g, 1<<14)
		if err != nil {
			t.Fatalf("trial %d: %v", trials, err)
		}
		_, treeSize := root.Evaluate(c)
		res, ok := Optimal(compile.New(m, codegen.TargetX86), Options{})
		if !ok || treeSize != res.Size {
			t.Fatalf("trial %d: tree evaluation %d != fused search %d", trials, treeSize, res.Size)
		}
	}
}

func TestBuildTreeCap(t *testing.T) {
	m := figure5Module(t)
	g := callgraph.Build(m)
	_, err := BuildTree(g, 3)
	if !errors.Is(err, ErrTreeTooLarge) {
		t.Fatalf("want ErrTreeTooLarge, got %v", err)
	}
}

func TestTreeRendering(t *testing.T) {
	m := figure5Module(t)
	g := callgraph.Build(m)
	root, err := BuildTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := root.String()
	for _, want := range []string{"partition on", "independent components", "leaf", "no-inline", "inline"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendering missing %q:\n%s", want, text)
		}
	}
	// Merged node labels must appear once edges are inlined ("g+k" style).
	if !strings.Contains(text, "+") {
		t.Fatalf("no merged node labels:\n%s", text)
	}
}

func TestTreeLeafDecisionsComplete(t *testing.T) {
	m := figure5Module(t)
	g := callgraph.Build(m)
	root, err := BuildTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the always-inline path: every edge should end up labeled.
	n := root
	for n.Kind == BinaryNode {
		n = n.Inlined
	}
	if n.Kind != LeafNode {
		t.Fatalf("all-inline path should end at a leaf, got %v", n.Kind)
	}
	if n.Decisions.InlineCount() != len(g.Edges) {
		t.Fatalf("all-inline leaf has %d labels, want %d", n.Decisions.InlineCount(), len(g.Edges))
	}
}
