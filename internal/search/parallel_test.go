package search

import (
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/workload"
)

// TestParallelSearchDeterminism: on the seed corpus, the parallel search
// must return byte-identical best configurations, sizes, and space-size
// accounting — and, thanks to single-flight compile caches, identical
// evaluation counts — for every worker count, including the sequential
// recursion (Workers < 0).
func TestParallelSearchDeterminism(t *testing.T) {
	const spaceCap = 1 << 10
	p := workload.Profile{
		Name: "determinism", Files: 10, TotalEdges: 70,
		ConstArgProb: 0.4, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.1, BranchProb: 0.5, MultiRootPct: 0.15,
	}
	checked := 0
	for _, f := range workload.Generate(p).Files {
		probe := compile.New(f.Module, codegen.TargetX86)
		if len(probe.Graph().Edges) == 0 {
			continue
		}
		if _, capped := RecursiveSpaceSize(probe.Graph(), spaceCap); capped {
			continue
		}
		type run struct {
			jobs int
			res  Result
		}
		var runs []run
		for _, jobs := range []int{-1, 1, 2, 8} {
			c := compile.New(f.Module, codegen.TargetX86)
			res, ok := Optimal(c, Options{Workers: jobs, MaxSpace: spaceCap})
			if !ok {
				t.Fatalf("%s jobs=%d: search aborted", f.Name, jobs)
			}
			runs = append(runs, run{jobs, res})
		}
		base := runs[0]
		for _, r := range runs[1:] {
			if got, want := r.res.Config.Key(), base.res.Config.Key(); got != want {
				t.Fatalf("%s: jobs=%d best config %q != sequential %q",
					f.Name, r.jobs, got, want)
			}
			if r.res.Size != base.res.Size {
				t.Fatalf("%s: jobs=%d size %d != sequential %d",
					f.Name, r.jobs, r.res.Size, base.res.Size)
			}
			if r.res.SpaceSize != base.res.SpaceSize {
				t.Fatalf("%s: jobs=%d space %d != sequential %d",
					f.Name, r.jobs, r.res.SpaceSize, base.res.SpaceSize)
			}
			if r.res.Evaluations != base.res.Evaluations {
				t.Fatalf("%s: jobs=%d evaluations %d != sequential %d",
					f.Name, r.jobs, r.res.Evaluations, base.res.Evaluations)
			}
		}
		checked++
	}
	if checked < 3 {
		t.Fatalf("only %d files searchable under the cap; corpus too hostile", checked)
	}
}

// TestParallelSearchDeterminismMemoOff repeats the check with the memoized
// compile path disabled, isolating the search-level merge determinism from
// the cache-level single-flight determinism.
func TestParallelSearchDeterminismMemoOff(t *testing.T) {
	p := workload.Profile{
		Name: "determinism", Files: 4, TotalEdges: 30,
		ConstArgProb: 0.4, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.1, BranchProb: 0.5, MultiRootPct: 0.15,
	}
	for _, f := range workload.Generate(p).Files {
		probe := compile.New(f.Module, codegen.TargetX86)
		if len(probe.Graph().Edges) == 0 {
			continue
		}
		if _, capped := RecursiveSpaceSize(probe.Graph(), 1<<9); capped {
			continue
		}
		var ref *Result
		for _, jobs := range []int{-1, 8} {
			c := compile.New(f.Module, codegen.TargetX86)
			c.SetMemoize(false)
			res, ok := Optimal(c, Options{Workers: jobs, MaxSpace: 1 << 9})
			if !ok {
				t.Fatalf("%s jobs=%d: search aborted", f.Name, jobs)
			}
			if ref == nil {
				ref = &res
				continue
			}
			if res.Config.Key() != ref.Config.Key() || res.Size != ref.Size ||
				res.Evaluations != ref.Evaluations {
				t.Fatalf("%s: memo-off jobs=%d diverged from sequential", f.Name, jobs)
			}
		}
	}
}
