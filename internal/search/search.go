// Package search implements the paper's inlining search-space formulation
// and exhaustive optimal-inlining search (Sections 3 and 4).
//
// The naive space of a call graph with E candidate edges has 2^E inlining
// configurations. The recursively partitioned space exploits two facts:
// connected components are independent w.r.t. inlining, and a non-inlined
// bridge makes its two sides independent. The search is organized as an
// inlining tree (Algorithm 2): binary nodes assign {inline, no-inline} to a
// partition edge (contracting or deleting it in the graph), components
// nodes split independent components, and leaves are fully labeled
// configurations. Evaluation (Algorithm 1) propagates the best
// configuration from the leaves to the root; leaf and combine evaluations
// compile the module and measure its size.
//
// The tree is never materialized: construction and evaluation are fused
// into one lazy recursion, and space-size accounting (#leaves +
// #components-nodes) runs the same recursion without compiling.
package search

import (
	"math"
	"math/big"
	"runtime"
	"sort"

	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/graph"
)

// NaiveSpaceLog2 returns log2 of the naive space size: the number of
// candidate edges.
func NaiveSpaceLog2(g *callgraph.Graph) float64 {
	return float64(len(g.Edges))
}

// NaiveSpaceSize returns the exact naive space size 2^E.
func NaiveSpaceSize(g *callgraph.Graph) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(len(g.Edges)))
}

// ComponentSpaceSize returns the space size when only connected components
// are exploited: sum over components of 2^|E_c| (Section 3.1).
func ComponentSpaceSize(g *callgraph.Graph) *big.Int {
	mg := g.Undirected()
	comps := mg.ConnectedComponents()
	inComp := make([]int, mg.N)
	for ci, nodes := range comps {
		for _, n := range nodes {
			inComp[n] = ci
		}
	}
	edgeCount := make([]int, len(comps))
	for _, e := range mg.Edges {
		edgeCount[inComp[e.U]]++
	}
	total := new(big.Int)
	for _, ec := range edgeCount {
		if ec == 0 {
			continue
		}
		total.Add(total, new(big.Int).Lsh(big.NewInt(1), uint(ec)))
	}
	return total
}

// RecursiveSpaceSize counts the recursively partitioned space: the number
// of inlining-tree leaves plus components nodes. Counting stops early once
// the count exceeds limit (0 means no limit); the second result reports
// whether the limit was hit (the returned count is then a lower bound >
// limit).
func RecursiveSpaceSize(g *callgraph.Graph, limit uint64) (uint64, bool) {
	mg := g.Undirected()
	return countSpace(mg, limit)
}

// RecursiveSpaceLog2 is a convenience: log2 of the (possibly capped) count.
func RecursiveSpaceLog2(g *callgraph.Graph, limit uint64) (float64, bool) {
	n, capped := RecursiveSpaceSize(g, limit)
	if n == 0 {
		return 0, capped
	}
	return math.Log2(float64(n)), capped
}

// SubspaceSize is RecursiveSpaceSize for one subgraph (typically a
// component from ComponentSubgraphs): the number of tree evaluations an
// OptimalCompletion over it costs.
func SubspaceSize(mg *graph.Multigraph, limit uint64) (uint64, bool) {
	return countSpace(mg, limit)
}

func countSpace(mg *graph.Multigraph, limit uint64) (uint64, bool) {
	if len(mg.Edges) == 0 {
		return 1, false
	}
	subs := edgeComponents(mg)
	if len(subs) > 1 {
		total := uint64(1) // the combining evaluation of the components node
		for _, sub := range subs {
			n, capped := countSpace(sub, limit)
			total += n
			if capped || (limit > 0 && total > limit) {
				return total, true
			}
		}
		return total, false
	}
	e := SelectPartitionEdge(mg)
	n1, c1 := countSpace(mg.RemoveEdge(e.ID), limit)
	if c1 || (limit > 0 && n1 > limit) {
		return n1, true
	}
	n2, c2 := countSpace(mg.ContractEdge(e.ID), limit)
	total := n1 + n2
	return total, c2 || (limit > 0 && total > limit)
}

// edgeComponents splits the multigraph into one subgraph per connected
// component that contains at least one edge. Node numbering is preserved.
func edgeComponents(mg *graph.Multigraph) []*graph.Multigraph {
	comps := mg.ConnectedComponents()
	inComp := make([]int, mg.N)
	for ci, nodes := range comps {
		for _, n := range nodes {
			inComp[n] = ci
		}
	}
	byComp := make(map[int][]graph.Edge)
	for _, e := range mg.Edges {
		ci := inComp[e.U]
		byComp[ci] = append(byComp[ci], e)
	}
	if len(byComp) <= 1 {
		// Zero or one edge-bearing component: no split.
		if len(byComp) == 0 {
			return nil
		}
		return []*graph.Multigraph{mg}
	}
	cis := make([]int, 0, len(byComp))
	for ci := range byComp {
		cis = append(cis, ci)
	}
	sort.Ints(cis)
	subs := make([]*graph.Multigraph, 0, len(cis))
	for _, ci := range cis {
		subs = append(subs, &graph.Multigraph{N: mg.N, Edges: byComp[ci]})
	}
	return subs
}

// SelectPartitionEdge implements the paper's partition-edge heuristic
// (Algorithm 2, SelectPartitionEdge):
//
//   - If bridges exist, pick the bridge adjacent to the least eccentric
//     vertex among bridge-adjacent vertices (prioritizing central bridges).
//   - Otherwise, take the node with the highest out-degree and among its
//     outgoing edges pick the one whose head has the least in-degree.
//
// Ties break toward lower node index / lower edge ID for determinism.
// Edge direction is taken from the stored (U=tail, V=head) orientation.
func SelectPartitionEdge(mg *graph.Multigraph) graph.Edge {
	if len(mg.Edges) == 0 {
		panic("search: SelectPartitionEdge on empty graph")
	}
	bridges := mg.Bridges()
	if len(bridges) > 0 {
		ecc := mg.Eccentricities()
		best := bridges[0]
		bestEcc := minEcc(ecc, best)
		for _, b := range bridges[1:] {
			be := minEcc(ecc, b)
			if be < bestEcc || (be == bestEcc && b.ID < best.ID) {
				best, bestEcc = b, be
			}
		}
		return best
	}
	out := make([]int, mg.N)
	in := make([]int, mg.N)
	for _, e := range mg.Edges {
		out[e.U]++
		in[e.V]++
	}
	u := -1
	for n := 0; n < mg.N; n++ {
		if u == -1 || out[n] > out[u] {
			u = n
		}
	}
	var best *graph.Edge
	for i := range mg.Edges {
		e := &mg.Edges[i]
		if e.U != u {
			continue
		}
		if best == nil || in[e.V] < in[best.V] || (in[e.V] == in[best.V] && e.ID < best.ID) {
			best = e
		}
	}
	if best == nil {
		// Unreachable: u maximizes out-degree and the graph has edges, so
		// out[u] >= 1 and the loop above found at least one candidate. A
		// silent fallback here (an arbitrary edge) would desynchronize the
		// evaluated tree from countSpace's accounting, so fail loudly.
		panic("search: SelectPartitionEdge: max-out-degree node has no outgoing edge")
	}
	return *best
}

func minEcc(ecc []int, e graph.Edge) int {
	a, b := ecc[e.U], ecc[e.V]
	if b < a {
		return b
	}
	return a
}

// Result is the outcome of an optimal search.
type Result struct {
	Config      *callgraph.Config // an optimal configuration
	Size        int               // its .text size
	SpaceSize   uint64            // evaluations in the full recursive space
	Evaluations int64             // actual (uncached) compilations
	Prune       PruneStats        // branch-and-bound layer counters
}

// Options configures Optimal.
type Options struct {
	// Workers bounds the worker pool for concurrent subtree evaluations:
	// 0 selects GOMAXPROCS, negative forces the sequential recursion, and
	// any positive value is used as given. Results are bit-identical across
	// worker counts: sibling subtrees are merged in deterministic order,
	// the compile caches and the component memo are single-flight, and
	// pruning decisions are functions of the subproblem rather than of the
	// schedule, so even evaluation counters do not depend on scheduling.
	Workers int
	// MaxSpace aborts the search (returns ok=false) if the recursive space
	// exceeds this many evaluations. 0 means no bound. The bound is on the
	// full tree: pruning changes how much of it is visited, not its size.
	MaxSpace uint64
	// NoPrune disables the branch-and-bound layer (component memo +
	// admissible bounds), forcing the exhaustive recursion — the
	// differential oracle behind the CLIs' -no-prune flags. The layer is
	// exact, so results are byte-identical either way; only the amount of
	// work differs. Pruning is also off whenever the per-function memo is
	// (SetMemoize(false), checked mode), which cannot price the bounds.
	NoPrune bool
}

// Optimal searches the recursively partitioned space and returns an optimal
// configuration for the compiler's module and target. ok is false when
// MaxSpace is exceeded. The search is exact; by default a branch-and-bound
// layer (see prune.go) skips subtrees that provably cannot improve on a
// sibling and memoizes repeated component subproblems.
func Optimal(c *compile.Compiler, opts Options) (Result, bool) {
	g := c.Graph()
	space, capped := RecursiveSpaceSize(g, opts.MaxSpace)
	if opts.MaxSpace > 0 && (capped || space > opts.MaxSpace) {
		return Result{SpaceSize: space}, false
	}
	ev := newEvaluator(c, opts)
	cfg, size := ev.eval(g.Undirected(), callgraph.NewConfig(), ev.root)
	return Result{
		Config:      cfg,
		Size:        size,
		SpaceSize:   space,
		Evaluations: c.Evaluations(),
		Prune:       ev.pruneStats(),
	}, true
}

// OptimalCompletion searches the recursive space of one subgraph (typically
// a component from ComponentSubgraphs) with every label outside it fixed by
// decided, and returns the best full configuration and its whole-module
// size. The autotuner's exact-component polish is built on it: component
// optima are independent of labels outside the component (the paper's
// independence theorem), so re-solving one component under a tuned context
// yields the true component optimum given the rest.
func OptimalCompletion(c *compile.Compiler, mg *graph.Multigraph, decided *callgraph.Config, opts Options) (*callgraph.Config, int) {
	ev := newEvaluator(c, opts)
	root := ev.root
	if root != nil {
		// Rebase the pruning handle onto the caller's decided prefix; the
		// clean-slate handle only anchors searches from the root.
		root = c.RebaseContrib(root, decided.InlineSites())
		if !root.HasContrib() {
			root = nil
		}
	}
	return ev.eval(mg, decided.Clone(), root)
}

// ComponentSubgraphs returns the edge-bearing connected components of the
// candidate graph's undirected view, ready for OptimalCompletion.
func ComponentSubgraphs(g *callgraph.Graph) []*graph.Multigraph {
	mg := g.Undirected()
	if len(mg.Edges) == 0 {
		return nil
	}
	return edgeComponents(mg)
}

type evaluator struct {
	c      *compile.Compiler
	base   *compile.Sized // clean-slate handle; nil disables delta pricing
	tokens chan struct{}  // nil means sequential
	eng    *engine        // branch-and-bound state; nil disables pruning
	root   *compile.Sized // clean-slate contribution handle for pruning
}

// newEvaluator wires the delta pricing base and, unless disabled, the
// branch-and-bound engine.
func newEvaluator(c *compile.Compiler, opts Options) *evaluator {
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Every leaf and combine evaluation is a perturbation of the clean
	// slate confined to one component, so price them as deltas against a
	// clean-slate handle: only the functions reachable into the labeled
	// component recompile, never the whole module. DeltaBase is nil when
	// the engine is off (-no-delta, checked mode); sizeOf then takes the
	// classic whole-configuration path. Both paths are byte-identical,
	// including evaluation counters — the handle itself is built outside
	// the config cache, so the clean slate is still "evaluated" at the
	// first leaf that requests it, exactly as before.
	ev := &evaluator{c: c, base: c.DeltaBase(callgraph.NewConfig())}
	if workers > 1 {
		ev.tokens = make(chan struct{}, workers)
	}
	if !opts.NoPrune {
		// The pruning handle is deliberately independent of the delta flag:
		// it only needs the per-function memo, so -no-delta runs prune (and
		// count evaluations) exactly like delta runs.
		root := ev.base
		if root == nil {
			root = c.ContribBase(callgraph.NewConfig())
		}
		if root.HasContrib() {
			ev.eng = newEngine(c.Graph())
			ev.root = root
		}
	}
	return ev
}

func (ev *evaluator) pruneStats() PruneStats {
	if ev.eng == nil {
		return PruneStats{}
	}
	return ev.eng.stats()
}

// sizeOf prices a fully-merged (partial) configuration: incrementally
// against the clean-slate handle when the delta engine is on, otherwise
// through the classic whole-configuration path.
func (ev *evaluator) sizeOf(cfg *callgraph.Config) int {
	if ev.base != nil {
		return ev.c.SizeDelta(ev.base, cfg.InlineSites())
	}
	return ev.c.Size(cfg)
}

// eval is Algorithm 1 fused with Algorithm 2: it lazily builds and
// evaluates the inlining tree rooted at the given graph state.
// decided holds the labels assigned on the path from the root; h is the
// contribution handle pricing decided (nil when pruning is off or the
// prefix stopped compiling, in which case the subtree runs exhaustively).
func (ev *evaluator) eval(mg *graph.Multigraph, decided *callgraph.Config, h *compile.Sized) (*callgraph.Config, int) {
	if len(mg.Edges) == 0 {
		// InliningTreeLeaf: a fully labeled (partial w.r.t. siblings)
		// configuration; evaluate it.
		cfg := decided.Clone()
		return cfg, ev.sizeOf(cfg)
	}
	if subs := edgeComponents(mg); len(subs) > 1 {
		// InliningTreeComponentsNode: independent components explored
		// independently, then combined with one extra evaluation. The
		// decided prefix — and with it the handle — is the same in every
		// child.
		combined := decided.Clone()
		results := make([]*callgraph.Config, len(subs))
		ev.parallelEach(len(subs), func(i int) {
			sub, _ := ev.eval(subs[i], decided, h)
			results[i] = sub
		})
		for _, sub := range results {
			combined.Merge(sub)
		}
		return combined, ev.sizeOf(combined)
	}
	if ev.eng != nil && h.HasContrib() {
		// Single component with a priced prefix: memoized branch-and-bound.
		return ev.evalComponent(mg, decided, h)
	}
	// InliningTreeBinaryNode: label the partition edge both ways.
	e := SelectPartitionEdge(mg)
	var cfg1, cfg2 *callgraph.Config
	var size1, size2 int
	ev.parallelEach(2, func(i int) {
		if i == 0 {
			cfg1, size1 = ev.eval(mg.RemoveEdge(e.ID), decided, nil)
		} else {
			cfg2, size2 = ev.eval(mg.ContractEdge(e.ID), decided.Clone().Set(e.ID, true), nil)
		}
	})
	if size1 <= size2 {
		return cfg1, size1
	}
	return cfg2, size2
}

// parallelEach runs n closures, possibly concurrently if worker tokens are
// available; it always runs index 0 on the calling goroutine.
//
// The pool is fire-and-forget by design: a closure either grabs a token and
// runs on a fresh goroutine or runs inline on the caller, so a parent
// blocked on children always has at least one child running on its own
// stack — including when every token holder is parked on a single-flight
// memo or cache slot (the solver of that slot is itself running inline
// somewhere). A FIFO work queue would deadlock exactly there, and pushing a
// shared best-size through it (the classic branch-and-bound driver) would
// trade the bit-exact counter guarantee for schedule-dependent pruning; the
// handles and the component memo carry the incumbent instead (prune.go).
func (ev *evaluator) parallelEach(n int, fn func(i int)) {
	if ev.tokens == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	done := make(chan int, n-1)
	spawned := 0
	for i := 1; i < n; i++ {
		select {
		case ev.tokens <- struct{}{}:
			spawned++
			go func(ix int) {
				defer func() { <-ev.tokens }()
				fn(ix)
				done <- ix
			}(i)
		default:
			fn(i)
		}
	}
	fn(0)
	for ; spawned > 0; spawned-- {
		<-done
	}
}

// NaiveOptimal enumerates the full 2^E space; usable only for tiny graphs
// and used by tests to certify that the recursive search is exact.
func NaiveOptimal(c *compile.Compiler) (*callgraph.Config, int) {
	sites := c.Graph().Sites()
	if len(sites) > 22 {
		panic("search: NaiveOptimal on a graph with more than 22 edges")
	}
	best := callgraph.NewConfig()
	bestSize := c.Size(best)
	for mask := uint64(1); mask < 1<<uint(len(sites)); mask++ {
		cfg := callgraph.NewConfig()
		for i, s := range sites {
			if mask&(1<<uint(i)) != 0 {
				cfg.Set(s, true)
			}
		}
		if size := c.Size(cfg); size < bestSize {
			best, bestSize = cfg, size
		}
	}
	return best, bestSize
}
