package search

import (
	"fmt"
	"sort"
	"strings"

	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/graph"
)

// This file materializes the paper's inlining tree (Section 3.2, Figure 6)
// as an explicit data structure. The exhaustive search itself uses the
// fused lazy recursion in search.go — materialization costs memory
// proportional to the space size — but the explicit tree is invaluable for
// inspection, teaching, and testing: Figure 6 can be printed, the three
// node kinds are visible, and Algorithm 1 can be run over the structure
// and checked against the fused search.

// NodeKind distinguishes the paper's three inlining-tree node kinds.
type NodeKind uint8

// Inlining-tree node kinds (paper Section 3.2).
const (
	LeafNode       NodeKind = iota // a (partial) inlining configuration
	BinaryNode                     // assigns both labels to a partition edge
	ComponentsNode                 // splits independent inlining components
)

func (k NodeKind) String() string {
	switch k {
	case LeafNode:
		return "leaf"
	case BinaryNode:
		return "binary"
	case ComponentsNode:
		return "components"
	}
	return "?"
}

// TreeNode is one node of a materialized inlining tree.
type TreeNode struct {
	Kind NodeKind

	// Edge is the partition edge of a BinaryNode; NotInlined and Inlined
	// are its two subtrees (paper: sibling subtrees assign opposite labels
	// to the same edge).
	Edge       int
	NotInlined *TreeNode
	Inlined    *TreeNode

	// Children are the independent inlining components of a ComponentsNode.
	Children []*TreeNode

	// Decisions is the configuration accumulated on the path from the
	// root; complete at leaves of the outermost component.
	Decisions *callgraph.Config

	// Nodes is the remaining function/node set of the (merged) call graph
	// at this point, for rendering Figure 6-style labels.
	Nodes []string
}

// ErrTreeTooLarge is returned when materialization would exceed the cap.
var ErrTreeTooLarge = fmt.Errorf("search: inlining tree exceeds node cap")

// BuildTree materializes the inlining tree of the call graph, failing if
// it would exceed maxNodes tree nodes (0 means 1<<16).
func BuildTree(g *callgraph.Graph, maxNodes int) (*TreeNode, error) {
	if maxNodes <= 0 {
		maxNodes = 1 << 16
	}
	b := &treeBuilder{g: g, budget: maxNodes}
	root, err := b.build(g.Undirected(), callgraph.NewConfig())
	if err != nil {
		return nil, err
	}
	return root, nil
}

type treeBuilder struct {
	g      *callgraph.Graph
	budget int
}

func (tb *treeBuilder) spend() error {
	tb.budget--
	if tb.budget < 0 {
		return ErrTreeTooLarge
	}
	return nil
}

func (tb *treeBuilder) build(mg *graph.Multigraph, decided *callgraph.Config) (*TreeNode, error) {
	if err := tb.spend(); err != nil {
		return nil, err
	}
	if len(mg.Edges) == 0 {
		return &TreeNode{
			Kind:      LeafNode,
			Decisions: decided.Clone(),
			Nodes:     tb.mergedNodeNames(mg, decided),
		}, nil
	}
	if subs := edgeComponents(mg); len(subs) > 1 {
		node := &TreeNode{
			Kind:      ComponentsNode,
			Decisions: decided.Clone(),
			Nodes:     tb.mergedNodeNames(mg, decided),
		}
		for _, sub := range subs {
			child, err := tb.build(sub, decided)
			if err != nil {
				return nil, err
			}
			node.Children = append(node.Children, child)
		}
		return node, nil
	}
	e := SelectPartitionEdge(mg)
	not, err := tb.build(mg.RemoveEdge(e.ID), decided)
	if err != nil {
		return nil, err
	}
	inl, err := tb.build(mg.ContractEdge(e.ID), decided.Clone().Set(e.ID, true))
	if err != nil {
		return nil, err
	}
	return &TreeNode{
		Kind:       BinaryNode,
		Edge:       e.ID,
		NotInlined: not,
		Inlined:    inl,
		Decisions:  decided.Clone(),
		Nodes:      tb.mergedNodeNames(mg, decided),
	}, nil
}

// mergedNodeNames renders the current call-graph nodes with inline-merged
// functions concatenated, Figure 6 style ("F, G, KL, H, I").
func (tb *treeBuilder) mergedNodeNames(mg *graph.Multigraph, decided *callgraph.Config) []string {
	// Union-find over the original nodes, merging across inlined edges.
	parent := make([]int, len(tb.g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range tb.g.Edges {
		if decided.Inline(e.Site) {
			a, b := find(tb.g.Index[e.Caller]), find(tb.g.Index[e.Callee])
			if a != b {
				parent[b] = a
			}
		}
	}
	groups := make(map[int][]string)
	for i, name := range tb.g.Nodes {
		r := find(i)
		groups[r] = append(groups[r], name)
	}
	var out []string
	for _, names := range groups {
		sort.Strings(names)
		out = append(out, strings.Join(names, "+"))
	}
	sort.Strings(out)
	return out
}

// Count returns the number of leaves and components nodes: the evaluation
// count of the recursively partitioned space (Section 3.2).
func (n *TreeNode) Count() (leaves, components int) {
	switch n.Kind {
	case LeafNode:
		return 1, 0
	case BinaryNode:
		l1, c1 := n.NotInlined.Count()
		l2, c2 := n.Inlined.Count()
		return l1 + l2, c1 + c2
	default:
		l, c := 0, 1
		for _, ch := range n.Children {
			cl, cc := ch.Count()
			l += cl
			c += cc
		}
		return l, c
	}
}

// Evaluate runs Algorithm 1 over the materialized tree.
func (n *TreeNode) Evaluate(c *compile.Compiler) (*callgraph.Config, int) {
	switch n.Kind {
	case LeafNode:
		cfg := n.Decisions.Clone()
		return cfg, c.Size(cfg)
	case BinaryNode:
		cfg1, s1 := n.NotInlined.Evaluate(c)
		cfg2, s2 := n.Inlined.Evaluate(c)
		if s1 <= s2 {
			return cfg1, s1
		}
		return cfg2, s2
	default:
		combined := n.Decisions.Clone()
		for _, ch := range n.Children {
			sub, _ := ch.Evaluate(c)
			combined.Merge(sub)
		}
		return combined, c.Size(combined)
	}
}

// String renders the tree in an indented Figure 6-like form.
func (n *TreeNode) String() string {
	var sb strings.Builder
	n.render(&sb, "", "")
	return sb.String()
}

func (n *TreeNode) render(sb *strings.Builder, prefix, label string) {
	nodes := strings.Join(n.Nodes, ", ")
	switch n.Kind {
	case LeafNode:
		fmt.Fprintf(sb, "%s%sleaf {%s} %s\n", prefix, label, nodes, n.Decisions)
	case BinaryNode:
		fmt.Fprintf(sb, "%s%s(%s) partition on s%d\n", prefix, label, nodes, n.Edge)
		n.NotInlined.render(sb, prefix+"  ", fmt.Sprintf("s%d=no-inline: ", n.Edge))
		n.Inlined.render(sb, prefix+"  ", fmt.Sprintf("s%d=inline: ", n.Edge))
	default:
		fmt.Fprintf(sb, "%s%s[%s] %d independent components\n", prefix, label, nodes, len(n.Children))
		for i, ch := range n.Children {
			ch.render(sb, prefix+"  ", fmt.Sprintf("component %d: ", i))
		}
	}
}
