package search

import (
	"fmt"
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/graph"
	"optinline/internal/ir"
)

// pathGraph builds the undirected view of a call-graph path with n edges.
func pathGraph(n int) *graph.Multigraph {
	mg := &graph.Multigraph{N: n + 1}
	for i := 0; i < n; i++ {
		mg.Edges = append(mg.Edges, graph.Edge{ID: i + 1, U: i, V: i + 1})
	}
	return mg
}

func TestCountSpaceBasics(t *testing.T) {
	// No edges: a single leaf.
	if n, _ := countSpace(&graph.Multigraph{N: 3}, 0); n != 1 {
		t.Fatalf("empty graph count=%d", n)
	}
	// One edge: both labels, two evaluations (== naive).
	if n, _ := countSpace(pathGraph(1), 0); n != 2 {
		t.Fatalf("single edge count=%d", n)
	}
	// Two-edge path: no reduction possible, equals naive 4.
	if n, _ := countSpace(pathGraph(2), 0); n != 4 {
		t.Fatalf("P2 count=%d", n)
	}
}

func TestCountSpacePathReduction(t *testing.T) {
	// The paper's Figure 5 shape: a 5-edge path. One-level partitioning
	// gives 25 (vs naive 32); recursive partitioning does at least as well.
	n, capped := countSpace(pathGraph(5), 0)
	if capped {
		t.Fatal("unexpected cap")
	}
	if n >= 32 {
		t.Fatalf("no reduction on P5: %d", n)
	}
	// Longer paths: reduction grows to orders of magnitude.
	n10, _ := countSpace(pathGraph(10), 0)
	if n10 >= 200 { // naive is 1024
		t.Fatalf("P10 count=%d, expected large reduction", n10)
	}
}

func TestCountSpaceComponents(t *testing.T) {
	// Figure 4 shape: components with 2 edges and 1 edge.
	mg := &graph.Multigraph{N: 5, Edges: []graph.Edge{
		{ID: 1, U: 0, V: 1}, {ID: 2, U: 1, V: 2}, // F->G->K
		{ID: 3, U: 3, V: 4}, // H->L
	}}
	n, _ := countSpace(mg, 0)
	// Components explored independently (4 + 2) plus one combine.
	if n != 7 {
		t.Fatalf("components count=%d, want 7", n)
	}
}

func TestCountSpaceCap(t *testing.T) {
	n, capped := countSpace(pathGraph(30), 100)
	if !capped || n <= 100 {
		t.Fatalf("cap not honoured: n=%d capped=%v", n, capped)
	}
}

func TestSelectPartitionEdgePrefersCentralBridge(t *testing.T) {
	// P5: the central bridges have the least-eccentric endpoints.
	e := SelectPartitionEdge(pathGraph(5))
	if e.ID == 1 || e.ID == 5 {
		t.Fatalf("picked peripheral bridge %d", e.ID)
	}
}

func TestSelectPartitionEdgeNoBridges(t *testing.T) {
	// A directed triangle plus an extra parallel edge: no bridges.
	mg := &graph.Multigraph{N: 3, Edges: []graph.Edge{
		{ID: 1, U: 0, V: 1}, {ID: 2, U: 0, V: 2}, {ID: 3, U: 1, V: 2}, {ID: 4, U: 2, V: 0},
	}}
	if len(mg.Bridges()) != 0 {
		t.Fatal("test graph should have no bridges")
	}
	e := SelectPartitionEdge(mg)
	// Node 0 has the highest out-degree (2); of its heads, node 1 has
	// in-degree 1 vs node 2's 2, so edge 1 is selected.
	if e.ID != 1 {
		t.Fatalf("selected edge %d, want 1", e.ID)
	}
}

// --- exactness of the recursive search -------------------------------------

// randomModule generates a module whose call graph has assorted shapes:
// chains, shared callees, diamonds, recursion, constant and non-constant
// arguments, branchy callees that fold under constant propagation.
func randomModule(rng *rand.Rand) *ir.Module {
	m := ir.NewModule("rs")
	m.AddGlobal("state")
	n := 3 + rng.Intn(5)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("fn%d", i)
	}
	for i := n - 1; i >= 0; i-- {
		exported := rng.Intn(4) == 0
		b := ir.NewFunction(names[i], 1, exported)
		x := b.Param(0)
		v := x
		// A branchy prologue that folds if x is a known constant.
		if rng.Intn(2) == 0 {
			c := b.Const(int64(rng.Intn(3)))
			cond := b.Bin(ir.Eq, x, c)
			tB, fB, jB := b.Block("", 0), b.Block("", 0), b.Block("", 1)
			b.CondBr(cond, tB, nil, fB, nil)
			b.SetBlock(tB)
			t1 := b.Const(7)
			b.Br(jB, t1)
			b.SetBlock(fB)
			f1 := b.Bin(ir.Mul, x, x)
			f2 := b.Bin(ir.Add, f1, x)
			b.Br(jB, f2)
			b.SetBlock(jB)
			v = jB.Params[0]
		}
		ncalls := rng.Intn(3)
		for c := 0; c < ncalls && i < n-1; c++ {
			callee := names[i+1+rng.Intn(n-i-1)]
			var arg *ir.Value
			if rng.Intn(2) == 0 {
				arg = b.Const(int64(rng.Intn(4)))
			} else {
				arg = v
			}
			r := b.Call(callee, arg)
			v = b.Bin(ir.Add, v, r)
		}
		if rng.Intn(3) == 0 {
			b.StoreG("state", v)
		}
		b.Ret(v)
		m.AddFunc(b.Fn)
	}
	b := ir.NewFunction("main", 1, true)
	x := b.Param(0)
	acc := b.Const(0)
	for c := 0; c < 1+rng.Intn(3); c++ {
		r := b.Call(names[rng.Intn(n)], x)
		acc = b.Bin(ir.Add, acc, r)
	}
	b.Output(acc)
	b.Ret(acc)
	m.AddFunc(b.Fn)
	m.AssignSites()
	return m
}

// TestRecursiveSearchIsExact is the central theorem check: the recursively
// partitioned search finds the same optimal size as brute force.
func TestRecursiveSearchIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	trials := 0
	for trials < 25 {
		m := randomModule(rng)
		c := compile.New(m, codegen.TargetX86)
		e := len(c.Graph().Edges)
		if e == 0 || e > 10 {
			continue
		}
		trials++
		_, naiveSize := NaiveOptimal(c)
		res, ok := Optimal(c, Options{})
		if !ok {
			t.Fatalf("trial %d: search aborted", trials)
		}
		if res.Size != naiveSize {
			t.Fatalf("trial %d: recursive optimum %d != naive optimum %d\nmodule:\n%s",
				trials, res.Size, naiveSize, m.String())
		}
		// And the returned configuration must actually produce that size.
		if got := c.Size(res.Config); got != res.Size {
			t.Fatalf("trial %d: config size %d != reported %d", trials, got, res.Size)
		}
	}
}

func TestOptimalParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		m := randomModule(rng)
		cs := compile.New(m, codegen.TargetX86)
		cp := compile.New(m, codegen.TargetX86)
		rs, ok1 := Optimal(cs, Options{})
		rp, ok2 := Optimal(cp, Options{Workers: 8})
		if !ok1 || !ok2 || rs.Size != rp.Size {
			t.Fatalf("trial %d: sequential %d vs parallel %d", trial, rs.Size, rp.Size)
		}
	}
}

func TestOptimalRespectsMaxSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var c *compile.Compiler
	for {
		m := randomModule(rng)
		c = compile.New(m, codegen.TargetX86)
		if len(c.Graph().Edges) >= 4 {
			break
		}
	}
	_, ok := Optimal(c, Options{MaxSpace: 2})
	if ok {
		t.Fatal("expected abort under tiny MaxSpace")
	}
}

func TestSpaceSizeOrdering(t *testing.T) {
	// Recursive space never exceeds ... it can exceed naive on degenerate
	// graphs (documented), but on structured graphs with >= 3 edges per
	// component it should not blow past naive by more than the combine
	// overhead. Check the reduction on random structured modules.
	rng := rand.New(rand.NewSource(123))
	better := 0
	total := 0
	for trial := 0; trial < 30; trial++ {
		m := randomModule(rng)
		c := compile.New(m, codegen.TargetX86)
		g := c.Graph()
		e := len(g.Edges)
		if e < 4 || e > 16 {
			continue
		}
		total++
		rec, capped := RecursiveSpaceSize(g, 0)
		if capped {
			t.Fatal("unexpected cap")
		}
		if rec <= 1<<uint(e) {
			better++
		}
	}
	if total == 0 {
		t.Skip("no graphs in range")
	}
	if better*10 < total*8 {
		t.Fatalf("recursive space larger than naive too often: %d/%d", total-better, total)
	}
}

func TestNaiveSpaceSizes(t *testing.T) {
	m := randomModule(rand.New(rand.NewSource(1)))
	c := compile.New(m, codegen.TargetX86)
	g := c.Graph()
	e := len(g.Edges)
	if got := NaiveSpaceLog2(g); got != float64(e) {
		t.Fatalf("log2=%v want %d", got, e)
	}
	if NaiveSpaceSize(g).BitLen() != e+1 {
		t.Fatalf("2^%d bitlen wrong", e)
	}
	cs := ComponentSpaceSize(g)
	if cs.Cmp(NaiveSpaceSize(g)) > 0 {
		t.Fatal("component space exceeds naive")
	}
}

func TestChainLengths(t *testing.T) {
	src := `
func @a(%x) {
entry:
  %r = call @b(%x) !site 1
  ret %r
}
func @b(%x) {
entry:
  %r = call @c(%x) !site 2
  ret %r
}
func @c(%x) {
entry:
  ret %x
}
func @d(%x) {
entry:
  %r = call @c(%x) !site 3
  ret %r
}
export func @main(%x) {
entry:
  %p = call @a(%x) !site 4
  %q = call @d(%x) !site 5
  %s = add %p, %q
  ret %s
}
`
	m := ir.MustParse("chains", src)
	g := callgraph.Build(m)

	// Chain a->b->c inlined (sites 1,2) plus isolated d->c (site 3):
	cfg := callgraph.NewConfig().Set(1, true).Set(2, true).Set(3, true)
	lengths := ChainLengths(g, cfg)
	if len(lengths) != 2 || lengths[0] != 1 || lengths[1] != 2 {
		t.Fatalf("lengths=%v, want [1 2]", lengths)
	}
	hist := ChainHistogram(lengths)
	if hist[1] != 1 || hist[2] != 1 {
		t.Fatalf("hist=%v", hist)
	}
	if got := ChainLengths(g, callgraph.NewConfig()); got != nil {
		t.Fatalf("clean slate should have no chains, got %v", got)
	}
}

func TestChainLengthsSelfLoop(t *testing.T) {
	src := `
func @r(%x) {
entry:
  %zero = const 0
  %c = le %x, %zero
  condbr %c, done, more
done:
  ret %zero
more:
  %one = const 1
  %m = sub %x, %one
  %v = call @r(%m) !site 1
  ret %v
}
export func @main(%x) {
entry:
  %v = call @r(%x) !site 2
  ret %v
}
`
	m := ir.MustParse("self", src)
	g := callgraph.Build(m)
	cfg := callgraph.NewConfig().Set(1, true)
	lengths := ChainLengths(g, cfg)
	if len(lengths) != 1 || lengths[0] != 1 {
		t.Fatalf("self-loop chain lengths=%v, want [1]", lengths)
	}
}
