package search

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/graph"
)

// This file implements the branch-and-bound layer of the optimal search:
// a component-optimum memo and admissible lower bounds, both exact — the
// pruned search returns byte-identical configurations, sizes, and even
// evaluation counters for every worker count.
//
// # Component memo
//
// A single-component search node is a subproblem: "given the labels decided
// on the path so far, find the optimal labeling of this component's edges".
// RemoveEdge/ContractEdge regenerate identical component subgraphs all over
// the tree, but the optimum of a component is *not* a function of its edge
// multiset alone — the decided context leaks in through two channels:
//
//   - functions already fused to the component by decided-inline edges
//     (their bodies grow with every label the subtree flips), and
//   - the component's callees being pinned alive (or not) by a
//     decided-no-inline incoming edge outside the component, which decides
//     whether inlining their last incoming edge deletes them.
//
// The memo key therefore canonicalizes exactly that context: the component's
// site set, the decided-inline sites of the component's inline cluster (the
// functions reachable from the component over decided-inline edges), and
// one pinned-alive bit per component callee. Two nodes with equal keys see
// the same subgraph (node representatives are min-merged, so they even agree
// on endpoints), the same partition-edge choices, and size landscapes that
// differ by an additive constant (the contributions of functions outside the
// cluster, which no label under the component can touch) — so they share
// the same optimal local labeling, which is what the memo stores. The table
// is single-flight like compile/memo.go: concurrent workers hitting the
// same subproblem share one solve — and the solve itself is re-anchored to
// a prefix derived from the key alone (see evalComponent), so which worker
// wins the race changes nothing observable, down to the eval counters.
//
// # Admissible bound
//
// At a binary node the search holds a contribution handle for the decided
// prefix D (compile.Sized, maintained outside the config cache): the total
// size at D and its per-function decomposition. Every completion explored
// below differs from D only in labels of the component's edges, and the
// only functions whose contribution those labels can change are the inline
// cluster's (anything else neither changes its closure nor its DFE
// survival). A contribution is never negative, so
//
//	Size(D ∪ L) >= Size(D) - Σ_{f in cluster} contrib_D(f)
//
// for every completion L — an admissible bound. Note this is *not* the
// naive per-edge bound (summing each undecided edge's cheaper label):
// label-based dead-function elimination makes deltas superadditive —
// inlining all incoming edges of a callee deletes it, so a set of
// individually-losing toggles can win together — and the per-edge bound is
// inadmissible. Bounding by "every cluster contribution drops to zero" is
// immune to that interaction.
//
// The branch whose leftmost leaf is the decided prefix itself anchors the
// incumbent: the remove branch contains D, the contract branch contains
// D+e, and both sizes are already priced by the handles. Pruning compares
// one branch's bound against the other branch's anchored leaf, with each
// branch's mass summed over that branch's OWN remaining cluster — the
// functions its still-undecided edges can reach over decided-inline fusion
// (see branchAndBound for why the parent node's cluster provably never
// fires):
//
//	bound(contract) >= Size(D)    =>  contract branch cannot win (ties go
//	                                  to remove, matching size1 <= size2)
//	bound(remove)   >  Size(D+e)  =>  remove branch cannot win
//
// Both tests depend only on the memo key and the partition edge (the
// out-of-cluster constant cancels), so pruning decisions — and with them
// the set of configurations ever evaluated — are schedule-independent.
// The two conditions cannot hold at once (that would need a negative mass).
//
// # Incumbent sharing
//
// The handles *are* the incumbent channel: each branch inherits a rebased
// handle (D or D+e), so the anchored incumbent tightens as decided inline
// labels accumulate, and the single-flight memo shares solved subproblems
// across all workers. A mutable global best-size would be both unsound here
// (component subtrees price partial configurations — their sizes are not
// comparable to an incumbent from another component or from a combine
// evaluation) and schedule-dependent (whichever worker publishes first
// would change which subtrees other workers prune, breaking the bit-exact
// counter guarantee the -jobs tests pin). The deterministic token pool in
// parallelEach is kept instead; see its comment.

// PruneStats reports the branch-and-bound layer's work: how many subtrees
// the bound cut, how the component-optimum memo performed, and how many
// bound handles were priced. All zero when pruning is disabled (-no-prune,
// -no-memo, checked mode).
type PruneStats struct {
	Enabled    bool
	Subtrees   int64 // branches skipped by the admissible bound
	MemoHits   int64 // component subproblems served from the memo
	MemoMisses int64 // component subproblems solved and stored
	BoundEvals int64 // contribution handles rebased to price bounds
}

// Add accumulates counters (Enabled is OR-ed), for corpus-wide aggregation.
func (p PruneStats) Add(o PruneStats) PruneStats {
	return PruneStats{
		Enabled:    p.Enabled || o.Enabled,
		Subtrees:   p.Subtrees + o.Subtrees,
		MemoHits:   p.MemoHits + o.MemoHits,
		MemoMisses: p.MemoMisses + o.MemoMisses,
		BoundEvals: p.BoundEvals + o.BoundEvals,
	}
}

// String renders the stats line the CLIs print on stderr.
func (p PruneStats) String() string {
	if !p.Enabled {
		return "disabled"
	}
	return fmt.Sprintf("%d subtrees pruned, memo %d hits / %d misses, %d bound evaluations",
		p.Subtrees, p.MemoHits, p.MemoMisses, p.BoundEvals)
}

// engine holds the static site indexes, the single-flight component memo,
// and the pruning counters of one Optimal run.
type engine struct {
	n       int         // function count; node IDs of every subgraph index it
	siteU   map[int]int // site -> caller function index
	siteV   map[int]int // site -> callee function index
	inSites [][]int     // function index -> incoming candidate sites, ascending

	mu   sync.Mutex
	memo map[string]*compEntry

	pruned     atomic.Int64
	memoHits   atomic.Int64
	memoMisses atomic.Int64
	boundEvals atomic.Int64
}

// compEntry is a single-flight memo slot holding a solved subproblem's
// optimal inline sites within the component, the optimal size in the
// subproblem's own anchor frame, and the anchor's size — everything a hit
// needs to reconstruct its answer by pure arithmetic.
type compEntry struct {
	done      chan struct{}
	sites     []int
	localSize int // optimal size of clusterSites ∪ sites
	baseSize  int // size of clusterSites alone (the frame anchor)
}

func newEngine(g *callgraph.Graph) *engine {
	eng := &engine{
		n:       len(g.Nodes),
		siteU:   make(map[int]int, len(g.Edges)),
		siteV:   make(map[int]int, len(g.Edges)),
		inSites: make([][]int, len(g.Nodes)),
		memo:    make(map[string]*compEntry),
	}
	for _, e := range g.Edges {
		u, v := g.Index[e.Caller], g.Index[e.Callee]
		eng.siteU[e.Site] = u
		eng.siteV[e.Site] = v
		eng.inSites[v] = append(eng.inSites[v], e.Site)
	}
	for _, in := range eng.inSites {
		sort.Ints(in)
	}
	return eng
}

func (eng *engine) stats() PruneStats {
	return PruneStats{
		Enabled:    true,
		Subtrees:   eng.pruned.Load(),
		MemoHits:   eng.memoHits.Load(),
		MemoMisses: eng.memoMisses.Load(),
		BoundEvals: eng.boundEvals.Load(),
	}
}

// subproblem is the canonical identity of one single-component search node,
// plus the decided inline sites of its cluster (the anchor of the
// subproblem's local frame).
type subproblem struct {
	key          string
	csites       *callgraph.Config // the component's site set, for membership
	clusterSites []int             // decided-inline sites of the cluster, ascending
}

// clusterOf returns the functions whose contribution the undecided labels
// of mg can still change — the union of the inline clusters (functions
// fused by decided-inline edges) that mg's edges touch — plus the
// decided-inline sites owned inside that set. It is the mass set of the
// admissible bound and the context part of the memo key.
func (eng *engine) clusterOf(mg *graph.Multigraph, decided *callgraph.Config) (cluster, clusterSites []int) {
	// Union-find over the original function nodes, merging the endpoints of
	// every decided-inline site: the classes are the function clusters fused
	// by the inlining decided so far.
	parent := make([]int32, eng.n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int) int32 {
		r := int32(x)
		for parent[r] != r {
			parent[r] = parent[parent[r]]
			r = parent[r]
		}
		return r
	}
	inl := decided.InlineSites()
	for _, s := range inl {
		ru, rv := find(eng.siteU[s]), find(eng.siteV[s])
		if ru != rv {
			parent[ru] = rv
		}
	}
	// Mark the classes the component touches. Edge endpoints are class
	// representatives already (ContractEdge merges to the minimum node ID,
	// which the union-find maps to the same class as every absorbed node).
	marked := make([]bool, eng.n)
	for _, e := range mg.Edges {
		marked[find(e.U)] = true
		marked[find(e.V)] = true
	}
	for n := 0; n < eng.n; n++ {
		if marked[find(n)] {
			cluster = append(cluster, n)
		}
	}
	for _, s := range inl {
		if marked[find(eng.siteU[s])] {
			clusterSites = append(clusterSites, s)
		}
	}
	return cluster, clusterSites
}

// canon canonicalizes a single-component node under its decided prefix.
func (eng *engine) canon(mg *graph.Multigraph, decided *callgraph.Config) subproblem {
	_, clusterSites := eng.clusterOf(mg, decided)

	csites := callgraph.NewConfigOf(mg.EdgeIDs())
	// One pinned-alive bit per component callee (ascending function index):
	// whether an incoming candidate edge outside the component is decided
	// no-inline, keeping the callee alive no matter how the component's own
	// incoming edges are labeled. Undecided incoming edges are always inside
	// the component (they would be connected to it otherwise), and the
	// callee's static pins (exported, recursive, no incoming edges) are
	// functions of its identity, which the component's site set fixes — so
	// this one dynamic bit completes the callee's DFE context.
	calleeSet := make(map[int]bool)
	for _, e := range mg.Edges {
		calleeSet[eng.siteV[e.ID]] = true
	}
	callees := make([]int, 0, len(calleeSet))
	for c := range calleeSet {
		callees = append(callees, c)
	}
	sort.Ints(callees)
	bits := make([]byte, len(callees))
	for i, c := range callees {
		bits[i] = '0'
		for _, s := range eng.inSites[c] {
			if !csites.Inline(s) && !decided.Inline(s) {
				bits[i] = '1'
				break
			}
		}
	}

	ck := csites.CacheKey()
	lk := callgraph.NewConfigOf(clusterSites).CacheKey()
	key := strconv.Itoa(len(ck)) + ":" + ck + "|" + strconv.Itoa(len(lk)) + ":" + lk + "|" + string(bits)
	return subproblem{key: key, csites: csites, clusterSites: clusterSites}
}

// lookup finds or creates the single-flight slot for a subproblem key.
// owned reports whether the caller must solve it (and close e.done).
func (eng *engine) lookup(key string) (e *compEntry, owned bool) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if e, ok := eng.memo[key]; ok {
		return e, false
	}
	e = &compEntry{done: make(chan struct{})}
	eng.memo[key] = e
	return e, true
}

// evalComponent handles a single-component node with the engine active:
// serve the subproblem from the memo, or solve it with branch-and-bound and
// store the component-local optimum.
//
// The solve runs in the subproblem's own frame: the decided prefix is
// re-anchored to exactly the cluster's decided-inline sites (a pure
// function of the memo key) before recursing. Two instances of the same
// key can carry different full prefixes — they agree on everything the
// subtree can see, but differ in labels outside the cluster — and which
// instance wins the single-flight race is scheduling. If the solve priced
// configurations under the winner's own prefix, the set of configurations
// reaching the counted whole-config cache would depend on that race, and
// with it the evaluation counters the -jobs determinism tests pin.
// Re-anchoring makes every priced configuration clusterSites ∪ L — a
// function of the key alone — so the counted set is schedule-independent.
//
// Exactness of the frame: for every completion L of the component,
//
//	Size(D ∪ L) − Size(clusterSites ∪ L) = const over L
//
// (functions outside the cluster contribute the same under any L, and
// functions inside see identical closures and DFE context either way —
// the same argument that justifies the memo key). The frame therefore
// preserves the argmin, and the true size is recovered by arithmetic:
// Size(D ∪ L*) = Size(D) + localSize − baseSize. Hits use the same
// identity and touch no cache at all.
func (ev *evaluator) evalComponent(mg *graph.Multigraph, decided *callgraph.Config, h *compile.Sized) (*callgraph.Config, int) {
	eng := ev.eng
	sp := eng.canon(mg, decided)
	entry, owned := eng.lookup(sp.key)
	if !owned {
		<-entry.done
		eng.memoHits.Add(1)
		cfg := decided.Clone()
		for _, s := range entry.sites {
			cfg.Set(s, true)
		}
		return cfg, h.Size() + entry.localSize - entry.baseSize
	}
	eng.memoMisses.Add(1)
	anchor := callgraph.NewConfigOf(sp.clusterSites)
	hl := ev.c.RebaseContrib(ev.root, sp.clusterSites)
	var cfgLocal *callgraph.Config
	var localSize, baseSize int
	if hl.HasContrib() {
		baseSize = hl.Size()
		cfgLocal, localSize = ev.branchAndBound(mg, anchor, hl)
	} else {
		// Defensive: the anchor provably compiles whenever the caller's
		// handle does (cluster closures are identical, everything else is
		// at the clean slate), so this path should be unreachable — but a
		// deterministic fallback beats a panic: solve the frame
		// exhaustively and price the anchor through the counted cache.
		baseSize = ev.sizeOf(anchor)
		cfgLocal, localSize = ev.eval(mg, anchor, nil)
	}
	// Store only the labels within the component; hit and miss alike
	// overlay them on their own decided prefix. The frame's leftmost leaf
	// is the anchor itself, which compiles, so the optimum is always
	// finite — every solve is storable.
	var local []int
	for _, s := range cfgLocal.InlineSites() {
		if sp.csites.Inline(s) {
			local = append(local, s)
		}
	}
	entry.sites, entry.localSize, entry.baseSize = local, localSize, baseSize
	close(entry.done)
	cfg := decided.Clone()
	for _, s := range local {
		cfg.Set(s, true)
	}
	return cfg, h.Size() + localSize - baseSize
}

// branchAndBound is the binary node with pruning: price the contract
// prefix's handle, cut whichever branch the admissible bound proves cannot
// win, and otherwise recurse into both like the exhaustive search.
//
// Each branch's mass is summed over that branch's OWN remaining cluster —
// the functions its still-undecided edges can touch — not the parent
// node's. The distinction is what lets the bound fire at all: a mass that
// includes the partition edge's endpoints always dominates the single-edge
// delta it is compared against (endpoint contributions bound the delta),
// but a branch whose component is exhausted has an empty cluster, a zero
// mass, and therefore an exact bound — its anchored prefix IS its only
// completion, and a losing one is skipped without evaluating the leaf.
func (ev *evaluator) branchAndBound(mg *graph.Multigraph, decided *callgraph.Config, h *compile.Sized) (*callgraph.Config, int) {
	e := SelectPartitionEdge(mg)
	eng := ev.eng
	eng.boundEvals.Add(1)
	h2 := ev.c.RebaseContrib(h, []int{e.ID})
	mgRm, mgCt := mg.RemoveEdge(e.ID), mg.ContractEdge(e.ID)
	decCt := decided.Clone().Set(e.ID, true)
	if h2.HasContrib() {
		ctCluster, _ := eng.clusterOf(mgCt, decCt)
		if h2.Size()-h2.ContribSum(ctCluster) >= h.Size() {
			// No completion of the contract branch can beat the remove
			// branch's anchored leaf (the decided prefix itself); ties go to
			// remove, matching the unpruned size1 <= size2 rule.
			eng.pruned.Add(1)
			return ev.eval(mgRm, decided, h)
		}
		rmCluster, _ := eng.clusterOf(mgRm, decided)
		if h.Size()-h.ContribSum(rmCluster) > h2.Size() {
			// No completion of the remove branch can strictly beat the
			// contract branch's anchored leaf. (Both tests firing at once
			// would need a negative mass, so the order is immaterial.)
			eng.pruned.Add(1)
			return ev.eval(mgCt, decCt, h2)
		}
	}
	var h2pass *compile.Sized
	if h2.HasContrib() {
		h2pass = h2 // an InfSize prefix disables pruning below it
	}
	var cfg1, cfg2 *callgraph.Config
	var size1, size2 int
	ev.parallelEach(2, func(i int) {
		if i == 0 {
			cfg1, size1 = ev.eval(mgRm, decided, h)
		} else {
			cfg2, size2 = ev.eval(mgCt, decCt, h2pass)
		}
	})
	if size1 <= size2 {
		return cfg1, size1
	}
	return cfg2, size2
}
