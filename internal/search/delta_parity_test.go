package search

import (
	"math/rand"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
)

// TestOptimalDeltaMatchesNoDelta: the exhaustive search on the delta engine
// must match the -no-delta oracle bit for bit — optimal size, configuration,
// space size, and the evaluation counter inlinesearch prints on stdout.
func TestOptimalDeltaMatchesNoDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 0
	for trials < 15 {
		m := randomModule(rng)
		delta := compile.New(m, codegen.TargetX86)
		if len(delta.Graph().Edges) == 0 {
			continue
		}
		trials++
		full := compile.New(m, codegen.TargetX86)
		full.SetDelta(false)
		rd, ok1 := Optimal(delta, Options{})
		rw, ok2 := Optimal(full, Options{})
		if ok1 != ok2 {
			t.Fatalf("trial %d: ok diverges: %v vs %v", trials, ok1, ok2)
		}
		if rd.Size != rw.Size || rd.SpaceSize != rw.SpaceSize {
			t.Fatalf("trial %d: delta (%d, space %d) vs full (%d, space %d)\nmodule:\n%s",
				trials, rd.Size, rd.SpaceSize, rw.Size, rw.SpaceSize, m.String())
		}
		if !rd.Config.Equal(rw.Config) {
			t.Fatalf("trial %d: optimal configs diverge: %v vs %v", trials, rd.Config, rw.Config)
		}
		if rd.Evaluations != rw.Evaluations {
			t.Fatalf("trial %d: evaluation counters diverge: delta %d vs full %d",
				trials, rd.Evaluations, rw.Evaluations)
		}
		if delta.DeltaStats().Evals == 0 {
			t.Fatalf("trial %d: delta engine never engaged", trials)
		}
	}
}

// TestOptimalDeltaParallelDeterminism: the delta path must keep the search's
// bit-identical-across-workers guarantee.
func TestOptimalDeltaParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	trials := 0
	for trials < 8 {
		m := randomModule(rng)
		cs := compile.New(m, codegen.TargetX86)
		if len(cs.Graph().Edges) == 0 {
			continue
		}
		trials++
		cp := compile.New(m, codegen.TargetX86)
		rs, _ := Optimal(cs, Options{Workers: -1})
		rp, _ := Optimal(cp, Options{Workers: 8})
		if rs.Size != rp.Size || !rs.Config.Equal(rp.Config) || rs.Evaluations != rp.Evaluations {
			t.Fatalf("trial %d: sequential (%d, %d evals) vs parallel (%d, %d evals)",
				trials, rs.Size, rs.Evaluations, rp.Size, rp.Evaluations)
		}
	}
}
