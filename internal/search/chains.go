package search

import (
	"sort"

	"optinline/internal/callgraph"
	"optinline/internal/graph"
)

// ChainLengths analyses the inlined call chains of a configuration (paper
// Figure 9). An inlined call chain is a maximal directed path of
// inline-labeled edges: it starts at an edge whose caller is not itself the
// callee of another inlined edge, and its length is the longest run of
// nested inlined calls from there (cycles are cut, matching the
// inline-once recursion bound). Chains that share a callee are distinct
// chains — inlining gives each caller its own copy. The result is one
// length per chain, ascending.
func ChainLengths(g *callgraph.Graph, cfg *callgraph.Config) []int {
	var edges []graph.Edge
	for _, e := range g.Edges {
		if cfg.Inline(e.Site) {
			edges = append(edges, graph.Edge{ID: e.Site, U: g.Index[e.Caller], V: g.Index[e.Callee]})
		}
	}
	if len(edges) == 0 {
		return nil
	}
	adj := make(map[int][]int)   // tail node -> head nodes (inline edges)
	inDeg := make(map[int]int)   // head node -> #incoming from other nodes
	tails := make(map[int][]int) // tail node -> edge indices
	for i, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		if e.U != e.V {
			inDeg[e.V]++
		}
		tails[e.U] = append(tails[e.U], i)
	}

	// depth(n): longest run of inlined edges starting at node n.
	memo := make(map[int]int)
	onPath := make(map[int]bool)
	var depth func(n int) int
	depth = func(n int) int {
		if v, ok := memo[n]; ok {
			return v
		}
		if onPath[n] {
			return 0 // cycle: cut (recursion inlines at most once)
		}
		onPath[n] = true
		best := 0
		for _, s := range adj[n] {
			if l := depth(s) + 1; l > best {
				best = l
			}
		}
		onPath[n] = false
		memo[n] = best
		return best
	}

	var out []int
	counted := make(map[int]bool) // edge index -> belongs to a counted chain
	markReachable := func(start int) {
		// Mark every inline edge reachable from node start as covered.
		stack := []int{start}
		seenNode := map[int]bool{start: true}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, ei := range tails[n] {
				counted[ei] = true
			}
			for _, s := range adj[n] {
				if !seenNode[s] {
					seenNode[s] = true
					stack = append(stack, s)
				}
			}
		}
	}
	for n := range tails {
		if inDeg[n] == 0 { // chain start: nothing inlines into this caller
			out = append(out, depth(n))
			markReachable(n)
		}
	}
	// Pure cycles (e.g. mutual recursion fully inlined) have no start edge;
	// count one chain per leftover group.
	for i, e := range edges {
		if counted[i] {
			continue
		}
		out = append(out, maxInt(depth(e.U), 1))
		markReachable(e.U)
	}
	sort.Ints(out)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ChainHistogram buckets chain lengths: hist[k] = number of inlined chains
// with length exactly k (k >= 1).
func ChainHistogram(lengths []int) map[int]int {
	h := make(map[int]int)
	for _, l := range lengths {
		h[l]++
	}
	return h
}
