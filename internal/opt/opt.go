// Package opt implements the intra-procedural optimization pipeline that
// runs after inlining. These passes are what make inlining decisions
// interact: inlining a call with constant arguments lets constant
// propagation fold branches, which removes blocks, which kills code — so
// the size effect of one inlining decision depends on others, exactly the
// phenomenon the paper studies.
//
// All passes are function-local. The only whole-module transformation is
// dead-function elimination (RemoveDeadFunctions), which is driven by an
// explicit removability predicate supplied by the compile driver; keeping it
// label-based is what makes the paper's search-space partition exact in this
// substrate (see DESIGN.md).
package opt

import "optinline/internal/ir"

// MaxIterations bounds the per-function fixpoint loop; the pipeline
// normally converges in a handful of iterations.
const MaxIterations = 50

// Stats reports what the pipeline did; used by tests and diagnostics.
type Stats struct {
	Iterations     int
	InstrsRemoved  int
	BlocksRemoved  int
	BranchesFolded int
	ConstsFolded   int
	ParamsPropped  int
	FuncsRemoved   int
}

// Function optimizes a single function to a fixpoint and returns statistics.
func Function(f *ir.Function) Stats {
	var st Stats
	for st.Iterations = 1; st.Iterations <= MaxIterations; st.Iterations++ {
		changed := false
		changed = propagateParams(f, &st) || changed
		changed = foldConstants(f, &st) || changed
		changed = cseBlocks(f, &st) || changed
		changed = foldBranches(f, &st) || changed
		changed = removeUnreachable(f, &st) || changed
		changed = mergeBlocks(f, &st) || changed
		changed = removeDeadInstrs(f, &st) || changed
		if !changed {
			break
		}
	}
	return st
}

// Module optimizes every function in the module.
func Module(m *ir.Module) Stats {
	var total Stats
	for _, f := range m.Funcs {
		st := Function(f)
		total.InstrsRemoved += st.InstrsRemoved
		total.BlocksRemoved += st.BlocksRemoved
		total.BranchesFolded += st.BranchesFolded
		total.ConstsFolded += st.ConstsFolded
		total.ParamsPropped += st.ParamsPropped
		if st.Iterations > total.Iterations {
			total.Iterations = st.Iterations
		}
	}
	return total
}

// RemoveDeadFunctions removes every non-exported function for which
// removable reports true. It returns the number of functions removed.
//
// The caller decides removability. The compile driver passes the paper's
// label-based rule: an internal function is removable iff every original
// call edge targeting it is labeled "inline".
func RemoveDeadFunctions(m *ir.Module, removable func(name string) bool) int {
	n := 0
	for _, f := range append([]*ir.Function(nil), m.Funcs...) {
		if f.Exported {
			continue
		}
		if removable(f.Name) {
			m.RemoveFunc(f.Name)
			n++
		}
	}
	return n
}

// replaceUses rewrites every use of old to new throughout the function.
func replaceUses(f *ir.Function, old, new *ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
			for si := range in.Succs {
				for i, a := range in.Succs[si].Args {
					if a == old {
						in.Succs[si].Args[i] = new
					}
				}
			}
		}
	}
}
