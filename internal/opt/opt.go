// Package opt implements the intra-procedural optimization pipeline that
// runs after inlining. These passes are what make inlining decisions
// interact: inlining a call with constant arguments lets constant
// propagation fold branches, which removes blocks, which kills code — so
// the size effect of one inlining decision depends on others, exactly the
// phenomenon the paper studies.
//
// All passes are function-local. The only whole-module transformation is
// dead-function elimination (RemoveDeadFunctions), which is driven by an
// explicit removability predicate supplied by the compile driver; keeping it
// label-based is what makes the paper's search-space partition exact in this
// substrate (see DESIGN.md).
package opt

import (
	"fmt"

	"optinline/internal/ir"
)

// MaxIterations bounds the per-function fixpoint loop; the pipeline
// normally converges in a handful of iterations.
const MaxIterations = 50

// Stats reports what the pipeline did; used by tests and diagnostics.
type Stats struct {
	Iterations     int
	InstrsRemoved  int
	BlocksRemoved  int
	BranchesFolded int
	ConstsFolded   int
	ParamsPropped  int
	FuncsRemoved   int
}

// pipeline is the fixed pass order, named so checked compilation mode can
// attribute an invariant violation to the exact pass that introduced it.
var pipeline = []struct {
	name string
	run  func(*ir.Function, *Stats) bool
}{
	{"propagate-params", propagateParams},
	{"fold-constants", foldConstants},
	{"cse-blocks", cseBlocks},
	{"fold-branches", foldBranches},
	{"remove-unreachable", removeUnreachable},
	{"merge-blocks", mergeBlocks},
	{"remove-dead-instrs", removeDeadInstrs},
}

// PassNames returns the pipeline's pass names in execution order.
func PassNames() []string {
	names := make([]string, len(pipeline))
	for i, p := range pipeline {
		names[i] = p.name
	}
	return names
}

// CheckFunc is invoked by the checked pipeline after every pass invocation
// that reported a change, with the pass name and the function it mutated.
// Returning a non-nil error aborts the pipeline; the error is wrapped in a
// *PassError naming the offending pass.
type CheckFunc func(pass string, f *ir.Function) error

// PassError attributes an invariant violation to the first optimization
// pass that introduced it.
type PassError struct {
	Pass      string // pass name, from PassNames
	Func      string // function being optimized
	Iteration int    // fixpoint iteration (1-based)
	Err       error
}

func (e *PassError) Error() string {
	return fmt.Sprintf("opt pass %q broke an invariant on func %s (iteration %d): %v",
		e.Pass, e.Func, e.Iteration, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// Function optimizes a single function to a fixpoint and returns statistics.
func Function(f *ir.Function) Stats {
	st, _ := FunctionChecked(f, nil)
	return st
}

// FunctionChecked is Function with a per-pass invariant check: after every
// pass invocation that changed the function, check is called with the pass
// name (the -verify-each analogue). A check failure stops the pipeline
// immediately — the function is left in its broken state for inspection —
// and is returned as a *PassError. A nil check makes this identical to
// Function.
func FunctionChecked(f *ir.Function, check CheckFunc) (Stats, error) {
	var st Stats
	for st.Iterations = 1; st.Iterations <= MaxIterations; st.Iterations++ {
		changed := false
		for _, p := range pipeline {
			if !p.run(f, &st) {
				continue
			}
			changed = true
			if check != nil {
				if err := check(p.name, f); err != nil {
					return st, &PassError{Pass: p.name, Func: f.Name, Iteration: st.Iterations, Err: err}
				}
			}
		}
		if !changed {
			break
		}
	}
	return st, nil
}

// Module optimizes every function in the module.
func Module(m *ir.Module) Stats {
	st, _ := ModuleChecked(m, nil)
	return st
}

// ModuleChecked optimizes every function with a per-pass invariant check
// (see FunctionChecked), stopping at the first violation.
func ModuleChecked(m *ir.Module, check CheckFunc) (Stats, error) {
	var total Stats
	for _, f := range m.Funcs {
		st, err := FunctionChecked(f, check)
		total.InstrsRemoved += st.InstrsRemoved
		total.BlocksRemoved += st.BlocksRemoved
		total.BranchesFolded += st.BranchesFolded
		total.ConstsFolded += st.ConstsFolded
		total.ParamsPropped += st.ParamsPropped
		if st.Iterations > total.Iterations {
			total.Iterations = st.Iterations
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// RemoveDeadFunctions removes every non-exported function for which
// removable reports true. It returns the number of functions removed.
//
// The caller decides removability. The compile driver passes the paper's
// label-based rule: an internal function is removable iff every original
// call edge targeting it is labeled "inline".
func RemoveDeadFunctions(m *ir.Module, removable func(name string) bool) int {
	n := 0
	for _, f := range append([]*ir.Function(nil), m.Funcs...) {
		if f.Exported {
			continue
		}
		if removable(f.Name) {
			m.RemoveFunc(f.Name)
			n++
		}
	}
	return n
}

// replaceUses rewrites every use of old to repl throughout the function.
func replaceUses(f *ir.Function, old, repl *ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = repl
				}
			}
			for si := range in.Succs {
				for i, a := range in.Succs[si].Args {
					if a == old {
						in.Succs[si].Args[i] = repl
					}
				}
			}
		}
	}
}
