package opt

import (
	"fmt"

	"optinline/internal/ir"
)

// cseBlocks performs local common-subexpression elimination with a
// dominator-scoped value table: pure instructions computing the same
// operation over the same operands reuse the earlier result. This matters
// for inlining studies because inlined bodies frequently recompute
// expressions already available in the caller (argument massaging,
// repeated accessor math), so CSE is one of the "further optimizations"
// inlining enables.
func cseBlocks(f *ir.Function, st *Stats) bool {
	idom := f.Dominators()
	// Process blocks in reverse postorder so dominators come first; each
	// block's table extends its immediate dominator's.
	rpo := f.ReversePostorder()
	tables := make(map[*ir.Block]map[string]*ir.Value, len(rpo))
	changed := false
	for _, b := range rpo {
		var table map[string]*ir.Value
		if parent := idom[b]; parent != nil && tables[parent] != nil {
			table = make(map[string]*ir.Value, len(tables[parent]))
			for k, v := range tables[parent] {
				table[k] = v
			}
		} else {
			table = make(map[string]*ir.Value)
		}
		for _, in := range b.Instrs {
			key, ok := cseKey(in)
			if !ok {
				continue
			}
			if prev, seen := table[key]; seen {
				replaceUses(f, in.Result, prev)
				st.InstrsRemoved++ // the dead instr is collected by DCE
				changed = true
				continue
			}
			table[key] = in.Result
		}
		tables[b] = table
	}
	return changed
}

// cseKey returns a structural key for pure, value-producing instructions.
// Loads from globals are excluded: an intervening store or call could
// change the loaded value.
func cseKey(in *ir.Instr) (string, bool) {
	switch in.Op {
	case ir.OpConst:
		return fmt.Sprintf("c:%d", in.Const), true
	case ir.OpUn:
		return fmt.Sprintf("u:%d:%p", in.UnOp, in.Args[0]), true
	case ir.OpBin:
		a, b := in.Args[0], in.Args[1]
		if commutative(in.BinOp) && fmt.Sprintf("%p", a) > fmt.Sprintf("%p", b) {
			a, b = b, a
		}
		return fmt.Sprintf("b:%d:%p:%p", in.BinOp, a, b), true
	}
	return "", false
}

func commutative(op ir.BinOp) bool {
	switch op {
	case ir.Add, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Eq, ir.Ne:
		return true
	}
	return false
}
