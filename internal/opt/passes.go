package opt

import (
	"sync"

	"optinline/internal/ir"
)

// The fixpoint passes below rebuild small per-function maps on every
// invocation, and the memoized compile path invokes the pipeline once per
// per-function cache miss — enough that these maps showed up as a large
// slice of the evaluation engine's allocations. They are pooled and cleared
// instead: clear keeps the bucket arrays, so steady-state pass runs stop
// allocating map headers and rehash growth entirely.

// inEdge is one incoming CFG edge: the branching instruction and which of
// its successors points at the block. Two edges from one branch count
// separately because they may pass different arguments.
type inEdge struct {
	instr *ir.Instr
	succ  int
}

var inEdgesPool = sync.Pool{
	New: func() any { return make(map[*ir.Block][]inEdge, 16) },
}

var predCountPool = sync.Pool{
	New: func() any { return make(map[*ir.Block]int, 16) },
}

var predOfPool = sync.Pool{
	New: func() any { return make(map[*ir.Block]*ir.Block, 16) },
}

var usedPool = sync.Pool{
	New: func() any { return make(map[*ir.Value]bool, 64) },
}

var reachPool = sync.Pool{
	New: func() any { return make(map[*ir.Block]bool, 16) },
}

// propagateParams substitutes block parameters of single-predecessor blocks
// with the argument passed on the unique incoming edge. Combined with block
// merging this implements the "optimization scope extension" that inlining
// enables: the inlined callee entry has one predecessor (the call site), so
// constant call arguments flow straight into the callee body.
func propagateParams(f *ir.Function, st *Stats) bool {
	edges := inEdgesPool.Get().(map[*ir.Block][]inEdge)
	defer func() {
		clear(edges)
		inEdgesPool.Put(edges)
	}()
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i, s := range t.Succs {
			edges[s.Dest] = append(edges[s.Dest], inEdge{t, i})
		}
	}
	changed := false
	for _, b := range f.Blocks {
		if b == f.Entry() || len(b.Params) == 0 {
			continue
		}
		es := edges[b]
		if len(es) != 1 {
			continue
		}
		e := es[0]
		args := e.instr.Succs[e.succ].Args
		// A block cannot feed its own parameters (self-loop): substitution
		// would be circular. Such a block is unreachable anyway.
		self := false
		for _, a := range args {
			if a.Parm == b {
				self = true
				break
			}
		}
		if self {
			continue
		}
		for i, p := range b.Params {
			replaceUses(f, p, args[i])
		}
		b.Params = nil
		e.instr.Succs[e.succ].Args = nil
		st.ParamsPropped++
		changed = true
	}
	return changed
}

// constOf returns the constant value of v if its definition is a constant.
func constOf(v *ir.Value) (int64, bool) {
	if v != nil && v.Def != nil && v.Def.Op == ir.OpConst {
		return v.Def.Const, true
	}
	return 0, false
}

// foldConstants rewrites arithmetic on constants into constants and applies
// algebraic identities (x+0, x*1, x*0, ...).
func foldConstants(f *ir.Function, st *Stats) bool {
	changed := false
	toConst := func(in *ir.Instr, c int64) {
		in.Op = ir.OpConst
		in.Const = c
		in.Args = nil
		st.ConstsFolded++
		changed = true
	}
	// identity replaces the instruction's result with an existing value by
	// rewriting uses; the now-dead instruction is collected by DCE.
	identity := func(in *ir.Instr, v *ir.Value) {
		replaceUses(f, in.Result, v)
		st.ConstsFolded++
		changed = true
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpUn:
				if c, ok := constOf(in.Args[0]); ok {
					if in.UnOp == ir.Neg {
						toConst(in, -c)
					} else if c == 0 {
						toConst(in, 1)
					} else {
						toConst(in, 0)
					}
				}
			case ir.OpBin:
				a, aok := constOf(in.Args[0])
				bc, bok := constOf(in.Args[1])
				switch {
				case aok && bok:
					toConst(in, evalConstBin(in.BinOp, a, bc))
				case bok:
					switch {
					case bc == 0 && (in.BinOp == ir.Add || in.BinOp == ir.Sub ||
						in.BinOp == ir.Or || in.BinOp == ir.Xor ||
						in.BinOp == ir.Shl || in.BinOp == ir.Shr):
						identity(in, in.Args[0])
					case bc == 1 && (in.BinOp == ir.Mul || in.BinOp == ir.Div):
						identity(in, in.Args[0])
					case bc == 0 && (in.BinOp == ir.Mul || in.BinOp == ir.And ||
						in.BinOp == ir.Div || in.BinOp == ir.Mod):
						toConst(in, 0)
					}
				case aok:
					switch {
					case a == 0 && (in.BinOp == ir.Add || in.BinOp == ir.Or || in.BinOp == ir.Xor):
						identity(in, in.Args[1])
					case a == 1 && in.BinOp == ir.Mul:
						identity(in, in.Args[1])
					case a == 0 && (in.BinOp == ir.Mul || in.BinOp == ir.And):
						toConst(in, 0)
					}
				}
			}
		}
	}
	return changed
}

// evalConstBin mirrors the interpreter's total arithmetic. Keeping the two
// in sync is checked by a differential property test.
func evalConstBin(op ir.BinOp, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return a >> (uint64(b) & 63)
	case ir.Eq:
		return b2i(a == b)
	case ir.Ne:
		return b2i(a != b)
	case ir.Lt:
		return b2i(a < b)
	case ir.Le:
		return b2i(a <= b)
	case ir.Gt:
		return b2i(a > b)
	case ir.Ge:
		return b2i(a >= b)
	}
	return 0
}

func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// foldBranches turns conditional branches with constant conditions (or with
// identical arms) into unconditional branches.
func foldBranches(f *ir.Function, st *Stats) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if c, ok := constOf(t.Args[0]); ok {
			taken := t.Succs[1]
			if c != 0 {
				taken = t.Succs[0]
			}
			t.Op = ir.OpBr
			t.Args = nil
			t.Succs = []ir.Succ{taken}
			st.BranchesFolded++
			changed = true
			continue
		}
		if sameSucc(t.Succs[0], t.Succs[1]) {
			t.Op = ir.OpBr
			t.Args = nil
			t.Succs = t.Succs[:1]
			st.BranchesFolded++
			changed = true
		}
	}
	return changed
}

func sameSucc(a, b ir.Succ) bool {
	if a.Dest != b.Dest || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// removeUnreachable deletes blocks not reachable from the entry.
func removeUnreachable(f *ir.Function, st *Stats) bool {
	reach := reachPool.Get().(map[*ir.Block]bool)
	defer func() {
		clear(reach)
		reachPool.Put(reach)
	}()
	f.ReachableInto(reach)
	if len(reach) == len(f.Blocks) {
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			st.BlocksRemoved++
		}
	}
	f.Blocks = kept
	return true
}

// mergeBlocks splices a block into its unique predecessor when that
// predecessor ends in an unconditional branch to it.
func mergeBlocks(f *ir.Function, st *Stats) bool {
	changed := false
	predEdges := predCountPool.Get().(map[*ir.Block]int)
	predOf := predOfPool.Get().(map[*ir.Block]*ir.Block)
	defer func() {
		clear(predEdges)
		clear(predOf)
		predCountPool.Put(predEdges)
		predOfPool.Put(predOf)
	}()
	for {
		merged := false
		clear(predEdges)
		clear(predOf)
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil {
				continue
			}
			for _, s := range t.Succs {
				predEdges[s.Dest]++
				predOf[s.Dest] = b
			}
		}
		for _, b := range f.Blocks {
			if b == f.Entry() || predEdges[b] != 1 {
				continue
			}
			p := predOf[b]
			if p == b {
				continue
			}
			t := p.Term()
			if t.Op != ir.OpBr {
				continue
			}
			// Substitute params (propagateParams usually did this already,
			// but merging may expose new single-pred blocks mid-loop).
			for i, prm := range b.Params {
				replaceUses(f, prm, t.Succs[0].Args[i])
			}
			p.Instrs = p.Instrs[:len(p.Instrs)-1] // drop the br
			p.Instrs = append(p.Instrs, b.Instrs...)
			for i, bb := range f.Blocks {
				if bb == b {
					f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
					break
				}
			}
			st.BlocksRemoved++
			merged, changed = true, true
			break // maps are stale; recompute
		}
		if !merged {
			return changed
		}
	}
}

// removeDeadInstrs deletes pure instructions whose results are unused.
// Calls, stores, outputs, and terminators are never deleted here.
func removeDeadInstrs(f *ir.Function, st *Stats) bool {
	changed := false
	used := usedPool.Get().(map[*ir.Value]bool)
	defer func() {
		clear(used)
		usedPool.Put(used)
	}()
	for {
		clear(used)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
				for _, s := range in.Succs {
					for _, a := range s.Args {
						used[a] = true
					}
				}
			}
		}
		removedAny := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Result != nil && !used[in.Result] && !in.HasSideEffects() {
					st.InstrsRemoved++
					removedAny = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removedAny {
			return changed
		}
		changed = true
	}
}
