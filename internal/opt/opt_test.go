package opt

import (
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/inline"
	"optinline/internal/interp"
	"optinline/internal/ir"
)

func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse("opt", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConstantFolding(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %a = const 6
  %b = const 7
  %c = mul %a, %b
  %d = add %c, %x
  ret %d
}
`)
	f := m.Func("f")
	st := Function(f)
	if st.ConstsFolded == 0 {
		t.Fatal("nothing folded")
	}
	// %c must now be const 42, and the dead %a/%b removed.
	if n := f.NumInstrs(); n != 3 { // const 42, add, ret
		t.Fatalf("instrs=%d, want 3:\n%s", n, f.String())
	}
	res, err := interp.Run(m, "f", []int64{8}, interp.Options{})
	if err != nil || res.Ret != 50 {
		t.Fatalf("f(8)=%d err=%v", res.Ret, err)
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %zero = const 0
  %one = const 1
  %a = add %x, %zero
  %b = mul %a, %one
  %c = mul %b, %zero
  %d = add %b, %c
  ret %d
}
`)
	f := m.Func("f")
	Function(f)
	// Everything reduces to ret %x with no surviving arithmetic.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin {
				t.Fatalf("surviving binop:\n%s", f.String())
			}
		}
	}
	res, _ := interp.Run(m, "f", []int64{123}, interp.Options{})
	if res.Ret != 123 {
		t.Fatalf("f(123)=%d", res.Ret)
	}
}

func TestBranchFoldingKillsDeadArm(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %one = const 1
  condbr %one, live, dead
live:
  ret %x
dead:
  %big = mul %x, %x
  %more = add %big, %big
  output %more
  ret %more
}
`)
	f := m.Func("f")
	st := Function(f)
	if st.BranchesFolded != 1 {
		t.Fatalf("branches folded = %d", st.BranchesFolded)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("dead arm survived:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{9}, interp.Options{})
	if res.Ret != 9 || res.OutputLen != 0 {
		t.Fatalf("behaviour wrong: %+v", res)
	}
}

func TestSameTargetCondBr(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %c = lt %x, %x
  condbr %c, next, next
next:
  ret %x
}
`)
	f := m.Func("f")
	Function(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("expected full merge:\n%s", f.String())
	}
}

func TestParamPropagationThroughSinglePred(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %five = const 5
  br next(%five)
next(%v):
  %c = lt %v, %x
  condbr %c, yes, no
yes:
  %one = const 1
  ret %one
no:
  %zero = const 0
  ret %zero
}
`)
	f := m.Func("f")
	st := Function(f)
	if st.ParamsPropped == 0 {
		t.Fatal("no params propagated")
	}
	res, _ := interp.Run(m, "f", []int64{7}, interp.Options{})
	if res.Ret != 1 {
		t.Fatalf("f(7)=%d", res.Ret)
	}
	res, _ = interp.Run(m, "f", []int64{3}, interp.Options{})
	if res.Ret != 0 {
		t.Fatalf("f(3)=%d", res.Ret)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := mustParse(t, `
global @g
export func @f(%x) {
entry:
  %dead = mul %x, %x
  %alsoDead = loadg @g
  storeg @g, %x
  %kept = call @ext(%x)
  output %x
  ret %x
}
`)
	f := m.Func("f")
	Function(f)
	ops := map[ir.Op]int{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ops[in.Op]++
		}
	}
	if ops[ir.OpBin] != 0 || ops[ir.OpLoadG] != 0 {
		t.Fatalf("dead pure instrs survived:\n%s", f.String())
	}
	if ops[ir.OpStoreG] != 1 || ops[ir.OpCall] != 1 || ops[ir.OpOutput] != 1 {
		t.Fatalf("side-effecting instrs removed:\n%s", f.String())
	}
}

func TestMergeLinearChain(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  br a
a:
  %one = const 1
  %y = add %x, %one
  br b
b:
  %two = const 2
  %z = mul %y, %two
  br c
c:
  ret %z
}
`)
	f := m.Func("f")
	Function(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("chain not merged:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{5}, interp.Options{})
	if res.Ret != 12 {
		t.Fatalf("f(5)=%d", res.Ret)
	}
}

func TestLoopIsPreserved(t *testing.T) {
	src := `
export func @sum(%n) {
entry:
  %zero = const 0
  br head(%zero, %zero)
head(%i, %acc):
  %c = lt %i, %n
  condbr %c, body, exit
body:
  %one = const 1
  %ni = add %i, %one
  %na = add %acc, %i
  br head(%ni, %na)
exit:
  ret %acc
}
`
	m := mustParse(t, src)
	f := m.Func("sum")
	Function(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify after opt: %v\n%s", err, f.String())
	}
	res, _ := interp.Run(m, "sum", []int64{5}, interp.Options{})
	if res.Ret != 10 {
		t.Fatalf("sum(5)=%d", res.Ret)
	}
}

func TestRemoveDeadFunctions(t *testing.T) {
	m := mustParse(t, `
func @internalDead(%x) {
entry:
  ret %x
}
func @internalKept(%x) {
entry:
  ret %x
}
export func @main(%x) {
entry:
  %r = call @internalKept(%x) !site 1
  ret %r
}
`)
	n := RemoveDeadFunctions(m, func(name string) bool { return name == "internalDead" })
	if n != 1 || m.Func("internalDead") != nil || m.Func("internalKept") == nil {
		t.Fatalf("removed=%d module:\n%s", n, m.String())
	}
	// Exported functions are never removed even if flagged.
	n = RemoveDeadFunctions(m, func(string) bool { return true })
	if m.Func("main") == nil {
		t.Fatal("exported function removed")
	}
	if n != 1 { // only internalKept
		t.Fatalf("second pass removed %d", n)
	}
}

func TestInlineThenOptimizeEnablesDCE(t *testing.T) {
	// The callee branches on its argument; after inlining with a constant
	// argument, the branch folds and the slow path disappears. This is the
	// core interaction the paper's search exploits.
	src := `
func @choose(%flag, %x) {
entry:
  condbr %flag, fast, slow
fast:
  ret %x
slow:
  %a = mul %x, %x
  %b = mul %a, %x
  %c = mul %b, %x
  %d = mul %c, %x
  ret %d
}
export func @main(%x) {
entry:
  %one = const 1
  %r = call @choose(%one, %x) !site 1
  ret %r
}
`
	m := mustParse(t, src)
	want, _ := interp.Run(m, "main", []int64{3}, interp.Options{})

	cfg := callgraph.NewConfig().Set(1, true)
	if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
		t.Fatal(err)
	}
	Module(m)
	got, err := interp.Run(m, "main", []int64{3}, interp.Options{})
	if err != nil || got.Observable() != want.Observable() {
		t.Fatalf("behaviour changed: %+v vs %+v (%v)", got, want, err)
	}
	main := m.Func("main")
	if len(main.Blocks) != 1 {
		t.Fatalf("slow path not eliminated:\n%s", main.String())
	}
	for _, in := range main.Blocks[0].Instrs {
		if in.Op == ir.OpBin && in.BinOp == ir.Mul {
			t.Fatalf("slow-path mul survived:\n%s", main.String())
		}
	}
}

func TestOptimizeConvergesAndIsIdempotent(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %two = const 2
  %four = const 4
  %a = mul %two, %four
  %c = lt %a, %x
  condbr %c, yes, no
yes:
  br join(%a)
no:
  %b = add %a, %x
  br join(%b)
join(%v):
  ret %v
}
`)
	f := m.Func("f")
	Function(f)
	text := f.String()
	st := Function(f)
	if f.String() != text {
		t.Fatal("second optimization changed the function")
	}
	if st.ConstsFolded+st.BranchesFolded+st.InstrsRemoved+st.ParamsPropped != 0 {
		t.Fatalf("second run reported work: %+v", st)
	}
}

// Property: optimization never changes observable behaviour, on random
// modules already exercised through random inlining.
func TestOptimizePreservesSemanticsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := randomBranchyModule(rng)
		if err := m.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		arg := int64(rng.Intn(20) - 5)
		want, err := interp.Run(m, "main", []int64{arg}, interp.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		Module(m)
		if err := m.Verify(); err != nil {
			t.Fatalf("trial %d: post-opt verify: %v\n%s", trial, err, m.String())
		}
		got, err := interp.Run(m, "main", []int64{arg}, interp.Options{})
		if err != nil {
			t.Fatalf("trial %d: post-opt run: %v", trial, err)
		}
		if got.Observable() != want.Observable() {
			t.Fatalf("trial %d: behaviour changed (arg=%d)", trial, arg)
		}
	}
}

func randomBranchyModule(rng *rand.Rand) *ir.Module {
	m := ir.NewModule("randopt")
	m.AddGlobal("g")
	b := ir.NewFunction("main", 1, true)
	x := b.Param(0)
	v := x
	join := b.Block("join", 1)
	nbranches := 1 + rng.Intn(3)
	for i := 0; i < nbranches; i++ {
		c1 := b.Const(int64(rng.Intn(5)))
		cond := b.Bin(ir.BinOp(int(ir.Eq)+rng.Intn(6)), v, c1)
		tB := b.Block("", 0)
		fB := b.Block("", 0)
		inner := b.Block("", 1)
		b.CondBr(cond, tB, nil, fB, nil)
		b.SetBlock(tB)
		ct := b.Const(int64(rng.Intn(9)))
		tv := b.Bin(ir.Add, v, ct)
		b.Br(inner, tv)
		b.SetBlock(fB)
		cf := b.Const(int64(1 + rng.Intn(3)))
		fv := b.Bin(ir.Mul, v, cf)
		b.Output(fv)
		b.Br(inner, fv)
		b.SetBlock(inner)
		v = inner.Params[0]
	}
	b.StoreG("g", v)
	gv := b.LoadG("g")
	b.Br(join, gv)
	b.SetBlock(join)
	b.Output(join.Params[0])
	b.Ret(join.Params[0])
	m.AddFunc(b.Fn)
	m.AssignSites()
	return m
}
