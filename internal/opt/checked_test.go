package opt

import (
	"errors"
	"fmt"
	"testing"

	"optinline/internal/ir"
)

// foldableFunc builds a function the pipeline will definitely change:
// a constant conditional branch guarding two constant returns.
func foldableFunc() *ir.Function {
	b := ir.NewFunction("f", 0, true)
	then := b.Block("then", 0)
	els := b.Block("els", 0)
	b.CondBr(b.Const(1), then, nil, els, nil)
	b.SetBlock(then)
	b.Ret(b.Const(10))
	b.SetBlock(els)
	b.Ret(b.Const(20))
	return b.Fn
}

func TestPassNames(t *testing.T) {
	names := PassNames()
	if len(names) == 0 {
		t.Fatal("no pass names")
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate pass name %q", n)
		}
		seen[n] = true
	}
}

func TestFunctionCheckedInvokesCheckPerPass(t *testing.T) {
	f := foldableFunc()
	valid := make(map[string]bool)
	for _, n := range PassNames() {
		valid[n] = true
	}
	calls := 0
	_, err := FunctionChecked(f, func(pass string, fn *ir.Function) error {
		calls++
		if !valid[pass] {
			t.Errorf("check called with unknown pass %q", pass)
		}
		if fn != f {
			t.Error("check called with wrong function")
		}
		return fn.Verify()
	})
	if err != nil {
		t.Fatalf("FunctionChecked: %v", err)
	}
	if calls == 0 {
		t.Fatal("check never invoked although the pipeline changed the function")
	}
}

func TestFunctionCheckedAttributesFailingPass(t *testing.T) {
	f := foldableFunc()
	boom := errors.New("boom")
	_, err := FunctionChecked(f, func(pass string, _ *ir.Function) error {
		if pass == "fold-branches" {
			return boom
		}
		return nil
	})
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PassError", err)
	}
	if pe.Pass != "fold-branches" || pe.Func != "f" || pe.Iteration < 1 {
		t.Errorf("PassError = %+v, want pass fold-branches on func f", pe)
	}
	if !errors.Is(err, boom) {
		t.Error("PassError must unwrap to the check's error")
	}
}

func TestModuleCheckedStopsAtFirstViolation(t *testing.T) {
	m := ir.NewModule("m")
	m.AddFunc(foldableFunc())
	g := foldableFunc()
	g.Name = "g"
	m.AddFunc(g)
	checked := make(map[string]bool)
	_, err := ModuleChecked(m, func(_ string, fn *ir.Function) error {
		checked[fn.Name] = true
		return fmt.Errorf("reject %s", fn.Name)
	})
	var pe *PassError
	if !errors.As(err, &pe) || pe.Func != "f" {
		t.Fatalf("err = %v, want PassError on first function f", err)
	}
	if checked["g"] {
		t.Error("pipeline continued past the first violation")
	}
}

func TestFunctionCheckedNilCheckMatchesFunction(t *testing.T) {
	a, b := foldableFunc(), foldableFunc()
	sa := Function(a)
	sb, err := FunctionChecked(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Errorf("stats diverge: Function %+v vs FunctionChecked(nil) %+v", sa, sb)
	}
	if a.NumInstrs() != b.NumInstrs() {
		t.Error("nil-check FunctionChecked produced different IR than Function")
	}
}
