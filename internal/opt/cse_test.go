package opt

import (
	"testing"

	"optinline/internal/interp"
	"optinline/internal/ir"
)

func countOp(f *ir.Function, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestCSEWithinBlock(t *testing.T) {
	m := mustParse(t, `
export func @f(%x, %y) {
entry:
  %a = mul %x, %y
  %b = mul %x, %y
  %s = add %a, %b
  ret %s
}
`)
	f := m.Func("f")
	Function(f)
	if got := countOp(f, ir.OpBin); got != 2 { // one mul + the add
		t.Fatalf("binops=%d, want 2:\n%s", got, f.String())
	}
	res, _ := interp.Run(m, "f", []int64{3, 5}, interp.Options{})
	if res.Ret != 30 {
		t.Fatalf("f(3,5)=%d", res.Ret)
	}
}

func TestCSECommutative(t *testing.T) {
	m := mustParse(t, `
export func @f(%x, %y) {
entry:
  %a = add %x, %y
  %b = add %y, %x
  %s = mul %a, %b
  ret %s
}
`)
	f := m.Func("f")
	Function(f)
	adds := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.BinOp == ir.Add {
				adds++
			}
		}
	}
	if adds != 1 {
		t.Fatalf("commutative duplicate not eliminated:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{2, 3}, interp.Options{})
	if res.Ret != 25 {
		t.Fatalf("f(2,3)=%d", res.Ret)
	}
}

func TestCSENonCommutativeKeepsOrder(t *testing.T) {
	m := mustParse(t, `
export func @f(%x, %y) {
entry:
  %a = sub %x, %y
  %b = sub %y, %x
  %s = mul %a, %b
  output %a
  output %b
  ret %s
}
`)
	f := m.Func("f")
	Function(f)
	subs := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBin && in.BinOp == ir.Sub {
				subs++
			}
		}
	}
	if subs != 2 {
		t.Fatalf("sub wrongly deduplicated:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{7, 2}, interp.Options{})
	if res.Ret != -25 {
		t.Fatalf("f(7,2)=%d", res.Ret)
	}
}

func TestCSEAcrossDominatingBlocks(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %a = mul %x, %x
  %c = gt %x, %a
  condbr %c, yes, no
yes:
  %b = mul %x, %x
  ret %b
no:
  %d = mul %x, %x
  %e = add %d, %a
  ret %e
}
`)
	f := m.Func("f")
	Function(f)
	if got := countOp(f, ir.OpBin); got > 3 { // mul + gt + add survive
		t.Fatalf("dominating CSE missed:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{4}, interp.Options{})
	if res.Ret != 32 {
		t.Fatalf("f(4)=%d", res.Ret)
	}
}

func TestCSEDoesNotCrossSiblings(t *testing.T) {
	// Identical expressions in sibling branches must NOT be merged (neither
	// dominates the other) — but both feed the join, so behaviour is easy
	// to check.
	m := mustParse(t, `
export func @f(%x) {
entry:
  %zero = const 0
  %c = gt %x, %zero
  condbr %c, yes, no
yes:
  %a = mul %x, %x
  output %a
  br join(%a)
no:
  %b = mul %x, %x
  br join(%b)
join(%v):
  ret %v
}
`)
	f := m.Func("f")
	Function(f)
	if err := f.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, f.String())
	}
	for _, arg := range []int64{3, -3} {
		res, err := interp.Run(m, "f", []int64{arg}, interp.Options{})
		if err != nil || res.Ret != arg*arg {
			t.Fatalf("f(%d)=%d err=%v", arg, res.Ret, err)
		}
	}
}

func TestCSEExcludesGlobalLoads(t *testing.T) {
	m := mustParse(t, `
global @g
export func @f(%x) {
entry:
  %a = loadg @g
  storeg @g, %x
  %b = loadg @g
  %s = add %a, %b
  ret %s
}
`)
	f := m.Func("f")
	Function(f)
	if got := countOp(f, ir.OpLoadG); got != 2 {
		t.Fatalf("global loads wrongly merged:\n%s", f.String())
	}
	res, _ := interp.Run(m, "f", []int64{5}, interp.Options{})
	if res.Ret != 5 { // 0 + 5
		t.Fatalf("f(5)=%d", res.Ret)
	}
}

func TestCSEConstantsDeduplicated(t *testing.T) {
	m := mustParse(t, `
export func @f(%x) {
entry:
  %a = const 42
  %b = const 42
  %p = add %x, %a
  %q = add %p, %b
  ret %q
}
`)
	f := m.Func("f")
	Function(f)
	if got := countOp(f, ir.OpConst); got != 1 {
		t.Fatalf("constants not deduplicated:\n%s", f.String())
	}
}
