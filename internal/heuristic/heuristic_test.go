package heuristic

import (
	"testing"

	"optinline/internal/analysis/interproc"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
	"optinline/internal/search"
)

const src = `
func @tiny(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

func @medium(%x) {
entry:
  %a = mul %x, %x
  %b = add %a, %x
  %c = mul %b, %a
  %d = add %c, %b
  %e = mul %d, %c
  ret %e
}

func @large(%x) {
entry:
  %a1 = mul %x, %x
  %a2 = mul %a1, %x
  %a3 = add %a2, %a1
  %a4 = mul %a3, %a2
  %a5 = add %a4, %a3
  %a6 = mul %a5, %a4
  %a7 = add %a6, %a5
  %a8 = mul %a7, %a6
  %a9 = add %a8, %a7
  %a10 = mul %a9, %a8
  %a11 = add %a10, %a9
  %a12 = mul %a11, %a10
  %a13 = add %a12, %a11
  %a14 = mul %a13, %a12
  %a15 = add %a14, %a13
  %a16 = mul %a15, %a14
  %a17 = add %a16, %a15
  %a18 = mul %a17, %a16
  %a19 = add %a18, %a17
  %a20 = mul %a19, %a18
  ret %a20
}

func @singleCaller(%x) {
entry:
  %a = mul %x, %x
  %b = add %a, %x
  %c = mul %b, %a
  %d = add %c, %b
  %e = mul %d, %c
  %f = add %e, %d
  %g = mul %f, %e
  ret %g
}

func @selfrec(%n) {
entry:
  %zero = const 0
  %c = le %n, %zero
  condbr %c, done, more
done:
  ret %zero
more:
  %one = const 1
  %m = sub %n, %one
  %r = call @selfrec(%m) !site 1
  %s = add %r, %n
  ret %s
}

export func @main(%x) {
entry:
  %a = call @tiny(%x) !site 2
  %b = call @medium(%x) !site 3
  %c = call @large(%x) !site 4
  %d = call @large(%a) !site 5
  %e = call @singleCaller(%x) !site 6
  %f = call @selfrec(%x) !site 7
  %seven = const 7
  %g = call @medium(%seven) !site 8
  %s1 = add %a, %b
  %s2 = add %s1, %c
  %s3 = add %s2, %d
  %s4 = add %s3, %e
  %s5 = add %s4, %f
  %s6 = add %s5, %g
  ret %s6
}
`

func setup(t *testing.T) (*ir.Module, *callgraph.Graph, *callgraph.Config) {
	t.Helper()
	m, err := ir.Parse("heur", src)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build(m)
	return m, g, OsConfig(m, g)
}

func TestAlwaysInlinesTrivialWrappers(t *testing.T) {
	_, _, cfg := setup(t)
	if !cfg.Inline(2) {
		t.Fatal("tiny callee not inlined")
	}
}

func TestNeverInlinesRecursive(t *testing.T) {
	_, _, cfg := setup(t)
	if cfg.Inline(1) {
		t.Fatal("recursive edges must stay calls")
	}
}

func TestSkipsLargeCallees(t *testing.T) {
	_, _, cfg := setup(t)
	if cfg.Inline(4) || cfg.Inline(5) {
		t.Fatal("large multi-caller callee should not be inlined at -Os")
	}
}

func TestSingleCallerInternalBonus(t *testing.T) {
	_, _, cfg := setup(t)
	if !cfg.Inline(6) {
		t.Fatal("single-caller internal callee should be inlined")
	}
}

func TestConstArgBonus(t *testing.T) {
	_, _, cfg := setup(t)
	// medium is borderline; the constant-argument site should be at least
	// as eager as the variable-argument one.
	if cfg.Inline(3) && !cfg.Inline(8) {
		t.Fatal("constant-arg site less eager than variable-arg site")
	}
	if !cfg.Inline(8) {
		t.Fatal("const-arg medium call should be inlined")
	}
}

func TestThresholdMonotonic(t *testing.T) {
	m, g, _ := setup(t)
	stingy := DefaultParams()
	stingy.Threshold = -1000
	stingy.AlwaysInlineInstrs = 0
	stingy.SingleCallerBonus = 0
	stingy.ConstArgBonus = 0
	none := Config(m, g, stingy)
	if none.InlineCount() != 0 {
		t.Fatalf("hostile params still inlined %d", none.InlineCount())
	}
	generous := DefaultParams()
	generous.Threshold = 1 << 20
	all := Config(m, g, generous)
	// Everything except the one recursive edge.
	if all.InlineCount() != len(g.Edges)-1 {
		t.Fatalf("generous params inlined %d of %d", all.InlineCount(), len(g.Edges))
	}
}

func TestHeuristicIsEagerRelativeToOptimal(t *testing.T) {
	// The paper's Table 2: LLVM -Os inlines more call sites than optimal.
	m, _, cfg := setup(t)
	c := compile.New(m, codegen.TargetX86)
	res, ok := search.Optimal(c, search.Options{})
	if !ok {
		t.Fatal("search aborted")
	}
	if cfg.InlineCount() < res.Config.InlineCount() {
		t.Fatalf("heuristic (%d inlined) less eager than optimal (%d)",
			cfg.InlineCount(), res.Config.InlineCount())
	}
	// And it should not beat the optimum.
	if c.Size(cfg) < res.Size {
		t.Fatal("heuristic beat the exhaustive optimum — search is broken")
	}
}

func TestBottomUpOrder(t *testing.T) {
	_, g, _ := setup(t)
	order := bottomUpOrder(g)
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges {
		if e.Caller == e.Callee {
			continue
		}
		if pos[e.Callee] > pos[e.Caller] {
			t.Fatalf("callee %s ordered after caller %s", e.Callee, e.Caller)
		}
	}
}

func TestDeterministic(t *testing.T) {
	_, _, cfg1 := setup(t)
	_, _, cfg2 := setup(t)
	if !cfg1.Equal(cfg2) {
		t.Fatal("heuristic not deterministic")
	}
}

// marginalSrc has a pure 12-instruction callee called from two sites:
// cost = 12*4 - (18 + 2*1) = 28, just over the default threshold of 26,
// and neither the always-inline nor the single-caller bonus applies.
const marginalSrc = `
func @pure12(%x) {
entry:
  %a1 = mul %x, %x
  %a2 = add %a1, %x
  %a3 = mul %a2, %a1
  %a4 = add %a3, %a2
  %a5 = mul %a4, %a3
  %a6 = add %a5, %a4
  %a7 = mul %a6, %a5
  %a8 = add %a7, %a6
  %a9 = mul %a8, %a7
  %aa = add %a9, %a8
  %ab = mul %aa, %a9
  ret %ab
}

export func @main(%x) {
entry:
  %r1 = call @pure12(%x) !site 1
  %r2 = call @pure12(%r1) !site 2
  ret %r2
}
`

func TestSummaryTieBreakers(t *testing.T) {
	m, err := ir.Parse("heur", marginalSrc)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build(m)
	ms := interproc.Analyze(m, g, nil)

	base := Config(m, g, DefaultParams())
	if base.Inline(1) || base.Inline(2) {
		t.Fatal("marginal sites must start above threshold; the fixture drifted")
	}

	// Nil summaries and zero bonuses must both reproduce Config exactly.
	if got := ConfigWithSummaries(m, g, DefaultParams(), nil); got.Key() != base.Key() {
		t.Error("nil summaries changed the configuration")
	}
	if got := ConfigWithSummaries(m, g, DefaultParams(), ms); got.Key() != base.Key() {
		t.Error("zero bonuses changed the configuration")
	}

	p := DefaultParams()
	p.PureCalleeBonus = 4
	tipped := ConfigWithSummaries(m, g, p, ms)
	if !tipped.Inline(1) || !tipped.Inline(2) {
		t.Errorf("pure-callee bonus must tip the marginal sites: %v", tipped)
	}
}
