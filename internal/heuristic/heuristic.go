// Package heuristic implements an LLVM-style cost-model inlining heuristic
// for size ("-Os"). It stands in for the state of the art that the paper
// measures against.
//
// Like LLVM's inliner it works bottom-up over the call graph, maintains a
// running size estimate of each (partially inlined) function, charges the
// callee's current size against the savings of removing the call sequence,
// and applies bonuses for constant arguments (they enable simplification)
// and for single-caller internal callees (inlining deletes the callee).
// And like LLVM's -Os heuristic as measured in the paper (Table 2: 23.7% of
// decisions too aggressive vs 3.6% too conservative), it errs on the side
// of inlining.
package heuristic

import (
	"sort"

	"optinline/internal/analysis/interproc"
	"optinline/internal/callgraph"
	"optinline/internal/ir"
)

// Params are the tunables of the cost model. DefaultParams mirrors the
// flavour of LLVM's -Os settings.
type Params struct {
	// InstrBytes approximates the encoded size of one IR instruction.
	InstrBytes int
	// CallBytes is the size of a call sequence that inlining removes
	// (call instruction, argument setup, and the result move).
	CallBytes int
	// CallArgBytes is the per-argument share of the call sequence.
	CallArgBytes int
	// ConstArgBonus rewards call sites passing constants: the body is
	// expected to simplify.
	ConstArgBonus int
	// SingleCallerBonus rewards internal callees with exactly one caller:
	// inlining deletes the original body.
	SingleCallerBonus int
	// Threshold is the maximum net cost that is still inlined.
	Threshold int
	// AlwaysInlineInstrs: callees at most this many instructions are
	// always inlined (trivial wrappers).
	AlwaysInlineInstrs int

	// Summary tie-breakers, applied only by ConfigWithSummaries and only
	// when summaries are supplied. All default to 0, so DefaultParams
	// keeps OsConfig bit-identical to its historical output; nonzero
	// values nudge near-threshold sites using interprocedural facts the
	// local model cannot see.

	// PureCalleeBonus rewards calls to provably pure callees: an unused
	// or foldable result lets DCE collapse the inlined body.
	PureCalleeBonus int
	// ConstReturnBonus rewards callees whose return lattice is a single
	// known constant: the call result folds to a literal after inlining.
	ConstReturnBonus int
	// DeadParamBonus rewards each callee parameter no instruction uses:
	// the argument computation dies with the call sequence.
	DeadParamBonus int
}

// DefaultParams is the -Os-like tuning used throughout the experiments.
func DefaultParams() Params {
	return Params{
		InstrBytes:         4,
		CallBytes:          18,
		CallArgBytes:       2,
		ConstArgBonus:      14,
		SingleCallerBonus:  60,
		Threshold:          26,
		AlwaysInlineInstrs: 8,
	}
}

// OsConfig returns the heuristic's inlining configuration for the module,
// playing the role of "LLVM -Os" in the experiments.
func OsConfig(m *ir.Module, g *callgraph.Graph) *callgraph.Config {
	return Config(m, g, DefaultParams())
}

// Config runs the cost model with explicit parameters.
func Config(m *ir.Module, g *callgraph.Graph, p Params) *callgraph.Config {
	return ConfigWithSummaries(m, g, p, nil)
}

// ConfigWithSummaries runs the cost model with interprocedural summary
// tie-breakers. A nil ms reproduces Config exactly; with summaries, the
// per-site cost additionally drops by the Params summary bonuses for
// pure callees, constant returns, and dead parameters — whole-callgraph
// facts that flip only sites the local model finds marginal.
func ConfigWithSummaries(m *ir.Module, g *callgraph.Graph, p Params, ms *interproc.ModuleSummary) *callgraph.Config {
	cfg := callgraph.NewConfig()

	// Current size estimate per function, updated as inlining decisions
	// are made (bottom-up, so callee estimates are final when used).
	estimate := make(map[string]int, len(m.Funcs))
	for _, f := range m.Funcs {
		estimate[f.Name] = f.NumInstrs() * p.InstrBytes
	}
	callers := make(map[string]int)
	for _, e := range g.Edges {
		callers[e.Callee]++
	}

	order := bottomUpOrder(g)
	// Group candidate edges by caller for processing in that order.
	edgesByCaller := make(map[string][]callgraph.Edge)
	for _, e := range g.Edges {
		edgesByCaller[e.Caller] = append(edgesByCaller[e.Caller], e)
	}
	for _, caller := range order {
		edges := edgesByCaller[caller]
		sort.Slice(edges, func(i, j int) bool { return edges[i].Site < edges[j].Site })
		for _, e := range edges {
			if e.Recursive {
				continue // recursive edges stay calls
			}
			callee := m.Func(e.Callee)
			if callee == nil {
				continue
			}
			calleeSize := estimate[e.Callee]
			savings := p.CallBytes + p.CallArgBytes*e.NumArgs
			cost := calleeSize - savings
			cost -= e.ConstArgs * p.ConstArgBonus
			if callers[e.Callee] == 1 && !callee.Exported {
				cost -= p.SingleCallerBonus
			}
			if ms != nil {
				if s := ms.Func(e.Callee); s != nil {
					if s.Pure {
						cost -= p.PureCalleeBonus
					}
					if s.Return.State == interproc.ConstKnown {
						cost -= p.ConstReturnBonus
					}
					for _, prm := range s.Params {
						if prm.Dead {
							cost -= p.DeadParamBonus
						}
					}
				}
			}
			if callee.NumInstrs() <= p.AlwaysInlineInstrs || cost <= p.Threshold {
				cfg.Set(e.Site, true)
				estimate[caller] += calleeSize - savings
				if estimate[caller] < 0 {
					estimate[caller] = 0
				}
			}
		}
	}
	return cfg
}

// bottomUpOrder returns function names so that callees precede callers
// (reverse topological order of the call DAG; cycles broken arbitrarily).
func bottomUpOrder(g *callgraph.Graph) []string {
	adj := make(map[string][]string)
	for _, e := range g.Edges {
		if e.Caller != e.Callee {
			adj[e.Caller] = append(adj[e.Caller], e.Callee)
		}
	}
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(n string)
	visit = func(n string) {
		if state[n] != 0 {
			return
		}
		state[n] = 1
		for _, c := range adj[n] {
			if state[c] == 0 {
				visit(c)
			}
		}
		state[n] = 2
		order = append(order, n)
	}
	for _, n := range g.Nodes {
		visit(n)
	}
	return order
}

// NoInlineConfig returns the configuration that disables inlining entirely;
// the baseline of the paper's Figure 1.
func NoInlineConfig() *callgraph.Config { return callgraph.NewConfig() }
