package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleList() List {
	return List{
		{Analyzer: "ip-dead-param", Severity: Warning, Pos: Pos{File: "b.minc"},
			Func: "f", Block: "entry", Message: "parameter x is dead"},
		{Analyzer: "pure-call", Severity: Info, Pos: Pos{File: "a.minc", Line: 3, Col: 5},
			Func: "main", Message: "result unused"},
		{Analyzer: "use-before-def", Severity: Error, Message: "bad IR"},
	}
}

func TestSARIFStructure(t *testing.T) {
	out, err := sampleList().SARIF(SARIFOptions{RuleDocs: map[string]string{
		"pure-call": "calls to pure functions whose result is unused",
	}})
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation *struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
					LogicalLocations []struct {
						Name               string `json:"name"`
						FullyQualifiedName string `json:"fullyQualifiedName"`
						Kind               string `json:"kind"`
					} `json:"logicalLocations"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "inlinelint" {
		t.Errorf("default tool name = %q", got)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if got := []string{rules[0].ID, rules[1].ID, rules[2].ID}; got[0] != "ip-dead-param" || got[1] != "pure-call" || got[2] != "use-before-def" {
		t.Errorf("rules not sorted by id: %v", got)
	}
	if rules[1].ShortDescription.Text != "calls to pure functions whose result is unused" {
		t.Errorf("RuleDocs not applied: %q", rules[1].ShortDescription.Text)
	}
	if rules[0].ShortDescription.Text != "ip-dead-param" {
		t.Errorf("missing doc must fall back to the id: %q", rules[0].ShortDescription.Text)
	}

	// List.Sort orders by file first: "" < "a.minc" < "b.minc".
	rs := log.Runs[0].Results
	if rs[0].Level != "error" || rs[0].RuleID != "use-before-def" || rs[0].Locations != nil {
		t.Errorf("position-free diagnostic must sort first with no locations: %+v", rs[0])
	}
	if rs[1].RuleID != "pure-call" || rs[1].Level != "note" {
		t.Errorf("results[1] = %+v, want pure-call/note", rs[1])
	}
	if rs[1].RuleIndex != 1 {
		t.Errorf("pure-call ruleIndex = %d, want 1", rs[1].RuleIndex)
	}
	phys := rs[1].Locations[0].PhysicalLocation
	if phys == nil || phys.ArtifactLocation.URI != "a.minc" || phys.Region == nil ||
		phys.Region.StartLine != 3 || phys.Region.StartColumn != 5 {
		t.Errorf("physical location wrong: %+v", rs[1].Locations)
	}
	if rs[2].Level != "warning" || rs[2].Locations[0].PhysicalLocation.Region != nil {
		t.Errorf("line-0 diagnostic must omit the region: %+v", rs[2])
	}
	ll := rs[2].Locations[0].LogicalLocations
	if ll[0].Name != "f" || ll[0].FullyQualifiedName != "f.entry" || ll[0].Kind != "function" {
		t.Errorf("logical location wrong: %+v", ll)
	}
}

func TestSARIFEmptyList(t *testing.T) {
	out, err := List(nil).SARIF(SARIFOptions{Tool: "mytool"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `"rules": []`) || !strings.Contains(s, `"results": []`) {
		t.Errorf("empty list must render empty arrays, not null:\n%s", s)
	}
	if !strings.Contains(s, `"name": "mytool"`) {
		t.Errorf("tool override not applied:\n%s", s)
	}
}

func TestSARIFDeterministic(t *testing.T) {
	a, err := sampleList().SARIF(SARIFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleList().SARIF(SARIFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("SARIF output differs across identical renders")
	}
}
