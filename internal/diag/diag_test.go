package diag

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSeverityStrings(t *testing.T) {
	cases := map[Severity]string{Info: "info", Warning: "warning", Error: "error"}
	for sev, want := range cases {
		if got := sev.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(sev), got, want)
		}
	}
	if Info >= Warning || Warning >= Error {
		t.Error("severity order must be Info < Warning < Error")
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []Severity{Info, Warning, Error} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, data, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity name should fail to unmarshal")
	}
}

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  Pos
		want string
	}{
		{Pos{}, ""},
		{Pos{File: "a.minc"}, "a.minc"},
		{Pos{File: "a.minc", Line: 3}, "a.minc:3"},
		{Pos{File: "a.minc", Line: 3, Col: 7}, "a.minc:3:7"},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
	if (Pos{File: "x"}).IsValid() {
		t.Error("file-only position should not be valid (no line)")
	}
	if !(Pos{Line: 1}).IsValid() {
		t.Error("line 1 should be valid")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Analyzer: "unused-local",
		Severity: Warning,
		Pos:      Pos{File: "a.minc", Line: 4},
		Func:     "main",
		Message:  "local \"x\" is assigned but never read",
	}
	want := `a.minc:4: warning: [unused-local] func main: local "x" is assigned but never read`
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}

	d2 := Diagnostic{Analyzer: "dead-instr", Severity: Error, Func: "f", Block: "b3", Message: "boom"}
	want2 := "error: [dead-instr] func f: block b3: boom"
	if got := d2.String(); got != want2 {
		t.Errorf("String() = %q, want %q", got, want2)
	}
}

func TestListSortAndFilters(t *testing.T) {
	l := List{
		{Analyzer: "b", Severity: Error, Pos: Pos{File: "z.minc", Line: 1}, Message: "m1"},
		{Analyzer: "a", Severity: Info, Pos: Pos{File: "a.minc", Line: 9}, Message: "m2"},
		{Analyzer: "a", Severity: Warning, Pos: Pos{File: "a.minc", Line: 2}, Message: "m3"},
	}
	l.Sort()
	if l[0].Message != "m3" || l[1].Message != "m2" || l[2].Message != "m1" {
		t.Errorf("sort order wrong: %v", l)
	}
	if got := l.Count(Warning); got != 1 {
		t.Errorf("Count(Warning) = %d, want 1", got)
	}
	if !l.HasErrors() {
		t.Error("HasErrors() = false, want true")
	}
	if got := len(l.MinSeverity(Warning)); got != 2 {
		t.Errorf("MinSeverity(Warning) kept %d, want 2", got)
	}
	if got := len(l.ByAnalyzer("a")); got != 2 {
		t.Errorf("ByAnalyzer(a) kept %d, want 2", got)
	}
}

func TestListText(t *testing.T) {
	l := List{
		{Analyzer: "x", Severity: Info, Pos: Pos{File: "b.minc", Line: 2}, Message: "later"},
		{Analyzer: "x", Severity: Info, Pos: Pos{File: "a.minc", Line: 1}, Message: "first"},
	}
	text := l.Text()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "first") {
		t.Errorf("Text() not sorted: %q", text)
	}
	// Text must not mutate the receiver's order.
	if l[0].Message != "later" {
		t.Error("Text() mutated the list")
	}
}

func TestListJSON(t *testing.T) {
	var empty List
	data, err := empty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[]" {
		t.Errorf("empty list JSON = %s, want []", data)
	}

	l := List{{Analyzer: "a", Severity: Error, Message: "m"}}
	data, err = l.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back List
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != l[0] {
		t.Errorf("JSON round trip: got %+v, want %+v", back, l)
	}
}
