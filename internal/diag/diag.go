// Package diag defines the structured diagnostics shared by the static
// analyzers (internal/analysis), the MinC frontend lints (internal/lang),
// and checked compilation mode (internal/compile). A diagnostic carries the
// analyzer that produced it, a severity, an optional source position, and an
// optional IR location (function/block), and renders both as stable
// human-readable text and as machine-readable JSON — the two output modes of
// the inlinelint command.
package diag

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity classifies a diagnostic. Errors are invariant violations that
// fail checked compilation; warnings are suspicious-but-legal constructs;
// infos are observations (e.g. recursion cycles) with no quality judgement.
type Severity int

// Severities, ordered from least to most severe.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its lower-case name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the lower-case severity names.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = Info
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("diag: unknown severity %q", name)
	}
	return nil
}

// Pos is a source position. Line 0 means "no source position" (IR-level
// diagnostics on modules that did not come from MinC source).
type Pos struct {
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// IsValid reports whether the position carries at least a line number.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	switch {
	case p.File == "" && !p.IsValid():
		return ""
	case !p.IsValid():
		return p.File
	case p.Col > 0:
		return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
	default:
		return fmt.Sprintf("%s:%d", p.File, p.Line)
	}
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Pos      Pos      `json:"pos"`
	Func     string   `json:"func,omitempty"`  // IR function, when known
	Block    string   `json:"block,omitempty"` // IR basic block, when known
	Message  string   `json:"message"`
}

// String renders the diagnostic in the compiler-style one-line form
//
//	file:line:col: severity: [analyzer] func f: block b: message
//
// omitting the parts that are absent.
func (d Diagnostic) String() string {
	var sb strings.Builder
	if p := d.Pos.String(); p != "" {
		sb.WriteString(p)
		sb.WriteString(": ")
	}
	fmt.Fprintf(&sb, "%s: [%s] ", d.Severity, d.Analyzer)
	if d.Func != "" {
		fmt.Fprintf(&sb, "func %s: ", d.Func)
	}
	if d.Block != "" {
		fmt.Fprintf(&sb, "block %s: ", d.Block)
	}
	sb.WriteString(d.Message)
	return sb.String()
}

// List is an ordered collection of diagnostics.
type List []Diagnostic

// Sort orders the list deterministically: by file, line, column, function,
// block, analyzer, and finally message. Renderers sort before printing so
// text and JSON output are stable under golden tests.
func (l List) Sort() {
	sort.SliceStable(l, func(i, j int) bool {
		a, b := l[i], l[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Count returns the number of diagnostics at exactly the given severity.
func (l List) Count(s Severity) int {
	n := 0
	for _, d := range l {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether the list contains any error-severity diagnostic.
func (l List) HasErrors() bool { return l.Count(Error) > 0 }

// MinSeverity returns the diagnostics at or above the given severity.
func (l List) MinSeverity(s Severity) List {
	var out List
	for _, d := range l {
		if d.Severity >= s {
			out = append(out, d)
		}
	}
	return out
}

// ByAnalyzer returns the diagnostics produced by the named analyzer.
func (l List) ByAnalyzer(name string) List {
	var out List
	for _, d := range l {
		if d.Analyzer == name {
			out = append(out, d)
		}
	}
	return out
}

// Text renders the sorted list as one diagnostic per line.
func (l List) Text() string {
	sorted := append(List(nil), l...)
	sorted.Sort()
	var sb strings.Builder
	for _, d := range sorted {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// JSON renders the sorted list as indented JSON. An empty list renders as
// "[]", never "null", so consumers can always iterate.
func (l List) JSON() ([]byte, error) {
	sorted := append(List(nil), l...)
	sorted.Sort()
	if sorted == nil {
		sorted = List{}
	}
	return json.MarshalIndent(sorted, "", "  ")
}
