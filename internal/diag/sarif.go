package diag

import (
	"encoding/json"
	"sort"
)

// SARIF rendering (Static Analysis Results Interchange Format, version
// 2.1.0). The output is deliberately minimal — one run, one driver, one
// result per diagnostic — but structurally valid, so CI systems and
// editors that ingest SARIF can consume inlinelint findings directly.
// Rendering is deterministic: rules are sorted by id, results follow the
// List.Sort order, and encoding/json keeps struct field order stable.

// SARIFOptions configures the SARIF rendering.
type SARIFOptions struct {
	// Tool names the driver; empty defaults to "inlinelint".
	Tool string
	// RuleDocs maps analyzer names to their one-line documentation,
	// emitted as each rule's shortDescription. Analyzers present in the
	// list but absent from the map get their name as description.
	RuleDocs map[string]string
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysical `json:"physicalLocation,omitempty"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifLogical struct {
	Name               string `json:"name"`
	FullyQualifiedName string `json:"fullyQualifiedName,omitempty"`
	Kind               string `json:"kind"`
}

// sarifLevel maps a severity onto the SARIF result level vocabulary.
func sarifLevel(s Severity) string {
	switch s {
	case Info:
		return "note"
	case Warning:
		return "warning"
	default:
		return "error"
	}
}

// SARIF renders the sorted list as a SARIF 2.1.0 log. An empty list
// yields a run with an empty (never null) rules and results array.
func (l List) SARIF(opts SARIFOptions) ([]byte, error) {
	tool := opts.Tool
	if tool == "" {
		tool = "inlinelint"
	}
	sorted := append(List(nil), l...)
	sorted.Sort()

	present := map[string]bool{}
	for _, d := range sorted {
		present[d.Analyzer] = true
	}
	var ids []string
	for id := range present {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	rules := []sarifRule{}
	ruleIndex := map[string]int{}
	for i, id := range ids {
		doc := opts.RuleDocs[id]
		if doc == "" {
			doc = id
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifText{Text: doc}})
		ruleIndex[id] = i
	}

	results := []sarifResult{}
	for _, d := range sorted {
		r := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     sarifLevel(d.Severity),
			Message:   sarifText{Text: d.Message},
		}
		loc := sarifLocation{}
		if d.Pos.File != "" || d.Pos.IsValid() {
			phys := &sarifPhysical{ArtifactLocation: sarifArtifact{URI: d.Pos.File}}
			if d.Pos.IsValid() {
				phys.Region = &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Col}
			}
			loc.PhysicalLocation = phys
		}
		if d.Func != "" {
			logical := sarifLogical{Name: d.Func, Kind: "function"}
			if d.Block != "" {
				logical.FullyQualifiedName = d.Func + "." + d.Block
			}
			loc.LogicalLocations = []sarifLogical{logical}
		}
		if loc.PhysicalLocation != nil || loc.LogicalLocations != nil {
			r.Locations = []sarifLocation{loc}
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
