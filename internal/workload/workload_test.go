package workload

import (
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/inline"
	"optinline/internal/interp"
	"optinline/internal/search"
)

func smallProfile() Profile {
	return Profile{
		Name: "testbench", Files: 4, TotalEdges: 24, TrivialPct: 0.5,
		ConstArgProb: 0.4, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.15, BranchProb: 0.5, MultiRootPct: 0.15,
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(smallProfile())
	b := Generate(smallProfile())
	if len(a.Files) != len(b.Files) {
		t.Fatal("file counts differ")
	}
	for i := range a.Files {
		if a.Files[i].Module.String() != b.Files[i].Module.String() {
			t.Fatalf("file %d differs across generations", i)
		}
	}
}

func TestGeneratedModulesVerify(t *testing.T) {
	bench := Generate(smallProfile())
	if len(bench.Files) != 6 { // 4 regular + 2 trivial
		t.Fatalf("files=%d, want 6", len(bench.Files))
	}
	for _, f := range bench.Files {
		if err := f.Module.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

func TestGeneratedModulesRun(t *testing.T) {
	bench := Generate(smallProfile())
	for _, f := range bench.Files {
		entry := "entry"
		if f.Module.Func(entry) == nil {
			entry = f.Module.Funcs[0].Name // trivial files: first leaf
		}
		for _, arg := range []int64{0, 1, 7} {
			res, err := interp.Run(f.Module, entry, []int64{arg}, interp.Options{Fuel: 5_000_000})
			if err != nil {
				t.Fatalf("%s(%d): %v", f.Name, arg, err)
			}
			_ = res
		}
	}
}

func TestTrivialFilesHaveNoCandidates(t *testing.T) {
	bench := Generate(smallProfile())
	regular, trivial := 0, 0
	for _, f := range bench.Files {
		g := callgraph.Build(f.Module)
		if len(g.Edges) == 0 {
			trivial++
		} else {
			regular++
		}
	}
	if trivial < 2 || regular < 4 {
		t.Fatalf("regular=%d trivial=%d", regular, trivial)
	}
}

func TestEdgeBudgetRoughlyMet(t *testing.T) {
	p := smallProfile()
	bench := Generate(p)
	total := 0
	for _, f := range bench.Files {
		total += len(callgraph.Build(f.Module).Edges)
	}
	if total < p.TotalEdges/3 || total > p.TotalEdges*3 {
		t.Fatalf("edge budget %d, generated %d", p.TotalEdges, total)
	}
}

func TestGeneratedInliningPreservesSemantics(t *testing.T) {
	// End-to-end on generated code: random configurations must not change
	// observable behaviour.
	bench := Generate(smallProfile())
	for _, f := range bench.Files {
		if f.Module.Func("entry") == nil {
			continue
		}
		g := callgraph.Build(f.Module)
		if len(g.Edges) == 0 || len(g.Edges) > 12 {
			continue
		}
		base, err := interp.Run(f.Module, "entry", []int64{3}, interp.Options{Fuel: 5_000_000})
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		for mask := 0; mask < 1<<len(g.Edges); mask += 3 {
			cfg := callgraph.NewConfig()
			for i, e := range g.Edges {
				if mask&(1<<i) != 0 {
					cfg.Set(e.Site, true)
				}
			}
			m := f.Module.Clone()
			if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
				t.Fatalf("%s %v: %v", f.Name, cfg, err)
			}
			got, err := interp.Run(m, "entry", []int64{3}, interp.Options{Fuel: 5_000_000})
			if err != nil {
				t.Fatalf("%s %v: %v", f.Name, cfg, err)
			}
			if got.Observable() != base.Observable() {
				t.Fatalf("%s %v: behaviour changed", f.Name, cfg)
			}
		}
	}
}

func TestSPECProfilesShape(t *testing.T) {
	profiles := SPECProfiles()
	if len(profiles) != 20 {
		t.Fatalf("got %d profiles, want 20", len(profiles))
	}
	names := make(map[string]bool)
	prev := 0
	for _, p := range profiles {
		if names[p.Name] {
			t.Fatalf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.TotalEdges < prev {
			t.Fatalf("profiles not ordered by edge budget at %s", p.Name)
		}
		prev = p.TotalEdges
		if p.Files < 1 {
			t.Fatalf("%s has no files", p.Name)
		}
	}
	for n := range SPECSpeedSubset() {
		if !names[n] {
			t.Fatalf("SPECspeed name %s not a benchmark", n)
		}
	}
}

func TestSQLiteAmalgamation(t *testing.T) {
	f := SQLiteAmalgamation()
	if err := f.Module.Verify(); err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build(f.Module)
	if len(g.Edges) < 300 {
		t.Fatalf("amalgamation too small: %d edges", len(g.Edges))
	}
	// It must be compilable under a configuration.
	c := compile.New(f.Module, codegen.TargetX86)
	if c.Size(callgraph.NewConfig()) <= 0 {
		t.Fatal("size not positive")
	}
}

func TestLLVMCodebase(t *testing.T) {
	b := LLVMCodebase()
	if len(b.Files) < 8 {
		t.Fatalf("files=%d", len(b.Files))
	}
	total := 0
	for _, f := range b.Files {
		if err := f.Module.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		total += len(callgraph.Build(f.Module).Edges)
	}
	if total < 800 {
		t.Fatalf("llvm corpus too small: %d edges", total)
	}
}

func TestSearchSpaceIsPartitionable(t *testing.T) {
	// The generator must produce bridge-rich graphs so the recursive
	// partition actually reduces the space (the paper's Table 1).
	bench := Generate(Profile{
		Name: "partition", Files: 6, TotalEdges: 60,
		ConstArgProb: 0.3, HubProb: 0.2, BigBodyProb: 0.3, LoopProb: 0.3,
		RecProb: 0.05, BranchProb: 0.4, MultiRootPct: 0.15,
	})
	reduced := 0
	eligible := 0
	for _, f := range bench.Files {
		g := callgraph.Build(f.Module)
		if len(g.Edges) < 6 {
			continue
		}
		eligible++
		rec, capped := search.RecursiveSpaceSize(g, 1<<22)
		if capped {
			continue
		}
		if float64(rec) < float64(uint64(1)<<uint(len(g.Edges)))*0.75 {
			reduced++
		}
	}
	if eligible == 0 || reduced*2 < eligible {
		t.Fatalf("partitioning ineffective: %d/%d files reduced", reduced, eligible)
	}
}
