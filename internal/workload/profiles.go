package workload

import (
	"fmt"
	"math/rand"
)

// SPECProfiles returns the 20 benchmark profiles standing in for the C/C++
// SPEC2017 benchmarks. Edge budgets are the paper's per-benchmark naive
// search-space sizes (Figure 3) scaled down by roughly 20x, preserving the
// ordering; shape knobs vary per benchmark so the corpus covers the
// call-graph structures discussed in the paper.
func SPECProfiles() []Profile {
	return []Profile{
		{Name: "cam4", Files: 2, TotalEdges: 5, TrivialPct: 1,
			ConstArgProb: 0.3, HubProb: 0.1, BigBodyProb: 0.2, LoopProb: 0.2, RecProb: 0, BranchProb: 0.3, MultiRootPct: 0.1},
		{Name: "lbm", Files: 2, TotalEdges: 7, TrivialPct: 1,
			ConstArgProb: 0.2, HubProb: 0.1, BigBodyProb: 0.4, LoopProb: 0.5, RecProb: 0, BranchProb: 0.2, MultiRootPct: 0.1},
		{Name: "mfc", Files: 2, TotalEdges: 9, TrivialPct: 0.5,
			ConstArgProb: 0.5, HubProb: 0.2, BigBodyProb: 0.15, LoopProb: 0.3, RecProb: 0, BranchProb: 0.5, MultiRootPct: 0.1},
		{Name: "xz", Files: 2, TotalEdges: 11, TrivialPct: 0.5,
			ConstArgProb: 0.3, HubProb: 0.2, BigBodyProb: 0.3, LoopProb: 0.4, RecProb: 0.05, BranchProb: 0.4, MultiRootPct: 0.15},
		{Name: "deepsjeng", Files: 4, TotalEdges: 16, TrivialPct: 0.25,
			ConstArgProb: 0.25, HubProb: 0.25, BigBodyProb: 0.3, LoopProb: 0.3, RecProb: 0.1, BranchProb: 0.4, MultiRootPct: 0.15},
		{Name: "nab", Files: 4, TotalEdges: 20, TrivialPct: 0.25,
			ConstArgProb: 0.3, HubProb: 0.15, BigBodyProb: 0.35, LoopProb: 0.4, RecProb: 0.02, BranchProb: 0.3, MultiRootPct: 0.1},
		{Name: "wrf", Files: 5, TotalEdges: 20, TrivialPct: 0.4,
			ConstArgProb: 0.2, HubProb: 0.1, BigBodyProb: 0.45, LoopProb: 0.5, RecProb: 0, BranchProb: 0.25, MultiRootPct: 0.2},
		{Name: "pop2", Files: 5, TotalEdges: 26, TrivialPct: 0.4,
			ConstArgProb: 0.25, HubProb: 0.15, BigBodyProb: 0.4, LoopProb: 0.45, RecProb: 0, BranchProb: 0.3, MultiRootPct: 0.2},
		{Name: "povray", Files: 6, TotalEdges: 27, TrivialPct: 0.3,
			ConstArgProb: 0.35, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3, RecProb: 0.1, BranchProb: 0.45, MultiRootPct: 0.1},
		{Name: "imagick", Files: 6, TotalEdges: 28, TrivialPct: 0.3,
			ConstArgProb: 0.4, HubProb: 0.35, BigBodyProb: 0.3, LoopProb: 0.35, RecProb: 0.05, BranchProb: 0.5, MultiRootPct: 0.1},
		{Name: "x264", Files: 7, TotalEdges: 34, TrivialPct: 0.3,
			ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.3, LoopProb: 0.45, RecProb: 0.02, BranchProb: 0.4, MultiRootPct: 0.15},
		{Name: "namd", Files: 7, TotalEdges: 38, TrivialPct: 0.2,
			ConstArgProb: 0.25, HubProb: 0.2, BigBodyProb: 0.45, LoopProb: 0.5, RecProb: 0, BranchProb: 0.3, MultiRootPct: 0.2},
		{Name: "perlbench", Files: 9, TotalEdges: 56, TrivialPct: 0.25,
			ConstArgProb: 0.4, HubProb: 0.35, BigBodyProb: 0.2, LoopProb: 0.3, RecProb: 0.15, BranchProb: 0.55, MultiRootPct: 0.1},
		{Name: "blender", Files: 12, TotalEdges: 70, TrivialPct: 0.3,
			ConstArgProb: 0.3, HubProb: 0.25, BigBodyProb: 0.3, LoopProb: 0.35, RecProb: 0.05, BranchProb: 0.4, MultiRootPct: 0.15},
		{Name: "cactuBSSN", Files: 12, TotalEdges: 76, TrivialPct: 0.2,
			ConstArgProb: 0.2, HubProb: 0.15, BigBodyProb: 0.5, LoopProb: 0.5, RecProb: 0, BranchProb: 0.25, MultiRootPct: 0.25},
		{Name: "leela", Files: 13, TotalEdges: 88, TrivialPct: 0.2,
			ConstArgProb: 0.45, HubProb: 0.3, BigBodyProb: 0.15, LoopProb: 0.25, RecProb: 0.1, BranchProb: 0.55, MultiRootPct: 0.1},
		{Name: "omnetpp", Files: 14, TotalEdges: 130, TrivialPct: 0.25,
			ConstArgProb: 0.35, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3, RecProb: 0.08, BranchProb: 0.5, MultiRootPct: 0.12},
		{Name: "xalancbmk", Files: 16, TotalEdges: 160, TrivialPct: 0.3,
			ConstArgProb: 0.4, HubProb: 0.35, BigBodyProb: 0.2, LoopProb: 0.25, RecProb: 0.06, BranchProb: 0.5, MultiRootPct: 0.1},
		{Name: "gcc", Files: 28, TotalEdges: 250, TrivialPct: 0.35,
			ConstArgProb: 0.35, HubProb: 0.3, BigBodyProb: 0.3, LoopProb: 0.35, RecProb: 0.12, BranchProb: 0.45, MultiRootPct: 0.15},
		{Name: "parest", Files: 26, TotalEdges: 260, TrivialPct: 0.25,
			ConstArgProb: 0.3, HubProb: 0.25, BigBodyProb: 0.35, LoopProb: 0.4, RecProb: 0.04, BranchProb: 0.4, MultiRootPct: 0.18},
	}
}

// SPECSuite generates all 20 benchmarks.
func SPECSuite() []Benchmark {
	profiles := SPECProfiles()
	out := make([]Benchmark, len(profiles))
	for i, p := range profiles {
		out[i] = Generate(p)
	}
	return out
}

// SPECSpeedSubset returns the benchmark names in the paper's Figure 19
// SPECspeed measurement (the non-Fortran subset).
func SPECSpeedSubset() map[string]bool {
	return map[string]bool{
		"deepsjeng": true, "gcc": true, "imagick": true, "lbm": true,
		"leela": true, "mfc": true, "nab": true, "omnetpp": true,
		"perlbench": true, "x264": true, "xalancbmk": true, "xz": true,
	}
}

// SQLiteAmalgamation generates the stand-in for the SQLite amalgamation:
// one very large translation unit (the paper's file has 18,125 inlinable
// calls; this one is scaled down ~30x).
func SQLiteAmalgamation() File {
	rng := rand.New(rand.NewSource(seedFor("sqlite-amalgamation", 0)))
	p := Profile{
		Name:         "sqlite",
		ConstArgProb: 0.4,
		HubProb:      0.3,
		BigBodyProb:  0.25,
		LoopProb:     0.3,
		RecProb:      0.08,
		BranchProb:   0.5,
		MultiRootPct: 0.12,
	}
	return File{
		Name:   "sqlite3.c",
		Module: genModule(rng, "sqlite3.c", 600, p),
	}
}

// LLVMCodebase generates the stand-in for llvm-project/llvm/lib: files with
// far larger call graphs than the SPEC-like corpus (paper: median 1,004
// inlinable calls per file vs 41 for SPEC2017; scaled down ~10x here).
func LLVMCodebase() Benchmark {
	b := Benchmark{Name: "llvm-lib"}
	sizes := []int{60, 80, 90, 110, 120, 150, 170, 210, 260, 340}
	p := Profile{
		Name:         "llvm-lib",
		ConstArgProb: 0.35,
		HubProb:      0.3,
		BigBodyProb:  0.3,
		LoopProb:     0.35,
		RecProb:      0.1,
		BranchProb:   0.45,
		MultiRootPct: 0.15,
	}
	for i, edges := range sizes {
		rng := rand.New(rand.NewSource(seedFor("llvm-lib", i)))
		name := fmt.Sprintf("llvm/lib/Component%02d.cpp", i)
		b.Files = append(b.Files, File{Name: name, Module: genModule(rng, name, edges, p)})
	}
	return b
}
