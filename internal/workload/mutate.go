package workload

import (
	"fmt"

	"optinline/internal/ir"
)

// MutateLinkedTU returns a deterministic structural variant of a generated
// translation unit — the edit generator behind the incremental re-link
// benchmarks, the inlineload -linked replay, and the relink differential
// fuzzer. The seed selects both the edit kind and its placement, cycling
// through three classes that exercise the two halves of Session.Replace:
//
//	seed%3 == 0  body edit: bump one OpConst literal. The function's
//	             fingerprint changes (its component goes dirty) but the
//	             link surface is untouched, so the plan is reused.
//	seed%3 == 1  rename one file-local function and every intra-unit call
//	             to it: the link surface changes and the plan rebuilds.
//	seed%3 == 2  export one file-local function: cross-TU symbol
//	             resolution changes (the name may newly win or force
//	             renames elsewhere), rebuilding the plan.
//
// Kinds 1 and 2 fall back to the body edit when the unit has no local
// function. The input module is never modified; function order and
// call-site numbering are preserved so the variant drops in as a patched
// TU. Same (module, seed) in, same variant out.
func MutateLinkedTU(m *ir.Module, seed int) *ir.Module {
	if seed < 0 {
		seed = -seed
	}
	kind := seed % 3
	var renameOld, renameNew, exportName string
	switch kind {
	case 1:
		renameOld, renameNew = pickRename(m, seed)
	case 2:
		exportName = pickLocal(m, seed)
	}
	out := ir.NewModule(m.Name)
	for _, g := range m.Globals {
		out.AddGlobal(g)
	}
	for _, f := range m.Funcs {
		nf := f.Clone()
		if renameOld != "" {
			if nf.Name == renameOld {
				nf.Name = renameNew
			}
			for _, b := range nf.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.OpCall && in.Callee == renameOld {
						in.Callee = renameNew
					}
				}
			}
		}
		if exportName != "" && nf.Name == exportName {
			nf.Exported = true
		}
		out.AddFunc(nf)
	}
	if renameOld == "" && exportName == "" {
		mutateConst(out, seed)
	}
	return out
}

// mutateConst bumps one OpConst literal, rotating the starting function by
// seed so successive seeds touch different bodies.
func mutateConst(m *ir.Module, seed int) {
	n := len(m.Funcs)
	for off := 0; off < n; off++ {
		f := m.Funcs[(seed/3+off)%n]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpConst {
					in.Const += int64(1 + seed%7)
					return
				}
			}
		}
	}
}

// pickLocal returns the seed-selected non-exported function name, or "".
func pickLocal(m *ir.Module, seed int) string {
	var locals []string
	for _, f := range m.Funcs {
		if !f.Exported {
			locals = append(locals, f.Name)
		}
	}
	if len(locals) == 0 {
		return ""
	}
	return locals[(seed/3)%len(locals)]
}

// pickRename returns a seed-selected local function and a fresh name for
// it, or "", "".
func pickRename(m *ir.Module, seed int) (old, next string) {
	old = pickLocal(m, seed)
	if old == "" {
		return "", ""
	}
	next = fmt.Sprintf("%s_v%d", old, seed%97)
	for k := 2; m.Func(next) != nil; k++ {
		next = fmt.Sprintf("%s_v%d_%d", old, seed%97, k)
	}
	return old, next
}
