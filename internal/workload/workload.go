// Package workload generates the deterministic synthetic program corpora
// that stand in for the paper's evaluation subjects: the 20 C/C++ SPEC2017
// benchmarks (populations of translation units with benchmark-specific
// call-graph shape and size), the SQLite amalgamation (one very large
// translation unit), and the LLVM codebase (many large files).
//
// Everything is seeded and reproducible: the same benchmark name always
// yields byte-identical modules. Generated programs terminate on any input
// (loops are constant-bounded, recursion strictly decreases a clamped
// counter), so they can be executed by the interpreter as well as sized.
//
// The generator deliberately produces the structures the paper's analysis
// cares about: trivial wrappers (inlining shrinks), heavyweight callees
// (inlining bloats), branches on parameters that fold away under constant
// arguments, callees with many callers (group-DCE opportunities), bridges
// and independent components (search-space partitioning), and bounded
// recursion.
package workload

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"optinline/internal/ir"
)

// File is one generated translation unit.
type File struct {
	Name   string
	Module *ir.Module
}

// Benchmark is a named set of files, the granularity of the paper's
// per-benchmark figures.
type Benchmark struct {
	Name  string
	Files []File
}

// TotalEdgesHint returns the approximate number of inlining candidates a
// profile will generate, used for scheduling in the harness.
func (p Profile) TotalEdgesHint() int { return p.TotalEdges }

// Profile describes the call-graph population of one benchmark.
type Profile struct {
	Name       string
	Files      int     // number of non-trivial translation units
	TrivialPct float64 // fraction of additional trivial files (no candidates)
	TotalEdges int     // approximate candidate call sites across all files
	// Shape knobs, all 0..1:
	ConstArgProb float64 // calls passing constant arguments
	HubProb      float64 // calls targeting a shared "hub" callee
	BigBodyProb  float64 // functions with heavyweight straightline bodies
	LoopProb     float64 // functions containing a constant-bounded loop
	RecProb      float64 // functions with bounded self-recursion
	BranchProb   float64 // functions guarding on their first parameter
	MultiRootPct float64 // fraction of extra exported roots
}

// seedFor derives a stable per-file seed.
func seedFor(bench string, file int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", bench, file)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Generate produces the benchmark described by the profile.
func Generate(p Profile) Benchmark {
	b := Benchmark{Name: p.Name}
	edgesPerFile := p.TotalEdges / maxi(p.Files, 1)
	for i := 0; i < p.Files; i++ {
		rng := rand.New(rand.NewSource(seedFor(p.Name, i)))
		// Lognormal-ish spread: most files near the mean, a few much larger.
		target := edgesPerFile/2 + rng.Intn(maxi(edgesPerFile, 1))
		if rng.Intn(8) == 0 {
			target *= 2 + rng.Intn(3)
		}
		if target < 1 {
			target = 1
		}
		name := fmt.Sprintf("%s/file%03d", p.Name, i)
		b.Files = append(b.Files, File{Name: name, Module: genModule(rng, name, target, p)})
	}
	ntrivial := int(float64(p.Files) * p.TrivialPct)
	for i := 0; i < ntrivial; i++ {
		rng := rand.New(rand.NewSource(seedFor(p.Name+"/trivial", i)))
		name := fmt.Sprintf("%s/trivial%03d", p.Name, i)
		b.Files = append(b.Files, File{Name: name, Module: genTrivialModule(rng, name)})
	}
	return b
}

// genModule builds one translation unit with roughly targetEdges candidate
// call sites.
func genModule(rng *rand.Rand, name string, targetEdges int, p Profile) *ir.Module {
	m := ir.NewModule(name)
	m.AddGlobal("state")
	m.AddGlobal("counter")

	// Function count scales with the edge budget; call fan-out fills the gap.
	nfuncs := maxi(3, targetEdges*2/3+2)
	if nfuncs > targetEdges+4 {
		nfuncs = targetEdges + 4
	}
	specs := make([]funcSpec, nfuncs)
	for i := range specs {
		specs[i] = funcSpec{
			name:    fmt.Sprintf("fn%03d", i),
			nparams: 1 + rng.Intn(2),
			big:     rng.Float64() < p.BigBodyProb,
			loop:    rng.Float64() < p.LoopProb,
			rec:     rng.Float64() < p.RecProb,
			branch:  rng.Float64() < p.BranchProb,
		}
		// Pure forwarding wrappers are common in real code and are what
		// -Os inlining erases wholesale (they inline to nothing and die
		// to dead-function elimination).
		if !specs[i].big && rng.Float64() < 0.3 {
			specs[i].wrapper = true
			specs[i].loop, specs[i].rec, specs[i].branch = false, false, false
		}
	}
	// A few hub callees that attract extra callers.
	nhubs := 1 + nfuncs/8
	hubs := make([]int, 0, nhubs)
	for h := 0; h < nhubs; h++ {
		hubs = append(hubs, nfuncs/2+rng.Intn(nfuncs-nfuncs/2))
	}

	// Assign callees: calls always target a strictly higher index, which
	// keeps the static call DAG acyclic (self-recursion aside) and the
	// dynamic call tree finite.
	edges := 0
	for i := 0; i < nfuncs-1 && edges < targetEdges; i++ {
		ncalls := 1 + rng.Intn(3)
		if specs[i].big {
			ncalls = rng.Intn(2)
		}
		if specs[i].wrapper {
			ncalls = 1
		}
		for c := 0; c < ncalls && edges < targetEdges; c++ {
			var callee int
			if rng.Float64() < p.HubProb {
				callee = hubs[rng.Intn(len(hubs))]
			} else {
				// Nearby callee: produces chains and bridges.
				callee = i + 1 + rng.Intn(mini(4, nfuncs-i-1))
			}
			if callee <= i {
				callee = i + 1
			}
			specs[i].callees = append(specs[i].callees, callee)
			edges++
		}
	}

	// Shared straightline snippets: templates of op/constant chains that
	// several functions embed verbatim, modelling copy-pasted code and
	// macro expansions. These are what a post-inlining outliner can
	// extract (see internal/outline).
	var snippets [][]snipOp
	nsnips := 1 + nfuncs/12
	for sn := 0; sn < nsnips; sn++ {
		length := 8 + rng.Intn(5)
		ops := make([]snipOp, length)
		for i := range ops {
			ops[i] = snipOp{
				op:       []ir.BinOp{ir.Add, ir.Mul, ir.Xor, ir.Sub}[rng.Intn(4)],
				c:        int64(1 + rng.Intn(30)),
				useParam: rng.Float64() < 0.7,
			}
		}
		snippets = append(snippets, ops)
	}
	for i := range specs {
		if !specs[i].wrapper && rng.Float64() < 0.35 {
			specs[i].snippet = 1 + rng.Intn(len(snippets))
		}
	}

	// Exported roots: the first function plus a sampling of others. Roots
	// are what keeps code alive; everything else is internal linkage.
	specs[0].exported = true
	for i := 1; i < nfuncs; i++ {
		if rng.Float64() < p.MultiRootPct {
			specs[i].exported = true
		}
	}

	for i := nfuncs - 1; i >= 0; i-- {
		m.AddFunc(genFunction(rng, specs, i, p, snippets))
	}
	genEntry(rng, m, specs)
	m.AssignSites()
	return m
}

type funcSpec struct {
	name     string
	nparams  int
	exported bool
	big      bool
	wrapper  bool // body is a pure forwarding call
	loop     bool
	rec      bool
	branch   bool
	snippet  int // 1-based index of an embedded shared snippet; 0 = none
	callees  []int

	// Linked-corpus extensions (linked.go). Both are inert when unset and
	// consume no rng draws, so every pre-existing profile keeps generating
	// byte-identical modules.
	scratch    bool      // store to the file-local "scratch" global
	extCallees []extCall // calls into other translation units, emitted last
}

// extCall is a call whose callee lives in another translation unit: within
// this module it is an undefined reference that only becomes a candidate
// edge after linking.
type extCall struct {
	name    string
	nparams int
}

// snipOp is one step of a shared straightline snippet: v = v <op> x when
// useParam is set, else v = v <op> const. Mostly parameter-based steps keep
// the shape intact through constant deduplication, as copy-pasted source
// code would be.
type snipOp struct {
	op       ir.BinOp
	c        int64
	useParam bool
}

// genFunction builds the body of specs[i] from the motif knobs.
func genFunction(rng *rand.Rand, specs []funcSpec, i int, p Profile, snippets [][]snipOp) *ir.Function {
	sp := specs[i]
	b := ir.NewFunction(sp.name, sp.nparams, sp.exported)
	x := b.Param(0)
	v := x

	if sp.wrapper && len(sp.callees) > 0 {
		// Pure forwarding: call the callees with the incoming arguments
		// and combine the results. Nothing else.
		for _, ci := range sp.callees {
			callee := specs[ci]
			args := make([]*ir.Value, callee.nparams)
			for a := range args {
				args[a] = x
			}
			r := b.Call(callee.name, args...)
			v = b.Bin(ir.Add, v, r)
		}
		b.Ret(v)
		return b.Fn
	}

	// Foldable guard: `if (p0 == C) return K;` — collapses under constant
	// propagation when the call site passes a constant.
	if sp.branch {
		c := b.Const(int64(rng.Intn(4)))
		cond := b.Bin(ir.Eq, x, c)
		early := b.Block("early", 0)
		rest := b.Block("rest", 0)
		b.CondBr(cond, early, nil, rest, nil)
		b.SetBlock(early)
		k := b.Const(int64(10 + rng.Intn(90)))
		b.Ret(k)
		b.SetBlock(rest)
	}

	// Bounded self-recursion on a clamped counter.
	if sp.rec {
		lim := b.Const(int64(2 + rng.Intn(4)))
		mcl := b.Bin(ir.Mod, x, lim)
		zero := b.Const(0)
		cond := b.Bin(ir.Gt, mcl, zero)
		recB := b.Block("rec", 0)
		cont := b.Block("cont", 1)
		b.CondBr(cond, recB, nil, cont, []*ir.Value{v})
		b.SetBlock(recB)
		one := b.Const(1)
		dec := b.Bin(ir.Sub, mcl, one)
		args := []*ir.Value{dec}
		for a := 1; a < sp.nparams; a++ {
			args = append(args, dec)
		}
		r := b.Call(sp.name, args...)
		acc := b.Bin(ir.Add, r, v)
		b.Br(cont, acc)
		b.SetBlock(cont)
		v = b.Cur.Params[0]
	}

	// Body weight: most functions are small (real code is dominated by
	// accessors and thin wrappers — that is what makes -Os inlining pay),
	// some are heavyweight straightline blocks.
	steps := 1 + rng.Intn(2)
	if rng.Intn(3) == 0 {
		steps += 2 + rng.Intn(3)
	}
	if sp.big {
		steps = 10 + rng.Intn(14)
	}
	for s := 0; s < steps; s++ {
		switch rng.Intn(6) {
		case 0:
			c := b.Const(int64(rng.Intn(64)))
			v = b.Bin(ir.Add, v, c)
		case 1:
			c := b.Const(int64(1 + rng.Intn(7)))
			v = b.Bin(ir.Mul, v, c)
		case 2:
			c := b.Const(int64(1 + rng.Intn(15)))
			v = b.Bin(ir.Xor, v, c)
		case 3:
			v = b.Bin(ir.Add, v, x)
		case 4:
			c := b.Const(int64(1 + rng.Intn(5)))
			v = b.Bin(ir.Shr, v, c)
		case 5:
			if sp.nparams > 1 {
				v = b.Bin(ir.Add, v, b.Param(1))
			} else {
				v = b.Un(ir.Neg, v)
			}
		}
	}

	// Embedded shared snippet (verbatim repeated across functions).
	if sp.snippet > 0 && sp.snippet <= len(snippets) {
		for _, op := range snippets[sp.snippet-1] {
			if op.useParam {
				v = b.Bin(op.op, v, x)
			} else {
				c := b.Const(op.c)
				v = b.Bin(op.op, v, c)
			}
		}
	}

	// Constant-bounded loop (no calls inside: keeps dynamic cost bounded).
	if sp.loop {
		k := b.Const(int64(2 + rng.Intn(5)))
		zero := b.Const(0)
		head := b.Block("head", 2)
		body := b.Block("body", 0)
		exit := b.Block("exit", 0)
		b.Br(head, zero, v)
		b.SetBlock(head)
		iv, acc := head.Params[0], head.Params[1]
		cond := b.Bin(ir.Lt, iv, k)
		b.CondBr(cond, body, nil, exit, nil)
		b.SetBlock(body)
		one := b.Const(1)
		ni := b.Bin(ir.Add, iv, one)
		na := b.Bin(ir.Add, acc, iv)
		b.Br(head, ni, na)
		b.SetBlock(exit)
		v = acc
	}

	// Calls to assigned callees.
	for _, ci := range sp.callees {
		callee := specs[ci]
		args := make([]*ir.Value, callee.nparams)
		for a := range args {
			if rng.Float64() < p.ConstArgProb {
				args[a] = b.Const(int64(rng.Intn(6)))
			} else {
				args[a] = v
			}
		}
		r := b.Call(callee.name, args...)
		v = b.Bin(ir.Add, v, r)
	}

	// Cross-TU calls (linked corpora only): undefined references here,
	// candidate edges after linking. Guarded so non-linked profiles draw no
	// extra randomness.
	for _, ec := range sp.extCallees {
		args := make([]*ir.Value, ec.nparams)
		for a := range args {
			if rng.Float64() < p.ConstArgProb {
				args[a] = b.Const(int64(rng.Intn(6)))
			} else {
				args[a] = v
			}
		}
		r := b.Call(ec.name, args...)
		v = b.Bin(ir.Add, v, r)
	}

	// File-local global traffic (linked corpora only): every TU stores to
	// its own "scratch", forcing the linker's global-rename path.
	if sp.scratch {
		b.StoreG("scratch", v)
	}

	// Occasional observable side effect.
	switch rng.Intn(5) {
	case 0:
		b.Output(v)
	case 1:
		b.StoreG("state", v)
		g := b.LoadG("state")
		v = b.Bin(ir.Add, v, g)
	}
	b.Ret(v)
	return b.Fn
}

// genEntry appends the exported driver that experiments execute.
func genEntry(rng *rand.Rand, m *ir.Module, specs []funcSpec) {
	b := ir.NewFunction("entry", 1, true)
	x := b.Param(0)
	acc := b.Const(0)
	for i, sp := range specs {
		if !sp.exported && i != 0 {
			continue
		}
		args := make([]*ir.Value, sp.nparams)
		for a := range args {
			if rng.Intn(2) == 0 {
				args[a] = b.Const(int64(rng.Intn(5)))
			} else {
				args[a] = x
			}
		}
		r := b.Call(sp.name, args...)
		acc = b.Bin(ir.Add, acc, r)
	}
	b.Output(acc)
	b.Ret(acc)
	m.AddFunc(b.Fn)
}

// genTrivialModule builds a file that needs no inlining decisions: leaf
// functions and calls that leave the module (the paper's 746 trivial files).
func genTrivialModule(rng *rand.Rand, name string) *ir.Module {
	m := ir.NewModule(name)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		b := ir.NewFunction(fmt.Sprintf("leaf%d", i), 1, true)
		v := b.Param(0)
		for s := 0; s < 2+rng.Intn(4); s++ {
			c := b.Const(int64(rng.Intn(32)))
			v = b.Bin(ir.Add, v, c)
		}
		if rng.Intn(2) == 0 {
			r := b.Call("lib_external", v)
			v = b.Bin(ir.Xor, v, r)
		}
		b.Ret(v)
		m.AddFunc(b.Fn)
	}
	m.AssignSites()
	return m
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}
