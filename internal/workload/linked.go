package workload

import (
	"fmt"
	"math/rand"

	"optinline/internal/ir"
)

// LinkedProfile describes a multi-translation-unit corpus meant to be
// linked into one mega-module — the stand-in for the paper's amalgamation
// scenario (§5.2.3), where merging units turns cross-file calls into
// inlining candidates. Units are generated independently (one seeded rng
// per TU, derived from the profile name), so a profile's output is a pure
// function of its fields and immune to TU enumeration order.
//
// Structure per unit i: one exported root tu%03d_main, a few exported
// entry points tu%03d_pub%02d (count is a per-unit hash, computable by
// other units without generating this one), and a population of file-local
// fn%03d functions whose names deliberately collide across units — the
// linker's rename path at scale. Units are grouped into clusters of
// Cluster consecutive units; each unit places ExtCalls calls to pubs of
// higher units in its cluster, so a cluster links into one connected
// call-graph component and a profile with T units yields ~T/Cluster
// independently searchable components. Every unit stores to a file-local
// "scratch" global (see LinkedTUs) while sharing "state"/"counter".
type LinkedProfile struct {
	Name       string
	TUs        int
	EdgesPerTU int // approximate local candidate edges per unit
	Cluster    int // units per cross-TU cluster; <= 1 disables cross-TU calls
	ExtCalls   int // cross-TU calls attempted per unit
	Shape      Profile
}

// linkedShape is the body-shape tuning shared by the linked profiles:
// wrapper/chain-heavy with few hubs, so components stay tree-ish and their
// recursive search spaces grow slowly with size.
func linkedShape() Profile {
	return Profile{
		ConstArgProb: 0.3,
		HubProb:      0.05,
		BigBodyProb:  0.1,
		LoopProb:     0.15,
		RecProb:      0.05,
		BranchProb:   0.3,
	}
}

// LinkedProfiles returns the linked corpus family. linked-s and linked-m
// keep components small enough for the exact search (a component's
// recursive space is exponential-ish in its edge count, sharding
// parallelizes across components but cannot shrink one); linked-x10 and
// linked-x30 are 10× and 30× the largest pre-existing unit (the 600-edge
// SQLite amalgamation) — autotuner scale, where cost is linear in edges.
func LinkedProfiles() []LinkedProfile {
	return []LinkedProfile{
		{Name: "linked-s", TUs: 6, EdgesPerTU: 8, Cluster: 2, ExtCalls: 3, Shape: linkedShape()},
		{Name: "linked-m", TUs: 16, EdgesPerTU: 10, Cluster: 2, ExtCalls: 3, Shape: linkedShape()},
		{Name: "linked-x10", TUs: 40, EdgesPerTU: 160, Cluster: 4, ExtCalls: 6, Shape: linkedShape()},
		{Name: "linked-x30", TUs: 60, EdgesPerTU: 310, Cluster: 5, ExtCalls: 8, Shape: linkedShape()},
	}
}

// LinkedProfileByName returns the named linked profile.
func LinkedProfileByName(name string) (LinkedProfile, bool) {
	for _, lp := range LinkedProfiles() {
		if lp.Name == name {
			return lp, true
		}
	}
	return LinkedProfile{}, false
}

// LinkedScratchGlobal is the global every generated unit treats as
// file-local ("static"): the linker renames each unit's copy apart.
const LinkedScratchGlobal = "scratch"

// GenerateLinked produces the profile's translation units.
func GenerateLinked(lp LinkedProfile) Benchmark {
	b := Benchmark{Name: lp.Name}
	for i := 0; i < lp.TUs; i++ {
		name := fmt.Sprintf("%s/tu%03d", lp.Name, i)
		b.Files = append(b.Files, File{Name: name, Module: genLinkedTU(lp, i)})
	}
	return b
}

// linkedPubs returns unit i's exported-entry-point count: a pure hash of
// (profile, i), so any unit can name another's pubs without generating it.
func linkedPubs(profile string, i int) int {
	return 1 + int(seedFor(profile+"/pubs", i)%3)
}

func linkedPubName(i, p int) string { return fmt.Sprintf("tu%03d_pub%02d", i, p) }
func linkedRootName(i int) string   { return fmt.Sprintf("tu%03d_main", i) }
func linkedTUName(lp LinkedProfile, i int) string {
	return fmt.Sprintf("%s/tu%03d", lp.Name, i)
}

// genLinkedTU builds unit i. Spec layout: index 0 is the root, 1..npubs the
// exported pubs, the rest file-local functions; local calls target a
// strictly higher index (as in genModule), and cross-TU calls target pubs
// of strictly higher cluster members, so the linked call graph stays
// acyclic across units and every generated program still terminates.
func genLinkedTU(lp LinkedProfile, i int) *ir.Module {
	p := lp.Shape
	rng := rand.New(rand.NewSource(seedFor(lp.Name, i)))
	m := ir.NewModule(linkedTUName(lp, i))
	m.AddGlobal("state")
	m.AddGlobal("counter")
	m.AddGlobal(LinkedScratchGlobal)

	target := maxi(lp.EdgesPerTU, 1)
	npubs := linkedPubs(lp.Name, i)
	nlocal := maxi(3, target*2/3+2)
	if nlocal > target+4 {
		nlocal = target + 4
	}
	n := 1 + npubs + nlocal
	specs := make([]funcSpec, n)
	specs[0] = funcSpec{name: linkedRootName(i), nparams: 1, exported: true}
	// The first pub is a full entry point touching the unit's scratch
	// global; later pubs are thin exported wrappers — the API shims whose
	// cross-TU calls only become profitable to inline after linking.
	for pu := 0; pu < npubs; pu++ {
		specs[1+pu] = funcSpec{
			name:     linkedPubName(i, pu),
			nparams:  1,
			exported: true,
		}
		if pu == 0 {
			specs[1+pu].scratch = true
		} else {
			specs[1+pu].wrapper = true
		}
	}
	for k := 0; k < nlocal; k++ {
		idx := 1 + npubs + k
		specs[idx] = funcSpec{
			name:    fmt.Sprintf("fn%03d", k),
			nparams: 1 + rng.Intn(2),
			big:     rng.Float64() < p.BigBodyProb,
			loop:    rng.Float64() < p.LoopProb,
			rec:     rng.Float64() < p.RecProb,
			branch:  rng.Float64() < p.BranchProb,
		}
		if !specs[idx].big && rng.Float64() < 0.3 {
			specs[idx].wrapper = true
			specs[idx].loop, specs[idx].rec, specs[idx].branch = false, false, false
		}
	}

	// Hubs among the locals, as in genModule.
	nhubs := 1 + n/8
	hubs := make([]int, 0, nhubs)
	for h := 0; h < nhubs; h++ {
		hubs = append(hubs, n/2+rng.Intn(n-n/2))
	}

	// The root always calls every pub (local candidate edges into the
	// unit's API), then random local edges fill the budget.
	for pu := 0; pu < npubs; pu++ {
		specs[0].callees = append(specs[0].callees, 1+pu)
	}
	edges := npubs
	for fi := 0; fi < n-1 && edges < target; fi++ {
		ncalls := 1 + rng.Intn(3)
		if specs[fi].big {
			ncalls = rng.Intn(2)
		}
		if specs[fi].wrapper {
			ncalls = 1
		}
		for c := 0; c < ncalls && edges < target; c++ {
			var callee int
			if rng.Float64() < p.HubProb {
				callee = hubs[rng.Intn(len(hubs))]
			} else {
				callee = fi + 1 + rng.Intn(mini(4, n-fi-1))
			}
			if callee <= fi {
				callee = fi + 1
			}
			specs[fi].callees = append(specs[fi].callees, callee)
			edges++
		}
	}

	// Shared straightline snippets, as in genModule.
	var snippets [][]snipOp
	nsnips := 1 + n/12
	for sn := 0; sn < nsnips; sn++ {
		length := 8 + rng.Intn(5)
		ops := make([]snipOp, length)
		for oi := range ops {
			ops[oi] = snipOp{
				op:       []ir.BinOp{ir.Add, ir.Mul, ir.Xor, ir.Sub}[rng.Intn(4)],
				c:        int64(1 + rng.Intn(30)),
				useParam: rng.Float64() < 0.7,
			}
		}
		snippets = append(snippets, ops)
	}
	for si := range specs {
		if !specs[si].wrapper && rng.Float64() < 0.35 {
			specs[si].snippet = 1 + rng.Intn(len(snippets))
		}
	}

	// Cross-TU calls: pubs of strictly higher units in this unit's cluster.
	// Attached to non-wrapper functions (wrappers return before the
	// emission point); the last cluster member places none.
	if lp.Cluster > 1 && lp.ExtCalls > 0 {
		lo := (i / lp.Cluster) * lp.Cluster
		hi := mini(lo+lp.Cluster, lp.TUs)
		if i+1 < hi {
			for a := 0; a < lp.ExtCalls; a++ {
				j := i + 1 + rng.Intn(hi-i-1)
				pub := rng.Intn(linkedPubs(lp.Name, j))
				si := rng.Intn(n)
				for specs[si].wrapper {
					si = (si + 1) % n
				}
				specs[si].extCallees = append(specs[si].extCallees, extCall{
					name:    linkedPubName(j, pub),
					nparams: 1,
				})
			}
		}
	}

	for idx := n - 1; idx >= 0; idx-- {
		m.AddFunc(genFunction(rng, specs, idx, p, snippets))
	}
	m.AssignSites()
	return m
}
