package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genGraph decodes a byte string into a small multigraph.
func genGraph(data []byte) *Multigraph {
	n := 2 + int(uint(len(data)))%6
	g := &Multigraph{N: n}
	for i := 0; i+1 < len(data); i += 2 {
		g.Edges = append(g.Edges, Edge{
			ID: i/2 + 1,
			U:  int(data[i]) % n,
			V:  int(data[i+1]) % n,
		})
	}
	return g
}

// Property: contracting an edge removes exactly that edge and never splits
// an edge-bearing component (the absorbed endpoint becomes isolated by
// design, so raw component counts may grow by one singleton).
func TestContractPreservesConnectivityProperty(t *testing.T) {
	edgeComponents := func(g *Multigraph) int {
		comps := g.ConnectedComponents()
		inComp := make([]int, g.N)
		for ci, nodes := range comps {
			for _, n := range nodes {
				inComp[n] = ci
			}
		}
		withEdges := map[int]bool{}
		for _, e := range g.Edges {
			withEdges[inComp[e.U]] = true
		}
		return len(withEdges)
	}
	f := func(data []byte) bool {
		g := genGraph(data)
		if len(g.Edges) == 0 {
			return true
		}
		before := edgeComponents(g)
		e := g.Edges[int(uint(len(data)))%len(g.Edges)]
		ng := g.ContractEdge(e.ID)
		if len(ng.Edges) != len(g.Edges)-1 {
			return false
		}
		return edgeComponents(ng) <= before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: removing a bridge increases the component count by exactly one;
// removing a non-bridge keeps it unchanged.
func TestBridgeDefinitionProperty(t *testing.T) {
	f := func(data []byte) bool {
		g := genGraph(data)
		bridges := map[int]bool{}
		for _, b := range g.Bridges() {
			bridges[b.ID] = true
		}
		base := len(g.ConnectedComponents())
		for _, e := range g.Edges {
			after := len(g.RemoveEdge(e.ID).ConnectedComponents())
			if bridges[e.ID] {
				if after != base+1 {
					return false
				}
			} else if after != base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: eccentricities are symmetric-consistent: the maximum
// eccentricity (diameter endpoint) is achieved by at least two nodes.
func TestEccentricityDiameterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		g := &Multigraph{N: n}
		for i := 0; i < rng.Intn(2*n); i++ {
			g.Edges = append(g.Edges, Edge{ID: i + 1, U: rng.Intn(n), V: rng.Intn(n)})
		}
		ecc := g.Eccentricities()
		max, count := 0, 0
		for _, e := range ecc {
			if e > max {
				max, count = e, 1
			} else if e == max {
				count++
			}
		}
		if max > 0 && count < 2 {
			t.Fatalf("diameter %d achieved by %d nodes: %v (edges %v)", max, count, ecc, g.Edges)
		}
	}
}

// Property: sum of component sizes equals N.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(data []byte) bool {
		g := genGraph(data)
		total := 0
		for _, c := range g.ConnectedComponents() {
			total += len(c)
		}
		return total == g.N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
