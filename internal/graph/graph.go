// Package graph provides the undirected multigraph algorithms the inlining
// search space formulation needs: connected components, bridges, and vertex
// eccentricity. Call graphs are directed, but connectivity w.r.t. inlining
// is undirected (inlining A→B couples A and B regardless of direction), so
// the search operates on the undirected view.
package graph

import "sort"

// Edge is an undirected edge with a stable identity. Parallel edges and
// self-loops are permitted; identity distinguishes parallel edges.
type Edge struct {
	ID   int
	U, V int
}

// Multigraph is an undirected multigraph over nodes 0..N-1.
type Multigraph struct {
	N     int
	Edges []Edge
}

// half is one direction of an undirected edge in the adjacency structure.
type half struct {
	to int
	id int
}

func (g *Multigraph) adjacency() [][]half {
	adj := make([][]half, g.N)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], half{to: e.V, id: e.ID})
		if e.U != e.V {
			adj[e.V] = append(adj[e.V], half{to: e.U, id: e.ID})
		}
	}
	return adj
}

// ConnectedComponents returns the node sets of the connected components,
// ordered by smallest contained node. Isolated nodes form singleton
// components.
func (g *Multigraph) ConnectedComponents() [][]int {
	adj := g.adjacency()
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for start := 0; start < g.N; start++ {
		if comp[start] != -1 {
			continue
		}
		id := len(comps)
		var nodes []int
		stack := []int{start}
		comp[start] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nodes = append(nodes, u)
			for _, h := range adj[u] {
				if comp[h.to] == -1 {
					comp[h.to] = id
					stack = append(stack, h.to)
				}
			}
		}
		comps = append(comps, nodes)
	}
	return comps
}

// Bridges returns the bridge edges of the multigraph: edges whose deletion
// increases the number of connected components. Self-loops and members of
// parallel-edge bundles are never bridges. The implementation is an
// iterative Tarjan low-link DFS that tracks edge identities, so parallel
// edges are handled correctly.
func (g *Multigraph) Bridges() []Edge {
	adj := g.adjacency()
	disc := make([]int, g.N)
	low := make([]int, g.N)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var bridges []Edge
	edgeByID := make(map[int]Edge, len(g.Edges))
	for _, e := range g.Edges {
		edgeByID[e.ID] = e
	}

	type frame struct {
		node   int
		viaID  int // edge used to enter node; -1 at roots
		nextIx int // next adjacency index to explore
	}
	for root := 0; root < g.N; root++ {
		if disc[root] != -1 {
			continue
		}
		stack := []frame{{node: root, viaID: -1}}
		disc[root], low[root] = timer, timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			if f.nextIx < len(adj[u]) {
				h := adj[u][f.nextIx]
				f.nextIx++
				if h.id == f.viaID {
					continue // do not return along the entering edge
				}
				if h.to == u {
					continue // self-loop contributes nothing
				}
				if disc[h.to] == -1 {
					disc[h.to], low[h.to] = timer, timer
					timer++
					stack = append(stack, frame{node: h.to, viaID: h.id})
				} else if disc[h.to] < low[u] {
					low[u] = disc[h.to]
				}
				continue
			}
			// Done with u: propagate low-link to parent; detect bridge.
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].node
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					bridges = append(bridges, edgeByID[f.viaID])
				}
			}
		}
	}
	return bridges
}

// Eccentricities returns, for every node, its eccentricity within its own
// connected component: the maximum BFS distance to any reachable node.
func (g *Multigraph) Eccentricities() []int {
	adj := g.adjacency()
	ecc := make([]int, g.N)
	dist := make([]int, g.N)
	for s := 0; s < g.N; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		max := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, h := range adj[u] {
				if dist[h.to] == -1 {
					dist[h.to] = dist[u] + 1
					if dist[h.to] > max {
						max = dist[h.to]
					}
					queue = append(queue, h.to)
				}
			}
		}
		ecc[s] = max
	}
	return ecc
}

// RemoveEdge returns a copy of the graph without the identified edge.
func (g *Multigraph) RemoveEdge(id int) *Multigraph {
	ng := &Multigraph{N: g.N, Edges: make([]Edge, 0, len(g.Edges)-1)}
	for _, e := range g.Edges {
		if e.ID != id {
			ng.Edges = append(ng.Edges, e)
		}
	}
	return ng
}

// ContractEdge returns a copy of the graph with the identified edge
// contracted: its endpoints are merged (the contracted edge disappears;
// other edges between the endpoints become self-loops). Node count is
// unchanged; the absorbed endpoint keeps no incident edges. This models
// inlining an edge in the search-space call-graph (Fig. 2(c)).
func (g *Multigraph) ContractEdge(id int) *Multigraph {
	var target Edge
	found := false
	for _, e := range g.Edges {
		if e.ID == id {
			target, found = e, true
			break
		}
	}
	if !found {
		return &Multigraph{N: g.N, Edges: append([]Edge(nil), g.Edges...)}
	}
	keep, drop := target.U, target.V
	if keep > drop {
		keep, drop = drop, keep
	}
	ng := &Multigraph{N: g.N, Edges: make([]Edge, 0, len(g.Edges)-1)}
	for _, e := range g.Edges {
		if e.ID == id {
			continue
		}
		u, v := e.U, e.V
		if u == drop {
			u = keep
		}
		if v == drop {
			v = keep
		}
		ng.Edges = append(ng.Edges, Edge{ID: e.ID, U: u, V: v})
	}
	return ng
}

// Degrees returns the undirected degree of every node (self-loops count
// twice, the usual convention).
func (g *Multigraph) Degrees() []int {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}

// EdgeIDs returns the identities of every edge, ascending.
func (g *Multigraph) EdgeIDs() []int {
	ids := make([]int, 0, len(g.Edges))
	for _, e := range g.Edges {
		ids = append(ids, e.ID)
	}
	sort.Ints(ids)
	return ids
}

// EdgeNodes returns the nodes with at least one incident edge, ascending.
func (g *Multigraph) EdgeNodes() []int {
	seen := make(map[int]bool, 2*len(g.Edges))
	for _, e := range g.Edges {
		seen[e.U] = true
		seen[e.V] = true
	}
	nodes := make([]int, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	return nodes
}
