package graph

import (
	"math/rand"
	"sort"
	"testing"
)

func edges(pairs ...[2]int) []Edge {
	es := make([]Edge, len(pairs))
	for i, p := range pairs {
		es[i] = Edge{ID: i + 1, U: p[0], V: p[1]}
	}
	return es
}

func TestConnectedComponents(t *testing.T) {
	// {0,1,2} via path, {3,4}, {5} isolated.
	g := &Multigraph{N: 6, Edges: edges([2]int{0, 1}, [2]int{1, 2}, [2]int{3, 4})}
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1]), len(comps[2])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 3 {
		t.Fatalf("component sizes %v", sizes)
	}
}

func TestBridgesPath(t *testing.T) {
	// A path: every edge is a bridge.
	g := &Multigraph{N: 4, Edges: edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})}
	if got := len(g.Bridges()); got != 3 {
		t.Fatalf("path should have 3 bridges, got %d", got)
	}
}

func TestBridgesCycle(t *testing.T) {
	g := &Multigraph{N: 3, Edges: edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})}
	if got := len(g.Bridges()); got != 0 {
		t.Fatalf("cycle should have 0 bridges, got %d", got)
	}
}

func TestBridgesParallelEdges(t *testing.T) {
	// Two parallel edges between 0 and 1: neither is a bridge.
	g := &Multigraph{N: 2, Edges: edges([2]int{0, 1}, [2]int{0, 1})}
	if got := len(g.Bridges()); got != 0 {
		t.Fatalf("parallel edges are not bridges, got %d", got)
	}
}

func TestBridgesSelfLoop(t *testing.T) {
	g := &Multigraph{N: 2, Edges: edges([2]int{0, 0}, [2]int{0, 1})}
	br := g.Bridges()
	if len(br) != 1 || br[0].U == br[0].V {
		t.Fatalf("only the 0-1 edge is a bridge, got %v", br)
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one edge: exactly that edge is a bridge.
	g := &Multigraph{N: 6, Edges: edges(
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0},
		[2]int{3, 4}, [2]int{4, 5}, [2]int{5, 3},
		[2]int{2, 3},
	)}
	br := g.Bridges()
	if len(br) != 1 || br[0].ID != 7 {
		t.Fatalf("want bridge id 7, got %v", br)
	}
}

// naiveBridges implements the definition directly: remove each edge and see
// whether the component count grows.
func naiveBridges(g *Multigraph) map[int]bool {
	base := len(g.ConnectedComponents())
	out := make(map[int]bool)
	for _, e := range g.Edges {
		if len(g.RemoveEdge(e.ID).ConnectedComponents()) > base {
			out[e.ID] = true
		}
	}
	return out
}

func TestBridgesMatchNaiveOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		m := rng.Intn(2 * n)
		g := &Multigraph{N: n}
		for i := 0; i < m; i++ {
			g.Edges = append(g.Edges, Edge{ID: i + 1, U: rng.Intn(n), V: rng.Intn(n)})
		}
		want := naiveBridges(g)
		got := make(map[int]bool)
		for _, e := range g.Bridges() {
			got[e.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: edges %v: fast=%v naive=%v", trial, g.Edges, got, want)
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing bridge %d (edges %v)", trial, id, g.Edges)
			}
		}
	}
}

func TestEccentricities(t *testing.T) {
	// Path 0-1-2-3: ecc = 3,2,2,3.
	g := &Multigraph{N: 4, Edges: edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})}
	ecc := g.Eccentricities()
	want := []int{3, 2, 2, 3}
	for i := range want {
		if ecc[i] != want[i] {
			t.Fatalf("ecc=%v want %v", ecc, want)
		}
	}
}

func TestEccentricityPerComponent(t *testing.T) {
	// Disconnected: eccentricity only counts the own component.
	g := &Multigraph{N: 4, Edges: edges([2]int{0, 1}, [2]int{2, 3})}
	ecc := g.Eccentricities()
	for i, e := range ecc {
		if e != 1 {
			t.Fatalf("node %d: ecc=%d want 1", i, e)
		}
	}
}

func TestRemoveEdge(t *testing.T) {
	g := &Multigraph{N: 3, Edges: edges([2]int{0, 1}, [2]int{1, 2})}
	ng := g.RemoveEdge(1)
	if len(ng.Edges) != 1 || ng.Edges[0].ID != 2 {
		t.Fatalf("RemoveEdge: %v", ng.Edges)
	}
	if len(g.Edges) != 2 {
		t.Fatal("RemoveEdge mutated the original")
	}
}

func TestContractEdge(t *testing.T) {
	// Contract 0-1 in a triangle: remaining edges 1-2 and 2-0 both connect
	// the merged node with 2.
	g := &Multigraph{N: 3, Edges: edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})}
	ng := g.ContractEdge(1)
	if len(ng.Edges) != 2 {
		t.Fatalf("contract: %v", ng.Edges)
	}
	for _, e := range ng.Edges {
		if !(e.U == 0 && e.V == 2 || e.U == 2 && e.V == 0) {
			t.Fatalf("edge %v should connect 0 and 2", e)
		}
	}
	// Contracting a parallel pair produces a self-loop.
	g2 := &Multigraph{N: 2, Edges: edges([2]int{0, 1}, [2]int{0, 1})}
	ng2 := g2.ContractEdge(1)
	if len(ng2.Edges) != 1 || ng2.Edges[0].U != ng2.Edges[0].V {
		t.Fatalf("expected self-loop, got %v", ng2.Edges)
	}
}

func TestContractMissingEdgeIsCopy(t *testing.T) {
	g := &Multigraph{N: 2, Edges: edges([2]int{0, 1})}
	ng := g.ContractEdge(99)
	if len(ng.Edges) != 1 {
		t.Fatal("missing-edge contraction should copy")
	}
}

func TestDegrees(t *testing.T) {
	g := &Multigraph{N: 3, Edges: edges([2]int{0, 1}, [2]int{0, 2}, [2]int{0, 0})}
	deg := g.Degrees()
	if deg[0] != 4 || deg[1] != 1 || deg[2] != 1 {
		t.Fatalf("degrees %v", deg)
	}
}
