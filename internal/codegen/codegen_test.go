package codegen

import (
	"strings"
	"testing"

	"optinline/internal/ir"
)

const src = `
global @g

func @leaf(%x) {
entry:
  %big = const 1000000
  %r = add %x, %big
  ret %r
}

export func @main(%n) {
entry:
  %a = call @leaf(%n) !site 1
  %b = div %a, %n
  storeg @g, %b
  output %b
  ret %b
}
`

func mod(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse("cg", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestImmBytes(t *testing.T) {
	cases := []struct {
		c int64
		w int
	}{
		{0, 1}, {127, 1}, {-128, 1}, {128, 2}, {-32768, 2},
		{32768, 4}, {1 << 30, 4}, {1 << 40, 8}, {-(1 << 40), 8},
	}
	for _, c := range cases {
		if got := immBytes(c.c); got != c.w {
			t.Errorf("immBytes(%d)=%d want %d", c.c, got, c.w)
		}
	}
}

func TestModuleSizeIsAdditive(t *testing.T) {
	m := mod(t)
	sum := 0
	for _, f := range m.Funcs {
		sum += FunctionSize(f, TargetX86)
	}
	if got := ModuleSize(m, TargetX86); got != sum {
		t.Fatalf("ModuleSize=%d, sum of functions=%d", got, sum)
	}
}

func TestSizeDeterministic(t *testing.T) {
	a, b := mod(t), mod(t)
	if ModuleSize(a, TargetX86) != ModuleSize(b, TargetX86) {
		t.Fatal("size not deterministic")
	}
	if ModuleSize(a, TargetWASM) != ModuleSize(b, TargetWASM) {
		t.Fatal("wasm size not deterministic")
	}
}

func TestRemovingInstructionsShrinks(t *testing.T) {
	m := mod(t)
	before := ModuleSize(m, TargetX86)
	f := m.Func("leaf")
	// Drop the big-constant add (keep the ret but retarget it).
	f.Blocks[0].Instrs[2].Args[0] = f.Entry().Params[0]
	f.Blocks[0].Instrs = f.Blocks[0].Instrs[2:]
	if after := ModuleSize(m, TargetX86); after >= before {
		t.Fatalf("size did not shrink: %d -> %d", before, after)
	}
}

func TestConstantWidthMatters(t *testing.T) {
	small := &ir.Instr{Op: ir.OpConst, Const: 1}
	big := &ir.Instr{Op: ir.OpConst, Const: 1 << 40}
	if InstrSize(small, TargetX86) >= InstrSize(big, TargetX86) {
		t.Fatal("wide constants should encode longer")
	}
}

func TestCallCostsScaleWithArgs(t *testing.T) {
	c0 := &ir.Instr{Op: ir.OpCall, Callee: "f"}
	v := &ir.Value{}
	c2 := &ir.Instr{Op: ir.OpCall, Callee: "f", Args: []*ir.Value{v, v}}
	if InstrSize(c2, TargetX86) <= InstrSize(c0, TargetX86) {
		t.Fatal("call args should cost bytes")
	}
}

func TestTargetsDiffer(t *testing.T) {
	m := mod(t)
	x86 := ModuleSize(m, TargetX86)
	wasm := ModuleSize(m, TargetWASM)
	if x86 == wasm {
		t.Fatalf("targets should cost differently: %d vs %d", x86, wasm)
	}
	// The WASM model makes calls cheap relative to X86.
	call := &ir.Instr{Op: ir.OpCall, Callee: "f", Args: []*ir.Value{{}}}
	if InstrSize(call, TargetWASM) >= InstrSize(call, TargetX86) {
		t.Fatal("wasm calls should be cheaper than x86 calls")
	}
}

func TestAlignmentX86(t *testing.T) {
	m := mod(t)
	for _, f := range m.Funcs {
		if FunctionSize(f, TargetX86)%4 != 0 {
			t.Fatalf("function %s size not 4-aligned", f.Name)
		}
	}
}

func TestSizeOfLookup(t *testing.T) {
	m := mod(t)
	lookup := SizeOf(m, TargetX86)
	if lookup("leaf") != FunctionSize(m.Func("leaf"), TargetX86) {
		t.Fatal("lookup mismatch")
	}
	if lookup("nonexistent") <= 0 {
		t.Fatal("external functions need a nominal size")
	}
}

func TestListing(t *testing.T) {
	m := mod(t)
	l := Listing(m, TargetX86)
	for _, want := range []string{"main:", "leaf:", "call", "ret", ".text", "(export)"} {
		if !strings.Contains(l, want) {
			t.Fatalf("listing missing %q:\n%s", want, l)
		}
	}
}

func TestBranchArgsCostBytes(t *testing.T) {
	v := &ir.Value{}
	dest := &ir.Block{Name: "b"}
	plain := &ir.Instr{Op: ir.OpBr, Succs: []ir.Succ{{Dest: dest}}}
	withArgs := &ir.Instr{Op: ir.OpBr, Succs: []ir.Succ{{Dest: dest, Args: []*ir.Value{v, v}}}}
	if InstrSize(withArgs, TargetX86) <= InstrSize(plain, TargetX86) {
		t.Fatal("branch args should cost bytes")
	}
}
