// Package codegen lowers IR to a byte-encoded toy instruction set and
// measures code size. It plays the role of the paper's ".text section size"
// metric: deterministic, workload-independent, additive per function, and
// sensitive to exactly the effects inlining has — call sequences cost bytes,
// constants encode with variable length, and removed instructions shrink
// the section.
//
// Two targets are provided. TargetX86 models a CISC encoding where call
// sequences are comparatively expensive, so inlining small callees often
// pays. TargetWASM models a compact stack-machine encoding where calls are
// cheap and code duplication is comparatively expensive, reproducing the
// paper's SQLite/WASM observation that LLVM's inlining heuristic inflates
// WASM binaries.
package codegen

import (
	"fmt"

	"optinline/internal/ir"
)

// Target selects an encoding cost model.
type Target uint8

// Supported targets.
const (
	TargetX86 Target = iota
	TargetWASM
)

func (t Target) String() string {
	if t == TargetWASM {
		return "wasm"
	}
	return "x86"
}

// costModel holds per-target encoding byte costs.
type costModel struct {
	prologue int // function entry sequence
	perParam int // per incoming parameter (frame moves)
	epilogue int // charged once per ret
	binOp    int
	divOp    int // div/mod encode longer
	unOp     int
	callBase int // call opcode + target
	callArg  int // per argument move
	globalOp int // loadg/storeg
	outputOp int // runtime call sequence
	br       int
	condBr   int
	ret      int
	succArg  int // per branch argument (register shuffle / local set)
	constOp  int // opcode part of a constant load; immediate is extra
	align    int // function size is rounded up to this many bytes
}

var models = map[Target]costModel{
	TargetX86: {
		// Call sequences are expensive (argument moves, the call itself,
		// result move) and functions carry frame overhead — the economics
		// that make -Os inlining profitable on CISC targets.
		prologue: 6, perParam: 2, epilogue: 2,
		binOp: 3, divOp: 6, unOp: 2,
		callBase: 8, callArg: 3,
		globalOp: 6, outputOp: 8,
		br: 2, condBr: 5, ret: 1, succArg: 2,
		constOp: 2, align: 4,
	},
	TargetWASM: {
		prologue: 2, perParam: 1, epilogue: 0,
		binOp: 4, divOp: 5, unOp: 3,
		callBase: 3, callArg: 1,
		globalOp: 4, outputOp: 5,
		br: 3, condBr: 4, ret: 1, succArg: 3,
		constOp: 1, align: 1,
	},
}

// immBytes returns the variable-length encoding size of an immediate.
func immBytes(c int64) int {
	switch {
	case c >= -128 && c < 128:
		return 1
	case c >= -32768 && c < 32768:
		return 2
	case c >= -(1<<31) && c < 1<<31:
		return 4
	default:
		return 8
	}
}

// InstrSize returns the encoded size in bytes of a single instruction.
func InstrSize(in *ir.Instr, t Target) int {
	m := models[t]
	switch in.Op {
	case ir.OpConst:
		return m.constOp + immBytes(in.Const)
	case ir.OpBin:
		if in.BinOp == ir.Div || in.BinOp == ir.Mod {
			return m.divOp
		}
		return m.binOp
	case ir.OpUn:
		return m.unOp
	case ir.OpCall:
		return m.callBase + m.callArg*len(in.Args)
	case ir.OpLoadG, ir.OpStoreG:
		return m.globalOp
	case ir.OpOutput:
		return m.outputOp
	case ir.OpBr:
		return m.br + m.succArg*len(in.Succs[0].Args)
	case ir.OpCondBr:
		return m.condBr + m.succArg*(len(in.Succs[0].Args)+len(in.Succs[1].Args))
	case ir.OpRet:
		return m.ret + m.epilogue
	}
	return 0
}

// FunctionSize returns the encoded size in bytes of one function.
func FunctionSize(f *ir.Function, t Target) int {
	m := models[t]
	size := m.prologue + m.perParam*f.NumParams()
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			size += InstrSize(in, t)
		}
	}
	if m.align > 1 {
		if rem := size % m.align; rem != 0 {
			size += m.align - rem
		}
	}
	return size
}

// ModuleSize returns the total .text size of the module: the sum of its
// function sizes. Additivity per function is a deliberate property — it is
// what makes the paper's independent-component argument exact here.
func ModuleSize(m *ir.Module, t Target) int {
	size := 0
	for _, f := range m.Funcs {
		size += FunctionSize(f, t)
	}
	return size
}

// SizeOf returns a function-size lookup for the interpreter's i-cache model.
func SizeOf(m *ir.Module, t Target) func(name string) int {
	sizes := make(map[string]int, len(m.Funcs))
	for _, f := range m.Funcs {
		sizes[f.Name] = FunctionSize(f, t)
	}
	return func(name string) int {
		if s, ok := sizes[name]; ok {
			return s
		}
		return 64 // nominal size for external functions
	}
}

// Listing renders a pseudo-assembly listing with per-instruction and
// per-function byte sizes; used by cmd/mincc -S.
func Listing(m *ir.Module, t Target) string {
	out := fmt.Sprintf("; target %s, .text %d bytes\n", t, ModuleSize(m, t))
	for _, f := range m.Funcs {
		out += fmt.Sprintf("\n%s:  ; %d bytes%s\n", f.Name, FunctionSize(f, t), exportTag(f))
		for _, b := range f.Blocks {
			out += fmt.Sprintf(".%s:\n", b.Name)
			for _, in := range b.Instrs {
				out += fmt.Sprintf("  %-28s ; %d\n", asmText(in), InstrSize(in, t))
			}
		}
	}
	return out
}

func exportTag(f *ir.Function) string {
	if f.Exported {
		return " (export)"
	}
	return ""
}

func asmText(in *ir.Instr) string {
	switch in.Op {
	case ir.OpConst:
		return fmt.Sprintf("mov   %s, #%d", in.Result, in.Const)
	case ir.OpBin:
		return fmt.Sprintf("%-5s %s, %s, %s", in.BinOp, in.Result, in.Args[0], in.Args[1])
	case ir.OpUn:
		return fmt.Sprintf("%-5s %s, %s", in.UnOp, in.Result, in.Args[0])
	case ir.OpCall:
		return fmt.Sprintf("call  %s = @%s/%d", in.Result, in.Callee, len(in.Args))
	case ir.OpLoadG:
		return fmt.Sprintf("ldg   %s, @%s", in.Result, in.Global)
	case ir.OpStoreG:
		return fmt.Sprintf("stg   @%s, %s", in.Global, in.Args[0])
	case ir.OpOutput:
		return fmt.Sprintf("out   %s", in.Args[0])
	case ir.OpBr:
		return fmt.Sprintf("jmp   .%s", in.Succs[0].Dest.Name)
	case ir.OpCondBr:
		return fmt.Sprintf("jnz   %s, .%s, .%s", in.Args[0], in.Succs[0].Dest.Name, in.Succs[1].Dest.Name)
	case ir.OpRet:
		return fmt.Sprintf("ret   %s", in.Args[0])
	}
	return "<invalid>"
}
