package link

import (
	"fmt"
	"strings"
)

// EditOp is one step of a -relink edit script.
type EditOp struct {
	Verb string // "patch", "search", or "tune"
	TU   string // patch only: name of the unit to replace
	Path string // patch only: file holding the unit's new contents
}

// ParseEditScript parses the textual format the CLIs' -relink flag
// replays, one operation per line:
//
//	# comment (blank lines are skipped too)
//	patch <tuName> <path>
//	search
//	tune
//
// patch swaps one unit's contents; search/tune run a query over the
// current unit set. Which query verbs are meaningful depends on the CLI
// (inlinesearch and mincc replay search steps, inlinetune replays tune
// steps); parsing accepts both so one script can describe a whole edit
// session.
func ParseEditScript(data []byte) ([]EditOp, error) {
	var ops []EditOp
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "patch":
			if len(fields) != 3 {
				return nil, fmt.Errorf("edit script line %d: want \"patch <tuName> <path>\", got %q", ln+1, line)
			}
			ops = append(ops, EditOp{Verb: "patch", TU: fields[1], Path: fields[2]})
		case "search", "tune":
			if len(fields) != 1 {
				return nil, fmt.Errorf("edit script line %d: %q takes no arguments", ln+1, fields[0])
			}
			ops = append(ops, EditOp{Verb: fields[0]})
		default:
			return nil, fmt.Errorf("edit script line %d: unknown verb %q (want patch, search, or tune)", ln+1, fields[0])
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("edit script is empty")
	}
	return ops, nil
}
