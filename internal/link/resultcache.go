package link

import (
	"sync"
	"sync/atomic"
)

// ComponentCache is the content-keyed store behind incremental re-link: it
// maps 128-bit component content keys (key.go) to solved per-component
// results — optimal configurations, sizes, tuning traces, residual sizes —
// so a Session re-solves only components whose content actually changed and
// replays the rest.
//
// Concurrency follows FnCache's single-flight discipline: the first caller
// to miss claims the key and computes; concurrent callers for the same key
// block on the claim and receive the fulfilled value. A claim that fails
// (error or panic) is withdrawn — the entry is removed and waiters retry,
// so one poisoned computation never wedges the key. Values are immutable
// after fulfillment; replayers must not mutate what they receive.
type ComponentCache struct {
	mu      sync.Mutex
	entries map[ResultKey]*ccEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type ccEntry struct {
	done chan struct{}
	val  any
	ok   bool // false after withdrawal: waiters retry the key
}

// NewComponentCache returns an empty cache.
func NewComponentCache() *ComponentCache {
	return &ComponentCache{entries: make(map[ResultKey]*ccEntry)}
}

// defaultComponentCache backs CLI sessions (SessionOptions.Results nil), so
// every -relink replay in one process shares solved components.
var defaultComponentCache = NewComponentCache()

// ComponentCacheStats is a counter snapshot.
type ComponentCacheStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// Stats snapshots the counters. Entries counts fulfilled values only.
func (cc *ComponentCache) Stats() ComponentCacheStats {
	st := ComponentCacheStats{Hits: cc.hits.Load(), Misses: cc.misses.Load()}
	cc.mu.Lock()
	for _, e := range cc.entries {
		select {
		case <-e.done:
			if e.ok {
				st.Entries++
			}
		default:
		}
	}
	cc.mu.Unlock()
	return st
}

// ccClaim is an unfulfilled cache slot owned by the caller that missed; it
// must be settled exactly once, by fulfill or withdraw.
type ccClaim struct {
	cc  *ComponentCache
	key ResultKey
	e   *ccEntry
}

func (c *ccClaim) fulfill(v any) {
	c.e.val, c.e.ok = v, true
	close(c.e.done)
}

func (c *ccClaim) withdraw() {
	c.cc.mu.Lock()
	if c.cc.entries[c.key] == c.e {
		delete(c.cc.entries, c.key)
	}
	c.cc.mu.Unlock()
	close(c.e.done) // e.ok false: waiters retry
}

// lookupOrClaim returns (value, true, nil) on a hit, or (nil, false, claim)
// when the caller now owns the computation. It blocks while another caller
// holds the claim and retries after withdrawals, so it must not be called
// while holding a claim whose fulfillment depends on this call returning
// (Tune uses tryClaim for exactly that reason).
func (cc *ComponentCache) lookupOrClaim(key ResultKey) (any, bool, *ccClaim) {
	for {
		cc.mu.Lock()
		e := cc.entries[key]
		if e == nil {
			e = &ccEntry{done: make(chan struct{})}
			cc.entries[key] = e
			cc.mu.Unlock()
			cc.misses.Add(1)
			return nil, false, &ccClaim{cc: cc, key: key, e: e}
		}
		cc.mu.Unlock()
		<-e.done
		if e.ok {
			cc.hits.Add(1)
			return e.val, true, nil
		}
	}
}

// tryClaim is the non-blocking variant: on a fulfilled hit it returns the
// value; on an absent key it returns a claim; while another caller's claim
// is in flight it returns (nil, false, nil) — the caller computes live and
// unrecorded. Tune needs this because its fulfillments happen only after
// the whole lockstep loop: blocking there could deadlock two sessions that
// claim overlapping component sets in opposite orders.
func (cc *ComponentCache) tryClaim(key ResultKey) (any, bool, *ccClaim) {
	cc.mu.Lock()
	e := cc.entries[key]
	if e == nil {
		e = &ccEntry{done: make(chan struct{})}
		cc.entries[key] = e
		cc.mu.Unlock()
		cc.misses.Add(1)
		return nil, false, &ccClaim{cc: cc, key: key, e: e}
	}
	cc.mu.Unlock()
	select {
	case <-e.done:
		if e.ok {
			cc.hits.Add(1)
			return e.val, true, nil
		}
		// Withdrawn between lookup and wait: treat as busy; the next
		// caller will claim afresh.
		return nil, false, nil
	default:
		return nil, false, nil
	}
}

// get is the single-flight convenience for computations that complete
// before returning (search, residual sizes): hit, or compute-and-fulfill,
// with the claim withdrawn on error or panic.
func (cc *ComponentCache) get(key ResultKey, compute func() (any, error)) (v any, hit bool, err error) {
	got, ok, claim := cc.lookupOrClaim(key)
	if ok {
		return got, true, nil
	}
	defer func() {
		if r := recover(); r != nil {
			claim.withdraw()
			panic(r)
		}
	}()
	v, err = compute()
	if err != nil {
		claim.withdraw()
		return nil, false, err
	}
	claim.fulfill(v)
	return v, false, nil
}

// Cached payloads. bits fields are inline labels over the component's edges
// in ascending-site order (bit i of word i/64 = edge i inlined), the
// site-number-free form that makes results portable across plans; sizes are
// bytes of the component sub-module.
//
// searchOutcome caches one optimal search: the clean-slate size, the
// optimal size, and the optimal labels.
type searchOutcome struct {
	emptySize int
	size      int
	bits      []uint64
}

// tuneOutcome caches one lockstep tuning run from a fixed (init, rounds)
// request: the starting size/labels and one tuneRound per global round
// actually stepped. A recorded trace is either rounds long or ends at a
// round where the *whole link's* toggles hit zero — and a component's own
// toggles are zero at its last recorded round in that case — so replaying
// past the end by repeating the final entry with zero toggles is exact
// (autotune.Session.Step replays fixpoints the same way).
type tuneOutcome struct {
	initSize int
	initBits []uint64
	rounds   []tuneRound
}

type tuneRound struct {
	size    int
	inlined int
	toggles int
	bits    []uint64
}

// round returns the trace entry for 1-based global round r, padding past
// the recorded end with the converged fixpoint.
func (t *tuneOutcome) round(r int) tuneRound {
	if r <= len(t.rounds) {
		return t.rounds[r-1]
	}
	last := t.rounds[len(t.rounds)-1]
	last.toggles = 0
	return last
}
