package link

import (
	"fmt"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/interp"
)

// TuneObjective selects what a linked tuning session minimizes.
type TuneObjective int

const (
	// ObjectiveSize minimizes compiled bytes (the default).
	ObjectiveSize TuneObjective = iota
	// ObjectiveWeighted minimizes bytes + Lambda·modelled cycles.
	ObjectiveWeighted
	// ObjectiveCycles minimizes modelled cycles alone.
	ObjectiveCycles
)

// tuneCyclesMerged runs a cycle-aware tuning session on the merged module.
//
// Cycle objectives never shard. The byte objective is component-separable —
// a toggle's size effect is confined to its component, which is what makes
// the lockstep sharded sessions an exact image of the whole-module tuner.
// The cycle objective is not: the i-cache replay threads one LRU state
// through the entire profiled frame sequence, so inlining a site in one
// component changes the miss penalties charged to frames of every other
// component that shares cache lines with it. Pretending otherwise would make
// -no-shard a real oracle instead of a free one, so the sharded path simply
// delegates here and stdout stays mode-independent by construction.
func (l *Linker) tuneCyclesMerged(opts TuneOptions, res *TuneResult) error {
	mod, err := l.Link()
	if err != nil {
		return err
	}
	c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
	if opts.Configure != nil {
		opts.Configure(c)
	}
	entry := opts.Entry
	if entry == "" {
		entry = "entry"
	}
	// Profile the no-inline baseline: the pricer reprices every other
	// configuration from this one interpretation.
	built, err := c.Build(callgraph.NewConfig())
	if err != nil {
		return err
	}
	_, prof, err := interp.Collect(built, entry, opts.Args, interp.Options{Fuel: opts.Fuel})
	if err != nil {
		return fmt.Errorf("profiling %s: %w", entry, err)
	}
	pricer, err := c.NewCyclePricer(prof, compile.CycleOptions{CacheBytes: opts.CacheBytes})
	if err != nil {
		return err
	}
	if opts.NoCycleDelta {
		pricer.SetCycleDelta(false)
	}
	aOpts := autotune.Options{Rounds: opts.Rounds, Workers: opts.Workers}
	if opts.Objective == ObjectiveCycles {
		res.Result = autotune.TuneCycles(c, pricer, initConfig(opts.Init, c), aOpts)
	} else {
		res.Result = autotune.TuneWeighted(c, pricer, opts.Lambda, initConfig(opts.Init, c), aOpts)
	}
	res.Evaluations = c.Evaluations()
	res.ConfigCache = c.ConfigCacheStats()
	res.FuncCache = c.FuncCacheStats()
	res.Cycle = pricer.Stats()
	return nil
}
