// Package link merges many translation units into one module — the
// repository's stand-in for LTO-style cross-module compilation, the setting
// in which the paper's SQLite case study (§5.2.3) finds the big inlining
// wins: calls that cross file boundaries are not inlinable per-file, but
// become ordinary candidate edges once the units are linked.
//
// The linker is summary-based and streamed: planning consumes only per-TU
// symbol summaries (cached by ir.Fingerprint content keys, see summary.go),
// never more than one loaded unit at a time, so the memory high-water mark
// of building a linked mega-module's call graph stays proportional to the
// largest unit, not the sum. The resulting Plan fixes everything
// deterministically — symbol resolution, collision renaming, call-site
// numbering, and the connected-component partition of the candidate graph —
// before any IR is merged, which is what lets the optimal/autotune search
// run per component on separately materialized sub-modules (search.go,
// tune.go) and still produce byte-identical results to a single-module run.
//
// Determinism: the plan is a pure function of the TU *contents* and names,
// never of their order — units are canonicalized by name first — so linking
// the same units in any input order yields bit-identical modules.
package link

import (
	"fmt"
	"sort"

	"optinline/internal/graph"
	"optinline/internal/ir"
)

// TU is one translation unit handed to the linker. Units are either eager
// (wrapping an already-loaded module) or lazy (a loader invoked each time
// the unit's IR is needed; the linker never caches loads, which is what
// keeps streamed linking's memory flat). A lazy loader must be
// deterministic: the linker verifies every reload against the planning-time
// module fingerprint and fails loudly on drift.
type TU struct {
	// Name identifies the unit; it must be unique across the link and is
	// used for canonical ordering and rename suffixes.
	Name string
	// LocalGlobals lists globals that are file-local to this unit (C
	// "static"): when another unit uses the same global name, this unit's
	// copy is renamed instead of merged. Globals not listed here merge
	// by name across units (C extern/common linkage).
	LocalGlobals []string

	load func() (*ir.Module, error)
}

// ModuleTU wraps an eagerly loaded module as a TU.
func ModuleTU(name string, m *ir.Module) TU {
	return TU{Name: name, load: func() (*ir.Module, error) { return m, nil }}
}

// LazyTU wraps a deterministic loader as a TU.
func LazyTU(name string, load func() (*ir.Module, error)) TU {
	return TU{Name: name, load: load}
}

// Load returns the unit's module.
func (t TU) Load() (*ir.Module, error) {
	if t.load == nil {
		return nil, fmt.Errorf("link: TU %q has no loader", t.Name)
	}
	m, err := t.load()
	if err != nil {
		return nil, fmt.Errorf("link: load %s: %w", t.Name, err)
	}
	if m == nil {
		return nil, fmt.Errorf("link: load %s: nil module", t.Name)
	}
	return m, nil
}

// DupPolicy selects how duplicate exported symbols across units are
// handled.
type DupPolicy int

const (
	// DupExportedError rejects the link when two units export the same
	// symbol (the C linker's "multiple definition" hard error). Default.
	DupExportedError DupPolicy = iota
	// DupExportedRename renames every copy of a multiply-exported symbol
	// (name__tuNNN), keeps each copy exported, and binds no cross-TU calls
	// to the name — references to it from other units stay external. This
	// is the policy for linking independent programs that all export the
	// same entry point (e.g. the examples/minc corpus).
	DupExportedRename
)

// Options configures a link.
type Options struct {
	// ModuleName names the merged module; empty means "linked".
	ModuleName string
	// DupExported selects the duplicate-exported-symbol policy.
	DupExported DupPolicy
	// Internalize restricts the merged module's exported set to Roots:
	// every function not named there becomes internal, which is what makes
	// cross-TU callees eligible for inlining-driven dead-function
	// elimination — the LTO win the paper's amalgamation study measures.
	Internalize bool
	// Roots are linked function names kept exported under Internalize.
	// Unknown names are an error (they would silently change semantics).
	Roots []string
	// Summaries is the content-keyed summary cache to use; nil selects a
	// process-wide shared cache.
	Summaries *SummaryCache
}

func (o Options) moduleName() string {
	if o.ModuleName == "" {
		return "linked"
	}
	return o.ModuleName
}

// DuplicateSymbolError reports an exported symbol defined by several units
// under DupExportedError.
type DuplicateSymbolError struct {
	Name string
	TUs  []string
}

func (e *DuplicateSymbolError) Error() string {
	return fmt.Sprintf("link: duplicate exported symbol %q defined in %d units: %v", e.Name, len(e.TUs), e.TUs)
}

// PlannedFunc is one function of the merged module, in final layout order.
type PlannedFunc struct {
	TU       int    // canonical unit index
	Src      string // name inside its unit
	Name     string // linked name (== Src unless renamed)
	Exported bool   // linked linkage (after Internalize)
	SiteID   int    // first call-site ID; calls occupy [SiteID, SiteID+NCalls)
	NCalls   int
	Comp     int // edge-bearing component index, or -1
}

// PlannedEdge is one candidate call edge of the merged module.
type PlannedEdge struct {
	Site           int
	Caller, Callee int // indices into Plan.Funcs
}

// Plan is the deterministic result of symbol resolution over the unit
// summaries: the complete layout, naming, site numbering, candidate edges,
// and component partition of the merged module — everything the sharded
// search needs, with no merged IR materialized.
type Plan struct {
	TUs     []string // canonical unit names
	Funcs   []PlannedFunc
	ByName  map[string]int // linked name -> Funcs index
	Globals []string       // merged global list, first-seen canonical order

	Edges         []PlannedEdge // candidate edges, ascending site
	CrossTU       int           // candidate edges whose endpoints live in different units
	ExternalCalls int           // call sites bound to no unit (stay external)

	Components [][]int // Funcs indices per edge-bearing component, by smallest member
	Renamed    int     // functions whose linked name differs from their source name

	fnRenames     []map[string]string // per unit: src fn name -> linked name (non-identity only)
	globalRenames []map[string]string // per unit: src global -> linked name (non-identity only)
}

// ComponentEdges returns the candidate edges of one component, ascending
// site order.
func (p *Plan) ComponentEdges(ci int) []PlannedEdge {
	var out []PlannedEdge
	for _, e := range p.Edges {
		if p.Funcs[e.Caller].Comp == ci {
			out = append(out, e)
		}
	}
	return out
}

// ComponentMultigraph returns the undirected multigraph of one component
// with nodes compacted to 0..len(members)-1 in layout order — the exact
// graph callgraph.Build would produce for the materialized component
// module, so space accounting and partition-edge selection agree between
// the sharded and single-module paths.
func (p *Plan) ComponentMultigraph(ci int) *graph.Multigraph {
	members := p.Components[ci]
	local := make(map[int]int, len(members))
	for i, f := range members {
		local[f] = i
	}
	mg := &graph.Multigraph{N: len(members)}
	for _, e := range p.ComponentEdges(ci) {
		mg.Edges = append(mg.Edges, graph.Edge{ID: e.Site, U: local[e.Caller], V: local[e.Callee]})
	}
	return mg
}

// Sites returns all candidate site IDs, ascending.
func (p *Plan) Sites() []int {
	out := make([]int, len(p.Edges))
	for i, e := range p.Edges {
		out[i] = e.Site
	}
	return out
}

// Linker owns a set of units and their link plan.
type Linker struct {
	tus   []TU // canonical order
	opts  Options
	sums  []*tuSummary // canonical order; plan-time fingerprints
	plan  *Plan
	cache *SummaryCache
}

// New canonicalizes the units, summarizes them (one load each, streamed),
// and builds the link plan. The input slice is not modified.
func New(tus []TU, opts Options) (*Linker, error) {
	cache := opts.Summaries
	if cache == nil {
		cache = defaultSummaries
	}
	ordered := append([]TU(nil), tus...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Name == ordered[i-1].Name {
			return nil, fmt.Errorf("link: duplicate TU name %q", ordered[i].Name)
		}
	}
	if len(ordered) == 0 {
		return nil, fmt.Errorf("link: no translation units")
	}
	l := &Linker{tus: ordered, opts: opts, cache: cache}
	for _, tu := range ordered {
		m, err := tu.Load()
		if err != nil {
			return nil, err
		}
		l.sums = append(l.sums, cache.summarize(m))
	}
	plan, err := buildPlan(l.tus, l.sums, opts)
	if err != nil {
		return nil, err
	}
	l.plan = plan
	return l, nil
}

// Plan returns the link plan.
func (l *Linker) Plan() *Plan { return l.plan }

// TUs returns the canonicalized units.
func (l *Linker) TUs() []TU { return l.tus }

// buildPlan performs deterministic symbol resolution over the summaries.
func buildPlan(tus []TU, sums []*tuSummary, opts Options) (*Plan, error) {
	p := &Plan{
		ByName:        make(map[string]int),
		fnRenames:     make([]map[string]string, len(tus)),
		globalRenames: make([]map[string]string, len(tus)),
	}
	for _, tu := range tus {
		p.TUs = append(p.TUs, tu.Name)
	}

	// Pass 1: name occupancy. A function name "keeps" its spelling when it
	// is defined by exactly one unit, or when exactly one of its definers
	// exports it (the exported definition is the linkable symbol; locals
	// yield). Multiply-exported names follow the DupPolicy.
	type occ struct {
		tus      []int
		exported []int
	}
	occs := make(map[string]*occ)
	for t, s := range sums {
		for _, f := range s.funcs {
			o := occs[f.name]
			if o == nil {
				o = &occ{}
				occs[f.name] = o
			}
			o.tus = append(o.tus, t)
			if f.exported {
				o.exported = append(o.exported, t)
			}
		}
	}
	names := make([]string, 0, len(occs))
	for n := range occs {
		names = append(names, n)
	}
	sort.Strings(names)

	// keeps[t][name] reports whether (t, name) keeps its spelling.
	keeps := func(name string, t int) bool {
		o := occs[name]
		if len(o.tus) == 1 {
			return true
		}
		if len(o.exported) == 1 {
			return o.exported[0] == t
		}
		return false // multiply-exported handled below, all-local renames all
	}
	// symtab maps an exported name to its defining unit for cross-TU call
	// binding; multiply-exported names never enter it.
	symtab := make(map[string]int)
	for _, n := range names {
		o := occs[n]
		if len(o.exported) > 1 {
			if opts.DupExported == DupExportedError {
				dup := &DuplicateSymbolError{Name: n}
				for _, t := range o.exported {
					dup.TUs = append(dup.TUs, tus[t].Name)
				}
				return nil, dup
			}
			continue // DupExportedRename: no binding, every copy renamed
		}
		if len(o.exported) == 1 {
			symtab[n] = o.exported[0]
		}
	}

	// Pass 2: final names. Kept names are reserved first so a rename can
	// never collide with a later kept name; renames then claim
	// name__tuNNN (NNN = canonical unit index), with a numeric suffix as a
	// last resort against pathological inputs that already contain such
	// names. Both passes run in layout order, which is itself canonical.
	taken := make(map[string]bool)
	for t, s := range sums {
		for _, f := range s.funcs {
			if keeps(f.name, t) {
				taken[f.name] = true
			}
		}
	}
	rootSet := make(map[string]bool, len(opts.Roots))
	for _, r := range opts.Roots {
		rootSet[r] = true
	}
	site := 1
	for t, s := range sums {
		for _, f := range s.funcs {
			linked := f.name
			if !keeps(f.name, t) {
				base := fmt.Sprintf("%s__tu%03d", f.name, t)
				linked = base
				for k := 2; taken[linked]; k++ {
					linked = fmt.Sprintf("%s_%d", base, k)
				}
				taken[linked] = true
				if p.fnRenames[t] == nil {
					p.fnRenames[t] = make(map[string]string)
				}
				p.fnRenames[t][f.name] = linked
				p.Renamed++
			}
			exported := f.exported
			if opts.Internalize {
				exported = rootSet[linked]
			}
			p.ByName[linked] = len(p.Funcs)
			p.Funcs = append(p.Funcs, PlannedFunc{
				TU:       t,
				Src:      f.name,
				Name:     linked,
				Exported: exported,
				SiteID:   site,
				NCalls:   len(f.calls),
				Comp:     -1,
			})
			site += len(f.calls)
		}
	}
	if opts.Internalize {
		for r := range rootSet {
			if _, ok := p.ByName[r]; !ok {
				return nil, fmt.Errorf("link: root %q names no linked function", r)
			}
		}
	}

	// Pass 3: globals. Shared globals merge by name in first-seen canonical
	// order; a global listed as file-local by a unit is renamed only when
	// some other unit also uses the name (so a link of one unit stays the
	// identity).
	users := make(map[string]int)
	for _, s := range sums {
		for _, g := range s.globals {
			users[g]++
		}
	}
	gTaken := make(map[string]bool)
	for t, s := range sums {
		localSet := make(map[string]bool, len(tus[t].LocalGlobals))
		for _, g := range tus[t].LocalGlobals {
			localSet[g] = true
		}
		for _, g := range s.globals {
			if localSet[g] && users[g] > 1 {
				continue // renamed below, after shared names are reserved
			}
			if !gTaken[g] {
				gTaken[g] = true
				p.Globals = append(p.Globals, g)
			}
		}
	}
	for t, s := range sums {
		localSet := make(map[string]bool, len(tus[t].LocalGlobals))
		for _, g := range tus[t].LocalGlobals {
			localSet[g] = true
		}
		for _, g := range s.globals {
			if !localSet[g] || users[g] <= 1 {
				continue
			}
			base := fmt.Sprintf("%s__tu%03d", g, t)
			linked := base
			for k := 2; gTaken[linked]; k++ {
				linked = fmt.Sprintf("%s_%d", base, k)
			}
			gTaken[linked] = true
			p.Globals = append(p.Globals, linked)
			if p.globalRenames[t] == nil {
				p.globalRenames[t] = make(map[string]string)
			}
			p.globalRenames[t][g] = linked
		}
	}

	// Pass 4: call binding and candidate edges. Within a unit a call binds
	// to the unit's own definition first (internal linkage shadows
	// external), then to the unique exported definition of another unit,
	// else it stays external.
	for fi := range p.Funcs {
		pf := &p.Funcs[fi]
		fsum := sums[pf.TU].funcs[sums[pf.TU].byName[pf.Src]]
		for k, callee := range fsum.calls {
			siteID := pf.SiteID + k
			var target int
			if j, ok := sums[pf.TU].byName[callee]; ok {
				target = funcIndex(p, pf.TU, j, sums)
			} else if owner, ok := symtab[callee]; ok {
				target = funcIndex(p, owner, sums[owner].byName[callee], sums)
			} else {
				p.ExternalCalls++
				continue
			}
			p.Edges = append(p.Edges, PlannedEdge{Site: siteID, Caller: fi, Callee: target})
			if p.Funcs[target].TU != pf.TU {
				p.CrossTU++
			}
		}
	}

	// Pass 5: component partition (union-find over candidate edges).
	parent := make([]int, len(p.Funcs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range p.Edges {
		a, b := find(e.Caller), find(e.Callee)
		if a != b {
			if a > b {
				a, b = b, a
			}
			parent[b] = a
		}
	}
	hasEdge := make([]bool, len(p.Funcs))
	for _, e := range p.Edges {
		hasEdge[e.Caller] = true
		hasEdge[e.Callee] = true
	}
	compOf := make(map[int]int) // root -> component index
	for fi := range p.Funcs {
		if !hasEdge[fi] {
			continue
		}
		root := find(fi)
		ci, ok := compOf[root]
		if !ok {
			ci = len(p.Components)
			compOf[root] = ci
			p.Components = append(p.Components, nil)
		}
		p.Funcs[fi].Comp = ci
		p.Components[ci] = append(p.Components[ci], fi)
	}
	return p, nil
}

// funcIndex maps (unit, function-in-unit) to the layout index. Layout is
// unit-major in summary order, so the index is a prefix sum.
func funcIndex(p *Plan, t, j int, sums []*tuSummary) int {
	base := 0
	for i := 0; i < t; i++ {
		base += len(sums[i].funcs)
	}
	return base + j
}

// Link materializes the full merged module.
func (l *Linker) Link() (*ir.Module, error) {
	return l.materialize(l.opts.moduleName(), func(pf *PlannedFunc) bool { return true })
}

// Component materializes the sub-module holding exactly the functions of
// one edge-bearing component (plus the merged global list). Its candidate
// call graph is the component's planned edges with their planned site IDs:
// a configuration found by searching it composes directly with the other
// components' configurations into a configuration of the full linked
// module.
func (l *Linker) Component(ci int) (*ir.Module, error) {
	if ci < 0 || ci >= len(l.plan.Components) {
		return nil, fmt.Errorf("link: component %d out of range (have %d)", ci, len(l.plan.Components))
	}
	name := fmt.Sprintf("%s#c%03d", l.opts.moduleName(), ci)
	return l.materialize(name, func(pf *PlannedFunc) bool { return pf.Comp == ci })
}

// Residual materializes the sub-module of functions with no incident
// candidate edge. Inlining decisions cannot affect them; their size under
// the empty configuration completes a sharded total.
func (l *Linker) Residual() (*ir.Module, error) {
	return l.materialize(l.opts.moduleName()+"#residual", func(pf *PlannedFunc) bool { return pf.Comp < 0 })
}

// materialize streams the selected planned functions into a fresh module:
// units are loaded one at a time (skipping units with no selected
// function), each selected function is cloned, renamed, its call sites
// renumbered to the planned IDs, and its callee/global references rewritten
// per the plan.
func (l *Linker) materialize(name string, want func(*PlannedFunc) bool) (*ir.Module, error) {
	m := ir.NewModule(name)
	for _, g := range l.plan.Globals {
		m.AddGlobal(g)
	}
	// Group selected functions by unit to load each unit at most once.
	perTU := make([][]int, len(l.tus))
	for fi := range l.plan.Funcs {
		pf := &l.plan.Funcs[fi]
		if want(pf) {
			perTU[pf.TU] = append(perTU[pf.TU], fi)
		}
	}
	for t := range l.tus {
		if len(perTU[t]) == 0 {
			continue
		}
		mod, err := l.tus[t].Load()
		if err != nil {
			return nil, err
		}
		if fp := mod.Fingerprint(); fp != l.sums[t].fp {
			return nil, fmt.Errorf("link: TU %s changed between planning and materialization (fingerprint %x != %x)", l.tus[t].Name, fp, l.sums[t].fp)
		}
		for _, fi := range perTU[t] {
			pf := &l.plan.Funcs[fi]
			src := mod.Func(pf.Src)
			if src == nil {
				return nil, fmt.Errorf("link: TU %s lost function %s", l.tus[t].Name, pf.Src)
			}
			nf := src.Clone()
			nf.Name = pf.Name
			nf.Exported = pf.Exported
			site := pf.SiteID
			for _, b := range nf.Blocks {
				for _, in := range b.Instrs {
					switch in.Op {
					case ir.OpCall:
						in.Site = site
						site++
						if nn, ok := l.plan.fnRenames[t][in.Callee]; ok {
							in.Callee = nn
						}
					case ir.OpLoadG, ir.OpStoreG:
						if nn, ok := l.plan.globalRenames[t][in.Global]; ok {
							in.Global = nn
						}
					}
				}
			}
			m.AddFunc(nf)
		}
	}
	return m, nil
}

// Link is the convenience one-shot: canonicalize, plan, materialize.
func Link(tus []TU, opts Options) (*ir.Module, error) {
	l, err := New(tus, opts)
	if err != nil {
		return nil, err
	}
	return l.Link()
}
