package link

import (
	"fmt"
	"runtime"
	"sync"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/search"
	"optinline/internal/stats"
)

// ShardOptions configures how a linked module's per-component work is run.
type ShardOptions struct {
	// Target is the codegen target sizes are measured against.
	Target codegen.Target
	// Compile configures every compiler built for the run. Sharing one
	// FnCache here is what lets the per-component compilers (and a
	// -no-shard oracle run) reuse each other's per-function compilations:
	// its content keys are module-independent, so a function compiled
	// inside a component sub-module hits when the same closure shows up in
	// the merged module.
	Compile compile.Options
	// Configure, when non-nil, runs on every compiler after construction —
	// the hook the CLIs use to apply -no-delta/-no-memo/-no-fncache
	// uniformly across shards.
	Configure func(*compile.Compiler)
	// Workers follows search.Options.Workers: 0 selects GOMAXPROCS,
	// negative forces sequential. In sharded mode the pool is shared by
	// component-level parallelism; sequential mode additionally keeps at
	// most one component's compiler alive at a time, which is what makes
	// peak memory track the largest component instead of the module.
	Workers int
	// NoShard switches to the single-compiler oracle: one merged module,
	// per-component OptimalCompletion over the merged graph's component
	// subgraphs. Results are byte-identical to the sharded path — that
	// equality is the -no-shard differential oracle the CLIs expose.
	NoShard bool
}

func (o ShardOptions) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// ComponentStat describes one call-graph component of the link plan and,
// after a run, its outcome. Every field is mode-independent: the sharded
// and -no-shard paths fill identical values.
type ComponentStat struct {
	Index int
	Funcs int
	Edges int
	// Space is the recursive search-space size (SubspaceSize) of the
	// component; Capped reports it exceeded the requested MaxSpace.
	Space  uint64
	Capped bool
	// Inlined is the number of inline-labeled sites in the component's
	// part of the result configuration.
	Inlined int
	// SizeDelta is the component's size effect vs the clean slate
	// (optimal search only; <= 0 by optimality of the search).
	SizeDelta int
}

// SearchOptions configures OptimalSearch.
type SearchOptions struct {
	ShardOptions
	// MaxSpace aborts (ok=false) if any single component's recursive space
	// exceeds it; 0 means no bound. The bound is per component — that is
	// the unit of work sharding distributes — and is computed from the
	// plan, so both modes abort identically without compiling anything.
	MaxSpace uint64
	// NoPrune disables the branch-and-bound layer, as in search.Options.
	NoPrune bool
}

// SearchResult is the outcome of a cross-module optimal search.
type SearchResult struct {
	Components   []ComponentStat
	NoInlineSize int               // merged-module size under the clean slate
	Size         int               // merged-module size under Config
	Config       *callgraph.Config // optimal labels over the planned site IDs
	SpaceTotal   uint64            // saturating sum of component spaces

	// Diagnostics (mode- and schedule-dependent; the CLIs print them on
	// stderr, never on the byte-diffed stdout).
	Evaluations int64
	Prune       search.PruneStats
	ConfigCache stats.CacheStats
	FuncCache   stats.CacheStats
}

// OptimalSearch finds the optimal inlining configuration of the linked
// module by solving each call-graph component independently — the paper's
// independence theorem applied at link scale. In sharded mode (default)
// every component is materialized as its own sub-module and searched on its
// own compiler (own delta-engine state, own memo), components running on
// the worker pool; with NoShard one merged compiler solves the same
// components via OptimalCompletion. Both return identical configurations,
// sizes, and per-component stats.
//
// ok is false when a component's space exceeds MaxSpace (Components then
// carries the per-component spaces for reporting).
func (l *Linker) OptimalSearch(opts SearchOptions) (SearchResult, bool, error) {
	res := SearchResult{Components: make([]ComponentStat, len(l.plan.Components))}
	if capped := planSpaces(l.plan, opts.MaxSpace, &res); capped {
		return res, false, nil
	}
	var err error
	if opts.NoShard {
		err = l.searchMerged(opts, &res)
	} else {
		err = l.searchSharded(opts, &res)
	}
	if err != nil {
		return res, false, err
	}
	return res, true, nil
}

// planSpaces fills the plan-derived part of a SearchResult — per-component
// funcs/edges/space and the saturating space total — and reports whether any
// component exceeds maxSpace. Both search modes and the incremental Session
// share this prologue, so all paths abort identically without compiling.
func planSpaces(p *Plan, maxSpace uint64, res *SearchResult) bool {
	capped := false
	for ci := range p.Components {
		mg := p.ComponentMultigraph(ci)
		space, over := search.SubspaceSize(mg, maxSpace)
		over = over || (maxSpace > 0 && space > maxSpace)
		res.Components[ci] = ComponentStat{
			Index:  ci,
			Funcs:  len(p.Components[ci]),
			Edges:  len(mg.Edges),
			Space:  space,
			Capped: over,
		}
		capped = capped || over
		res.SpaceTotal = satAdd(res.SpaceTotal, space)
	}
	return capped
}

// compOut is one component's solved search outcome plus the solving
// compiler's diagnostics.
type compOut struct {
	cfg       *callgraph.Config
	size      int
	emptySize int
	evals     int64
	prune     search.PruneStats
	cc, fc    stats.CacheStats
}

// solveComponent materializes one component sub-module and searches it; the
// unit of work both the sharded search and a Session's dirty-component path
// run.
func (l *Linker) solveComponent(ci int, opts SearchOptions) (compOut, error) {
	mod, err := l.Component(ci)
	if err != nil {
		return compOut{}, err
	}
	c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
	if opts.Configure != nil {
		opts.Configure(c)
	}
	emptySize := c.Size(callgraph.NewConfig())
	sres, ok := search.Optimal(c, search.Options{
		Workers:  opts.Workers,
		MaxSpace: opts.MaxSpace,
		NoPrune:  opts.NoPrune,
	})
	if !ok {
		// Unreachable: the per-component space was bounded from the
		// plan before any compiler was built.
		return compOut{}, fmt.Errorf("link: component %d space exceeded cap after plan check", ci)
	}
	return compOut{
		cfg:       sres.Config,
		size:      sres.Size,
		emptySize: emptySize,
		evals:     c.Evaluations(),
		prune:     sres.Prune,
		cc:        c.ConfigCacheStats(),
		fc:        c.FuncCacheStats(),
	}, nil
}

// searchSharded materializes and searches one sub-module per component.
func (l *Linker) searchSharded(opts SearchOptions, res *SearchResult) error {
	p := l.plan
	outs := make([]compOut, len(p.Components))
	run := func(ci int) error {
		o, err := l.solveComponent(ci, opts)
		if err != nil {
			return err
		}
		outs[ci] = o
		return nil
	}
	if err := eachComponent(len(p.Components), opts.workers(), run); err != nil {
		return err
	}

	residSize, residEvals, err := l.residualSize(opts.ShardOptions)
	if err != nil {
		return err
	}
	cfg := callgraph.NewConfig()
	res.NoInlineSize = residSize
	res.Size = residSize
	res.Evaluations = residEvals
	for ci := range outs {
		o := &outs[ci]
		cfg.Merge(o.cfg)
		res.NoInlineSize += o.emptySize
		res.Size += o.size
		res.Evaluations += o.evals
		res.Prune = res.Prune.Add(o.prune)
		res.ConfigCache = res.ConfigCache.Add(o.cc)
		res.FuncCache = res.FuncCache.Add(o.fc)
		res.Components[ci].Inlined = o.cfg.InlineCount()
		res.Components[ci].SizeDelta = o.size - o.emptySize
	}
	res.Config = cfg
	return nil
}

// searchMerged is the -no-shard oracle: one compiler over the fully linked
// module, each component solved in place by OptimalCompletion over the
// merged graph's own component subgraphs. Those subgraphs must be taken
// from the merged compiler's graph — not the plan's compacted
// multigraphs — because the pruning engine resolves edge endpoints
// against whole-module function indices; a compacted graph would point
// its bounds at the wrong functions. The subgraphs are node-order-
// isomorphic to the component sub-modules' graphs and carry the same
// site IDs, so partition-edge decisions and leaf configurations match
// the sharded path exactly (TestPlanMatchesMaterializedGraph pins the
// per-index correspondence).
func (l *Linker) searchMerged(opts SearchOptions, res *SearchResult) error {
	mod, err := l.Link()
	if err != nil {
		return err
	}
	c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
	if opts.Configure != nil {
		opts.Configure(c)
	}
	subs := search.ComponentSubgraphs(c.Graph())
	if len(subs) != len(l.plan.Components) {
		return fmt.Errorf("link: merged module has %d components, plan has %d", len(subs), len(l.plan.Components))
	}
	emptySize := c.Size(callgraph.NewConfig())
	cfg := callgraph.NewConfig()
	for ci := range l.plan.Components {
		mg := subs[ci]
		if len(mg.Edges) != res.Components[ci].Edges {
			return fmt.Errorf("link: component %d has %d edges merged, %d planned", ci, len(mg.Edges), res.Components[ci].Edges)
		}
		ccfg, csize := search.OptimalCompletion(c, mg, callgraph.NewConfig(), search.Options{
			Workers: opts.Workers,
			NoPrune: opts.NoPrune,
		})
		res.Components[ci].Inlined = ccfg.InlineCount()
		res.Components[ci].SizeDelta = csize - emptySize
		cfg.Merge(ccfg)
	}
	res.NoInlineSize = emptySize
	res.Size = c.Size(cfg)
	res.Config = cfg
	res.Evaluations = c.Evaluations()
	res.ConfigCache = c.ConfigCacheStats()
	res.FuncCache = c.FuncCacheStats()
	return nil
}

// residualSize compiles the residual sub-module (functions with no incident
// candidate edge) under the clean slate. Inlining cannot affect these
// functions, so this one constant completes every sharded total.
func (l *Linker) residualSize(opts ShardOptions) (size int, evals int64, err error) {
	mod, err := l.Residual()
	if err != nil {
		return 0, 0, err
	}
	if len(mod.Funcs) == 0 {
		return 0, 0, nil
	}
	c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
	if opts.Configure != nil {
		opts.Configure(c)
	}
	return c.Size(callgraph.NewConfig()), c.Evaluations(), nil
}

// eachComponent runs fn(ci) for every component index on up to workers
// goroutines (sequentially when workers <= 1), failing fast on the first
// error. Output slots are per-index, so scheduling cannot reorder results.
func eachComponent(n, workers int, fn func(ci int) error) error {
	if workers <= 1 || n <= 1 {
		for ci := 0; ci < n; ci++ {
			if err := fn(ci); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		ferr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if ferr != nil || next >= n {
					mu.Unlock()
					return
				}
				ci := next
				next++
				mu.Unlock()
				if err := fn(ci); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return ferr
}

func satAdd(a, b uint64) uint64 {
	if a > ^uint64(0)-b {
		return ^uint64(0)
	}
	return a + b
}
