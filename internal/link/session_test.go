package link

import (
	"errors"
	"reflect"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
	"optinline/internal/workload"
)

// relinkFixture holds an editable multi-TU corpus: the current contents of
// every unit, from which it can hand out fresh TU lists for a session and
// for cold oracle links.
type relinkFixture struct {
	names  []string
	mods   []*ir.Module
	shared *SummaryCache
	fnc    *compile.FnCache
}

func newRelinkFixture(t testing.TB) *relinkFixture {
	t.Helper()
	lp := workload.LinkedProfile{
		Name:       "linked-tiny",
		TUs:        4,
		EdgesPerTU: 5,
		Cluster:    2,
		ExtCalls:   2,
		Shape: workload.Profile{
			ConstArgProb: 0.3,
			HubProb:      0.05,
			BigBodyProb:  0.1,
			LoopProb:     0.15,
			RecProb:      0.05,
			BranchProb:   0.3,
		},
	}
	fx := &relinkFixture{shared: NewSummaryCache(), fnc: compile.NewFnCache()}
	for _, f := range workload.GenerateLinked(lp).Files {
		fx.names = append(fx.names, f.Name)
		fx.mods = append(fx.mods, f.Module)
	}
	return fx
}

func (fx *relinkFixture) tus() []TU {
	out := make([]TU, len(fx.mods))
	for i, m := range fx.mods {
		tu := ModuleTU(fx.names[i], m)
		tu.LocalGlobals = []string{workload.LinkedScratchGlobal}
		out[i] = tu
	}
	return out
}

func (fx *relinkFixture) patchTU(i, seed int) TU {
	fx.mods[i] = workload.MutateLinkedTU(fx.mods[i], seed)
	tu := ModuleTU(fx.names[i], fx.mods[i])
	tu.LocalGlobals = []string{workload.LinkedScratchGlobal}
	return tu
}

func (fx *relinkFixture) linkOptions() Options {
	return Options{DupExported: DupExportedRename, Summaries: fx.shared}
}

func (fx *relinkFixture) searchOptions(jobs int) SearchOptions {
	return SearchOptions{
		ShardOptions: ShardOptions{
			Target:  codegen.TargetX86,
			Compile: compile.Options{FnCache: fx.fnc},
			Workers: jobs,
		},
		MaxSpace: 1 << 16,
	}
}

func (fx *relinkFixture) tuneOptions(jobs, rounds int, init TuneInit) TuneOptions {
	return TuneOptions{
		ShardOptions: ShardOptions{
			Target:  codegen.TargetX86,
			Compile: compile.Options{FnCache: fx.fnc},
			Workers: jobs,
		},
		Rounds: rounds,
		Init:   init,
	}
}

func (fx *relinkFixture) session(t testing.TB) *Session {
	t.Helper()
	s, err := NewSession(fx.tus(), SessionOptions{Link: fx.linkOptions(), Results: NewComponentCache()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// coldSearch is the -no-relink oracle: a from-scratch link and sharded
// search over the fixture's current contents.
func (fx *relinkFixture) coldSearch(t testing.TB, jobs int) SearchResult {
	t.Helper()
	l, err := New(fx.tus(), fx.linkOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, ok, err := l.OptimalSearch(fx.searchOptions(jobs))
	if err != nil || !ok {
		t.Fatalf("cold search: ok=%v err=%v", ok, err)
	}
	return res
}

func assertSearchEqual(t *testing.T, tag string, got, want SearchResult) {
	t.Helper()
	if got.Size != want.Size {
		t.Errorf("%s: optimal size %d, cold %d", tag, got.Size, want.Size)
	}
	if got.NoInlineSize != want.NoInlineSize {
		t.Errorf("%s: no-inline size %d, cold %d", tag, got.NoInlineSize, want.NoInlineSize)
	}
	if got.Config.Key() != want.Config.Key() {
		t.Errorf("%s: config keys differ:\n  relink: %s\n  cold:   %s", tag, got.Config.Key(), want.Config.Key())
	}
	if got.SpaceTotal != want.SpaceTotal {
		t.Errorf("%s: space totals differ: %d vs %d", tag, got.SpaceTotal, want.SpaceTotal)
	}
	if !reflect.DeepEqual(got.Components, want.Components) {
		t.Errorf("%s: per-component stats differ:\n  relink: %+v\n  cold:   %+v", tag, got.Components, want.Components)
	}
}

// TestSessionSearchMatchesCold drives a session through every mutation
// kind and checks each warm re-search against the cold full-link oracle,
// at several worker counts.
func TestSessionSearchMatchesCold(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)

	res, info, ok, err := sess.Search(fx.searchOptions(2))
	if err != nil || !ok {
		t.Fatalf("initial search: ok=%v err=%v", ok, err)
	}
	if info.ComponentsReplayed != 0 {
		t.Errorf("fresh cache replayed %d components", info.ComponentsReplayed)
	}
	assertSearchEqual(t, "initial", res, fx.coldSearch(t, 1))

	for step, edit := range []struct{ tu, seed int }{
		{1, 0}, // const bump: plan reused
		{2, 1}, // local rename: plan rebuilt
		{0, 2}, // export local: plan rebuilt
		{1, 3}, // another const bump on an already-edited unit
	} {
		tu := fx.patchTU(edit.tu, edit.seed)
		rep, err := sess.ReplaceNamed(tu)
		if err != nil {
			t.Fatalf("step %d: patch: %v", step, err)
		}
		wantReuse := edit.seed%3 == 0
		if rep.PlanReused != wantReuse {
			t.Errorf("step %d: PlanReused=%v, want %v", step, rep.PlanReused, wantReuse)
		}
		cold := fx.coldSearch(t, 1)
		for _, jobs := range []int{1, 2, 8} {
			got, _, ok, err := sess.Search(fx.searchOptions(jobs))
			if err != nil || !ok {
				t.Fatalf("step %d jobs %d: ok=%v err=%v", step, jobs, ok, err)
			}
			assertSearchEqual(t, "step", got, cold)
		}
	}

	st := sess.Stats()
	if st.Patches != 4 || st.PlanReuses != 2 || st.PlanRebuilds != 2 {
		t.Errorf("stats: %+v, want 4 patches = 2 reuses + 2 rebuilds", st)
	}
}

// TestSessionDirtyComponentAccounting pins the point of the whole
// subsystem: a body edit in one unit re-solves exactly the components that
// contain that unit's functions and replays every other one.
func TestSessionDirtyComponentAccounting(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	if _, _, ok, err := sess.Search(fx.searchOptions(2)); err != nil || !ok {
		t.Fatalf("initial search: ok=%v err=%v", ok, err)
	}

	// Seed 12 is a const bump (12%3 == 0) whose rotated start lands on a
	// component member rather than a residual function; the fingerprint
	// diff below keeps the test honest about what actually changed.
	const editedTU, seed = 1, 12
	oldMod := fx.mods[editedTU]
	if _, err := sess.ReplaceNamed(fx.patchTU(editedTU, seed)); err != nil {
		t.Fatal(err)
	}
	changed := map[string]bool{}
	for i, f := range oldMod.Funcs {
		if f.Fingerprint() != fx.mods[editedTU].Funcs[i].Fingerprint() {
			changed[f.Name] = true
		}
	}
	p := sess.Plan()
	dirty := map[int]bool{}
	dirtyResid := false
	for _, pf := range p.Funcs {
		if pf.TU != editedTU || !changed[pf.Src] {
			continue
		}
		if pf.Comp >= 0 {
			dirty[pf.Comp] = true
		} else {
			dirtyResid = true
		}
	}
	if len(dirty) == 0 || len(dirty) == len(p.Components) || dirtyResid {
		t.Fatalf("degenerate edit: %d of %d components dirty, residual dirty %v", len(dirty), len(p.Components), dirtyResid)
	}
	_, info, ok, err := sess.Search(fx.searchOptions(2))
	if err != nil || !ok {
		t.Fatalf("warm search: ok=%v err=%v", ok, err)
	}
	if info.ComponentsSolved != len(dirty) {
		t.Errorf("solved %d components, want the %d dirty ones", info.ComponentsSolved, len(dirty))
	}
	if info.ComponentsReplayed != len(p.Components)-len(dirty) {
		t.Errorf("replayed %d, want %d", info.ComponentsReplayed, len(p.Components)-len(dirty))
	}
	if info.ResidualSolved != 0 {
		t.Errorf("recompiled %d residual groups for a component-only edit", info.ResidualSolved)
	}

	// Identical re-query: everything replays.
	_, info, ok, err = sess.Search(fx.searchOptions(2))
	if err != nil || !ok {
		t.Fatalf("replay search: ok=%v err=%v", ok, err)
	}
	if info.ComponentsSolved != 0 || info.ResidualSolved != 0 {
		t.Errorf("full replay still solved %d components, %d residual groups", info.ComponentsSolved, info.ResidualSolved)
	}
}

// TestSessionTuneMatchesCold checks warm lockstep tuning (including trace
// replay from cache) against cold Linker.Tune, for both inits.
func TestSessionTuneMatchesCold(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	for _, init := range []TuneInit{InitClean, InitOs} {
		if _, _, err := sess.Tune(fx.tuneOptions(2, 3, init)); err != nil {
			t.Fatalf("priming tune: %v", err)
		}
		if _, err := sess.ReplaceNamed(fx.patchTU(0, 0)); err != nil {
			t.Fatal(err)
		}
		l, err := New(fx.tus(), fx.linkOptions())
		if err != nil {
			t.Fatal(err)
		}
		cold, err := l.Tune(fx.tuneOptions(1, 3, init))
		if err != nil {
			t.Fatal(err)
		}
		for _, jobs := range []int{1, 2, 8} {
			warm, info, err := sess.Tune(fx.tuneOptions(jobs, 3, init))
			if err != nil {
				t.Fatalf("warm tune: %v", err)
			}
			if jobs == 1 && info.ComponentsReplayed == 0 {
				t.Errorf("init %v: warm tune replayed nothing", init)
			}
			if !reflect.DeepEqual(warm.Result.Rounds, cold.Result.Rounds) {
				t.Errorf("init %v jobs %d: round traces differ:\n  relink: %+v\n  cold:   %+v", init, jobs, warm.Result.Rounds, cold.Result.Rounds)
			}
			if warm.Result.Size != cold.Result.Size || warm.Result.InitSize != cold.Result.InitSize || warm.Result.FinalSize != cold.Result.FinalSize {
				t.Errorf("init %v jobs %d: sizes differ: %d/%d/%d vs %d/%d/%d", init, jobs,
					warm.Result.InitSize, warm.Result.Size, warm.Result.FinalSize,
					cold.Result.InitSize, cold.Result.Size, cold.Result.FinalSize)
			}
			if warm.Result.Config.Key() != cold.Result.Config.Key() {
				t.Errorf("init %v jobs %d: best config keys differ", init, jobs)
			}
			if warm.Result.Final.Key() != cold.Result.Final.Key() {
				t.Errorf("init %v jobs %d: final config keys differ", init, jobs)
			}
			if !reflect.DeepEqual(warm.Components, cold.Components) {
				t.Errorf("init %v jobs %d: component stats differ:\n  relink: %+v\n  cold:   %+v", init, jobs, warm.Components, cold.Components)
			}
		}
	}
}

// TestSessionCycleObjectiveTypedError is the PR's satellite fix: the
// incremental path must refuse cycle objectives with a typed error, never
// silently fall back to a merged run the way Linker.Tune does.
func TestSessionCycleObjectiveTypedError(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	for _, obj := range []TuneObjective{ObjectiveWeighted, ObjectiveCycles} {
		opts := fx.tuneOptions(1, 1, InitClean)
		opts.Objective = obj
		_, _, err := sess.Tune(opts)
		var cerr *CycleObjectiveError
		if !errors.As(err, &cerr) {
			t.Fatalf("objective %v: got %v, want *CycleObjectiveError", obj, err)
		}
		if cerr.Objective != obj {
			t.Errorf("error carries objective %v, want %v", cerr.Objective, obj)
		}
	}
	if st := sess.Stats(); st.Tunes != 0 {
		t.Errorf("rejected tunes were counted: %+v", st)
	}
}

// TestSessionRejectsNoShard: the session has no merged mode; its oracle is
// the cold full link.
func TestSessionRejectsNoShard(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	so := fx.searchOptions(1)
	so.NoShard = true
	if _, _, _, err := sess.Search(so); err == nil {
		t.Error("Search accepted NoShard")
	}
	to := fx.tuneOptions(1, 1, InitClean)
	to.NoShard = true
	if _, _, err := sess.Tune(to); err == nil {
		t.Error("Tune accepted NoShard")
	}
}

// TestSessionReplaceErrors: bad indices and renames fail without touching
// session state.
func TestSessionReplaceErrors(t *testing.T) {
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	before := fx.coldSearch(t, 1)

	if _, err := sess.Replace(99, fx.tus()[0]); err == nil {
		t.Error("out-of-range Replace succeeded")
	}
	renamed := fx.tus()[0]
	renamed.Name = "somewhere-else"
	if _, err := sess.Replace(0, renamed); err == nil {
		t.Error("renaming Replace succeeded")
	}
	if _, err := sess.ReplaceNamed(renamed); err == nil {
		t.Error("ReplaceNamed of unknown unit succeeded")
	}
	if st := sess.Stats(); st.Patches != 0 {
		t.Errorf("failed patches were counted: %+v", st)
	}
	got, _, ok, err := sess.Search(fx.searchOptions(1))
	if err != nil || !ok {
		t.Fatalf("search after failed patches: ok=%v err=%v", ok, err)
	}
	assertSearchEqual(t, "after-failed-patches", got, before)
}

// TestSessionSharedCacheAcrossSessions: a second session over identical
// contents replays everything from a shared ComponentCache.
func TestSessionSharedCacheAcrossSessions(t *testing.T) {
	fx := newRelinkFixture(t)
	shared := NewComponentCache()
	mk := func() *Session {
		s, err := NewSession(fx.tus(), SessionOptions{Link: fx.linkOptions(), Results: shared})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mk()
	if _, info, ok, err := a.Search(fx.searchOptions(2)); err != nil || !ok || info.ComponentsSolved == 0 {
		t.Fatalf("first session: ok=%v err=%v info=%+v", ok, err, info)
	}
	b := mk()
	resB, info, ok, err := b.Search(fx.searchOptions(2))
	if err != nil || !ok {
		t.Fatalf("second session: ok=%v err=%v", ok, err)
	}
	if info.ComponentsSolved != 0 || info.ResidualSolved != 0 {
		t.Errorf("second session solved %d components, %d residual groups; want all replayed", info.ComponentsSolved, info.ResidualSolved)
	}
	assertSearchEqual(t, "cross-session", resB, fx.coldSearch(t, 1))
	if st := shared.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("shared cache saw no reuse: %+v", st)
	}
}

// TestComponentCacheWithdraw: a failed computation is withdrawn and the
// key stays usable.
func TestComponentCacheWithdraw(t *testing.T) {
	cc := NewComponentCache()
	key := ResultKey{Hi: 1, Lo: 2}
	if _, _, err := cc.get(key, func() (any, error) { return nil, errors.New("boom") }); err == nil {
		t.Fatal("error not propagated")
	}
	v, hit, err := cc.get(key, func() (any, error) { return 42, nil })
	if err != nil || hit || v.(int) != 42 {
		t.Fatalf("retry after withdraw: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = cc.get(key, func() (any, error) { t.Error("recomputed a fulfilled key"); return nil, nil })
	if err != nil || !hit || v.(int) != 42 {
		t.Fatalf("hit after fulfill: v=%v hit=%v err=%v", v, hit, err)
	}
}

// TestParseEditScript covers the script grammar.
func TestParseEditScript(t *testing.T) {
	ops, err := ParseEditScript([]byte("# edit session\n\npatch app.minc v2/app.minc\nsearch\ntune\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := []EditOp{
		{Verb: "patch", TU: "app.minc", Path: "v2/app.minc"},
		{Verb: "search"},
		{Verb: "tune"},
	}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("ops = %+v, want %+v", ops, want)
	}
	for _, bad := range []string{"", "replace a b", "patch onlyone", "search extra"} {
		if _, err := ParseEditScript([]byte(bad)); err == nil {
			t.Errorf("ParseEditScript(%q) succeeded", bad)
		}
	}
}
