package link

import (
	"reflect"
	"testing"

	"optinline/internal/autotune"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/search"
	"optinline/internal/workload"
)

func linkedS(t *testing.T) *Linker {
	t.Helper()
	lp, ok := workload.LinkedProfileByName("linked-s")
	if !ok {
		t.Fatal("linked-s profile missing")
	}
	l, err := New(CorpusTUs(workload.GenerateLinked(lp)), Options{Summaries: NewSummaryCache()})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// tinyLinker builds a linker over a test-only profile sized so a full
// exhaustive (NoPrune) search stays cheap even under the race detector,
// while keeping everything the differentials need: colliding file-local
// names, cross-TU calls, several non-trivial components, and component
// clusters big enough for the pruning engine's bound to matter.
func tinyLinker(t *testing.T) *Linker {
	t.Helper()
	lp := workload.LinkedProfile{
		Name:       "linked-tiny",
		TUs:        4,
		EdgesPerTU: 5,
		Cluster:    2,
		ExtCalls:   2,
		Shape: workload.Profile{
			ConstArgProb: 0.3,
			HubProb:      0.05,
			BigBodyProb:  0.1,
			LoopProb:     0.15,
			RecProb:      0.05,
			BranchProb:   0.3,
		},
	}
	l, err := New(CorpusTUs(workload.GenerateLinked(lp)), Options{Summaries: NewSummaryCache()})
	if err != nil {
		t.Fatal(err)
	}
	p := l.Plan()
	if len(p.Components) < 2 || p.CrossTU == 0 || p.Renamed == 0 {
		t.Fatalf("tiny profile degenerated: %d components, %d cross-TU, %d renamed",
			len(p.Components), p.CrossTU, p.Renamed)
	}
	return l
}

// TestOptimalSearchShardedMatchesNoShard is the tentpole oracle: the
// component-sharded search and the single-compiler -no-shard search must
// agree on everything mode-independent — sizes, configuration bits and
// canonical key, and per-component stats.
func TestOptimalSearchShardedMatchesNoShard(t *testing.T) {
	l := tinyLinker(t)
	fc := compile.NewFnCache()
	base := SearchOptions{ShardOptions: ShardOptions{
		Target:  codegen.TargetX86,
		Compile: compile.Options{FnCache: fc},
		Workers: 2,
	}}

	sharded, ok, err := l.OptimalSearch(base)
	if err != nil || !ok {
		t.Fatalf("sharded search: ok=%v err=%v", ok, err)
	}
	noShard := base
	noShard.NoShard = true
	oracle, ok, err := l.OptimalSearch(noShard)
	if err != nil || !ok {
		t.Fatalf("no-shard search: ok=%v err=%v", ok, err)
	}

	if sharded.Size != oracle.Size {
		t.Errorf("optimal size: sharded %d, no-shard %d", sharded.Size, oracle.Size)
	}
	if sharded.NoInlineSize != oracle.NoInlineSize {
		t.Errorf("no-inline size: sharded %d, no-shard %d", sharded.NoInlineSize, oracle.NoInlineSize)
	}
	if !sharded.Config.Equal(oracle.Config) {
		t.Errorf("configurations differ")
	}
	if sharded.Config.Key() != oracle.Config.Key() {
		t.Errorf("config keys differ:\n  sharded:  %s\n  no-shard: %s", sharded.Config.Key(), oracle.Config.Key())
	}
	if !reflect.DeepEqual(sharded.Components, oracle.Components) {
		t.Errorf("per-component stats differ:\n  sharded:  %+v\n  no-shard: %+v", sharded.Components, oracle.Components)
	}
	if sharded.SpaceTotal != oracle.SpaceTotal {
		t.Errorf("space totals differ: %d vs %d", sharded.SpaceTotal, oracle.SpaceTotal)
	}

	// Ground truth: a plain whole-module search over the merged module.
	merged, err := l.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := compile.NewWithOptions(merged, codegen.TargetX86, compile.Options{FnCache: fc})
	direct, ok := search.Optimal(c, search.Options{Workers: 2})
	if !ok {
		t.Fatal("direct search aborted")
	}
	if direct.Size != sharded.Size {
		t.Errorf("direct whole-module optimum %d, sharded %d", direct.Size, sharded.Size)
	}
	if direct.Config.Key() != sharded.Config.Key() {
		t.Errorf("direct config key differs from sharded")
	}
}

// TestOptimalSearchShardedMatchesNoShardLinkedS repeats the three-way
// oracle at full linked-s scale (456k-evaluation total space — the size
// class where the compacted-graph pruning bug actually showed). Too slow
// under the race detector; the tiny-profile test covers those builds.
func TestOptimalSearchShardedMatchesNoShardLinkedS(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("full linked-s differential is slow; covered by the tiny-profile oracle here")
	}
	l := linkedS(t)
	fc := compile.NewFnCache()
	base := SearchOptions{ShardOptions: ShardOptions{
		Target:  codegen.TargetX86,
		Compile: compile.Options{FnCache: fc},
		Workers: 2,
	}}
	sharded, ok, err := l.OptimalSearch(base)
	if err != nil || !ok {
		t.Fatalf("sharded search: ok=%v err=%v", ok, err)
	}
	noShard := base
	noShard.NoShard = true
	oracle, ok, err := l.OptimalSearch(noShard)
	if err != nil || !ok {
		t.Fatalf("no-shard search: ok=%v err=%v", ok, err)
	}
	if sharded.Size != oracle.Size || sharded.Config.Key() != oracle.Config.Key() {
		t.Errorf("linked-s: sharded %d vs no-shard %d diverged", sharded.Size, oracle.Size)
	}
	merged, err := l.Link()
	if err != nil {
		t.Fatal(err)
	}
	c := compile.NewWithOptions(merged, codegen.TargetX86, compile.Options{FnCache: fc})
	direct, ok := search.Optimal(c, search.Options{Workers: 2})
	if !ok {
		t.Fatal("direct search aborted")
	}
	if direct.Size != sharded.Size || direct.Config.Key() != sharded.Config.Key() {
		t.Errorf("direct whole-module optimum %d, sharded %d", direct.Size, sharded.Size)
	}
}

// TestOptimalSearchWorkerParity: results must be bit-identical across
// worker counts in both modes, including with pruning disabled.
func TestOptimalSearchWorkerParity(t *testing.T) {
	l := tinyLinker(t)
	var refKey string
	var refSize int
	for i, opt := range []SearchOptions{
		{ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: -1}},
		{ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: 4}},
		{ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: 1, NoShard: true}},
		// The exhaustive (NoPrune) merged variant doubles as the oracle that
		// caught a pruning-engine/compacted-graph index mismatch; the
		// sharded NoPrune path is already covered by the search package's
		// own differential tests.
		{ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: 8, NoShard: true}, NoPrune: true},
	} {
		res, ok, err := l.OptimalSearch(opt)
		if err != nil || !ok {
			t.Fatalf("variant %d: ok=%v err=%v", i, ok, err)
		}
		if i == 0 {
			refKey, refSize = res.Config.Key(), res.Size
			continue
		}
		if res.Config.Key() != refKey || res.Size != refSize {
			t.Errorf("variant %d diverged: size %d (ref %d)", i, res.Size, refSize)
		}
	}
}

func TestOptimalSearchMaxSpaceAbortsIdentically(t *testing.T) {
	l := tinyLinker(t)
	for _, noShard := range []bool{false, true} {
		res, ok, err := l.OptimalSearch(SearchOptions{
			ShardOptions: ShardOptions{Target: codegen.TargetX86, NoShard: noShard},
			MaxSpace:     2, // every component exceeds this
		})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("noShard=%v: expected space-cap abort", noShard)
		}
		if res.Config != nil {
			t.Fatalf("noShard=%v: aborted search returned a config", noShard)
		}
		capped := false
		for _, cs := range res.Components {
			capped = capped || cs.Capped
		}
		if !capped {
			t.Fatalf("noShard=%v: no component marked capped", noShard)
		}
	}
}

// TestTuneShardedMatchesNoShard: lockstep per-component tuning must
// reproduce the whole-module autotuner run for run — every round trace,
// the best and final configurations, and all sizes.
func TestTuneShardedMatchesNoShard(t *testing.T) {
	l := linkedS(t)
	for _, init := range []TuneInit{InitClean, InitOs} {
		base := TuneOptions{
			ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: 2},
			Rounds:       6,
			Init:         init,
		}
		sharded, err := l.Tune(base)
		if err != nil {
			t.Fatal(err)
		}
		noShard := base
		noShard.NoShard = true
		oracle, err := l.Tune(noShard)
		if err != nil {
			t.Fatal(err)
		}

		a, b := sharded.Result, oracle.Result
		if a.InitSize != b.InitSize {
			t.Errorf("init %d: InitSize %d vs %d", init, a.InitSize, b.InitSize)
		}
		if a.Size != b.Size || a.Config.Key() != b.Config.Key() {
			t.Errorf("init %d: best size/config differ (%d vs %d)", init, a.Size, b.Size)
		}
		if a.FinalSize != b.FinalSize || a.Final.Key() != b.Final.Key() {
			t.Errorf("init %d: final size/config differ (%d vs %d)", init, a.FinalSize, b.FinalSize)
		}
		if !reflect.DeepEqual(a.Rounds, b.Rounds) {
			t.Errorf("init %d: round traces differ:\n  sharded:  %+v\n  no-shard: %+v", init, a.Rounds, b.Rounds)
		}
		if !reflect.DeepEqual(sharded.Components, oracle.Components) {
			t.Errorf("init %d: per-component stats differ", init)
		}
	}
}

// TestTuneSessionMatchesTune pins the new incremental Session to the
// classic Tune loop on the same compiler.
func TestTuneSessionMatchesTune(t *testing.T) {
	l := linkedS(t)
	mod, err := l.Component(0)
	if err != nil {
		t.Fatal(err)
	}
	rounds := 5
	c1 := compile.New(mod, codegen.TargetX86)
	want := make([]int, 0, rounds)
	ref := autotune.Tune(c1, nil, autotune.Options{Rounds: rounds, Workers: 2})
	c2 := compile.New(mod, codegen.TargetX86)
	sess := autotune.NewSession(c2, nil, 2)
	for r := 0; r < rounds; r++ {
		tr := sess.Step()
		want = append(want, tr.Size)
		if r < len(ref.Rounds) {
			if tr.Size != ref.Rounds[r].Size || tr.Toggles != ref.Rounds[r].Toggles {
				t.Fatalf("round %d: session (size %d, toggles %d) vs Tune (%d, %d)",
					r+1, tr.Size, tr.Toggles, ref.Rounds[r].Size, ref.Rounds[r].Toggles)
			}
		}
		if sess.Converged() {
			break
		}
	}
	if sess.Size() != ref.FinalSize {
		t.Fatalf("session final %d, Tune final %d (sizes seen %v)", sess.Size(), ref.FinalSize, want)
	}
	if !sess.Config().Equal(ref.Final) {
		t.Fatal("session final config differs from Tune")
	}
}

// TestShardedSearchSharesFnCache: per-component compilers and the merged
// no-shard compiler must hit the same content-addressed entries.
func TestShardedSearchSharesFnCache(t *testing.T) {
	l := tinyLinker(t)
	fc := compile.NewFnCache()
	opts := SearchOptions{ShardOptions: ShardOptions{
		Target:  codegen.TargetX86,
		Compile: compile.Options{FnCache: fc},
		Workers: 1,
	}}
	if _, ok, err := l.OptimalSearch(opts); err != nil || !ok {
		t.Fatalf("sharded: ok=%v err=%v", ok, err)
	}
	cold := fc.Stats()
	if cold.Misses == 0 {
		t.Fatal("sharded run never touched the shared fn cache")
	}
	opts.NoShard = true
	if _, ok, err := l.OptimalSearch(opts); err != nil || !ok {
		t.Fatalf("no-shard: ok=%v err=%v", ok, err)
	}
	warm := fc.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("no-shard rerun missed %d new entries; content keys should be module-independent",
			warm.Misses-cold.Misses)
	}
}
