package link

import (
	"fmt"
	"sync"

	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/compile"
)

// Session is the incremental re-link engine: it holds a resolved multi-TU
// plan, accepts Replace edits that swap one unit's contents, and answers
// Search/Tune queries by re-solving only components whose content changed
// while replaying everything else from a content-keyed ComponentCache.
//
// This is the temporal half of the paper's §3 independence theorem. The
// sharded search (search.go) exploits component independence spatially —
// solve the pieces in parallel; the session exploits it over time — a
// component whose members, linkage, and bound call structure are unchanged
// since some earlier solve (in this session, another session, or another
// link entirely) has the same optimum, so an edit-one-TU re-search pays
// only for the edited unit's components. The -no-relink differential
// oracle — a cold New+OptimalSearch over the same units — must stay
// byte-identical; every replay shortcut here is backed by the key argument
// in key.go and re-proved by the fuzz differential.
type Session struct {
	mu      sync.Mutex
	l       *Linker
	results *ComponentCache
	noCache bool
	stats   RelinkStats
}

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Link configures the underlying linker.
	Link Options
	// Results is the component result cache; nil selects a process-wide
	// shared cache. Sharing one cache across sessions is safe and is the
	// point: keys are pure content.
	Results *ComponentCache
	// NoResultCache disables result reuse entirely: every query re-solves
	// every component (the session then only saves replanning).
	NoResultCache bool
}

// RelinkStats counts session activity.
type RelinkStats struct {
	Patches      int64 // successful Replace calls
	PlanReuses   int64 // patches whose link surface was unchanged
	PlanRebuilds int64 // patches that re-ran symbol resolution
	Searches     int64
	Tunes        int64
}

// RelinkInfo reports, for one query, how much work was replayed. It is
// cache-state-dependent — diagnostics, never part of byte-diffed output.
type RelinkInfo struct {
	ComponentsSolved   int
	ComponentsReplayed int
	ResidualSolved     int // per-TU residual groups compiled
	ResidualReplayed   int
}

// PatchReport is the outcome of one Replace.
type PatchReport struct {
	TU string
	// PlanReused reports the edit preserved the link surface (names,
	// linkage, call spellings, globals), so symbol resolution, renames,
	// site numbering, and the component partition all carry over
	// unchanged. Body-only edits — the common incremental case — land
	// here and skip replanning entirely.
	PlanReused bool
}

// CycleObjectiveError reports a cycle-aware objective requested on the
// incremental path. Cycle pricing couples components through the modelled
// i-cache (see tuneCyclesMerged), so per-component results can be neither
// cached nor replayed; the session refuses loudly instead of silently
// falling back to a whole-module run the way Linker.Tune does.
type CycleObjectiveError struct {
	Objective TuneObjective
}

func (e *CycleObjectiveError) Error() string {
	return fmt.Sprintf("link: %s objective does not run on the incremental re-link path (cycle prices are not component-separable); use a cold link", objectiveName(e.Objective))
}

func objectiveName(o TuneObjective) string {
	switch o {
	case ObjectiveSize:
		return "size"
	case ObjectiveWeighted:
		return "weighted"
	case ObjectiveCycles:
		return "cycles"
	}
	return fmt.Sprintf("objective(%d)", int(o))
}

// NewSession links the units once and returns a session ready for edits.
func NewSession(tus []TU, opts SessionOptions) (*Session, error) {
	l, err := New(tus, opts.Link)
	if err != nil {
		return nil, err
	}
	results := opts.Results
	if results == nil {
		results = defaultComponentCache
	}
	return &Session{l: l, results: results, noCache: opts.NoResultCache}, nil
}

// Plan returns the current link plan. The returned plan is replaced, never
// mutated, by Replace.
func (s *Session) Plan() *Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.plan
}

// TUs returns the canonical unit list.
func (s *Session) TUs() []TU {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.tus
}

// Stats snapshots the session counters.
func (s *Session) Stats() RelinkStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Replace swaps unit i for tu. The unit name must match — names pin the
// canonical order every plan artifact is derived from. When the edit
// preserves the link surface the existing plan is kept (only the stored
// summary advances); otherwise symbol resolution reruns over the summaries
// (streamed: the other units are not reloaded). On error the session is
// unchanged.
func (s *Session) Replace(i int, tu TU) (PatchReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.l
	if i < 0 || i >= len(l.tus) {
		return PatchReport{}, fmt.Errorf("link: Replace index %d out of range (have %d units)", i, len(l.tus))
	}
	if tu.Name != l.tus[i].Name {
		return PatchReport{}, fmt.Errorf("link: Replace cannot rename unit %q to %q", l.tus[i].Name, tu.Name)
	}
	m, err := tu.Load()
	if err != nil {
		return PatchReport{}, err
	}
	newSum := l.cache.summarize(m)
	oldTU, oldSum := l.tus[i], l.sums[i]
	rep := PatchReport{TU: tu.Name}
	l.tus[i], l.sums[i] = tu, newSum
	if sameLinkSurface(oldTU, tu, oldSum, newSum) {
		// buildPlan consumes only the link surface, so rebuilding would
		// reproduce the current plan bit for bit; skip it.
		rep.PlanReused = true
		s.stats.Patches++
		s.stats.PlanReuses++
		return rep, nil
	}
	plan, err := buildPlan(l.tus, l.sums, l.opts)
	if err != nil {
		l.tus[i], l.sums[i] = oldTU, oldSum
		return PatchReport{}, err
	}
	l.plan = plan
	s.stats.Patches++
	s.stats.PlanRebuilds++
	return rep, nil
}

// ReplaceNamed replaces the unit whose name matches tu.Name.
func (s *Session) ReplaceNamed(tu TU) (PatchReport, error) {
	s.mu.Lock()
	idx := -1
	for i := range s.l.tus {
		if s.l.tus[i].Name == tu.Name {
			idx = i
			break
		}
	}
	s.mu.Unlock()
	if idx < 0 {
		return PatchReport{}, fmt.Errorf("link: no unit named %q", tu.Name)
	}
	return s.Replace(idx, tu)
}

// sameLinkSurface reports whether two versions of a unit expose an
// identical link surface: everything buildPlan reads. Function bodies are
// free to differ — that is the incremental fast path.
func sameLinkSurface(oldTU, newTU TU, a, b *tuSummary) bool {
	if !sameStringSet(oldTU.LocalGlobals, newTU.LocalGlobals) {
		return false
	}
	if !sameStrings(a.globals, b.globals) {
		return false
	}
	if len(a.funcs) != len(b.funcs) {
		return false
	}
	for i := range a.funcs {
		fa, fb := &a.funcs[i], &b.funcs[i]
		if fa.name != fb.name || fa.exported != fb.exported || !sameStrings(fa.calls, fb.calls) {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	in := make(map[string]int, len(a))
	for _, s := range a {
		in[s]++
	}
	for _, s := range b {
		if in[s] == 0 {
			return false
		}
		in[s]--
	}
	return true
}

// Search answers an optimal search over the current unit set, re-solving
// only components absent from the result cache. Results — sizes, per-site
// configuration, per-component stats, the capped abort — are byte-identical
// to a cold Linker.OptimalSearch over the same units; Evaluations, Prune,
// and the cache counters cover live solves only (replays evaluate
// nothing). NoShard is rejected: the session's differential oracle is a
// cold full link, not the merged compiler.
func (s *Session) Search(opts SearchOptions) (SearchResult, RelinkInfo, bool, error) {
	var info RelinkInfo
	if opts.NoShard {
		return SearchResult{}, info, false, fmt.Errorf("link: session search is always sharded; use a cold Linker for the -no-shard oracle")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Searches++
	l := s.l
	p := l.plan
	res := SearchResult{Components: make([]ComponentStat, len(p.Components))}
	if capped := planSpaces(p, opts.MaxSpace, &res); capped {
		return res, info, false, nil
	}
	// Checked-mode compiles exist to re-verify the pipeline; replaying
	// around them would defeat the point, so Check bypasses the cache
	// (exactly as FnCache does).
	useCache := !s.noCache && !opts.Compile.Check
	outcomes := make([]*searchOutcome, len(p.Components))
	live := make([]*compOut, len(p.Components))
	run := func(ci int) error {
		solve := func() (any, error) {
			o, err := l.solveComponent(ci, opts)
			if err != nil {
				return nil, err
			}
			live[ci] = &o
			return &searchOutcome{
				emptySize: o.emptySize,
				size:      o.size,
				bits:      configBits(p.ComponentEdges(ci), o.cfg),
			}, nil
		}
		if !useCache {
			v, err := solve()
			if err != nil {
				return err
			}
			outcomes[ci] = v.(*searchOutcome)
			return nil
		}
		key := searchKey(componentKey(p, l.sums, ci, opts.Target))
		v, _, err := s.results.get(key, solve)
		if err != nil {
			return err
		}
		outcomes[ci] = v.(*searchOutcome)
		return nil
	}
	if err := eachComponent(len(p.Components), opts.workers(), run); err != nil {
		return res, info, false, err
	}

	residSize, err := s.residualTotal(opts.ShardOptions, useCache, &info, &res.Evaluations)
	if err != nil {
		return res, info, false, err
	}
	cfg := callgraph.NewConfig()
	res.NoInlineSize = residSize
	res.Size = residSize
	for ci, o := range outcomes {
		ccfg := bitsConfig(p.ComponentEdges(ci), o.bits)
		cfg.Merge(ccfg)
		res.NoInlineSize += o.emptySize
		res.Size += o.size
		res.Components[ci].Inlined = ccfg.InlineCount()
		res.Components[ci].SizeDelta = o.size - o.emptySize
		if lo := live[ci]; lo != nil {
			res.Evaluations += lo.evals
			res.Prune = res.Prune.Add(lo.prune)
			res.ConfigCache = res.ConfigCache.Add(lo.cc)
			res.FuncCache = res.FuncCache.Add(lo.fc)
			info.ComponentsSolved++
		} else {
			info.ComponentsReplayed++
		}
	}
	res.Config = cfg
	return res, info, true, nil
}

// residualTotal sums the clean-slate size of every unit's residual
// (edge-free) functions, one cache entry per unit. Residual functions
// compile in isolation — no incident candidate edges means no inlining in
// and every outgoing call unbound in their sub-module — so the per-unit sum
// equals the cold path's single whole-residual compile.
func (s *Session) residualTotal(opts ShardOptions, useCache bool, info *RelinkInfo, evals *int64) (int, error) {
	l := s.l
	p := l.plan
	total := 0
	for t := range l.tus {
		resid := 0
		for fi := range p.Funcs {
			if p.Funcs[fi].TU == t && p.Funcs[fi].Comp < 0 {
				resid++
			}
		}
		if resid == 0 {
			continue
		}
		t := t
		compute := func() (any, error) {
			name := fmt.Sprintf("%s#resid%03d", l.opts.moduleName(), t)
			mod, err := l.materialize(name, func(pf *PlannedFunc) bool { return pf.TU == t && pf.Comp < 0 })
			if err != nil {
				return nil, err
			}
			c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
			if opts.Configure != nil {
				opts.Configure(c)
			}
			sz := c.Size(callgraph.NewConfig())
			*evals += c.Evaluations()
			return sz, nil
		}
		if !useCache {
			v, err := compute()
			if err != nil {
				return 0, err
			}
			info.ResidualSolved++
			total += v.(int)
			continue
		}
		v, hit, err := s.results.get(residKey(p, l.sums, t, opts.Target), compute)
		if err != nil {
			return 0, err
		}
		if hit {
			info.ResidualReplayed++
		} else {
			info.ResidualSolved++
		}
		total += v.(int)
	}
	return total, nil
}

// Tune answers a lockstep sharded tuning query over the current unit set,
// replaying per-component round traces from the cache where content
// matches. Results are byte-identical to a cold Linker.Tune with the same
// options. Cycle objectives return a *CycleObjectiveError (they are not
// component-separable); NoShard is rejected as in Search.
func (s *Session) Tune(opts TuneOptions) (TuneResult, RelinkInfo, error) {
	var info RelinkInfo
	if opts.Objective != ObjectiveSize {
		return TuneResult{}, info, &CycleObjectiveError{Objective: opts.Objective}
	}
	if opts.NoShard {
		return TuneResult{}, info, fmt.Errorf("link: session tuning is always sharded; use a cold Linker for the -no-shard oracle")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Tunes++
	l := s.l
	p := l.plan
	res := TuneResult{Components: make([]ComponentStat, len(p.Components))}
	for ci := range p.Components {
		res.Components[ci] = ComponentStat{
			Index: ci,
			Funcs: len(p.Components[ci]),
			Edges: len(p.ComponentEdges(ci)),
		}
	}
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	useCache := !s.noCache && !opts.Compile.Check

	type tuneShard struct {
		edges  []PlannedEdge
		cached *tuneOutcome
		claim  *ccClaim
		record tuneOutcome
		c      *compile.Compiler
		sess   *autotune.Session
		bits   []uint64 // current labels over edges
		size   int      // current component size
	}
	shards := make([]tuneShard, len(p.Components))
	// Claims must not block: fulfillment only happens after the global
	// loop, so waiting on another in-flight tune here (or on a duplicate
	// key within this very run) could deadlock. tryClaim returns busy in
	// those cases and the component simply solves live, unrecorded.
	for ci := range shards {
		shards[ci].edges = p.ComponentEdges(ci)
		if !useCache {
			continue
		}
		key := tuneKey(componentKey(p, l.sums, ci, opts.Target), opts.Init, rounds)
		if v, hit, claim := s.results.tryClaim(key); hit {
			shards[ci].cached = v.(*tuneOutcome)
		} else {
			shards[ci].claim = claim
		}
	}
	defer func() {
		for ci := range shards {
			if shards[ci].claim != nil {
				shards[ci].claim.withdraw()
			}
		}
	}()

	build := func(ci int) error {
		sh := &shards[ci]
		if sh.cached != nil {
			sh.bits, sh.size = sh.cached.initBits, sh.cached.initSize
			return nil
		}
		mod, err := l.Component(ci)
		if err != nil {
			return err
		}
		c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
		if opts.Configure != nil {
			opts.Configure(c)
		}
		sh.c = c
		sh.sess = autotune.NewSession(c, initConfig(opts.Init, c), opts.Workers)
		sh.bits = configBits(sh.edges, sh.sess.Config())
		sh.size = sh.sess.Size()
		sh.record = tuneOutcome{initSize: sh.size, initBits: sh.bits}
		return nil
	}
	if err := eachComponent(len(shards), opts.workers(), build); err != nil {
		return res, info, err
	}
	residSize, err := s.residualTotal(opts.ShardOptions, useCache, &info, &res.Evaluations)
	if err != nil {
		return res, info, err
	}

	totalSites := len(p.Edges)
	mergedConfig := func() *callgraph.Config {
		cfg := callgraph.NewConfig()
		for ci := range shards {
			cfg.Merge(bitsConfig(shards[ci].edges, shards[ci].bits))
		}
		return cfg
	}
	baseSize := residSize
	for ci := range shards {
		baseSize += shards[ci].size
	}
	out := autotune.Result{
		Config:   mergedConfig(),
		Size:     baseSize,
		InitSize: baseSize,
	}
	for round := 1; round <= rounds; round++ {
		type roundStep struct{ size, inlined, toggles int }
		steps := make([]roundStep, len(shards))
		step := func(ci int) error {
			sh := &shards[ci]
			if sh.cached != nil {
				e := sh.cached.round(round)
				sh.bits, sh.size = e.bits, e.size
				steps[ci] = roundStep{e.size, e.inlined, e.toggles}
				return nil
			}
			tr := sh.sess.Step()
			bits := configBits(sh.edges, sh.sess.Config())
			sh.bits, sh.size = bits, tr.Size
			sh.record.rounds = append(sh.record.rounds, tuneRound{
				size: tr.Size, inlined: tr.Inlined, toggles: tr.Toggles, bits: bits,
			})
			steps[ci] = roundStep{tr.Size, tr.Inlined, tr.Toggles}
			return nil
		}
		if err := eachComponent(len(shards), opts.workers(), step); err != nil {
			return res, info, err
		}
		size, inlined, toggles := residSize, 0, 0
		for _, st := range steps {
			size += st.size
			inlined += st.inlined
			toggles += st.toggles
		}
		out.Rounds = append(out.Rounds, autotune.RoundTrace{
			Round:      round,
			Size:       size,
			Inlined:    inlined,
			NotInlined: totalSites - inlined,
			Toggles:    toggles,
		})
		next := mergedConfig()
		if size < out.Size {
			out.Config, out.Size = next.Clone(), size
		}
		out.Final, out.FinalSize = next, size
		if toggles == 0 {
			break
		}
	}
	if out.Final == nil {
		out.Final, out.FinalSize = out.Config, out.Size
	}
	for ci := range shards {
		sh := &shards[ci]
		if sh.claim != nil {
			rec := sh.record
			sh.claim.fulfill(&rec)
			sh.claim = nil
		}
		if sh.sess != nil {
			res.Evaluations += sh.c.Evaluations()
			res.ConfigCache = res.ConfigCache.Add(sh.c.ConfigCacheStats())
			res.FuncCache = res.FuncCache.Add(sh.c.FuncCacheStats())
			info.ComponentsSolved++
		} else {
			info.ComponentsReplayed++
		}
	}
	out.Evaluations = res.Evaluations
	res.Result = out
	for ci := range res.Components {
		inl := 0
		for _, e := range shards[ci].edges {
			if res.Result.Config.Inline(e.Site) {
				inl++
			}
		}
		res.Components[ci].Inlined = inl
	}
	return res, info, nil
}

// configBits packs cfg's labels over edges (ascending-site order) into a
// bitset — the plan-independent form cached results are stored in.
func configBits(edges []PlannedEdge, cfg *callgraph.Config) []uint64 {
	bits := make([]uint64, (len(edges)+63)/64)
	for i, e := range edges {
		if cfg.Inline(e.Site) {
			bits[i/64] |= 1 << (i % 64)
		}
	}
	return bits
}

// bitsConfig rebases a cached bitset onto the current plan's site IDs.
func bitsConfig(edges []PlannedEdge, bits []uint64) *callgraph.Config {
	cfg := callgraph.NewConfig()
	for i, e := range edges {
		if bits[i/64]&(1<<(i%64)) != 0 {
			cfg.Set(e.Site, true)
		}
	}
	return cfg
}
