//go:build race

package link

// See race_off_test.go.
const raceEnabled = true
