package link

import (
	"fmt"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
)

// Content keys for the component-level result cache (resultcache.go).
//
// The soundness argument mirrors FnCache's (internal/compile/fncache.go):
// a cached per-component search or tune result may be replayed for a
// component of a *different* link plan exactly when every input the solve
// depends on is pinned by the key. Those inputs are:
//
//   - The member functions' bodies. Function.Fingerprint is rename-invariant
//     and own-name-free, so structurally identical members hash equally even
//     when the linker renamed them differently (name__tuNNN suffixes differ
//     across plans). Codegen sizes, inline expansion, and DFE are all
//     name-independent, so bodies-by-fingerprint is the right granularity.
//   - The members' linked linkage. Dead-function elimination keeps exported
//     functions alive, so the post-Internalize exported bit of every member
//     is keyed even though it is not part of the body fingerprint.
//   - The bound call structure. Fingerprints stream callee *source*
//     spellings, but the linker rewrites spellings during materialization;
//     two components with fingerprint-equal members could still bind the
//     same call slot to different members (or leave it external). The key
//     therefore streams, per call slot in layout/walk order, the bound
//     callee's member ordinal + 1, or 0 for unbound (external) calls. A
//     bound callee is always a member of the same component — edges are
//     what define component membership — so ordinals are a complete
//     encoding. Site IDs are deliberately NOT keyed: the search is
//     label-equivariant in site numbering (the cached configuration is
//     stored as bits over the component's edges in ascending-site order and
//     rebased onto the replaying plan's site IDs).
//   - The codegen target and the compile pipeline version (via the schema
//     string), exactly as FnCache pins them.
//
// Collisions: keys are 128-bit ir.Hasher sums, the same accept-the-risk
// stance as the rest of the content-addressed caches; the -no-relink cold
// oracle and the differential fuzzer are the safety net.
const relinkKeyVersion = 1

var relinkSchema = fmt.Sprintf("optinline/linkcache/key=%d/pipeline=%d",
	relinkKeyVersion, compile.PipelineVersion)

// ResultKey is a 128-bit content key into a ComponentCache.
type ResultKey struct{ Hi, Lo uint64 }

// componentKey chains the content of one edge-bearing component: schema,
// target, member count, and per member (layout order) its body fingerprint,
// linked linkage, call-slot count, and the member ordinal each call slot
// binds to (0 = external).
func componentKey(p *Plan, sums []*tuSummary, ci int, target codegen.Target) ResultKey {
	members := p.Components[ci]
	local := make(map[int]int, len(members)) // Funcs index -> member ordinal
	for i, fi := range members {
		local[fi] = i
	}
	// Bound target per call slot, indexed by site. Sites of a member's calls
	// are [SiteID, SiteID+NCalls); edges carry the binding.
	bound := make(map[int]int, len(members))
	for _, e := range p.ComponentEdges(ci) {
		bound[e.Site] = local[e.Callee]
	}
	h := ir.NewHasher()
	h.Str(relinkSchema)
	h.Byte(byte(target))
	h.Int(len(members))
	for _, fi := range members {
		pf := &p.Funcs[fi]
		h.Uint64(sums[pf.TU].funcs[sums[pf.TU].byName[pf.Src]].fp)
		h.Byte(boolByte(pf.Exported))
		h.Int(pf.NCalls)
		for k := 0; k < pf.NCalls; k++ {
			if ord, ok := bound[pf.SiteID+k]; ok {
				h.Int(ord + 1)
			} else {
				h.Int(0)
			}
		}
	}
	hi, lo := h.Sum128()
	return ResultKey{Hi: hi, Lo: lo}
}

// searchKey derives the optimal-search cache key from a component key.
// Workers, NoPrune, and scheduling do not enter: the search result is
// oracle-guaranteed independent of them.
func searchKey(base ResultKey) ResultKey {
	h := ir.NewHasher()
	h.Str("search")
	h.Uint64(base.Hi)
	h.Uint64(base.Lo)
	hi, lo := h.Sum128()
	return ResultKey{Hi: hi, Lo: lo}
}

// tuneKey derives the lockstep-tuning cache key: the starting configuration
// and the round bound both shape the recorded trace, so both are keyed.
func tuneKey(base ResultKey, init TuneInit, rounds int) ResultKey {
	h := ir.NewHasher()
	h.Str("tune")
	h.Uint64(base.Hi)
	h.Uint64(base.Lo)
	h.Byte(byte(init))
	h.Int(rounds)
	hi, lo := h.Sum128()
	return ResultKey{Hi: hi, Lo: lo}
}

// residKey chains the residual (edge-free) functions of one TU: schema,
// target, count, and per function (layout order) fingerprint and linkage.
// Residual functions have no incident candidate edge, so each compiles in
// isolation — no in-edges to inline it away, every outgoing call unbound —
// which is why a per-TU sum replays a whole-residual-module compile exactly
// (the fuzz differential re-proves this equality on every corpus).
func residKey(p *Plan, sums []*tuSummary, t int, target codegen.Target) ResultKey {
	h := ir.NewHasher()
	h.Str(relinkSchema)
	h.Str("resid")
	h.Byte(byte(target))
	n := 0
	for fi := range p.Funcs {
		pf := &p.Funcs[fi]
		if pf.TU != t || pf.Comp >= 0 {
			continue
		}
		n++
		h.Uint64(sums[pf.TU].funcs[sums[pf.TU].byName[pf.Src]].fp)
		h.Byte(boolByte(pf.Exported))
	}
	h.Int(n)
	hi, lo := h.Sum128()
	return ResultKey{Hi: hi, Lo: lo}
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}
