package link

import (
	"reflect"
	"testing"

	"optinline/internal/codegen"
)

// cycleTuneOpts is the shared session shape for the cycle-objective tests:
// tu000_main is the profiled root of the tiny linked corpus.
func cycleTuneOpts() TuneOptions {
	return TuneOptions{
		ShardOptions: ShardOptions{Target: codegen.TargetX86, Workers: 2},
		Rounds:       4,
		Objective:    ObjectiveWeighted,
		Lambda:       0.1,
		Entry:        "tu000_main",
		Args:         []int64{7},
		Fuel:         20_000_000,
		CacheBytes:   512,
	}
}

// TestTuneCycleObjectiveIgnoresShardMode: cycle objectives always run on the
// merged module (the i-cache couples components), so -no-shard must change
// nothing at all.
func TestTuneCycleObjectiveIgnoresShardMode(t *testing.T) {
	sharded, err := tinyLinker(t).Tune(cycleTuneOpts())
	if err != nil {
		t.Fatal(err)
	}
	noShard := cycleTuneOpts()
	noShard.NoShard = true
	merged, err := tinyLinker(t).Tune(noShard)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sharded.Result, merged.Result
	if a.Size != b.Size || a.Cycles != b.Cycles || a.Config.Key() != b.Config.Key() {
		t.Fatalf("shard modes diverged: (%d,%d) vs (%d,%d)", a.Size, a.Cycles, b.Size, b.Cycles)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Fatalf("round traces differ:\n  %+v\n  %+v", a.Rounds, b.Rounds)
	}
}

// TestTuneCycleObjectiveDeltaOracle: the linked weighted session must be
// byte-identical with the cycle pricer's incremental engine on and off.
func TestTuneCycleObjectiveDeltaOracle(t *testing.T) {
	delta, err := tinyLinker(t).Tune(cycleTuneOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := cycleTuneOpts()
	opts.NoCycleDelta = true
	full, err := tinyLinker(t).Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := delta.Result, full.Result
	if a.Size != b.Size || a.Cycles != b.Cycles || a.Config.Key() != b.Config.Key() {
		t.Fatalf("delta vs oracle diverged: (%d,%d) vs (%d,%d)", a.Size, a.Cycles, b.Size, b.Cycles)
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Fatalf("round traces differ:\n  %+v\n  %+v", a.Rounds, b.Rounds)
	}
	if delta.Cycle.Repricings == 0 {
		t.Fatalf("incremental path never engaged: %+v", delta.Cycle)
	}
	if full.Cycle.Repricings != 0 || full.Cycle.FullEvals == 0 {
		t.Fatalf("oracle priced incrementally: %+v", full.Cycle)
	}
	if a.Cycles <= 0 {
		t.Fatalf("no cycles recorded: %+v", a)
	}
}
