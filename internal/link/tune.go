package link

import (
	"optinline/internal/autotune"
	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/stats"
)

// TuneInit selects the tuning starting point.
type TuneInit int

const (
	// InitClean starts from the all-no-inline configuration.
	InitClean TuneInit = iota
	// InitOs starts from the -Os heuristic configuration. The heuristic is
	// component-local (estimates and caller counts propagate only along
	// candidate edges), so computing it per component sub-module or on the
	// merged module yields the same labels — both modes start identically.
	InitOs
)

// TuneOptions configures Tune.
type TuneOptions struct {
	ShardOptions
	// Rounds bounds the number of global tuning rounds; 0 means 1.
	Rounds int
	// Init selects the starting configuration.
	Init TuneInit
	// Objective selects what the session minimizes. Non-size objectives
	// price cycles against a profile collected by interpreting the linked
	// module's Entry with Args, and always run on the merged module —
	// the i-cache couples components, so cycle prices are not
	// component-separable (see tuneCyclesMerged); NoShard is ignored.
	Objective TuneObjective
	// Lambda weighs cycles against bytes for ObjectiveWeighted.
	Lambda float64
	// Entry names the profiled root for cycle objectives; "" means "entry".
	Entry string
	// Args are the profiled root's arguments.
	Args []int64
	// Fuel bounds the profiling interpretation; 0 uses the interpreter
	// default.
	Fuel int64
	// CacheBytes sets the modelled i-cache capacity; 0 uses the
	// interpreter default.
	CacheBytes int
	// NoCycleDelta forces the cycle pricer's whole-module oracle
	// (differential; results are byte-identical).
	NoCycleDelta bool
}

// TuneResult is the outcome of a cross-module tuning session.
type TuneResult struct {
	Components []ComponentStat
	// Result aggregates the session exactly as a whole-module
	// autotune.Tune over the linked module reports it: merged per-round
	// traces, best/final configurations and sizes over planned site IDs.
	Result autotune.Result

	// Diagnostics (mode-dependent; stderr only).
	Evaluations int64
	ConfigCache stats.CacheStats
	FuncCache   stats.CacheStats
	// Cycle reports the cycle pricer's counters for cycle-aware sessions.
	Cycle compile.CyclePricerStats
}

// Tune runs the paper's local autotuner over the linked module, sharded by
// call-graph component: one tuning session per component, all stepped in
// lockstep global rounds (a round of the whole-module tuner IS an
// independent round per component — each probe toggles one site against the
// shared base, and a toggle's size effect is confined to its component).
// Converged components replay their fixpoint for free while the rest keep
// stepping. With NoShard the same session runs as one whole-module
// autotune.Tune on the merged compiler; traces, configurations, and sizes
// are identical either way.
func (l *Linker) Tune(opts TuneOptions) (TuneResult, error) {
	p := l.plan
	res := TuneResult{Components: make([]ComponentStat, len(p.Components))}
	for ci := range p.Components {
		res.Components[ci] = ComponentStat{
			Index: ci,
			Funcs: len(p.Components[ci]),
			Edges: len(p.ComponentEdges(ci)),
		}
	}
	var err error
	switch {
	case opts.Objective != ObjectiveSize:
		err = l.tuneCyclesMerged(opts, &res)
	case opts.NoShard:
		err = l.tuneMerged(opts, &res)
	default:
		err = l.tuneSharded(opts, &res)
	}
	if err != nil {
		return res, err
	}
	for ci := range res.Components {
		n := 0
		for _, e := range p.ComponentEdges(ci) {
			if res.Result.Config.Inline(e.Site) {
				n++
			}
		}
		res.Components[ci].Inlined = n
	}
	return res, nil
}

func initConfig(kind TuneInit, c *compile.Compiler) *callgraph.Config {
	if kind == InitOs {
		return heuristic.OsConfig(c.Module(), c.Graph())
	}
	return callgraph.NewConfig()
}

// tuneSharded runs one autotune.Session per component in lockstep rounds.
func (l *Linker) tuneSharded(opts TuneOptions, res *TuneResult) error {
	p := l.plan
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	type shard struct {
		c    *compile.Compiler
		sess *autotune.Session
	}
	shards := make([]shard, len(p.Components))
	build := func(ci int) error {
		mod, err := l.Component(ci)
		if err != nil {
			return err
		}
		c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
		if opts.Configure != nil {
			opts.Configure(c)
		}
		shards[ci] = shard{c: c, sess: autotune.NewSession(c, initConfig(opts.Init, c), opts.Workers)}
		return nil
	}
	if err := eachComponent(len(p.Components), opts.workers(), build); err != nil {
		return err
	}
	residSize, residEvals, err := l.residualSize(opts.ShardOptions)
	if err != nil {
		return err
	}

	totalSites := len(p.Edges)
	mergedConfig := func() *callgraph.Config {
		cfg := callgraph.NewConfig()
		for _, s := range shards {
			cfg.Merge(s.sess.Config())
		}
		return cfg
	}
	baseSize := residSize
	for _, s := range shards {
		baseSize += s.sess.Size()
	}
	out := autotune.Result{
		Config:   mergedConfig(),
		Size:     baseSize,
		InitSize: baseSize,
	}
	for round := 1; round <= rounds; round++ {
		// Step every component; converged sessions replay their fixpoint
		// without compiling (see autotune.Session.Step), so this stays a
		// faithful — and cheap — image of the whole-module round.
		size, inlined, toggles := residSize, 0, 0
		traces := make([]autotune.RoundTrace, len(shards))
		step := func(ci int) error {
			traces[ci] = shards[ci].sess.Step()
			return nil
		}
		if err := eachComponent(len(shards), opts.workers(), step); err != nil {
			return err
		}
		for _, tr := range traces {
			size += tr.Size
			inlined += tr.Inlined
			toggles += tr.Toggles
		}
		out.Rounds = append(out.Rounds, autotune.RoundTrace{
			Round:      round,
			Size:       size,
			Inlined:    inlined,
			NotInlined: totalSites - inlined,
			Toggles:    toggles,
		})
		next := mergedConfig()
		if size < out.Size {
			out.Config, out.Size = next.Clone(), size
		}
		out.Final, out.FinalSize = next, size
		if toggles == 0 {
			break
		}
	}
	if out.Final == nil {
		out.Final, out.FinalSize = out.Config, out.Size
	}
	res.Evaluations = residEvals
	for _, s := range shards {
		res.Evaluations += s.c.Evaluations()
		res.ConfigCache = res.ConfigCache.Add(s.c.ConfigCacheStats())
		res.FuncCache = res.FuncCache.Add(s.c.FuncCacheStats())
	}
	out.Evaluations = res.Evaluations
	res.Result = out
	return nil
}

// tuneMerged is the -no-shard oracle: a plain whole-module tuning session
// on the linked module.
func (l *Linker) tuneMerged(opts TuneOptions, res *TuneResult) error {
	mod, err := l.Link()
	if err != nil {
		return err
	}
	c := compile.NewWithOptions(mod, opts.Target, opts.Compile)
	if opts.Configure != nil {
		opts.Configure(c)
	}
	res.Result = autotune.Tune(c, initConfig(opts.Init, c), autotune.Options{
		Rounds:  opts.Rounds,
		Workers: opts.Workers,
	})
	res.Evaluations = c.Evaluations()
	res.ConfigCache = c.ConfigCacheStats()
	res.FuncCache = c.FuncCacheStats()
	return nil
}
