package link

import (
	"sync"
	"sync/atomic"

	"optinline/internal/ir"
)

// fnSummary is everything the link plan needs to know about one function
// without holding its body: its identity, linkage, and the ordered list of
// call targets (one entry per OpCall in block/instruction walk order — the
// same order AssignSites numbers call sites in, which is what lets the plan
// renumber sites without materializing the merged module).
type fnSummary struct {
	name     string
	exported bool
	fp       uint64   // ir.Function.Fingerprint (own-name-free)
	calls    []string // callee name per OpCall, walk order
	globals  []string // distinct global names referenced, first-use order
}

// tuSummary is the link-relevant summary of one translation unit.
type tuSummary struct {
	modName string
	fp      uint64 // ir.Module.Fingerprint (site- and name-sensitive)
	globals []string
	funcs   []fnSummary
	byName  map[string]int // function name -> index in funcs
}

// SummaryCache caches per-TU link summaries by module content and shares
// per-function call lists by function content, following the pattern of the
// interprocedural summary cache (internal/analysis/interproc): cache entries
// are keyed by ir.Fingerprint content keys, so structurally identical inputs
// — the same TU linked again, or structural twin functions anywhere in a
// corpus — summarize once. Summarization is a pure function of the module,
// so concurrent duplicate computation is benign; the cache trades the
// single-flight machinery of the compile caches for simplicity because a
// summary costs one walk of the IR, not a compilation.
type SummaryCache struct {
	mu   sync.Mutex
	mods map[uint64]*tuSummary
	fns  map[uint64]fnShape // Function.Fingerprint -> shared shape

	hits   atomic.Int64
	misses atomic.Int64
}

// NewSummaryCache returns an empty cache.
func NewSummaryCache() *SummaryCache {
	return &SummaryCache{
		mods: make(map[uint64]*tuSummary),
		fns:  make(map[uint64]fnShape),
	}
}

// defaultSummaries is the package-wide cache used when Options.Summaries is
// nil, so repeated links of the same TUs (sharded vs -no-shard oracle runs,
// benchmarks) summarize each unit once per process.
var defaultSummaries = NewSummaryCache()

// Hits and Misses report module-level cache traffic.
func (c *SummaryCache) Hits() int64   { return c.hits.Load() }
func (c *SummaryCache) Misses() int64 { return c.misses.Load() }

// summarize returns the content-cached summary of m.
func (c *SummaryCache) summarize(m *ir.Module) *tuSummary {
	key := m.Fingerprint()
	c.mu.Lock()
	if s, ok := c.mods[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return s
	}
	c.mu.Unlock()
	c.misses.Add(1)
	s := c.build(m, key)
	c.mu.Lock()
	c.mods[key] = s
	c.mu.Unlock()
	return s
}

// fnShape is the content-shared part of a function summary: equal
// Function.Fingerprint values imply equal opcode structure including callee
// and global name sequences, so structural twins share one shape.
type fnShape struct {
	calls   []string
	globals []string
}

// build walks the module once. Per-function call and global lists are
// shared through the function-level content map: Function.Fingerprint
// streams callee and global names along with the opcode structure, so equal
// fingerprints imply equal shapes.
func (c *SummaryCache) build(m *ir.Module, key uint64) *tuSummary {
	s := &tuSummary{
		modName: m.Name,
		fp:      key,
		globals: append([]string(nil), m.Globals...),
		funcs:   make([]fnSummary, 0, len(m.Funcs)),
		byName:  make(map[string]int, len(m.Funcs)),
	}
	for _, f := range m.Funcs {
		ffp := f.Fingerprint()
		c.mu.Lock()
		shape, cached := c.fns[ffp]
		c.mu.Unlock()
		if !cached {
			shape.calls, shape.globals = walkFunc(f)
			c.mu.Lock()
			c.fns[ffp] = shape
			c.mu.Unlock()
		}
		s.byName[f.Name] = len(s.funcs)
		s.funcs = append(s.funcs, fnSummary{
			name:     f.Name,
			exported: f.Exported,
			fp:       ffp,
			calls:    shape.calls,
			globals:  shape.globals,
		})
	}
	return s
}

// walkFunc extracts the ordered callee list and the distinct referenced
// globals of one function.
func walkFunc(f *ir.Function) (calls, globals []string) {
	seenG := map[string]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				calls = append(calls, in.Callee)
			case ir.OpLoadG, ir.OpStoreG:
				if !seenG[in.Global] {
					seenG[in.Global] = true
					globals = append(globals, in.Global)
				}
			}
		}
	}
	return calls, globals
}
