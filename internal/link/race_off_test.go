//go:build !race

package link

// raceEnabled reports whether the race detector is compiled in. The
// full-size linked-s differential (three complete exact searches) is too
// slow under the detector's ~10x overhead; the tiny-profile oracles cover
// the same code paths there.
const raceEnabled = false
