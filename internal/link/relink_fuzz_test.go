package link

import (
	"fmt"
	"strings"
	"testing"
)

// formatSearchReport renders a search result the way inlinesearch's linked
// mode prints it on stdout — every mode-independent field in one string —
// so a single compare proves the byte-identity the -relink/-no-relink CLI
// differential promises.
func formatSearchReport(p *Plan, res SearchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "linked %d TUs: %d functions, %d inlinable call sites (%d cross-TU, %d locals renamed, %d calls stay external)\n",
		len(p.TUs), len(p.Funcs), len(p.Edges), p.CrossTU, p.Renamed, p.ExternalCalls)
	fmt.Fprintf(&b, "components: %d, recursive space %d evaluations total\n", len(res.Components), res.SpaceTotal)
	for _, cs := range res.Components {
		fmt.Fprintf(&b, "  component %2d: %3d funcs, %3d sites, space %8d, inlined %3d, delta %+d bytes\n",
			cs.Index, cs.Funcs, cs.Edges, cs.Space, cs.Inlined, cs.SizeDelta)
	}
	fmt.Fprintf(&b, "\nno inlining:    %6d bytes\n", res.NoInlineSize)
	fmt.Fprintf(&b, "optimal:        %6d bytes, inlining %d of %d sites\n", res.Size, res.Config.InlineCount(), len(p.Edges))
	fmt.Fprintf(&b, "optimal inline sites: %v\n", res.Config.InlineSites())
	return b.String()
}

// formatTuneReport does the same for a tuning result.
func formatTuneReport(p *Plan, res TuneResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "init %d bytes\n", res.Result.InitSize)
	for _, r := range res.Result.Rounds {
		fmt.Fprintf(&b, "  round %d: %d bytes, %d inlined / %d not, %d toggles\n", r.Round, r.Size, r.Inlined, r.NotInlined, r.Toggles)
	}
	fmt.Fprintf(&b, "  best: %d bytes, inlining %d of %d sites\n", res.Result.Size, res.Result.Config.InlineCount(), len(p.Edges))
	for _, cs := range res.Components {
		fmt.Fprintf(&b, "    component %2d: %3d funcs, %3d sites, inlined %3d\n", cs.Index, cs.Funcs, cs.Edges, cs.Inlined)
	}
	fmt.Fprintf(&b, "final: %d bytes, inlining %d of %d sites (sites %v)\n",
		res.Result.FinalSize, res.Result.Final.InlineCount(), len(p.Edges), res.Result.Final.InlineSites())
	return b.String()
}

// relinkDifferential replays a fuzz-chosen TU-edit script through a warm
// Session and, after every edit, cross-checks the incremental search (at
// jobs 1/2/8) — and periodically the incremental tune — against a cold
// from-scratch link of the same contents: identical sizes, config keys,
// per-component stats, and rendered stdout. This is the executable form of
// the cache-key soundness argument in key.go.
func relinkDifferential(t *testing.T, data []byte) {
	if len(data) < 2 {
		t.Skip("need at least one (tu, seed) pair")
	}
	if len(data) > 8 {
		data = data[:8] // bound work per execution
	}
	fx := newRelinkFixture(t)
	sess := fx.session(t)
	for step := 0; step+1 < len(data); step += 2 {
		tu := int(data[step]) % len(fx.mods)
		seed := int(data[step+1])
		prev := fx.mods[tu]
		patched := fx.patchTU(tu, seed)
		if _, err := sess.ReplaceNamed(patched); err != nil {
			// The cold oracle must reject the same contents for the same
			// reason; the session must have rolled back.
			if _, coldErr := New(fx.tus(), fx.linkOptions()); coldErr == nil {
				t.Fatalf("step %d: session rejected patch (%v) but cold link accepts", step, err)
			}
			fx.mods[tu] = prev
			continue
		}

		coldLinker, err := New(fx.tus(), fx.linkOptions())
		if err != nil {
			t.Fatalf("step %d: cold link: %v", step, err)
		}
		cold, coldOK, err := coldLinker.OptimalSearch(fx.searchOptions(1))
		if err != nil {
			t.Fatalf("step %d: cold search: %v", step, err)
		}
		coldReport := ""
		if coldOK {
			coldReport = formatSearchReport(coldLinker.Plan(), cold)
		}
		for _, jobs := range []int{1, 2, 8} {
			warm, _, warmOK, err := sess.Search(fx.searchOptions(jobs))
			if err != nil {
				t.Fatalf("step %d jobs %d: relink search: %v", step, jobs, err)
			}
			if warmOK != coldOK {
				t.Fatalf("step %d jobs %d: capped disagreement: relink ok=%v, cold ok=%v", step, jobs, warmOK, coldOK)
			}
			if !coldOK {
				continue
			}
			if got := formatSearchReport(sess.Plan(), warm); got != coldReport {
				t.Fatalf("step %d jobs %d: relink / cold stdout differs:\n--- relink ---\n%s--- cold ---\n%s", step, jobs, got, coldReport)
			}
		}
		if seed%5 == 0 {
			coldTune, err := coldLinker.Tune(fx.tuneOptions(1, 2, InitClean))
			if err != nil {
				t.Fatalf("step %d: cold tune: %v", step, err)
			}
			warmTune, _, err := sess.Tune(fx.tuneOptions(2, 2, InitClean))
			if err != nil {
				t.Fatalf("step %d: relink tune: %v", step, err)
			}
			if got, want := formatTuneReport(sess.Plan(), warmTune), formatTuneReport(coldLinker.Plan(), coldTune); got != want {
				t.Fatalf("step %d: relink / cold tune stdout differs:\n--- relink ---\n%s--- cold ---\n%s", step, got, want)
			}
		}
	}
}

// FuzzRelinkDifferential is the seed-corpus form of the satellite
// requirement: random TU-edit scripts, relink == cold link, every worker
// count. The seeds cover every mutation kind (const bump, local rename,
// export flip), repeat edits of one unit, round-trips that restore earlier
// content (exercising cache replay of formerly-dirty components), and a
// tune step (seed byte 0, 5, ...).
func FuzzRelinkDifferential(f *testing.F) {
	f.Add([]byte{1, 0, 2, 1, 0, 2})       // one edit of each kind
	f.Add([]byte{1, 12, 1, 12})           // same edit twice: second is a no-op patch
	f.Add([]byte{0, 5, 3, 7, 0, 9, 3, 4}) // interleaved edits, tune step at seed 5
	f.Add([]byte{2, 3, 2, 6, 2, 0})       // pile-up on one unit ending in a tune
	f.Add([]byte{255, 254})               // out-of-range unit byte wraps
	f.Fuzz(relinkDifferential)
}
