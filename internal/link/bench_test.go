package link

import (
	"runtime"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/workload"
)

// benchLinker builds a fresh linker over the named linked profile.
func benchLinker(b *testing.B, profile string) *Linker {
	b.Helper()
	lp, ok := workload.LinkedProfileByName(profile)
	if !ok {
		b.Fatalf("profile %s missing", profile)
	}
	l, err := New(CorpusTUs(workload.GenerateLinked(lp)), Options{})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkLinkedSearchShardedVsNoShard times the full exact search over
// the linked-s mega-module in both modes: per-component shards (each
// component gets its own compiler and the results merge) versus the
// -no-shard oracle (one compiler over the materialized merged module,
// components still solved independently but against the whole-module
// pruning engine). Results are byte-identical by test; this measures the
// wall-clock and cache-pressure difference. On a 1-CPU host the sharded
// win is locality (smaller modules to clone and compile), not parallelism.
func BenchmarkLinkedSearchShardedVsNoShard(b *testing.B) {
	l := benchLinker(b, "linked-s")
	for _, mode := range []struct {
		name    string
		noShard bool
	}{{"sharded", false}, {"no-shard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, ok, err := l.OptimalSearch(SearchOptions{ShardOptions: ShardOptions{
					Target:  codegen.TargetX86,
					Compile: compile.Options{FnCache: compile.NewFnCache()},
					NoShard: mode.noShard,
				}})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
				if res.Size == 0 {
					b.Fatal("degenerate optimum")
				}
			}
		})
	}
}

// BenchmarkLinkedTuneShardedVsNoShard times a fixed-round autotuning
// session over the linked-m module in both modes. Traces are identical by
// test (TestTuneShardedMatchesNoShard); this measures session cost.
func BenchmarkLinkedTuneShardedVsNoShard(b *testing.B) {
	l := benchLinker(b, "linked-m")
	for _, mode := range []struct {
		name    string
		noShard bool
	}{{"sharded", false}, {"no-shard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := l.Tune(TuneOptions{
					ShardOptions: ShardOptions{
						Target:  codegen.TargetX86,
						Compile: compile.Options{FnCache: compile.NewFnCache()},
						NoShard: mode.noShard,
					},
					Rounds: 2,
					Init:   InitOs,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Result.FinalSize == 0 {
					b.Fatal("degenerate tune")
				}
			}
		})
	}
}

// BenchmarkLinkedPlanBuildScale builds the link plan (symbol resolution,
// renaming, cross-TU binding, and the streamed summary-based call graph)
// for every linked profile and reports, per profile, the live heap the
// plan retains beyond the input TUs versus what materializing the merged
// module costs. The plan's retained bytes per call-graph edge should stay
// roughly flat from linked-s to linked-x30 while the merged module grows
// with total code size — that gap is the point of the streamed build.
func BenchmarkLinkedPlanBuildScale(b *testing.B) {
	for _, lp := range workload.LinkedProfiles() {
		b.Run(lp.Name, func(b *testing.B) {
			tus := CorpusTUs(workload.GenerateLinked(lp))
			var planRetained, linkRetained uint64
			var edges int
			for i := 0; i < b.N; i++ {
				base := liveHeap()
				l, err := New(tus, Options{})
				if err != nil {
					b.Fatal(err)
				}
				afterPlan := liveHeap()
				merged, err := l.Link()
				if err != nil {
					b.Fatal(err)
				}
				afterLink := liveHeap()
				edges = len(l.Plan().Edges)
				planRetained = heapDelta(base, afterPlan)
				linkRetained = heapDelta(afterPlan, afterLink)
				runtime.KeepAlive(merged)
			}
			b.ReportMetric(float64(edges), "edges")
			b.ReportMetric(float64(planRetained), "plan-B")
			b.ReportMetric(float64(linkRetained), "merge-B")
			if edges > 0 {
				b.ReportMetric(float64(planRetained)/float64(edges), "plan-B/edge")
			}
		})
	}
}

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func heapDelta(before, after uint64) uint64 {
	if after < before {
		return 0
	}
	return after - before
}

// BenchmarkLinkedScaleStats is not a timing benchmark: one iteration
// prints the scale proof for the mega-profiles (total inlinable sites vs
// the 600-edge sqlite-amalgamation unit, the largest pre-existing corpus
// module). Kept as a benchmark so it rides the -bench smoke in ci.sh.
func BenchmarkLinkedScaleStats(b *testing.B) {
	for _, name := range []string{"linked-x10", "linked-x30"} {
		b.Run(name, func(b *testing.B) {
			var l *Linker
			for i := 0; i < b.N; i++ {
				l = benchLinker(b, name)
			}
			p := l.Plan()
			b.ReportMetric(float64(len(p.Funcs)), "funcs")
			b.ReportMetric(float64(len(p.Edges)), "sites")
			b.ReportMetric(float64(len(p.Edges))/600.0, "x-sqlite")
			b.Logf("%s: %d TUs, %d funcs, %d sites (%d cross-TU)",
				name, len(p.TUs), len(p.Funcs), len(p.Edges), p.CrossTU)
		})
	}
}
