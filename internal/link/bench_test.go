package link

import (
	"fmt"
	"runtime"
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/workload"
)

// benchLinker builds a fresh linker over the named linked profile.
func benchLinker(b *testing.B, profile string) *Linker {
	b.Helper()
	lp, ok := workload.LinkedProfileByName(profile)
	if !ok {
		b.Fatalf("profile %s missing", profile)
	}
	l, err := New(CorpusTUs(workload.GenerateLinked(lp)), Options{})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkLinkedSearchShardedVsNoShard times the full exact search over
// the linked-s mega-module in both modes: per-component shards (each
// component gets its own compiler and the results merge) versus the
// -no-shard oracle (one compiler over the materialized merged module,
// components still solved independently but against the whole-module
// pruning engine). Results are byte-identical by test; this measures the
// wall-clock and cache-pressure difference. On a 1-CPU host the sharded
// win is locality (smaller modules to clone and compile), not parallelism.
func BenchmarkLinkedSearchShardedVsNoShard(b *testing.B) {
	l := benchLinker(b, "linked-s")
	for _, mode := range []struct {
		name    string
		noShard bool
	}{{"sharded", false}, {"no-shard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, ok, err := l.OptimalSearch(SearchOptions{ShardOptions: ShardOptions{
					Target:  codegen.TargetX86,
					Compile: compile.Options{FnCache: compile.NewFnCache()},
					NoShard: mode.noShard,
				}})
				if err != nil || !ok {
					b.Fatalf("ok=%v err=%v", ok, err)
				}
				if res.Size == 0 {
					b.Fatal("degenerate optimum")
				}
			}
		})
	}
}

// BenchmarkLinkedTuneShardedVsNoShard times a fixed-round autotuning
// session over the linked-m module in both modes. Traces are identical by
// test (TestTuneShardedMatchesNoShard); this measures session cost.
func BenchmarkLinkedTuneShardedVsNoShard(b *testing.B) {
	l := benchLinker(b, "linked-m")
	for _, mode := range []struct {
		name    string
		noShard bool
	}{{"sharded", false}, {"no-shard", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := l.Tune(TuneOptions{
					ShardOptions: ShardOptions{
						Target:  codegen.TargetX86,
						Compile: compile.Options{FnCache: compile.NewFnCache()},
						NoShard: mode.noShard,
					},
					Rounds: 2,
					Init:   InitOs,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Result.FinalSize == 0 {
					b.Fatal("degenerate tune")
				}
			}
		})
	}
}

// BenchmarkLinkedPlanBuildScale builds the link plan (symbol resolution,
// renaming, cross-TU binding, and the streamed summary-based call graph)
// for every linked profile and reports, per profile, the live heap the
// plan retains beyond the input TUs versus what materializing the merged
// module costs. The plan's retained bytes per call-graph edge should stay
// roughly flat from linked-s to linked-x30 while the merged module grows
// with total code size — that gap is the point of the streamed build.
func BenchmarkLinkedPlanBuildScale(b *testing.B) {
	for _, lp := range workload.LinkedProfiles() {
		b.Run(lp.Name, func(b *testing.B) {
			tus := CorpusTUs(workload.GenerateLinked(lp))
			var planRetained, linkRetained uint64
			var edges int
			for i := 0; i < b.N; i++ {
				base := liveHeap()
				l, err := New(tus, Options{})
				if err != nil {
					b.Fatal(err)
				}
				afterPlan := liveHeap()
				merged, err := l.Link()
				if err != nil {
					b.Fatal(err)
				}
				afterLink := liveHeap()
				edges = len(l.Plan().Edges)
				planRetained = heapDelta(base, afterPlan)
				linkRetained = heapDelta(afterPlan, afterLink)
				runtime.KeepAlive(merged)
			}
			b.ReportMetric(float64(edges), "edges")
			b.ReportMetric(float64(planRetained), "plan-B")
			b.ReportMetric(float64(linkRetained), "merge-B")
			if edges > 0 {
				b.ReportMetric(float64(planRetained)/float64(edges), "plan-B/edge")
			}
		})
	}
}

// BenchmarkRelinkEditOneTU is the headline incremental re-link
// measurement: after editing one translation unit, a warm Session
// re-solves only the dirty component and replays every other component's
// cached result, while the cold baseline (what a batch CLI invocation
// costs) re-links and re-solves the whole corpus. Each iteration applies a
// fresh body-only edit to TU 0 (seed 3(i+1), always MutateLinkedTU kind 0,
// so the plan is reused and exactly one component's content key changes)
// and then re-queries. linked-s runs the exact search; linked-x10 — ten
// components, so ~1/10 of the work should survive an edit — runs the
// lockstep autotuner, the only tractable optimizer at 6400 sites.
// "solved/op" and "replayed/op" report the dirty-component accounting.
// Warm and cold answers are byte-identical by the -no-relink differential
// (TestSession*, FuzzRelinkDifferential); this measures only time.
func BenchmarkRelinkEditOneTU(b *testing.B) {
	cases := []struct {
		profile string
		tune    bool
		rounds  int
	}{
		{profile: "linked-s", tune: false},
		{profile: "linked-x10", tune: true, rounds: 2},
	}
	for _, tc := range cases {
		lp, ok := workload.LinkedProfileByName(tc.profile)
		if !ok {
			b.Fatalf("profile %s missing", tc.profile)
		}
		bench := workload.GenerateLinked(lp)
		tus := CorpusTUs(bench)
		editedTU := func(iter int) TU {
			m := workload.MutateLinkedTU(bench.Files[0].Module, 3*(iter+1))
			tu := ModuleTU(bench.Files[0].Name, m)
			tu.LocalGlobals = []string{workload.LinkedScratchGlobal}
			return tu
		}
		shard := func(fnc *compile.FnCache, workers int) ShardOptions {
			return ShardOptions{
				Target:  codegen.TargetX86,
				Compile: compile.Options{FnCache: fnc},
				Workers: workers,
			}
		}
		mode := "search"
		if tc.tune {
			mode = "tune"
		}

		b.Run(tc.profile+"/"+mode+"/warm", func(b *testing.B) {
			fnc := compile.NewFnCache()
			sess, err := NewSession(tus, SessionOptions{Results: NewComponentCache()})
			if err != nil {
				b.Fatal(err)
			}
			query := func() (RelinkInfo, error) {
				if tc.tune {
					_, info, err := sess.Tune(TuneOptions{
						ShardOptions: shard(fnc, 1), Rounds: tc.rounds, Init: InitOs,
					})
					return info, err
				}
				_, info, ok, err := sess.Search(SearchOptions{ShardOptions: shard(fnc, 1)})
				if err == nil && !ok {
					err = fmt.Errorf("space capped")
				}
				return info, err
			}
			// Prime outside the timed loop: the pristine corpus solves once,
			// as the daemon does when a session is created and first queried.
			if _, err := query(); err != nil {
				b.Fatal(err)
			}
			var solved, replayed int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Replace(0, editedTU(i)); err != nil {
					b.Fatal(err)
				}
				info, err := query()
				if err != nil {
					b.Fatal(err)
				}
				solved += info.ComponentsSolved
				replayed += info.ComponentsReplayed
			}
			b.ReportMetric(float64(solved)/float64(b.N), "solved/op")
			b.ReportMetric(float64(replayed)/float64(b.N), "replayed/op")
		})

		b.Run(tc.profile+"/"+mode+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cur := append([]TU(nil), tus...)
				cur[0] = editedTU(i)
				l, err := New(cur, Options{})
				if err != nil {
					b.Fatal(err)
				}
				fnc := compile.NewFnCache()
				if tc.tune {
					res, err := l.Tune(TuneOptions{
						ShardOptions: shard(fnc, 1), Rounds: tc.rounds, Init: InitOs,
					})
					if err != nil {
						b.Fatal(err)
					}
					if res.Result.FinalSize == 0 {
						b.Fatal("degenerate tune")
					}
				} else {
					res, ok, err := l.OptimalSearch(SearchOptions{ShardOptions: shard(fnc, 1)})
					if err != nil || !ok {
						b.Fatalf("ok=%v err=%v", ok, err)
					}
					if res.Size == 0 {
						b.Fatal("degenerate optimum")
					}
				}
			}
		})
	}
}

func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func heapDelta(before, after uint64) uint64 {
	if after < before {
		return 0
	}
	return after - before
}

// BenchmarkLinkedScaleStats is not a timing benchmark: one iteration
// prints the scale proof for the mega-profiles (total inlinable sites vs
// the 600-edge sqlite-amalgamation unit, the largest pre-existing corpus
// module). Kept as a benchmark so it rides the -bench smoke in ci.sh.
func BenchmarkLinkedScaleStats(b *testing.B) {
	for _, name := range []string{"linked-x10", "linked-x30"} {
		b.Run(name, func(b *testing.B) {
			var l *Linker
			for i := 0; i < b.N; i++ {
				l = benchLinker(b, name)
			}
			p := l.Plan()
			b.ReportMetric(float64(len(p.Funcs)), "funcs")
			b.ReportMetric(float64(len(p.Edges)), "sites")
			b.ReportMetric(float64(len(p.Edges))/600.0, "x-sqlite")
			b.Logf("%s: %d TUs, %d funcs, %d sites (%d cross-TU)",
				name, len(p.TUs), len(p.Funcs), len(p.Edges), p.CrossTU)
		})
	}
}
