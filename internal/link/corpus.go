package link

import "optinline/internal/workload"

// CorpusTUs wraps a generated multi-unit benchmark (typically
// workload.GenerateLinked) as linker inputs, marking the generator's
// scratch global file-local in every unit so linking exercises the
// global-rename path the way a C "static" would.
func CorpusTUs(b workload.Benchmark) []TU {
	tus := make([]TU, 0, len(b.Files))
	for _, f := range b.Files {
		tu := ModuleTU(f.Name, f.Module)
		tu.LocalGlobals = []string{workload.LinkedScratchGlobal}
		tus = append(tus, tu)
	}
	return tus
}
