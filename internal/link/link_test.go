package link

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
	"optinline/internal/search"
	"optinline/internal/workload"
)

// buildTU assembles a small translation unit: each entry of calls maps a
// function to its callees (defined here or not), each function gets a tiny
// arithmetic body, and exported marks the exported subset.
type tuSpec struct {
	name    string
	globals []string
	funcs   []fnSpec
	localG  []string
}

type fnSpec struct {
	name     string
	exported bool
	calls    []string
	loadG    string
	storeG   string
}

func buildTU(spec tuSpec) TU {
	m := ir.NewModule(spec.name)
	for _, g := range spec.globals {
		m.AddGlobal(g)
	}
	for _, fs := range spec.funcs {
		b := ir.NewFunction(fs.name, 1, fs.exported)
		v := b.Param(0)
		c := b.Const(3)
		v = b.Bin(ir.Add, v, c)
		if fs.loadG != "" {
			v = b.Bin(ir.Add, v, b.LoadG(fs.loadG))
		}
		for _, callee := range fs.calls {
			r := b.Call(callee, v)
			v = b.Bin(ir.Add, v, r)
		}
		if fs.storeG != "" {
			b.StoreG(fs.storeG, v)
		}
		b.Ret(v)
		m.AddFunc(b.Fn)
	}
	m.AssignSites()
	tu := ModuleTU(spec.name, m)
	tu.LocalGlobals = spec.localG
	return tu
}

func mustLink(t *testing.T, tus []TU, opts Options) (*Linker, *ir.Module) {
	t.Helper()
	l, err := New(tus, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m, err := l.Link()
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return l, m
}

// checkedSize compiles the module in checked mode (ir.Verify after every
// stage) to prove the linker emitted structurally sound IR.
func checkedSize(t *testing.T, m *ir.Module) int {
	t.Helper()
	c := compile.NewWithOptions(m, codegen.TargetX86, compile.Options{Check: true})
	size := c.Size(callgraph.NewConfig())
	if err := c.CheckFailure(); err != nil {
		t.Fatalf("checked compile of linked module failed: %v", err)
	}
	return size
}

func TestLinkSingleTUIsIdentity(t *testing.T) {
	tu := buildTU(tuSpec{
		name:    "a",
		globals: []string{"state", "scratch"},
		localG:  []string{"scratch"},
		funcs: []fnSpec{
			{name: "root", exported: true, calls: []string{"helper", "ext_fn"}},
			{name: "helper", calls: []string{"leaf"}, storeG: "scratch"},
			{name: "leaf", loadG: "state"},
		},
	})
	orig, err := tu.Load()
	if err != nil {
		t.Fatal(err)
	}
	l, linked := mustLink(t, []TU{tu}, Options{ModuleName: "a"})
	if got, want := linked.Fingerprint(), orig.Fingerprint(); got != want {
		t.Fatalf("single-TU link is not the identity: fingerprint %x != %x", got, want)
	}
	if l.Plan().Renamed != 0 {
		t.Fatalf("single-TU link renamed %d functions", l.Plan().Renamed)
	}
	if n := l.Plan().ExternalCalls; n != 1 {
		t.Fatalf("external calls = %d, want 1 (ext_fn)", n)
	}
	checkedSize(t, linked)
}

func TestLinkDuplicateExportedIsError(t *testing.T) {
	a := buildTU(tuSpec{name: "a", funcs: []fnSpec{{name: "entry", exported: true}}})
	b := buildTU(tuSpec{name: "b", funcs: []fnSpec{{name: "entry", exported: true}}})
	_, err := New([]TU{a, b}, Options{})
	var dup *DuplicateSymbolError
	if !errors.As(err, &dup) {
		t.Fatalf("want *DuplicateSymbolError, got %v", err)
	}
	if dup.Name != "entry" || len(dup.TUs) != 2 {
		t.Fatalf("bad error detail: %+v", dup)
	}
}

func TestLinkDupExportedRename(t *testing.T) {
	a := buildTU(tuSpec{name: "a", funcs: []fnSpec{{name: "entry", exported: true}}})
	b := buildTU(tuSpec{name: "b", funcs: []fnSpec{
		{name: "entry", exported: true},
		{name: "caller", exported: true, calls: []string{"entry"}},
	}})
	_, linked := mustLink(t, []TU{a, b}, Options{DupExported: DupExportedRename})
	if linked.Func("entry") != nil {
		t.Fatal("plain 'entry' survived a rename-all policy")
	}
	var renamed []string
	for _, f := range linked.Funcs {
		if f.Name == "entry__tu000" || f.Name == "entry__tu001" {
			if !f.Exported {
				t.Fatalf("%s lost its exported linkage", f.Name)
			}
			renamed = append(renamed, f.Name)
		}
	}
	if len(renamed) != 2 {
		t.Fatalf("want both copies renamed, got %v", renamed)
	}
	// The cross-TU reference binds to no unit: a multiply-defined symbol
	// has no unique definition, so the call stays external. Crucially it
	// is NOT silently rewritten to b's own copy — b's 'entry' was local to
	// nothing (it is exported), so caller's reference is to the ambiguous
	// linker symbol...  except b defines it itself, and a unit's own
	// definition always shadows the external symbol table.
	g := callgraph.Build(linked)
	found := false
	for _, e := range g.Edges {
		if e.Caller == "caller" && e.Callee == "entry__tu001" {
			found = true
		}
	}
	if !found {
		t.Fatal("caller's reference to its own unit's entry was not rebound to the renamed copy")
	}
	checkedSize(t, linked)
}

func TestLinkLocalCollisionRenamedFingerprintsUnchanged(t *testing.T) {
	mk := func(tu string) TU {
		return buildTU(tuSpec{name: tu, funcs: []fnSpec{
			{name: tu + "_root", exported: true, calls: []string{"helper"}},
			{name: "helper"},
		}})
	}
	a, b := mk("a"), mk("b")
	am, _ := a.Load()
	origFP := am.Func("helper").Fingerprint()

	l, linked := mustLink(t, []TU{a, b}, Options{})
	if l.Plan().Renamed != 2 {
		t.Fatalf("renamed = %d, want both local helpers", l.Plan().Renamed)
	}
	for _, name := range []string{"helper__tu000", "helper__tu001"} {
		f := linked.Func(name)
		if f == nil {
			t.Fatalf("renamed copy %s missing", name)
		}
		if f.Exported {
			t.Fatalf("%s became exported", name)
		}
		if got := f.Fingerprint(); got != origFP {
			t.Fatalf("rename changed %s's content fingerprint: %x != %x", name, got, origFP)
		}
	}
	// Each root's call must bind to its own unit's renamed copy.
	g := callgraph.Build(linked)
	want := map[string]string{"a_root": "helper__tu000", "b_root": "helper__tu001"}
	for _, e := range g.Edges {
		if w, ok := want[e.Caller]; ok {
			if e.Callee != w {
				t.Fatalf("%s calls %s, want %s", e.Caller, e.Callee, w)
			}
			delete(want, e.Caller)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing rebound edges: %v", want)
	}
	checkedSize(t, linked)
}

func TestLinkLocalDefShadowsExported(t *testing.T) {
	a := buildTU(tuSpec{name: "a", funcs: []fnSpec{
		{name: "a_root", exported: true, calls: []string{"helper"}},
		{name: "helper"}, // local, collides with b's exported helper
	}})
	b := buildTU(tuSpec{name: "b", funcs: []fnSpec{{name: "helper", exported: true}}})
	c := buildTU(tuSpec{name: "c", funcs: []fnSpec{
		{name: "c_root", exported: true, calls: []string{"helper"}},
	}})
	_, linked := mustLink(t, []TU{a, b, c}, Options{})
	g := callgraph.Build(linked)
	got := map[string]string{}
	for _, e := range g.Edges {
		got[e.Caller] = e.Callee
	}
	if got["a_root"] != "helper__tu000" {
		t.Fatalf("a_root binds to %q, want its own local helper__tu000", got["a_root"])
	}
	if got["c_root"] != "helper" {
		t.Fatalf("c_root binds to %q, want b's exported helper", got["c_root"])
	}
	if f := linked.Func("helper"); f == nil || !f.Exported {
		t.Fatal("b's exported helper should keep its name and linkage")
	}
}

func TestLinkGlobals(t *testing.T) {
	a := buildTU(tuSpec{
		name: "a", globals: []string{"shared", "scratch"}, localG: []string{"scratch"},
		funcs: []fnSpec{{name: "a_f", exported: true, loadG: "shared", storeG: "scratch"}},
	})
	b := buildTU(tuSpec{
		name: "b", globals: []string{"shared", "scratch"}, localG: []string{"scratch"},
		funcs: []fnSpec{{name: "b_f", exported: true, loadG: "shared", storeG: "scratch"}},
	})
	c := buildTU(tuSpec{
		name: "c", globals: []string{"only"}, localG: []string{"only"},
		funcs: []fnSpec{{name: "c_f", exported: true, storeG: "only"}},
	})
	_, linked := mustLink(t, []TU{a, b, c}, Options{})
	want := []string{"shared", "only", "scratch__tu000", "scratch__tu001"}
	if !reflect.DeepEqual(linked.Globals, want) {
		t.Fatalf("globals = %v, want %v", linked.Globals, want)
	}
	// Each unit's store must target its own renamed copy.
	seen := map[string]string{}
	for _, f := range linked.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpStoreG {
					seen[f.Name] = in.Global
				}
			}
		}
	}
	if seen["a_f"] != "scratch__tu000" || seen["b_f"] != "scratch__tu001" || seen["c_f"] != "only" {
		t.Fatalf("store targets = %v", seen)
	}
	checkedSize(t, linked)
}

func TestLinkInternalize(t *testing.T) {
	a := buildTU(tuSpec{name: "a", funcs: []fnSpec{
		{name: "main", exported: true, calls: []string{"api"}},
	}})
	b := buildTU(tuSpec{name: "b", funcs: []fnSpec{{name: "api", exported: true}}})
	_, linked := mustLink(t, []TU{a, b}, Options{Internalize: true, Roots: []string{"main"}})
	if f := linked.Func("api"); f == nil || f.Exported {
		t.Fatal("api should have been internalized")
	}
	if f := linked.Func("main"); f == nil || !f.Exported {
		t.Fatal("root main must stay exported")
	}
	if _, err := New([]TU{a, b}, Options{Internalize: true, Roots: []string{"nosuch"}}); err == nil {
		t.Fatal("unknown root accepted")
	}
}

func TestLinkDuplicateTUNames(t *testing.T) {
	a := buildTU(tuSpec{name: "a", funcs: []fnSpec{{name: "f", exported: true}}})
	if _, err := New([]TU{a, a}, Options{}); err == nil {
		t.Fatal("duplicate TU names accepted")
	}
}

func TestLazyTUFingerprintGuard(t *testing.T) {
	stable := buildTU(tuSpec{name: "a", funcs: []fnSpec{{name: "f", exported: true}}})
	sm, _ := stable.Load()
	loads := 0
	drifting := LazyTU("b", func() (*ir.Module, error) {
		loads++
		m := ir.NewModule("b")
		b := ir.NewFunction("g", 1, true)
		v := b.Param(0)
		// Body depends on load count: second load differs from planning.
		v = b.Bin(ir.Add, v, b.Const(int64(loads)))
		b.Ret(v)
		m.AddFunc(b.Fn)
		m.AssignSites()
		return m, nil
	})
	l, err := New([]TU{ModuleTU("a", sm), drifting}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Link(); err == nil {
		t.Fatal("materialize accepted a TU that changed after planning")
	}
}

// TestLinkPermutationInvariance is the satellite property test: the plan —
// layout, renames, site numbering, candidate edges, and in particular the
// component split — must be a pure function of the TU set, not of input
// order.
func TestLinkPermutationInvariance(t *testing.T) {
	lp := workload.LinkedProfiles()[0] // linked-s
	base := CorpusTUs(workload.GenerateLinked(lp))
	ref, refM := mustLink(t, base, Options{})
	refPlan := ref.Plan()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]TU(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		l, m := mustLink(t, shuffled, Options{})
		if got, want := m.Fingerprint(), refM.Fingerprint(); got != want {
			t.Fatalf("trial %d: linked module depends on TU order (%x != %x)", trial, got, want)
		}
		p := l.Plan()
		if !reflect.DeepEqual(p.Components, refPlan.Components) {
			t.Fatalf("trial %d: component split depends on TU order", trial)
		}
		if !reflect.DeepEqual(p.Edges, refPlan.Edges) {
			t.Fatalf("trial %d: candidate edges depend on TU order", trial)
		}
		for ci := range p.Components {
			a, b := p.ComponentMultigraph(ci), refPlan.ComponentMultigraph(ci)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("trial %d: component %d multigraph differs", trial, ci)
			}
			if len(a.Edges) > 0 {
				ea, eb := search.SelectPartitionEdge(a), search.SelectPartitionEdge(b)
				if ea.ID != eb.ID {
					t.Fatalf("trial %d: partition edge for component %d depends on TU order (%d != %d)", trial, ci, ea.ID, eb.ID)
				}
			}
		}
	}
}

// TestPlanMatchesMaterializedGraph pins the streamed, summary-based plan to
// the ground truth: the candidate graph callgraph.Build extracts from the
// fully materialized module.
func TestPlanMatchesMaterializedGraph(t *testing.T) {
	lp := workload.LinkedProfiles()[0]
	tus := CorpusTUs(workload.GenerateLinked(lp))
	l, linked := mustLink(t, tus, Options{})
	p := l.Plan()

	g := callgraph.Build(linked)
	if len(g.Edges) != len(p.Edges) {
		t.Fatalf("plan has %d candidate edges, module has %d", len(p.Edges), len(g.Edges))
	}
	bySite := map[int][2]string{}
	for _, e := range g.Edges {
		bySite[e.Site] = [2]string{e.Caller, e.Callee}
	}
	for _, pe := range p.Edges {
		got, ok := bySite[pe.Site]
		if !ok {
			t.Fatalf("planned site %d not in module graph", pe.Site)
		}
		want := [2]string{p.Funcs[pe.Caller].Name, p.Funcs[pe.Callee].Name}
		if got != want {
			t.Fatalf("site %d: plan %v, module %v", pe.Site, want, got)
		}
	}

	// The plan's compacted component multigraphs must carry exactly the
	// site IDs of the module's own component split, component by component.
	subs := search.ComponentSubgraphs(g)
	if len(subs) != len(p.Components) {
		t.Fatalf("plan has %d components, module graph %d", len(p.Components), len(subs))
	}
	for ci, sub := range subs {
		want := map[int]bool{}
		for _, e := range sub.Edges {
			want[e.ID] = true
		}
		mg := p.ComponentMultigraph(ci)
		if len(mg.Edges) != len(sub.Edges) {
			t.Fatalf("component %d: %d planned edges, %d in module graph", ci, len(mg.Edges), len(sub.Edges))
		}
		for _, e := range mg.Edges {
			if !want[e.ID] {
				t.Fatalf("component %d: planned site %d not in module component", ci, e.ID)
			}
		}
	}

	// Materialized components partition the module's functions with the
	// residual, and sizes are additive across the partition.
	target := codegen.TargetX86
	total := 0
	for ci := range p.Components {
		cm, err := l.Component(ci)
		if err != nil {
			t.Fatal(err)
		}
		total += codegen.ModuleSize(cm, target)
	}
	resid, err := l.Residual()
	if err != nil {
		t.Fatal(err)
	}
	total += codegen.ModuleSize(resid, target)
	if want := codegen.ModuleSize(linked, target); total != want {
		t.Fatalf("component+residual sizes sum to %d, module is %d", total, want)
	}
}

func TestLinkSummaryCacheSharesStructuralTwins(t *testing.T) {
	cache := NewSummaryCache()
	lp := workload.LinkedProfiles()[0]
	tus := CorpusTUs(workload.GenerateLinked(lp))
	if _, err := New(tus, Options{Summaries: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Misses() != int64(len(tus)) || cache.Hits() != 0 {
		t.Fatalf("first link: hits=%d misses=%d, want 0/%d", cache.Hits(), cache.Misses(), len(tus))
	}
	// Re-linking the same units is all hits: summaries are content-keyed.
	if _, err := New(tus, Options{Summaries: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Hits() != int64(len(tus)) {
		t.Fatalf("second link: hits=%d, want %d", cache.Hits(), len(tus))
	}
}

func TestLinkedCorpusScale(t *testing.T) {
	// The mega profiles must actually deliver the promised scale: ≥10× the
	// 600-edge SQLite unit for linked-x10, ≥30× for linked-x30 — checked
	// from plan summaries alone, without materializing the mega-modules.
	if testing.Short() {
		t.Skip("corpus generation is slow in -short mode")
	}
	for _, tc := range []struct {
		name string
		min  int
	}{{"linked-x10", 6000}, {"linked-x30", 18000}} {
		lp, ok := workload.LinkedProfileByName(tc.name)
		if !ok {
			t.Fatalf("profile %s missing", tc.name)
		}
		l, err := New(CorpusTUs(workload.GenerateLinked(lp)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		p := l.Plan()
		if len(p.Edges) < tc.min {
			t.Fatalf("%s: %d candidate edges, want >= %d", tc.name, len(p.Edges), tc.min)
		}
		if p.CrossTU == 0 {
			t.Fatalf("%s: no cross-TU candidate edges", tc.name)
		}
		if len(p.Components) < 2 {
			t.Fatalf("%s: %d components, sharding needs several", tc.name, len(p.Components))
		}
		if p.Renamed == 0 {
			t.Fatalf("%s: colliding locals were not renamed", tc.name)
		}
	}
}
