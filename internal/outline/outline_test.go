package outline

import (
	"fmt"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/workload"
)

// dupSrc contains the same pure 10-instruction single-input shape in three
// functions — long enough that extraction pays for the call sequences and
// the new function's overhead under the x86 size model.
const dupSrc = `
export func @a(%x, %y) {
entry:
  %t1 = mul %x, %x
  %t2 = add %t1, %x
  %t3 = xor %t2, %x
  %t4 = mul %t3, %x
  %t5 = add %t4, %x
  %t6 = xor %t5, %x
  %t7 = mul %t6, %x
  %t8 = add %t7, %x
  %t9 = xor %t8, %x
  %t10 = mul %t9, %x
  %r = add %t10, %y
  ret %r
}

export func @b(%p, %q) {
entry:
  %u1 = mul %p, %p
  %u2 = add %u1, %p
  %u3 = xor %u2, %p
  %u4 = mul %u3, %p
  %u5 = add %u4, %p
  %u6 = xor %u5, %p
  %u7 = mul %u6, %p
  %u8 = add %u7, %p
  %u9 = xor %u8, %p
  %u10 = mul %u9, %p
  %r = sub %u10, %q
  ret %r
}

export func @c(%m, %n) {
entry:
  %v1 = mul %m, %m
  %v2 = add %v1, %m
  %v3 = xor %v2, %m
  %v4 = mul %v3, %m
  %v5 = add %v4, %m
  %v6 = xor %v5, %m
  %v7 = mul %v6, %m
  %v8 = add %v7, %m
  %v9 = xor %v8, %m
  %v10 = mul %v9, %m
  %r = mul %v10, %n
  ret %r
}
`

func TestOutlineFindsRepeatedShape(t *testing.T) {
	m := ir.MustParse("dup", dupSrc)
	before := codegen.ModuleSize(m, codegen.TargetX86)
	want := map[string][3]uint64{}
	for _, fn := range []string{"a", "b", "c"} {
		res, err := interp.Run(m, fn, []int64{5, 7}, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[fn] = res.Observable()
	}

	st := Module(m, Options{Target: codegen.TargetX86, MaxLen: 12})
	if st.FunctionsCreated == 0 || st.CallsInserted < 3 {
		t.Fatalf("nothing outlined: %+v\n%s", st, m.String())
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("post-outline verify: %v\n%s", err, m.String())
	}
	after := codegen.ModuleSize(m, codegen.TargetX86)
	if after >= before {
		t.Fatalf("outlining did not shrink: %d -> %d", before, after)
	}
	for _, fn := range []string{"a", "b", "c"} {
		res, err := interp.Run(m, fn, []int64{5, 7}, interp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Observable() != want[fn] {
			t.Fatalf("%s changed behaviour", fn)
		}
	}
}

func TestOutlineSkipsUnprofitable(t *testing.T) {
	// Two occurrences of a 3-instruction shape are below the profit line
	// on x86 (function overhead eats the saving).
	src := `
export func @a(%x) {
entry:
  %t1 = mul %x, %x
  %t2 = add %t1, %x
  %t3 = xor %t2, %x
  ret %t3
}
export func @b(%x) {
entry:
  %u1 = mul %x, %x
  %u2 = add %u1, %x
  %u3 = xor %u2, %x
  %r = add %u3, %u3
  ret %r
}
`
	m := ir.MustParse("small", src)
	before := codegen.ModuleSize(m, codegen.TargetX86)
	Module(m, Options{Target: codegen.TargetX86})
	after := codegen.ModuleSize(m, codegen.TargetX86)
	if after > before {
		t.Fatalf("outlining made it worse: %d -> %d", before, after)
	}
}

func TestOutlineRespectsSideEffects(t *testing.T) {
	src := `
global @g
export func @a(%x) {
entry:
  %t1 = mul %x, %x
  storeg @g, %t1
  %t2 = add %t1, %x
  %t3 = xor %t2, %x
  %t4 = mul %t3, %t2
  ret %t4
}
export func @b(%x) {
entry:
  %u1 = mul %x, %x
  storeg @g, %u1
  %u2 = add %u1, %x
  %u3 = xor %u2, %x
  %u4 = mul %u3, %u2
  ret %u4
}
`
	m := ir.MustParse("fx", src)
	Module(m, Options{Target: codegen.TargetX86})
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// Stores must remain in the original functions.
	for _, fn := range []string{"a", "b"} {
		found := false
		for _, b := range m.Func(fn).Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStoreG {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("storeg outlined away from %s", fn)
		}
	}
	m2 := ir.MustParse("fx", src)
	want, _ := interp.Run(m2, "a", []int64{3}, interp.Options{})
	got, _ := interp.Run(m, "a", []int64{3}, interp.Options{})
	if want.Observable() != got.Observable() {
		t.Fatal("behaviour changed")
	}
}

func TestOutlineMultipleOccurrencesInOneBlock(t *testing.T) {
	block := func(pfx, in string) string {
		out := ""
		ops := []string{"mul", "add", "xor", "mul", "add", "xor", "mul", "add", "xor", "mul"}
		prev := in
		for i, op := range ops {
			v := fmt.Sprintf("%%%s%d", pfx, i+1)
			out += fmt.Sprintf("  %s = %s %s, %s\n", v, op, prev, in)
			prev = v
		}
		return out
	}
	src := "export func @f(%x, %y) {\nentry:\n" +
		block("a", "%x") + block("b", "%y") + block("c", "%x") +
		"  %s1 = add %a10, %b10\n  %s2 = add %s1, %c10\n  ret %s2\n}\n"
	m := ir.MustParse("oneblock", src)
	want, _ := interp.Run(m, "f", []int64{3, 4}, interp.Options{})
	st := Module(m, Options{Target: codegen.TargetX86, MaxLen: 12})
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, m.String())
	}
	got, err := interp.Run(m, "f", []int64{3, 4}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Observable() != want.Observable() {
		t.Fatal("behaviour changed")
	}
	if st.CallsInserted < 3 {
		t.Fatalf("expected 3 occurrences outlined, got %+v\n%s", st, m.String())
	}
}

func TestOutlineDeterministic(t *testing.T) {
	m1 := ir.MustParse("dup", dupSrc)
	m2 := ir.MustParse("dup", dupSrc)
	Module(m1, Options{Target: codegen.TargetX86, MaxLen: 12})
	Module(m2, Options{Target: codegen.TargetX86, MaxLen: 12})
	if m1.String() != m2.String() {
		t.Fatal("outlining not deterministic")
	}
}

func TestOutlineAfterAutotuneOnCorpus(t *testing.T) {
	// The combination the paper suggests: tune inlining for size, then
	// outline the result. Behaviour must be preserved and size must not
	// grow; usually it shrinks further.
	p := workload.Profile{
		Name: "outl", Files: 6, TotalEdges: 50,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.35, LoopProb: 0.35,
		RecProb: 0.05, BranchProb: 0.45, MultiRootPct: 0.12,
	}
	shrunk := 0
	for _, f := range workload.Generate(p).Files {
		c := compile.New(f.Module, codegen.TargetX86)
		g := c.Graph()
		cfg := heuristic.OsConfig(c.Module(), g)
		if len(g.Edges) == 0 {
			cfg = callgraph.NewConfig()
		}
		built, err := c.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var base interp.Result
		canRun := false
		if built.Func("entry") != nil {
			if r, err := interp.Run(built, "entry", []int64{3}, interp.Options{Fuel: 10_000_000}); err == nil {
				base, canRun = r, true
			}
		}
		before := codegen.ModuleSize(built, codegen.TargetX86)
		Module(built, Options{Target: codegen.TargetX86})
		if err := built.Verify(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		after := codegen.ModuleSize(built, codegen.TargetX86)
		if after > before {
			t.Fatalf("%s: outlining grew the module %d -> %d", f.Name, before, after)
		}
		if after < before {
			shrunk++
		}
		if canRun {
			got, err := interp.Run(built, "entry", []int64{3}, interp.Options{Fuel: 10_000_000})
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			if got.Observable() != base.Observable() {
				t.Fatalf("%s: behaviour changed", f.Name)
			}
		}
	}
	t.Logf("outlining shrank %d files further", shrunk)
}
