// Package outline implements function outlining — the inverse of inlining —
// for code-size reduction. The paper's related-work section (Chabbi et al.,
// CGO'21) proposes running an outliner after inlining decisions are tuned
// "to further reduce code size"; this package provides that combination
// partner for the autotuner.
//
// The outliner finds repeated straightline sequences of pure instructions
// across the whole module, estimates the byte profit of extracting each
// repeated shape into a fresh function under the active size model, and
// rewrites profitable occurrences into calls. Candidate shapes are matched
// structurally: operands defined inside the window are matched by position,
// external operands become parameters (matched by first-use order), and
// constants must agree exactly.
package outline

import (
	"fmt"
	"sort"
	"strings"

	"optinline/internal/codegen"
	"optinline/internal/ir"
)

// Options bounds the search.
type Options struct {
	MinLen    int // minimum window length; default 3
	MaxLen    int // maximum window length; default 18
	MaxInputs int // maximum externally defined operands; default 3
	Target    codegen.Target
}

func (o Options) normalized() Options {
	if o.MinLen <= 0 {
		o.MinLen = 3
	}
	if o.MaxLen < o.MinLen {
		o.MaxLen = 18
	}
	if o.MaxInputs <= 0 {
		o.MaxInputs = 3
	}
	return o
}

// Stats reports what the outliner did.
type Stats struct {
	FunctionsCreated int
	CallsInserted    int
	InstrsRemoved    int
	BytesSaved       int // estimated, under the option's size model
}

// window is one candidate occurrence.
type window struct {
	fn    *ir.Function
	block *ir.Block
	start int
	n     int
	ins   []*ir.Value // external inputs in canonical order
	out   *ir.Value   // the single outside-visible defined value
}

// Module outlines repeated sequences in m until no profitable candidate
// remains. New functions are named outlined_<n>; call sites receive fresh
// site IDs so the module stays well-formed for downstream tooling.
func Module(m *ir.Module, opt Options) Stats {
	opt = opt.normalized()
	var st Stats
	for round := 0; ; round++ {
		if !outlineOnce(m, opt, &st) {
			break
		}
		if round > 64 {
			break // safety valve
		}
	}
	m.AssignSites()
	return st
}

// outlineOnce extracts the single most profitable repeated shape; returns
// false when nothing profitable remains.
func outlineOnce(m *ir.Module, opt Options, st *Stats) bool {
	type group struct {
		occ     []window
		bytes   int // encoded size of the window body
		ninputs int
	}
	groups := make(map[string]*group)

	for _, f := range m.Funcs {
		uses := externalUses(f)
		for _, b := range f.Blocks {
			limit := len(b.Instrs) - 1 // exclude the terminator
			for start := 0; start < limit; start++ {
				maxN := opt.MaxLen
				if start+maxN > limit {
					maxN = limit - start
				}
				for n := maxN; n >= opt.MinLen; n-- {
					w, key, ok := fingerprint(f, b, start, n, opt, uses)
					if !ok {
						continue
					}
					g := groups[key]
					if g == nil {
						g = &group{bytes: windowBytes(b, start, n, opt.Target), ninputs: len(w.ins)}
						groups[key] = g
					}
					g.occ = append(g.occ, w)
				}
			}
		}
	}

	// Rank candidates by estimated profit, deterministically.
	type cand struct {
		key    string
		g      *group
		profit int
	}
	var cands []cand
	for key, g := range groups {
		occ := nonOverlapping(g.occ)
		if len(occ) < 2 {
			continue
		}
		g.occ = occ
		profit := estimateProfit(len(occ), g.bytes, g.ninputs, opt.Target)
		if profit > 0 {
			cands = append(cands, cand{key: key, g: g, profit: profit})
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].profit != cands[j].profit {
			return cands[i].profit > cands[j].profit
		}
		return cands[i].key < cands[j].key
	})
	best := cands[0]

	// Materialize the outlined function from the first occurrence.
	name := freshName(m)
	proto := best.g.occ[0]
	nf := buildOutlined(name, proto)
	m.AddFunc(nf)
	st.FunctionsCreated++
	st.BytesSaved += best.profit

	// Replace occurrences within each block from the highest offset down so
	// earlier replacements do not shift later window indexes.
	occ := append([]window(nil), best.g.occ...)
	sort.Slice(occ, func(i, j int) bool {
		if occ[i].block != occ[j].block {
			return occ[i].block.Name < occ[j].block.Name
		}
		return occ[i].start > occ[j].start
	})
	for _, w := range occ {
		replaceWindow(w, name)
		st.CallsInserted++
		st.InstrsRemoved += w.n - 1
	}
	return true
}

// externalUses maps each value to the number of uses it has in f.
func externalUses(f *ir.Function) map[*ir.Value][]*ir.Instr {
	uses := make(map[*ir.Value][]*ir.Instr)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				uses[a] = append(uses[a], in)
			}
			for _, s := range in.Succs {
				for _, a := range s.Args {
					uses[a] = append(uses[a], in)
				}
			}
		}
	}
	return uses
}

// fingerprint canonicalizes the window [start, start+n) of b. It fails when
// the window contains impure or value-less instructions, needs more than
// MaxInputs external inputs, or defines more than one outside-visible value.
func fingerprint(f *ir.Function, b *ir.Block, start, n int, opt Options, uses map[*ir.Value][]*ir.Instr) (window, string, bool) {
	instrs := b.Instrs[start : start+n]
	inWindow := make(map[*ir.Value]int, n)
	inside := make(map[*ir.Instr]bool, n)
	for i, in := range instrs {
		switch in.Op {
		case ir.OpConst, ir.OpBin, ir.OpUn:
		default:
			return window{}, "", false
		}
		inWindow[in.Result] = i
		inside[in] = true
	}
	var ins []*ir.Value
	inputSlot := make(map[*ir.Value]int)
	var sb strings.Builder
	for _, in := range instrs {
		switch in.Op {
		case ir.OpConst:
			fmt.Fprintf(&sb, "c%d;", in.Const)
		case ir.OpUn:
			fmt.Fprintf(&sb, "u%d:%s;", in.UnOp, operandKey(in.Args[0], inWindow, inputSlot, &ins))
		case ir.OpBin:
			fmt.Fprintf(&sb, "b%d:%s:%s;", in.BinOp,
				operandKey(in.Args[0], inWindow, inputSlot, &ins),
				operandKey(in.Args[1], inWindow, inputSlot, &ins))
		}
	}
	if len(ins) > opt.MaxInputs {
		return window{}, "", false
	}
	// Exactly one defined value may be visible outside the window.
	var out *ir.Value
	outIdx := -1
	for i, in := range instrs {
		visible := false
		for _, user := range uses[in.Result] {
			if !inside[user] {
				visible = true
				break
			}
		}
		if visible {
			if out != nil {
				return window{}, "", false
			}
			out = in.Result
			outIdx = i
		}
	}
	if out == nil {
		return window{}, "", false // fully dead; DCE territory
	}
	fmt.Fprintf(&sb, "out%d", outIdx)
	return window{fn: f, block: b, start: start, n: n, ins: ins, out: out}, sb.String(), true
}

func operandKey(v *ir.Value, inWindow map[*ir.Value]int, slot map[*ir.Value]int, ins *[]*ir.Value) string {
	if i, ok := inWindow[v]; ok {
		return fmt.Sprintf("w%d", i)
	}
	s, ok := slot[v]
	if !ok {
		s = len(*ins)
		slot[v] = s
		*ins = append(*ins, v)
	}
	return fmt.Sprintf("p%d", s)
}

func windowBytes(b *ir.Block, start, n int, t codegen.Target) int {
	total := 0
	for _, in := range b.Instrs[start : start+n] {
		total += codegen.InstrSize(in, t)
	}
	return total
}

// estimateProfit computes the byte saving of outlining occ occurrences of a
// shape costing bytes, with ninputs parameters, under the size model.
func estimateProfit(occ, bytes, ninputs int, t codegen.Target) int {
	callCost := codegen.InstrSize(&ir.Instr{
		Op: ir.OpCall, Callee: "x", Args: make([]*ir.Value, ninputs),
	}, t)
	retCost := codegen.InstrSize(&ir.Instr{Op: ir.OpRet, Args: make([]*ir.Value, 1)}, t)
	// Function overhead approximation: prologue + params + ret + alignment
	// slack; derived from the models via a probe function would be exact,
	// but a fixed small constant keeps the estimate conservative.
	funcOverhead := 8 + 2*ninputs + retCost + 3
	return occ*(bytes-callCost) - (bytes + funcOverhead)
}

// nonOverlapping greedily filters occurrences so no two share instructions,
// preferring earlier blocks/offsets for determinism.
func nonOverlapping(occ []window) []window {
	sort.Slice(occ, func(i, j int) bool {
		if occ[i].fn.Name != occ[j].fn.Name {
			return occ[i].fn.Name < occ[j].fn.Name
		}
		if occ[i].block.Name != occ[j].block.Name {
			return occ[i].block.Name < occ[j].block.Name
		}
		return occ[i].start < occ[j].start
	})
	var out []window
	lastEnd := make(map[*ir.Block]int)
	for _, w := range occ {
		if end, ok := lastEnd[w.block]; ok && w.start < end {
			continue
		}
		lastEnd[w.block] = w.start + w.n
		out = append(out, w)
	}
	return out
}

// buildOutlined creates the extracted function from a prototype occurrence.
func buildOutlined(name string, w window) *ir.Function {
	nf := &ir.Function{Name: name}
	entry := nf.NewBlock("entry")
	vmap := make(map[*ir.Value]*ir.Value)
	for i, in := range w.ins {
		p := nf.NewValue(fmt.Sprintf("p%d", i))
		p.Parm = entry
		entry.Params = append(entry.Params, p)
		vmap[in] = p
	}
	remap := func(v *ir.Value) *ir.Value {
		if nv, ok := vmap[v]; ok {
			return nv
		}
		return v // unreachable if the fingerprint was computed correctly
	}
	for _, in := range w.block.Instrs[w.start : w.start+w.n] {
		ni := &ir.Instr{Op: in.Op, Const: in.Const, BinOp: in.BinOp, UnOp: in.UnOp}
		for _, a := range in.Args {
			ni.Args = append(ni.Args, remap(a))
		}
		nr := nf.NewValue("")
		nr.Def = ni
		ni.Result = nr
		vmap[in.Result] = nr
		entry.Instrs = append(entry.Instrs, ni)
	}
	entry.Instrs = append(entry.Instrs, &ir.Instr{Op: ir.OpRet, Args: []*ir.Value{vmap[w.out]}})
	return nf
}

// replaceWindow rewrites one occurrence into a call to the outlined function.
func replaceWindow(w window, callee string) {
	call := &ir.Instr{Op: ir.OpCall, Callee: callee, Args: append([]*ir.Value(nil), w.ins...)}
	res := w.fn.NewValue("")
	res.Def = call
	call.Result = res

	rest := append([]*ir.Instr(nil), w.block.Instrs[w.start+w.n:]...)
	w.block.Instrs = append(w.block.Instrs[:w.start], call)
	w.block.Instrs = append(w.block.Instrs, rest...)
	replaceUses(w.fn, w.out, res)
}

func replaceUses(f *ir.Function, old, repl *ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old && in.Result != repl {
					in.Args[i] = repl
				}
			}
			for si := range in.Succs {
				for i, a := range in.Succs[si].Args {
					if a == old {
						in.Succs[si].Args[i] = repl
					}
				}
			}
		}
	}
}

func freshName(m *ir.Module) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("outlined_%d", i)
		if m.Func(name) == nil {
			return name
		}
	}
}
