package interproc

import "optinline/internal/callgraph"

// FeatureSchemaVersion identifies the meaning of the SiteFeatures
// vector. Version 1 was the original 10-feature local vector in
// internal/mlheur; version 2 appends the ten interprocedural summary
// features below. Consumers that persist vectors or trained weights must
// record the version they were built against.
const FeatureSchemaVersion = 2

// NumSiteFeatures is the dimensionality of the per-site feature vector.
const NumSiteFeatures = 20

// SiteFeatureNames documents each feature slot, in order. Slots 0-9 are
// the schema-v1 local features, preserved bit-for-bit; slots 10-19 are
// the interprocedural summary features.
var SiteFeatureNames = [NumSiteFeatures]string{
	"callee_instrs",
	"callee_blocks",
	"num_args",
	"const_args",
	"caller_instrs",
	"callee_in_degree",
	"callee_out_degree",
	"single_caller_internal",
	"callee_exported",
	"callee_has_branches",
	"callee_pure",
	"callee_writes_globals",
	"callee_reads_globals",
	"callee_const_return",
	"callee_dead_params",
	"callee_transitive_instrs",
	"site_loop_depth",
	"callee_max_loop_depth",
	"callee_in_cycle",
	"callee_escaping_params",
}

// FeatureVector is one call site's feature vector under
// FeatureSchemaVersion.
type FeatureVector [NumSiteFeatures]float64

// SiteFeatures computes the feature vector of a candidate edge. The
// zero vector is returned for edges whose endpoints are not defined in
// the module (which Build never produces).
func (ms *ModuleSummary) SiteFeatures(e callgraph.Edge) FeatureVector {
	var x FeatureVector
	cs := ms.byName[e.Callee]
	cr := ms.byName[e.Caller]
	if cs == nil || cr == nil {
		return x
	}
	x[0] = float64(cs.OwnInstrs)
	x[1] = float64(cs.NumBlocks)
	x[2] = float64(e.NumArgs)
	x[3] = float64(e.ConstArgs)
	x[4] = float64(cr.OwnInstrs)
	x[5] = float64(cs.FanIn)
	x[6] = float64(cs.FanOut)
	if cs.FanIn == 1 && !cs.Exported {
		x[7] = 1
	}
	if cs.Exported {
		x[8] = 1
	}
	x[9] = float64(cs.CondBranches)
	if cs.Pure {
		x[10] = 1
	}
	x[11] = float64(len(cs.WritesGlobals))
	x[12] = float64(len(cs.ReadsGlobals))
	if cs.Return.State == ConstKnown {
		x[13] = 1
	}
	dead, escaping := 0, 0
	for _, p := range cs.Params {
		if p.Dead {
			dead++
		}
		if p.Escapes {
			escaping++
		}
	}
	x[14] = float64(dead)
	x[15] = float64(cs.TransitiveInstrs)
	x[16] = float64(ms.siteDepth[e.Site])
	x[17] = float64(cs.MaxLoopDepth)
	if cs.InCycle {
		x[18] = 1
	}
	x[19] = float64(escaping)
	return x
}

// SiteFeaturesBySite looks the candidate edge up by call-site ID.
func (ms *ModuleSummary) SiteFeaturesBySite(site int) (FeatureVector, bool) {
	e := ms.graph.Edge(site)
	if e == nil {
		return FeatureVector{}, false
	}
	return ms.SiteFeatures(*e), true
}
