package interproc

import (
	"fmt"
	"sync"
)

// coreSchemaVersion is hashed into every SCC content key. Bump it when
// the meaning of any cached core field changes, so stale entries from
// other schema generations can never be returned.
const coreSchemaVersion = 1

// Key is the 128-bit content key of one SCC's core summaries: member
// fingerprints plus the per-call binding of callee names to in-SCC
// indices, already-keyed SCCs, or extern (sccKey in summary.go). Equal
// keys imply structurally identical closures, so cached cores are
// interchangeable across modules, runs, and daemon requests.
type Key struct{ Hi, Lo uint64 }

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits    int64
	Misses  int64
	Entries int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d entries", s.Hits, s.Misses, s.Entries)
}

// Cache is the corpus-wide single-flight summary cache. Concurrent
// Analyze calls (daemon requests, parallel harness workers) share one
// Cache: the first goroutine to need an SCC computes its cores, everyone
// else blocks on the same entry and reuses the result. A panicking
// compute withdraws its entry and releases waiters to retry, mirroring
// the fn-cache discipline, so a failure cannot wedge sharers.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	done  chan struct{}
	cores []Summary
	valid bool
}

// NewCache returns an empty summary cache safe for concurrent use.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*cacheEntry)}
}

// Stats returns a snapshot of the counters. In-flight computations count
// as entries; a waiter satisfied by another goroutine's compute counts
// as a hit.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: int64(len(c.entries))}
}

// getOrCompute returns the cores cached under key, running compute (and
// publishing its result) on the first request.
func (c *Cache) getOrCompute(key Key, compute func() []Summary) []Summary {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			<-e.done
			if e.valid {
				return e.cores
			}
			continue // the computing goroutine panicked; retry
		}
		e := &cacheEntry{done: make(chan struct{})}
		c.entries[key] = e
		c.misses++
		c.mu.Unlock()
		return c.fill(key, e, compute)
	}
}

// fill runs compute for the entry this goroutine owns. On panic the
// entry is withdrawn before the panic propagates, so waiters retry
// instead of blocking forever on a result that will never arrive.
func (c *Cache) fill(key Key, e *cacheEntry, compute func() []Summary) []Summary {
	defer func() {
		if !e.valid {
			c.mu.Lock()
			delete(c.entries, key)
			c.mu.Unlock()
		}
		close(e.done)
	}()
	e.cores = compute()
	e.valid = true
	return e.cores
}
