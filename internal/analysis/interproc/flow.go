package interproc

import "optinline/internal/ir"

// This file is the read-before-write (use-before-init) dataflow: for each
// function, which globals may some execution load before the closure's
// first store to them (mayReadFirst), and which globals are stored on
// every terminating path (mustWrite). The per-function pass is a forward
// must-write analysis over the CFG whose call transfer substitutes the
// callee's own facts — that is what sees a read through an
// always-inlined wrapper: the wrapper's mayReadFirst set surfaces in
// every caller that has not yet written the global. In-SCC callees start
// optimistic (mustWrite = universe, mayReadFirst = empty) and descend
// monotonically under the outer fixpoint in summary.go.

// rbwState is one function's working read-before-write facts.
type rbwState struct {
	mayReadFirst map[string]bool
	mustWrite    map[string]bool
	// outTop marks "no terminating path found (yet)": the must-write set
	// is vacuously the universe. This is both the optimistic fixpoint
	// start and, at convergence, the never-returns verdict.
	outTop bool
}

func newRBWState() *rbwState {
	return &rbwState{
		mayReadFirst: make(map[string]bool),
		mustWrite:    make(map[string]bool),
		outTop:       true,
	}
}

// mwFact is a point state of the must-write analysis: the set of globals
// definitely written on every path reaching this point. top is the
// unreached/non-terminating state (every global counts as written).
type mwFact struct {
	top bool
	set map[string]bool
}

func (a *mwFact) clone() *mwFact {
	c := &mwFact{top: a.top, set: make(map[string]bool, len(a.set))}
	for g := range a.set {
		c.set[g] = true
	}
	return c
}

// meet intersects a with b in place (top is the identity).
func (a *mwFact) meet(b *mwFact) {
	if b.top {
		return
	}
	if a.top {
		a.top = false
		a.set = make(map[string]bool, len(b.set))
		for g := range b.set {
			a.set[g] = true
		}
		return
	}
	for g := range a.set {
		if !b.set[g] {
			delete(a.set, g)
		}
	}
}

func (a *mwFact) equal(b *mwFact) bool {
	if a.top != b.top {
		return false
	}
	if a.top {
		return true
	}
	if len(a.set) != len(b.set) {
		return false
	}
	for g := range a.set {
		if !b.set[g] {
			return false
		}
	}
	return true
}

// calleeRBW is the call-transfer view of one callee: its read-first set,
// must-write set, and never-returns flag, from either an in-SCC working
// state or a finished out-of-SCC summary.
type calleeRBW struct {
	readFirst func(func(g string))
	mustWrite func(func(g string))
	top       bool
}

// rbwFunction recomputes f's read-before-write facts against the current
// callee facts and folds them into mf.rbw, reporting whether anything
// changed (the outer SCC fixpoint iterates until it does not).
func rbwFunction(f *ir.Function, mf *memberFacts, calleeCore func(string) (*memberFacts, *Summary)) bool {
	rbwOf := func(name string) (calleeRBW, bool) {
		cf, cs := calleeCore(name)
		if cf != nil {
			return calleeRBW{
				readFirst: func(emit func(string)) {
					for g := range cf.rbw.mayReadFirst {
						emit(g)
					}
				},
				mustWrite: func(emit func(string)) {
					for g := range cf.rbw.mustWrite {
						emit(g)
					}
				},
				top: cf.rbw.outTop,
			}, true
		}
		if cs != nil {
			return calleeRBW{
				readFirst: func(emit func(string)) {
					for _, g := range cs.ReadsBeforeWrite {
						emit(g)
					}
				},
				mustWrite: func(emit func(string)) {
					for _, g := range cs.MustWriteGlobals {
						emit(g)
					}
				},
				top: cs.NeverReturns,
			}, true
		}
		return calleeRBW{}, false // extern: cannot touch module-private globals
	}

	// transfer walks one block from the given in-state; emitRead fires
	// for every global that may be read before being written.
	transfer := func(b *ir.Block, st *mwFact, emitRead func(string)) {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoadG:
				if !st.top && !st.set[in.Global] {
					emitRead(in.Global)
				}
			case ir.OpStoreG:
				if !st.top {
					st.set[in.Global] = true
				}
			case ir.OpCall:
				c, ok := rbwOf(in.Callee)
				if !ok {
					continue
				}
				if !st.top {
					c.readFirst(func(g string) {
						if !st.set[g] {
							emitRead(g)
						}
					})
				}
				if c.top {
					st.top = true // the callee never returns: code below is dead
				} else if !st.top {
					c.mustWrite(func(g string) { st.set[g] = true })
				}
			}
		}
	}

	rpo := f.ReversePostorder()
	preds := f.Predecessors()
	entry := f.Entry()
	out := make(map[*ir.Block]*mwFact, len(rpo))

	inState := func(b *ir.Block) *mwFact {
		if b == entry {
			return &mwFact{set: make(map[string]bool)}
		}
		st := &mwFact{top: true}
		for _, p := range preds[b] {
			if po := out[p]; po != nil {
				st.meet(po)
			}
		}
		return st
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			st := inState(b)
			transfer(b, st, func(string) {})
			if prev := out[b]; prev == nil || !prev.equal(st) {
				out[b] = st
				changed = true
			}
		}
	}

	// Final pass over the stable states: collect the read-first set and
	// meet the states at every reachable ret into the function exit fact.
	mrf := make(map[string]bool)
	exit := &mwFact{top: true}
	for _, b := range rpo {
		st := inState(b)
		transfer(b, st, func(g string) { mrf[g] = true })
		if t := b.Term(); t != nil && t.Op == ir.OpRet {
			exit.meet(st)
		}
	}

	changed := false
	for g := range mrf {
		if !mf.rbw.mayReadFirst[g] {
			mf.rbw.mayReadFirst[g] = true
			changed = true
		}
	}
	if exit.top != mf.rbw.outTop {
		mf.rbw.outTop = exit.top
		changed = true
	}
	if !exit.top {
		if len(exit.set) != len(mf.rbw.mustWrite) {
			changed = true
		} else {
			for g := range mf.rbw.mustWrite {
				if !exit.set[g] {
					changed = true
					break
				}
			}
		}
		mf.rbw.mustWrite = exit.set
	}
	return changed
}
