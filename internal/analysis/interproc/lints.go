package interproc

import (
	"fmt"
	"strings"

	"optinline/internal/callgraph"
	"optinline/internal/diag"
	"optinline/internal/ir"
)

// Analyzers lists the cross-function lint family for documentation and
// CLI listings, in execution order.
func Analyzers() []struct{ Name, Doc string } {
	return []struct{ Name, Doc string }{
		{"pure-call", "unused results of calls to provably pure functions"},
		{"ip-dead-param", "parameters no instruction ever uses, with live call sites passing them"},
		{"ip-const-return", "functions that provably return one constant at every call site"},
		{"ip-uninit-global", "globals read before any write can reach them (cross-function)"},
		{"ip-unbounded-recursion", "recursion cycles with no terminating path"},
	}
}

// Lints runs the cross-function lint family over the summaries and
// returns the sorted findings. The pure-call analyzer moved here from
// internal/analysis (its purity fixpoint is now the Summary.Pure
// closure); name, severity, and message are unchanged.
func Lints(m *ir.Module, g *callgraph.Graph, ms *ModuleSummary) diag.List {
	var out diag.List
	out = append(out, lintPureCalls(m, ms)...)
	out = append(out, lintDeadParams(m, ms)...)
	out = append(out, lintConstReturns(m, ms)...)
	out = append(out, lintUninitGlobals(m, ms)...)
	out = append(out, lintUnboundedRecursion(m, ms)...)
	out.Sort()
	return out
}

func ipReport(m *ir.Module, analyzer string, sev diag.Severity, fn, block, format string, args ...interface{}) diag.Diagnostic {
	return diag.Diagnostic{
		Analyzer: analyzer,
		Severity: sev,
		Pos:      diag.Pos{File: m.Name},
		Func:     fn,
		Block:    block,
		Message:  fmt.Sprintf(format, args...),
	}
}

// lintPureCalls flags calls whose result is unused and whose callee is
// provably pure: the call survives only because the optimizer treats
// calls as effectful, so labeling the site inline lets DCE delete it.
func lintPureCalls(m *ir.Module, ms *ModuleSummary) diag.List {
	var out diag.List
	for _, f := range m.Funcs {
		used := usedValues(f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall || in.Result == nil || used[in.Result] {
					continue
				}
				if s := ms.Func(in.Callee); s != nil && s.Pure {
					out = append(out, ipReport(m, "pure-call", diag.Info, f.Name, b.Name,
						"result of call to pure function @%s is unused; the call survives only because the optimizer treats calls as effectful (inlining the site lets DCE remove it)", in.Callee))
				}
			}
		}
	}
	return out
}

// lintDeadParams flags parameters with zero uses in the callee body when
// live call sites exist: every one of them computes and passes an
// argument the callee provably ignores.
func lintDeadParams(m *ir.Module, ms *ModuleSummary) diag.List {
	var out diag.List
	for _, f := range m.Funcs {
		s := ms.Func(f.Name)
		if s.FanIn == 0 && !f.Exported {
			continue
		}
		for i, p := range s.Params {
			if !p.Dead {
				continue
			}
			out = append(out, ipReport(m, "ip-dead-param", diag.Warning, f.Name, "",
				"parameter %s (index %d) of @%s is dead: no instruction uses it, yet every call site computes and passes an argument for it", f.Entry().Params[i], i, f.Name))
		}
	}
	return out
}

// lintConstReturns flags functions whose return lattice converged to a
// single known constant while in-module call sites exist: each site can
// fold the call result to a literal once the site is inlined.
func lintConstReturns(m *ir.Module, ms *ModuleSummary) diag.List {
	var out diag.List
	for _, f := range m.Funcs {
		s := ms.Func(f.Name)
		if s.Return.State != ConstKnown || s.FanIn == 0 {
			continue
		}
		out = append(out, ipReport(m, "ip-const-return", diag.Warning, f.Name, "",
			"@%s provably returns the constant %d on every terminating path; all %d call sites can fold the result after inlining", f.Name, s.Return.K, s.FanIn))
	}
	return out
}

// lintUninitGlobals has two cases. A global that is loaded somewhere but
// stored nowhere always yields its zero initialization (globals are
// module-private, so this is exact). A global that is stored somewhere
// may still be read before that store executes: the read-before-write
// summaries surface such reads at entry points — non-called exported
// functions — including reads buried in wrapper callees.
func lintUninitGlobals(m *ir.Module, ms *ModuleSummary) diag.List {
	stored := make(map[string]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStoreG {
					stored[in.Global] = true
				}
			}
		}
	}
	var out diag.List
	reported := make(map[string]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpLoadG || stored[in.Global] || reported[in.Global] {
					continue
				}
				reported[in.Global] = true
				out = append(out, ipReport(m, "ip-uninit-global", diag.Warning, f.Name, b.Name,
					"global @%s is read but never written anywhere in the module; every load yields its zero initialization", in.Global))
			}
		}
	}
	for _, f := range m.Funcs {
		s := ms.Func(f.Name)
		if !f.Exported || s.FanIn > 0 {
			continue // only module entry points anchor the argument
		}
		for _, g := range s.ReadsBeforeWrite {
			if !stored[g] {
				continue // already reported as never-written above
			}
			out = append(out, ipReport(m, "ip-uninit-global", diag.Warning, f.Name, "",
				"global @%s may be read before its first write when @%s is entered from outside the module (an initializing store exists but is not on every path to the read)", g, f.Name))
		}
	}
	return out
}

// lintUnboundedRecursion reports one finding per SCC whose every member
// performs an in-SCC call on every path to every return: no invocation
// of any member can terminate.
func lintUnboundedRecursion(m *ir.Module, ms *ModuleSummary) diag.List {
	var out diag.List
	for _, scc := range ms.SCCs() {
		s := ms.Func(scc[0])
		if !s.UnboundedRecursion {
			continue
		}
		if len(scc) == 1 {
			out = append(out, ipReport(m, "ip-unbounded-recursion", diag.Warning, scc[0], "",
				"@%s always recurses: every path to a return performs another recursive call, so no invocation terminates", scc[0]))
			continue
		}
		names := make([]string, len(scc))
		for i, n := range scc {
			names[i] = "@" + n
		}
		out = append(out, ipReport(m, "ip-unbounded-recursion", diag.Warning, scc[0], "",
			"functions %s form an unboundedly recursive cycle: each member performs another in-cycle call before any return can execute, so no invocation terminates", strings.Join(names, ", ")))
	}
	return out
}
