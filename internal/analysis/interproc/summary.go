// Package interproc implements the interprocedural summary tier the
// paper's findings call for: local, per-site heuristics diverge from the
// optimal inlining configuration precisely because they lack
// whole-callgraph facts, so this package computes them once per module —
// a bottom-up fixpoint over the strongly connected components of the
// call graph producing one Summary per function — and exposes them three
// ways: cross-function lints (lints.go), the versioned per-site feature
// vectors consumed by internal/heuristic and internal/mlheur
// (features.go), and the inlined daemon's /analyze endpoint.
//
// Summaries are split into a cacheable core and a per-module overlay.
// The core is everything derivable from the function closure alone —
// purity, MOD/REF global sets, the constant-return lattice value,
// per-parameter usage, read-before-write global sets, loop-nest depth,
// recursion shape — and is cached corpus-wide (cache.go) under a
// content key derived from ir.Function.Fingerprint, so re-analyzing an
// unchanged function costs a map lookup. The overlay — fan-in/fan-out,
// incoming-argument constness, transitive size, export flags — depends
// on the surrounding module and is recomputed on every Analyze call; it
// is cheap by construction.
package interproc

import (
	"encoding/json"
	"fmt"
	"sort"

	"optinline/internal/callgraph"
	"optinline/internal/ir"
)

// ConstState is the lattice position of a ConstVal.
type ConstState uint8

// The three-point constant lattice: Bottom (no value ever produced — the
// optimistic start, and the final state of functions that never return),
// Known (every producing execution yields the same constant), Top (at
// least two values, or a value the analysis cannot pin down).
const (
	ConstBottom ConstState = iota
	ConstKnown
	ConstTop
)

// ConstVal is a value in the constant lattice.
type ConstVal struct {
	State ConstState
	K     int64 // meaningful only when State == ConstKnown
}

func known(k int64) ConstVal { return ConstVal{State: ConstKnown, K: k} }
func top() ConstVal          { return ConstVal{State: ConstTop} }

func (c ConstVal) join(o ConstVal) ConstVal {
	switch {
	case c.State == ConstBottom:
		return o
	case o.State == ConstBottom:
		return c
	case c.State == ConstKnown && o.State == ConstKnown && c.K == o.K:
		return c
	}
	return top()
}

// String renders the lattice value for diagnostics and tests.
func (c ConstVal) String() string {
	switch c.State {
	case ConstBottom:
		return "bottom"
	case ConstKnown:
		return fmt.Sprintf("const(%d)", c.K)
	}
	return "top"
}

// MarshalJSON emits {"state":"bottom"|"top"} or
// {"state":"known","value":N} — the /analyze wire form.
func (c ConstVal) MarshalJSON() ([]byte, error) {
	switch c.State {
	case ConstBottom:
		return []byte(`{"state":"bottom"}`), nil
	case ConstKnown:
		return []byte(fmt.Sprintf(`{"state":"known","value":%d}`, c.K)), nil
	}
	return []byte(`{"state":"top"}`), nil
}

// ParamSummary describes how one function parameter is used. Dead is
// exact (the parameter value has zero uses in the body); PassedOn,
// Escapes, and Returned track direct flow only — a parameter routed
// through an arithmetic op before being stored does not count as
// escaping, which is the sound direction for every consumer here (the
// IR has value semantics, so "escapes" means the raw value reaches a
// global store or the output stream).
type ParamSummary struct {
	Dead     bool `json:"dead"`
	PassedOn bool `json:"passedOn"` // appears as an argument of some call
	Escapes  bool `json:"escapes"`  // appears as the operand of a StoreG or Output
	Returned bool `json:"returned"` // appears as the operand of a Ret

	// Incoming joins the constness of the argument passed at every
	// in-module call site: Bottom when no site calls the function,
	// Known(k) when every site passes the literal k. Overlay fact.
	Incoming ConstVal `json:"incoming"`
}

// Summary is the interprocedural summary of one defined function.
// Fields below the overlay marker are recomputed per module; everything
// else is the cached core. Slices are shared between cache hits and must
// be treated as read-only.
type Summary struct {
	Name        string `json:"name"`
	Fingerprint uint64 `json:"-"`

	NumParams    int `json:"numParams"`
	OwnInstrs    int `json:"ownInstrs"`
	NumBlocks    int `json:"numBlocks"`
	CondBranches int `json:"condBranches"` // CondBr-terminated blocks

	// Pure mirrors analysis.AnalyzeEffects exactly: no store to a global
	// and no output anywhere in the closure, and no extern callee.
	Pure        bool `json:"pure"`
	EmitsOutput bool `json:"emitsOutput"` // closure may write the output stream
	CallsExtern bool `json:"callsExtern"` // closure calls an undefined function

	// Transitive MOD/REF sets over the closure, sorted. Extern callees
	// contribute nothing: globals are module-private by construction.
	ReadsGlobals  []string `json:"readsGlobals,omitempty"`
	WritesGlobals []string `json:"writesGlobals,omitempty"`

	// ReadsBeforeWrite lists globals some path may load before the
	// closure's first store to them (the interprocedural use-before-init
	// facts); MustWriteGlobals lists globals stored on every terminating
	// path. NeverReturns marks functions with no statically terminating
	// path, whose must-write set is vacuously the universe.
	ReadsBeforeWrite []string `json:"readsBeforeWrite,omitempty"`
	MustWriteGlobals []string `json:"mustWriteGlobals,omitempty"`
	NeverReturns     bool     `json:"neverReturns,omitempty"`

	Return ConstVal       `json:"return"`
	Params []ParamSummary `json:"params,omitempty"`

	MaxLoopDepth  int  `json:"maxLoopDepth"`
	SelfRecursive bool `json:"selfRecursive"`
	InCycle       bool `json:"inCycle"`
	SCCSize       int  `json:"sccSize"`

	// UnboundedRecursion: every member of the function's SCC performs an
	// in-SCC call on every path to every reachable return, so no
	// invocation of any member terminates (lints.go states the argument).
	UnboundedRecursion bool `json:"unboundedRecursion"`

	// Overlay facts, recomputed per module.
	Exported         bool `json:"exported"`
	FanIn            int  `json:"fanIn"`            // candidate edges targeting the function
	FanOut           int  `json:"fanOut"`           // candidate edges it originates
	TransitiveInstrs int  `json:"transitiveInstrs"` // distinct reachable defined bodies, counted once

	// callDepths holds the loop depth of each call instruction in body
	// order; the overlay maps it to site IDs (which are not part of the
	// content key and so cannot live in the core directly).
	callDepths []int
}

// ModuleSummary is the result of Analyze: one Summary per defined
// function plus the per-site overlay indexes.
type ModuleSummary struct {
	Funcs []*Summary // module order

	mod       *ir.Module
	graph     *callgraph.Graph
	byName    map[string]*Summary
	siteDepth map[int]int // call site -> loop depth of the enclosing block
	sccs      [][]string  // SCC member names, bottom-up, discovery order
}

// Func returns the summary of the named function, or nil if it is not
// defined in the module.
func (ms *ModuleSummary) Func(name string) *Summary { return ms.byName[name] }

// SiteLoopDepth returns the loop-nest depth of the block containing the
// given call site in its caller (0 = not inside any loop).
func (ms *ModuleSummary) SiteLoopDepth(site int) int { return ms.siteDepth[site] }

// SCCs returns the strongly connected components of the defined-callee
// call graph, bottom-up (callees before callers), members in discovery
// order. The slices are shared; treat them as read-only.
func (ms *ModuleSummary) SCCs() [][]string { return ms.sccs }

// JSON renders every summary in module order — the deterministic wire
// and golden-test form.
func (ms *ModuleSummary) JSON() ([]byte, error) {
	return json.MarshalIndent(ms.Funcs, "", "  ")
}

// Analyze computes the summaries of every function defined in m. The
// graph must have been built from m after ir.Module.AssignSites. A nil
// cache recomputes every core from scratch (the -no-interproc-cache
// differential oracle); a shared cache may be used concurrently from any
// number of goroutines and modules.
func Analyze(m *ir.Module, g *callgraph.Graph, c *Cache) *ModuleSummary {
	ms := &ModuleSummary{
		mod:       m,
		graph:     g,
		byName:    make(map[string]*Summary, len(m.Funcs)),
		siteDepth: make(map[int]int),
	}
	fps := make(map[string]uint64, len(m.Funcs))
	for _, f := range m.Funcs {
		fps[f.Name] = f.Fingerprint()
	}
	keys := make(map[string]Key, len(m.Funcs))
	closures := make(map[string]map[string]bool, len(m.Funcs))
	for _, scc := range sccsOf(m) {
		names := make([]string, len(scc))
		for i, f := range scc {
			names[i] = f.Name
		}
		ms.sccs = append(ms.sccs, names)

		key := sccKey(scc, fps, keys)
		compute := func() []Summary { return summarizeSCC(scc, m, ms.byName) }
		var cores []Summary
		if c != nil {
			cores = c.getOrCompute(key, compute)
		} else {
			cores = compute()
		}

		// The whole SCC shares one transitive closure: members reach each
		// other, so each reaches exactly the members plus everything any
		// out-of-SCC callee reaches.
		clo := make(map[string]bool, len(scc))
		for _, f := range scc {
			clo[f.Name] = true
		}
		for _, f := range scc {
			for _, in := range f.Calls() {
				if clo[in.Callee] {
					continue
				}
				for n := range closures[in.Callee] {
					clo[n] = true
				}
			}
		}
		transitive := 0
		for n := range clo {
			transitive += m.Func(n).NumInstrs()
		}

		for i, f := range scc {
			s := new(Summary)
			*s = cores[i]
			s.Params = append([]ParamSummary(nil), s.Params...)
			s.Name = f.Name
			s.Fingerprint = fps[f.Name]
			s.TransitiveInstrs = transitive
			keys[f.Name] = key
			closures[f.Name] = clo
			ms.byName[f.Name] = s
		}
	}
	for _, f := range m.Funcs {
		ms.Funcs = append(ms.Funcs, ms.byName[f.Name])
	}
	ms.overlay()
	return ms
}

// overlay fills the module-dependent facts: export flags, fan-in/out,
// site loop depths, and incoming-argument constness.
func (ms *ModuleSummary) overlay() {
	for _, f := range ms.mod.Funcs {
		s := ms.byName[f.Name]
		s.Exported = f.Exported
		i := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				ms.siteDepth[in.Site] = s.callDepths[i]
				i++
			}
		}
	}
	for i := range ms.graph.Edges {
		e := &ms.graph.Edges[i]
		ms.byName[e.Caller].FanOut++
		ms.byName[e.Callee].FanIn++
	}
	for _, f := range ms.mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				cs := ms.byName[in.Callee]
				if cs == nil {
					continue
				}
				for k, a := range in.Args {
					if k >= len(cs.Params) {
						break
					}
					v := top()
					if a.Def != nil && a.Def.Op == ir.OpConst {
						v = known(a.Def.Const)
					}
					cs.Params[k].Incoming = cs.Params[k].Incoming.join(v)
				}
			}
		}
	}
}

// sccsOf returns the strongly connected components of the defined-callee
// call graph, bottom-up: Tarjan emits an SCC only after every SCC it
// calls into, so callees always precede callers.
func sccsOf(m *ir.Module) [][]*ir.Function {
	index := make(map[string]int)
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]*ir.Function
	next := 0

	callees := func(f *ir.Function) []string {
		seen := make(map[string]bool)
		var out []string
		for _, in := range f.Calls() {
			if m.Func(in.Callee) != nil && !seen[in.Callee] {
				seen[in.Callee] = true
				out = append(out, in.Callee)
			}
		}
		return out
	}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees(m.Func(v)) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []*ir.Function
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, m.Func(w))
				if w == v {
					break
				}
			}
			// Tarjan pops in reverse discovery order; restore it.
			for i, j := 0, len(scc)-1; i < j; i, j = i+1, j-1 {
				scc[i], scc[j] = scc[j], scc[i]
			}
			sccs = append(sccs, scc)
		}
	}
	for _, f := range m.Funcs {
		if _, seen := index[f.Name]; !seen {
			strongconnect(f.Name)
		}
	}
	return sccs
}

// sccKey derives the content key of an SCC's core summaries. Member
// fingerprints pin each body (including the literal callee and global
// names it references — the linkage); binding every call, in body order,
// to either an in-SCC member index, the key of an already-summarized
// callee SCC, or an extern marker pins the resolution of those names.
// Equal keys therefore imply structurally identical closures, which
// makes the cached cores interchangeable across modules and runs.
func sccKey(scc []*ir.Function, fps map[string]uint64, keys map[string]Key) Key {
	inSCC := make(map[string]int, len(scc))
	for i, f := range scc {
		inSCC[f.Name] = i
	}
	h := ir.NewHasher()
	h.Str("optinline/interproc")
	h.Int(coreSchemaVersion)
	h.Int(len(scc))
	for _, f := range scc {
		h.Uint64(fps[f.Name])
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if j, ok := inSCC[in.Callee]; ok {
					h.Byte(1)
					h.Int(j)
				} else if k, ok := keys[in.Callee]; ok {
					h.Byte(2)
					h.Uint64(k.Hi)
					h.Uint64(k.Lo)
				} else {
					h.Byte(0) // extern
				}
			}
		}
	}
	hi, lo := h.Sum128()
	return Key{Hi: hi, Lo: lo}
}

// memberFacts is the per-member direct-scan state feeding the fixpoint.
type memberFacts struct {
	directEffect bool // StoreG or Output anywhere in the body
	directOutput bool
	callsUndef   bool
	reads        map[string]bool // working transitive REF set
	writes       map[string]bool // working transitive MOD set
	callees      []string        // defined callees, deduped
	paramIns     map[*ir.Value][]*ir.Value
	reachable    map[*ir.Block]bool
	rets         []*ir.Value // operands of reachable rets, block order
	pure         bool
	output       bool
	extern       bool
	ret          ConstVal
	rbw          *rbwState
}

// summarizeSCC computes the cacheable cores of one SCC. byName supplies
// the finished summaries of every out-of-SCC callee (bottom-up order
// guarantees they exist). The fixpoint is optimistic and monotone in
// every lattice — purity can only fall, output/extern/MOD/REF/RBW can
// only grow, returns only climb — so it terminates.
func summarizeSCC(scc []*ir.Function, m *ir.Module, byName map[string]*Summary) []Summary {
	n := len(scc)
	inSCC := make(map[string]int, n)
	for i, f := range scc {
		inSCC[f.Name] = i
	}
	cores := make([]Summary, n)
	facts := make([]*memberFacts, n)

	for i, f := range scc {
		mf := &memberFacts{
			reads:     make(map[string]bool),
			writes:    make(map[string]bool),
			paramIns:  make(map[*ir.Value][]*ir.Value),
			reachable: f.Reachable(),
			pure:      true,
			ret:       ConstVal{}, // Bottom
		}
		seenCallee := make(map[string]bool)
		condBranches := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpStoreG:
					mf.directEffect = true
					mf.writes[in.Global] = true
				case ir.OpOutput:
					mf.directEffect = true
					mf.directOutput = true
				case ir.OpLoadG:
					mf.reads[in.Global] = true
				case ir.OpCall:
					if m.Func(in.Callee) == nil {
						mf.callsUndef = true
					} else if !seenCallee[in.Callee] {
						seenCallee[in.Callee] = true
						mf.callees = append(mf.callees, in.Callee)
					}
				case ir.OpCondBr:
					condBranches++
				case ir.OpRet:
					if mf.reachable[b] {
						mf.rets = append(mf.rets, in.Args[0])
					}
				}
				// Branch-argument flow, from reachable blocks only: joins
				// over arguments that can never be passed would poison the
				// return lattice.
				if mf.reachable[b] {
					for _, s := range in.Succs {
						for k, a := range s.Args {
							p := s.Dest.Params[k]
							mf.paramIns[p] = append(mf.paramIns[p], a)
						}
					}
				}
			}
		}
		facts[i] = mf

		params := make([]ParamSummary, f.NumParams())
		used := usedValues(f)
		paramIdx := make(map[*ir.Value]int, len(params))
		for pi, p := range f.Entry().Params {
			params[pi].Dead = !used[p]
			paramIdx[p] = pi
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall, ir.OpStoreG, ir.OpOutput, ir.OpRet:
				default:
					continue
				}
				for _, a := range in.Args {
					pi, ok := paramIdx[a]
					if !ok {
						continue
					}
					switch in.Op {
					case ir.OpCall:
						params[pi].PassedOn = true
					case ir.OpStoreG, ir.OpOutput:
						params[pi].Escapes = true
					case ir.OpRet:
						params[pi].Returned = true
					}
				}
			}
		}

		selfRec := false
		for _, in := range f.Calls() {
			if in.Callee == f.Name {
				selfRec = true
				break
			}
		}
		cores[i] = Summary{
			NumParams:     f.NumParams(),
			OwnInstrs:     f.NumInstrs(),
			NumBlocks:     len(f.Blocks),
			CondBranches:  condBranches,
			Params:        params,
			SelfRecursive: selfRec,
			InCycle:       n > 1 || selfRec,
			SCCSize:       n,
		}
	}

	// Optimistic starts: pure, no output, no extern, direct MOD/REF,
	// Bottom returns; read-before-write starts empty with must-write at
	// the universe (rbwTop) for in-SCC callees.
	for i := range facts {
		facts[i].rbw = newRBWState()
	}
	calleeCore := func(name string) (*memberFacts, *Summary) {
		if j, ok := inSCC[name]; ok {
			return facts[j], nil
		}
		return nil, byName[name]
	}

	for changed := true; changed; {
		changed = false
		for i, f := range scc {
			mf := facts[i]

			pure := !mf.directEffect && !mf.callsUndef
			output := mf.directOutput
			extern := mf.callsUndef
			for _, c := range mf.callees {
				cf, cs := calleeCore(c)
				if cf != nil {
					pure = pure && cf.pure
					output = output || cf.output
					extern = extern || cf.extern
					for g := range cf.reads {
						if !mf.reads[g] {
							mf.reads[g] = true
							changed = true
						}
					}
					for g := range cf.writes {
						if !mf.writes[g] {
							mf.writes[g] = true
							changed = true
						}
					}
				} else {
					pure = pure && cs.Pure
					output = output || cs.EmitsOutput
					extern = extern || cs.CallsExtern
					for _, g := range cs.ReadsGlobals {
						if !mf.reads[g] {
							mf.reads[g] = true
							changed = true
						}
					}
					for _, g := range cs.WritesGlobals {
						if !mf.writes[g] {
							mf.writes[g] = true
							changed = true
						}
					}
				}
			}
			if pure != mf.pure || output != mf.output || extern != mf.extern {
				mf.pure, mf.output, mf.extern = pure, output, extern
				changed = true
			}

			calleeRet := func(name string) ConstVal {
				if cf, cs := calleeCore(name); cf != nil {
					return cf.ret
				} else if cs != nil {
					return cs.Return
				}
				return top() // extern calls produce some unknowable value
			}
			r := &resolver{
				memo:      make(map[*ir.Value]ConstVal),
				busy:      make(map[*ir.Value]bool),
				paramIns:  mf.paramIns,
				entry:     f.Entry(),
				calleeRet: calleeRet,
			}
			ret := ConstVal{}
			for _, v := range mf.rets {
				ret = ret.join(r.resolve(v))
			}
			if ret != mf.ret {
				mf.ret = ret
				changed = true
			}

			if rbwFunction(f, mf, calleeCore) {
				changed = true
			}
		}
	}

	for i := range scc {
		mf := facts[i]
		cores[i].Pure = mf.pure
		cores[i].EmitsOutput = mf.output
		cores[i].CallsExtern = mf.extern
		cores[i].ReadsGlobals = sortedKeys(mf.reads)
		cores[i].WritesGlobals = sortedKeys(mf.writes)
		cores[i].Return = mf.ret
		cores[i].ReadsBeforeWrite = sortedKeys(mf.rbw.mayReadFirst)
		cores[i].NeverReturns = mf.rbw.outTop
		if !mf.rbw.outTop {
			cores[i].MustWriteGlobals = sortedKeys(mf.rbw.mustWrite)
		}
	}

	// CFG-shape facts: loop depths and the unbounded-recursion property.
	unboundedAll := cores[0].InCycle
	for i, f := range scc {
		dom := f.Dominators()
		mf := facts[i]
		depths, maxDepth := loopDepths(f, dom, mf.reachable)
		cores[i].MaxLoopDepth = maxDepth
		var cd []int
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					cd = append(cd, depths[b])
				}
			}
		}
		cores[i].callDepths = cd
		if unboundedAll && !dominatedByInSCCCall(f, inSCC, dom, mf.reachable) {
			unboundedAll = false
		}
	}
	if unboundedAll {
		for i := range cores {
			cores[i].UnboundedRecursion = true
		}
	}
	return cores
}

// resolver computes the constant-lattice value a given SSA value carries,
// chasing block-parameter joins and callee return summaries. Cycles
// through loop-carried block parameters conservatively break to Top.
type resolver struct {
	memo      map[*ir.Value]ConstVal
	busy      map[*ir.Value]bool
	paramIns  map[*ir.Value][]*ir.Value
	entry     *ir.Block
	calleeRet func(string) ConstVal
}

func (r *resolver) resolve(v *ir.Value) ConstVal {
	if c, ok := r.memo[v]; ok {
		return c
	}
	if r.busy[v] {
		return top()
	}
	r.busy[v] = true
	c := r.compute(v)
	delete(r.busy, v)
	r.memo[v] = c
	return c
}

func (r *resolver) compute(v *ir.Value) ConstVal {
	if v.Def == nil {
		if v.Parm == r.entry {
			return top() // function parameter: caller-controlled
		}
		ins := r.paramIns[v]
		if len(ins) == 0 {
			return top()
		}
		acc := ConstVal{}
		for _, in := range ins {
			acc = acc.join(r.resolve(in))
		}
		return acc
	}
	switch v.Def.Op {
	case ir.OpConst:
		return known(v.Def.Const)
	case ir.OpCall:
		return r.calleeRet(v.Def.Callee)
	case ir.OpUn:
		a := r.resolve(v.Def.Args[0])
		switch a.State {
		case ConstBottom:
			return a
		case ConstKnown:
			return known(evalUn(v.Def.UnOp, a.K))
		}
		return top()
	case ir.OpBin:
		a := r.resolve(v.Def.Args[0])
		b := r.resolve(v.Def.Args[1])
		if a.State == ConstBottom || b.State == ConstBottom {
			return ConstVal{} // an operand is never produced
		}
		if a.State == ConstKnown && b.State == ConstKnown {
			return known(evalBin(v.Def.BinOp, a.K, b.K))
		}
		return top()
	}
	return top() // LoadG and anything else
}

// evalBin mirrors the interpreter's total arithmetic semantics exactly
// (internal/interp): division and modulo by zero yield 0, shifts mask
// the count to 0..63, comparisons yield 0/1.
func evalBin(op ir.BinOp, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return a >> (uint64(b) & 63)
	case ir.Eq:
		return b2i(a == b)
	case ir.Ne:
		return b2i(a != b)
	case ir.Lt:
		return b2i(a < b)
	case ir.Le:
		return b2i(a <= b)
	case ir.Gt:
		return b2i(a > b)
	case ir.Ge:
		return b2i(a >= b)
	}
	return 0
}

func evalUn(op ir.UnOp, a int64) int64 {
	if op == ir.Neg {
		return -a
	}
	return b2i(a == 0)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func usedValues(f *ir.Function) map[*ir.Value]bool {
	used := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				used[a] = true
			}
			for _, s := range in.Succs {
				for _, a := range s.Args {
					used[a] = true
				}
			}
		}
	}
	return used
}

func sortedKeys(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
