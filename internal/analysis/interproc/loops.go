package interproc

import "optinline/internal/ir"

// This file computes natural-loop nesting depths and the
// unbounded-recursion dominance property, both from the CFG shape alone
// (cacheable core facts).

// dominates reports whether a dominates b under the immediate-dominator
// relation (entry maps to nil; unreachable blocks are absent).
func dominates(idom map[*ir.Block]*ir.Block, a, b *ir.Block) bool {
	for x := b; x != nil; x = idom[x] {
		if x == a {
			return true
		}
	}
	return false
}

// loopDepths returns the natural-loop nesting depth of every reachable
// block and the function's maximum depth. A natural loop is the body of
// a back edge b->h where h dominates b: h plus every block that reaches
// b without passing through h; bodies sharing a header are merged. A
// block's depth is the number of loop headers whose body contains it.
func loopDepths(f *ir.Function, idom map[*ir.Block]*ir.Block, reachable map[*ir.Block]bool) (map[*ir.Block]int, int) {
	preds := f.Predecessors()
	bodies := make(map[*ir.Block]map[*ir.Block]bool)
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		for _, s := range b.Succs() {
			h := s.Dest
			if !dominates(idom, h, b) {
				continue
			}
			body := bodies[h]
			if body == nil {
				body = map[*ir.Block]bool{h: true}
				bodies[h] = body
			}
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[x] || !reachable[x] {
					continue
				}
				body[x] = true
				stack = append(stack, preds[x]...)
			}
		}
	}
	depth := make(map[*ir.Block]int, len(reachable))
	maxDepth := 0
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		d := 0
		for _, h := range f.Blocks {
			if body := bodies[h]; body != nil && body[b] {
				d++
			}
		}
		depth[b] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	return depth, maxDepth
}

// dominatedByInSCCCall reports whether some reachable block of f both
// performs a call to an SCC member and dominates every reachable ret
// block (vacuously true when no ret is reachable). When the property
// holds for every member of a cyclic SCC, every terminating invocation
// of any member would contain a completed in-SCC call — a terminating
// invocation of smaller call-tree depth — so by induction none
// terminates: the cycle is unboundedly recursive.
func dominatedByInSCCCall(f *ir.Function, inSCC map[string]int, idom map[*ir.Block]*ir.Block, reachable map[*ir.Block]bool) bool {
	var rets []*ir.Block
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		if t := b.Term(); t != nil && t.Op == ir.OpRet {
			rets = append(rets, b)
		}
	}
	if len(rets) == 0 {
		return true
	}
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		hasCall := false
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				if _, ok := inSCC[in.Callee]; ok {
					hasCall = true
					break
				}
			}
		}
		if !hasCall {
			continue
		}
		all := true
		for _, r := range rets {
			if !dominates(idom, b, r) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}
