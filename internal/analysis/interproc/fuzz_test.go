package interproc

import (
	"bytes"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/inline"
	"optinline/internal/lang"
	"optinline/internal/opt"
)

// FuzzInterprocSummaries is the cached-vs-scratch differential oracle:
// for seeded MinC programs, summaries and lint output computed through a
// shared content-addressed cache — cold, warm, and after a post-inline
// mutation of the module — must be byte-identical to a from-scratch
// recomputation. This is the proof obligation behind reusing cores
// across modules: fingerprint-keyed invalidation must be exact.
func FuzzInterprocSummaries(f *testing.F) {
	for seed := int64(0); seed < 30; seed++ {
		f.Add(seed)
	}
	shared := NewCache() // deliberately shared across every execution
	f.Fuzz(func(t *testing.T, seed int64) {
		src := lang.GenerateSource(seed, lang.GenOptions{})
		render := func(c *Cache) ([]byte, string) {
			m, err := lang.Compile("fuzz.minc", src)
			if err != nil {
				t.Fatal(err)
			}
			m.AssignSites()
			g := callgraph.Build(m)
			ms := Analyze(m, g, c)
			b, err := ms.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return b, Lints(m, g, ms).Text()
		}
		wantSum, wantLints := render(nil)
		for pass := 0; pass < 2; pass++ { // cold then warm
			gotSum, gotLints := render(shared)
			if !bytes.Equal(gotSum, wantSum) {
				t.Fatalf("seed %d pass %d: cached summaries != scratch\ncached:\n%s\nscratch:\n%s", seed, pass, gotSum, wantSum)
			}
			if gotLints != wantLints {
				t.Fatalf("seed %d pass %d: cached lints != scratch\ncached:\n%s\nscratch:\n%s", seed, pass, gotLints, wantLints)
			}
		}

		// Mutate: inline every second candidate site, re-optimize, and
		// check the mutated module the same way against the same shared
		// cache (stale entries must be unreachable, fresh ones correct).
		mutate := func(c *Cache) ([]byte, string) {
			m, err := lang.Compile("fuzz.minc", src)
			if err != nil {
				t.Fatal(err)
			}
			m.AssignSites()
			g := callgraph.Build(m)
			cfg := callgraph.NewConfig()
			for i, e := range g.Edges {
				if i%2 == 0 {
					cfg.Set(e.Site, true)
				}
			}
			if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
				t.Fatal(err)
			}
			opt.Module(m)
			g2 := callgraph.Build(m)
			ms := Analyze(m, g2, c)
			b, err := ms.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return b, Lints(m, g2, ms).Text()
		}
		wantSum2, wantLints2 := mutate(nil)
		gotSum2, gotLints2 := mutate(shared)
		if !bytes.Equal(gotSum2, wantSum2) {
			t.Fatalf("seed %d: post-inline cached summaries != scratch\ncached:\n%s\nscratch:\n%s", seed, gotSum2, wantSum2)
		}
		if gotLints2 != wantLints2 {
			t.Fatalf("seed %d: post-inline cached lints != scratch\ncached:\n%s\nscratch:\n%s", seed, gotLints2, wantLints2)
		}
	})
}
