package interproc

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"optinline/internal/analysis"
	"optinline/internal/callgraph"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/lang"
	"optinline/internal/opt"
)

func build(t *testing.T, src string) (*ir.Module, *callgraph.Graph) {
	t.Helper()
	m, err := lang.Compile("test.minc", src)
	if err != nil {
		t.Fatal(err)
	}
	m.AssignSites()
	return m, callgraph.Build(m)
}

func analyze(t *testing.T, src string) *ModuleSummary {
	t.Helper()
	m, g := build(t, src)
	return Analyze(m, g, nil)
}

func TestPurityMatchesAnalyzeEffects(t *testing.T) {
	srcs := []string{
		`
func sq(k) { return k * k; }
func noisy(k) { output k; return k; }
func wraps(k) { return sq(k) + 1; }
func wrapn(k) { return noisy(k); }
func ext(k) { return ext_rand(k); }
export func main(n) { return wraps(n) + wrapn(n) + ext(n); }`,
		`
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
export func main(n) { return even(n); }`,
		`
global g;
func reader(n) { return g + n; }
func writer(n) { g = n; return n; }
export func main(n) { return writer(reader(n)); }`,
	}
	for i := int64(0); i < 10; i++ {
		srcs = append(srcs, lang.GenerateSource(9000+i, lang.GenOptions{}))
	}
	for i, src := range srcs {
		m, g := build(t, src)
		ms := Analyze(m, g, nil)
		eff := analysis.AnalyzeEffects(m)
		for _, f := range m.Funcs {
			if got, want := ms.Func(f.Name).Pure, eff.Pure(f.Name); got != want {
				t.Errorf("src %d: Pure(@%s) = %v, AnalyzeEffects says %v", i, f.Name, got, want)
			}
		}
	}
}

func TestConstReturnLattice(t *testing.T) {
	ms := analyze(t, `
func answer() { return 42; }
func wrap() { return answer(); }
func fold() { return answer() + answer(); }
func branchy(n) { if (n > 0) { return 7; } return 7; }
func split(n) { if (n > 0) { return 1; } return 2; }
func ident(n) { return n; }
export func main(n) { return wrap() + fold() + branchy(n) + split(n) + ident(n); }`)
	want := map[string]ConstVal{
		"answer":  known(42),
		"wrap":    known(42),
		"fold":    known(84),
		"branchy": known(7),
		"split":   top(),
		"ident":   top(),
	}
	for name, w := range want {
		if got := ms.Func(name).Return; got != w {
			t.Errorf("Return(@%s) = %v, want %v", name, got, w)
		}
	}
}

func TestConstReturnThroughRecursion(t *testing.T) {
	// Every terminating path of both members returns 3: the optimistic
	// fixpoint must converge to Known(3), not Top.
	ms := analyze(t, `
func pingy(n) { if (n <= 0) { return 3; } return pongy(n - 1); }
func pongy(n) { if (n <= 0) { return 3; } return pingy(n - 1); }
export func main(n) { return pingy(n); }`)
	for _, name := range []string{"pingy", "pongy"} {
		if got := ms.Func(name).Return; got != known(3) {
			t.Errorf("Return(@%s) = %v, want const(3)", name, got)
		}
	}
}

func TestParamUsage(t *testing.T) {
	ms := analyze(t, `
global g;
func f(a, b, c, d) {
    g = b;
    output sink(c);
    return a;
}
func sink(x) { return x; }
export func main(n) { return f(n, n, n, 5); }`)
	s := ms.Func("f")
	if len(s.Params) != 4 {
		t.Fatalf("NumParams = %d, want 4", len(s.Params))
	}
	cases := []struct {
		i    int
		want ParamSummary
	}{
		{0, ParamSummary{Returned: true, Incoming: top()}},
		{1, ParamSummary{Escapes: true, Incoming: top()}},
		{2, ParamSummary{PassedOn: true, Incoming: top()}},
		{3, ParamSummary{Dead: true, Incoming: known(5)}},
	}
	for _, c := range cases {
		if s.Params[c.i] != c.want {
			t.Errorf("param %d = %+v, want %+v", c.i, s.Params[c.i], c.want)
		}
	}
}

func TestIncomingJoinsAllSites(t *testing.T) {
	ms := analyze(t, `
func f(a) { return a; }
export func main(n) { return f(4) + f(4) + f(9); }`)
	if got := ms.Func("f").Params[0].Incoming; got != top() {
		t.Errorf("Incoming = %v, want top (two distinct constants)", got)
	}
	ms = analyze(t, `
func f(a) { return a; }
export func main(n) { return f(4) + f(4); }`)
	if got := ms.Func("f").Params[0].Incoming; got != known(4) {
		t.Errorf("Incoming = %v, want const(4)", got)
	}
}

func TestModRefSets(t *testing.T) {
	ms := analyze(t, `
global a;
global b;
func readA() { return a; }
func writeB(n) { b = n; return n; }
func both(n) { return readA() + writeB(n); }
export func main(n) { return both(n); }`)
	s := ms.Func("both")
	if got := strings.Join(s.ReadsGlobals, ","); got != "a" {
		t.Errorf("ReadsGlobals(both) = %q, want \"a\"", got)
	}
	if got := strings.Join(s.WritesGlobals, ","); got != "b" {
		t.Errorf("WritesGlobals(both) = %q, want \"b\"", got)
	}
	if s.Pure {
		t.Error("both writes a global through a callee; Pure must be false")
	}
	if !ms.Func("readA").Pure {
		t.Error("readA only loads a global; loads are pure here")
	}
}

func TestLoopDepthsAndSiteDepth(t *testing.T) {
	m, g := build(t, `
func leaf(n) { return n + 1; }
export func main(n) {
    var acc = leaf(n);
    for (var i = 0; i < n; i = i + 1) {
        for (var j = 0; j < n; j = j + 1) {
            acc = acc + leaf(i * j);
        }
    }
    return acc;
}`)
	ms := Analyze(m, g, nil)
	if got := ms.Func("main").MaxLoopDepth; got != 2 {
		t.Errorf("MaxLoopDepth(main) = %d, want 2", got)
	}
	if got := ms.Func("leaf").MaxLoopDepth; got != 0 {
		t.Errorf("MaxLoopDepth(leaf) = %d, want 0", got)
	}
	depths := make(map[int]bool)
	for _, e := range g.Edges {
		depths[ms.SiteLoopDepth(e.Site)] = true
	}
	if !depths[0] || !depths[2] {
		t.Errorf("expected call sites at loop depths 0 and 2, got %v", depths)
	}
}

func TestUnboundedRecursion(t *testing.T) {
	ms := analyze(t, `
func spina(n) { return spinb(n + 1); }
func spinb(n) { return spina(n - 1); }
func self(n) { return self(n); }
func guarded(n) { if (n <= 0) { return 0; } return guarded(n - 1); }
export func main(n) { return spina(n) + self(n) + guarded(n); }`)
	for _, name := range []string{"spina", "spinb", "self"} {
		if !ms.Func(name).UnboundedRecursion {
			t.Errorf("@%s must be flagged unboundedly recursive", name)
		}
	}
	if ms.Func("guarded").UnboundedRecursion {
		t.Error("@guarded has a dominating base case; must not be flagged")
	}
	if ms.Func("main").UnboundedRecursion {
		t.Error("@main is not in any cycle")
	}
}

func TestReadsBeforeWrite(t *testing.T) {
	ms := analyze(t, `
global cfg;
func getcfg() { return cfg; }
func setup(n) { cfg = n; return n; }
export func cold(n) { return getcfg() + n; }
export func warm(n) {
    var x = setup(n);
    return getcfg() + x;
}`)
	if got := strings.Join(ms.Func("cold").ReadsBeforeWrite, ","); got != "cfg" {
		t.Errorf("ReadsBeforeWrite(cold) = %q, want \"cfg\" (read through the wrapper)", got)
	}
	if got := ms.Func("warm").ReadsBeforeWrite; len(got) != 0 {
		t.Errorf("ReadsBeforeWrite(warm) = %v, want empty (setup must-writes cfg first)", got)
	}
	if got := strings.Join(ms.Func("setup").MustWriteGlobals, ","); got != "cfg" {
		t.Errorf("MustWriteGlobals(setup) = %q, want \"cfg\"", got)
	}
}

func TestNeverReturns(t *testing.T) {
	ms := analyze(t, `
func spin(n) { return spin(n); }
func fine(n) { return n; }
export func main(n) { return spin(n) + fine(n); }`)
	if !ms.Func("spin").NeverReturns {
		t.Error("@spin has no terminating path; NeverReturns must hold")
	}
	if ms.Func("fine").NeverReturns {
		t.Error("@fine returns; NeverReturns must not hold")
	}
	if !ms.Func("main").NeverReturns {
		t.Error("@main calls @spin unconditionally; no terminating path")
	}
}

func TestTransitiveInstrsDeduplicates(t *testing.T) {
	// Diamond: top calls l and r; both call shared. shared must be
	// counted once, not twice.
	m, g := build(t, `
func shared(n) { return n * n + n - 1; }
func l(n) { return shared(n) + 1; }
func r(n) { return shared(n) + 2; }
func top2(n) { return l(n) + r(n); }
export func main(n) { return top2(n); }`)
	ms := Analyze(m, g, nil)
	sum := 0
	for _, name := range []string{"shared", "l", "r", "top2"} {
		sum += m.Func(name).NumInstrs()
	}
	if got := ms.Func("top2").TransitiveInstrs; got != sum {
		t.Errorf("TransitiveInstrs(top2) = %d, want %d (shared counted once)", got, sum)
	}
	if got, want := ms.Func("shared").TransitiveInstrs, m.Func("shared").NumInstrs(); got != want {
		t.Errorf("TransitiveInstrs(shared) = %d, want %d", got, want)
	}
}

// summariesJSON canonicalizes a module's summaries for parity checks.
func summariesJSON(t *testing.T, ms *ModuleSummary) []byte {
	t.Helper()
	b, err := ms.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCacheWarmMatchesScratch(t *testing.T) {
	cache := NewCache()
	for seed := int64(0); seed < 20; seed++ {
		src := lang.GenerateSource(seed, lang.GenOptions{})
		m1, g1 := build(t, src)
		scratch := summariesJSON(t, Analyze(m1, g1, nil))
		m2, g2 := build(t, src)
		cold := summariesJSON(t, Analyze(m2, g2, cache))
		m3, g3 := build(t, src)
		warm := summariesJSON(t, Analyze(m3, g3, cache))
		if !bytes.Equal(scratch, cold) {
			t.Fatalf("seed %d: cold cached summaries differ from scratch", seed)
		}
		if !bytes.Equal(scratch, warm) {
			t.Fatalf("seed %d: warm cached summaries differ from scratch", seed)
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("expected both hits and misses after cold+warm runs, got %+v", st)
	}
}

func TestCacheWarmRunIsAllHits(t *testing.T) {
	src := lang.GenerateSource(77, lang.GenOptions{})
	cache := NewCache()
	m1, g1 := build(t, src)
	Analyze(m1, g1, cache)
	before := cache.Stats()
	m2, g2 := build(t, src)
	Analyze(m2, g2, cache)
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Errorf("warm rerun recomputed summaries: misses %d -> %d", before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Errorf("warm rerun produced no hits: hits %d -> %d", before.Hits, after.Hits)
	}
}

func TestCacheInvalidationOnMutation(t *testing.T) {
	cache := NewCache()
	src := `
func leaf(n) { return n + 1; }
func mid(n) { return leaf(n) * 2; }
export func main(n) { return mid(n); }`
	m1, g1 := build(t, src)
	Analyze(m1, g1, cache)

	// Inline every candidate site and re-optimize: mutated bodies must
	// get fresh fingerprints (cache misses), and the cached-vs-scratch
	// summaries of the mutated module must still agree.
	m2, g2 := build(t, src)
	cfg := callgraph.NewConfig()
	for _, e := range g2.Edges {
		cfg.Set(e.Site, true)
	}
	if err := inline.Apply(m2, cfg, inline.Options{}); err != nil {
		t.Fatal(err)
	}
	opt.Module(m2)
	g2b := callgraph.Build(m2)
	before := cache.Stats()
	cached := summariesJSON(t, Analyze(m2, g2b, cache))
	after := cache.Stats()
	if after.Misses == before.Misses {
		t.Error("mutated module hit stale cache entries only; fingerprint invalidation failed")
	}

	m3, _ := build(t, src)
	if err := inline.Apply(m3, cfg, inline.Options{}); err != nil {
		t.Fatal(err)
	}
	opt.Module(m3)
	scratch := summariesJSON(t, Analyze(m3, callgraph.Build(m3), nil))
	if !bytes.Equal(cached, scratch) {
		t.Error("post-mutation cached summaries differ from scratch")
	}
}

func TestStructuralTwinsShareCache(t *testing.T) {
	cache := NewCache()
	m1, g1 := build(t, `
func leaf(n) { return n * 3; }
export func main(n) { return leaf(n); }`)
	Analyze(m1, g1, cache)
	before := cache.Stats()
	// Same bodies, different own names: fingerprints are own-name-free
	// and the callee reference is pinned by the key chain, so the twin
	// leaf SCC must hit.
	m2, g2 := build(t, `
func frond(n) { return n * 3; }
export func main(n) { return frond(n); }`)
	ms := Analyze(m2, g2, cache)
	after := cache.Stats()
	if after.Hits <= before.Hits {
		t.Errorf("structural twin did not share: hits %d -> %d", before.Hits, after.Hits)
	}
	if got := ms.Func("frond").Name; got != "frond" {
		t.Errorf("shared core must be re-labeled per module: Name = %q", got)
	}
}

func TestConcurrentSharedCacheDeterminism(t *testing.T) {
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = lang.GenerateSource(int64(300+i%3), lang.GenOptions{})
	}
	want := make([][]byte, len(srcs))
	for i, src := range srcs {
		m, g := build(t, src)
		want[i] = summariesJSON(t, Analyze(m, g, nil))
	}
	cache := NewCache()
	var wg sync.WaitGroup
	got := make([][]byte, len(srcs))
	for i, src := range srcs {
		wg.Add(1)
		go func(i int, src string) {
			defer wg.Done()
			m, err := lang.Compile("test.minc", src)
			if err != nil {
				panic(err)
			}
			m.AssignSites()
			g := callgraph.Build(m)
			b, err := Analyze(m, g, cache).JSON()
			if err != nil {
				panic(err)
			}
			got[i] = b
		}(i, src)
	}
	wg.Wait()
	for i := range srcs {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("module %d: concurrent shared-cache summaries differ from scratch", i)
		}
	}
}

func TestCachePanicDoesNotWedge(t *testing.T) {
	cache := NewCache()
	key := Key{Hi: 1, Lo: 2}
	func() {
		defer func() { recover() }()
		cache.getOrCompute(key, func() []Summary { panic("boom") })
	}()
	done := make(chan []Summary, 1)
	go func() {
		done <- cache.getOrCompute(key, func() []Summary { return []Summary{{OwnInstrs: 7}} })
	}()
	select {
	case cores := <-done:
		if len(cores) != 1 || cores[0].OwnInstrs != 7 {
			t.Errorf("retry after panic returned %+v", cores)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cache wedged after compute panic")
	}
}

func TestSiteFeatures(t *testing.T) {
	m, g := build(t, `
global acc;
func pureleaf(a, b) { return a * b; }
func impure(n) { acc = n; return n; }
export func main(n) {
    var r = 0;
    for (var i = 0; i < n; i = i + 1) {
        r = r + pureleaf(i, 3);
    }
    return r + impure(n);
}`)
	ms := Analyze(m, g, nil)
	var pureEdge, impureEdge *callgraph.Edge
	for i := range g.Edges {
		switch g.Edges[i].Callee {
		case "pureleaf":
			pureEdge = &g.Edges[i]
		case "impure":
			impureEdge = &g.Edges[i]
		}
	}
	if pureEdge == nil || impureEdge == nil {
		t.Fatal("expected candidate edges to pureleaf and impure")
	}
	x := ms.SiteFeatures(*pureEdge)
	callee := m.Func("pureleaf")
	if x[0] != float64(callee.NumInstrs()) {
		t.Errorf("callee_instrs = %v, want %d", x[0], callee.NumInstrs())
	}
	if x[2] != 2 {
		t.Errorf("num_args = %v, want 2", x[2])
	}
	if x[10] != 1 {
		t.Errorf("callee_pure = %v, want 1", x[10])
	}
	if x[16] != 1 {
		t.Errorf("site_loop_depth = %v, want 1 (call inside the for loop)", x[16])
	}
	y := ms.SiteFeatures(*impureEdge)
	if y[10] != 0 {
		t.Errorf("callee_pure(impure) = %v, want 0", y[10])
	}
	if y[11] != 1 {
		t.Errorf("callee_writes_globals(impure) = %v, want 1", y[11])
	}
	if y[16] != 0 {
		t.Errorf("site_loop_depth(impure) = %v, want 0", y[16])
	}
	if bySite, ok := ms.SiteFeaturesBySite(pureEdge.Site); !ok || bySite != x {
		t.Error("SiteFeaturesBySite disagrees with SiteFeatures")
	}
	if len(SiteFeatureNames) != NumSiteFeatures {
		t.Error("SiteFeatureNames length mismatch")
	}
}

func lintText(t *testing.T, src string) string {
	t.Helper()
	m, g := build(t, src)
	ms := Analyze(m, g, nil)
	return Lints(m, g, ms).Text()
}

func TestLintPureCall(t *testing.T) {
	out := lintText(t, `
func sq(k) { return k * k; }
func noisy(k) { output k; return k; }
export func main(n) {
    sq(n);
    noisy(n);
    return n;
}`)
	if !strings.Contains(out, "[pure-call]") || !strings.Contains(out, "@sq") {
		t.Errorf("expected one pure-call finding naming @sq:\n%s", out)
	}
	if strings.Contains(out, "@noisy") {
		t.Errorf("noisy has effects, must not be flagged:\n%s", out)
	}
}

func TestLintDeadParam(t *testing.T) {
	out := lintText(t, `
func f(a, unused) { return a; }
export func main(n) { return f(n, n * 7); }`)
	if !strings.Contains(out, "[ip-dead-param]") || !strings.Contains(out, "index 1") {
		t.Errorf("expected ip-dead-param on index 1:\n%s", out)
	}
	clean := lintText(t, `
func f(a, b) { return a + b; }
export func main(n) { return f(n, n * 7); }`)
	if strings.Contains(clean, "ip-dead-param") {
		t.Errorf("all params used; got:\n%s", clean)
	}
}

func TestLintConstReturn(t *testing.T) {
	out := lintText(t, `
func seven() { return 7; }
export func main(n) { return seven() + n; }`)
	if !strings.Contains(out, "[ip-const-return]") || !strings.Contains(out, "constant 7") {
		t.Errorf("expected ip-const-return naming 7:\n%s", out)
	}
	clean := lintText(t, `
func ident(n) { return n; }
export func main(n) { return ident(n); }`)
	if strings.Contains(clean, "ip-const-return") {
		t.Errorf("non-constant return flagged:\n%s", clean)
	}
}

func TestLintUninitGlobal(t *testing.T) {
	never := lintText(t, `
global zero;
export func main(n) { return zero + n; }`)
	if !strings.Contains(never, "[ip-uninit-global]") || !strings.Contains(never, "never written") {
		t.Errorf("expected never-written finding:\n%s", never)
	}
	wrapper := lintText(t, `
global cfg;
func getcfg() { return cfg; }
func setup(n) { cfg = n; return n; }
export func main(n) {
    if (n > 0) {
        var x = setup(n);
        return getcfg() + x;
    }
    return getcfg();
}`)
	if !strings.Contains(wrapper, "may be read before its first write") {
		t.Errorf("expected read-before-write finding through the wrapper:\n%s", wrapper)
	}
	clean := lintText(t, `
global cfg;
func getcfg() { return cfg; }
func setup(n) { cfg = n; return n; }
export func main(n) {
    var x = setup(n);
    return getcfg() + x;
}`)
	if strings.Contains(clean, "ip-uninit-global") {
		t.Errorf("setup always runs first; got:\n%s", clean)
	}
}

func TestLintUnboundedRecursion(t *testing.T) {
	out := lintText(t, `
func spina(n) { return spinb(n + 1); }
func spinb(n) { return spina(n - 1); }
export func main(n) { return spina(n); }`)
	if !strings.Contains(out, "[ip-unbounded-recursion]") || !strings.Contains(out, "@spina, @spinb") {
		t.Errorf("expected one cycle finding naming both members:\n%s", out)
	}
	if c := strings.Count(out, "ip-unbounded-recursion"); c != 1 {
		t.Errorf("want exactly one finding per SCC, got %d:\n%s", c, out)
	}
	clean := lintText(t, `
func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
export func main(n) { return even(n); }`)
	if strings.Contains(clean, "ip-unbounded-recursion") {
		t.Errorf("guarded mutual recursion flagged:\n%s", clean)
	}
}

func TestLintsDeterministicAndCacheInvariant(t *testing.T) {
	for seed := int64(50); seed < 56; seed++ {
		src := lang.GenerateSource(seed, lang.GenOptions{})
		m1, g1 := build(t, src)
		scratch := Lints(m1, g1, Analyze(m1, g1, nil)).Text()
		cache := NewCache()
		m2, g2 := build(t, src)
		Analyze(m2, g2, cache) // prime
		m3, g3 := build(t, src)
		warm := Lints(m3, g3, Analyze(m3, g3, cache)).Text()
		if scratch != warm {
			t.Errorf("seed %d: lint output differs warm vs scratch:\n--- scratch\n%s\n--- warm\n%s", seed, scratch, warm)
		}
	}
}
