// Package analysis implements the IR static-analyzer suite that backs
// checked compilation mode (internal/compile) and the inlinelint command.
// Where ir.Verify checks structural well-formedness (terminators, dominance,
// arities), these analyzers check semantic hygiene: unreachable blocks,
// unused block parameters, dead stores to globals, constant-condition
// branches, recursion cycles, and calls to undefined callees. The
// cross-function analyzers (pure-call and the ip-* family) live in the
// interproc subpackage, layered on per-function summaries.
//
// Severity policy: plain runs report lints as warnings and observations as
// infos. With Options.PostPipeline set — the module has been through the
// optimization pipeline to a fixpoint — properties the pipeline guarantees
// (no unreachable blocks, no constant-condition branches, no dead pure
// instructions) escalate to errors: their presence means a pass is broken or
// the fixpoint loop was cut short, which is exactly what checked compilation
// mode exists to catch.
package analysis

import (
	"fmt"
	"strings"

	"optinline/internal/diag"
	"optinline/internal/ir"
)

// Options selects the analysis mode.
type Options struct {
	// PostPipeline marks the module as the output of the optimization
	// pipeline run to a fixpoint. Pipeline-guaranteed properties escalate to
	// errors, and the post-only analyzers (unused-block-param, dead-instr)
	// run.
	PostPipeline bool
}

// Info describes one analyzer for documentation and CLI listings.
type Info struct {
	Name string
	Doc  string
}

// Analyzers lists the suite in execution order.
func Analyzers() []Info {
	return []Info{
		{"undefined-callee", "calls to functions not defined in the module (assumed extern)"},
		{"dead-global-store", "stores to globals that are never read anywhere in the module"},
		{"recursion-cycle", "cycles in the static call graph (inlined at most once)"},
		{"unreachable-block", "basic blocks unreachable from the function entry"},
		{"const-cond", "conditional branches on compile-time constants"},
		{"unused-block-param", "block parameters without uses (post-pipeline only)"},
		{"dead-instr", "pure instructions with unused results (post-pipeline only)"},
	}
}

// RunModule runs the full analyzer suite over the module and returns the
// sorted findings.
func RunModule(m *ir.Module, opts Options) diag.List {
	var out diag.List
	out = append(out, checkUndefinedCallees(m)...)
	out = append(out, checkDeadGlobalStores(m)...)
	out = append(out, checkRecursionCycles(m)...)
	for _, f := range m.Funcs {
		out = append(out, RunFunction(m, f, opts)...)
	}
	out.Sort()
	return out
}

// RunFunction runs the function-scoped analyzers over a single function.
// Checked compilation mode calls this after every optimization pass, where
// re-running the module-scoped analyzers would be wasted work.
func RunFunction(m *ir.Module, f *ir.Function, opts Options) diag.List {
	var out diag.List
	out = append(out, checkUnreachableBlocks(m, f, opts)...)
	out = append(out, checkConstConds(m, f, opts)...)
	if opts.PostPipeline {
		out = append(out, checkUnusedBlockParams(m, f)...)
		out = append(out, checkDeadInstrs(m, f)...)
	}
	return out
}

func report(m *ir.Module, analyzer string, sev diag.Severity, fn, block, format string, args ...interface{}) diag.Diagnostic {
	return diag.Diagnostic{
		Analyzer: analyzer,
		Severity: sev,
		Pos:      diag.Pos{File: m.Name},
		Func:     fn,
		Block:    block,
		Message:  fmt.Sprintf(format, args...),
	}
}

// checkUndefinedCallees flags calls whose callee is not defined in the
// module. The toolchain models these as extern calls (the interpreter gives
// them deterministic results, codegen a nominal size), so they are warnings,
// not errors — but their arity is unchecked and they block inlining, which
// is worth surfacing.
func checkUndefinedCallees(m *ir.Module) diag.List {
	var out diag.List
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && m.Func(in.Callee) == nil {
					out = append(out, report(m, "undefined-callee", diag.Warning, f.Name, b.Name,
						"call to undefined function @%s (assumed extern; arity unchecked, never inlinable)", in.Callee))
				}
			}
		}
	}
	return out
}

// checkDeadGlobalStores flags stores to globals that no instruction in the
// module ever loads. Globals are module-private and unobservable (only
// output and return values are), so such stores are dead weight the
// optimizer deliberately keeps (stores are effectful to it).
func checkDeadGlobalStores(m *ir.Module) diag.List {
	loaded := make(map[string]bool)
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpLoadG {
					loaded[in.Global] = true
				}
			}
		}
	}
	var out diag.List
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStoreG && !loaded[in.Global] {
					out = append(out, report(m, "dead-global-store", diag.Warning, f.Name, b.Name,
						"store to global @%s, which is never read anywhere in the module", in.Global))
				}
			}
		}
	}
	return out
}

// checkRecursionCycles reports the strongly connected components of the
// static call graph that contain a cycle. These are informational: the
// inliner handles them ("inline recursive functions at most once" via call
// trails), but they bound what exhaustive search can expand, so surfacing
// them explains search-space shapes.
func checkRecursionCycles(m *ir.Module) diag.List {
	var out diag.List
	for _, scc := range callSCCs(m) {
		if len(scc) == 1 {
			f := scc[0]
			if selfCalls(m.Func(f)) {
				out = append(out, report(m, "recursion-cycle", diag.Info, f, "",
					"function @%s is self-recursive (inlined at most once per call trail)", f))
			}
			continue
		}
		out = append(out, report(m, "recursion-cycle", diag.Info, scc[0], "",
			"recursion cycle through functions: %s", "@"+strings.Join(scc, ", @")))
	}
	return out
}

func selfCalls(f *ir.Function) bool {
	if f == nil {
		return false
	}
	for _, in := range f.Calls() {
		if in.Callee == f.Name {
			return true
		}
	}
	return false
}

// The pure-call analyzer (unused results of calls to provably pure
// functions) lives in internal/analysis/interproc with the rest of the
// cross-function lint family; its purity fixpoint is Summary.Pure, which
// agrees with AnalyzeEffects (kept here as the optimizer-facing oracle).

// checkUnreachableBlocks flags blocks unreachable from the entry. The
// optimizer's removeUnreachable pass deletes them at fixpoint, so their
// presence after the pipeline is an error.
func checkUnreachableBlocks(m *ir.Module, f *ir.Function, opts Options) diag.List {
	sev := diag.Warning
	if opts.PostPipeline {
		sev = diag.Error
	}
	reach := f.Reachable()
	var out diag.List
	for _, b := range f.Blocks {
		if !reach[b] {
			msg := "block is unreachable from the entry"
			if opts.PostPipeline {
				msg = "block is unreachable from the entry but survived the pipeline (removeUnreachable should have deleted it)"
			}
			out = append(out, report(m, "unreachable-block", sev, f.Name, b.Name, "%s", msg))
		}
	}
	return out
}

// checkConstConds flags conditional branches whose condition is a constant.
// foldBranches rewrites these at fixpoint, so one surviving the pipeline is
// an error; on raw lowered IR it is a lint (`if (0)`-style source).
func checkConstConds(m *ir.Module, f *ir.Function, opts Options) diag.List {
	sev := diag.Warning
	if opts.PostPipeline {
		sev = diag.Error
	}
	var out diag.List
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		cond := t.Args[0]
		if cond != nil && cond.Def != nil && cond.Def.Op == ir.OpConst {
			msg := fmt.Sprintf("conditional branch on constant %d (one arm is dead)", cond.Def.Const)
			if opts.PostPipeline {
				msg = fmt.Sprintf("conditional branch on constant %d survived the pipeline (foldBranches should have folded it)", cond.Def.Const)
			}
			out = append(out, report(m, "const-cond", sev, f.Name, b.Name, "%s", msg))
		}
	}
	return out
}

// checkUnusedBlockParams flags non-entry block parameters with no uses.
// Post-pipeline only: raw lowered IR passes every local through every join
// block by construction, so unused parameters there are expected and the
// finding would be pure noise. After the pipeline they mark values the
// pass stack kept alive without need (there is no dead-block-param pass),
// which is useful signal for optimizer work — informational, not an error.
func checkUnusedBlockParams(m *ir.Module, f *ir.Function) diag.List {
	used := usedValues(f)
	var out diag.List
	for i, b := range f.Blocks {
		if i == 0 {
			continue // entry params are the function signature
		}
		for _, p := range b.Params {
			if !used[p] {
				out = append(out, report(m, "unused-block-param", diag.Info, f.Name, b.Name,
					"block parameter %s has no uses", p))
			}
		}
	}
	return out
}

// checkDeadInstrs flags pure instructions whose results are unused.
// Post-pipeline only, at error severity: removeDeadInstrs deletes exactly
// these at fixpoint, so one surviving means DCE and the effect model
// disagreed — the invariant this analyzer shares with the optimizer via
// ir.Instr.HasSideEffects.
func checkDeadInstrs(m *ir.Module, f *ir.Function) diag.List {
	used := usedValues(f)
	var out diag.List
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Result != nil && !used[in.Result] && !in.HasSideEffects() {
				out = append(out, report(m, "dead-instr", diag.Error, f.Name, b.Name,
					"pure %s instruction with unused result survived the pipeline (removeDeadInstrs should have deleted it)", in.Op))
			}
		}
	}
	return out
}

// usedValues returns the set of values used as operands anywhere in f.
func usedValues(f *ir.Function) map[*ir.Value]bool {
	used := make(map[*ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				used[a] = true
			}
			for _, s := range in.Succs {
				for _, a := range s.Args {
					used[a] = true
				}
			}
		}
	}
	return used
}

// callSCCs returns the strongly connected components of the defined-callee
// call graph in deterministic (module, discovery) order.
func callSCCs(m *ir.Module) [][]string {
	index := make(map[string]int) // Tarjan discovery index
	lowlink := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0

	callees := func(name string) []string {
		f := m.Func(name)
		if f == nil {
			return nil
		}
		var out []string
		seen := make(map[string]bool)
		for _, in := range f.Calls() {
			if m.Func(in.Callee) != nil && !seen[in.Callee] {
				seen[in.Callee] = true
				out = append(out, in.Callee)
			}
		}
		return out
	}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees(v) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			// Tarjan pops in reverse discovery order; restore it.
			for i, j := 0, len(scc)-1; i < j; i, j = i+1, j-1 {
				scc[i], scc[j] = scc[j], scc[i]
			}
			sccs = append(sccs, scc)
		}
	}
	for _, f := range m.Funcs {
		if _, seen := index[f.Name]; !seen {
			strongconnect(f.Name)
		}
	}
	return sccs
}
