package analysis

import (
	"math/rand"
	"testing"

	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

func TestAnalyzeEffectsBasics(t *testing.T) {
	m := mustCompile(t, `
global g;
func pure_leaf(k) {
    return k * 2 + 1;
}
func pure_caller(k) {
    return pure_leaf(k) + pure_leaf(k + 1);
}
func writes_global(k) {
    g = k;
    return k;
}
func emits(k) {
    output k;
    return k;
}
func calls_impure(k) {
    return emits(k);
}
func calls_extern(k) {
    return ext_thing(k);
}
export func main(n) {
    return pure_caller(n) + writes_global(n) + calls_impure(n) + calls_extern(n);
}`)
	eff := AnalyzeEffects(m)
	want := map[string]bool{
		"pure_leaf":     true,
		"pure_caller":   true,
		"writes_global": false,
		"emits":         false,
		"calls_impure":  false,
		"calls_extern":  false, // extern callees are conservatively impure
		"main":          false,
	}
	for name, pure := range want {
		if eff.Pure(name) != pure {
			t.Errorf("Pure(%s) = %v, want %v", name, eff.Pure(name), pure)
		}
	}
	if eff.Pure("not_defined") {
		t.Error("undefined functions must not be pure")
	}
}

func TestAnalyzeEffectsMutualRecursion(t *testing.T) {
	m := mustCompile(t, `
func even(n) {
    if (n == 0) { return 1; }
    return odd(n - 1);
}
func odd(n) {
    if (n == 0) { return 0; }
    return even(n - 1);
}
export func main(n) {
    return even(n);
}`)
	eff := AnalyzeEffects(m)
	if !eff.Pure("even") || !eff.Pure("odd") {
		t.Error("effect-free mutual recursion should be pure (optimistic fixpoint)")
	}
}

// TestEffectfulRefinesHasSideEffects checks the containment the optimizer
// relies on: Effectful(in) implies in.HasSideEffects() for every instruction
// of a corpus of generated modules, so the purity analysis only ever refines
// the DCE predicate downward and the two can never disagree about what is
// safe to delete.
func TestEffectfulRefinesHasSideEffects(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := lang.GenerateSource(seed, lang.GenOptions{})
		m, err := lang.Compile("gen.minc", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eff := AnalyzeEffects(m)
		for _, f := range m.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if eff.Effectful(in) && !in.HasSideEffects() {
						t.Fatalf("seed %d: func %s: Effectful(%v) but !HasSideEffects — refinement went the wrong way", seed, f.Name, in.Op)
					}
				}
			}
		}
	}
}

// TestPurityAgreesWithInterpreter differentially validates the purity
// analysis: running any provably pure function in the interpreter must
// produce zero observable output, for many generated programs and argument
// choices.
func TestPurityAgreesWithInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for seed := int64(0); seed < 30; seed++ {
		src := lang.GenerateSource(seed, lang.GenOptions{})
		m, err := lang.Compile("gen.minc", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eff := AnalyzeEffects(m)
		for _, f := range m.Funcs {
			if !eff.Pure(f.Name) {
				continue
			}
			args := make([]int64, f.NumParams())
			for i := range args {
				args[i] = rng.Int63n(40) - 8
			}
			res, err := interp.Run(m, f.Name, args, interp.Options{})
			if err != nil {
				// Fuel exhaustion is about termination, not purity.
				continue
			}
			checked++
			if res.OutputLen != 0 {
				t.Fatalf("seed %d: pure function %s produced %d outputs", seed, f.Name, res.OutputLen)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pure functions exercised; generator or analysis changed shape")
	}
}

func TestEffectfulRefinesPureCalls(t *testing.T) {
	m := mustCompile(t, `
func sq(k) { return k * k; }
export func main(n) { return sq(n); }`)
	eff := AnalyzeEffects(m)
	call := m.Func("main").Calls()[0]
	if !call.HasSideEffects() {
		t.Fatal("the optimizer must treat calls as effectful")
	}
	if eff.Effectful(call) {
		t.Error("a call to a provably pure function should be refined to effect-free")
	}
	var storeg *ir.Instr
	m2 := mustCompile(t, `
global g;
export func main(n) { g = n; return n; }`)
	for _, in := range m2.Func("main").Blocks[0].Instrs {
		if in.Op == ir.OpStoreG {
			storeg = in
		}
	}
	if storeg == nil || !AnalyzeEffects(m2).Effectful(storeg) {
		t.Error("global stores must stay effectful")
	}
}
