package analysis

import (
	"strings"
	"testing"

	"optinline/internal/diag"
	"optinline/internal/ir"
	"optinline/internal/lang"
	"optinline/internal/opt"
)

func mustCompile(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := lang.Compile("test.minc", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUndefinedCalleeIsWarning(t *testing.T) {
	m := mustCompile(t, `
export func main(n) {
    return ext_helper(n) + 1;
}`)
	ds := RunModule(m, Options{}).ByAnalyzer("undefined-callee")
	if len(ds) != 1 {
		t.Fatalf("got %d undefined-callee findings, want 1: %v", len(ds), ds)
	}
	if ds[0].Severity != diag.Warning {
		t.Errorf("severity = %v, want warning (extern calls are supported)", ds[0].Severity)
	}
	if !strings.Contains(ds[0].Message, "ext_helper") {
		t.Errorf("message should name the callee: %q", ds[0].Message)
	}
}

func TestDeadGlobalStore(t *testing.T) {
	dead := mustCompile(t, `
global g;
export func main(n) {
    g = n;
    return n;
}`)
	if ds := RunModule(dead, Options{}).ByAnalyzer("dead-global-store"); len(ds) != 1 {
		t.Errorf("store-only global: got %d findings, want 1: %v", len(ds), ds)
	}

	live := mustCompile(t, `
global g;
export func main(n) {
    g = n;
    return g;
}`)
	if ds := RunModule(live, Options{}).ByAnalyzer("dead-global-store"); len(ds) != 0 {
		t.Errorf("loaded global: got %d findings, want 0: %v", len(ds), ds)
	}
}

func TestRecursionCycles(t *testing.T) {
	m := mustCompile(t, `
func self(n) {
    if (n <= 0) { return 0; }
    return self(n - 1);
}
func ping(n) {
    if (n <= 0) { return 0; }
    return pong(n - 1);
}
func pong(n) {
    return ping(n - 1);
}
export func main(n) {
    return self(n) + ping(n);
}`)
	ds := RunModule(m, Options{}).ByAnalyzer("recursion-cycle")
	if len(ds) != 2 {
		t.Fatalf("got %d recursion findings, want 2 (self + ping/pong): %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Severity != diag.Info {
			t.Errorf("recursion cycles are informational, got %v", d.Severity)
		}
	}
}

// The pure-call analyzer moved to internal/analysis/interproc (see
// TestLintPureCall there); RunModule must no longer report it.
func TestPureCallNotInRunModule(t *testing.T) {
	m := mustCompile(t, `
func sq(k) {
    return k * k;
}
export func main(n) {
    sq(n);
    return n;
}`)
	if ds := RunModule(m, Options{}).ByAnalyzer("pure-call"); len(ds) != 0 {
		t.Fatalf("pure-call moved to interproc, RunModule still reports it: %v", ds)
	}
	for _, info := range Analyzers() {
		if info.Name == "pure-call" {
			t.Error("Analyzers() still lists pure-call")
		}
	}
}

// deadBlockFunc builds: entry -> ret p0, plus an unreachable block.
func deadBlockFunc() *ir.Function {
	b := ir.NewFunction("f", 1, true)
	dead := b.Block("island", 0)
	b.Ret(b.Param(0))
	b.SetBlock(dead)
	b.Ret(b.Const(1))
	return b.Fn
}

func TestUnreachableBlockSeverityEscalates(t *testing.T) {
	m := ir.NewModule("m")
	m.AddFunc(deadBlockFunc())
	pre := RunFunction(m, m.Funcs[0], Options{}).ByAnalyzer("unreachable-block")
	if len(pre) != 1 || pre[0].Severity != diag.Warning {
		t.Errorf("pre-pipeline: got %v, want one warning", pre)
	}
	post := RunFunction(m, m.Funcs[0], Options{PostPipeline: true}).ByAnalyzer("unreachable-block")
	if len(post) != 1 || post[0].Severity != diag.Error {
		t.Errorf("post-pipeline: got %v, want one error", post)
	}
}

func TestConstCondSeverityEscalates(t *testing.T) {
	b := ir.NewFunction("f", 0, true)
	then := b.Block("then", 0)
	els := b.Block("els", 0)
	b.CondBr(b.Const(1), then, nil, els, nil)
	b.SetBlock(then)
	b.Ret(b.Const(1))
	b.SetBlock(els)
	b.Ret(b.Const(2))
	m := ir.NewModule("m")
	m.AddFunc(b.Fn)

	pre := RunFunction(m, m.Funcs[0], Options{}).ByAnalyzer("const-cond")
	if len(pre) != 1 || pre[0].Severity != diag.Warning {
		t.Errorf("pre-pipeline: got %v, want one warning", pre)
	}
	post := RunFunction(m, m.Funcs[0], Options{PostPipeline: true}).ByAnalyzer("const-cond")
	if len(post) != 1 || post[0].Severity != diag.Error {
		t.Errorf("post-pipeline: got %v, want one error", post)
	}
}

func TestDeadInstrPostPipelineOnly(t *testing.T) {
	b := ir.NewFunction("f", 1, true)
	b.Bin(ir.Add, b.Param(0), b.Const(1)) // result never used
	b.Ret(b.Param(0))
	m := ir.NewModule("m")
	m.AddFunc(b.Fn)

	if ds := RunFunction(m, m.Funcs[0], Options{}).ByAnalyzer("dead-instr"); len(ds) != 0 {
		t.Errorf("dead-instr must not run pre-pipeline: %v", ds)
	}
	ds := RunFunction(m, m.Funcs[0], Options{PostPipeline: true}).ByAnalyzer("dead-instr")
	// The adder and its constant operand are both dead.
	if len(ds) == 0 {
		t.Fatal("dead pure instruction not reported post-pipeline")
	}
	for _, d := range ds {
		if d.Severity != diag.Error {
			t.Errorf("dead-instr post-pipeline severity = %v, want error", d.Severity)
		}
	}
}

func TestOptimizedModulesAreCleanPostPipeline(t *testing.T) {
	srcs := []string{
		`export func main(n) {
    var acc = 0;
    var i = 0;
    while (i < n) {
        if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
        i = i + 1;
    }
    return acc;
}`,
		`global g;
func helper(k) {
    if (k > 10) { return k - 10; }
    return k;
}
export func main(n) {
    g = helper(n);
    output g;
    return g;
}`,
	}
	for i, src := range srcs {
		m := mustCompile(t, src)
		opt.Module(m)
		ds := RunModule(m, Options{PostPipeline: true}).MinSeverity(diag.Error)
		if len(ds) != 0 {
			t.Errorf("src %d: optimized module has analyzer errors:\n%s", i, ds.Text())
		}
	}
}

func TestAnalyzersListMatchesSuite(t *testing.T) {
	names := make(map[string]bool)
	for _, info := range Analyzers() {
		if info.Name == "" || info.Doc == "" {
			t.Errorf("analyzer entry %+v missing name or doc", info)
		}
		if names[info.Name] {
			t.Errorf("duplicate analyzer name %q", info.Name)
		}
		names[info.Name] = true
	}
	if len(names) != 7 {
		t.Errorf("suite lists %d analyzers, want 7 (pure-call moved to interproc)", len(names))
	}
}
