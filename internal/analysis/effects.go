package analysis

import "optinline/internal/ir"

// This file is the effect/purity analysis. It is deliberately layered on
// the same primitive the optimizer's dead-instruction elimination uses —
// ir.Instr.HasSideEffects — so the two can never disagree: Effectful below
// only ever *refines* HasSideEffects downward (a call to a provably pure
// function), never upward. Anything opt.removeDeadInstrs deletes is
// HasSideEffects-false and therefore Effectful-false here; the containment
// is checked by TestEffectfulRefinesHasSideEffects.

// Effects is the module-level result of the purity analysis.
type Effects struct {
	pure map[string]bool
}

// AnalyzeEffects computes, for every function defined in the module,
// whether it is pure: it executes no store to a global and no output, and
// every function it calls is itself defined and pure. Undefined (extern)
// callees are conservatively impure. The computation is an optimistic
// fixpoint, so mutually recursive functions with effect-free bodies are
// still recognized as pure.
//
// Purity here is about observable effects only; it says nothing about
// termination (the interpreter's fuel handles that concern).
func AnalyzeEffects(m *ir.Module) *Effects {
	pure := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		pure[f.Name] = true
	}
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if !pure[f.Name] {
				continue
			}
			if hasDirectEffect(f) || callsImpure(f, pure) {
				pure[f.Name] = false
				changed = true
			}
		}
	}
	return &Effects{pure: pure}
}

// Pure reports whether the named function is defined in the module and
// provably free of observable effects.
func (e *Effects) Pure(name string) bool { return e.pure[name] }

// Effectful reports whether the instruction can have an observable effect.
// It agrees with ir.Instr.HasSideEffects — the predicate the optimizer's
// DCE preserves instructions by — except that a call to a provably pure
// function is refined to effect-free. The refinement is one-directional:
// Effectful(in) implies in.HasSideEffects(), so the optimizer is always at
// least as conservative as this analysis.
func (e *Effects) Effectful(in *ir.Instr) bool {
	if in.Op == ir.OpCall {
		return !e.Pure(in.Callee)
	}
	return in.HasSideEffects()
}

// hasDirectEffect reports whether the function body itself writes a global
// or emits output. Calls are handled separately by the fixpoint.
func hasDirectEffect(f *ir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStoreG || in.Op == ir.OpOutput {
				return true
			}
		}
	}
	return false
}

// callsImpure reports whether the function calls anything not currently
// marked pure (including undefined callees, which are absent from the map).
func callsImpure(f *ir.Function, pure map[string]bool) bool {
	for _, in := range f.Calls() {
		if !pure[in.Callee] {
			return true
		}
	}
	return false
}
