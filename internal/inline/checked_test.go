package inline

import (
	"errors"
	"strings"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

func chainModule(t *testing.T) *ir.Module {
	t.Helper()
	m, err := lang.Compile("chain.minc", `
func leaf(k) {
    return k + 1;
}
func mid(k) {
    return leaf(k) * 2;
}
export func main(n) {
    return mid(n) + leaf(n);
}`)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allInline(m *ir.Module) *callgraph.Config {
	cfg := callgraph.NewConfig()
	for _, f := range m.Funcs {
		for _, in := range f.Calls() {
			cfg.Set(in.Site, true)
		}
	}
	return cfg
}

func TestApplyInvokesCheckPerStep(t *testing.T) {
	m := chainModule(t)
	var steps []string
	err := Apply(m, allInline(m), Options{Check: func(step string) error {
		steps = append(steps, step)
		return m.Verify()
	}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(steps) < 3 {
		t.Fatalf("check ran %d times, want one per expansion (>= 3): %v", len(steps), steps)
	}
	for _, s := range steps {
		if !strings.Contains(s, "<-") || !strings.Contains(s, "site ") {
			t.Errorf("step description %q should read \"site N: caller <- callee\"", s)
		}
	}
}

func TestApplyWrapsCheckFailureInStepError(t *testing.T) {
	m := chainModule(t)
	boom := errors.New("boom")
	calls := 0
	err := Apply(m, allInline(m), Options{Check: func(string) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}})
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StepError", err)
	}
	if se.Step == "" || !errors.Is(err, boom) {
		t.Errorf("StepError = %+v, want named step wrapping the check error", se)
	}
	if calls != 2 {
		t.Errorf("Apply kept expanding after a failed check (%d checks)", calls)
	}
}

func TestApplyWithPassingCheckMatchesUnchecked(t *testing.T) {
	plain := chainModule(t)
	checked := chainModule(t)
	if err := Apply(plain, allInline(plain), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Apply(checked, allInline(checked), Options{Check: func(string) error { return checked.Verify() }}); err != nil {
		t.Fatal(err)
	}
	if plain.String() != checked.String() {
		t.Error("the check hook must not change the transformation result")
	}
}
