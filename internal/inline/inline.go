// Package inline implements the function-inlining transformation on the IR
// and the application of whole inlining configurations.
//
// Inlining one call splices a clone of the callee's CFG into the caller:
// the call block branches into the cloned entry (passing the call
// arguments as block arguments), every cloned return branches to a fresh
// continuation block whose parameter replaces the call result.
//
// Cloned call instructions keep their original site IDs, so one
// configuration label covers every copy of a call ("coupled copies" in the
// paper). Recursion is bounded by the Trail mechanism: a call is never
// expanded if its own site already appears on its trail, which implements
// "inline recursive functions at most once".
package inline

import (
	"fmt"
	"sync"

	"optinline/internal/callgraph"
	"optinline/internal/ir"
)

// DefaultMaxInstrs bounds module growth during configuration application.
// It is a safety valve against pathological exponential expansion; the
// experiments never approach it.
const DefaultMaxInstrs = 4_000_000

// Call inlines a single call instruction within f. The call must be an
// instruction of f and callee must be the called function. Returns an error
// if the call cannot be located in f.
func Call(f *ir.Function, call *ir.Instr, callee *ir.Function) error {
	blockIdx, instrIdx := -1, -1
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			if in == call {
				blockIdx, instrIdx = bi, ii
				break
			}
		}
		if blockIdx >= 0 {
			break
		}
	}
	if blockIdx < 0 {
		return fmt.Errorf("inline: call to %s not found in %s", call.Callee, f.Name)
	}
	if len(call.Args) != callee.NumParams() {
		return fmt.Errorf("inline: call to %s has %d args, want %d",
			call.Callee, len(call.Args), callee.NumParams())
	}
	host := f.Blocks[blockIdx]

	body := callee.Clone()
	// Extend the trail of every cloned call: it was materialized by
	// expanding this site.
	for _, b := range body.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				trail := make([]int, 0, len(call.Trail)+len(in.Trail)+1)
				trail = append(trail, call.Trail...)
				trail = append(trail, call.Site)
				trail = append(trail, in.Trail...)
				in.Trail = trail
			}
		}
	}

	// One shared name pool for the continuation and the cloned blocks: the
	// new blocks are not in f.Blocks until the splice below, so checking
	// f.Blocks alone would let them collide with each other.
	names := newNamePool(f)

	// Continuation block: receives the return value as its parameter and
	// takes over the instructions after the call (including the original
	// terminator).
	cont := &ir.Block{Name: names.unique(host.Name + ".cont")}
	retParam := f.NewValue("")
	retParam.Parm = cont
	cont.Params = []*ir.Value{retParam}
	cont.Instrs = append(cont.Instrs, host.Instrs[instrIdx+1:]...)

	// The host block now ends by branching into the cloned entry with the
	// call arguments.
	host.Instrs = host.Instrs[:instrIdx]
	host.Instrs = append(host.Instrs, &ir.Instr{
		Op:    ir.OpBr,
		Succs: []ir.Succ{{Dest: body.Entry(), Args: append([]*ir.Value(nil), call.Args...)}},
	})

	// Rewrite cloned returns into branches to the continuation.
	for _, b := range body.Blocks {
		t := b.Term()
		if t != nil && t.Op == ir.OpRet {
			rv := t.Args[0]
			t.Op = ir.OpBr
			t.Args = nil
			t.Succs = []ir.Succ{{Dest: cont, Args: []*ir.Value{rv}}}
		}
	}

	// Splice: cloned blocks (renamed for readability) then the continuation.
	insert := make([]*ir.Block, 0, len(body.Blocks)+1)
	for _, b := range body.Blocks {
		b.Name = names.unique(fmt.Sprintf("%s.%s", callee.Name, b.Name))
		insert = append(insert, b)
	}
	insert = append(insert, cont)
	rest := append([]*ir.Block(nil), f.Blocks[blockIdx+1:]...)
	f.Blocks = append(f.Blocks[:blockIdx+1], append(insert, rest...)...)

	// The call result is now the continuation parameter.
	replaceUses(f, call.Result, retParam)
	return nil
}

// Options configures Apply.
type Options struct {
	// MaxInstrs bounds the total module instruction count during expansion;
	// 0 selects DefaultMaxInstrs.
	MaxInstrs int

	// Check, when non-nil, is invoked after every individual inline
	// expansion with a description of the step ("site N: caller <- callee").
	// A non-nil return aborts Apply with a *StepError naming that step —
	// checked compilation mode uses this to attribute the first invariant
	// violation to the exact expansion that introduced it.
	Check func(step string) error
}

// StepError attributes an invariant violation to the inline expansion that
// introduced it.
type StepError struct {
	Step string // "site N: caller <- callee"
	Err  error
}

func (e *StepError) Error() string {
	return fmt.Sprintf("inline step %q broke an invariant: %v", e.Step, e.Err)
}

func (e *StepError) Unwrap() error { return e.Err }

// Apply expands every call site labeled inline in cfg, including labeled
// calls that only materialize as clones during expansion. The module is
// mutated; callers that need the original should pass m.Clone().
func Apply(m *ir.Module, cfg *callgraph.Config, opts Options) error {
	maxInstrs := opts.MaxInstrs
	if maxInstrs == 0 {
		maxInstrs = DefaultMaxInstrs
	}

	type work struct {
		fn   *ir.Function
		call *ir.Instr
	}
	var queue []work
	seen := make(map[*ir.Instr]bool) // guards against re-queuing a call that
	// moved into a freshly created continuation block
	push := func(fn *ir.Function, in *ir.Instr) {
		if in.Op != ir.OpCall || !cfg.Inline(in.Site) || seen[in] {
			return
		}
		if m.Func(in.Callee) == nil {
			return
		}
		for _, s := range in.Trail {
			if s == in.Site {
				return // recursion bound: this site was already expanded
			}
		}
		seen[in] = true
		queue = append(queue, work{fn, in})
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				push(f, in)
			}
		}
	}

	total := m.NumInstrs()
	// One reusable pre-expansion block set, cleared per expansion: Apply runs
	// once per per-function cache miss, and allocating a fresh map per
	// expansion was a measurable slice of the evaluation engine's garbage.
	before := blockSetPool.Get().(map[*ir.Block]bool)
	defer func() {
		clear(before)
		blockSetPool.Put(before)
	}()
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		callee := m.Func(w.call.Callee)
		if callee == nil {
			continue
		}
		if total+callee.NumInstrs() > maxInstrs {
			return fmt.Errorf("inline: module exceeds %d instructions while applying %s", maxInstrs, cfg)
		}
		// Locate and inline; the call may have moved blocks but its
		// instruction identity is stable. Capture cloned calls by scanning
		// the blocks added for this expansion.
		clear(before)
		for _, b := range w.fn.Blocks {
			before[b] = true
		}
		if err := Call(w.fn, w.call, callee); err != nil {
			return err
		}
		if opts.Check != nil {
			step := fmt.Sprintf("site %d: %s <- %s", w.call.Site, w.fn.Name, callee.Name)
			if err := opts.Check(step); err != nil {
				return &StepError{Step: step, Err: err}
			}
		}
		total += callee.NumInstrs()
		for _, b := range w.fn.Blocks {
			if before[b] {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in != w.call {
					push(w.fn, in)
				}
			}
		}
	}
	return nil
}

// blockSetPool recycles Apply's pre-expansion block set.
var blockSetPool = sync.Pool{
	New: func() any { return make(map[*ir.Block]bool, 16) },
}

// namePool hands out block names that are unique against both the
// function's existing blocks and every name the pool already issued.
type namePool struct {
	taken map[string]bool
}

func newNamePool(f *ir.Function) *namePool {
	taken := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		taken[b.Name] = true
	}
	return &namePool{taken: taken}
}

func (np *namePool) unique(name string) string {
	cand := name
	for i := 2; np.taken[cand]; i++ {
		cand = fmt.Sprintf("%s%d", name, i)
	}
	np.taken[cand] = true
	return cand
}

func replaceUses(f *ir.Function, old, repl *ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = repl
				}
			}
			for si := range in.Succs {
				for i, a := range in.Succs[si].Args {
					if a == old {
						in.Succs[si].Args[i] = repl
					}
				}
			}
		}
	}
}
