package inline

import (
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/interp"
	"optinline/internal/ir"
)

const src = `
global @g

func @double(%x) {
entry:
  %two = const 2
  %r = mul %x, %two
  ret %r
}

func @clamp(%x) {
entry:
  %zero = const 0
  %c = lt %x, %zero
  condbr %c, low, ok
low:
  ret %zero
ok:
  ret %x
}

func @combo(%a, %b) {
entry:
  %x = call @double(%a) !site 1
  %y = call @clamp(%b) !site 2
  %s = add %x, %y
  storeg @g, %s
  ret %s
}

func @rec(%n) {
entry:
  %zero = const 0
  %stop = le %n, %zero
  condbr %stop, base, more
base:
  ret %zero
more:
  %one = const 1
  %m = sub %n, %one
  %r = call @rec(%m) !site 3
  output %r
  %s = add %r, %n
  ret %s
}

export func @main(%n) {
entry:
  %a = call @combo(%n, %n) !site 4
  %b = call @rec(%n) !site 5
  %gv = loadg @g
  %s = add %a, %b
  %t = add %s, %gv
  output %t
  ret %t
}
`

func parse(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse("inl", src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func behaviour(t *testing.T, m *ir.Module, n int64) [3]uint64 {
	t.Helper()
	res, err := interp.Run(m, "main", []int64{n}, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Observable()
}

func TestInlineSingleCallPreservesSemantics(t *testing.T) {
	for site := 1; site <= 5; site++ {
		m := parse(t)
		want := behaviour(t, m, 4)
		cfg := callgraph.NewConfig().Set(site, true)
		if err := Apply(m, cfg, Options{}); err != nil {
			t.Fatalf("site %d: %v", site, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("site %d: verify: %v\n%s", site, err, m.String())
		}
		if got := behaviour(t, m, 4); got != want {
			t.Fatalf("site %d changed behaviour: %v vs %v", site, got, want)
		}
	}
}

func TestInlineRemovesLabeledCalls(t *testing.T) {
	m := parse(t)
	cfg := callgraph.NewConfig().Set(1, true).Set(2, true).Set(4, true)
	if err := Apply(m, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	// No remaining call instruction may carry an inline-labeled site
	// (except calls blocked by the recursion bound, none here).
	for _, f := range m.Funcs {
		for _, in := range f.Calls() {
			if cfg.Inline(in.Site) {
				t.Fatalf("call site %d survived in %s", in.Site, f.Name)
			}
		}
	}
}

func TestCoupledClones(t *testing.T) {
	// Inlining site 4 clones combo's body into main; combo's inner calls
	// (sites 1, 2) appear both in combo and in the clone. Labeling site 1
	// inline must expand BOTH copies.
	m := parse(t)
	cfg := callgraph.NewConfig().Set(4, true).Set(1, true)
	if err := Apply(m, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		for _, in := range f.Calls() {
			if in.Site == 1 {
				t.Fatalf("coupled copy of site 1 survived in %s", f.Name)
			}
		}
	}
	if got, want := behaviour(t, m, 5), behaviour(t, parse(t), 5); got != want {
		t.Fatalf("behaviour changed: %v vs %v", got, want)
	}
}

func TestRecursiveInlineBounded(t *testing.T) {
	m := parse(t)
	cfg := callgraph.NewConfig().Set(3, true).Set(5, true)
	if err := Apply(m, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	// rec's recursive call must still exist (expanded exactly once per
	// expansion context), with the site on its trail.
	found := false
	for _, f := range m.Funcs {
		for _, in := range f.Calls() {
			if in.Site == 3 {
				found = true
				has := false
				for _, s := range in.Trail {
					if s == 3 {
						has = true
					}
				}
				if !has {
					t.Fatal("surviving recursive call lacks its own site on the trail")
				}
			}
		}
	}
	if !found {
		t.Fatal("recursive call disappeared entirely")
	}
	if got, want := behaviour(t, m, 6), behaviour(t, parse(t), 6); got != want {
		t.Fatalf("behaviour changed: %v vs %v", got, want)
	}
}

func TestApplyAllConfigsPreserveSemantics(t *testing.T) {
	// Exhaustive: all 32 configurations over the 5 sites.
	for mask := 0; mask < 32; mask++ {
		m := parse(t)
		want := behaviour(t, m, 3)
		cfg := callgraph.NewConfig()
		for s := 1; s <= 5; s++ {
			if mask&(1<<(s-1)) != 0 {
				cfg.Set(s, true)
			}
		}
		if err := Apply(m, cfg, Options{}); err != nil {
			t.Fatalf("mask %05b: %v", mask, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("mask %05b: verify: %v", mask, err)
		}
		if got := behaviour(t, m, 3); got != want {
			t.Fatalf("mask %05b changed behaviour: %v vs %v", mask, got, want)
		}
	}
}

func TestApplyIsDeterministic(t *testing.T) {
	cfg := callgraph.NewConfig().Set(1, true).Set(4, true).Set(5, true)
	m1, m2 := parse(t), parse(t)
	if err := Apply(m1, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Apply(m2, cfg, Options{}); err != nil {
		t.Fatal(err)
	}
	if m1.String() != m2.String() {
		t.Fatal("Apply is not deterministic")
	}
}

func TestMaxInstrsGuard(t *testing.T) {
	m := parse(t)
	cfg := callgraph.NewConfig().Set(4, true).Set(1, true).Set(2, true)
	err := Apply(m, cfg, Options{MaxInstrs: 10})
	if err == nil {
		t.Fatal("expected growth-bound error")
	}
}

func TestCallErrors(t *testing.T) {
	m := parse(t)
	f := m.Func("main")
	other := m.Func("combo")
	// A call instruction that is not in f.
	foreign := other.Calls()[0]
	if err := Call(f, foreign, m.Func("double")); err == nil {
		t.Fatal("expected not-found error")
	}
	// Arity mismatch.
	own := f.Calls()[0] // call @combo(%n, %n)
	if err := Call(f, own, m.Func("double")); err == nil {
		t.Fatal("expected arity error")
	}
}

// Property test: on randomly generated modules, every random configuration
// preserves observable behaviour. This is the central correctness property
// of the substrate.
func TestRandomModulesRandomConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		m := randomModule(rng, trial)
		if err := m.Verify(); err != nil {
			t.Fatalf("trial %d: generated module invalid: %v", trial, err)
		}
		arg := int64(rng.Intn(10))
		base, err := interp.Run(m, "entry0", []int64{arg}, interp.Options{})
		if err != nil {
			t.Fatalf("trial %d: base run: %v", trial, err)
		}
		g := callgraph.Build(m)
		for c := 0; c < 8; c++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				if rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			mc := m.Clone()
			if err := Apply(mc, cfg, Options{}); err != nil {
				t.Fatalf("trial %d cfg %v: %v", trial, cfg, err)
			}
			if err := mc.Verify(); err != nil {
				t.Fatalf("trial %d cfg %v: verify: %v", trial, cfg, err)
			}
			res, err := interp.Run(mc, "entry0", []int64{arg}, interp.Options{})
			if err != nil {
				t.Fatalf("trial %d cfg %v: run: %v", trial, cfg, err)
			}
			if res.Observable() != base.Observable() {
				t.Fatalf("trial %d cfg %v: behaviour changed", trial, cfg)
			}
		}
	}
}

// randomModule builds a small random module with a call DAG plus an
// occasional self-recursive function. Kept local to avoid depending on the
// workload generator from a lower-level package's tests.
func randomModule(rng *rand.Rand, id int) *ir.Module {
	m := ir.NewModule("rand")
	m.AddGlobal("g")
	n := 3 + rng.Intn(5)
	names := make([]string, n)
	for i := range names {
		names[i] = "f" + string(rune('a'+i))
	}
	// Build from the leaves up so calls target already-known names.
	for i := n - 1; i >= 0; i-- {
		b := ir.NewFunction(names[i], 1, false)
		x := b.Param(0)
		v := x
		steps := 1 + rng.Intn(4)
		for s := 0; s < steps; s++ {
			switch rng.Intn(5) {
			case 0:
				c := b.Const(int64(rng.Intn(7)))
				v = b.Bin(ir.Add, v, c)
			case 1:
				c := b.Const(int64(1 + rng.Intn(3)))
				v = b.Bin(ir.Mul, v, c)
			case 2:
				if i < n-1 {
					callee := names[i+1+rng.Intn(n-i-1)]
					v = b.Call(callee, v)
				}
			case 3:
				b.Output(v)
			case 4:
				b.StoreG("g", v)
				v = b.LoadG("g")
			}
		}
		// Occasional bounded self-recursion, strictly decreasing on the
		// parameter so it terminates for any non-negative argument.
		if rng.Intn(4) == 0 {
			zero := b.Const(0)
			cnd := b.Bin(ir.Gt, x, zero)
			recB := b.Block("rec", 0)
			done := b.Block("done", 0)
			b.CondBr(cnd, recB, nil, done, nil)
			b.SetBlock(recB)
			one := b.Const(1)
			dec := b.Bin(ir.Sub, x, one)
			r := b.Call(names[i], dec)
			s := b.Bin(ir.Add, r, v)
			b.Ret(s)
			b.SetBlock(done)
			b.Ret(v)
		} else {
			b.Ret(v)
		}
		m.AddFunc(b.Fn)
	}
	eb := ir.NewFunction("entry0", 1, true)
	arg := eb.Param(0)
	sum := eb.Const(0)
	for i := 0; i < 2+rng.Intn(3); i++ {
		r := eb.Call(names[rng.Intn(n)], arg)
		sum = eb.Bin(ir.Add, sum, r)
	}
	eb.Output(sum)
	eb.Ret(sum)
	m.AddFunc(eb.Fn)
	m.AssignSites()
	return m
}
