// Package stats provides the small statistical and rendering helpers the
// experiment harness uses: percentiles, geometric means, histograms, and
// fixed-width text tables in the spirit of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank
// on a sorted copy. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of positive values; non-positive
// values are skipped. It returns 0 if nothing remains.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Sum returns the sum.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Table renders rows as a fixed-width text table with a header row and a
// separator, right-aligning numeric-looking cells.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func (t *Table) String() string {
	ncol := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			if isNumeric(c) {
				fmt.Fprintf(&sb, "%*s", widths[i], c)
			} else {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot, digits := false, false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
			digits = true
		case r == '-' && i == 0:
		case r == '.' && !dot:
			dot = true
		case r == '%' && i == len(s)-1:
		case r == 'x' && i == len(s)-1:
		default:
			return false
		}
	}
	return digits
}

// Bar renders a horizontal ASCII bar chart of labeled values scaled to
// width characters.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	max := Max(values)
	if max <= 0 {
		max = 1
	}
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	var sb strings.Builder
	for i, v := range values {
		n := int(v / max * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s | %s %.1f\n", lw, labels[i], strings.Repeat("#", n), v)
	}
	return sb.String()
}

// Histogram buckets integer samples and renders counts per bucket.
func Histogram(samples []int) map[int]int {
	h := make(map[int]int)
	for _, s := range samples {
		h[s]++
	}
	return h
}
