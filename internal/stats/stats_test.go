package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 5}, {75, 8}, {95, 10}, {100, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%v=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileUnsortedInputUntouched(t *testing.T) {
	xs := []float64{5, 1, 3}
	if Median(xs) != 3 {
		t.Fatal("median wrong")
	}
	if xs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean=%v", g)
	}
	if g := GeoMean([]float64{4, 0, -1}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean with nonpositive=%v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean")
	}
}

func TestMinMaxMeanSum(t *testing.T) {
	xs := []float64{3, -1, 4}
	if Min(xs) != -1 || Max(xs) != 4 || Sum(xs) != 6 || Mean(xs) != 2 {
		t.Fatalf("min/max/sum/mean wrong: %v %v %v %v", Min(xs), Max(xs), Sum(xs), Mean(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 || Mean(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
}

func TestPercentileBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	var tb Table
	tb.Header = []string{"name", "value", "pct"}
	tb.AddRow("alpha", 42, 3.14159)
	tb.AddRow("beta-long-name", -7, "12%")
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") || !strings.Contains(out, "12%") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestBar(t *testing.T) {
	out := Bar([]string{"a", "bb"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "##########") {
		t.Fatalf("bar output:\n%s", out)
	}
	if !strings.Contains(out, "#####") {
		t.Fatal("half bar missing")
	}
	if Bar(nil, nil, 0) != "" {
		t.Fatal("empty bar should be empty")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{1, 1, 2, 5})
	if h[1] != 2 || h[2] != 1 || h[5] != 1 || len(h) != 3 {
		t.Fatalf("hist=%v", h)
	}
}

func TestIsNumeric(t *testing.T) {
	for s, want := range map[string]bool{
		"42": true, "-3.5": true, "97%": true, "2x": true,
		"abc": false, "": false, "1.2.3": false, "-": false,
	} {
		if got := isNumeric(s); got != want {
			t.Errorf("isNumeric(%q)=%v", s, got)
		}
	}
}
