package stats

import "fmt"

// CacheStats aggregates the hit/miss counters of a memoization cache. The
// compile driver exposes its configuration-level and component-level size
// caches through this type, and the CLIs render it after a run.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Total returns the number of lookups.
func (s CacheStats) Total() int64 { return s.Hits + s.Misses }

// HitRate returns the fraction of lookups served from the cache, in [0, 1].
func (s CacheStats) HitRate() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Add returns the element-wise sum of two counters (for aggregating across
// compilers, e.g. the whole experiment corpus).
func (s CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits + o.Hits, Misses: s.Misses + o.Misses}
}

func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate)", s.Hits, s.Misses, s.HitRate()*100)
}

// DeltaStats counts the incremental evaluation engine's work: Evals is the
// number of configurations priced by delta (a subset of the compiler's
// evaluation counter), DirtyFuncs the total functions those prices
// recomputed — everything else was reused from the base handle.
type DeltaStats struct {
	Evals      int64
	DirtyFuncs int64
}

// AvgDirty returns the mean number of functions recomputed per delta-priced
// configuration.
func (s DeltaStats) AvgDirty() float64 {
	if s.Evals > 0 {
		return float64(s.DirtyFuncs) / float64(s.Evals)
	}
	return 0
}

// Add returns the element-wise sum (for aggregating across compilers).
func (s DeltaStats) Add(o DeltaStats) DeltaStats {
	return DeltaStats{Evals: s.Evals + o.Evals, DirtyFuncs: s.DirtyFuncs + o.DirtyFuncs}
}

func (s DeltaStats) String() string {
	return fmt.Sprintf("%d delta evals, %d dirty functions (%.1f avg/eval)",
		s.Evals, s.DirtyFuncs, s.AvgDirty())
}
