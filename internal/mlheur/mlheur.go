// Package mlheur implements the research direction of the paper's Section 6
// ("Learning inlining heuristics"): the exhaustive search produces, for the
// first time, *optimal* inlining decisions to train on — prior learned
// inliners had to train on heuristic explorations.
//
// The model is deliberately simple and dependency-free: logistic regression
// over hand-picked call-site features, trained with full-batch gradient
// descent. The point is not model sophistication but the pipeline the
// paper envisions: exhaustive search -> labeled decisions -> learned
// heuristic -> compare against the hand-written cost model.
package mlheur

import (
	"fmt"
	"math"

	"optinline/internal/analysis/interproc"
	"optinline/internal/callgraph"
	"optinline/internal/ir"
)

// NFeatures is the dimensionality of the call-site feature vector —
// the interproc.SiteFeatures schema (FeatureSchemaVersion documents the
// vector's meaning; slots 0-9 are the original local features, 10-19
// the interprocedural summary features).
const NFeatures = interproc.NumSiteFeatures

// FeatureSchemaVersion is the SiteFeatures schema this package trains
// against. Persisted weights are meaningless across versions.
const FeatureSchemaVersion = interproc.FeatureSchemaVersion

// FeatureNames documents each feature slot, in order.
var FeatureNames = interproc.SiteFeatureNames

// Features is one call site's feature vector.
type Features = interproc.FeatureVector

// Extractor computes feature vectors for the candidate edges of one
// module. It runs the interprocedural summary analysis once at
// construction; each Extract call is then a table lookup. A non-nil
// cache shares summary cores across modules and runs.
type Extractor struct {
	ms *interproc.ModuleSummary
}

// NewExtractor analyzes the module and returns a per-edge extractor.
func NewExtractor(m *ir.Module, g *callgraph.Graph, cache *interproc.Cache) *Extractor {
	return &Extractor{ms: interproc.Analyze(m, g, cache)}
}

// Extract returns the feature vector of a candidate edge.
func (x *Extractor) Extract(e callgraph.Edge) Features { return x.ms.SiteFeatures(e) }

// Summaries exposes the underlying module summary (shared, read-only).
func (x *Extractor) Summaries() *interproc.ModuleSummary { return x.ms }

// Extract computes the features of a single candidate edge. It
// re-analyzes the module on every call; loops over many edges should
// build one Extractor instead.
func Extract(m *ir.Module, g *callgraph.Graph, e callgraph.Edge) Features {
	return NewExtractor(m, g, nil).Extract(e)
}

// Example is one labeled training instance.
type Example struct {
	X      Features
	Inline bool
}

// Dataset labels every candidate edge of a module with the decision an
// optimal configuration made for it. Recursive edges are skipped (the
// search labels them, but the learned heuristic, like the hand-written one,
// never inlines recursion).
func Dataset(m *ir.Module, g *callgraph.Graph, optimal *callgraph.Config) []Example {
	x := NewExtractor(m, g, nil)
	var out []Example
	for _, e := range g.Edges {
		if e.Recursive {
			continue
		}
		out = append(out, Example{
			X:      x.Extract(e),
			Inline: optimal.Inline(e.Site),
		})
	}
	return out
}

// Model is a logistic-regression inlining policy. W holds one weight per
// feature plus a bias term in the last slot.
type Model struct {
	W     [NFeatures + 1]float64
	Mean  Features // feature standardization (training-set statistics)
	Scale Features
}

// TrainOptions tunes gradient descent; zero values select defaults.
type TrainOptions struct {
	Epochs int     // default 400
	Rate   float64 // default 0.5
	L2     float64 // default 1e-4
}

// Train fits a model on the examples with full-batch gradient descent.
// Training is deterministic: no randomness is involved.
func Train(examples []Example, opt TrainOptions) (*Model, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("mlheur: empty training set")
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 400
	}
	if opt.Rate <= 0 {
		opt.Rate = 0.5
	}
	if opt.L2 <= 0 {
		opt.L2 = 1e-4
	}
	mo := &Model{}
	// Standardize features.
	for j := 0; j < NFeatures; j++ {
		var sum, sq float64
		for _, ex := range examples {
			sum += ex.X[j]
		}
		mean := sum / float64(len(examples))
		for _, ex := range examples {
			d := ex.X[j] - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(len(examples)))
		if std < 1e-9 {
			std = 1
		}
		mo.Mean[j] = mean
		mo.Scale[j] = std
	}
	n := float64(len(examples))
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		var grad [NFeatures + 1]float64
		for _, ex := range examples {
			p := mo.predictStd(mo.standardize(ex.X))
			y := 0.0
			if ex.Inline {
				y = 1
			}
			err := p - y
			std := mo.standardize(ex.X)
			for j := 0; j < NFeatures; j++ {
				grad[j] += err * std[j]
			}
			grad[NFeatures] += err
		}
		for j := 0; j <= NFeatures; j++ {
			g := grad[j]/n + opt.L2*mo.W[j]
			mo.W[j] -= opt.Rate * g
		}
	}
	return mo, nil
}

func (mo *Model) standardize(x Features) Features {
	var s Features
	for j := 0; j < NFeatures; j++ {
		s[j] = (x[j] - mo.Mean[j]) / mo.Scale[j]
	}
	return s
}

func (mo *Model) predictStd(s Features) float64 {
	z := mo.W[NFeatures]
	for j := 0; j < NFeatures; j++ {
		z += mo.W[j] * s[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict returns the inline probability for a feature vector.
func (mo *Model) Predict(x Features) float64 {
	return mo.predictStd(mo.standardize(x))
}

// Decide reports whether the model inlines a site with the given features.
func (mo *Model) Decide(x Features) bool { return mo.Predict(x) >= 0.5 }

// Config applies the policy to every candidate edge of a module. Recursive
// edges are never inlined.
func (mo *Model) Config(m *ir.Module, g *callgraph.Graph) *callgraph.Config {
	x := NewExtractor(m, g, nil)
	cfg := callgraph.NewConfig()
	for _, e := range g.Edges {
		if e.Recursive {
			continue
		}
		if mo.Decide(x.Extract(e)) {
			cfg.Set(e.Site, true)
		}
	}
	return cfg
}

// Accuracy returns the fraction of examples the model labels correctly.
func (mo *Model) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hit := 0
	for _, ex := range examples {
		if mo.Decide(ex.X) == ex.Inline {
			hit++
		}
	}
	return float64(hit) / float64(len(examples))
}

// MajorityBaseline returns the accuracy of always predicting the majority
// class — the bar any useful model must clear.
func MajorityBaseline(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	inline := 0
	for _, ex := range examples {
		if ex.Inline {
			inline++
		}
	}
	if inline*2 < len(examples) {
		inline = len(examples) - inline
	}
	return float64(inline) / float64(len(examples))
}
