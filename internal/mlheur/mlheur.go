// Package mlheur implements the research direction of the paper's Section 6
// ("Learning inlining heuristics"): the exhaustive search produces, for the
// first time, *optimal* inlining decisions to train on — prior learned
// inliners had to train on heuristic explorations.
//
// The model is deliberately simple and dependency-free: logistic regression
// over hand-picked call-site features, trained with full-batch gradient
// descent. The point is not model sophistication but the pipeline the
// paper envisions: exhaustive search -> labeled decisions -> learned
// heuristic -> compare against the hand-written cost model.
package mlheur

import (
	"fmt"
	"math"

	"optinline/internal/callgraph"
	"optinline/internal/ir"
)

// NFeatures is the dimensionality of the call-site feature vector.
const NFeatures = 10

// FeatureNames documents each feature slot, in order.
var FeatureNames = [NFeatures]string{
	"callee_instrs",
	"callee_blocks",
	"num_args",
	"const_args",
	"caller_instrs",
	"callee_in_degree",
	"callee_out_degree",
	"single_caller_internal",
	"callee_exported",
	"callee_has_branches",
}

// Features is one call site's feature vector.
type Features [NFeatures]float64

// Extract computes the features of a candidate edge.
func Extract(m *ir.Module, g *callgraph.Graph, e callgraph.Edge) Features {
	var x Features
	callee := m.Func(e.Callee)
	caller := m.Func(e.Caller)
	if callee == nil || caller == nil {
		return x
	}
	branches := 0
	for _, b := range callee.Blocks {
		if t := b.Term(); t != nil && t.Op == ir.OpCondBr {
			branches++
		}
	}
	in := g.InDegree(e.Callee)
	x[0] = float64(callee.NumInstrs())
	x[1] = float64(len(callee.Blocks))
	x[2] = float64(e.NumArgs)
	x[3] = float64(e.ConstArgs)
	x[4] = float64(caller.NumInstrs())
	x[5] = float64(in)
	x[6] = float64(g.OutDegree(e.Callee))
	if in == 1 && !callee.Exported {
		x[7] = 1
	}
	if callee.Exported {
		x[8] = 1
	}
	x[9] = float64(branches)
	return x
}

// Example is one labeled training instance.
type Example struct {
	X      Features
	Inline bool
}

// Dataset labels every candidate edge of a module with the decision an
// optimal configuration made for it. Recursive edges are skipped (the
// search labels them, but the learned heuristic, like the hand-written one,
// never inlines recursion).
func Dataset(m *ir.Module, g *callgraph.Graph, optimal *callgraph.Config) []Example {
	var out []Example
	for _, e := range g.Edges {
		if e.Recursive {
			continue
		}
		out = append(out, Example{
			X:      Extract(m, g, e),
			Inline: optimal.Inline(e.Site),
		})
	}
	return out
}

// Model is a logistic-regression inlining policy. W holds one weight per
// feature plus a bias term in the last slot.
type Model struct {
	W     [NFeatures + 1]float64
	Mean  Features // feature standardization (training-set statistics)
	Scale Features
}

// TrainOptions tunes gradient descent; zero values select defaults.
type TrainOptions struct {
	Epochs int     // default 400
	Rate   float64 // default 0.5
	L2     float64 // default 1e-4
}

// Train fits a model on the examples with full-batch gradient descent.
// Training is deterministic: no randomness is involved.
func Train(examples []Example, opt TrainOptions) (*Model, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("mlheur: empty training set")
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 400
	}
	if opt.Rate <= 0 {
		opt.Rate = 0.5
	}
	if opt.L2 <= 0 {
		opt.L2 = 1e-4
	}
	mo := &Model{}
	// Standardize features.
	for j := 0; j < NFeatures; j++ {
		var sum, sq float64
		for _, ex := range examples {
			sum += ex.X[j]
		}
		mean := sum / float64(len(examples))
		for _, ex := range examples {
			d := ex.X[j] - mean
			sq += d * d
		}
		std := math.Sqrt(sq / float64(len(examples)))
		if std < 1e-9 {
			std = 1
		}
		mo.Mean[j] = mean
		mo.Scale[j] = std
	}
	n := float64(len(examples))
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		var grad [NFeatures + 1]float64
		for _, ex := range examples {
			p := mo.predictStd(mo.standardize(ex.X))
			y := 0.0
			if ex.Inline {
				y = 1
			}
			err := p - y
			std := mo.standardize(ex.X)
			for j := 0; j < NFeatures; j++ {
				grad[j] += err * std[j]
			}
			grad[NFeatures] += err
		}
		for j := 0; j <= NFeatures; j++ {
			g := grad[j]/n + opt.L2*mo.W[j]
			mo.W[j] -= opt.Rate * g
		}
	}
	return mo, nil
}

func (mo *Model) standardize(x Features) Features {
	var s Features
	for j := 0; j < NFeatures; j++ {
		s[j] = (x[j] - mo.Mean[j]) / mo.Scale[j]
	}
	return s
}

func (mo *Model) predictStd(s Features) float64 {
	z := mo.W[NFeatures]
	for j := 0; j < NFeatures; j++ {
		z += mo.W[j] * s[j]
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict returns the inline probability for a feature vector.
func (mo *Model) Predict(x Features) float64 {
	return mo.predictStd(mo.standardize(x))
}

// Decide reports whether the model inlines a site with the given features.
func (mo *Model) Decide(x Features) bool { return mo.Predict(x) >= 0.5 }

// Config applies the policy to every candidate edge of a module. Recursive
// edges are never inlined.
func (mo *Model) Config(m *ir.Module, g *callgraph.Graph) *callgraph.Config {
	cfg := callgraph.NewConfig()
	for _, e := range g.Edges {
		if e.Recursive {
			continue
		}
		if mo.Decide(Extract(m, g, e)) {
			cfg.Set(e.Site, true)
		}
	}
	return cfg
}

// Accuracy returns the fraction of examples the model labels correctly.
func (mo *Model) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hit := 0
	for _, ex := range examples {
		if mo.Decide(ex.X) == ex.Inline {
			hit++
		}
	}
	return float64(hit) / float64(len(examples))
}

// MajorityBaseline returns the accuracy of always predicting the majority
// class — the bar any useful model must clear.
func MajorityBaseline(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	inline := 0
	for _, ex := range examples {
		if ex.Inline {
			inline++
		}
	}
	if inline*2 < len(examples) {
		inline = len(examples) - inline
	}
	return float64(inline) / float64(len(examples))
}
