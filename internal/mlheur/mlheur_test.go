package mlheur

import (
	"math"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/search"
	"optinline/internal/workload"
)

func TestTrainSeparableConverges(t *testing.T) {
	// Label = "callee is small": feature 0 below 5.
	var exs []Example
	for i := 0; i < 40; i++ {
		var x Features
		x[0] = float64(i % 10)
		exs = append(exs, Example{X: x, Inline: x[0] < 5})
	}
	mo, err := Train(exs, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if acc := mo.Accuracy(exs); acc < 0.95 {
		t.Fatalf("accuracy on separable data: %.2f", acc)
	}
}

func TestTrainDeterministic(t *testing.T) {
	var exs []Example
	for i := 0; i < 30; i++ {
		var x Features
		x[0] = float64(i)
		x[3] = float64(i % 3)
		exs = append(exs, Example{X: x, Inline: i%2 == 0})
	}
	a, _ := Train(exs, TrainOptions{})
	b, _ := Train(exs, TrainOptions{})
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("training not deterministic")
		}
	}
}

func TestTrainEmpty(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("expected error on empty training set")
	}
}

func TestPredictMonotoneInWeightedFeature(t *testing.T) {
	var exs []Example
	for i := 0; i < 20; i++ {
		var x Features
		x[0] = float64(i)
		exs = append(exs, Example{X: x, Inline: i < 10})
	}
	mo, _ := Train(exs, TrainOptions{})
	var small, large Features
	small[0], large[0] = 1, 19
	if mo.Predict(small) <= mo.Predict(large) {
		t.Fatal("model did not learn that small callees inline")
	}
}

func TestMajorityBaseline(t *testing.T) {
	exs := []Example{{Inline: true}, {Inline: true}, {Inline: false}}
	if got := MajorityBaseline(exs); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Fatalf("baseline=%v", got)
	}
	if MajorityBaseline(nil) != 0 {
		t.Fatal("empty baseline")
	}
}

// corpusDataset builds a labeled dataset from certified-optimal decisions
// over a small generated corpus, returning train/test halves by file parity.
func corpusDataset(t *testing.T) (train, test []Example, testFiles []*compile.Compiler) {
	t.Helper()
	p := workload.Profile{
		Name: "mltrain", Files: 14, TotalEdges: 80,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.06, BranchProb: 0.5, MultiRootPct: 0.12,
	}
	bench := workload.Generate(p)
	idx := 0
	for _, f := range bench.Files {
		c := compile.New(f.Module, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		res, ok := search.Optimal(c, search.Options{MaxSpace: 1 << 12})
		if !ok {
			continue
		}
		ds := Dataset(c.Module(), g, res.Config)
		if idx%2 == 0 {
			train = append(train, ds...)
		} else {
			test = append(test, ds...)
			testFiles = append(testFiles, c)
		}
		idx++
	}
	if len(train) < 10 || len(test) < 10 {
		t.Skipf("corpus too small: train=%d test=%d", len(train), len(test))
	}
	return train, test, testFiles
}

func TestLearnedPolicyBeatsMajorityOnHeldOut(t *testing.T) {
	train, test, _ := corpusDataset(t)
	mo, err := Train(train, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	acc := mo.Accuracy(test)
	base := MajorityBaseline(test)
	// The learned policy should at least track the majority class and
	// usually beat it; a large shortfall means the features are broken.
	if acc < base-0.05 {
		t.Fatalf("held-out accuracy %.2f well below majority %.2f", acc, base)
	}
}

func TestLearnedConfigIsValidAndComparable(t *testing.T) {
	train, _, testFiles := corpusDataset(t)
	mo, err := Train(train, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range testFiles {
		cfg := mo.Config(c.Module(), c.Graph())
		for _, e := range c.Graph().Edges {
			if e.Recursive && cfg.Inline(e.Site) {
				t.Fatal("learned policy inlined a recursive edge")
			}
		}
		// The configuration must compile and produce a sane size.
		if size := c.Size(cfg); size <= 0 || size == compile.InfSize {
			t.Fatalf("learned config size %d", size)
		}
	}
}

func TestFeatureExtraction(t *testing.T) {
	p := workload.Profile{
		Name: "mlfeat", Files: 1, TotalEdges: 12,
		ConstArgProb: 0.5, HubProb: 0.2, BigBodyProb: 0.3, LoopProb: 0.3,
		RecProb: 0.2, BranchProb: 0.5, MultiRootPct: 0.1,
	}
	f := workload.Generate(p).Files[0]
	c := compile.New(f.Module, codegen.TargetX86)
	g := c.Graph()
	for _, e := range g.Edges {
		x := Extract(c.Module(), g, e)
		if x[0] <= 0 {
			t.Fatalf("callee instr count not positive for %s", e.Callee)
		}
		if x[2] != float64(e.NumArgs) || x[3] != float64(e.ConstArgs) {
			t.Fatal("arg features wrong")
		}
		if x[5] < 1 {
			t.Fatal("in-degree must include this edge")
		}
	}
	// Unknown callee: zero vector, no panic.
	var zero Features
	if Extract(c.Module(), g, callgraph.Edge{Caller: "nope", Callee: "nada"}) != zero {
		t.Fatal("missing functions should yield zero features")
	}
}

func TestDatasetSkipsRecursive(t *testing.T) {
	p := workload.Profile{
		Name: "mlrec", Files: 2, TotalEdges: 16,
		ConstArgProb: 0.3, HubProb: 0.2, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0.6, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	for _, f := range workload.Generate(p).Files {
		c := compile.New(f.Module, codegen.TargetX86)
		g := c.Graph()
		rec := 0
		for _, e := range g.Edges {
			if e.Recursive {
				rec++
			}
		}
		ds := Dataset(c.Module(), g, callgraph.NewConfig())
		if len(ds) != len(g.Edges)-rec {
			t.Fatalf("dataset size %d, want %d", len(ds), len(g.Edges)-rec)
		}
	}
}
