package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the call graph in Graphviz syntax, in the style of the
// paper's figures: solid edges are inlined, dashed edges are not. A nil
// config renders every edge dashed.
func (g *Graph) DOT(title string, cfg *Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  node [shape=box, fontsize=10];\n")
	nodes := append([]string(nil), g.Nodes...)
	sort.Strings(nodes)
	referenced := make(map[string]bool)
	for _, e := range g.Edges {
		referenced[e.Caller] = true
		referenced[e.Callee] = true
	}
	for _, n := range nodes {
		if referenced[n] {
			fmt.Fprintf(&sb, "  %q;\n", n)
		}
	}
	for _, e := range g.Edges {
		style := "dashed"
		if cfg != nil && cfg.Inline(e.Site) {
			style = "solid"
		}
		fmt.Fprintf(&sb, "  %q -> %q [style=%s, label=\"s%d\"];\n", e.Caller, e.Callee, style, e.Site)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SideBySideDOT renders two labelings of the same graph (e.g. optimal vs
// the heuristic) as two clusters in one digraph, for the case-study figures.
func (g *Graph) SideBySideDOT(title, aName string, a *Config, bName string, b *Config) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	for i, part := range []struct {
		name string
		cfg  *Config
	}{{aName, a}, {bName, b}} {
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", i, part.name)
		for _, e := range g.Edges {
			style := "dashed"
			if part.cfg != nil && part.cfg.Inline(e.Site) {
				style = "solid"
			}
			fmt.Fprintf(&sb, "    \"%s_%d\" -> \"%s_%d\" [style=%s];\n", e.Caller, i, e.Callee, i, style)
		}
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
