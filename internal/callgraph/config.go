package callgraph

import (
	"math/bits"
	"strconv"
	"strings"
	"sync/atomic"
)

// Config is an inlining configuration: a label assignment over call sites.
// Sites never Set are no-inline — the paper's "clean slate" is the empty
// configuration. Configurations are value-like: use Clone before mutating a
// shared one.
//
// The representation is a dense bitset over site IDs (AssignSites hands
// them out contiguously from 1), so Clone, Equal, Hash, and Merge are
// O(words) instead of O(sites·log sites), and the canonical Key is computed
// at most once per distinct label set. Mutation (Set, Merge) is not safe
// for concurrent use; everything else — including the lazily cached Key and
// Hash — is, so a configuration shared by search workers stays race-free.
type Config struct {
	words []uint64 // bit s set = site s labeled inline; no trailing zero words
	count int      // population count, kept incrementally

	// key and hash cache the canonical identities; atomics because read-only
	// sharing across goroutines is allowed (mutators reset both).
	key  atomic.Pointer[string]
	hash atomic.Uint64 // stored value is hash+1; 0 means "not computed"
}

// NewConfig returns the empty (clean-slate) configuration.
func NewConfig() *Config {
	return &Config{}
}

// NewConfigOf returns a configuration labeling exactly the given sites
// inline. Convenience for building canonical site-set identities (the
// search's component-memo keys reuse Config's compact CacheKey encoding
// rather than inventing another serialization).
func NewConfigOf(sites []int) *Config {
	c := &Config{}
	for _, s := range sites {
		c.Set(s, true)
	}
	return c
}

// Clone returns an independent copy, carrying over any cached Key/Hash.
func (c *Config) Clone() *Config {
	nc := &Config{count: c.count}
	if len(c.words) > 0 {
		nc.words = make([]uint64, len(c.words))
		copy(nc.words, c.words)
	}
	nc.key.Store(c.key.Load())
	nc.hash.Store(c.hash.Load())
	return nc
}

// invalidate drops the cached canonical identities after a mutation.
func (c *Config) invalidate() {
	c.key.Store(nil)
	c.hash.Store(0)
}

// Set assigns a label to a site.
func (c *Config) Set(site int, inline bool) *Config {
	if site < 0 {
		panic("callgraph: negative site ID")
	}
	w, b := site/64, uint(site%64)
	if inline {
		if w >= len(c.words) {
			grown := make([]uint64, w+1)
			copy(grown, c.words)
			c.words = grown
		}
		if c.words[w]&(1<<b) == 0 {
			c.words[w] |= 1 << b
			c.count++
			c.invalidate()
		}
		return c
	}
	if w < len(c.words) && c.words[w]&(1<<b) != 0 {
		c.words[w] &^= 1 << b
		c.count--
		for len(c.words) > 0 && c.words[len(c.words)-1] == 0 {
			c.words = c.words[:len(c.words)-1]
		}
		c.invalidate()
	}
	return c
}

// Inline reports whether the site is labeled inline.
func (c *Config) Inline(site int) bool {
	w := site / 64
	return site >= 0 && w < len(c.words) && c.words[w]&(1<<uint(site%64)) != 0
}

// InlineSites returns the inline-labeled sites in ascending order.
func (c *Config) InlineSites() []int {
	out := make([]int, 0, c.count)
	for w, word := range c.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, w*64+b)
			word &= word - 1
		}
	}
	return out
}

// InlineCount returns the number of inline-labeled sites.
func (c *Config) InlineCount() int { return c.count }

// Merge copies all inline labels of other into c (used to combine the
// independent-component partial configurations of Algorithm 1).
func (c *Config) Merge(other *Config) *Config {
	if len(other.words) == 0 {
		return c
	}
	if len(other.words) > len(c.words) {
		grown := make([]uint64, len(other.words))
		copy(grown, c.words)
		c.words = grown
	}
	changed := false
	for i, w := range other.words {
		if merged := c.words[i] | w; merged != c.words[i] {
			c.words[i] = merged
			changed = true
		}
	}
	if changed {
		n := 0
		for _, w := range c.words {
			n += bits.OnesCount64(w)
		}
		c.count = n
		c.invalidate()
	}
	return c
}

// DiffSites returns the sites labeled differently by c and other, in
// ascending order — the toggle set that turns one configuration into the
// other (compile.SizeDelta's currency).
func (c *Config) DiffSites(other *Config) []int {
	n := len(c.words)
	if len(other.words) > n {
		n = len(other.words)
	}
	var out []int
	for w := 0; w < n; w++ {
		var a, b uint64
		if w < len(c.words) {
			a = c.words[w]
		}
		if w < len(other.words) {
			b = other.words[w]
		}
		for x := a ^ b; x != 0; x &= x - 1 {
			out = append(out, w*64+bits.TrailingZeros64(x))
		}
	}
	return out
}

// Key returns a canonical string identity: two configurations with the same
// inline-labeled site set share it. It is computed once per distinct label
// set and cached (mutators invalidate), so hot paths that key maps by
// string — the whole-config compile cache's spill path, the objective
// tuner's memo — stop re-sorting per call.
func (c *Config) Key() string {
	if k := c.key.Load(); k != nil {
		return *k
	}
	var sb strings.Builder
	first := true
	for w, word := range c.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(strconv.Itoa(w*64 + b))
		}
	}
	k := sb.String()
	c.key.Store(&k)
	return k
}

// CacheKey returns a compact binary identity: the bitset words in fixed
// little-endian order. Distinct label sets map to distinct strings (the
// no-trailing-zero-words invariant makes the encoding canonical), and at 8
// bytes per 64 sites it is both cheaper to build and much smaller to retain
// than the decimal Key — the whole-configuration compile cache keys by it,
// and those keys dominate that cache's live heap on big runs.
func (c *Config) CacheKey() string {
	if len(c.words) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(8 * len(c.words))
	for _, w := range c.words {
		for i := 0; i < 8; i++ {
			sb.WriteByte(byte(w >> (8 * i)))
		}
	}
	return sb.String()
}

// Hash returns a 64-bit identity hash of the label set (FNV-1a over the
// bitset words). Equal configurations hash equally; the compile cache
// buckets by it and confirms with Equal, avoiding Key's string entirely.
// Cached like Key.
func (c *Config) Hash() uint64 {
	if h := c.hash.Load(); h != 0 {
		return h - 1
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range c.words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	c.hash.Store(h + 1)
	return h
}

// Equal reports whether two configurations label the same sites inline.
// The no-trailing-zero-words invariant makes this a plain word compare.
func (c *Config) Equal(other *Config) bool {
	if c.count != other.count || len(c.words) != len(other.words) {
		return false
	}
	for i, w := range c.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

func (c *Config) String() string {
	if c.count == 0 {
		return "{clean slate}"
	}
	return "{inline: " + c.Key() + "}"
}

// Agreement tallies how two configurations relate over a site universe:
// the 2x2 matrix of the paper's Table 2. The first index is a's label, the
// second is b's (false = no-inline, true = inline).
func Agreement(sites []int, a, b *Config) (matrix [2][2]int) {
	for _, s := range sites {
		ai, bi := 0, 0
		if a.Inline(s) {
			ai = 1
		}
		if b.Inline(s) {
			bi = 1
		}
		matrix[ai][bi]++
	}
	return matrix
}
