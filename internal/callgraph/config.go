package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Config is an inlining configuration: a label assignment over call sites.
// Sites absent from the map are no-inline — the paper's "clean slate" is
// the empty configuration. Configurations are value-like: use Clone before
// mutating a shared one.
type Config struct {
	inline map[int]bool
}

// NewConfig returns the empty (clean-slate) configuration.
func NewConfig() *Config {
	return &Config{inline: make(map[int]bool)}
}

// Clone returns an independent copy.
func (c *Config) Clone() *Config {
	nc := &Config{inline: make(map[int]bool, len(c.inline))}
	for k, v := range c.inline {
		nc.inline[k] = v
	}
	return nc
}

// Set assigns a label to a site.
func (c *Config) Set(site int, inline bool) *Config {
	if inline {
		c.inline[site] = true
	} else {
		delete(c.inline, site)
	}
	return c
}

// Inline reports whether the site is labeled inline.
func (c *Config) Inline(site int) bool { return c.inline[site] }

// InlineSites returns the inline-labeled sites in ascending order.
func (c *Config) InlineSites() []int {
	out := make([]int, 0, len(c.inline))
	for s := range c.inline {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// InlineCount returns the number of inline-labeled sites.
func (c *Config) InlineCount() int { return len(c.inline) }

// Merge copies all inline labels of other into c (used to combine the
// independent-component partial configurations of Algorithm 1).
func (c *Config) Merge(other *Config) *Config {
	for s := range other.inline {
		c.inline[s] = true
	}
	return c
}

// Key returns a canonical string identity: two configurations with the same
// inline-labeled site set evaluate identically, so the compile cache is
// keyed on this.
func (c *Config) Key() string {
	sites := c.InlineSites()
	var sb strings.Builder
	for i, s := range sites {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", s)
	}
	return sb.String()
}

// Equal reports whether two configurations label the same sites inline.
func (c *Config) Equal(other *Config) bool {
	if len(c.inline) != len(other.inline) {
		return false
	}
	for s := range c.inline {
		if !other.inline[s] {
			return false
		}
	}
	return true
}

func (c *Config) String() string {
	if len(c.inline) == 0 {
		return "{clean slate}"
	}
	return "{inline: " + c.Key() + "}"
}

// Agreement tallies how two configurations relate over a site universe:
// the 2x2 matrix of the paper's Table 2. The first index is a's label, the
// second is b's (false = no-inline, true = inline).
func Agreement(sites []int, a, b *Config) (matrix [2][2]int) {
	for _, s := range sites {
		ai, bi := 0, 0
		if a.Inline(s) {
			ai = 1
		}
		if b.Inline(s) {
			bi = 1
		}
		matrix[ai][bi]++
	}
	return matrix
}
