package callgraph

import (
	"math/rand"
	"sync"
	"testing"
)

// randomCfg flips n coin-tossed sites in [0, universe).
func randomCfg(rng *rand.Rand, universe int) *Config {
	c := NewConfig()
	for s := 0; s < universe; s++ {
		if rng.Intn(2) == 0 {
			c.Set(s, true)
		}
	}
	return c
}

// TestConfigBitsetRoundTrip: Set/Inline/InlineSites/InlineCount must agree
// with a reference map for arbitrary mutation sequences, including sites far
// beyond one word and toggles back to no-inline.
func TestConfigBitsetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewConfig()
	ref := map[int]bool{}
	for step := 0; step < 4000; step++ {
		s := rng.Intn(257) // spans five words
		on := rng.Intn(2) == 0
		c.Set(s, on)
		if on {
			ref[s] = true
		} else {
			delete(ref, s)
		}
	}
	if c.InlineCount() != len(ref) {
		t.Fatalf("count %d, want %d", c.InlineCount(), len(ref))
	}
	for s := 0; s < 257; s++ {
		if c.Inline(s) != ref[s] {
			t.Fatalf("site %d: Inline %v, want %v", s, c.Inline(s), ref[s])
		}
	}
	prev := -1
	for _, s := range c.InlineSites() {
		if !ref[s] || s <= prev {
			t.Fatalf("InlineSites not the ascending label set: %v", c.InlineSites())
		}
		prev = s
	}
}

// TestConfigTrailingWordsTrimmed: clearing the highest sites must shrink the
// word slice so Equal/Hash/Key see the same representation as a config that
// never visited them.
func TestConfigTrailingWordsTrimmed(t *testing.T) {
	a := NewConfig().Set(3, true).Set(200, true).Set(200, false)
	b := NewConfig().Set(3, true)
	if !a.Equal(b) {
		t.Fatalf("trimmed config %v != fresh %v", a, b)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("trimmed hash %d != fresh %d", a.Hash(), b.Hash())
	}
	if a.Key() != b.Key() {
		t.Fatalf("trimmed key %q != fresh %q", a.Key(), b.Key())
	}
}

// TestConfigKeyCacheInvalidation: the cached Key/Hash must survive reads and
// clones but never a mutation.
func TestConfigKeyCacheInvalidation(t *testing.T) {
	c := NewConfig().Set(1, true).Set(5, true)
	if k := c.Key(); k != "1,5" {
		t.Fatalf("key %q, want \"1,5\"", k)
	}
	h := c.Hash()
	cl := c.Clone()
	if cl.Key() != "1,5" || cl.Hash() != h {
		t.Fatal("clone lost the cached identities")
	}
	cl.Set(9, true)
	if cl.Key() != "1,5,9" {
		t.Fatalf("post-mutation key %q, want \"1,5,9\"", cl.Key())
	}
	if c.Key() != "1,5" {
		t.Fatalf("mutating a clone changed the original's key to %q", c.Key())
	}
	c.Merge(NewConfig().Set(70, true))
	if c.Key() != "1,5,70" {
		t.Fatalf("post-merge key %q, want \"1,5,70\"", c.Key())
	}
	// A no-op mutation must not discard correctness either way.
	before := c.Key()
	c.Set(1, true)
	if c.Key() != before {
		t.Fatalf("no-op Set changed key to %q", c.Key())
	}
}

// TestConfigHashEqualConsistency: Equal configurations share a Hash, and the
// hash actually separates distinct label sets (no blanket collisions).
func TestConfigHashEqualConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	seen := map[uint64]*Config{}
	collisions := 0
	for trial := 0; trial < 300; trial++ {
		c := randomCfg(rng, 130)
		d := NewConfig()
		for _, s := range c.InlineSites() {
			d.Set(s, true)
		}
		if !c.Equal(d) || c.Hash() != d.Hash() || c.Key() != d.Key() {
			t.Fatalf("reconstructed config disagrees: %v vs %v", c, d)
		}
		if prev, ok := seen[c.Hash()]; ok && !prev.Equal(c) {
			collisions++
		}
		seen[c.Hash()] = c
	}
	if collisions > 2 {
		t.Fatalf("%d hash collisions across 300 random configs", collisions)
	}
}

// TestConfigDiffSites: DiffSites must be the symmetric difference, in
// ascending order, regardless of which side is wider.
func TestConfigDiffSites(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		a := randomCfg(rng, 100)
		b := randomCfg(rng, 200) // wider universe: exercises length mismatch
		want := map[int]bool{}
		for s := 0; s < 200; s++ {
			if a.Inline(s) != b.Inline(s) {
				want[s] = true
			}
		}
		got := a.DiffSites(b)
		if len(got) != len(want) {
			t.Fatalf("diff %v: %d sites, want %d", got, len(got), len(want))
		}
		prev := -1
		for _, s := range got {
			if !want[s] || s <= prev {
				t.Fatalf("diff %v is not the ascending symmetric difference", got)
			}
			prev = s
		}
		// Applying the diff as toggles must transport a onto b.
		c := a.Clone()
		for _, s := range got {
			c.Set(s, !a.Inline(s))
		}
		if !c.Equal(b) {
			t.Fatalf("a ⊕ diff != b: %v vs %v", c, b)
		}
	}
}

// TestConfigConcurrentReads: the lazily cached Key/Hash must be safe under
// concurrent readers of a shared configuration (the search workers' pattern;
// run with -race).
func TestConfigConcurrentReads(t *testing.T) {
	c := NewConfig().Set(2, true).Set(67, true).Set(131, true)
	var wg sync.WaitGroup
	keys := make([]string, 16)
	hashes := make([]uint64, 16)
	for i := range keys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys[i] = c.Key()
			hashes[i] = c.Hash()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] || hashes[i] != hashes[0] {
			t.Fatalf("concurrent readers saw different identities: %q/%d vs %q/%d",
				keys[i], hashes[i], keys[0], hashes[0])
		}
	}
	if keys[0] != "2,67,131" {
		t.Fatalf("key %q, want \"2,67,131\"", keys[0])
	}
}
