package callgraph

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the paper's Figure 2 call-graph transformations as
// an explicit, inspectable model: inlining an edge merges caller and callee
// nodes (cloning the callee when it has other callers, and duplicating its
// outgoing calls as coupled copies), while not-inlining marks the edge and
// removes it from candidacy. The search itself uses the cheaper contracted
// multigraph (see internal/search); this model exists for studying and
// visualizing the graph evolution the paper describes, and for testing that
// the contraction abstraction agrees with the cloning semantics on
// connectivity.

// TNode is a node of a transformed call graph: one or more original
// functions merged by inlining.
type TNode struct {
	ID     int
	Merged []string // original function names, sorted
}

// Label renders the merged-name label used in the paper's figures ("AB").
func (n *TNode) Label() string { return strings.Join(n.Merged, "") }

// TEdge is a (possibly cloned) call in a transformed graph. Clones keep the
// Site of the original call, implementing the paper's coupled copies.
type TEdge struct {
	Site     int
	From, To int  // TNode IDs
	NoInline bool // labeled no-inline (kept, but no longer a candidate)
}

// TGraph is a call graph undergoing Figure 2 transformations.
type TGraph struct {
	Nodes  []*TNode
	Edges  []TEdge
	nextID int
}

// NewTGraph builds the transformation model from a candidate call graph.
func NewTGraph(g *Graph) *TGraph {
	tg := &TGraph{}
	index := make(map[string]int, len(g.Nodes))
	for _, name := range g.Nodes {
		index[name] = tg.addNode([]string{name})
	}
	for _, e := range g.Edges {
		tg.Edges = append(tg.Edges, TEdge{Site: e.Site, From: index[e.Caller], To: index[e.Callee]})
	}
	return tg
}

func (tg *TGraph) addNode(merged []string) int {
	id := tg.nextID
	tg.nextID++
	names := append([]string(nil), merged...)
	sort.Strings(names)
	tg.Nodes = append(tg.Nodes, &TNode{ID: id, Merged: names})
	return id
}

func (tg *TGraph) node(id int) *TNode {
	for _, n := range tg.Nodes {
		if n.ID == id {
			return n
		}
	}
	return nil
}

// Candidates returns the sites still open for a decision (not yet inlined,
// not marked no-inline), deduplicated — coupled copies count once.
func (tg *TGraph) Candidates() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range tg.Edges {
		if !e.NoInline && !seen[e.Site] {
			seen[e.Site] = true
			out = append(out, e.Site)
		}
	}
	sort.Ints(out)
	return out
}

// MarkNoInline labels every copy of the site no-inline (Figure 2(b)): the
// calls remain in the program but leave the candidate set.
func (tg *TGraph) MarkNoInline(site int) error {
	found := false
	for i := range tg.Edges {
		if tg.Edges[i].Site == site {
			tg.Edges[i].NoInline = true
			found = true
		}
	}
	if !found {
		return fmt.Errorf("callgraph: no edge with site %d", site)
	}
	return nil
}

// InlineSite performs Figure 2(c) for every copy of the site: each copy's
// callee is merged into its caller; if the callee node has other incoming
// calls it is preserved (the merge uses a clone) and its outgoing calls are
// duplicated onto the caller as coupled copies. Self-copies (recursive
// sites) are expanded once: the edge disappears, matching the inline-once
// bound.
func (tg *TGraph) InlineSite(site int) error {
	copies := -1
	for i := range tg.Edges {
		if tg.Edges[i].Site == site && !tg.Edges[i].NoInline {
			copies = i
			break
		}
	}
	if copies == -1 {
		return fmt.Errorf("callgraph: no open edge with site %d", site)
	}
	// Expand copies one at a time until none remain; each expansion may
	// materialize new copies of *other* sites but never of this one
	// (recursion is bounded, so a self-copy simply disappears).
	for {
		idx := -1
		for i := range tg.Edges {
			if tg.Edges[i].Site == site && !tg.Edges[i].NoInline {
				idx = i
				break
			}
		}
		if idx == -1 {
			return nil
		}
		e := tg.Edges[idx]
		// Remove this copy.
		tg.Edges = append(tg.Edges[:idx], tg.Edges[idx+1:]...)
		if e.From == e.To {
			continue // recursive copy: expanded once, no structural change
		}
		caller, callee := tg.node(e.From), tg.node(e.To)
		// The caller node absorbs the callee's functions.
		caller.Merged = mergeNames(caller.Merged, callee.Merged)
		// Duplicate the callee's outgoing calls onto the caller (coupled).
		var dup []TEdge
		for _, oe := range tg.Edges {
			if oe.From == e.To {
				to := oe.To
				if to == e.To {
					to = e.From // calls back into the clone stay internal
				}
				dup = append(dup, TEdge{Site: oe.Site, From: e.From, To: to, NoInline: oe.NoInline})
			}
		}
		tg.Edges = append(tg.Edges, dup...)
		// If nothing else calls the callee, it is removed outright along
		// with its outgoing calls (no other caller kept it alive).
		hasOtherCaller := false
		for _, oe := range tg.Edges {
			if oe.To == e.To && oe.From != e.To {
				hasOtherCaller = true
				break
			}
		}
		if !hasOtherCaller {
			kept := tg.Edges[:0]
			for _, oe := range tg.Edges {
				if oe.From != e.To && oe.To != e.To {
					kept = append(kept, oe)
				}
			}
			tg.Edges = kept
			for i, n := range tg.Nodes {
				if n.ID == e.To {
					tg.Nodes = append(tg.Nodes[:i], tg.Nodes[i+1:]...)
					break
				}
			}
		}
	}
}

func mergeNames(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, x := range b {
		set[x] = true
	}
	out := make([]string, 0, len(set))
	for x := range set {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// Components returns the node-ID sets of the independent inlining
// components: connectivity over edges NOT marked no-inline.
func (tg *TGraph) Components() [][]int {
	parent := map[int]int{}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, n := range tg.Nodes {
		parent[n.ID] = n.ID
	}
	for _, e := range tg.Edges {
		if e.NoInline {
			continue
		}
		a, b := find(e.From), find(e.To)
		if a != b {
			parent[b] = a
		}
	}
	groups := map[int][]int{}
	for _, n := range tg.Nodes {
		r := find(n.ID)
		groups[r] = append(groups[r], n.ID)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		ids := groups[r]
		sort.Ints(ids)
		out = append(out, ids)
	}
	return out
}

// String renders the transformed graph compactly, Figure 2 style.
func (tg *TGraph) String() string {
	var sb strings.Builder
	for _, n := range tg.Nodes {
		fmt.Fprintf(&sb, "node %s\n", n.Label())
	}
	edges := append([]TEdge(nil), tg.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Site != edges[j].Site {
			return edges[i].Site < edges[j].Site
		}
		return edges[i].From < edges[j].From
	})
	for _, e := range edges {
		style := ""
		if e.NoInline {
			style = " [no-inline]"
		}
		fmt.Fprintf(&sb, "%s -> %s (s%d)%s\n", tg.node(e.From).Label(), tg.node(e.To).Label(), e.Site, style)
	}
	return sb.String()
}
