package callgraph

import (
	"strings"
	"testing"

	"optinline/internal/ir"
)

// figure2Module reproduces the paper's Figure 2: A calls B, B calls C,
// D calls B.
func figure2Module(t *testing.T) *Graph {
	t.Helper()
	src := `
func @c(%x) {
entry:
  ret %x
}
func @b(%x) {
entry:
  %r = call @c(%x) !site 2
  ret %r
}
export func @a(%x) {
entry:
  %r = call @b(%x) !site 1
  ret %r
}
export func @d(%x) {
entry:
  %r = call @b(%x) !site 3
  ret %r
}
`
	m, err := ir.Parse("fig2", src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(m)
}

func TestFigure2NotInlined(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	if err := tg.MarkNoInline(1); err != nil {
		t.Fatal(err)
	}
	// Figure 2(b): the edge persists but is no longer a candidate.
	if got := tg.Candidates(); len(got) != 2 {
		t.Fatalf("candidates after no-inline: %v", got)
	}
	if len(tg.Edges) != 3 {
		t.Fatalf("the call must be preserved: %d edges", len(tg.Edges))
	}
}

func TestFigure2Inlined(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	if err := tg.InlineSite(1); err != nil {
		t.Fatal(err)
	}
	// Figure 2(c): A and B merge into AB; B survives (D still calls it);
	// the B->C call is duplicated from AB, coupled under site 2.
	var ab, b *TNode
	for _, n := range tg.Nodes {
		switch n.Label() {
		case "ab":
			ab = n
		case "b":
			b = n
		}
	}
	if ab == nil || b == nil {
		t.Fatalf("expected nodes ab and b: %s", tg)
	}
	site2 := 0
	for _, e := range tg.Edges {
		if e.Site == 2 {
			site2++
		}
	}
	if site2 != 2 {
		t.Fatalf("B->C should have 2 coupled copies, got %d:\n%s", site2, tg)
	}
}

func TestInlineLastCallerRemovesCallee(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	// Inline both callers of b: b's original node must disappear.
	if err := tg.InlineSite(1); err != nil {
		t.Fatal(err)
	}
	if err := tg.InlineSite(3); err != nil {
		t.Fatal(err)
	}
	for _, n := range tg.Nodes {
		if n.Label() == "b" {
			t.Fatalf("callee should be removed after its last caller inlines:\n%s", tg)
		}
	}
	// Both clones still call c, coupled under site 2.
	site2 := 0
	for _, e := range tg.Edges {
		if e.Site == 2 {
			site2++
		}
	}
	if site2 != 2 {
		t.Fatalf("coupled copies: %d\n%s", site2, tg)
	}
}

func TestCoupledCopiesInlineTogether(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	if err := tg.InlineSite(1); err != nil {
		t.Fatal(err)
	}
	// Now inline site 2: BOTH copies (from ab and from b) must expand.
	if err := tg.InlineSite(2); err != nil {
		t.Fatal(err)
	}
	for _, e := range tg.Edges {
		if e.Site == 2 {
			t.Fatalf("a coupled copy of site 2 survived:\n%s", tg)
		}
	}
	// c had two callers (ab and b); the last expansion removes it.
	for _, n := range tg.Nodes {
		if strings.Contains(n.Label(), "c") && len(n.Merged) == 1 {
			t.Fatalf("c should have been absorbed:\n%s", tg)
		}
	}
}

func TestRecursiveSiteExpandsOnce(t *testing.T) {
	src := `
export func @r(%n) {
entry:
  %zero = const 0
  %c = le %n, %zero
  condbr %c, done, more
done:
  ret %zero
more:
  %one = const 1
  %m = sub %n, %one
  %v = call @r(%m) !site 1
  ret %v
}
`
	m := ir.MustParse("rec", src)
	tg := NewTGraph(Build(m))
	if err := tg.InlineSite(1); err != nil {
		t.Fatal(err)
	}
	if len(tg.Edges) != 0 {
		t.Fatalf("self-edge should expand once and disappear:\n%s", tg)
	}
	if len(tg.Nodes) != 1 {
		t.Fatalf("node set changed: %v", tg.Nodes)
	}
}

func TestComponentsSplitAcrossNoInline(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	// Everything is one component initially.
	if comps := tg.Components(); len(comps) != 1 {
		t.Fatalf("components: %v", comps)
	}
	// Marking all of b's incident candidate edges no-inline isolates nodes.
	tg.MarkNoInline(1)
	tg.MarkNoInline(2)
	tg.MarkNoInline(3)
	if comps := tg.Components(); len(comps) != 4 {
		t.Fatalf("expected 4 singleton components, got %v", comps)
	}
}

// Property: the TGraph's independent-component structure agrees with the
// contracted-multigraph abstraction the search uses.
func TestTransformAgreesWithContraction(t *testing.T) {
	g := figure2Module(t)

	// Decide: inline site 1, no-inline sites 2 and 3.
	tg := NewTGraph(g)
	tg.InlineSite(1)
	tg.MarkNoInline(2)
	tg.MarkNoInline(3)

	mg := g.Undirected().ContractEdge(1).RemoveEdge(2).RemoveEdge(3)
	// Count edge-bearing components both ways: none remain in either model.
	if n := len(tg.Candidates()); n != 0 {
		t.Fatalf("tgraph candidates left: %d", n)
	}
	if len(mg.Edges) != 0 {
		t.Fatalf("contracted graph edges left: %d", len(mg.Edges))
	}
}

func TestTGraphErrors(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	if err := tg.MarkNoInline(99); err == nil {
		t.Fatal("expected error for unknown site")
	}
	if err := tg.InlineSite(99); err == nil {
		t.Fatal("expected error for unknown site")
	}
	tg.MarkNoInline(1)
	if err := tg.InlineSite(1); err == nil {
		t.Fatal("expected error inlining a no-inline edge")
	}
}

func TestTGraphString(t *testing.T) {
	tg := NewTGraph(figure2Module(t))
	tg.MarkNoInline(2)
	s := tg.String()
	for _, want := range []string{"node a", "a -> b (s1)", "[no-inline]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}
