// Package callgraph builds the call graph of a module and defines inlining
// configurations over its edges. Following the paper, a call-graph edge is
// one call site (so two calls from A to B are two edges), and an inlining
// configuration assigns {inline, no-inline} to every inlinable call site.
package callgraph

import (
	"fmt"
	"sort"

	"optinline/internal/graph"
	"optinline/internal/ir"
)

// Edge is an inlining candidate: a call site whose callee is defined in the
// same module. The Site ID is the stable identity shared with the IR call
// instruction (and all of its inlining-produced clones).
type Edge struct {
	Site      int
	Caller    string
	Callee    string
	NumArgs   int
	ConstArgs int  // arguments that are constants at the call site
	Recursive bool // the edge closes a cycle through the static call graph
}

// Graph is the inlining-candidate call graph of one module.
type Graph struct {
	Nodes []string       // function names in module order
	Index map[string]int // name -> node index
	Edges []Edge         // candidates, ordered by Site

	// ExternalCalls counts call sites whose callee is not defined in the
	// module; they are not candidates (the paper's "not inlinable").
	ExternalCalls int
}

// Build constructs the call graph of m. Call sites must already carry site
// IDs (ir.Module.AssignSites).
func Build(m *ir.Module) *Graph {
	g := &Graph{Index: make(map[string]int, len(m.Funcs))}
	for i, f := range m.Funcs {
		g.Nodes = append(g.Nodes, f.Name)
		g.Index[f.Name] = i
	}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if m.Func(in.Callee) == nil {
					g.ExternalCalls++
					continue
				}
				if in.Site == 0 {
					panic(fmt.Sprintf("callgraph: call to %s in %s has no site ID", in.Callee, f.Name))
				}
				e := Edge{
					Site:    in.Site,
					Caller:  f.Name,
					Callee:  in.Callee,
					NumArgs: len(in.Args),
				}
				for _, a := range in.Args {
					if a.Def != nil && a.Def.Op == ir.OpConst {
						e.ConstArgs++
					}
				}
				g.Edges = append(g.Edges, e)
			}
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool { return g.Edges[i].Site < g.Edges[j].Site })
	g.markRecursive()
	return g
}

// markRecursive flags edges that participate in a directed cycle of the
// static call graph (including self-calls).
func (g *Graph) markRecursive() {
	// Tarjan SCC over function nodes.
	n := len(g.Nodes)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[g.Index[e.Caller]] = append(adj[g.Index[e.Caller]], g.Index[e.Callee])
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i], comp[i] = -1, -1
	}
	var stack []int
	next, ncomp := 0, 0
	type frame struct{ v, ci int }
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ci < len(adj[f.v]) {
				w := adj[f.v][f.ci]
				f.ci++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	selfCall := make(map[int]bool)
	sccSize := make(map[int]int)
	for i := 0; i < n; i++ {
		sccSize[comp[i]]++
	}
	for _, e := range g.Edges {
		if e.Caller == e.Callee {
			selfCall[e.Site] = true
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		cu, cv := comp[g.Index[e.Caller]], comp[g.Index[e.Callee]]
		e.Recursive = selfCall[e.Site] || (cu == cv && sccSize[cu] > 1)
	}
}

// Edge returns the edge with the given site ID, or nil.
func (g *Graph) Edge(site int) *Edge {
	for i := range g.Edges {
		if g.Edges[i].Site == site {
			return &g.Edges[i]
		}
	}
	return nil
}

// Sites returns all candidate site IDs in ascending order.
func (g *Graph) Sites() []int {
	out := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		out[i] = e.Site
	}
	return out
}

// OutDegree and InDegree return the directed degrees of the named function
// in the candidate graph.
func (g *Graph) OutDegree(name string) int {
	n := 0
	for _, e := range g.Edges {
		if e.Caller == name {
			n++
		}
	}
	return n
}

// InDegree returns the number of candidate call sites targeting name.
func (g *Graph) InDegree(name string) int {
	n := 0
	for _, e := range g.Edges {
		if e.Callee == name {
			n++
		}
	}
	return n
}

// Undirected returns the undirected multigraph view used by the search
// space partitioning. Edge IDs are call-site IDs.
func (g *Graph) Undirected() *graph.Multigraph {
	mg := &graph.Multigraph{N: len(g.Nodes)}
	for _, e := range g.Edges {
		mg.Edges = append(mg.Edges, graph.Edge{
			ID: e.Site,
			U:  g.Index[e.Caller],
			V:  g.Index[e.Callee],
		})
	}
	return mg
}

// CalleesAllInline reports, per function name, whether every incoming
// candidate edge of the function is labeled inline in cfg AND none of them
// is recursive. This is the removability predicate for label-based
// dead-function elimination (see DESIGN.md).
//
// The recursion exclusion is essential for correctness, not just
// optimality: an inline-labeled recursive edge is expanded at most once
// (the Trail bound), so a residual call to the function always survives
// inside the expansion and the function must stay. Non-recursive edges can
// never be blocked by the trail, so "all incoming edges inlined" does
// guarantee zero surviving calls for acyclic callees. The predicate stays a
// pure function of the labels of edges incident to the callee, which keeps
// the search-space partition exact.
func (g *Graph) CalleesAllInline(cfg *Config) map[string]bool {
	in := make(map[string]int)
	inlined := make(map[string]int)
	recursive := make(map[string]bool)
	for _, e := range g.Edges {
		in[e.Callee]++
		if cfg.Inline(e.Site) {
			inlined[e.Callee]++
		}
		if e.Recursive {
			recursive[e.Callee] = true
		}
	}
	out := make(map[string]bool, len(in))
	for name, total := range in {
		out[name] = inlined[name] == total && !recursive[name]
	}
	return out
}
