package callgraph

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the DOT golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("%s: DOT output drifted from golden file (re-run with -update if intended)\n--- got\n%s--- want\n%s", name, got, want)
	}
}

// TestDOTGolden pins the exact Graphviz text for the shared test module:
// a nil config (all edges dashed), and a config inlining sites 1 and 4
// (those edges turn solid). The DOT output feeds the paper's case-study
// figures, so its format is a compatibility surface worth freezing.
func TestDOTGolden(t *testing.T) {
	_, g := build(t)
	checkGolden(t, "dot_nil_config", g.DOT("cg", nil))

	cfg := NewConfig()
	cfg.Set(1, true)
	cfg.Set(4, true)
	checkGolden(t, "dot_partial_inline", g.DOT("cg", cfg))
}

// TestSideBySideDOTGolden pins the two-cluster optimal-vs-heuristic figure.
func TestSideBySideDOTGolden(t *testing.T) {
	_, g := build(t)
	a := NewConfig()
	a.Set(1, true)
	a.Set(2, true)
	b := NewConfig()
	b.Set(5, true)
	checkGolden(t, "dot_side_by_side", g.SideBySideDOT("cg", "optimal", a, "heuristic", b))
}
