package callgraph

import (
	"strings"
	"testing"

	"optinline/internal/ir"
)

const src = `
func @leaf(%x) {
entry:
  %two = const 2
  %r = mul %x, %two
  ret %r
}

func @mid(%x) {
entry:
  %a = call @leaf(%x) !site 1
  %c = const 5
  %b = call @leaf(%c) !site 2
  %s = add %a, %b
  ret %s
}

func @rec(%n) {
entry:
  %zero = const 0
  %c = le %n, %zero
  condbr %c, base, more
base:
  ret %zero
more:
  %one = const 1
  %m = sub %n, %one
  %r = call @rec(%m) !site 3
  %s = add %r, %n
  ret %s
}

export func @main(%n) {
entry:
  %a = call @mid(%n) !site 4
  %b = call @rec(%n) !site 5
  %x = call @external_thing(%n)
  %s = add %a, %b
  %t = add %s, %x
  ret %t
}
`

func build(t *testing.T) (*ir.Module, *Graph) {
	t.Helper()
	m, err := ir.Parse("cg", src)
	if err != nil {
		t.Fatal(err)
	}
	return m, Build(m)
}

func TestBuildFindsCandidates(t *testing.T) {
	_, g := build(t)
	if len(g.Edges) != 5 {
		t.Fatalf("got %d candidate edges, want 5", len(g.Edges))
	}
	if g.ExternalCalls != 1 {
		t.Fatalf("external calls = %d, want 1", g.ExternalCalls)
	}
	sites := g.Sites()
	for i, want := range []int{1, 2, 3, 4, 5} {
		if sites[i] != want {
			t.Fatalf("sites %v", sites)
		}
	}
}

func TestEdgeAttributes(t *testing.T) {
	_, g := build(t)
	e2 := g.Edge(2)
	if e2 == nil || e2.ConstArgs != 1 || e2.NumArgs != 1 {
		t.Fatalf("edge 2: %+v", e2)
	}
	e1 := g.Edge(1)
	if e1.ConstArgs != 0 || e1.Caller != "mid" || e1.Callee != "leaf" {
		t.Fatalf("edge 1: %+v", e1)
	}
	if g.Edge(99) != nil {
		t.Fatal("nonexistent edge should be nil")
	}
}

func TestRecursiveMarking(t *testing.T) {
	_, g := build(t)
	if !g.Edge(3).Recursive {
		t.Fatal("self-call must be recursive")
	}
	for _, s := range []int{1, 2, 4, 5} {
		if g.Edge(s).Recursive {
			t.Fatalf("edge %d wrongly recursive", s)
		}
	}
}

func TestMutualRecursionMarking(t *testing.T) {
	msrc := `
func @a(%x) {
entry:
  %r = call @b(%x) !site 1
  ret %r
}
func @b(%x) {
entry:
  %r = call @a(%x) !site 2
  ret %r
}
export func @main(%x) {
entry:
  %r = call @a(%x) !site 3
  ret %r
}
`
	m := ir.MustParse("mut", msrc)
	g := Build(m)
	if !g.Edge(1).Recursive || !g.Edge(2).Recursive {
		t.Fatal("mutual recursion not detected")
	}
	if g.Edge(3).Recursive {
		t.Fatal("entry edge into an SCC is not itself recursive")
	}
}

func TestDegrees(t *testing.T) {
	_, g := build(t)
	if g.OutDegree("mid") != 2 || g.InDegree("leaf") != 2 {
		t.Fatalf("degrees: out(mid)=%d in(leaf)=%d", g.OutDegree("mid"), g.InDegree("leaf"))
	}
	if g.OutDegree("leaf") != 0 || g.InDegree("main") != 0 {
		t.Fatal("leaf/main degrees wrong")
	}
}

func TestUndirectedView(t *testing.T) {
	_, g := build(t)
	mg := g.Undirected()
	if mg.N != len(g.Nodes) || len(mg.Edges) != 5 {
		t.Fatalf("undirected view: N=%d edges=%d", mg.N, len(mg.Edges))
	}
	// main-mid-leaf-rec all connect: one component (rec self-loop included).
	if comps := mg.ConnectedComponents(); len(comps) != 1 {
		t.Fatalf("components = %d, want 1", len(comps))
	}
}

func TestConfigBasics(t *testing.T) {
	c := NewConfig()
	if c.Inline(1) || c.InlineCount() != 0 || c.Key() != "" {
		t.Fatal("clean slate not clean")
	}
	c.Set(3, true).Set(1, true)
	if !c.Inline(3) || c.InlineCount() != 2 || c.Key() != "1,3" {
		t.Fatalf("config: %v key=%q", c, c.Key())
	}
	c.Set(3, false)
	if c.Inline(3) || c.Key() != "1" {
		t.Fatal("unset failed")
	}
	d := c.Clone().Set(9, true)
	if c.Inline(9) {
		t.Fatal("clone shares storage")
	}
	if !c.Equal(NewConfig().Set(1, true)) || c.Equal(d) {
		t.Fatal("Equal wrong")
	}
}

func TestConfigMerge(t *testing.T) {
	a := NewConfig().Set(1, true)
	b := NewConfig().Set(2, true)
	a.Merge(b)
	if a.Key() != "1,2" {
		t.Fatalf("merge key %q", a.Key())
	}
}

func TestAgreementMatrix(t *testing.T) {
	sites := []int{1, 2, 3, 4}
	a := NewConfig().Set(1, true).Set(2, true) // inline 1,2
	b := NewConfig().Set(2, true).Set(3, true) // inline 2,3
	m := Agreement(sites, a, b)
	// a=no,b=no: {4}; a=no,b=in: {3}; a=in,b=no: {1}; a=in,b=in: {2}
	if m[0][0] != 1 || m[0][1] != 1 || m[1][0] != 1 || m[1][1] != 1 {
		t.Fatalf("matrix %v", m)
	}
}

func TestCalleesAllInline(t *testing.T) {
	_, g := build(t)
	cfg := NewConfig().Set(1, true).Set(2, true) // both edges into leaf
	all := g.CalleesAllInline(cfg)
	if !all["leaf"] {
		t.Fatal("leaf should be fully inlined")
	}
	if all["mid"] || all["rec"] {
		t.Fatal("mid/rec have no-inline callers")
	}
	cfg.Set(2, false)
	if g.CalleesAllInline(cfg)["leaf"] {
		t.Fatal("leaf has a remaining no-inline caller")
	}
}

func TestDOT(t *testing.T) {
	_, g := build(t)
	cfg := NewConfig().Set(1, true)
	d := g.DOT("test", cfg)
	if !strings.Contains(d, `"mid" -> "leaf" [style=solid, label="s1"]`) {
		t.Fatalf("DOT missing solid edge:\n%s", d)
	}
	if !strings.Contains(d, "style=dashed") {
		t.Fatal("DOT missing dashed edges")
	}
	sbs := g.SideBySideDOT("t", "optimal", cfg, "llvm", NewConfig())
	if !strings.Contains(sbs, "cluster_0") || !strings.Contains(sbs, "cluster_1") {
		t.Fatal("side-by-side DOT missing clusters")
	}
}

func TestBuildPanicsOnMissingSite(t *testing.T) {
	m := ir.NewModule("bad")
	b := ir.NewFunction("f", 0, true)
	c := b.Const(1)
	r := b.Call("g", c) // no site assigned
	b.Ret(r)
	m.AddFunc(b.Fn)
	gb := ir.NewFunction("g", 1, false)
	gb.Ret(gb.Param(0))
	m.AddFunc(gb.Fn)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing site ID")
		}
	}()
	Build(m)
}
