package callgraph

import (
	"testing"
	"testing/quick"
)

// Property: the canonical key identifies exactly the inline-labeled set,
// regardless of insertion order and of no-inline assignments.
func TestConfigKeyCanonicalProperty(t *testing.T) {
	f := func(sites []uint8, order []uint8) bool {
		a, b := NewConfig(), NewConfig()
		for _, s := range sites {
			a.Set(int(s)+1, true)
		}
		// Insert into b in a permuted order with extra no-inline noise.
		for i := len(sites) - 1; i >= 0; i-- {
			b.Set(int(sites[i])+1, true)
		}
		for _, o := range order {
			b.Set(int(o)+300, true)
			b.Set(int(o)+300, false)
		}
		return a.Key() == b.Key() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge computes the union of inline sets.
func TestConfigMergeUnionProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := NewConfig(), NewConfig()
		want := map[int]bool{}
		for _, x := range xs {
			a.Set(int(x)+1, true)
			want[int(x)+1] = true
		}
		for _, y := range ys {
			b.Set(int(y)+1, true)
			want[int(y)+1] = true
		}
		a.Merge(b)
		if a.InlineCount() != len(want) {
			return false
		}
		for s := range want {
			if !a.Inline(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the agreement matrix partitions the site universe.
func TestAgreementPartitionProperty(t *testing.T) {
	f := func(universe []uint8, xs, ys []uint8) bool {
		seen := map[int]bool{}
		var sites []int
		for _, u := range universe {
			s := int(u) + 1
			if !seen[s] {
				seen[s] = true
				sites = append(sites, s)
			}
		}
		a, b := NewConfig(), NewConfig()
		for _, x := range xs {
			a.Set(int(x)+1, true)
		}
		for _, y := range ys {
			b.Set(int(y)+1, true)
		}
		m := Agreement(sites, a, b)
		return m[0][0]+m[0][1]+m[1][0]+m[1][1] == len(sites)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
