// Package autotune implements the paper's local inlining autotuner for size
// (Section 5, Algorithm 3) and its variants: clean-slate, heuristic-
// initialized, round-based, and best-of combination.
//
// One round evaluates, for every candidate edge independently and in
// parallel, the configuration that differs from the round's starting point
// only in that edge's label, and keeps the toggles that helped. The round
// costs n+2 compilations for n candidate edges. Rounds extend the scope:
// decisions that only pay off together (e.g. inlining every caller of a
// callee so the callee itself dies) can be discovered incrementally.
package autotune

import (
	"optinline/internal/callgraph"
	"optinline/internal/compile"
)

// Options configures a tuning session.
type Options struct {
	// Rounds is the number of autotuning rounds; 0 means 1. The session
	// stops early at a fixpoint (a round that keeps no toggles).
	Rounds int
	// Workers bounds the concurrent per-edge evaluations; <= 0 uses
	// GOMAXPROCS.
	Workers int
}

// RoundTrace records one round's outcome (paper Table 4).
type RoundTrace struct {
	Round      int
	Size       int // size of the configuration produced by this round
	Inlined    int // inline-labeled candidate edges after the round
	NotInlined int
	Toggles    int // edges whose label this round changed
}

// Result is the outcome of a tuning session.
type Result struct {
	// Config is the best configuration seen across all rounds (successive
	// rounds do not always improve; the paper recommends keeping the best).
	Config *callgraph.Config
	Size   int
	// InitSize is the size of the initial configuration.
	InitSize int
	// Final is the configuration produced by the last executed round; it
	// may be worse than Config.
	Final     *callgraph.Config
	FinalSize int
	Rounds    []RoundTrace
	// Evaluations is the compiler's real-compilation counter at the end.
	Evaluations int64
}

// Tune runs a tuning session starting from init (nil means clean slate).
func Tune(c *compile.Compiler, init *callgraph.Config, opts Options) Result {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	g := c.Graph()
	sites := g.Sites()

	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	baseSize := c.Size(base)

	res := Result{
		Config:   base.Clone(),
		Size:     baseSize,
		InitSize: baseSize,
	}
	for round := 1; round <= rounds; round++ {
		next, toggles := tuneRound(c, g, base, baseSize, sites, opts.Workers)
		nextSize := c.Size(next)
		res.Rounds = append(res.Rounds, RoundTrace{
			Round:      round,
			Size:       nextSize,
			Inlined:    next.InlineCount(),
			NotInlined: len(sites) - next.InlineCount(),
			Toggles:    toggles,
		})
		if nextSize < res.Size {
			res.Config, res.Size = next.Clone(), nextSize
		}
		res.Final, res.FinalSize = next, nextSize
		if toggles == 0 {
			break // fixpoint
		}
		base, baseSize = next, nextSize
	}
	if res.Final == nil {
		res.Final, res.FinalSize = res.Config, res.Size
	}
	res.Evaluations = c.Evaluations()
	return res
}

// tuneRound is Algorithm 3 generalized to an arbitrary starting point:
// every edge is toggled against the same base; beneficial toggles are kept.
// Matching Algorithm 3's tie handling, a toggle *to* inline is kept on
// ties, while a toggle away from inline must strictly shrink the program.
func tuneRound(c *compile.Compiler, g *callgraph.Graph, base *callgraph.Config, baseSize int, sites []int, workers int) (*callgraph.Config, int) {
	cfgs := make([]*callgraph.Config, len(sites))
	for i, s := range sites {
		cfgs[i] = base.Clone().Set(s, !base.Inline(s))
	}
	sizes := c.SizeParallel(cfgs, workers)

	next := base.Clone()
	toggles := 0
	for i, s := range sites {
		toInline := !base.Inline(s)
		keep := false
		if toInline {
			keep = sizes[i] <= baseSize
		} else {
			keep = sizes[i] < baseSize
		}
		if keep {
			next.Set(s, toInline)
			toggles++
		}
	}
	return next, toggles
}

// CleanSlate tunes from the all-no-inline configuration.
func CleanSlate(c *compile.Compiler, opts Options) Result {
	return Tune(c, nil, opts)
}

// Combined runs both a clean-slate and an init-initialized session and
// returns the better result (paper Figure 15); the second return values
// expose the two sessions for analysis.
func Combined(c *compile.Compiler, init *callgraph.Config, opts Options) (best, clean, inited Result) {
	clean = Tune(c, nil, opts)
	inited = Tune(c, init, opts)
	if clean.Size <= inited.Size {
		best = clean
	} else {
		best = inited
	}
	return best, clean, inited
}
