// Package autotune implements the paper's local inlining autotuner for size
// (Section 5, Algorithm 3) and its variants: clean-slate, heuristic-
// initialized, round-based, and best-of combination.
//
// One round evaluates, for every candidate edge independently and in
// parallel, the configuration that differs from the round's starting point
// only in that edge's label, and keeps the toggles that helped. The round
// costs n+2 compilations for n candidate edges. Rounds extend the scope:
// decisions that only pay off together (e.g. inlining every caller of a
// callee so the callee itself dies) can be discovered incrementally.
package autotune

import (
	"optinline/internal/callgraph"
	"optinline/internal/compile"
)

// Options configures a tuning session.
type Options struct {
	// Rounds is the number of autotuning rounds; 0 means 1. The session
	// stops early at a fixpoint (a round that keeps no toggles).
	Rounds int
	// Workers bounds the concurrent per-edge evaluations; <= 0 uses
	// GOMAXPROCS.
	Workers int
}

// RoundTrace records one round's outcome (paper Table 4).
type RoundTrace struct {
	Round      int
	Size       int   // size of the configuration produced by this round
	Cycles     int64 // modelled cycles of that configuration; 0 for size-only sessions
	Inlined    int   // inline-labeled candidate edges after the round
	NotInlined int
	Toggles    int // edges whose label this round changed
}

// Result is the outcome of a tuning session.
type Result struct {
	// Config is the best configuration seen across all rounds (successive
	// rounds do not always improve; the paper recommends keeping the best).
	Config *callgraph.Config
	Size   int
	// Cycles is Config's modelled cycle count when the session tuned with a
	// cycle objective (weighted or cycles-only); 0 for size-only sessions.
	Cycles int64
	// InitSize is the size of the initial configuration (for objective
	// sessions: its cost); InitCycles its cycles, when priced.
	InitSize   int
	InitCycles int64
	// Final is the configuration produced by the last executed round; it
	// may be worse than Config.
	Final       *callgraph.Config
	FinalSize   int
	FinalCycles int64
	Rounds      []RoundTrace
	// Evaluations is the compiler's real-compilation counter at the end.
	Evaluations int64
}

// Tune runs a tuning session starting from init (nil means clean slate).
//
// Rounds run on the compiler's delta-evaluation engine: the starting point
// is priced once into a Sized handle, each per-edge probe is a SizeDelta
// against it (recompiling only the toggled edge's dirty closure), and the
// kept toggles Rebase the handle for the next round. With the engine
// disabled (-no-delta, checked mode) every call transparently falls back
// to whole-configuration Size — results and evaluation counters are
// byte-identical either way.
func Tune(c *compile.Compiler, init *callgraph.Config, opts Options) Result {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	sites := c.Graph().Sites()

	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	sized := c.Sized(base)
	baseSize := sized.Size()

	res := Result{
		Config:   base.Clone(),
		Size:     baseSize,
		InitSize: baseSize,
	}
	for round := 1; round <= rounds; round++ {
		kept := tuneRound(c, sized, baseSize, sites, opts.Workers)
		nextSized := c.Rebase(sized, kept)
		next, nextSize := nextSized.Config(), nextSized.Size()
		res.Rounds = append(res.Rounds, RoundTrace{
			Round:      round,
			Size:       nextSize,
			Inlined:    next.InlineCount(),
			NotInlined: len(sites) - next.InlineCount(),
			Toggles:    len(kept),
		})
		if nextSize < res.Size {
			res.Config, res.Size = next.Clone(), nextSize
		}
		res.Final, res.FinalSize = next, nextSize
		if len(kept) == 0 {
			break // fixpoint
		}
		sized, baseSize = nextSized, nextSize
	}
	if res.Final == nil {
		res.Final, res.FinalSize = res.Config, res.Size
	}
	res.Evaluations = c.Evaluations()
	return res
}

// tuneRound is Algorithm 3 generalized to an arbitrary starting point:
// every edge is toggled against the same base; beneficial toggles are kept
// and returned. Matching Algorithm 3's tie handling, a toggle *to* inline
// is kept on ties, while a toggle away from inline must strictly shrink
// the program.
func tuneRound(c *compile.Compiler, base *compile.Sized, baseSize int, sites []int, workers int) []int {
	toggles := make([][]int, len(sites))
	for i, s := range sites {
		toggles[i] = []int{s}
	}
	sizes := c.SizeDeltaParallel(base, toggles, workers)

	var kept []int
	for i, s := range sites {
		toInline := !base.Inline(s)
		keep := false
		if toInline {
			keep = sizes[i] <= baseSize
		} else {
			keep = sizes[i] < baseSize
		}
		if keep {
			kept = append(kept, s)
		}
	}
	return kept
}

// CleanSlate tunes from the all-no-inline configuration.
func CleanSlate(c *compile.Compiler, opts Options) Result {
	return Tune(c, nil, opts)
}

// Combined runs both a clean-slate and an init-initialized session and
// returns the better result (paper Figure 15); the second return values
// expose the two sessions for analysis.
func Combined(c *compile.Compiler, init *callgraph.Config, opts Options) (best, clean, inited Result) {
	clean = Tune(c, nil, opts)
	inited = Tune(c, init, opts)
	if clean.Size <= inited.Size {
		best = clean
	} else {
		best = inited
	}
	return best, clean, inited
}
