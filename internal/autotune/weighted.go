package autotune

import (
	"math"
	"sort"

	"optinline/internal/callgraph"
	"optinline/internal/compile"
)

// This file makes runtime a first-class tuning objective. Where Tune prices
// every probe in bytes through the size delta engine, the sessions below
// price each probe twice — bytes through compile.SizeDelta, cycles through
// the profile-driven compile.CyclePricer — and minimize a blend. Both
// engines are incremental and share the inverse-reachability dirty set, so
// a weighted round costs the same shape of work as a size round: n dirty-
// closure recompiles plus n event replays, never a re-interpretation.

// costFn blends a configuration's two prices into the scalar a session
// minimizes.
type costFn func(size int, cycles int64) float64

// TuneWeighted tunes the blended objective size + lambda·cycles from init
// (nil means clean slate). lambda = 0 degenerates to the size objective;
// growing lambda buys speed with bytes. Ties keep toggles to inline and
// reject toggles away, exactly like the size tuner.
func TuneWeighted(c *compile.Compiler, pricer *compile.CyclePricer, lambda float64, init *callgraph.Config, opts Options) Result {
	return tuneBi(c, pricer, func(size int, cycles int64) float64 {
		return float64(size) + lambda*float64(cycles)
	}, init, opts)
}

// TuneCycles tunes modelled cycles alone — the speed-optimal endpoint of
// the frontier.
func TuneCycles(c *compile.Compiler, pricer *compile.CyclePricer, init *callgraph.Config, opts Options) Result {
	return tuneBi(c, pricer, func(size int, cycles int64) float64 {
		return float64(cycles)
	}, init, opts)
}

// tuneBi is the round loop shared by the weighted and cycles-only sessions.
func tuneBi(c *compile.Compiler, pricer *compile.CyclePricer, weight costFn, init *callgraph.Config, opts Options) Result {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	sites := c.Graph().Sites()

	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	sized := c.Sized(base)
	cycled := pricer.Priced(base)
	baseCost := weight(sized.Size(), cycled.Cycles())

	res := Result{
		Config:     base.Clone(),
		Size:       sized.Size(),
		Cycles:     cycled.Cycles(),
		InitSize:   sized.Size(),
		InitCycles: cycled.Cycles(),
	}
	bestCost := baseCost
	for round := 1; round <= rounds; round++ {
		toggles := make([][]int, len(sites))
		for i, s := range sites {
			toggles[i] = []int{s}
		}
		sizes := c.SizeDeltaParallel(sized, toggles, opts.Workers)
		cycles := pricer.CyclesDeltaParallel(cycled, toggles, opts.Workers)

		var kept []int
		for i, s := range sites {
			cost := weight(sizes[i], cycles[i])
			toInline := !sized.Inline(s)
			keep := false
			if toInline {
				keep = cost <= baseCost
			} else {
				keep = cost < baseCost
			}
			if keep {
				kept = append(kept, s)
			}
		}
		nextSized := c.Rebase(sized, kept)
		nextCycled := pricer.Rebase(cycled, kept)
		next := nextSized.Config()
		nextCost := weight(nextSized.Size(), nextCycled.Cycles())
		res.Rounds = append(res.Rounds, RoundTrace{
			Round:      round,
			Size:       nextSized.Size(),
			Cycles:     nextCycled.Cycles(),
			Inlined:    next.InlineCount(),
			NotInlined: len(sites) - next.InlineCount(),
			Toggles:    len(kept),
		})
		if nextCost < bestCost {
			res.Config, res.Size, res.Cycles = next.Clone(), nextSized.Size(), nextCycled.Cycles()
			bestCost = nextCost
		}
		res.Final, res.FinalSize, res.FinalCycles = next, nextSized.Size(), nextCycled.Cycles()
		if len(kept) == 0 {
			break // fixpoint
		}
		sized, cycled, baseCost = nextSized, nextCycled, nextCost
	}
	if res.Final == nil {
		res.Final, res.FinalSize, res.FinalCycles = res.Config, res.Size, res.Cycles
	}
	res.Evaluations = c.Evaluations()
	return res
}

// ParetoPoint is one point of a size/speed frontier.
type ParetoPoint struct {
	// Lambda is the weight whose session produced the point: 0 for the
	// size-only endpoint, math.Inf(1) for the cycles-only endpoint.
	Lambda float64
	Size   int
	Cycles int64
	Config *callgraph.Config
}

// Pareto sweeps the blended objective from the size-only endpoint through
// the given positive lambdas to the cycles-only endpoint, each a full
// tuning session from init, and returns the non-dominated frontier sorted
// by size. The same profile prices every session, so the whole sweep costs
// one interpretation plus incremental repricing.
func Pareto(c *compile.Compiler, pricer *compile.CyclePricer, init *callgraph.Config, lambdas []float64, opts Options) []ParetoPoint {
	var pts []ParetoPoint
	record := func(lambda float64, r Result) {
		pts = append(pts, ParetoPoint{Lambda: lambda, Size: r.Size, Cycles: r.Cycles, Config: r.Config})
	}
	record(0, TuneWeighted(c, pricer, 0, init, opts))
	for _, l := range lambdas {
		if l > 0 {
			record(l, TuneWeighted(c, pricer, l, init, opts))
		}
	}
	record(math.Inf(1), TuneCycles(c, pricer, init, opts))
	return Frontier(pts)
}

// Frontier filters points to the non-dominated set: sorted by size
// ascending, strictly decreasing in cycles. Of points with equal (size,
// cycles) the one produced by the smallest lambda is kept.
func Frontier(pts []ParetoPoint) []ParetoPoint {
	sorted := append([]ParetoPoint(nil), pts...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Size != sorted[j].Size {
			return sorted[i].Size < sorted[j].Size
		}
		return sorted[i].Cycles < sorted[j].Cycles
	})
	var out []ParetoPoint
	for _, p := range sorted {
		if len(out) > 0 && p.Cycles >= out[len(out)-1].Cycles {
			continue // dominated (or duplicate) — same or more cycles at same or more bytes
		}
		out = append(out, p)
	}
	return out
}
