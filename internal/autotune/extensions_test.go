package autotune

import (
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/ir"
	"optinline/internal/search"
	"optinline/internal/workload"
)

func TestExtendedEqualsBaseWhenDisabled(t *testing.T) {
	c1, c2 := newCompiler(t), newCompiler(t)
	a := Tune(c1, nil, Options{Rounds: 3})
	b := TuneExtended(c2, nil, ExtOptions{Options: Options{Rounds: 3}})
	if a.Size != b.Size || !a.Config.Equal(b.Config) {
		t.Fatalf("extended tuner with no extensions diverged: %d vs %d", a.Size, b.Size)
	}
	if len(a.Rounds) != len(b.Rounds) {
		t.Fatalf("round traces differ: %d vs %d", len(a.Rounds), len(b.Rounds))
	}
}

func TestGroupTogglesFindGroupDCE(t *testing.T) {
	// The shared test module's @big needs both its call sites inlined to
	// pay off (the callee then dies). Plain clean-slate tuning cannot find
	// it; group toggles must.
	c := newCompiler(t)
	plain := CleanSlate(c, Options{Rounds: 4})
	cg := newCompiler(t)
	grouped := TuneExtended(cg, nil, ExtOptions{Options: Options{Rounds: 4}, GroupCallees: true})
	if grouped.Size >= plain.Size {
		t.Fatalf("group toggles found nothing: plain %d, grouped %d", plain.Size, grouped.Size)
	}
	if !grouped.Config.Inline(2) || !grouped.Config.Inline(3) {
		t.Fatalf("group win not applied: %v", grouped.Config)
	}
	// And it must match the certified optimum here.
	opt, ok := search.Optimal(newCompiler(t), search.Options{})
	if !ok {
		t.Fatal("search aborted")
	}
	if grouped.Size != opt.Size {
		t.Fatalf("grouped tuner %d != optimum %d", grouped.Size, opt.Size)
	}
}

func TestGroupTogglesRespectExportedCallees(t *testing.T) {
	src := `
export func shared(%x) {
entry:
  %a = mul %x, %x
  %b = add %a, %x
  %c = mul %b, %a
  ret %c
}
export func u1(%x) {
entry:
  %r = call @shared(%x) !site 1
  ret %r
}
export func u2(%x) {
entry:
  %r = call @shared(%x) !site 2
  ret %r
}
`
	m := ir.MustParse("exp", src)
	c := compile.New(m, codegen.TargetX86)
	res := TuneExtended(c, nil, ExtOptions{Options: Options{Rounds: 2}, GroupCallees: true})
	// Inlining both sites duplicates the body without deleting the exported
	// callee; the group candidate must not be (wrongly) considered a win.
	if got := c.Size(res.Config); got > res.InitSize {
		t.Fatalf("tuning regressed: %d > %d", got, res.InitSize)
	}
}

func TestIncrementalNeverWorseThanInit(t *testing.T) {
	c := newCompiler(t)
	res := TuneExtended(c, nil, ExtOptions{Options: Options{Rounds: 4}, Incremental: true})
	if res.Size > res.InitSize {
		t.Fatalf("incremental tuning regressed: %d > %d", res.Size, res.InitSize)
	}
	if got := c.Size(res.Config); got != res.Size {
		t.Fatal("reported size inconsistent")
	}
}

func TestIncrementalUsesFewerEvaluationsOnCorpus(t *testing.T) {
	p := workload.Profile{
		Name: "incr", Files: 1, TotalEdges: 60,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.05, BranchProb: 0.45, MultiRootPct: 0.12,
	}
	f := workload.Generate(p).Files[0]

	full := compile.New(f.Module, codegen.TargetX86)
	rFull := TuneExtended(full, nil, ExtOptions{Options: Options{Rounds: 4}})

	inc := compile.New(f.Module, codegen.TargetX86)
	rInc := TuneExtended(inc, nil, ExtOptions{Options: Options{Rounds: 4}, Incremental: true})

	if rInc.Size > rFull.InitSize {
		t.Fatalf("incremental regressed vs init: %d > %d", rInc.Size, rFull.InitSize)
	}
	if len(rFull.Rounds) > 1 && inc.Evaluations() >= full.Evaluations() {
		t.Fatalf("incremental did not save evaluations: %d vs %d",
			inc.Evaluations(), full.Evaluations())
	}
	// Quality must stay close: within 5% of the full tuner.
	if float64(rInc.Size) > 1.05*float64(rFull.Size) {
		t.Fatalf("incremental quality degraded: %d vs %d", rInc.Size, rFull.Size)
	}
}

func TestGroupTogglesOnGeneratedHubs(t *testing.T) {
	// Hub-heavy corpora are where group toggles can matter; the extended
	// tuner must never do worse than the plain one.
	p := workload.Profile{
		Name: "hubs", Files: 4, TotalEdges: 50,
		ConstArgProb: 0.3, HubProb: 0.5, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	var plainTotal, extTotal int
	for _, f := range workload.Generate(p).Files {
		cPlain := compile.New(f.Module, codegen.TargetX86)
		plain := CleanSlate(cPlain, Options{Rounds: 2})
		cExt := compile.New(f.Module, codegen.TargetX86)
		ext := TuneExtended(cExt, nil, ExtOptions{Options: Options{Rounds: 2}, GroupCallees: true})
		// Per file, group toggles can interact with single toggles within a
		// round (the same non-additivity the paper observes across rounds,
		// Table 4), so allow small per-file regressions...
		if float64(ext.Size) > 1.05*float64(plain.Size) {
			t.Fatalf("%s: grouped %d much worse than plain %d", f.Name, ext.Size, plain.Size)
		}
		plainTotal += plain.Size
		extTotal += ext.Size
	}
	// ...but overall the extension must not lose.
	if extTotal > plainTotal {
		t.Fatalf("grouped total %d worse than plain total %d", extTotal, plainTotal)
	}
}

func TestExactComponentPolishReachesOptimum(t *testing.T) {
	// On modules whose every component fits the polish cap, the polished
	// tuner must land exactly on the certified optimum: the polish re-solves
	// each component under the tuned rest, and component optima compose
	// (the paper's independence theorem).
	p := workload.Profile{
		Name: "polish", Files: 4, TotalEdges: 40,
		ConstArgProb: 0.35, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.05, BranchProb: 0.45, MultiRootPct: 0.25,
	}
	checked := 0
	for _, f := range workload.Generate(p).Files {
		probe := compile.New(f.Module, codegen.TargetX86)
		if len(probe.Graph().Edges) == 0 {
			continue
		}
		if _, capped := search.RecursiveSpaceSize(probe.Graph(), 1<<12); capped {
			continue
		}
		opt, ok := search.Optimal(compile.New(f.Module, codegen.TargetX86), search.Options{MaxSpace: 1 << 12})
		if !ok {
			continue
		}
		checked++
		cp := compile.New(f.Module, codegen.TargetX86)
		res := TuneExtended(cp, nil, ExtOptions{
			Options: Options{Rounds: 2}, ExactComponents: 1 << 12,
		})
		if res.Size != opt.Size {
			t.Fatalf("%s: polished tuner %d != optimum %d", f.Name, res.Size, opt.Size)
		}
		if got := cp.Size(res.Config); got != res.Size {
			t.Fatalf("%s: polished config prices to %d, reported %d", f.Name, got, res.Size)
		}
		// The -no-prune oracle must agree bit for bit.
		cn := compile.New(f.Module, codegen.TargetX86)
		resN := TuneExtended(cn, nil, ExtOptions{
			Options: Options{Rounds: 2}, ExactComponents: 1 << 12, NoPrune: true,
		})
		if resN.Size != res.Size || !resN.Config.Equal(res.Config) {
			t.Fatalf("%s: polish with -no-prune diverged: %d vs %d", f.Name, resN.Size, res.Size)
		}
	}
	if checked == 0 {
		t.Fatal("no file in the polish corpus was fully searchable")
	}
}

func TestExactComponentPolishMonotone(t *testing.T) {
	// On a larger unit where only some components fit the cap, the polish
	// must never regress the tuned result.
	p := workload.Profile{
		Name: "polish-mono", Files: 1, TotalEdges: 60,
		ConstArgProb: 0.35, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.05, BranchProb: 0.45, MultiRootPct: 0.15,
	}
	f := workload.Generate(p).Files[0]
	plain := TuneExtended(compile.New(f.Module, codegen.TargetX86), nil,
		ExtOptions{Options: Options{Rounds: 2}})
	cp := compile.New(f.Module, codegen.TargetX86)
	polished := TuneExtended(cp, nil,
		ExtOptions{Options: Options{Rounds: 2}, ExactComponents: 1 << 10})
	if polished.Size > plain.Size {
		t.Fatalf("polish regressed: %d > %d", polished.Size, plain.Size)
	}
	if got := cp.Size(polished.Config); got != polished.Size {
		t.Fatalf("polished config prices to %d, reported %d", got, polished.Size)
	}
}

func TestExtendedWithInit(t *testing.T) {
	c := newCompiler(t)
	init := callgraph.NewConfig().Set(1, true)
	res := TuneExtended(c, init, ExtOptions{
		Options: Options{Rounds: 3}, GroupCallees: true, Incremental: true,
	})
	if res.InitSize != c.Size(init) {
		t.Fatal("init size wrong")
	}
	if res.Size > res.InitSize {
		t.Fatal("regressed")
	}
}
