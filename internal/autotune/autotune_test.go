package autotune

import (
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/ir"
	"optinline/internal/search"
)

// The module exercises the autotuner's behaviours:
//   - @wrap: single beneficial toggle (clean slate finds it)
//   - @big:  inlining any one call site grows the program; inlining all of
//     them deletes the callee (only discoverable from an initialization
//     that already inlines them, the paper's Figure 14 situation).
const src = `
func @wrap(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

func @big(%x) {
entry:
  %a1 = mul %x, %x
  %a2 = mul %a1, %x
  %a3 = add %a2, %a1
  %a4 = mul %a3, %a2
  %a5 = add %a4, %a3
  %a6 = mul %a5, %a4
  ret %a6
}

export func @mainA(%x) {
entry:
  %a = call @wrap(%x) !site 1
  %b = call @big(%x) !site 2
  %s = add %a, %b
  ret %s
}

export func @mainB(%x) {
entry:
  %b = call @big(%x) !site 3
  ret %b
}
`

func newCompiler(t *testing.T) *compile.Compiler {
	t.Helper()
	m, err := ir.Parse("at", src)
	if err != nil {
		t.Fatal(err)
	}
	return compile.New(m, codegen.TargetX86)
}

func TestCleanSlateFindsSingleToggles(t *testing.T) {
	c := newCompiler(t)
	res := CleanSlate(c, Options{})
	if !res.Config.Inline(1) {
		t.Fatal("beneficial wrapper toggle not kept")
	}
	if res.Config.Inline(2) || res.Config.Inline(3) {
		t.Fatal("individually harmful toggles kept")
	}
	if res.Size > res.InitSize {
		t.Fatalf("tuning made things worse: %d -> %d", res.InitSize, res.Size)
	}
}

func TestResultSizesConsistent(t *testing.T) {
	c := newCompiler(t)
	res := CleanSlate(c, Options{Rounds: 2})
	if got := c.Size(res.Config); got != res.Size {
		t.Fatalf("reported size %d != recomputed %d", res.Size, got)
	}
	if got := c.Size(res.Final); got != res.FinalSize {
		t.Fatalf("final size mismatch")
	}
	if len(res.Rounds) == 0 || res.Rounds[0].Round != 1 {
		t.Fatalf("round trace broken: %+v", res.Rounds)
	}
	for _, r := range res.Rounds {
		if r.Inlined+r.NotInlined != len(c.Graph().Sites()) {
			t.Fatalf("round %d counts inconsistent: %+v", r.Round, r)
		}
	}
}

func TestInitializedTuningCanBeatCleanSlate(t *testing.T) {
	c := newCompiler(t)
	// Initialization that inlines both big call sites: the callee dies, and
	// no single outline-toggle improves, so tuning keeps the group win.
	init := callgraph.NewConfig().Set(2, true).Set(3, true)
	inited := Tune(c, init, Options{})
	clean := CleanSlate(c, Options{})
	if inited.Size >= clean.Size {
		// The group-DCE win must make the initialized result strictly
		// better in this constructed module.
		t.Fatalf("initialized %d should beat clean slate %d", inited.Size, clean.Size)
	}
}

func TestCombinedPicksBest(t *testing.T) {
	c := newCompiler(t)
	init := callgraph.NewConfig().Set(2, true).Set(3, true)
	best, clean, inited := Combined(c, init, Options{})
	if best.Size > clean.Size || best.Size > inited.Size {
		t.Fatalf("combined %d worse than a branch (%d, %d)", best.Size, clean.Size, inited.Size)
	}
}

func TestFixpointStopsEarly(t *testing.T) {
	c := newCompiler(t)
	res := CleanSlate(c, Options{Rounds: 10})
	if len(res.Rounds) == 10 {
		t.Fatal("expected early fixpoint")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.Toggles != 0 {
		t.Fatalf("last round still toggled %d", last.Toggles)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	cs, cp := newCompiler(t), newCompiler(t)
	rs := CleanSlate(cs, Options{Rounds: 3, Workers: 1})
	rp := CleanSlate(cp, Options{Rounds: 3, Workers: 8})
	if rs.Size != rp.Size || !rs.Config.Equal(rp.Config) {
		t.Fatalf("parallel tuning diverged: %d vs %d", rs.Size, rp.Size)
	}
}

func TestTunerNeverWorseThanItsStart(t *testing.T) {
	c := newCompiler(t)
	g := c.Graph()
	h := heuristic.OsConfig(c.Module(), g)
	res := Tune(c, h, Options{Rounds: 4})
	if res.Size > res.InitSize {
		t.Fatalf("best-of-rounds worse than init: %d > %d", res.Size, res.InitSize)
	}
}

func TestTunerFindsOptimalOnLocalModule(t *testing.T) {
	// On this module, optimal configurations are discoverable: clean slate
	// finds the wrapper win, the big-group win needs the init. Best-of-two
	// must equal the exhaustive optimum (the paper's 81% story, here 100%).
	c := newCompiler(t)
	opt, ok := search.Optimal(c, search.Options{})
	if !ok {
		t.Fatal("search aborted")
	}
	init := callgraph.NewConfig().Set(2, true).Set(3, true).Set(1, true)
	best, _, _ := Combined(c, init, Options{Rounds: 4})
	if best.Size != opt.Size {
		t.Fatalf("autotuner %d != optimal %d", best.Size, opt.Size)
	}
}

func TestEvaluationBudget(t *testing.T) {
	// One round costs at most n+2 real compilations (plus cache hits).
	c := newCompiler(t)
	n := len(c.Graph().Sites())
	CleanSlate(c, Options{})
	if got := c.Evaluations(); got > int64(n+2) {
		t.Fatalf("round used %d evaluations, budget %d", got, n+2)
	}
}
