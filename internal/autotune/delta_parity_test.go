package autotune

import (
	"testing"

	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/heuristic"
	"optinline/internal/workload"
)

// TestTuneDeltaMatchesNoDelta: the autotuner on the delta engine must match
// the -no-delta oracle in every observable — configurations, sizes, round
// traces, and the evaluation counter the CLIs print on stdout.
func TestTuneDeltaMatchesNoDelta(t *testing.T) {
	p := workload.Profile{
		Name: "dpar", Files: 4, TotalEdges: 60,
		ConstArgProb: 0.35, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.35,
		RecProb: 0.1, BranchProb: 0.45, MultiRootPct: 0.15,
	}
	for _, f := range workload.Generate(p).Files {
		delta := compile.New(f.Module, codegen.TargetX86)
		if len(delta.Graph().Edges) == 0 {
			continue
		}
		full := compile.New(f.Module, codegen.TargetX86)
		full.SetDelta(false)
		init := heuristic.OsConfig(delta.Module(), delta.Graph())

		opts := Options{Rounds: 3}
		for name, pair := range map[string][2]Result{
			"clean": {Tune(delta, nil, opts), Tune(full, nil, opts)},
			"os":    {Tune(delta, init, opts), Tune(full, init, opts)},
		} {
			d, w := pair[0], pair[1]
			if d.Size != w.Size || d.InitSize != w.InitSize || d.FinalSize != w.FinalSize {
				t.Fatalf("%s %s: sizes diverge: delta (%d,%d,%d) vs full (%d,%d,%d)",
					f.Name, name, d.InitSize, d.Size, d.FinalSize, w.InitSize, w.Size, w.FinalSize)
			}
			if !d.Config.Equal(w.Config) || !d.Final.Equal(w.Final) {
				t.Fatalf("%s %s: configurations diverge: %v vs %v", f.Name, name, d.Config, w.Config)
			}
			if len(d.Rounds) != len(w.Rounds) {
				t.Fatalf("%s %s: round counts diverge: %d vs %d", f.Name, name, len(d.Rounds), len(w.Rounds))
			}
			for i := range d.Rounds {
				if d.Rounds[i] != w.Rounds[i] {
					t.Fatalf("%s %s round %d: %+v vs %+v", f.Name, name, i+1, d.Rounds[i], w.Rounds[i])
				}
			}
		}
		if d, w := delta.Evaluations(), full.Evaluations(); d != w {
			t.Fatalf("%s: evaluation counters diverge: delta %d vs full %d", f.Name, d, w)
		}
		if delta.DeltaStats().Evals == 0 {
			t.Fatalf("%s: delta engine never engaged", f.Name)
		}
	}
}

// TestTuneExtendedDeltaMatchesNoDelta: same parity contract for the group-
// toggle and incremental extensions, whose rebase path (configuration-diff
// toggles) is easy to get subtly wrong.
func TestTuneExtendedDeltaMatchesNoDelta(t *testing.T) {
	p := workload.Profile{
		Name: "dparx", Files: 3, TotalEdges: 55,
		ConstArgProb: 0.3, HubProb: 0.45, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0.05, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	opts := ExtOptions{Options: Options{Rounds: 3}, GroupCallees: true, Incremental: true}
	for _, f := range workload.Generate(p).Files {
		delta := compile.New(f.Module, codegen.TargetX86)
		if len(delta.Graph().Edges) == 0 {
			continue
		}
		full := compile.New(f.Module, codegen.TargetX86)
		full.SetDelta(false)
		d := TuneExtended(delta, nil, opts)
		w := TuneExtended(full, nil, opts)
		if d.Size != w.Size || d.FinalSize != w.FinalSize || !d.Config.Equal(w.Config) {
			t.Fatalf("%s: extended tuner diverges: delta %d %v vs full %d %v",
				f.Name, d.Size, d.Config, w.Size, w.Config)
		}
		for i := range d.Rounds {
			if d.Rounds[i] != w.Rounds[i] {
				t.Fatalf("%s round %d: %+v vs %+v", f.Name, i+1, d.Rounds[i], w.Rounds[i])
			}
		}
		if dd, ww := delta.Evaluations(), full.Evaluations(); dd != ww {
			t.Fatalf("%s: evaluation counters diverge: delta %d vs full %d", f.Name, dd, ww)
		}
	}
}
