package autotune

import (
	"optinline/internal/callgraph"
	"optinline/internal/compile"
	"optinline/internal/search"
)

// The paper points at two straightforward extensions of the local
// autotuner; both are implemented here.
//
// Group toggles (Section 5.2.1): "for each callee with internal linkage and
// many callers, an additional configuration with all of them inlined must
// be checked" — the win of inlining *every* caller of a callee (which
// deletes the callee) is invisible to one-edge-at-a-time toggling.
//
// Incremental rounds (Section 6): "a practical implementation can take
// advantage of multiple properties to reduce the number of necessary
// evaluations, e.g. only re-tuning parts of call graphs that change between
// rounds" — after round one, only edges adjacent to functions touched by a
// kept toggle can have a changed cost, so only those need re-evaluation.

// ExtOptions configures TuneExtended.
type ExtOptions struct {
	Options
	// GroupCallees additionally evaluates, per internal multi-caller
	// callee, the configuration that inlines every call site targeting it.
	GroupCallees bool
	// Incremental restricts rounds after the first to edges in the
	// neighbourhood of the previous round's kept toggles.
	Incremental bool
	// ExactComponents, when nonzero, polishes the tuned result after the
	// rounds: every call-graph component whose recursive search space fits
	// this many tree evaluations is re-solved exactly (branch-and-bound)
	// under the tuned labels of the rest of the module. Component optima are
	// independent of outside labels (the paper's independence theorem), so
	// each polish yields the true component optimum given the rest and the
	// result is monotonically no worse than the tuned one.
	ExactComponents uint64
	// NoPrune makes the ExactComponents polish use the exhaustive recursion
	// instead of branch-and-bound (differential oracle; same result).
	NoPrune bool
}

// TuneExtended runs the autotuner with the paper's suggested extensions.
// With both extensions disabled it is equivalent to Tune.
func TuneExtended(c *compile.Compiler, init *callgraph.Config, opts ExtOptions) Result {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	g := c.Graph()
	allSites := g.Sites()

	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	sized := c.Sized(base)
	baseSize := sized.Size()
	res := Result{Config: base.Clone(), Size: baseSize, InitSize: baseSize}

	active := allSites // sites to evaluate this round
	for round := 1; round <= rounds; round++ {
		next, toggled := extRound(c, g, sized, baseSize, active, opts)
		// toggled can revisit a site (a single-edge toggle later overridden
		// by a winning group), so rebase on the configuration diff, not the
		// toggle log.
		nextSized := c.Rebase(sized, sized.Config().DiffSites(next))
		nextSize := nextSized.Size()
		res.Rounds = append(res.Rounds, RoundTrace{
			Round:      round,
			Size:       nextSize,
			Inlined:    next.InlineCount(),
			NotInlined: len(allSites) - next.InlineCount(),
			Toggles:    len(toggled),
		})
		if nextSize < res.Size {
			res.Config, res.Size = next.Clone(), nextSize
		}
		res.Final, res.FinalSize = next, nextSize
		if len(toggled) == 0 {
			break
		}
		sized, baseSize = nextSized, nextSize
		if opts.Incremental {
			active = neighbourhood(g, toggled)
		}
	}
	if res.Final == nil {
		res.Final, res.FinalSize = res.Config, res.Size
	}
	if opts.ExactComponents > 0 {
		polishComponents(c, &res, opts)
	}
	res.Evaluations = c.Evaluations()
	return res
}

// polishComponents re-solves every small-enough call-graph component exactly
// under the tuned labels of the rest of the module, adopting each component
// optimum as it is found. Components are processed in canonical order and
// each solve fixes the labels adopted so far, so the polish is deterministic
// and its result monotonically improves on the tuned configuration.
func polishComponents(c *compile.Compiler, res *Result, opts ExtOptions) {
	sOpts := search.Options{Workers: opts.Workers, NoPrune: opts.NoPrune}
	for _, comp := range search.ComponentSubgraphs(c.Graph()) {
		if n, capped := search.SubspaceSize(comp, opts.ExactComponents); capped || n > opts.ExactComponents {
			continue
		}
		decided := res.Config.Clone()
		for _, s := range comp.EdgeIDs() {
			decided.Set(s, false)
		}
		cfg, size := search.OptimalCompletion(c, comp, decided, sOpts)
		if size < res.Size {
			res.Config, res.Size = cfg, size
		}
	}
}

// extRound evaluates single-edge toggles over the active sites plus,
// optionally, per-callee group configurations — all as deltas against the
// round's base handle. It returns the next configuration and the toggled
// sites.
func extRound(c *compile.Compiler, g *callgraph.Graph, base *compile.Sized, baseSize int, active []int, opts ExtOptions) (*callgraph.Config, []int) {
	toggleSets := make([][]int, 0, len(active)+8)
	for _, s := range active {
		toggleSets = append(toggleSets, []int{s})
	}

	// Group candidates: internal callees with >= 2 call sites not yet all
	// inlined. The group configuration inlines all of them at once.
	type group struct {
		callee string
		sites  []int
	}
	var groups []group
	if opts.GroupCallees {
		activeSet := make(map[int]bool, len(active))
		for _, s := range active {
			activeSet[s] = true
		}
		byCallee := make(map[string][]int)
		for _, e := range g.Edges {
			callee := c.Module().Func(e.Callee)
			if callee == nil || callee.Exported {
				continue
			}
			byCallee[e.Callee] = append(byCallee[e.Callee], e.Site)
		}
		for callee, sites := range byCallee {
			if len(sites) < 2 {
				continue
			}
			var missing []int // group sites the base does not inline yet
			touchesActive := false
			for _, s := range sites {
				if !base.Inline(s) {
					missing = append(missing, s)
				}
				if activeSet[s] {
					touchesActive = true
				}
			}
			if len(missing) == 0 || !touchesActive {
				continue
			}
			groups = append(groups, group{callee: callee, sites: sites})
			toggleSets = append(toggleSets, missing)
		}
	}

	sizes := c.SizeDeltaParallel(base, toggleSets, opts.Workers)

	next := base.Config()
	var toggled []int
	for i, s := range active {
		toInline := !base.Inline(s)
		keep := false
		if toInline {
			keep = sizes[i] <= baseSize
		} else {
			keep = sizes[i] < baseSize
		}
		if keep {
			next.Set(s, toInline)
			toggled = append(toggled, s)
		}
	}
	// Apply winning groups (strict improvement only; group toggles are
	// additions, so later groups see earlier ones' edges already set).
	for gi, grp := range groups {
		if sizes[len(active)+gi] < baseSize {
			for _, s := range grp.sites {
				if !next.Inline(s) {
					next.Set(s, true)
					toggled = append(toggled, s)
				}
			}
		}
	}
	return next, toggled
}

// neighbourhood returns the sites adjacent (sharing a caller or callee
// function) to any of the toggled sites.
func neighbourhood(g *callgraph.Graph, toggled []int) []int {
	touched := make(map[string]bool)
	for _, s := range toggled {
		if e := g.Edge(s); e != nil {
			touched[e.Caller] = true
			touched[e.Callee] = true
		}
	}
	var out []int
	for _, e := range g.Edges {
		if touched[e.Caller] || touched[e.Callee] {
			out = append(out, e.Site)
		}
	}
	return out
}
