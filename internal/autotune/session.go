package autotune

import (
	"optinline/internal/callgraph"
	"optinline/internal/compile"
)

// Session is a tuning session stepped one round at a time by the caller.
// It runs exactly the rounds Tune runs — same probes, same tie rules, same
// delta-engine rebasing — but leaves the loop policy (how many rounds,
// when to stop, what "best" means) outside. The cross-module sharded tuner
// (internal/link) is built on it: one Session per call-graph component,
// all stepped in lockstep global rounds, so the merged per-round traces
// reproduce a whole-module Tune exactly.
type Session struct {
	c       *compile.Compiler
	sites   []int
	workers int

	sized *compile.Sized
	size  int
	round int
	done  bool // a round kept no toggles; further rounds are no-ops
}

// NewSession prices init (nil means clean slate) and returns a session
// positioned before round 1.
func NewSession(c *compile.Compiler, init *callgraph.Config, workers int) *Session {
	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	sized := c.Sized(base)
	return &Session{
		c:       c,
		sites:   c.Graph().Sites(),
		workers: workers,
		sized:   sized,
		size:    sized.Size(),
	}
}

// Step runs one tuning round and returns its trace. Once a round keeps no
// toggles the session is converged: the configuration is a fixpoint of the
// round operator (each probe depends only on the unchanged base), so Step
// becomes a free no-op that replays the converged state — callers in a
// lockstep loop may keep calling it or skip the session, identically.
func (s *Session) Step() RoundTrace {
	s.round++
	if !s.done {
		kept := tuneRound(s.c, s.sized, s.size, s.sites, s.workers)
		s.sized = s.c.Rebase(s.sized, kept)
		s.size = s.sized.Size()
		if len(kept) == 0 {
			s.done = true
		}
		cfg := s.sized.Config()
		return RoundTrace{
			Round:      s.round,
			Size:       s.size,
			Inlined:    cfg.InlineCount(),
			NotInlined: len(s.sites) - cfg.InlineCount(),
			Toggles:    len(kept),
		}
	}
	cfg := s.sized.Config()
	return RoundTrace{
		Round:      s.round,
		Size:       s.size,
		Inlined:    cfg.InlineCount(),
		NotInlined: len(s.sites) - cfg.InlineCount(),
		Toggles:    0,
	}
}

// Converged reports whether a past round kept no toggles.
func (s *Session) Converged() bool { return s.done }

// Config returns the current round's configuration (shared; clone before
// mutating).
func (s *Session) Config() *callgraph.Config { return s.sized.Config() }

// Size returns the current round's size.
func (s *Session) Size() int { return s.size }
