package autotune

import (
	"math"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/interp"
	"optinline/internal/workload"
)

// weightedFixture generates one interpretable unit with a profile-backed
// cycle pricer.
func weightedFixture(t *testing.T) (*compile.Compiler, *compile.CyclePricer) {
	t.Helper()
	p := workload.Profile{
		Name: "wt", Files: 10, TotalEdges: 70,
		ConstArgProb: 0.4, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.3,
		RecProb: 0.1, BranchProb: 0.5,
	}
	for _, f := range workload.Generate(p).Files {
		c := compile.New(f.Module, codegen.TargetX86)
		if len(c.Graph().Edges) < 4 {
			continue
		}
		built, err := c.Build(callgraph.NewConfig())
		if err != nil {
			continue
		}
		_, prof, err := interp.Collect(built, "entry", []int64{7}, interp.Options{Fuel: 5_000_000})
		if err != nil {
			continue
		}
		pricer, err := c.NewCyclePricer(prof, compile.CycleOptions{CacheBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		return c, pricer
	}
	t.Fatal("no interpretable file with enough edges in generated corpus")
	return nil, nil
}

// TestTuneWeightedLambdaZeroMatchesSizeTuner: with lambda = 0 the weighted
// session minimizes bytes alone, so its best size can never be worse than
// the size tuner's from the same start (probe sets are identical; only the
// recorded Cycles field differs).
func TestTuneWeightedLambdaZeroMatchesSizeTuner(t *testing.T) {
	c, pricer := weightedFixture(t)
	opts := Options{Rounds: 3, Workers: 2}
	sizeRes := Tune(compile.New(c.Module(), codegen.TargetX86), nil, opts)
	wRes := TuneWeighted(c, pricer, 0, nil, opts)
	if wRes.Size != sizeRes.Size {
		t.Fatalf("lambda=0 best size %d != size tuner %d", wRes.Size, sizeRes.Size)
	}
	if wRes.Cycles <= 0 {
		t.Fatalf("weighted session did not record cycles: %+v", wRes)
	}
}

// TestTuneWeightedMonotoneTrade: the cycles-only endpoint must be at least
// as fast as the size-only endpoint, and the size-only endpoint at least as
// small — the defining property of the two frontier ends.
func TestTuneWeightedMonotoneTrade(t *testing.T) {
	c, pricer := weightedFixture(t)
	opts := Options{Rounds: 3, Workers: 2}
	sizeEnd := TuneWeighted(c, pricer, 0, nil, opts)
	speedEnd := TuneCycles(c, pricer, nil, opts)
	if speedEnd.Cycles > sizeEnd.Cycles {
		t.Fatalf("cycles-only endpoint slower than size-only: %d > %d", speedEnd.Cycles, sizeEnd.Cycles)
	}
	if sizeEnd.Size > speedEnd.Size {
		t.Fatalf("size-only endpoint bigger than cycles-only: %d > %d", sizeEnd.Size, speedEnd.Size)
	}
}

// TestTuneWeightedWorkerDeterminism: identical results for workers 1/2/8,
// the cycle-objective analogue of the CLIs' -jobs guarantee.
func TestTuneWeightedWorkerDeterminism(t *testing.T) {
	var ref Result
	for i, workers := range []int{1, 2, 8} {
		c, pricer := weightedFixture(t)
		got := TuneWeighted(c, pricer, 0.05, nil, Options{Rounds: 3, Workers: workers})
		if i == 0 {
			ref = got
			continue
		}
		if got.Size != ref.Size || got.Cycles != ref.Cycles || !got.Config.Equal(ref.Config) {
			t.Fatalf("workers=%d: (%d, %d) != (%d, %d)", workers, got.Size, got.Cycles, ref.Size, ref.Cycles)
		}
	}
}

// TestTuneWeightedDeltaOracle: the weighted session must produce identical
// results whether cycles are priced incrementally or through the
// -no-cycledelta whole-module oracle.
func TestTuneWeightedDeltaOracle(t *testing.T) {
	run := func(disable bool) Result {
		c, pricer := weightedFixture(t)
		if disable {
			pricer.SetCycleDelta(false)
		}
		return TuneWeighted(c, pricer, 0.1, nil, Options{Rounds: 3, Workers: 2})
	}
	delta, full := run(false), run(true)
	if delta.Size != full.Size || delta.Cycles != full.Cycles || !delta.Config.Equal(full.Config) {
		t.Fatalf("delta (%d,%d) != oracle (%d,%d)", delta.Size, delta.Cycles, full.Size, full.Cycles)
	}
	if len(delta.Rounds) != len(full.Rounds) {
		t.Fatalf("round counts differ: %d vs %d", len(delta.Rounds), len(full.Rounds))
	}
	for i := range delta.Rounds {
		if delta.Rounds[i] != full.Rounds[i] {
			t.Fatalf("round %d differs: %+v vs %+v", i, delta.Rounds[i], full.Rounds[i])
		}
	}
}

// TestParetoFrontierShape: the frontier is non-empty, sorted by size with
// strictly decreasing cycles, bracketed by the endpoints.
func TestParetoFrontierShape(t *testing.T) {
	c, pricer := weightedFixture(t)
	pts := Pareto(c, pricer, nil, []float64{0.01, 0.1, 1}, Options{Rounds: 2, Workers: 2})
	if len(pts) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Size <= pts[i-1].Size {
			t.Fatalf("frontier not size-ascending: %+v", pts)
		}
		if pts[i].Cycles >= pts[i-1].Cycles {
			t.Fatalf("frontier not cycle-descending: %+v", pts)
		}
	}
	for _, p := range pts {
		if p.Config == nil {
			t.Fatal("frontier point without config")
		}
	}
}

// TestFrontierFilter: dominated and duplicate points are removed.
func TestFrontierFilter(t *testing.T) {
	cfg := callgraph.NewConfig()
	pts := []ParetoPoint{
		{Lambda: 0, Size: 100, Cycles: 900, Config: cfg},
		{Lambda: 0.1, Size: 110, Cycles: 800, Config: cfg},
		{Lambda: 0.2, Size: 120, Cycles: 850, Config: cfg}, // dominated by (110, 800)
		{Lambda: 0.3, Size: 110, Cycles: 800, Config: cfg}, // duplicate
		{Lambda: math.Inf(1), Size: 130, Cycles: 700, Config: cfg},
	}
	out := Frontier(pts)
	if len(out) != 3 {
		t.Fatalf("frontier %+v", out)
	}
	if out[0].Size != 100 || out[1].Size != 110 || out[2].Size != 130 {
		t.Fatalf("wrong points survived: %+v", out)
	}
	if out[1].Lambda != 0.1 {
		t.Fatalf("duplicate resolution should keep the smallest lambda: %+v", out[1])
	}
}
