package autotune

import (
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/compile"
	"optinline/internal/interp"
	"optinline/internal/ir"
)

func TestObjectiveMatchesSizeTuner(t *testing.T) {
	// With the objective set to compiled size, TuneObjective must agree
	// with the dedicated size tuner.
	c1, c2 := newCompiler(t), newCompiler(t)
	sizeObj := func(cfg *callgraph.Config) int64 { return int64(c2.Size(cfg)) }
	a := Tune(c1, nil, Options{Rounds: 3})
	b := TuneObjective(c2.Graph(), sizeObj, nil, Options{Rounds: 3})
	if a.Size != b.Size || !a.Config.Equal(b.Config) {
		t.Fatalf("objective tuner diverged from size tuner: %d vs %d", a.Size, b.Size)
	}
}

func TestObjectiveMemoizes(t *testing.T) {
	c := newCompiler(t)
	calls := 0
	obj := func(cfg *callgraph.Config) int64 {
		calls++
		return int64(c.Size(cfg))
	}
	res := TuneObjective(c.Graph(), obj, nil, Options{Rounds: 4, Workers: 1})
	n := len(c.Graph().Sites())
	// Rounds after a fixpoint stop; every evaluated config is unique.
	if int(res.Evaluations) != calls {
		t.Fatalf("evaluation accounting wrong: %d vs %d", res.Evaluations, calls)
	}
	if calls > 4*(n+2) {
		t.Fatalf("memoization broken: %d objective calls", calls)
	}
}

// cyclesSrc: a hot loop calling a tiny helper — inlining removes dynamic
// call overhead, so tuning for cycles must inline it even though tuning
// for size might not.
const cyclesSrc = `
func helper(%x) {
entry:
  %one = const 1
  %a = add %x, %one
  %b = mul %a, %a
  %c = xor %b, %x
  %d = add %c, %b
  %e = mul %d, %x
  %f = add %e, %d
  ret %f
}

export func main(%n) {
entry:
  %zero = const 0
  br head(%zero, %zero)
head(%i, %acc):
  %c = lt %i, %n
  condbr %c, body, exit
body:
  %h = call @helper(%i) !site 1
  %na = add %acc, %h
  %one = const 1
  %ni = add %i, %one
  br head(%ni, %na)
exit:
  ret %acc
}
`

func TestTuneForCycles(t *testing.T) {
	m := ir.MustParse("cyc", cyclesSrc)
	c := compile.New(m, codegen.TargetX86)
	g := c.Graph()

	cycles := func(cfg *callgraph.Config) int64 {
		built, err := c.Build(cfg)
		if err != nil {
			return 1 << 40
		}
		res, err := interp.Run(built, "main", []int64{200}, interp.Options{
			SizeOf: codegen.SizeOf(built, codegen.TargetX86),
		})
		if err != nil {
			return 1 << 40
		}
		return res.Cycles
	}
	res := TuneObjective(g, cycles, nil, Options{Rounds: 2})
	if !res.Config.Inline(1) {
		t.Fatal("cycle tuning should inline the hot helper")
	}
	if int64(res.Size) >= cycles(callgraph.NewConfig()) {
		t.Fatal("cycle tuning did not reduce cycles")
	}
	// Behaviour must be preserved under the chosen configuration.
	built, err := c.Build(res.Config)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := interp.Run(m, "main", []int64{37}, interp.Options{})
	got, _ := interp.Run(built, "main", []int64{37}, interp.Options{})
	if want.Observable() != got.Observable() {
		t.Fatal("behaviour changed")
	}
}

func TestObjectiveWithInitAndParallel(t *testing.T) {
	c := newCompiler(t)
	obj := func(cfg *callgraph.Config) int64 { return int64(c.Size(cfg)) }
	init := callgraph.NewConfig().Set(1, true)
	seq := TuneObjective(c.Graph(), obj, init, Options{Rounds: 2, Workers: 1})
	par := TuneObjective(c.Graph(), obj, init, Options{Rounds: 2, Workers: 8})
	if seq.Size != par.Size || !seq.Config.Equal(par.Config) {
		t.Fatal("parallel objective tuning diverged")
	}
	if seq.Size > seq.InitSize {
		t.Fatal("regressed from init")
	}
}
