package autotune

import (
	"runtime"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
)

// Objective maps an inlining configuration to a cost to minimize. The
// size autotuner is the special case Objective = compiled .text bytes; the
// paper's Section 6 sketches tuning for runtime as the natural next target,
// which this generalization enables (e.g. interpreter cycles under the
// i-cache model, or any size/speed blend).
type Objective func(cfg *callgraph.Config) int64

// TuneObjective runs the local autotuner against an arbitrary objective.
// Results are memoized per canonical configuration, and each round's
// toggles evaluate in parallel, exactly like the size tuner.
func TuneObjective(g *callgraph.Graph, obj Objective, init *callgraph.Config, opts Options) Result {
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sites := g.Sites()

	var mu sync.Mutex
	memo := make(map[string]int64)
	var evals atomic.Int64
	eval := func(cfg *callgraph.Config) int64 {
		key := cfg.Key()
		mu.Lock()
		if v, ok := memo[key]; ok {
			mu.Unlock()
			return v
		}
		mu.Unlock()
		evals.Add(1)
		v := obj(cfg)
		mu.Lock()
		memo[key] = v
		mu.Unlock()
		return v
	}
	evalMany := func(cfgs []*callgraph.Config) []int64 {
		out := make([]int64, len(cfgs))
		w := workers
		if w > len(cfgs) {
			w = len(cfgs)
		}
		if w <= 1 {
			for i, cfg := range cfgs {
				out[i] = eval(cfg)
			}
			return out
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for k := 0; k < w; k++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cfgs) {
						return
					}
					out[i] = eval(cfgs[i])
				}
			}()
		}
		wg.Wait()
		return out
	}

	base := callgraph.NewConfig()
	if init != nil {
		base = init.Clone()
	}
	baseCost := eval(base)
	res := Result{
		Config:   base.Clone(),
		Size:     int(baseCost),
		InitSize: int(baseCost),
	}
	for round := 1; round <= rounds; round++ {
		cfgs := make([]*callgraph.Config, len(sites))
		for i, s := range sites {
			cfgs[i] = base.Clone().Set(s, !base.Inline(s))
		}
		costs := evalMany(cfgs)
		next := base.Clone()
		toggles := 0
		for i, s := range sites {
			toInline := !base.Inline(s)
			keep := false
			if toInline {
				keep = costs[i] <= baseCost
			} else {
				keep = costs[i] < baseCost
			}
			if keep {
				next.Set(s, toInline)
				toggles++
			}
		}
		nextCost := eval(next)
		res.Rounds = append(res.Rounds, RoundTrace{
			Round:      round,
			Size:       int(nextCost),
			Inlined:    next.InlineCount(),
			NotInlined: len(sites) - next.InlineCount(),
			Toggles:    toggles,
		})
		if int(nextCost) < res.Size {
			res.Config, res.Size = next.Clone(), int(nextCost)
		}
		res.Final, res.FinalSize = next, int(nextCost)
		if toggles == 0 {
			break
		}
		base, baseCost = next, nextCost
	}
	if res.Final == nil {
		res.Final, res.FinalSize = res.Config, res.Size
	}
	res.Evaluations = evals.Load()
	return res
}
