// Package interp executes IR modules and charges an abstract cycle cost.
//
// It serves two purposes in the reproduction:
//
//  1. Differential testing: inlining and every optimization pass must
//     preserve the observable behaviour (return value and output stream) of
//     a program. Property tests run the interpreter before and after.
//  2. The performance experiment (paper Fig. 19): the cycle model charges
//     per-instruction costs, a call overhead, and an i-cache penalty keyed
//     on function code size, reproducing the paper's observation that
//     size-tuned binaries run a few percent slower on average but can win
//     when hot code fits cache.
package interp

import (
	"errors"
	"fmt"
	"hash/fnv"

	"optinline/internal/ir"
)

// ErrFuel is returned when execution exceeds the step budget.
var ErrFuel = errors.New("interp: fuel exhausted")

// Options configures a run.
type Options struct {
	// Fuel bounds the total number of executed instructions (0 means the
	// DefaultFuel budget). Runs that exceed it fail with ErrFuel.
	Fuel int64
	// CollectOutput records every OpOutput value in Result.Output
	// (in addition to the running hash). Tests use this.
	CollectOutput bool
	// SizeOf gives the code size in bytes of a function, used by the
	// i-cache model. If nil, the i-cache model is disabled.
	SizeOf func(name string) int
	// CacheBytes is the i-cache capacity; used only when SizeOf != nil.
	// 0 selects DefaultCacheBytes.
	CacheBytes int
}

// DefaultFuel is the instruction budget used when Options.Fuel is zero.
const DefaultFuel = 2_000_000

// DefaultCacheBytes is the modelled i-cache capacity.
const DefaultCacheBytes = 4096

// Result holds the observable outcome and the cost accounting of a run.
type Result struct {
	Ret        int64  // return value of the entry function
	OutputHash uint64 // FNV-1a hash over the output stream
	OutputLen  int    // number of OpOutput executions
	Output     []int64
	Steps      int64 // executed instructions
	Cycles     int64 // modelled cycles (incl. call overhead and cache misses)
	DynCalls   int64 // dynamic call count
	CacheMiss  int64 // i-cache misses (when the model is enabled)
}

// Observable returns the externally visible behaviour: anything that must be
// preserved by a semantics-preserving transformation.
func (r Result) Observable() [3]uint64 {
	return [3]uint64{uint64(r.Ret), r.OutputHash, uint64(r.OutputLen)}
}

type machine struct {
	mod     *ir.Module
	opt     Options
	globals map[string]int64
	fuel    int64
	res     Result
	out     *fnvHash
	cache   *icache
	prof    *Profile
}

// Run executes the named entry function with the given arguments.
func Run(m *ir.Module, entry string, args []int64, opt Options) (Result, error) {
	return execute(m, entry, args, opt, nil)
}

func execute(m *ir.Module, entry string, args []int64, opt Options, prof *Profile) (Result, error) {
	f := m.Func(entry)
	if f == nil {
		return Result{}, fmt.Errorf("interp: no function %q", entry)
	}
	if f.NumParams() != len(args) {
		return Result{}, fmt.Errorf("interp: %s takes %d args, got %d", entry, f.NumParams(), len(args))
	}
	mc := &machine{
		mod:     m,
		opt:     opt,
		globals: make(map[string]int64, len(m.Globals)),
		fuel:    opt.Fuel,
		out:     newFNV(),
		prof:    prof,
	}
	if mc.fuel == 0 {
		mc.fuel = DefaultFuel
	}
	if opt.SizeOf != nil {
		limit := opt.CacheBytes
		if limit == 0 {
			limit = DefaultCacheBytes
		}
		mc.cache = newICache(limit)
	}
	ret, err := mc.call(f, args, 0)
	if err != nil {
		return Result{}, err
	}
	mc.res.Ret = ret
	mc.res.OutputHash = mc.out.sum()
	return mc.res, nil
}

func (mc *machine) touch(name string) {
	if mc.cache == nil {
		return
	}
	size := mc.opt.SizeOf(name)
	if miss := mc.cache.access(name, size); miss {
		mc.res.CacheMiss++
		mc.res.Cycles += costCacheMissBase + int64(size)/costCacheBytesPerCycle
	}
}

// call executes one frame of f. site is the !site id of the call instruction
// that created the frame (0 for the root call), recorded when profiling.
func (mc *machine) call(f *ir.Function, args []int64, site int32) (int64, error) {
	mc.res.DynCalls++
	mc.res.Cycles += costCallOverhead + int64(len(args))*costPerArg
	mc.touch(f.Name)
	var pfn int32
	if mc.prof != nil {
		pfn = mc.prof.enter(site, f.Name)
	}

	env := make(map[*ir.Value]int64, 16)
	b := f.Entry()
	for i, p := range b.Params {
		env[p] = args[i]
	}
	for {
		for _, in := range b.Instrs {
			mc.fuel--
			if mc.fuel < 0 {
				return 0, ErrFuel
			}
			mc.res.Steps++
			mc.res.Cycles += costOf(in)
			switch in.Op {
			case ir.OpConst:
				env[in.Result] = in.Const
			case ir.OpBin:
				env[in.Result] = evalBin(in.BinOp, env[in.Args[0]], env[in.Args[1]])
			case ir.OpUn:
				a := env[in.Args[0]]
				if in.UnOp == ir.Neg {
					env[in.Result] = -a
				} else if a == 0 {
					env[in.Result] = 1
				} else {
					env[in.Result] = 0
				}
			case ir.OpCall:
				callee := mc.mod.Func(in.Callee)
				vals := make([]int64, len(in.Args))
				for i, a := range in.Args {
					vals[i] = env[a]
				}
				var r int64
				if callee == nil {
					// External call: deterministic, argument-dependent.
					r = externalResult(in.Callee, vals)
					mc.res.DynCalls++
					mc.res.Cycles += costCallOverhead
				} else {
					var err error
					r, err = mc.call(callee, vals, int32(in.Site))
					if err != nil {
						return 0, err
					}
				}
				env[in.Result] = r
			case ir.OpLoadG:
				env[in.Result] = mc.globals[in.Global]
			case ir.OpStoreG:
				mc.globals[in.Global] = env[in.Args[0]]
			case ir.OpOutput:
				v := env[in.Args[0]]
				mc.out.add(v)
				mc.res.OutputLen++
				if mc.opt.CollectOutput {
					mc.res.Output = append(mc.res.Output, v)
				}
			case ir.OpBr:
				b = mc.jump(env, in.Succs[0])
			case ir.OpCondBr:
				if env[in.Args[0]] != 0 {
					b = mc.jump(env, in.Succs[0])
				} else {
					b = mc.jump(env, in.Succs[1])
				}
			case ir.OpRet:
				mc.touch(f.Name) // returning re-touches the caller's frame code
				if mc.prof != nil {
					mc.prof.leave(site, pfn)
				}
				return env[in.Args[0]], nil
			default:
				return 0, fmt.Errorf("interp: invalid op in %s", f.Name)
			}
			if in.Op == ir.OpBr || in.Op == ir.OpCondBr {
				break
			}
		}
	}
}

// jump evaluates branch arguments (all before any assignment, giving
// simultaneous-assignment semantics) and binds them to the target params.
func (mc *machine) jump(env map[*ir.Value]int64, s ir.Succ) *ir.Block {
	if len(s.Args) == 0 {
		return s.Dest
	}
	vals := make([]int64, len(s.Args))
	for i, a := range s.Args {
		vals[i] = env[a]
	}
	for i, p := range s.Dest.Params {
		env[p] = vals[i]
	}
	return s.Dest
}

// evalBin implements the total arithmetic semantics documented in package ir.
func evalBin(op ir.BinOp, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return a >> (uint64(b) & 63)
	case ir.Eq:
		return b2i(a == b)
	case ir.Ne:
		return b2i(a != b)
	case ir.Lt:
		return b2i(a < b)
	case ir.Le:
		return b2i(a <= b)
	case ir.Gt:
		return b2i(a > b)
	case ir.Ge:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// externalResult returns a deterministic value for calls that leave the
// module, mixing the callee name and arguments.
func externalResult(name string, args []int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var buf [8]byte
	for _, a := range args {
		putU64(buf[:], uint64(a))
		h.Write(buf[:])
	}
	return int64(h.Sum64() >> 1)
}

type fnvHash struct{ h uint64 }

func newFNV() *fnvHash { return &fnvHash{h: 1469598103934665603} }

func (f *fnvHash) add(v int64) {
	x := uint64(v)
	for i := 0; i < 8; i++ {
		f.h ^= x & 0xff
		f.h *= 1099511628211
		x >>= 8
	}
}

func (f *fnvHash) sum() uint64 { return f.h }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
