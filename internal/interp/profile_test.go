package interp

import (
	"testing"

	"optinline/internal/ir"
)

// TestCollectMatchesRun: profiling must not change the run itself.
func TestCollectMatchesRun(t *testing.T) {
	m := parseProg(t)
	want, err := Run(m, "main", []int64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, p, err := Collect(m, "main", []int64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Observable() != want.Observable() || got.Cycles != want.Cycles || got.Steps != want.Steps {
		t.Fatalf("Collect result %+v differs from Run %+v", got, want)
	}
	if p.Res.Observable() != want.Observable() || p.Res.Cycles != want.Cycles {
		t.Fatalf("Profile.Res %+v differs from Run %+v", p.Res, want)
	}
}

// TestProfileCounts checks the bookkeeping invariants the pricer relies on:
// two events per frame, entries = sum of per-site hits plus unattributed
// frames, and hit counts that match the program's actual call tree.
func TestProfileCounts(t *testing.T) {
	m := parseProg(t)
	const n = 4
	_, p, err := Collect(m, "main", []int64{n}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	frames := p.TotalFrames()
	if int64(len(p.Events)) != 2*frames {
		t.Fatalf("%d events for %d frames, want exactly 2 per frame", len(p.Events), frames)
	}
	// main called once (root), addsq n times via site 3, square 2n times via
	// sites 1 and 2.
	idx := func(name string) int32 {
		i, ok := p.Index(name)
		if !ok {
			t.Fatalf("function %s missing from profile", name)
		}
		return i
	}
	if p.Entries[idx("main")] != 1 || p.Entries[idx("addsq")] != n || p.Entries[idx("square")] != 2*n {
		t.Fatalf("entries wrong: %v (funcs %v)", p.Entries, p.Funcs)
	}
	if p.Hits[3] != n || p.Hits[1] != n || p.Hits[2] != n {
		t.Fatalf("site hits wrong: %v", p.Hits)
	}
	// The root frame carries site 0 and is not in Hits.
	var attributed int64
	for _, h := range p.Hits {
		attributed += h
	}
	if attributed != frames-1 {
		t.Fatalf("attributed %d of %d frames; only the root should lack a site", attributed, frames)
	}
	// Event order starts and ends with the root frame.
	first, last := p.Events[0], p.Events[len(p.Events)-1]
	if first.Fn != idx("main") || first.Site != 0 || last.Fn != idx("main") || last.Site != 0 {
		t.Fatalf("event sequence not bracketed by the root frame: first=%+v last=%+v", first, last)
	}
}

// TestProfileEventsCacheIndependent: the recorded event sequence must not
// depend on the cache model used while profiling.
func TestProfileEventsCacheIndependent(t *testing.T) {
	m := parseProg(t)
	sizeOf := func(string) int { return 50 }
	_, plain, err := Collect(m, "main", []int64{6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, cached, err := Collect(m, "main", []int64{6}, Options{SizeOf: sizeOf, CacheBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Events) != len(cached.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(plain.Events), len(cached.Events))
	}
	for i := range plain.Events {
		if plain.Events[i] != cached.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, plain.Events[i], cached.Events[i])
		}
	}
}

// TestProfileExternalCalls: external calls create no frames and no events.
func TestProfileExternalCalls(t *testing.T) {
	src := `
export func @f(%x) {
entry:
  %r = call @undefined_external(%x) !site 9
  ret %r
}
`
	m := ir.MustParse("ext", src)
	_, p, err := Collect(m, "f", []int64{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalFrames() != 1 || len(p.Events) != 2 {
		t.Fatalf("external call must not create frames: %s", p)
	}
	if len(p.Hits) != 0 {
		t.Fatalf("external site must not be hit-counted: %v", p.Hits)
	}
}
