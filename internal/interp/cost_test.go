package interp

import (
	"testing"

	"optinline/internal/ir"
)

// TestCostModelGolden pins every per-op cost and every model constant.
// The cycle pricer, the persisted experiment outputs, and BENCH numbers all
// assume these exact values: changing one is a deliberate act that must
// update this table in the same commit.
func TestCostModelGolden(t *testing.T) {
	if costCallOverhead != 9 || costPerArg != 1 {
		t.Fatalf("call overhead constants changed: %d/%d", costCallOverhead, costPerArg)
	}
	if costCacheMissBase != 30 || costCacheBytesPerCycle != 8 {
		t.Fatalf("cache miss constants changed: %d/%d", costCacheMissBase, costCacheBytesPerCycle)
	}
	if CostCallOverhead != costCallOverhead || CostPerArg != costPerArg {
		t.Fatal("exported constants drifted from the internal ones")
	}
	cases := []struct {
		name string
		in   ir.Instr
		want int64
	}{
		{"const", ir.Instr{Op: ir.OpConst}, 1},
		{"un", ir.Instr{Op: ir.OpUn}, 1},
		{"add", ir.Instr{Op: ir.OpBin, BinOp: ir.Add}, 1},
		{"sub", ir.Instr{Op: ir.OpBin, BinOp: ir.Sub}, 1},
		{"mul", ir.Instr{Op: ir.OpBin, BinOp: ir.Mul}, 3},
		{"div", ir.Instr{Op: ir.OpBin, BinOp: ir.Div}, 12},
		{"mod", ir.Instr{Op: ir.OpBin, BinOp: ir.Mod}, 12},
		{"shl", ir.Instr{Op: ir.OpBin, BinOp: ir.Shl}, 1},
		{"cmp", ir.Instr{Op: ir.OpBin, BinOp: ir.Lt}, 1},
		{"call", ir.Instr{Op: ir.OpCall}, 2},
		{"loadg", ir.Instr{Op: ir.OpLoadG}, 3},
		{"storeg", ir.Instr{Op: ir.OpStoreG}, 3},
		{"output", ir.Instr{Op: ir.OpOutput}, 4},
		{"br", ir.Instr{Op: ir.OpBr}, 1},
		{"condbr", ir.Instr{Op: ir.OpCondBr}, 2},
		{"ret", ir.Instr{Op: ir.OpRet}, 2},
	}
	for _, c := range cases {
		in := c.in
		if got := CostOf(&in); got != c.want {
			t.Errorf("costOf(%s) = %d, want %d", c.name, got, c.want)
		}
	}
	if MissPenalty(80) != 30+80/8 {
		t.Fatalf("MissPenalty(80) = %d", MissPenalty(80))
	}
	if MissPenalty(0) != 30 {
		t.Fatalf("MissPenalty must charge the raw (unclamped) size: %d", MissPenalty(0))
	}
}

// TestCycleDeterminism: the same program and inputs must yield the identical
// cycle count on every run, with and without the i-cache model.
func TestCycleDeterminism(t *testing.T) {
	m := parseProg(t)
	sizeOf := func(n string) int { return map[string]int{"main": 100, "addsq": 60, "square": 40}[n] }
	var plain, cached []Result
	for i := 0; i < 3; i++ {
		p, err := Run(m, "main", []int64{9}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(m, "main", []int64{9}, Options{SizeOf: sizeOf, CacheBytes: 150})
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, p)
		cached = append(cached, c)
	}
	for i := 1; i < 3; i++ {
		if plain[i].Cycles != plain[0].Cycles || plain[i].Steps != plain[0].Steps ||
			plain[i].Observable() != plain[0].Observable() {
			t.Fatalf("plain run %d differs: %+v vs %+v", i, plain[i], plain[0])
		}
		if cached[i].Cycles != cached[0].Cycles || cached[i].CacheMiss != cached[0].CacheMiss {
			t.Fatalf("cached run %d differs: %+v vs %+v", i, cached[i], cached[0])
		}
	}
}

// TestCacheSimMatchesNaive drives the O(1) simulator and the historical
// O(n) list implementation through the same pseudo-random access sequence
// and requires identical per-access miss decisions.
func TestCacheSimMatchesNaive(t *testing.T) {
	const n = 64
	for _, capacity := range []int{50, 200, 1000} {
		sim := NewCacheSim(capacity)
		sim.Grow(n)
		naive := newNaiveICache(capacity)
		state := uint64(12345)
		for step := 0; step < 20000; step++ {
			state = state*6364136223846793005 + 1442695040888963407
			id := int32((state >> 33) % n)
			size := int(state>>55)%40 - 2 // includes <= 0 sizes
			got := sim.Access(id, size)
			want := naive.access(nameOf(id), size)
			if got != want {
				t.Fatalf("cap %d step %d id %d size %d: sim miss=%v naive miss=%v",
					capacity, step, id, size, got, want)
			}
		}
		// Reset must behave like a fresh cache.
		sim.Reset()
		if !sim.Access(0, 10) {
			t.Fatalf("cap %d: access after Reset should miss", capacity)
		}
	}
}

// TestCacheSimOversized: entries larger than the capacity never evict
// resident code (same guarantee the naive model gave).
func TestCacheSimOversized(t *testing.T) {
	sim := NewCacheSim(100)
	sim.Grow(3)
	sim.Access(0, 60)
	if !sim.Access(1, 1000) {
		t.Fatal("oversized must miss")
	}
	if sim.Access(0, 60) {
		t.Fatal("oversized access must not evict resident entries")
	}
}
