package interp

import (
	"fmt"

	"optinline/internal/ir"
)

// Profile records one baseline interpretation of a workload in enough detail
// for the compile-side cycle pricer to re-price any inlining configuration
// without running the interpreter again:
//
//   - Entries[f] and Hits[s] turn static per-body costs into dynamic totals
//     (a frame executes its body once per entry, and inlining call site s
//     deletes exactly the Hits[s] frames that s created);
//   - Events is the exact i-cache touch sequence of the run, recorded
//     independently of any cache geometry, so the LRU penalty can be
//     re-simulated afterwards under any modelled cache size and any
//     configuration's new function sizes.
//
// Profiles are collected under the baseline (no-inline) build, where every
// call site still exists as a real call instruction.
type Profile struct {
	Entry string  // entry function name
	Args  []int64 // entry arguments

	Funcs []string // profile-local function index -> function name
	// Entries counts frames created per function, parallel to Funcs.
	Entries []int64
	// Hits counts frames per creating call site, keyed by the !site id of
	// the call instruction. Frames without a usable site (the root call, or
	// calls whose instruction carries no site id) are not in this map; they
	// are the per-function remainder Entries[f] - sum of incoming Hits.
	Hits map[int32]int64
	// Events is the ordered i-cache touch sequence: one event at frame entry
	// and one when the frame's ret re-touches its code, exactly mirroring
	// the running machine's touch points.
	Events []Event
	// Res is the observable result of the profiling run.
	Res Result

	idx map[string]int32
}

// Event is one i-cache touch in program order.
type Event struct {
	Site int32 // !site id of the call that created the frame; 0 for the root
	Fn   int32 // profile-local function index (Profile.Funcs[Fn])
}

// Index returns the profile-local index of the named function.
func (p *Profile) Index(name string) (int32, bool) {
	fn, ok := p.idx[name]
	return fn, ok
}

// enter records a frame creation and returns the function's profile index.
func (p *Profile) enter(site int32, name string) int32 {
	fn, ok := p.idx[name]
	if !ok {
		fn = int32(len(p.Funcs))
		p.idx[name] = fn
		p.Funcs = append(p.Funcs, name)
		p.Entries = append(p.Entries, 0)
	}
	p.Entries[fn]++
	if site > 0 {
		p.Hits[site]++
	}
	p.Events = append(p.Events, Event{Site: site, Fn: fn})
	return fn
}

// leave records the ret-side re-touch of the frame's code.
func (p *Profile) leave(site, fn int32) {
	p.Events = append(p.Events, Event{Site: site, Fn: fn})
}

// Collect executes the named entry function like Run while recording a
// Profile of the run. The observable Result is identical to what Run
// returns under the same Options.
func Collect(m *ir.Module, entry string, args []int64, opt Options) (Result, *Profile, error) {
	p := &Profile{
		Entry: entry,
		Args:  append([]int64(nil), args...),
		Hits:  make(map[int32]int64),
		idx:   make(map[string]int32),
	}
	res, err := execute(m, entry, args, opt, p)
	if err != nil {
		return Result{}, nil, err
	}
	p.Res = res
	return res, p, nil
}

// TotalFrames returns the number of frames the run created.
func (p *Profile) TotalFrames() int64 {
	var total int64
	for _, n := range p.Entries {
		total += n
	}
	return total
}

// String summarizes the profile for logs.
func (p *Profile) String() string {
	return fmt.Sprintf("profile{%s(%v): %d funcs, %d frames, %d events}",
		p.Entry, p.Args, len(p.Funcs), p.TotalFrames(), len(p.Events))
}
