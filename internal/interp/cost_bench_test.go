package interp

import (
	"fmt"
	"testing"
)

// naiveICache is the pre-rewrite i-cache: a []string LRU order that is
// linearly scanned and re-sliced on every hit, O(n) per access. It is kept
// here as the differential reference and the "before" side of the
// BenchmarkICache comparison.
type naiveICache struct {
	capBytes int
	used     int
	order    []string // LRU order, most recent last
	size     map[string]int
}

func newNaiveICache(capacity int) *naiveICache {
	return &naiveICache{capBytes: capacity, size: make(map[string]int)}
}

func (c *naiveICache) access(name string, size int) (miss bool) {
	if size <= 0 {
		size = 1
	}
	if _, ok := c.size[name]; ok {
		c.promote(name)
		return false
	}
	if size > c.capBytes {
		return true
	}
	for c.used+size > c.capBytes && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		c.used -= c.size[victim]
		delete(c.size, victim)
	}
	c.size[name] = size
	c.used += size
	c.order = append(c.order, name)
	return true
}

func (c *naiveICache) promote(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, name)
			return
		}
	}
}

var benchNames []string

func nameOf(id int32) string {
	for int(id) >= len(benchNames) {
		benchNames = append(benchNames, fmt.Sprintf("fn%04d", len(benchNames)))
	}
	return benchNames[id]
}

// benchSequence returns a pseudo-random access trace over n functions whose
// working set fits the cache, so most accesses are hits deep in the LRU
// list — the regime where the old implementation pays O(n) per access and
// the pricer's replay loop lives.
func benchSequence(n, steps int) []int32 {
	seq := make([]int32, steps)
	state := uint64(98765)
	for i := range seq {
		state = state*6364136223846793005 + 1442695040888963407
		seq[i] = int32((state >> 33) % uint64(n))
	}
	return seq
}

func BenchmarkICacheNaive(b *testing.B) {
	const n = 256
	seq := benchSequence(n, 4096)
	for i := int32(0); i < n; i++ {
		nameOf(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := newNaiveICache(n * 8) // every 8-byte entry resident
		for _, id := range seq {
			c.access(benchNames[id], 8)
		}
	}
}

func BenchmarkICacheIndexed(b *testing.B) {
	const n = 256
	seq := benchSequence(n, 4096)
	sim := NewCacheSim(n * 8)
	sim.Grow(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Reset()
		for _, id := range seq {
			sim.Access(id, 8)
		}
	}
}
