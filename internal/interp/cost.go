package interp

import "optinline/internal/ir"

// Cycle-model constants. The absolute values are arbitrary; only the ratios
// matter for the shape of the performance experiment: calls carry overhead,
// multiplies and divides are slower than adds, memory traffic is slower than
// register arithmetic, and an i-cache miss dwarfs a single instruction.
const (
	costCallOverhead       = 9 // frame setup + branch + return address
	costPerArg             = 1
	costCacheMissBase      = 30
	costCacheBytesPerCycle = 8 // one extra cycle per 8 bytes fetched
)

// costOf returns the base cycle cost of one instruction execution.
func costOf(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpConst, ir.OpUn:
		return 1
	case ir.OpBin:
		switch in.BinOp {
		case ir.Mul:
			return 3
		case ir.Div, ir.Mod:
			return 12
		default:
			return 1
		}
	case ir.OpCall:
		return 2 // the call instruction itself; overhead charged at entry
	case ir.OpLoadG, ir.OpStoreG:
		return 3
	case ir.OpOutput:
		return 4
	case ir.OpBr:
		return 1
	case ir.OpCondBr:
		return 2
	case ir.OpRet:
		return 2
	}
	return 1
}

// icache is a tiny fully-associative LRU cache of functions keyed by name.
type icache struct {
	cap   int
	used  int
	order []string // LRU order, most recent last
	size  map[string]int
}

func newICache(capacity int) *icache {
	return &icache{cap: capacity, size: make(map[string]int)}
}

// access records execution entering the named function and reports whether
// it missed. Functions larger than the capacity always miss.
func (c *icache) access(name string, size int) (miss bool) {
	if size <= 0 {
		size = 1
	}
	if _, ok := c.size[name]; ok {
		c.promote(name)
		return false
	}
	if size > c.cap {
		return true // never resident
	}
	for c.used+size > c.cap && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		c.used -= c.size[victim]
		delete(c.size, victim)
	}
	c.size[name] = size
	c.used += size
	c.order = append(c.order, name)
	return true
}

func (c *icache) promote(name string) {
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			c.order = append(c.order, name)
			return
		}
	}
}
