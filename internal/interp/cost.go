package interp

import "optinline/internal/ir"

// Cycle-model constants. The absolute values are arbitrary; only the ratios
// matter for the shape of the performance experiment: calls carry overhead,
// multiplies and divides are slower than adds, memory traffic is slower than
// register arithmetic, and an i-cache miss dwarfs a single instruction.
const (
	costCallOverhead       = 9 // frame setup + branch + return address
	costPerArg             = 1
	costCacheMissBase      = 30
	costCacheBytesPerCycle = 8 // one extra cycle per 8 bytes fetched
)

// Exported views of the cost model for the compile-side cycle pricer, which
// re-prices a configuration's cycles from a profile without re-interpreting.
const (
	CostCallOverhead = costCallOverhead
	CostPerArg       = costPerArg
)

// costOf returns the base cycle cost of one instruction execution.
func costOf(in *ir.Instr) int64 {
	switch in.Op {
	case ir.OpConst, ir.OpUn:
		return 1
	case ir.OpBin:
		switch in.BinOp {
		case ir.Mul:
			return 3
		case ir.Div, ir.Mod:
			return 12
		default:
			return 1
		}
	case ir.OpCall:
		return 2 // the call instruction itself; overhead charged at entry
	case ir.OpLoadG, ir.OpStoreG:
		return 3
	case ir.OpOutput:
		return 4
	case ir.OpBr:
		return 1
	case ir.OpCondBr:
		return 2
	case ir.OpRet:
		return 2
	}
	return 1
}

// CostOf is costOf for callers outside the package: the cycle pricer walks
// post-inline IR and charges each instruction exactly as a run would.
func CostOf(in *ir.Instr) int64 { return costOf(in) }

// MissPenalty is the cycle cost of one i-cache miss on a function of the
// given code size. The size is deliberately not clamped: the machine charges
// the raw SizeOf value, so a replay must too.
func MissPenalty(size int) int64 {
	return costCacheMissBase + int64(size)/costCacheBytesPerCycle
}

// CacheSim models the fully-associative LRU i-cache over dense function
// indices. It is the allocation-free core shared by the interpreter (which
// maps function names to indices) and the cycle pricer (which replays
// profiled entry sequences hot). Every operation is O(1): residency is an
// epoch stamp per node, recency an intrusive doubly-linked list threaded
// through the node slice, and Reset a single epoch bump.
type CacheSim struct {
	capBytes int
	used     int
	epoch    uint32
	nodes    []simNode
	head     int32 // least recently used; -1 when empty
	tail     int32 // most recently used; -1 when empty
}

type simNode struct {
	size  int32
	prev  int32
	next  int32
	epoch uint32 // resident iff equal to CacheSim.epoch (0 = never)
}

// NewCacheSim returns a simulator with the given byte capacity.
func NewCacheSim(capacity int) *CacheSim {
	return &CacheSim{capBytes: capacity, epoch: 1, head: -1, tail: -1}
}

// Grow ensures indices [0, n) are addressable.
func (c *CacheSim) Grow(n int) {
	if n > cap(c.nodes) {
		grown := make([]simNode, n)
		copy(grown, c.nodes)
		c.nodes = grown
		return
	}
	for len(c.nodes) < n {
		c.nodes = c.nodes[:len(c.nodes)+1]
		c.nodes[len(c.nodes)-1] = simNode{}
	}
}

// Reset empties the cache in O(1); node storage is reused.
func (c *CacheSim) Reset() {
	c.epoch++
	c.used = 0
	c.head, c.tail = -1, -1
}

func (c *CacheSim) unlink(i int32) {
	n := &c.nodes[i]
	if n.prev >= 0 {
		c.nodes[n.prev].next = n.next
	} else {
		c.head = n.next
	}
	if n.next >= 0 {
		c.nodes[n.next].prev = n.prev
	} else {
		c.tail = n.prev
	}
}

func (c *CacheSim) pushMRU(i int32) {
	n := &c.nodes[i]
	n.prev, n.next = c.tail, -1
	if c.tail >= 0 {
		c.nodes[c.tail].next = i
	} else {
		c.head = i
	}
	c.tail = i
}

// Access records execution entering function i with the given code size and
// reports whether it missed. The behaviour matches the historical list-based
// model bit for bit: sizes <= 0 occupy one byte, functions larger than the
// capacity never become resident, eviction is strict LRU, and a hit keeps
// the size the entry was inserted with.
func (c *CacheSim) Access(i int32, size int) (miss bool) {
	if size <= 0 {
		size = 1
	}
	n := &c.nodes[i]
	if n.epoch == c.epoch {
		if c.tail != i {
			c.unlink(i)
			c.pushMRU(i)
		}
		return false
	}
	if size > c.capBytes {
		return true // never resident
	}
	for c.used+size > c.capBytes && c.head >= 0 {
		victim := c.head
		c.unlink(victim)
		c.nodes[victim].epoch = 0
		c.used -= int(c.nodes[victim].size)
	}
	n.size = int32(size)
	n.epoch = c.epoch
	c.used += size
	c.pushMRU(i)
	return true
}

// icache is the interpreter-facing view: a CacheSim keyed by function name,
// assigning dense indices on first touch.
type icache struct {
	sim CacheSim
	ids map[string]int32
}

func newICache(capacity int) *icache {
	return &icache{
		sim: CacheSim{capBytes: capacity, epoch: 1, head: -1, tail: -1},
		ids: make(map[string]int32),
	}
}

// access records execution entering the named function and reports whether
// it missed. Functions larger than the capacity always miss.
func (c *icache) access(name string, size int) (miss bool) {
	id, ok := c.ids[name]
	if !ok {
		id = int32(len(c.ids))
		c.ids[name] = id
		c.sim.Grow(int(id) + 1)
	}
	return c.sim.Access(id, size)
}
