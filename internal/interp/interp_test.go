package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"optinline/internal/ir"
)

const progSrc = `
global @acc

func @square(%x) {
entry:
  %r = mul %x, %x
  ret %r
}

func @addsq(%a, %b) {
entry:
  %x = call @square(%a) !site 1
  %y = call @square(%b) !site 2
  %s = add %x, %y
  ret %s
}

export func @main(%n) {
entry:
  %zero = const 0
  br head(%zero, %zero)
head(%i, %sum):
  %c = lt %i, %n
  condbr %c, body, exit
body:
  %v = call @addsq(%i, %sum) !site 3
  storeg @acc, %v
  output %v
  %one = const 1
  %ni = add %i, %one
  %g = loadg @acc
  br head(%ni, %g)
exit:
  ret %sum
}
`

func parseProg(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.Parse("prog", progSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

// reference computes what @main(n) should produce.
func reference(n int64) (ret int64, outputs []int64) {
	var acc, sum int64
	for i := int64(0); i < n; i++ {
		v := i*i + sum*sum
		acc = v
		outputs = append(outputs, v)
		sum = acc
	}
	return sum, outputs
}

func TestRunMatchesReference(t *testing.T) {
	m := parseProg(t)
	for n := int64(0); n < 6; n++ {
		res, err := Run(m, "main", []int64{n}, Options{CollectOutput: true})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantRet, wantOut := reference(n)
		if res.Ret != wantRet {
			t.Errorf("n=%d: ret=%d want %d", n, res.Ret, wantRet)
		}
		if len(res.Output) != len(wantOut) {
			t.Fatalf("n=%d: %d outputs, want %d", n, len(res.Output), len(wantOut))
		}
		for i := range wantOut {
			if res.Output[i] != wantOut[i] {
				t.Errorf("n=%d out[%d]=%d want %d", n, i, res.Output[i], wantOut[i])
			}
		}
	}
}

func TestOutputHashDiscriminates(t *testing.T) {
	m := parseProg(t)
	r2, _ := Run(m, "main", []int64{2}, Options{})
	r3, _ := Run(m, "main", []int64{3}, Options{})
	if r2.OutputHash == r3.OutputHash {
		t.Fatal("distinct outputs hash equal")
	}
	if r2.OutputLen != 2 || r3.OutputLen != 3 {
		t.Fatalf("output lengths %d %d", r2.OutputLen, r3.OutputLen)
	}
}

func TestFuelExhaustion(t *testing.T) {
	src := `
export func @spin(%n) {
entry:
  br loop
loop:
  br loop
}
`
	m := ir.MustParse("spin", src)
	_, err := Run(m, "spin", []int64{0}, Options{Fuel: 1000})
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("want ErrFuel, got %v", err)
	}
}

func TestTotalArithmetic(t *testing.T) {
	cases := []struct {
		op      ir.BinOp
		a, b, w int64
	}{
		{ir.Div, 7, 0, 0},
		{ir.Mod, 7, 0, 0},
		{ir.Div, 7, 2, 3},
		{ir.Mod, 7, 2, 1},
		{ir.Shl, 1, 64, 1},  // shift masked to 0
		{ir.Shl, 1, 65, 2},  // masked to 1
		{ir.Shr, -8, 1, -4}, // arithmetic shift
		{ir.Eq, 3, 3, 1},
		{ir.Ge, 2, 3, 0},
	}
	for _, c := range cases {
		if got := evalBin(c.op, c.a, c.b); got != c.w {
			t.Errorf("%v(%d,%d)=%d want %d", c.op, c.a, c.b, got, c.w)
		}
	}
}

func TestExternalCallDeterministic(t *testing.T) {
	src := `
export func @f(%x) {
entry:
  %r = call @undefined_external(%x)
  ret %r
}
`
	m := ir.MustParse("ext", src)
	a, err := Run(m, "f", []int64{42}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(m, "f", []int64{42}, Options{})
	c, _ := Run(m, "f", []int64{43}, Options{})
	if a.Ret != b.Ret {
		t.Fatal("external call not deterministic")
	}
	if a.Ret == c.Ret {
		t.Fatal("external call ignores arguments")
	}
}

func TestRunErrors(t *testing.T) {
	m := parseProg(t)
	if _, err := Run(m, "nosuch", nil, Options{}); err == nil {
		t.Fatal("expected error for missing entry")
	}
	if _, err := Run(m, "main", []int64{1, 2}, Options{}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestCycleAccounting(t *testing.T) {
	m := parseProg(t)
	r1, _ := Run(m, "main", []int64{1}, Options{})
	r4, _ := Run(m, "main", []int64{4}, Options{})
	if r4.Cycles <= r1.Cycles || r4.Steps <= r1.Steps {
		t.Fatalf("cycles/steps not monotone: %+v vs %+v", r1, r4)
	}
	if r4.DynCalls != 1+3*4 {
		t.Fatalf("dyn calls = %d, want 13", r4.DynCalls)
	}
}

func TestICacheModel(t *testing.T) {
	m := parseProg(t)
	sizes := map[string]int{"main": 100, "addsq": 60, "square": 40}
	sizeOf := func(n string) int { return sizes[n] }
	hot, err := Run(m, "main", []int64{8}, Options{SizeOf: sizeOf, CacheBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(m, "main", []int64{8}, Options{SizeOf: sizeOf, CacheBytes: 120})
	if err != nil {
		t.Fatal(err)
	}
	if hot.CacheMiss >= cold.CacheMiss {
		t.Fatalf("bigger cache should miss less: hot=%d cold=%d", hot.CacheMiss, cold.CacheMiss)
	}
	if cold.Cycles <= hot.Cycles {
		t.Fatalf("misses should cost cycles: hot=%d cold=%d", hot.Cycles, cold.Cycles)
	}
	// Behaviour must be identical regardless of the cache model.
	plain, _ := Run(m, "main", []int64{8}, Options{})
	if plain.Observable() != hot.Observable() || plain.Observable() != cold.Observable() {
		t.Fatal("cache model changed observable behaviour")
	}
}

func TestICacheLRUEviction(t *testing.T) {
	c := newICache(100)
	if !c.access("a", 60) {
		t.Fatal("first access should miss")
	}
	if c.access("a", 60) {
		t.Fatal("second access should hit")
	}
	c.access("b", 50) // evicts a
	if !c.access("a", 60) {
		t.Fatal("a should have been evicted")
	}
	if !c.access("huge", 1000) {
		t.Fatal("oversized function always misses")
	}
	if c.access("b", 50) && c.access("b", 50) {
		t.Fatal("b unexpectedly evicted twice")
	}
}

// Property: block-argument binding is simultaneous — a swap loop must swap.
func TestSimultaneousBlockArgs(t *testing.T) {
	src := `
export func @swap2(%a, %b) {
entry:
  %zero = const 0
  br head(%a, %b, %zero)
head(%x, %y, %i):
  %two = const 2
  %c = lt %i, %two
  condbr %c, body, exit
body:
  %one = const 1
  %ni = add %i, %one
  br head(%y, %x, %ni)
exit:
  %sixteen = const 65536
  %hi = mul %x, %sixteen
  %r = add %hi, %y
  ret %r
}
`
	m := ir.MustParse("swap", src)
	f := func(a, b int16) bool {
		res, err := Run(m, "swap2", []int64{int64(a), int64(b)}, Options{})
		if err != nil {
			return false
		}
		// Two swaps restore the original order.
		want := int64(a)*65536 + int64(b)
		return res.Ret == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
