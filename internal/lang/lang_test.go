package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"optinline/internal/interp"
)

const fib = `
// Recursive Fibonacci plus an iterative checker.
export func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}

export func fib_iter(n) {
  var a = 0;
  var b = 1;
  for (var i = 0; i < n; i = i + 1) {
    var t = a + b;
    a = b;
    b = t;
  }
  return a;
}
`

func run(t *testing.T, src, entry string, args ...int64) int64 {
	t.Helper()
	m, err := Compile("test.minc", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(m, entry, args, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.Ret
}

func TestFib(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34}
	for n, w := range want {
		if got := run(t, fib, "fib", int64(n)); got != w {
			t.Errorf("fib(%d)=%d want %d", n, got, w)
		}
		if got := run(t, fib, "fib_iter", int64(n)); got != w {
			t.Errorf("fib_iter(%d)=%d want %d", n, got, w)
		}
	}
}

func TestFibAgreesProperty(t *testing.T) {
	m := MustCompile("fib.minc", fib)
	f := func(n uint8) bool {
		k := int64(n % 20)
		a, err1 := interp.Run(m, "fib", []int64{k}, interp.Options{})
		b, err2 := interp.Run(m, "fib_iter", []int64{k}, interp.Options{})
		return err1 == nil && err2 == nil && a.Ret == b.Ret
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOperatorsAndPrecedence(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 - 3 - 2", 5},
		{"7 / 2", 3},
		{"7 % 3", 1},
		{"1 << 4", 16},
		{"-16 >> 2", -4},
		{"5 & 3", 1},
		{"5 | 2", 7},
		{"5 ^ 1", 4},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 > 6", 0},
		{"5 >= 6", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"-3", -3},
		{"!0", 1},
		{"!7", 0},
		{"1 + 2 == 3", 1},
		{"1 < 2 && 3 < 4", 1},
		{"1 > 2 || 3 < 4", 1},
		{"0 && 1", 0},
		{"2 && 3", 1},
		{"0 || 0", 0},
	}
	for _, c := range cases {
		src := "export func main() { return " + c.expr + "; }"
		if got := run(t, src, "main"); got != c.want {
			t.Errorf("%s = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	src := `
global hits;
func bump(x) {
  hits = hits + 1;
  return x;
}
export func main(sel) {
  var r = 0;
  if (sel == 0) { r = 0 && bump(1); }
  if (sel == 1) { r = 1 && bump(1); }
  if (sel == 2) { r = 1 || bump(1); }
  if (sel == 3) { r = 0 || bump(1); }
  return hits * 10 + r;
}
`
	cases := map[int64]int64{
		0: 0,  // rhs skipped, r=0
		1: 11, // rhs evaluated, r=1
		2: 1,  // rhs skipped, r=1
		3: 11, // rhs evaluated, r=1
	}
	for sel, want := range cases {
		if got := run(t, src, "main", sel); got != want {
			t.Errorf("sel=%d got %d want %d", sel, got, want)
		}
	}
}

func TestGlobalsAndOutput(t *testing.T) {
	src := `
global total;
export func accumulate(n) {
  for (var i = 1; i <= n; i = i + 1) {
    total = total + i;
    output total;
  }
  return total;
}
`
	m := MustCompile("glob.minc", src)
	res, err := interp.Run(m, "accumulate", []int64{4}, interp.Options{CollectOutput: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 10 {
		t.Fatalf("ret=%d", res.Ret)
	}
	want := []int64{1, 3, 6, 10}
	for i, w := range want {
		if res.Output[i] != w {
			t.Fatalf("output=%v want %v", res.Output, want)
		}
	}
}

func TestWhileBreakContinue(t *testing.T) {
	src := `
export func main(n) {
  var sum = 0;
  var i = 0;
  while (1) {
    i = i + 1;
    if (i > n) { break; }
    if (i % 2 == 0) { continue; }
    sum = sum + i;
  }
  return sum;
}
`
	// Sum of odd numbers 1..9 = 25.
	if got := run(t, src, "main", 9); got != 25 {
		t.Fatalf("got %d", got)
	}
}

func TestForContinueRunsPost(t *testing.T) {
	src := `
export func main(n) {
  var sum = 0;
  for (var i = 0; i < n; i = i + 1) {
    if (i == 2) { continue; }
    sum = sum + i;
  }
  return sum;
}
`
	// 0+1+3+4 = 8 (2 skipped, loop still terminates).
	if got := run(t, src, "main", 5); got != 8 {
		t.Fatalf("got %d", got)
	}
}

func TestNestedLoopsAndIfElse(t *testing.T) {
	src := `
export func classify(x) {
  if (x < 0) { return -1; }
  else if (x == 0) { return 0; }
  else { return 1; }
}
export func grid(n) {
  var count = 0;
  for (var i = 0; i < n; i = i + 1) {
    for (var j = 0; j < n; j = j + 1) {
      if (classify(i - j) == 1) { count = count + 1; }
    }
  }
  return count;
}
`
	// Pairs with i > j in a 4x4 grid: 6.
	if got := run(t, src, "grid", 4); got != 6 {
		t.Fatalf("got %d", got)
	}
	if got := run(t, src, "classify", -5); got != -1 {
		t.Fatalf("classify(-5)=%d", got)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	src := `export func main(n) { output n; }`
	if got := run(t, src, "main", 3); got != 0 {
		t.Fatalf("got %d", got)
	}
}

func TestBothArmsReturn(t *testing.T) {
	src := `
export func main(x) {
  if (x > 0) { return 1; } else { return 2; }
}
`
	if got := run(t, src, "main", 5); got != 1 {
		t.Fatal("then arm")
	}
	if got := run(t, src, "main", -5); got != 2 {
		t.Fatal("else arm")
	}
}

func TestExternalCallsAllowed(t *testing.T) {
	src := `export func main(x) { return external_fn(x, 2); }`
	m := MustCompile("ext.minc", src)
	if _, err := interp.Run(m, "main", []int64{1}, interp.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"export func main() { return x; }", "undefined variable"},
		{"export func main() { x = 1; return 0; }", "undeclared variable"},
		{"export func main() { var a = 1; var a = 2; return a; }", "duplicate variable"},
		{"func f(a, a) { return a; }", "duplicate parameter"},
		{"func f() { return 0; } func f() { return 1; }", "duplicate function"},
		{"global g; global g;", "duplicate global"},
		{"func f(a) { return a; } export func main() { return f(1, 2); }", "want 1"},
		{"export func main() { break; }", "break outside loop"},
		{"export func main() { continue; }", "continue outside loop"},
		{"global g; export func main() { var g = 1; return g; }", "shadows a global"},
		{"export func main() { return 1 + ; }", "expected expression"},
		{"export func main() { return 99999999999999999999; }", "out of range"},
		{"export func main( { return 0; }", "expected identifier"},
		{"export func main() { return 0 }", "expected"},
		{"export fnc main() { return 0; }", "expected"},
		{"export func main() { return $; }", "unexpected character"},
	}
	for _, c := range cases {
		_, err := Compile("err.minc", c.src)
		if err == nil {
			t.Errorf("no error for %q", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestLoweredModulesVerify(t *testing.T) {
	// Already checked inside Lower, but exercise a structurally rich one.
	src := `
global g;
func helper(a, b) {
  var m = a;
  if (b > m) { m = b; }
  return m;
}
export func main(n) {
  var best = 0 - 1000;
  for (var i = 0; i < n; i = i + 1) {
    var v = helper(i * 3 % 7, i);
    if (v > best && v % 2 == 0) { best = v; }
    g = g + v;
  }
  while (best > 10) { best = best - g % 3 - 1; }
  return best;
}
`
	m := MustCompile("rich.minc", src)
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	res, err := interp.Run(m, "main", []int64{6}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestCallSitesAssigned(t *testing.T) {
	src := `
func a(x) { return x; }
export func main(x) { return a(x) + a(x + 1); }
`
	m := MustCompile("sites.minc", src)
	calls := m.Func("main").Calls()
	if len(calls) != 2 || calls[0].Site == 0 || calls[0].Site == calls[1].Site {
		t.Fatalf("sites not assigned: %v %v", calls[0].Site, calls[1].Site)
	}
}
