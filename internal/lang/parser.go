package lang

import (
	"fmt"
	"strconv"
)

// Parse parses a MinC source file into an AST. name is used in error
// messages only.
func Parse(name, src string) (*Program, error) {
	p := &parser{lx: newLexer(src), name: name}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		switch {
		case p.isKeyword("global"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, id)
		case p.isKeyword("export") || p.isKeyword("func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
		default:
			return nil, p.errf("expected declaration, found %s", p.tok)
		}
	}
	return prog, nil
}

type parser struct {
	lx   *lexer
	name string
	tok  token
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d:%d: %s", p.name, p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return fmt.Errorf("%s:%w", p.name, err)
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) acceptPunct(s string) (bool, error) {
	if !p.isPunct(s) {
		return false, nil
	}
	return true, p.advance()
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	id := p.tok.text
	return id, p.advance()
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	fn := &FuncDecl{Line: p.tok.line}
	if p.isKeyword("export") {
		fn.Exported = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("func"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn.Name = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for !p.isPunct(")") {
		if len(fn.Params) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		prm, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, prm)
	}
	if err := p.advance(); err != nil { // consume ")"
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.isPunct("}") {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.advance()
}

func (p *parser) stmt() (Stmt, error) {
	switch {
	case p.isKeyword("var"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		init, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &VarStmt{Name: name, Init: init, Line: line}, p.expectPunct(";")
	case p.isKeyword("if"):
		return p.ifStmt()
	case p.isKeyword("while"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil
	case p.isKeyword("for"):
		return p.forStmt()
	case p.isKeyword("return"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Expr: e, Line: line}, p.expectPunct(";")
	case p.isKeyword("output"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &OutputStmt{Expr: e, Line: line}, p.expectPunct(";")
	case p.isKeyword("break"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, p.expectPunct(";")
	case p.isKeyword("continue"):
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, p.expectPunct(";")
	default:
		return p.simpleStmt(true)
	}
}

// simpleStmt parses `x = expr` or a bare expression; when wantSemi is set a
// trailing ';' is required (for-loop clauses pass false).
func (p *parser) simpleStmt(wantSemi bool) (Stmt, error) {
	line := p.tok.line
	if p.tok.kind == tokIdent {
		// Lookahead for assignment: ident '=' (but not '==').
		name := p.tok.text
		save := *p.lx
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isPunct("=") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			st := &AssignStmt{Name: name, Expr: e, Line: line}
			if wantSemi {
				return st, p.expectPunct(";")
			}
			return st, nil
		}
		*p.lx = save
		p.tok = saveTok
	}
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	st := &ExprStmt{Expr: e, Line: line}
	if wantSemi {
		return st, p.expectPunct(";")
	}
	return st, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then, Line: line}
	if p.isKeyword("else") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isKeyword("if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			st.Else = []Stmt{nested}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	line := p.tok.line
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &ForStmt{Line: line}
	if !p.isPunct(";") {
		var err error
		if p.isKeyword("var") {
			st.Init, err = p.stmt() // consumes the ';'
			if err != nil {
				return nil, err
			}
		} else {
			st.Init, err = p.simpleStmt(false)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		}
	} else if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.isPunct(";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	if !p.isPunct(")") {
		post, err := p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
		st.Post = post
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

// Operator precedence, lowest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) expression() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPunct {
		prec, ok := precedence[p.tok.text]
		if !ok || prec < minPrec {
			break
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: op, L: lhs, R: rhs}
	}
	return lhs, nil
}

func (p *parser) unary() (Expr, error) {
	if p.isPunct("-") || p.isPunct("!") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: op, E: e}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("number out of range")
		}
		return &NumExpr{Value: v}, p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok.text
		line := p.tok.line
		if err := p.advance(); err != nil {
			return nil, err
		}
		if ok, err := p.acceptPunct("("); err != nil {
			return nil, err
		} else if ok {
			call := &CallExpr{Name: name, Line: line}
			for !p.isPunct(")") {
				if len(call.Args) > 0 {
					if err := p.expectPunct(","); err != nil {
						return nil, err
					}
				}
				arg, err := p.expression()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			return call, p.advance()
		}
		return &VarExpr{Name: name, Line: line}, nil
	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, p.errf("expected expression, found %s", p.tok)
	}
}
