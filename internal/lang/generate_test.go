package lang

import (
	"math/rand"
	"testing"

	"optinline/internal/interp"
)

// TestGenerateRoundTrip: generated source must parse, re-render to the
// identical canonical text, lower to verified IR, and terminate under the
// interpreter — the contract the differential fuzz tests build on.
func TestGenerateRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		src := GenerateSource(seed, GenOptions{})
		prog, err := Parse("gen", src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, src)
		}
		if again := Render(prog); again != src {
			t.Fatalf("seed %d: render not canonical under reparse:\n--- first\n%s\n--- second\n%s", seed, src, again)
		}
		mod, err := Compile("gen", src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		if err := mod.Verify(); err != nil {
			t.Fatalf("seed %d: lowered module fails verify: %v", seed, err)
		}
		if _, err := interp.Run(mod, "entry", []int64{4}, interp.Options{Fuel: 20_000_000}); err != nil {
			t.Fatalf("seed %d: generated program does not terminate in bounds: %v\n%s", seed, err, src)
		}
	}
}

// TestGenerateDeterministic: the same seed must always yield the same text
// (the fuzz corpus is reproducible from seeds alone).
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := GenerateSource(seed, GenOptions{})
		b := GenerateSource(seed, GenOptions{})
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

// TestGenerateVariety: distinct seeds should explore distinct programs, and
// the corpus as a whole must exercise calls (the whole point: inlinable
// call sites for the search to chew on).
func TestGenerateVariety(t *testing.T) {
	seen := map[string]bool{}
	withCalls := 0
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Generate(rng, GenOptions{})
		src := Render(p)
		if seen[src] {
			t.Fatalf("seed %d: duplicate program text", seed)
		}
		seen[src] = true
		if hasCall(p) {
			withCalls++
		}
	}
	if withCalls < 20 {
		t.Fatalf("only %d/25 generated programs contain calls", withCalls)
	}
}

func hasCall(p *Program) bool {
	found := false
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch ex := e.(type) {
		case *BinExpr:
			walkExpr(ex.L)
			walkExpr(ex.R)
		case *UnExpr:
			walkExpr(ex.E)
		case *CallExpr:
			found = true
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(list []Stmt) {
		for _, s := range list {
			switch st := s.(type) {
			case *VarStmt:
				walkExpr(st.Init)
			case *AssignStmt:
				walkExpr(st.Expr)
			case *IfStmt:
				walkExpr(st.Cond)
				walkStmts(st.Then)
				walkStmts(st.Else)
			case *WhileStmt:
				walkExpr(st.Cond)
				walkStmts(st.Body)
			case *ForStmt:
				if st.Init != nil {
					walkStmts([]Stmt{st.Init})
				}
				if st.Cond != nil {
					walkExpr(st.Cond)
				}
				if st.Post != nil {
					walkStmts([]Stmt{st.Post})
				}
				walkStmts(st.Body)
			case *ReturnStmt:
				walkExpr(st.Expr)
			case *OutputStmt:
				walkExpr(st.Expr)
			case *ExprStmt:
				walkExpr(st.Expr)
			}
		}
	}
	for _, fn := range p.Funcs {
		walkStmts(fn.Body)
	}
	return found
}
