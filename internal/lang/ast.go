package lang

// Program is a parsed MinC source file.
type Program struct {
	Globals []string
	Funcs   []*FuncDecl
}

// FuncDecl is a function declaration.
type FuncDecl struct {
	Name     string
	Params   []string
	Exported bool
	Body     []Stmt
	Line     int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// VarStmt declares (and initializes) a variable.
type VarStmt struct {
	Name string
	Init Expr
	Line int
}

// AssignStmt assigns to an existing variable or a global.
type AssignStmt struct {
	Name string
	Expr Expr
	Line int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body []Stmt
	Line int
}

// ReturnStmt returns a value.
type ReturnStmt struct {
	Expr Expr
	Line int
}

// OutputStmt emits a value to the observable output stream.
type OutputStmt struct {
	Expr Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Expr Expr
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*OutputStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct{ Value int64 }

// VarExpr references a variable or global.
type VarExpr struct {
	Name string
	Line int
}

// BinExpr is a binary operation; Op is the source operator text.
type BinExpr struct {
	Op   string
	L, R Expr
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Op string
	E  Expr
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) expr()  {}
func (*VarExpr) expr()  {}
func (*BinExpr) expr()  {}
func (*UnExpr) expr()   {}
func (*CallExpr) expr() {}
