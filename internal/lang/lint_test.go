package lang

import (
	"testing"

	"optinline/internal/diag"
)

func lintSrc(t *testing.T, src string) diag.List {
	t.Helper()
	ds, err := LintSource("t.minc", src)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestLintUnusedLocal(t *testing.T) {
	ds := lintSrc(t, `
func f(n) {
    var used = n;
    var dead = n * 2;
    dead = dead;
    return used;
}`).ByAnalyzer("unused-local")
	// `dead = dead` reads dead, so only a pure write-only local counts.
	if len(ds) != 0 {
		t.Errorf("self-assignment reads the local; got %v", ds)
	}
	ds = lintSrc(t, `
func f(n) {
    var dead = 0;
    dead = n;
    return n;
}`).ByAnalyzer("unused-local")
	if len(ds) != 1 || ds[0].Pos.Line != 3 {
		t.Errorf("write-only local: got %v, want one finding on line 3", ds)
	}
}

func TestLintUnreachableAfterElseIfChain(t *testing.T) {
	ds := lintSrc(t, `
func f(n) {
    if (n > 0) {
        return 1;
    } else if (n < 0) {
        return 2;
    } else {
        return 3;
    }
    output n;
}`).ByAnalyzer("unreachable-stmt")
	if len(ds) != 1 || ds[0].Pos.Line != 10 {
		t.Errorf("else-if chain where every arm returns: got %v, want one finding on line 10", ds)
	}
}

func TestLintUnreachableOnlyFirstPerList(t *testing.T) {
	ds := lintSrc(t, `
func f(n) {
    return n;
    output n;
    output n;
}`).ByAnalyzer("unreachable-stmt")
	if len(ds) != 1 {
		t.Errorf("want one finding per statement list, got %v", ds)
	}
}

func TestLintIfWithoutElseDoesNotTerminate(t *testing.T) {
	ds := lintSrc(t, `
func f(n) {
    if (n > 0) {
        return 1;
    }
    return 0;
}`).ByAnalyzer("unreachable-stmt")
	if len(ds) != 0 {
		t.Errorf("if without else must not terminate the list: %v", ds)
	}
}

func TestLintUseBeforeInitFlowSensitive(t *testing.T) {
	// Assignment initializes: no finding.
	ds := lintSrc(t, `
func f(n) {
    x = n;
    var x = 0;
    return x;
}`).ByAnalyzer("use-before-init")
	if len(ds) != 0 {
		t.Errorf("assignment before var initializes; got %v", ds)
	}
	// Initialized on only one branch: the read after the join is flagged.
	ds = lintSrc(t, `
func f(n) {
    if (n > 0) {
        x = n;
    }
    output x;
    var x = 1;
    return x;
}`).ByAnalyzer("use-before-init")
	if len(ds) != 1 || ds[0].Pos.Line != 6 {
		t.Errorf("one-armed init: got %v, want one finding on line 6", ds)
	}
	// Initialized on both branches: clean.
	ds = lintSrc(t, `
func f(n) {
    if (n > 0) {
        x = n;
    } else {
        x = 0 - n;
    }
    output x;
    var x = 1;
    return x;
}`).ByAnalyzer("use-before-init")
	if len(ds) != 0 {
		t.Errorf("both-armed init: got %v, want none", ds)
	}
	// A branch that returns does not constrain the join.
	ds = lintSrc(t, `
func f(n) {
    if (n > 0) {
        return 0;
    } else {
        x = n;
    }
    output x;
    var x = 1;
    return x;
}`).ByAnalyzer("use-before-init")
	if len(ds) != 0 {
		t.Errorf("terminated branch must not constrain the join: %v", ds)
	}
}

func TestLintUseBeforeInitForLoop(t *testing.T) {
	ds := lintSrc(t, `
func f(n) {
    for (var i = 0; i < n; i = i + 1) {
        output acc;
        var acc = i;
    }
    return 0;
}`).ByAnalyzer("use-before-init")
	if len(ds) != 1 || ds[0].Pos.Line != 4 {
		t.Errorf("read before var inside loop body: got %v, want one finding on line 4", ds)
	}
}

func TestLintShadow(t *testing.T) {
	ds := lintSrc(t, `
global g;
func f(g) {
    return g;
}`).ByAnalyzer("shadow")
	if len(ds) != 1 || ds[0].Severity != diag.Warning {
		t.Errorf("param shadowing global: got %v, want one warning", ds)
	}
	ds = lintSrc(t, `
func helper(n) { return n; }
func f(n) {
    var helper = n;
    return helper;
}`).ByAnalyzer("shadow")
	if len(ds) != 1 || ds[0].Severity != diag.Info {
		t.Errorf("local sharing function name: got %v, want one info", ds)
	}
}

func TestLintSortedAndPositioned(t *testing.T) {
	ds := lintSrc(t, `
func b(n) {
    var dead2 = n;
    return n;
}
func a(n) {
    var dead1 = n;
    return n;
}`)
	if len(ds) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(ds), ds)
	}
	if !(ds[0].Pos.Line < ds[1].Pos.Line) {
		t.Errorf("findings not sorted by position: %v", ds)
	}
	for _, d := range ds {
		if d.Pos.File != "t.minc" || d.Func == "" {
			t.Errorf("finding missing file/function context: %+v", d)
		}
	}
}
