// Package lang implements MinC, a small C-like language that fronts the IR.
// It exists so the toolchain is end-to-end real: examples and the mincc
// command compile actual source text through parsing, checking, lowering,
// inlining search/tuning, and code generation.
//
// The language: 64-bit integers only; functions (optionally `export`ed);
// module `global` variables; `var` declarations; assignment; `if`/`else`;
// `while`; `for`; `break`/`continue`; `return`; `output expr;` for
// observable output; the usual C expression operators.
package lang

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokPunct // single/multi-char operator or delimiter
	tokKeyword
)

var keywords = map[string]bool{
	"func": true, "export": true, "global": true, "var": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "output": true, "break": true, "continue": true,
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// punctuation, longest first so the scanner is greedy.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
	"(", ")", "{", "}", ",", ";",
}

func (lx *lexer) errf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance(1)
		case c == '\n':
			lx.pos++
			lx.line++
			lx.col = 1
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		default:
			return lx.scan()
		}
	}
	return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
}

func (lx *lexer) advance(n int) {
	lx.pos += n
	lx.col += n
}

func (lx *lexer) scan() (token, error) {
	line, col := lx.line, lx.col
	c := lx.src[lx.pos]
	switch {
	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.advance(1)
		}
		if lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			return token{}, lx.errf(line, col, "malformed number")
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentChar(lx.src[lx.pos]) {
			lx.advance(1)
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	default:
		for _, p := range puncts {
			if len(lx.src)-lx.pos >= len(p) && lx.src[lx.pos:lx.pos+len(p)] == p {
				lx.advance(len(p))
				return token{kind: tokPunct, text: p, line: line, col: col}, nil
			}
		}
		return token{}, lx.errf(line, col, "unexpected character %q", c)
	}
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) }
