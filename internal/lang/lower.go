package lang

import (
	"fmt"

	"optinline/internal/ir"
)

// Compile parses, checks, and lowers a MinC source file to an IR module
// with call-site IDs assigned.
func Compile(name, src string) (*ir.Module, error) {
	prog, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Lower(name, prog)
}

// MustCompile is Compile that panics on error; for fixed example sources.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// Lower checks the program and lowers it to IR. Semantics: all values are
// 64-bit integers; local variables are function-scoped and zero-initialized
// (a `var` both declares and assigns); globals start at zero; `&&`/`||`
// short-circuit; functions without a trailing return yield 0.
func Lower(name string, prog *Program) (*ir.Module, error) {
	ck := &checker{
		name:    name,
		globals: make(map[string]bool),
		arity:   make(map[string]int),
	}
	for _, g := range prog.Globals {
		if ck.globals[g] {
			return nil, fmt.Errorf("%s: duplicate global %q", name, g)
		}
		ck.globals[g] = true
	}
	for _, fn := range prog.Funcs {
		if _, dup := ck.arity[fn.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate function %q", name, fn.Name)
		}
		ck.arity[fn.Name] = len(fn.Params)
	}
	m := ir.NewModule(name)
	for _, g := range prog.Globals {
		m.AddGlobal(g)
	}
	for _, fn := range prog.Funcs {
		f, err := ck.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		m.AddFunc(f)
	}
	m.AssignSites()
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("%s: internal error: lowered module invalid: %w", name, err)
	}
	return m, nil
}

type checker struct {
	name    string
	globals map[string]bool
	arity   map[string]int
}

// loweringCtx carries per-function lowering state.
type loweringCtx struct {
	*checker
	fn    *FuncDecl
	b     *ir.Builder
	vars  []string // params then hoisted locals, in declaration order
	env   map[string]*ir.Value
	loops []loopCtx
}

type loopCtx struct {
	cont *ir.Block // target of continue (loop head or post block)
	exit *ir.Block // target of break
}

func (ck *checker) lowerFunc(fn *FuncDecl) (*ir.Function, error) {
	lc := &loweringCtx{
		checker: ck,
		fn:      fn,
		env:     make(map[string]*ir.Value),
	}
	seen := make(map[string]bool)
	for _, p := range fn.Params {
		if seen[p] {
			return nil, lc.errf(fn.Line, "duplicate parameter %q", p)
		}
		seen[p] = true
		lc.vars = append(lc.vars, p)
	}
	// Hoist local variables (C-like function scope).
	var hoist func(stmts []Stmt) error
	hoist = func(stmts []Stmt) error {
		for _, s := range stmts {
			switch st := s.(type) {
			case *VarStmt:
				if seen[st.Name] {
					return lc.errf(st.Line, "duplicate variable %q", st.Name)
				}
				if ck.globals[st.Name] {
					return lc.errf(st.Line, "variable %q shadows a global", st.Name)
				}
				seen[st.Name] = true
				lc.vars = append(lc.vars, st.Name)
			case *IfStmt:
				if err := hoist(st.Then); err != nil {
					return err
				}
				if err := hoist(st.Else); err != nil {
					return err
				}
			case *WhileStmt:
				if err := hoist(st.Body); err != nil {
					return err
				}
			case *ForStmt:
				if st.Init != nil {
					if err := hoist([]Stmt{st.Init}); err != nil {
						return err
					}
				}
				if err := hoist(st.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := hoist(fn.Body); err != nil {
		return nil, err
	}

	lc.b = ir.NewFunction(fn.Name, len(fn.Params), fn.Exported)
	for i, p := range fn.Params {
		lc.env[p] = lc.b.Param(i)
	}
	zero := lc.b.Const(0)
	for _, v := range lc.vars[len(fn.Params):] {
		lc.env[v] = zero
	}
	terminated, err := lc.stmts(fn.Body)
	if err != nil {
		return nil, err
	}
	if !terminated {
		lc.b.Ret(lc.b.Const(0))
	}
	return lc.b.Fn, nil
}

func (lc *loweringCtx) errf(line int, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: func %s: %s", lc.name, line, lc.fn.Name, fmt.Sprintf(format, args...))
}

// curVals snapshots the variable environment in lc.vars order.
func (lc *loweringCtx) curVals() []*ir.Value {
	vals := make([]*ir.Value, len(lc.vars))
	for i, v := range lc.vars {
		vals[i] = lc.env[v]
	}
	return vals
}

// bindParams points the environment at a join block's parameters.
func (lc *loweringCtx) bindParams(b *ir.Block) {
	for i, v := range lc.vars {
		lc.env[v] = b.Params[i]
	}
}

// joinBlock allocates a block carrying every variable as a parameter.
func (lc *loweringCtx) joinBlock(name string) *ir.Block {
	return lc.b.Block(name, len(lc.vars))
}

// stmts lowers a statement list; it reports whether control definitely
// leaves the list (return/break/continue), in which case trailing
// statements are unreachable and skipped.
func (lc *loweringCtx) stmts(list []Stmt) (terminated bool, err error) {
	for _, s := range list {
		t, err := lc.stmt(s)
		if err != nil {
			return false, err
		}
		if t {
			return true, nil
		}
	}
	return false, nil
}

func (lc *loweringCtx) stmt(s Stmt) (terminated bool, err error) {
	switch st := s.(type) {
	case *VarStmt:
		v, err := lc.expr(st.Init)
		if err != nil {
			return false, err
		}
		lc.env[st.Name] = v
		return false, nil
	case *AssignStmt:
		v, err := lc.expr(st.Expr)
		if err != nil {
			return false, err
		}
		if _, local := lc.env[st.Name]; local {
			lc.env[st.Name] = v
			return false, nil
		}
		if lc.globals[st.Name] {
			lc.b.StoreG(st.Name, v)
			return false, nil
		}
		return false, lc.errf(st.Line, "assignment to undeclared variable %q", st.Name)
	case *ReturnStmt:
		v, err := lc.expr(st.Expr)
		if err != nil {
			return false, err
		}
		lc.b.Ret(v)
		return true, nil
	case *OutputStmt:
		v, err := lc.expr(st.Expr)
		if err != nil {
			return false, err
		}
		lc.b.Output(v)
		return false, nil
	case *ExprStmt:
		_, err := lc.expr(st.Expr)
		return false, err
	case *BreakStmt:
		if len(lc.loops) == 0 {
			return false, lc.errf(st.Line, "break outside loop")
		}
		lp := lc.loops[len(lc.loops)-1]
		lc.b.Br(lp.exit, lc.curVals()...)
		return true, nil
	case *ContinueStmt:
		if len(lc.loops) == 0 {
			return false, lc.errf(st.Line, "continue outside loop")
		}
		lp := lc.loops[len(lc.loops)-1]
		lc.b.Br(lp.cont, lc.curVals()...)
		return true, nil
	case *IfStmt:
		return lc.ifStmt(st)
	case *WhileStmt:
		return lc.loop(nil, st.Cond, nil, st.Body)
	case *ForStmt:
		if st.Init != nil {
			if t, err := lc.stmt(st.Init); err != nil || t {
				return t, err
			}
		}
		return lc.loop(nil, st.Cond, st.Post, st.Body)
	}
	return false, fmt.Errorf("%s: func %s: unknown statement %T", lc.name, lc.fn.Name, s)
}

func (lc *loweringCtx) ifStmt(st *IfStmt) (bool, error) {
	cond, err := lc.expr(st.Cond)
	if err != nil {
		return false, err
	}
	thenB := lc.b.Block("then", 0)
	var elseB *ir.Block
	if len(st.Else) > 0 {
		elseB = lc.b.Block("else", 0)
	}
	merge := lc.joinBlock("endif")
	condVals := lc.curVals()
	if elseB != nil {
		lc.b.CondBr(cond, thenB, nil, elseB, nil)
	} else {
		lc.b.CondBr(cond, thenB, nil, merge, condVals)
	}
	entries := 0
	if elseB == nil {
		entries++ // the false edge above
	}

	condEnv := lc.snapshotEnv()
	lc.b.SetBlock(thenB)
	tTerm, err := lc.stmts(st.Then)
	if err != nil {
		return false, err
	}
	if !tTerm {
		lc.b.Br(merge, lc.curVals()...)
		entries++
	}
	if elseB != nil {
		lc.restoreEnv(condEnv)
		lc.b.SetBlock(elseB)
		eTerm, err := lc.stmts(st.Else)
		if err != nil {
			return false, err
		}
		if !eTerm {
			lc.b.Br(merge, lc.curVals()...)
			entries++
		}
	}
	if entries == 0 {
		// Both arms left the function/loop; the merge block is unreachable.
		// Give it a terminator so the function stays well-formed; the
		// optimizer removes it.
		lc.b.SetBlock(merge)
		lc.bindParams(merge)
		lc.b.Ret(lc.b.Const(0))
		return true, nil
	}
	lc.b.SetBlock(merge)
	lc.bindParams(merge)
	return false, nil
}

// loop lowers while/for loops. post may be nil; cond may be nil (infinite).
func (lc *loweringCtx) loop(_ Stmt, cond Expr, post Stmt, body []Stmt) (bool, error) {
	head := lc.joinBlock("head")
	exit := lc.joinBlock("endloop")
	lc.b.Br(head, lc.curVals()...)
	lc.b.SetBlock(head)
	lc.bindParams(head)
	headEnv := lc.snapshotEnv()

	bodyB := lc.b.Block("body", 0)
	if cond != nil {
		cv, err := lc.expr(cond)
		if err != nil {
			return false, err
		}
		lc.b.CondBr(cv, bodyB, nil, exit, lc.curVals())
	} else {
		lc.b.Br(bodyB)
	}

	// continue target: the head for while, a post block for for-loops.
	contB := head
	var postB *ir.Block
	if post != nil {
		postB = lc.joinBlock("post")
		contB = postB
	}
	lc.restoreEnv(headEnv)
	lc.b.SetBlock(bodyB)
	lc.loops = append(lc.loops, loopCtx{cont: contB, exit: exit})
	bTerm, err := lc.stmts(body)
	lc.loops = lc.loops[:len(lc.loops)-1]
	if err != nil {
		return false, err
	}
	if !bTerm {
		lc.b.Br(contB, lc.curVals()...)
	}
	if postB != nil {
		lc.b.SetBlock(postB)
		lc.bindParams(postB)
		if _, err := lc.stmt(post); err != nil {
			return false, err
		}
		lc.b.Br(head, lc.curVals()...)
	}
	lc.b.SetBlock(exit)
	lc.bindParams(exit)
	return false, nil
}

func (lc *loweringCtx) snapshotEnv() map[string]*ir.Value {
	s := make(map[string]*ir.Value, len(lc.env))
	for k, v := range lc.env {
		s[k] = v
	}
	return s
}

func (lc *loweringCtx) restoreEnv(s map[string]*ir.Value) {
	for k, v := range s {
		lc.env[k] = v
	}
}

var binOps = map[string]ir.BinOp{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
	"==": ir.Eq, "!=": ir.Ne, "<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge,
}

func (lc *loweringCtx) expr(e Expr) (*ir.Value, error) {
	switch ex := e.(type) {
	case *NumExpr:
		return lc.b.Const(ex.Value), nil
	case *VarExpr:
		if v, ok := lc.env[ex.Name]; ok {
			return v, nil
		}
		if lc.globals[ex.Name] {
			return lc.b.LoadG(ex.Name), nil
		}
		return nil, lc.errf(ex.Line, "undefined variable %q", ex.Name)
	case *UnExpr:
		v, err := lc.expr(ex.E)
		if err != nil {
			return nil, err
		}
		if ex.Op == "-" {
			return lc.b.Un(ir.Neg, v), nil
		}
		return lc.b.Un(ir.Not, v), nil
	case *CallExpr:
		if arity, internal := lc.arity[ex.Name]; internal && arity != len(ex.Args) {
			return nil, lc.errf(ex.Line, "call to %s with %d args, want %d", ex.Name, len(ex.Args), arity)
		}
		args := make([]*ir.Value, len(ex.Args))
		for i, a := range ex.Args {
			v, err := lc.expr(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return lc.b.Call(ex.Name, args...), nil
	case *BinExpr:
		if ex.Op == "&&" || ex.Op == "||" {
			return lc.shortCircuit(ex)
		}
		l, err := lc.expr(ex.L)
		if err != nil {
			return nil, err
		}
		r, err := lc.expr(ex.R)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[ex.Op]
		if !ok {
			return nil, fmt.Errorf("%s: func %s: unknown operator %q", lc.name, lc.fn.Name, ex.Op)
		}
		return lc.b.Bin(op, l, r), nil
	}
	return nil, fmt.Errorf("%s: func %s: unknown expression %T", lc.name, lc.fn.Name, e)
}

// shortCircuit lowers && and || with proper evaluation order: the right
// operand only evaluates when needed.
func (lc *loweringCtx) shortCircuit(ex *BinExpr) (*ir.Value, error) {
	l, err := lc.expr(ex.L)
	if err != nil {
		return nil, err
	}
	zero := lc.b.Const(0)
	lBool := lc.b.Bin(ir.Ne, l, zero)
	rhsB := lc.b.Block("sc_rhs", 0)
	merge := lc.b.Block("sc_end", 1)
	if ex.Op == "&&" {
		// false -> 0 without evaluating rhs
		lc.b.CondBr(lBool, rhsB, nil, merge, []*ir.Value{zero})
	} else {
		// true -> 1 without evaluating rhs
		one := lc.b.Const(1)
		lc.b.CondBr(lBool, merge, []*ir.Value{one}, rhsB, nil)
	}
	lc.b.SetBlock(rhsB)
	r, err := lc.expr(ex.R)
	if err != nil {
		return nil, err
	}
	zero2 := lc.b.Const(0)
	rBool := lc.b.Bin(ir.Ne, r, zero2)
	lc.b.Br(merge, rBool)
	lc.b.SetBlock(merge)
	return merge.Params[0], nil
}
