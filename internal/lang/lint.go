package lang

import (
	"fmt"
	"sort"

	"optinline/internal/diag"
)

// Lint runs the MinC source-level lints over a parsed program and returns
// the findings sorted for stable output. The lints target the sharp edges
// of the language's deliberately forgiving semantics (Lower accepts all of
// these and compiles them to something well-defined but surprising):
//
//   - unused-local: a `var` that is never read; it exists only to be
//     assigned, and the optimizer will delete every trace of it.
//   - unreachable-stmt: statements after a return/break/continue (or an
//     if/else whose both arms leave), which Lower silently skips.
//   - use-before-init: a local read on some path before its `var` executes;
//     locals are hoisted and zero-initialized, so the read yields 0.
//   - shadow: a parameter that shadows a module global (the global becomes
//     inaccessible in the function), or a variable sharing a declared
//     function's name (legal — separate namespaces — but confusing).
func Lint(name string, prog *Program) diag.List {
	globals := make(map[string]bool, len(prog.Globals))
	for _, g := range prog.Globals {
		globals[g] = true
	}
	funcs := make(map[string]bool, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		funcs[fn.Name] = true
	}
	var out diag.List
	for _, fn := range prog.Funcs {
		lintFunc(&out, name, globals, funcs, fn)
	}
	out.Sort()
	return out
}

// LintSource parses and lints a MinC source file.
func LintSource(name, src string) (diag.List, error) {
	prog, err := Parse(name, src)
	if err != nil {
		return nil, err
	}
	return Lint(name, prog), nil
}

func lintFunc(out *diag.List, file string, globals, funcs map[string]bool, fn *FuncDecl) {
	report := func(analyzer string, sev diag.Severity, line int, format string, args ...interface{}) {
		*out = append(*out, diag.Diagnostic{
			Analyzer: analyzer,
			Severity: sev,
			Pos:      diag.Pos{File: file, Line: line},
			Func:     fn.Name,
			Message:  fmt.Sprintf(format, args...),
		})
	}

	params := make(map[string]bool, len(fn.Params))
	for _, p := range fn.Params {
		params[p] = true
		if globals[p] {
			report("shadow", diag.Warning, fn.Line,
				"parameter %q shadows global %q, which becomes inaccessible here", p, p)
		}
		if funcs[p] {
			report("shadow", diag.Info, fn.Line,
				"parameter %q shares the name of a function", p)
		}
	}

	// Hoist local declarations, mirroring Lower's function scoping.
	locals := make(map[string]int) // name -> declaration line
	var hoist func([]Stmt)
	hoist = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *VarStmt:
				if _, dup := locals[st.Name]; !dup && !params[st.Name] {
					locals[st.Name] = st.Line
				}
				if funcs[st.Name] {
					report("shadow", diag.Info, st.Line,
						"local %q shares the name of a function", st.Name)
				}
			case *IfStmt:
				hoist(st.Then)
				hoist(st.Else)
			case *WhileStmt:
				hoist(st.Body)
			case *ForStmt:
				if st.Init != nil {
					hoist([]Stmt{st.Init})
				}
				hoist(st.Body)
			}
		}
	}
	hoist(fn.Body)

	// unused-local: count reads of each local anywhere in the function.
	reads := make(map[string]int)
	var readExpr func(Expr)
	readExpr = func(e Expr) {
		switch ex := e.(type) {
		case *VarExpr:
			reads[ex.Name]++
		case *BinExpr:
			readExpr(ex.L)
			readExpr(ex.R)
		case *UnExpr:
			readExpr(ex.E)
		case *CallExpr:
			for _, a := range ex.Args {
				readExpr(a)
			}
		}
	}
	var readStmts func([]Stmt)
	readStmts = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *VarStmt:
				readExpr(st.Init)
			case *AssignStmt:
				readExpr(st.Expr)
			case *ReturnStmt:
				readExpr(st.Expr)
			case *OutputStmt:
				readExpr(st.Expr)
			case *ExprStmt:
				readExpr(st.Expr)
			case *IfStmt:
				readExpr(st.Cond)
				readStmts(st.Then)
				readStmts(st.Else)
			case *WhileStmt:
				readExpr(st.Cond)
				readStmts(st.Body)
			case *ForStmt:
				if st.Init != nil {
					readStmts([]Stmt{st.Init})
				}
				if st.Cond != nil {
					readExpr(st.Cond)
				}
				if st.Post != nil {
					readStmts([]Stmt{st.Post})
				}
				readStmts(st.Body)
			}
		}
	}
	readStmts(fn.Body)
	names := make([]string, 0, len(locals))
	for n := range locals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if reads[n] == 0 {
			report("unused-local", diag.Warning, locals[n],
				"local %q is assigned but never read", n)
		}
	}

	lintUnreachable(report, fn.Body)
	lintUseBeforeInit(report, locals, fn.Body)
}

// stmtLine returns the source line of a statement.
func stmtLine(s Stmt) int {
	switch st := s.(type) {
	case *VarStmt:
		return st.Line
	case *AssignStmt:
		return st.Line
	case *IfStmt:
		return st.Line
	case *WhileStmt:
		return st.Line
	case *ForStmt:
		return st.Line
	case *ReturnStmt:
		return st.Line
	case *OutputStmt:
		return st.Line
	case *ExprStmt:
		return st.Line
	case *BreakStmt:
		return st.Line
	case *ContinueStmt:
		return st.Line
	}
	return 0
}

type reportFunc func(analyzer string, sev diag.Severity, line int, format string, args ...interface{})

// lintUnreachable flags the first statement in each list that can never
// execute, using the same termination rule Lower's stmts applies when it
// silently drops trailing statements.
func lintUnreachable(report reportFunc, body []Stmt) {
	var listTerminates func([]Stmt) bool
	var terminates func(Stmt) bool
	terminates = func(s Stmt) bool {
		switch st := s.(type) {
		case *ReturnStmt, *BreakStmt, *ContinueStmt:
			return true
		case *IfStmt:
			return len(st.Else) > 0 && listTerminates(st.Then) && listTerminates(st.Else)
		}
		return false
	}
	listTerminates = func(list []Stmt) bool {
		for _, s := range list {
			if terminates(s) {
				return true
			}
		}
		return false
	}
	var check func([]Stmt)
	check = func(list []Stmt) {
		done := false
		for _, s := range list {
			if done {
				report("unreachable-stmt", diag.Warning, stmtLine(s),
					"unreachable statement (control already left this block)")
				break // everything after is also unreachable; one report per list
			}
			switch st := s.(type) {
			case *IfStmt:
				check(st.Then)
				check(st.Else)
			case *WhileStmt:
				check(st.Body)
			case *ForStmt:
				check(st.Body)
			}
			if terminates(s) {
				done = true
			}
		}
	}
	check(body)
}

// lintUseBeforeInit runs a definite-initialization analysis: locals are
// hoisted and zero-initialized, so a read on a path that has not yet
// executed the local's `var` (or an assignment to it) yields 0 — legal, but
// almost always a declaration-ordering bug.
func lintUseBeforeInit(report reportFunc, locals map[string]int, body []Stmt) {
	clone := func(s map[string]bool) map[string]bool {
		c := make(map[string]bool, len(s))
		for k := range s {
			c[k] = true
		}
		return c
	}
	intersect := func(a, b map[string]bool) map[string]bool {
		c := make(map[string]bool)
		for k := range a {
			if b[k] {
				c[k] = true
			}
		}
		return c
	}
	flagged := make(map[string]bool) // one report per local keeps cascades down
	var checkExpr func(Expr, map[string]bool)
	checkExpr = func(e Expr, in map[string]bool) {
		switch ex := e.(type) {
		case *VarExpr:
			if declLine, isLocal := locals[ex.Name]; isLocal && !in[ex.Name] && !flagged[ex.Name] {
				flagged[ex.Name] = true
				report("use-before-init", diag.Warning, ex.Line,
					"local %q is read before it is initialized (declared on line %d; reads as 0 here)",
					ex.Name, declLine)
			}
		case *BinExpr:
			checkExpr(ex.L, in)
			checkExpr(ex.R, in)
		case *UnExpr:
			checkExpr(ex.E, in)
		case *CallExpr:
			for _, a := range ex.Args {
				checkExpr(a, in)
			}
		}
	}
	var checkStmts func([]Stmt, map[string]bool) (map[string]bool, bool)
	var checkStmt func(Stmt, map[string]bool) (map[string]bool, bool)
	checkStmt = func(s Stmt, in map[string]bool) (map[string]bool, bool) {
		switch st := s.(type) {
		case *VarStmt:
			checkExpr(st.Init, in)
			in[st.Name] = true
		case *AssignStmt:
			checkExpr(st.Expr, in)
			if _, isLocal := locals[st.Name]; isLocal {
				in[st.Name] = true
			}
		case *ReturnStmt:
			checkExpr(st.Expr, in)
			return in, true
		case *BreakStmt, *ContinueStmt:
			return in, true
		case *OutputStmt:
			checkExpr(st.Expr, in)
		case *ExprStmt:
			checkExpr(st.Expr, in)
		case *IfStmt:
			checkExpr(st.Cond, in)
			tOut, tTerm := checkStmts(st.Then, clone(in))
			eOut, eTerm := checkStmts(st.Else, clone(in))
			switch {
			case tTerm && eTerm:
				return in, true
			case tTerm:
				return eOut, false
			case eTerm:
				return tOut, false
			default:
				return intersect(tOut, eOut), false
			}
		case *WhileStmt:
			checkExpr(st.Cond, in)
			checkStmts(st.Body, clone(in)) // body may never run
		case *ForStmt:
			if st.Init != nil {
				in, _ = checkStmt(st.Init, in)
			}
			if st.Cond != nil {
				checkExpr(st.Cond, in)
			}
			bodyOut, bTerm := checkStmts(st.Body, clone(in))
			if st.Post != nil && !bTerm {
				checkStmt(st.Post, bodyOut)
			}
		}
		return in, false
	}
	checkStmts = func(list []Stmt, in map[string]bool) (map[string]bool, bool) {
		for _, s := range list {
			var term bool
			in, term = checkStmt(s, in)
			if term {
				return in, true // trailing statements are unreachable
			}
		}
		return in, false
	}
	checkStmts(body, make(map[string]bool))
}
