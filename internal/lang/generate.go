package lang

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions bounds the shape of a generated program. The zero value asks
// for sensible defaults.
type GenOptions struct {
	Funcs    int // internal functions besides entry (default 6)
	Globals  int // global variables (default 3)
	MaxStmts int // statements per function body, before the final return (default 5)
	MaxDepth int // expression nesting depth (default 3)
}

func (o GenOptions) normalized() GenOptions {
	if o.Funcs <= 0 {
		o.Funcs = 6
	}
	if o.Globals <= 0 {
		o.Globals = 3
	}
	if o.MaxStmts <= 0 {
		o.MaxStmts = 5
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	return o
}

// Generate produces a random, deterministic-for-a-seed MinC program that is
// guaranteed to terminate: every loop runs a bounded constant trip count and
// the call structure is acyclic except for an optional self-recursive
// function whose depth is clamped by its guard. Every arithmetic operator —
// including / and % by a possibly-zero divisor — is fair game because the
// language's semantics are total.
//
// The generator exists for differential fuzzing: render the program with
// Render, compile it, and compare observable behaviour across inlining
// configurations.
func Generate(rng *rand.Rand, opts GenOptions) *Program {
	opts = opts.normalized()
	g := &generator{rng: rng, opts: opts}
	return g.program()
}

// GenerateSource is Generate followed by Render, seeded for convenience.
func GenerateSource(seed int64, opts GenOptions) string {
	return Render(Generate(rand.New(rand.NewSource(seed)), opts))
}

type generator struct {
	rng  *rand.Rand
	opts GenOptions

	globals []string
	funcs   []*genFunc // index i may call index j only when j > i
	cur     int        // function being generated
	scope   []string   // visible params + locals of the current function
	nextVar int
	nextCtr int

	// Dynamic-call budget: each function may make at most callBudget calls
	// per invocation, where a call site inside loops costs the product of
	// the enclosing trip counts (mult). This caps the dynamic call tree of
	// an acyclic chain of k functions at budget^k invocations, keeping the
	// whole program comfortably inside the interpreter's fuel.
	mult       int64
	callBudget int64
}

type genFunc struct {
	name      string
	params    []string
	recursive bool
}

func (g *generator) program() *Program {
	for i := 0; i < g.opts.Globals; i++ {
		g.globals = append(g.globals, fmt.Sprintf("g%d", i))
	}
	// entry is function 0 so it may call everything below it.
	g.funcs = append(g.funcs, &genFunc{name: "entry", params: []string{"n"}})
	for i := 0; i < g.opts.Funcs; i++ {
		fn := &genFunc{name: fmt.Sprintf("f%d", i)}
		for p := 0; p < 1+g.rng.Intn(3); p++ {
			fn.params = append(fn.params, fmt.Sprintf("p%d", p))
		}
		// A sprinkle of self-recursion exercises the inliner's trail
		// mechanism; the body template keeps the depth bounded.
		fn.recursive = g.rng.Float64() < 0.2
		g.funcs = append(g.funcs, fn)
	}

	prog := &Program{Globals: g.globals}
	for i, fn := range g.funcs {
		g.cur = i
		g.scope = append(g.scope[:0], fn.params...)
		g.nextVar, g.nextCtr = 0, 0
		g.mult, g.callBudget = 1, 3
		decl := &FuncDecl{Name: fn.name, Params: fn.params, Exported: i == 0}
		if fn.recursive {
			decl.Body = g.recursiveBody(fn)
		} else {
			decl.Body = g.body()
		}
		prog.Funcs = append(prog.Funcs, decl)
	}
	return prog
}

// recursiveBody is a guarded count-down template: recursion depth is capped
// by the window check no matter what argument the caller passes.
func (g *generator) recursiveBody(fn *genFunc) []Stmt {
	p := fn.params[0]
	guard := &IfStmt{
		Cond: &BinExpr{Op: "||",
			L: &BinExpr{Op: "<", L: &VarExpr{Name: p}, R: &NumExpr{Value: 1}},
			R: &BinExpr{Op: ">", L: &VarExpr{Name: p}, R: &NumExpr{Value: int64(4 + g.rng.Intn(8))}}},
		Then: []Stmt{&ReturnStmt{Expr: g.expr(1)}},
	}
	args := []Expr{&BinExpr{Op: "-", L: &VarExpr{Name: p}, R: &NumExpr{Value: 1}}}
	for i := 1; i < len(fn.params); i++ {
		args = append(args, g.expr(1))
	}
	return []Stmt{
		guard,
		&OutputStmt{Expr: &VarExpr{Name: p}},
		&ReturnStmt{Expr: &BinExpr{Op: "+",
			L: g.expr(1),
			R: &CallExpr{Name: fn.name, Args: args}}},
	}
}

func (g *generator) body() []Stmt {
	var out []Stmt
	n := 2 + g.rng.Intn(g.opts.MaxStmts)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(2)...)
	}
	out = append(out, &ReturnStmt{Expr: g.expr(g.opts.MaxDepth)})
	return out
}

// stmt generates one logical statement (the bounded-while form needs two:
// its counter declaration plus the loop); depth bounds nested blocks.
func (g *generator) stmt(depth int) []Stmt {
	for {
		switch k := g.rng.Intn(8); {
		case k == 0: // new local
			name := fmt.Sprintf("v%d", g.nextVar)
			g.nextVar++
			s := &VarStmt{Name: name, Init: g.expr(g.opts.MaxDepth)}
			g.scope = append(g.scope, name)
			return []Stmt{s}
		case k == 1: // assign to a local/param
			if len(g.scope) == 0 {
				continue
			}
			return []Stmt{&AssignStmt{Name: g.scope[g.rng.Intn(len(g.scope))], Expr: g.expr(g.opts.MaxDepth)}}
		case k == 2: // assign to a global
			return []Stmt{&AssignStmt{Name: g.globals[g.rng.Intn(len(g.globals))], Expr: g.expr(g.opts.MaxDepth)}}
		case k == 3: // observable output
			return []Stmt{&OutputStmt{Expr: g.expr(g.opts.MaxDepth)}}
		case k == 4 && depth > 0: // if / if-else
			s := &IfStmt{Cond: g.expr(2), Then: g.block(depth - 1)}
			if g.rng.Intn(2) == 0 {
				s.Else = g.block(depth - 1)
			}
			return []Stmt{s}
		case k == 5 && depth > 0: // bounded C-style for
			ctr := fmt.Sprintf("i%d", g.nextCtr)
			g.nextCtr++
			trip := int64(1 + g.rng.Intn(5))
			g.mult *= trip
			body := g.block(depth - 1)
			g.mult /= trip
			return []Stmt{&ForStmt{
				Init: &VarStmt{Name: ctr, Init: &NumExpr{Value: 0}},
				Cond: &BinExpr{Op: "<", L: &VarExpr{Name: ctr}, R: &NumExpr{Value: trip}},
				Post: &AssignStmt{Name: ctr, Expr: &BinExpr{Op: "+", L: &VarExpr{Name: ctr}, R: &NumExpr{Value: 1}}},
				Body: body,
			}}
		case k == 6 && depth > 0: // bounded while, counting its counter down
			ctr := fmt.Sprintf("w%d", g.nextCtr)
			g.nextCtr++
			trip := int64(1 + g.rng.Intn(5))
			// ctr is deliberately kept out of g.scope: a generated
			// assignment to it inside the body could reset the countdown
			// every iteration and spin forever.
			decl := &VarStmt{Name: ctr, Init: &NumExpr{Value: trip}}
			g.mult *= trip
			body := g.block(depth - 1)
			g.mult /= trip
			body = append(body, &AssignStmt{Name: ctr,
				Expr: &BinExpr{Op: "-", L: &VarExpr{Name: ctr}, R: &NumExpr{Value: 1}}})
			return []Stmt{decl, &WhileStmt{
				Cond: &BinExpr{Op: ">", L: &VarExpr{Name: ctr}, R: &NumExpr{Value: 0}},
				Body: body,
			}}
		case k == 7: // call for effect
			if call := g.call(1); call != nil {
				return []Stmt{&ExprStmt{Expr: call}}
			}
		}
	}
}

// block generates a nested statement list. Locals declared inside are
// block-scoped in MinC, so the generator's scope is truncated on exit to
// keep later statements from referencing them.
func (g *generator) block(depth int) []Stmt {
	mark := len(g.scope)
	n := 1 + g.rng.Intn(3)
	out := make([]Stmt, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.stmt(depth)...)
	}
	g.scope = g.scope[:mark]
	return out
}

// expr generates an expression of bounded depth.
func (g *generator) expr(depth int) Expr {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(6) {
	case 0, 1:
		return g.leaf()
	case 2, 3:
		ops := []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&", "|", "^", "&&", "||"}
		return &BinExpr{Op: ops[g.rng.Intn(len(ops))], L: g.expr(depth - 1), R: g.expr(depth - 1)}
	case 4:
		if g.rng.Intn(2) == 0 {
			return &UnExpr{Op: "-", E: g.expr(depth - 1)}
		}
		return &UnExpr{Op: "!", E: g.expr(depth - 1)}
	default:
		if call := g.call(depth - 1); call != nil {
			return call
		}
		return g.leaf()
	}
}

// call builds a call to a strictly later function (acyclic by construction),
// charging the enclosing loops' trip-count product against the function's
// dynamic-call budget.
func (g *generator) call(argDepth int) Expr {
	if g.cur+1 >= len(g.funcs) || g.mult > g.callBudget {
		return nil
	}
	g.callBudget -= g.mult
	callee := g.funcs[g.cur+1+g.rng.Intn(len(g.funcs)-g.cur-1)]
	args := make([]Expr, len(callee.params))
	for i := range args {
		args[i] = g.expr(argDepth)
	}
	return &CallExpr{Name: callee.name, Args: args}
}

func (g *generator) leaf() Expr {
	switch g.rng.Intn(4) {
	case 0:
		return &NumExpr{Value: int64(g.rng.Intn(97))}
	case 1:
		if len(g.scope) > 0 {
			return &VarExpr{Name: g.scope[g.rng.Intn(len(g.scope))]}
		}
		return &NumExpr{Value: int64(g.rng.Intn(7))}
	case 2:
		return &VarExpr{Name: g.globals[g.rng.Intn(len(g.globals))]}
	default:
		return &NumExpr{Value: int64(g.rng.Intn(7))}
	}
}

// Render prints a Program as parseable MinC source. Expressions are fully
// parenthesized, so operator precedence never changes the reparse.
func Render(p *Program) string {
	var sb strings.Builder
	for _, gl := range p.Globals {
		fmt.Fprintf(&sb, "global %s;\n", gl)
	}
	if len(p.Globals) > 0 {
		sb.WriteString("\n")
	}
	for i, fn := range p.Funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		if fn.Exported {
			sb.WriteString("export ")
		}
		fmt.Fprintf(&sb, "func %s(%s) {\n", fn.Name, strings.Join(fn.Params, ", "))
		renderStmts(&sb, fn.Body, "    ")
		sb.WriteString("}\n")
	}
	return sb.String()
}

func renderStmts(sb *strings.Builder, list []Stmt, indent string) {
	for _, s := range list {
		renderStmt(sb, s, indent)
	}
}

func renderStmt(sb *strings.Builder, s Stmt, indent string) {
	switch st := s.(type) {
	case *VarStmt:
		fmt.Fprintf(sb, "%svar %s = %s;\n", indent, st.Name, renderExpr(st.Init))
	case *AssignStmt:
		fmt.Fprintf(sb, "%s%s = %s;\n", indent, st.Name, renderExpr(st.Expr))
	case *IfStmt:
		fmt.Fprintf(sb, "%sif (%s) {\n", indent, renderExpr(st.Cond))
		renderStmts(sb, st.Then, indent+"    ")
		if len(st.Else) > 0 {
			fmt.Fprintf(sb, "%s} else {\n", indent)
			renderStmts(sb, st.Else, indent+"    ")
		}
		fmt.Fprintf(sb, "%s}\n", indent)
	case *WhileStmt:
		fmt.Fprintf(sb, "%swhile (%s) {\n", indent, renderExpr(st.Cond))
		renderStmts(sb, st.Body, indent+"    ")
		fmt.Fprintf(sb, "%s}\n", indent)
	case *ForStmt:
		fmt.Fprintf(sb, "%sfor (%s; %s; %s) {\n", indent,
			renderClause(st.Init), renderExpr(st.Cond), renderClause(st.Post))
		renderStmts(sb, st.Body, indent+"    ")
		fmt.Fprintf(sb, "%s}\n", indent)
	case *ReturnStmt:
		fmt.Fprintf(sb, "%sreturn %s;\n", indent, renderExpr(st.Expr))
	case *OutputStmt:
		fmt.Fprintf(sb, "%soutput %s;\n", indent, renderExpr(st.Expr))
	case *ExprStmt:
		fmt.Fprintf(sb, "%s%s;\n", indent, renderExpr(st.Expr))
	case *BreakStmt:
		fmt.Fprintf(sb, "%sbreak;\n", indent)
	case *ContinueStmt:
		fmt.Fprintf(sb, "%scontinue;\n", indent)
	default:
		panic(fmt.Sprintf("lang: render: unknown statement %T", s))
	}
}

// renderClause prints a for-loop init/post clause (no trailing semicolon).
func renderClause(s Stmt) string {
	switch st := s.(type) {
	case nil:
		return ""
	case *VarStmt:
		return fmt.Sprintf("var %s = %s", st.Name, renderExpr(st.Init))
	case *AssignStmt:
		return fmt.Sprintf("%s = %s", st.Name, renderExpr(st.Expr))
	case *ExprStmt:
		return renderExpr(st.Expr)
	default:
		panic(fmt.Sprintf("lang: render: bad for clause %T", s))
	}
}

func renderExpr(e Expr) string {
	switch ex := e.(type) {
	case *NumExpr:
		if ex.Value < 0 {
			return fmt.Sprintf("(0 - %d)", -ex.Value)
		}
		return fmt.Sprintf("%d", ex.Value)
	case *VarExpr:
		return ex.Name
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", renderExpr(ex.L), ex.Op, renderExpr(ex.R))
	case *UnExpr:
		return fmt.Sprintf("(%s%s)", ex.Op, renderExpr(ex.E))
	case *CallExpr:
		args := make([]string, len(ex.Args))
		for i, a := range ex.Args {
			args[i] = renderExpr(a)
		}
		return fmt.Sprintf("%s(%s)", ex.Name, strings.Join(args, ", "))
	default:
		panic(fmt.Sprintf("lang: render: unknown expression %T", e))
	}
}
