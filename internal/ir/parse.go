package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual IR syntax produced by Module.String and returns
// the module. It is used by tests, example programs, and the CLI tools.
func Parse(name, src string) (*Module, error) {
	p := &irParser{m: NewModule(name)}
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, i+1, err)
		}
	}
	if p.fn != nil {
		return nil, fmt.Errorf("%s: unterminated function @%s", name, p.fn.Name)
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	if err := p.m.Verify(); err != nil {
		return nil, err
	}
	return p.m, nil
}

// MustParse is Parse that panics on error; for tests and fixed examples.
func MustParse(name, src string) *Module {
	m, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

type pendingSucc struct {
	in   *Instr
	idx  int
	name string
	args []string
}

type irParser struct {
	m      *Module
	fn     *Function
	cur    *Block
	values map[string]*Value
	blocks map[string]*Block
	// succs and uses are resolved when the function body is complete.
	succs []pendingSucc
	uses  []pendingUse
}

type pendingUse struct {
	in    *Instr
	slot  int // index into Args
	name  string
	where string
}

func (p *irParser) line(line string) error {
	switch {
	case strings.HasPrefix(line, "global "):
		g := strings.TrimSpace(strings.TrimPrefix(line, "global"))
		g = strings.TrimPrefix(g, "@")
		if g == "" {
			return fmt.Errorf("empty global name")
		}
		p.m.AddGlobal(g)
		return nil
	case strings.HasPrefix(line, "func ") || strings.HasPrefix(line, "export func "):
		return p.funcHeader(line)
	case line == "}":
		if p.fn == nil {
			return fmt.Errorf("unexpected '}'")
		}
		if err := p.finishFunc(); err != nil {
			return err
		}
		return nil
	case strings.HasSuffix(line, ":") || (strings.Contains(line, "(") && strings.HasSuffix(line, "):")):
		return p.blockHeader(line)
	default:
		if p.cur == nil {
			return fmt.Errorf("instruction outside block: %q", line)
		}
		return p.instr(line)
	}
}

func (p *irParser) funcHeader(line string) error {
	if p.fn != nil {
		return fmt.Errorf("nested function")
	}
	exported := strings.HasPrefix(line, "export ")
	line = strings.TrimPrefix(line, "export ")
	line = strings.TrimPrefix(line, "func ")
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open || !strings.HasSuffix(strings.TrimSpace(line[close+1:]), "{") {
		return fmt.Errorf("malformed function header")
	}
	name := strings.TrimPrefix(strings.TrimSpace(line[:open]), "@")
	params := splitArgs(line[open+1 : close])
	b := NewFunction(name, len(params), exported)
	p.fn = b.Fn
	p.cur = b.Fn.Entry()
	p.values = make(map[string]*Value)
	p.blocks = map[string]*Block{p.cur.Name: p.cur}
	p.succs = nil
	p.uses = nil
	for i, prm := range params {
		pname := strings.TrimPrefix(prm, "%")
		p.fn.Entry().Params[i].Name = pname
		p.values[pname] = p.fn.Entry().Params[i]
	}
	return nil
}

func (p *irParser) blockHeader(line string) error {
	line = strings.TrimSuffix(line, ":")
	name := line
	var params []string
	if open := strings.IndexByte(line, '('); open >= 0 {
		close := strings.LastIndexByte(line, ')')
		if close < open {
			return fmt.Errorf("malformed block header")
		}
		name = line[:open]
		params = splitArgs(line[open+1 : close])
	}
	if b, ok := p.blocks[name]; ok && b == p.fn.Entry() && len(params) == 0 {
		// Re-declaration of the entry label; position there.
		p.cur = b
		return nil
	}
	b := p.getBlock(name)
	for _, prm := range params {
		pname := strings.TrimPrefix(prm, "%")
		v := p.fn.NewValue(pname)
		v.Parm = b
		b.Params = append(b.Params, v)
		p.values[pname] = v
	}
	p.cur = b
	return nil
}

func (p *irParser) getBlock(name string) *Block {
	if b, ok := p.blocks[name]; ok {
		return b
	}
	b := p.fn.NewBlock(name)
	p.blocks[name] = b
	return b
}

func (p *irParser) defValue(name string, in *Instr) {
	v := p.fn.NewValue(name)
	v.Def = in
	in.Result = v
	p.values[name] = v
}

func (p *irParser) addUse(in *Instr, slot int, ref string) {
	name := strings.TrimPrefix(ref, "%")
	for len(in.Args) <= slot {
		in.Args = append(in.Args, nil)
	}
	p.uses = append(p.uses, pendingUse{in: in, slot: slot, name: name})
}

func (p *irParser) instr(line string) error {
	var resName string
	if eq := strings.Index(line, " = "); eq >= 0 && strings.HasPrefix(line, "%") {
		resName = strings.TrimPrefix(strings.TrimSpace(line[:eq]), "%")
		line = strings.TrimSpace(line[eq+3:])
	}
	op, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	emit := func(in *Instr) {
		if resName != "" {
			p.defValue(resName, in)
		}
		p.cur.Instrs = append(p.cur.Instrs, in)
	}
	switch op {
	case "const":
		c, err := strconv.ParseInt(rest, 10, 64)
		if err != nil {
			return fmt.Errorf("bad const %q", rest)
		}
		emit(&Instr{Op: OpConst, Const: c})
	case "neg", "not":
		in := &Instr{Op: OpUn}
		if op == "not" {
			in.UnOp = Not
		}
		p.addUse(in, 0, rest)
		emit(in)
	case "call":
		callee, argstr, ok := strings.Cut(rest, "(")
		if !ok {
			return fmt.Errorf("malformed call %q", rest)
		}
		close := strings.LastIndexByte(argstr, ')')
		if close < 0 {
			return fmt.Errorf("malformed call %q", rest)
		}
		in := &Instr{Op: OpCall, Callee: strings.TrimPrefix(strings.TrimSpace(callee), "@")}
		tail := strings.TrimSpace(argstr[close+1:])
		if strings.HasPrefix(tail, "!site") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(tail, "!site")))
			if err != nil {
				return fmt.Errorf("bad !site annotation %q", tail)
			}
			in.Site = n
		}
		for i, a := range splitArgs(argstr[:close]) {
			p.addUse(in, i, a)
		}
		emit(in)
	case "loadg":
		emit(&Instr{Op: OpLoadG, Global: strings.TrimPrefix(rest, "@")})
	case "storeg":
		g, v, ok := strings.Cut(rest, ",")
		if !ok {
			return fmt.Errorf("malformed storeg %q", rest)
		}
		in := &Instr{Op: OpStoreG, Global: strings.TrimPrefix(strings.TrimSpace(g), "@")}
		p.addUse(in, 0, strings.TrimSpace(v))
		emit(in)
	case "output":
		in := &Instr{Op: OpOutput}
		p.addUse(in, 0, rest)
		emit(in)
	case "br":
		in := &Instr{Op: OpBr, Succs: make([]Succ, 1)}
		name, args, err := parseSucc(rest)
		if err != nil {
			return err
		}
		p.succs = append(p.succs, pendingSucc{in: in, idx: 0, name: name, args: args})
		emit(in)
	case "condbr":
		parts := splitTopLevel(rest)
		if len(parts) != 3 {
			return fmt.Errorf("malformed condbr %q", rest)
		}
		in := &Instr{Op: OpCondBr, Succs: make([]Succ, 2)}
		p.addUse(in, 0, strings.TrimSpace(parts[0]))
		for i := 0; i < 2; i++ {
			name, args, err := parseSucc(strings.TrimSpace(parts[i+1]))
			if err != nil {
				return err
			}
			p.succs = append(p.succs, pendingSucc{in: in, idx: i, name: name, args: args})
		}
		emit(in)
	case "ret":
		in := &Instr{Op: OpRet}
		p.addUse(in, 0, rest)
		emit(in)
	default:
		if bop, ok := BinOpFromString(op); ok {
			a, b, found := strings.Cut(rest, ",")
			if !found {
				return fmt.Errorf("malformed %s %q", op, rest)
			}
			in := &Instr{Op: OpBin, BinOp: bop}
			p.addUse(in, 0, strings.TrimSpace(a))
			p.addUse(in, 1, strings.TrimSpace(b))
			emit(in)
			return nil
		}
		return fmt.Errorf("unknown instruction %q", op)
	}
	return nil
}

func (p *irParser) finishFunc() error {
	for _, u := range p.uses {
		v, ok := p.values[u.name]
		if !ok {
			return fmt.Errorf("func @%s: undefined value %%%s", p.fn.Name, u.name)
		}
		u.in.Args[u.slot] = v
	}
	for _, s := range p.succs {
		b, ok := p.blocks[s.name]
		if !ok {
			return fmt.Errorf("func @%s: undefined block %s", p.fn.Name, s.name)
		}
		sc := Succ{Dest: b}
		for _, a := range s.args {
			v, ok := p.values[strings.TrimPrefix(a, "%")]
			if !ok {
				return fmt.Errorf("func @%s: undefined value %s", p.fn.Name, a)
			}
			sc.Args = append(sc.Args, v)
		}
		s.in.Succs[s.idx] = sc
	}
	p.m.AddFunc(p.fn)
	p.fn, p.cur, p.values, p.blocks, p.succs, p.uses = nil, nil, nil, nil, nil, nil
	return nil
}

func (p *irParser) resolve() error { return nil }

func parseSucc(s string) (name string, args []string, err error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, nil, nil
	}
	close := strings.LastIndexByte(s, ')')
	if close < open {
		return "", nil, fmt.Errorf("malformed successor %q", s)
	}
	return s[:open], splitArgs(s[open+1 : close]), nil
}

// splitArgs splits a comma-separated argument list, tolerating whitespace.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// splitTopLevel splits on commas not enclosed in parentheses.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
