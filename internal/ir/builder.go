package ir

import "fmt"

// Builder constructs IR with a conventional append-to-current-block API.
// It is used by the MinC lowering and by the synthetic workload generator.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewFunction creates a function with nparams entry parameters and returns a
// builder positioned at its entry block.
func NewFunction(name string, nparams int, exported bool) *Builder {
	f := &Function{Name: name, Exported: exported}
	entry := f.NewBlock("entry")
	for i := 0; i < nparams; i++ {
		p := f.NewValue(fmt.Sprintf("p%d", i))
		p.Parm = entry
		entry.Params = append(entry.Params, p)
	}
	return &Builder{Fn: f, Cur: entry}
}

// Param returns the i-th function parameter.
func (bl *Builder) Param(i int) *Value { return bl.Fn.Entry().Params[i] }

// Block creates a new block with n block parameters and returns it together
// with its parameter values. The builder position is unchanged.
func (bl *Builder) Block(name string, n int) *Block {
	b := bl.Fn.NewBlock(name)
	for i := 0; i < n; i++ {
		p := bl.Fn.NewValue("")
		p.Parm = b
		b.Params = append(b.Params, p)
	}
	return b
}

// SetBlock repositions the builder at b.
func (bl *Builder) SetBlock(b *Block) { bl.Cur = b }

func (bl *Builder) emit(in *Instr) *Value {
	if bl.Cur.Term() != nil {
		panic("ir: emitting into sealed block " + bl.Cur.Name)
	}
	bl.Cur.Instrs = append(bl.Cur.Instrs, in)
	return in.Result
}

func (bl *Builder) result(in *Instr) *Value {
	v := bl.Fn.NewValue("")
	v.Def = in
	in.Result = v
	return v
}

// Const emits a constant.
func (bl *Builder) Const(c int64) *Value {
	in := &Instr{Op: OpConst, Const: c}
	bl.result(in)
	return bl.emit(in)
}

// Bin emits a binary operation.
func (bl *Builder) Bin(op BinOp, a, b *Value) *Value {
	in := &Instr{Op: OpBin, BinOp: op, Args: []*Value{a, b}}
	bl.result(in)
	return bl.emit(in)
}

// Un emits a unary operation.
func (bl *Builder) Un(op UnOp, a *Value) *Value {
	in := &Instr{Op: OpUn, UnOp: op, Args: []*Value{a}}
	bl.result(in)
	return bl.emit(in)
}

// Call emits a call to the named function.
func (bl *Builder) Call(callee string, args ...*Value) *Value {
	in := &Instr{Op: OpCall, Callee: callee, Args: args}
	bl.result(in)
	return bl.emit(in)
}

// LoadG emits a load of a global variable.
func (bl *Builder) LoadG(g string) *Value {
	in := &Instr{Op: OpLoadG, Global: g}
	bl.result(in)
	return bl.emit(in)
}

// StoreG emits a store to a global variable.
func (bl *Builder) StoreG(g string, v *Value) {
	bl.emit(&Instr{Op: OpStoreG, Global: g, Args: []*Value{v}})
}

// Output emits an observable-output instruction.
func (bl *Builder) Output(v *Value) {
	bl.emit(&Instr{Op: OpOutput, Args: []*Value{v}})
}

// Br seals the current block with an unconditional branch.
func (bl *Builder) Br(dest *Block, args ...*Value) {
	bl.emit(&Instr{Op: OpBr, Succs: []Succ{{Dest: dest, Args: args}}})
}

// CondBr seals the current block with a conditional branch on cond != 0.
func (bl *Builder) CondBr(cond *Value, then *Block, thenArgs []*Value, els *Block, elseArgs []*Value) {
	bl.emit(&Instr{
		Op:   OpCondBr,
		Args: []*Value{cond},
		Succs: []Succ{
			{Dest: then, Args: thenArgs},
			{Dest: els, Args: elseArgs},
		},
	})
}

// Ret seals the current block with a return.
func (bl *Builder) Ret(v *Value) {
	bl.emit(&Instr{Op: OpRet, Args: []*Value{v}})
}
