// Package ir defines a small block-argument SSA intermediate representation.
//
// The IR is deliberately minimal but complete enough for function inlining to
// have the cascading effects the paper studies: programs are modules of
// functions; functions are control-flow graphs of basic blocks; blocks carry
// parameters instead of phi nodes; branches pass arguments to their target
// blocks. All data values are 64-bit integers.
//
// Side effects are explicit: OpOutput appends to an observable output stream,
// OpStoreG writes a module global. Calls are conservatively treated as
// side-effecting by the optimizer, so a call can only disappear by being
// inlined or by becoming unreachable — exactly the property the paper's
// search-space partition relies on.
package ir

import "fmt"

// Op enumerates instruction opcodes.
type Op uint8

// Instruction opcodes.
const (
	OpInvalid Op = iota
	OpConst      // result = Const
	OpBin        // result = Args[0] <BinOp> Args[1]
	OpUn         // result = <UnOp> Args[0]
	OpCall       // result = call Callee(Args...)
	OpLoadG      // result = load global Global
	OpStoreG     // store Args[0] into global Global
	OpOutput     // emit Args[0] to the observable output stream
	OpBr         // br Succs[0]
	OpCondBr     // if Args[0] != 0 br Succs[0] else br Succs[1]
	OpRet        // return Args[0]
)

func (op Op) String() string {
	switch op {
	case OpConst:
		return "const"
	case OpBin:
		return "bin"
	case OpUn:
		return "un"
	case OpCall:
		return "call"
	case OpLoadG:
		return "loadg"
	case OpStoreG:
		return "storeg"
	case OpOutput:
		return "output"
	case OpBr:
		return "br"
	case OpCondBr:
		return "condbr"
	case OpRet:
		return "ret"
	}
	return "invalid"
}

// IsTerminator reports whether the opcode ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpCondBr || op == OpRet
}

// BinOp enumerates binary operators. Comparison operators yield 0 or 1.
type BinOp uint8

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div // division by zero yields 0 (total semantics)
	Mod // modulo by zero yields 0
	And
	Or
	Xor
	Shl // shift amount is masked to 0..63
	Shr // arithmetic shift; amount masked to 0..63
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var binNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return "bin?"
}

// BinOpFromString returns the operator named s.
func BinOpFromString(s string) (BinOp, bool) {
	for i, n := range binNames {
		if n == s {
			return BinOp(i), true
		}
	}
	return 0, false
}

// UnOp enumerates unary operators.
type UnOp uint8

// Unary operators.
const (
	Neg UnOp = iota // arithmetic negation
	Not             // logical not: 1 if operand is 0, else 0
)

func (u UnOp) String() string {
	if u == Neg {
		return "neg"
	}
	return "not"
}

// Value is an SSA value: either the result of an instruction or a block
// parameter. Values are identified by pointer; ID and Name aid printing.
type Value struct {
	ID   int
	Name string
	Def  *Instr // defining instruction, nil for block parameters
	Parm *Block // owning block when the value is a block parameter
}

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	if v.Name != "" {
		return "%" + v.Name
	}
	return fmt.Sprintf("%%v%d", v.ID)
}

// Succ is a control-flow edge from a terminator to a destination block,
// carrying the arguments bound to the destination's block parameters.
type Succ struct {
	Dest *Block
	Args []*Value
}

// Instr is a single instruction.
type Instr struct {
	Op     Op
	Result *Value   // nil for void and terminator instructions
	Args   []*Value // operand values
	Const  int64    // literal for OpConst
	BinOp  BinOp    // operator for OpBin
	UnOp   UnOp     // operator for OpUn
	Callee string   // target function name for OpCall
	Global string   // global variable name for OpLoadG/OpStoreG
	Succs  []Succ   // successor edges for terminators

	// Site is the stable call-site identity for OpCall instructions.
	// Clones produced by inlining share the Site of the original call, which
	// implements the paper's "coupled copies" semantics: one inlining label
	// covers every copy of the same original call.
	Site int

	// Trail records the chain of call sites already expanded to materialize
	// this (cloned) call. It bounds recursive inlining: a site that already
	// appears in the trail is never expanded again, implementing the paper's
	// "inline recursive functions at most once".
	Trail []int
}

// IsCall reports whether the instruction is a call.
func (in *Instr) IsCall() bool { return in.Op == OpCall }

// HasSideEffects reports whether the optimizer must preserve the instruction
// even if its result is unused.
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpCall, OpStoreG, OpOutput, OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// Block is a basic block: parameters, a straight-line body, and a terminator
// as the final instruction.
type Block struct {
	Name   string
	Params []*Value
	Instrs []*Instr
}

// Term returns the block terminator, or nil if the block is not yet sealed.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the destination blocks of the block terminator.
func (b *Block) Succs() []Succ {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Succs
}

// Function is a single function: a name, an export flag, and a CFG whose
// entry block parameters are the function parameters. Every function returns
// a single 64-bit integer.
type Function struct {
	Name     string
	Exported bool // exported functions are never removed by global DCE
	Blocks   []*Block

	nextValue int
	nextBlock int
}

// Entry returns the function entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NumParams returns the number of function parameters.
func (f *Function) NumParams() int {
	if e := f.Entry(); e != nil {
		return len(e.Params)
	}
	return 0
}

// NewValue allocates a fresh value owned by the function.
func (f *Function) NewValue(name string) *Value {
	v := &Value{ID: f.nextValue, Name: name}
	f.nextValue++
	return v
}

// NewBlock appends a fresh, empty block to the function. The requested name
// is suffixed if another block already carries it: block names label branch
// targets in the printed IR, so duplicates would make the textual form
// ambiguous (Verify rejects them).
func (f *Function) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("b%d", f.nextBlock)
	}
	f.nextBlock++
	taken := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		taken[b.Name] = true
	}
	unique := name
	for i := 2; taken[unique]; i++ {
		unique = fmt.Sprintf("%s%d", name, i)
	}
	b := &Block{Name: unique}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NumInstrs returns the total instruction count across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Calls returns all call instructions in the function in block order.
func (f *Function) Calls() []*Instr {
	var out []*Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				out = append(out, in)
			}
		}
	}
	return out
}

// Module is a compilation unit: an ordered list of functions plus the
// globals they reference. It corresponds to one translation unit (one
// source file) in the paper's per-file analysis.
type Module struct {
	Name    string
	Globals []string
	Funcs   []*Function

	byName map[string]*Function
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, byName: make(map[string]*Function)}
}

// AddFunc appends a function to the module. It panics on duplicate names;
// module construction is programmer-controlled, so a duplicate is a bug.
func (m *Module) AddFunc(f *Function) {
	if m.byName == nil {
		m.byName = make(map[string]*Function)
	}
	if _, dup := m.byName[f.Name]; dup {
		panic("ir: duplicate function " + f.Name)
	}
	m.Funcs = append(m.Funcs, f)
	m.byName[f.Name] = f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function {
	return m.byName[name]
}

// RemoveFunc deletes the named function from the module.
func (m *Module) RemoveFunc(name string) {
	if _, ok := m.byName[name]; !ok {
		return
	}
	delete(m.byName, name)
	for i, f := range m.Funcs {
		if f.Name == name {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
}

// AddGlobal registers a global variable name (idempotent).
func (m *Module) AddGlobal(name string) {
	for _, g := range m.Globals {
		if g == name {
			return
		}
	}
	m.Globals = append(m.Globals, name)
}

// NumInstrs returns the total instruction count across all functions.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// MaxSite returns the largest call-site ID present in the module.
func (m *Module) MaxSite() int {
	max := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall && in.Site > max {
					max = in.Site
				}
			}
		}
	}
	return max
}

// AssignSites gives every call instruction that does not yet have a site ID
// a fresh, stable one (1-based). It returns the number of sites assigned.
func (m *Module) AssignSites() int {
	next := m.MaxSite() + 1
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpCall && in.Site == 0 {
					in.Site = next
					next++
					n++
				}
			}
		}
	}
	return n
}
