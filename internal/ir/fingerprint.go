package ir

import "sort"

// This file implements structural fingerprinting: stable hashes of IR that
// stream over the in-memory structure directly, with no String() round-trip
// and no per-call allocation beyond the canonical numbering maps. The
// per-function compile cache (internal/compile, fncache.go) keys entries on
// these hashes, so what the hash includes — and deliberately excludes — is
// part of that cache's correctness argument:
//
//   - Values and blocks are referred to by canonical position (definition
//     order / block index), never by ID or name: printing artifacts like
//     value names cannot split cache entries, and two functions that differ
//     only in naming hash identically. The printed-form hash is retained as
//     PrintFingerprint, a test oracle for exactly this property.
//   - Call-site IDs and inline trails are NOT part of Function.Fingerprint:
//     site numbering is per-module, and hashing it would make structurally
//     identical helper functions in different translation units hash apart.
//     Clients that depend on site identity (the compile cache's closure
//     keys, Module.Fingerprint) canonicalize or append sites themselves.
//   - Callee and global names ARE hashed: they are the linkage that decides
//     which function a call resolves to during inlining.

// Two independent 64-bit multiply-xor lanes; lane a is standard FNV-1a.
const (
	fnvOffset  = 14695981039346656037
	fnvPrime   = 1099511628211
	lane2Seed  = 0x2545F4914F6CDD1D
	lane2Prime = 0x9E3779B97F4A7C15
)

// Hasher is a streamed structural-hash accumulator: two independently
// seeded 64-bit multiply-xor lanes fed byte by byte. Sum64 returns the
// first lane (finalized); Sum128 returns both, for clients whose key space
// is large enough that 64-bit birthday collisions would matter (the
// per-function compile cache). The zero Hasher is not ready for use; start
// with NewHasher.
type Hasher struct{ a, b uint64 }

// NewHasher returns a ready-to-use Hasher.
func NewHasher() Hasher { return Hasher{a: fnvOffset, b: lane2Seed} }

// Byte streams one byte.
func (h *Hasher) Byte(x byte) {
	h.a = (h.a ^ uint64(x)) * fnvPrime
	h.b = (h.b ^ uint64(x)) * lane2Prime
}

// Uint64 streams a 64-bit word (little-endian).
func (h *Hasher) Uint64(x uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(x))
		x >>= 8
	}
}

// Int streams an int (sign-extended to 64 bits).
func (h *Hasher) Int(x int) { h.Uint64(uint64(int64(x))) }

// Str streams a length-prefixed string, so adjacent strings cannot alias.
func (h *Hasher) Str(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// mix64 is the splitmix64 finalizer; it avalanches the lane accumulators so
// structurally close inputs do not produce numerically close sums.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Sum64 returns the finalized first lane.
func (h *Hasher) Sum64() uint64 { return mix64(h.a) }

// Sum128 returns both finalized lanes.
func (h *Hasher) Sum128() (hi, lo uint64) { return mix64(h.a), mix64(h.b) }

// Fingerprint returns a stable 64-bit structural hash of the function:
// opcodes, operators, constants, callee and global names, and the CFG shape,
// with values and blocks identified by canonical position. It is invariant
// under value/block renaming and under print/parse round-trips, and — by
// design — under call-site renumbering; see the file comment for why, and
// Module.Fingerprint for the site-sensitive variant.
func (f *Function) Fingerprint() uint64 {
	h := NewHasher()
	f.hashInto(&h)
	return h.Sum64()
}

// hashInto streams the function's structure into h.
func (f *Function) hashInto(h *Hasher) {
	// Canonical value numbers: parameters then instruction results, in block
	// and instruction order. References hash to these positions.
	num := make(map[*Value]int, 32)
	n := 0
	bidx := make(map[*Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		bidx[b] = i
		for _, p := range b.Params {
			num[p] = n
			n++
		}
		for _, in := range b.Instrs {
			if in.Result != nil {
				num[in.Result] = n
				n++
			}
		}
	}
	ref := func(v *Value) {
		if i, ok := num[v]; ok {
			h.Int(i)
		} else {
			h.Int(-1) // undefined reference; Verify rejects these
		}
	}
	if f.Exported {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
	h.Int(len(f.Blocks))
	for _, b := range f.Blocks {
		h.Int(len(b.Params))
		h.Int(len(b.Instrs))
		for _, in := range b.Instrs {
			h.Byte(byte(in.Op))
			switch in.Op {
			case OpConst:
				h.Uint64(uint64(in.Const))
			case OpBin:
				h.Byte(byte(in.BinOp))
			case OpUn:
				h.Byte(byte(in.UnOp))
			case OpCall:
				h.Str(in.Callee)
			case OpLoadG, OpStoreG:
				h.Str(in.Global)
			}
			if in.Result != nil {
				h.Byte(1)
			} else {
				h.Byte(0)
			}
			h.Int(len(in.Args))
			for _, a := range in.Args {
				ref(a)
			}
			h.Int(len(in.Succs))
			for _, s := range in.Succs {
				if i, ok := bidx[s.Dest]; ok {
					h.Int(i)
				} else {
					h.Int(-1)
				}
				h.Int(len(s.Args))
				for _, a := range s.Args {
					ref(a)
				}
			}
		}
	}
}

// Fingerprint returns a stable 64-bit structural hash of the module: the
// global set, and every function's name, structural fingerprint, and
// call-site assignment (IDs and trails, in instruction order). Two modules
// with equal fingerprints have identical structure AND identical site
// numbering, so size caches may key whole-module entries on
// (module fingerprint, inlining configuration) — the site sensitivity is
// what ties a configuration's site labels to this exact module. The hash
// streams the IR directly; the legacy printed-form hash survives as
// PrintFingerprint, a test oracle only.
func (m *Module) Fingerprint() uint64 {
	h := NewHasher()
	globals := append([]string(nil), m.Globals...)
	sort.Strings(globals)
	h.Int(len(globals))
	for _, g := range globals {
		h.Str(g)
	}
	h.Int(len(m.Funcs))
	for _, f := range m.Funcs {
		h.Str(f.Name)
		f.hashInto(&h)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpCall {
					continue
				}
				h.Int(in.Site)
				h.Int(len(in.Trail))
				for _, t := range in.Trail {
					h.Int(t)
				}
			}
		}
	}
	return h.Sum64()
}

// PrintFingerprint returns the legacy FNV-1a hash of the module's printed
// form. Retained as a test oracle only: it is sensitive to printing
// artifacts (value and block names) that the structural Fingerprint
// deliberately ignores, so tests use the pair to show the structural hash
// is renaming-invariant while still separating genuinely different modules.
func (m *Module) PrintFingerprint() uint64 {
	h := uint64(fnvOffset)
	for _, b := range []byte(m.String()) {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}
