package ir

// Fingerprint returns a stable 64-bit FNV-1a hash of the module's printed
// form. Two modules with equal fingerprints print identically and therefore
// compile identically, so size caches key their entries on
// (module fingerprint, inlining configuration); the printed form includes
// site IDs, which makes the fingerprint sensitive to site assignment.
func (m *Module) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, b := range []byte(m.String()) {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
