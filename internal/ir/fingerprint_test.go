package ir

import (
	"strings"
	"testing"
)

const goldenSrc = `
global @g

func @helper(%a, %b) {
entry:
  %s = add %a, %b
  %c = const 7
  %p = mul %s, %c
  ret %p
}

export func @main(%n) {
entry:
  %r = call @helper(%n, %n) !site 1
  %z = const 0
  %cmp = gt %r, %z
  condbr %cmp, big, small
big:
  storeg @g, %r
  ret %r
small:
  %m = call @helper(%n, %n) !site 2
  ret %m
}
`

func parseGolden(t *testing.T) *Module {
	t.Helper()
	m, err := Parse("golden", goldenSrc)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFingerprintGolden pins the hash values of a fixed module. The
// per-function compile cache persists sizes across runs under these hashes,
// so any change to the hash inputs or mixing silently invalidates — or,
// worse, silently *mis-shares* — persisted caches. This test makes such a
// change loud: if it fails, bump compile.PipelineVersion (when sizes
// changed meaning) or knowingly accept a cache-invalidating hash change.
func TestFingerprintGolden(t *testing.T) {
	m := parseGolden(t)
	wantFn := map[string]uint64{
		"helper": 0x4df25f1ecc5b2cbd,
		"main":   0x3ddc188c551a376f,
	}
	for _, f := range m.Funcs {
		if got := f.Fingerprint(); got != wantFn[f.Name] {
			t.Errorf("func %s fingerprint = %#016x, want %#016x", f.Name, got, wantFn[f.Name])
		}
	}
	if got := m.Fingerprint(); got != 0x763a3f96a40c4433 {
		t.Errorf("module fingerprint = %#016x, want 0x763a3f96a40c4433", got)
	}
	if got := m.PrintFingerprint(); got != 0x9e12bafd34df6902 {
		t.Errorf("print fingerprint = %#016x, want 0x9e12bafd34df6902", got)
	}
}

// TestHasherGolden pins the Hasher primitive encodings (length-prefixed
// strings, sign-extended ints, both lanes).
func TestHasherGolden(t *testing.T) {
	h := NewHasher()
	h.Str("abc")
	h.Int(-5)
	h.Uint64(42)
	if got := h.Sum64(); got != 0xe188cc6e124fcc18 {
		t.Errorf("Sum64 = %#016x, want 0xe188cc6e124fcc18", got)
	}
	hi, lo := h.Sum128()
	if hi != 0xe188cc6e124fcc18 || lo != 0x405270175c57bf3f {
		t.Errorf("Sum128 = %#016x, %#016x; want 0xe188cc6e124fcc18, 0x405270175c57bf3f", hi, lo)
	}
}

// TestFingerprintRenameInvariant is the structural-vs-printed split: value
// renaming changes the printed form (and so PrintFingerprint, the oracle)
// but must not change the structural hashes.
func TestFingerprintRenameInvariant(t *testing.T) {
	m := parseGolden(t)
	renamed, err := Parse("renamed", strings.NewReplacer(
		"%s", "%sum", "%p", "%prod", "%r", "%res", "%cmp", "%cond",
		"big:", "yes:", "big,", "yes,", "small", "no",
	).Replace(goldenSrc))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range m.Funcs {
		if got, want := renamed.Funcs[i].Fingerprint(), f.Fingerprint(); got != want {
			t.Errorf("func %s: rename changed structural fingerprint: %#x != %#x", f.Name, got, want)
		}
	}
	if got, want := renamed.Fingerprint(), m.Fingerprint(); got != want {
		t.Errorf("rename changed module fingerprint: %#x != %#x", got, want)
	}
	if renamed.PrintFingerprint() == m.PrintFingerprint() {
		t.Error("print fingerprint should be sensitive to renaming (oracle property)")
	}
}

// TestFingerprintRoundTrip: printing and re-parsing must preserve all
// hashes (the printed form is a faithful serialization).
func TestFingerprintRoundTrip(t *testing.T) {
	m := parseGolden(t)
	back, err := Parse("roundtrip", m.String())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Fingerprint(), m.Fingerprint(); got != want {
		t.Errorf("round trip changed module fingerprint: %#x != %#x", got, want)
	}
	if got, want := back.PrintFingerprint(), m.PrintFingerprint(); got != want {
		t.Errorf("round trip changed print fingerprint: %#x != %#x", got, want)
	}
}

// TestFingerprintSeparates: semantically different edits must change the
// function hash — constants, operators, callee names, CFG shape, export.
func TestFingerprintSeparates(t *testing.T) {
	base := parseGolden(t)
	fp := base.Func("helper").Fingerprint()
	edits := map[string][2]string{
		"constant": {"const 7", "const 8"},
		"operator": {"%p = mul %s, %c", "%p = add %s, %c"},
	}
	for name, e := range edits {
		mod, err := Parse(name, strings.Replace(goldenSrc, e[0], e[1], 1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mod.Func("helper").Fingerprint() == fp {
			t.Errorf("%s edit did not change the fingerprint", name)
		}
	}
	// Renaming the callee everywhere: callers must re-hash (callee names are
	// the linkage the cache key relies on), while the renamed function's own
	// body hash must NOT change — its name is not part of its structure,
	// which is what lets identically-shaped helpers share cache entries
	// across modules.
	renamed, err := Parse("callee", strings.ReplaceAll(goldenSrc, "@helper", "@assist"))
	if err != nil {
		t.Fatal(err)
	}
	if renamed.Func("main").Fingerprint() == base.Func("main").Fingerprint() {
		t.Error("callee rename did not change the caller's fingerprint")
	}
	if renamed.Func("assist").Fingerprint() != fp {
		t.Error("a function's own name should not affect its fingerprint")
	}
	unexported, err := Parse("unexported", strings.Replace(goldenSrc, "export func @main", "func @main", 1))
	if err != nil {
		t.Fatal(err)
	}
	if unexported.Func("main").Fingerprint() == base.Func("main").Fingerprint() {
		t.Error("export-flag edit did not change the fingerprint")
	}
}

// TestModuleFingerprintSiteSensitive: Function.Fingerprint ignores site
// IDs by design; Module.Fingerprint must not, because the whole-config
// memo keys (fingerprint, config) pairs and configs label sites by ID.
func TestModuleFingerprintSiteSensitive(t *testing.T) {
	m := parseGolden(t)
	resited, err := Parse("resited", strings.NewReplacer(
		"!site 1", "!site 2", "!site 2", "!site 1",
	).Replace(goldenSrc))
	if err != nil {
		t.Fatal(err)
	}
	// Swapping the two site IDs changes which labels couple to which call.
	if resited.Func("main").Fingerprint() != m.Func("main").Fingerprint() {
		t.Error("function fingerprint should ignore site IDs")
	}
	if resited.Fingerprint() == m.Fingerprint() {
		t.Error("module fingerprint should be sensitive to site assignment")
	}
}
