package ir

import (
	"strings"
	"testing"
)

func retFunc(name string) *Function {
	b := NewFunction(name, 0, false)
	b.Ret(b.Const(0))
	return b.Fn
}

func TestVerifyRejectsDuplicateFunctionNames(t *testing.T) {
	m := NewModule("m")
	m.AddFunc(retFunc("f"))
	// AddFunc panics on duplicates, but hand-assembled and merged modules
	// can carry them; Verify is the backstop.
	m.Funcs = append(m.Funcs, retFunc("f"))
	err := m.Verify()
	if err == nil || !strings.Contains(err.Error(), "duplicate function") {
		t.Errorf("Verify() = %v, want duplicate-function error", err)
	}
}

func TestVerifyRejectsDuplicateBlockNames(t *testing.T) {
	b := NewFunction("f", 0, false)
	other := b.Block("side", 0)
	b.Br(other)
	b.SetBlock(other)
	b.Ret(b.Const(0))
	// Rename behind NewBlock's back: block names label branch targets in the
	// textual IR, so duplicates make the printed form ambiguous.
	other.Name = b.Fn.Entry().Name
	err := b.Fn.Verify()
	if err == nil || !strings.Contains(err.Error(), "duplicate block name") {
		t.Errorf("Verify() = %v, want duplicate-block-name error", err)
	}
}

func TestNewBlockUniquifiesNames(t *testing.T) {
	b := NewFunction("f", 0, false)
	names := map[string]bool{b.Fn.Entry().Name: true}
	for i := 0; i < 3; i++ {
		blk := b.Block("then", 0)
		if names[blk.Name] {
			t.Fatalf("NewBlock returned duplicate name %q", blk.Name)
		}
		names[blk.Name] = true
	}
}

func TestVerifyAllowsUndefinedCallees(t *testing.T) {
	// Extern-style calls are supported throughout the toolchain (the
	// analysis suite reports them as warnings); Verify must not reject them.
	b := NewFunction("f", 0, true)
	b.Ret(b.Call("ext_missing"))
	m := NewModule("m")
	m.AddFunc(b.Fn)
	if err := m.Verify(); err != nil {
		t.Errorf("Verify() = %v, want nil for extern call", err)
	}
}
