package ir

import "fmt"

// Verify checks module-level structural invariants: function names are
// unique, function bodies verify, call targets that are defined in the
// module are called with the right arity, and referenced globals are
// declared.
//
// Calls to callees not defined in the module are deliberately not errors:
// the toolchain models them as extern calls (deterministic interpreter
// results, nominal codegen size) and the synthetic workloads rely on them.
// The analysis suite reports them as undefined-callee warnings instead.
func (m *Module) Verify() error {
	globals := make(map[string]bool, len(m.Globals))
	for _, g := range m.Globals {
		globals[g] = true
	}
	// AddFunc panics on duplicates, but hand-built modules (a Funcs slice
	// assembled directly) and cloned/merged ones can slip through.
	names := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if names[f.Name] {
			return fmt.Errorf("module %s: duplicate function %s", m.Name, f.Name)
		}
		names[f.Name] = true
	}
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("module %s: %w", m.Name, err)
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case OpCall:
					callee := m.Func(in.Callee)
					if callee != nil && callee.NumParams() != len(in.Args) {
						return fmt.Errorf("module %s: func %s: call @%s has %d args, want %d",
							m.Name, f.Name, in.Callee, len(in.Args), callee.NumParams())
					}
				case OpLoadG, OpStoreG:
					if !globals[in.Global] {
						return fmt.Errorf("module %s: func %s: undeclared global @%s",
							m.Name, f.Name, in.Global)
					}
				}
			}
		}
	}
	return nil
}

// Verify checks function-level invariants:
//   - block names are unique (they label branch targets in the textual IR),
//   - every block ends with exactly one terminator (and has no terminator
//     in its interior),
//   - branch argument counts match destination block parameter counts,
//   - every operand is defined by an instruction or block parameter whose
//     definition dominates the use.
func (f *Function) Verify() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("func %s: no blocks", f.Name)
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	blockNames := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
		if blockNames[b.Name] {
			return fmt.Errorf("func %s: duplicate block name %s", f.Name, b.Name)
		}
		blockNames[b.Name] = true
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].Op.IsTerminator() {
			return fmt.Errorf("func %s: block %s has no terminator", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			if in.Op.IsTerminator() && i != len(b.Instrs)-1 {
				return fmt.Errorf("func %s: block %s has terminator in interior", f.Name, b.Name)
			}
			for _, s := range in.Succs {
				if !blockSet[s.Dest] {
					return fmt.Errorf("func %s: block %s branches to foreign block %s", f.Name, b.Name, s.Dest.Name)
				}
				if len(s.Args) != len(s.Dest.Params) {
					return fmt.Errorf("func %s: block %s passes %d args to %s, want %d",
						f.Name, b.Name, len(s.Args), s.Dest.Name, len(s.Dest.Params))
				}
			}
		}
	}
	return f.verifyDefUse()
}

// verifyDefUse checks SSA dominance: each use must be reachable only via its
// definition. With block arguments, the rule is: an operand must be a
// parameter of the using block, or be defined earlier in the same block, or
// be defined in a block that strictly dominates the using block.
func (f *Function) verifyDefUse() error {
	defBlock := make(map[*Value]*Block)
	defIndex := make(map[*Value]int)
	for _, b := range f.Blocks {
		for _, p := range b.Params {
			defBlock[p] = b
			defIndex[p] = -1
		}
		for i, in := range b.Instrs {
			if in.Result != nil {
				defBlock[in.Result] = b
				defIndex[in.Result] = i
			}
		}
	}
	idom := f.Dominators()
	dominates := func(a, b *Block) bool {
		// Does a dominate b?
		for x := b; x != nil; x = idom[x] {
			if x == a {
				return true
			}
		}
		return false
	}
	check := func(b *Block, i int, v *Value) error {
		db, ok := defBlock[v]
		if !ok {
			return fmt.Errorf("func %s: block %s uses value %s with no definition", f.Name, b.Name, v)
		}
		if db == b {
			if defIndex[v] < i {
				return nil
			}
			return fmt.Errorf("func %s: block %s uses %s before its definition", f.Name, b.Name, v)
		}
		if !dominates(db, b) {
			return fmt.Errorf("func %s: use of %s in %s is not dominated by its definition in %s",
				f.Name, v, b.Name, db.Name)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if _, reachable := idom[b]; !reachable && b != f.Entry() {
			continue // unreachable blocks are not subject to dominance checking
		}
		for i, in := range b.Instrs {
			for _, a := range in.Args {
				if err := check(b, i, a); err != nil {
					return err
				}
			}
			for _, s := range in.Succs {
				for _, a := range s.Args {
					if err := check(b, i, a); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
