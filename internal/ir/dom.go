package ir

import "sync"

// blockStackPool recycles the DFS worklist of ReachableInto.
var blockStackPool = sync.Pool{
	New: func() any {
		s := make([]*Block, 0, 16)
		return &s
	},
}

// Dominators computes the immediate-dominator relation of the function CFG
// using the simple iterative algorithm (Cooper, Harvey, Kennedy). The result
// maps every reachable block to its immediate dominator; the entry block maps
// to nil. Unreachable blocks are absent from the map.
func (f *Function) Dominators() map[*Block]*Block {
	entry := f.Entry()
	if entry == nil {
		return nil
	}
	// Reverse postorder over reachable blocks.
	order := f.ReversePostorder()
	index := make(map[*Block]int, len(order))
	for i, b := range order {
		index[b] = i
	}
	preds := f.Predecessors()

	idom := make([]int, len(order))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for a > b {
				a = idom[a]
			}
			for b > a {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for i := 1; i < len(order); i++ {
			newIdom := -1
			for _, p := range preds[order[i]] {
				pi, ok := index[p]
				if !ok || idom[pi] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = pi
				} else {
					newIdom = intersect(newIdom, pi)
				}
			}
			if newIdom != -1 && idom[i] != newIdom {
				idom[i] = newIdom
				changed = true
			}
		}
	}
	out := make(map[*Block]*Block, len(order))
	out[entry] = nil
	for i := 1; i < len(order); i++ {
		if idom[i] >= 0 {
			out[order[i]] = order[idom[i]]
		}
	}
	return out
}

// ReversePostorder returns the reachable blocks in reverse postorder,
// starting with the entry block.
func (f *Function) ReversePostorder() []*Block {
	entry := f.Entry()
	if entry == nil {
		return nil
	}
	var post []*Block
	seen := make(map[*Block]bool)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s.Dest] {
				dfs(s.Dest)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Predecessors returns the CFG predecessor lists of all blocks (a block with
// two edges from the same predecessor lists it twice).
func (f *Function) Predecessors() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s.Dest] = append(preds[s.Dest], b)
		}
	}
	return preds
}

// Reachable returns the set of blocks reachable from the entry.
func (f *Function) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	f.ReachableInto(seen)
	return seen
}

// ReachableInto marks the blocks reachable from the entry in seen, which
// must be empty. It exists so hot fixpoint callers (the opt pipeline) can
// supply a pooled map instead of allocating one per invocation.
func (f *Function) ReachableInto(seen map[*Block]bool) {
	entry := f.Entry()
	if entry == nil {
		return
	}
	stack := blockStackPool.Get().(*[]*Block)
	*stack = append((*stack)[:0], entry)
	seen[entry] = true
	for len(*stack) > 0 {
		b := (*stack)[len(*stack)-1]
		*stack = (*stack)[:len(*stack)-1]
		for _, s := range b.Succs() {
			if !seen[s.Dest] {
				seen[s.Dest] = true
				*stack = append(*stack, s.Dest)
			}
		}
	}
	*stack = (*stack)[:0]
	blockStackPool.Put(stack)
}
