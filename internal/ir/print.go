package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the module in the textual IR syntax accepted by Parse.
func (m *Module) String() string {
	var sb strings.Builder
	globals := append([]string(nil), m.Globals...)
	sort.Strings(globals)
	for _, g := range globals {
		fmt.Fprintf(&sb, "global @%s\n", g)
	}
	for i, f := range m.Funcs {
		if i > 0 || len(globals) > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders the function in textual IR syntax.
func (f *Function) String() string {
	var sb strings.Builder
	names := f.nameValues()
	kw := "func"
	if f.Exported {
		kw = "export func"
	}
	fmt.Fprintf(&sb, "%s @%s(%s) {\n", kw, f.Name, paramList(f.Entry(), names))
	for i, b := range f.Blocks {
		if i == 0 {
			// Entry parameters are rendered in the signature.
			fmt.Fprintf(&sb, "%s:\n", b.Name)
		} else {
			fmt.Fprintf(&sb, "%s(%s):\n", b.Name, paramList(b, names))
		}
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", in.format(names))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func paramList(b *Block, names map[*Value]string) string {
	if b == nil {
		return ""
	}
	parts := make([]string, len(b.Params))
	for i, p := range b.Params {
		parts[i] = "%" + names[p]
	}
	return strings.Join(parts, ", ")
}

// nameValues assigns unique printable names to every value in the function.
func (f *Function) nameValues() map[*Value]string {
	names := make(map[*Value]string)
	used := make(map[string]bool)
	assign := func(v *Value) {
		base := v.Name
		if base == "" {
			base = fmt.Sprintf("v%d", v.ID)
		}
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		names[v] = name
	}
	for _, b := range f.Blocks {
		for _, p := range b.Params {
			assign(p)
		}
		for _, in := range b.Instrs {
			if in.Result != nil {
				assign(in.Result)
			}
		}
	}
	return names
}

func (in *Instr) format(names map[*Value]string) string {
	ref := func(v *Value) string {
		if n, ok := names[v]; ok {
			return "%" + n
		}
		return v.String() + "?undef"
	}
	args := func(vs []*Value) string {
		parts := make([]string, len(vs))
		for i, v := range vs {
			parts[i] = ref(v)
		}
		return strings.Join(parts, ", ")
	}
	succ := func(s Succ) string {
		if len(s.Args) == 0 {
			return s.Dest.Name
		}
		return fmt.Sprintf("%s(%s)", s.Dest.Name, args(s.Args))
	}
	res := ""
	if in.Result != nil {
		res = ref(in.Result) + " = "
	}
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("%sconst %d", res, in.Const)
	case OpBin:
		return fmt.Sprintf("%s%s %s", res, in.BinOp, args(in.Args))
	case OpUn:
		return fmt.Sprintf("%s%s %s", res, in.UnOp, args(in.Args))
	case OpCall:
		site := ""
		if in.Site != 0 {
			site = fmt.Sprintf(" !site %d", in.Site)
		}
		return fmt.Sprintf("%scall @%s(%s)%s", res, in.Callee, args(in.Args), site)
	case OpLoadG:
		return fmt.Sprintf("%sloadg @%s", res, in.Global)
	case OpStoreG:
		return fmt.Sprintf("storeg @%s, %s", in.Global, args(in.Args))
	case OpOutput:
		return fmt.Sprintf("output %s", args(in.Args))
	case OpBr:
		return "br " + succ(in.Succs[0])
	case OpCondBr:
		return fmt.Sprintf("condbr %s, %s, %s", ref(in.Args[0]), succ(in.Succs[0]), succ(in.Succs[1]))
	case OpRet:
		return "ret " + args(in.Args)
	}
	return "<invalid>"
}
