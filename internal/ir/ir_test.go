package ir

import (
	"strings"
	"testing"
)

// buildAbs constructs: func abs(n) { if n < 0 return -n else return n }
func buildAbs() *Function {
	b := NewFunction("abs", 1, true)
	n := b.Param(0)
	zero := b.Const(0)
	cond := b.Bin(Lt, n, zero)
	neg := b.Block("neg", 0)
	pos := b.Block("pos", 0)
	b.CondBr(cond, neg, nil, pos, nil)
	b.SetBlock(neg)
	nn := b.Un(Neg, n)
	b.Ret(nn)
	b.SetBlock(pos)
	b.Ret(n)
	return b.Fn
}

// buildLoop constructs a counted loop summing 0..n-1 using block params.
func buildLoop() *Function {
	b := NewFunction("sum", 1, true)
	n := b.Param(0)
	zero := b.Const(0)
	head := b.Block("head", 2) // (i, acc)
	body := b.Block("body", 0)
	exit := b.Block("exit", 0)
	b.Br(head, zero, zero)
	b.SetBlock(head)
	i, acc := head.Params[0], head.Params[1]
	cond := b.Bin(Lt, i, n)
	b.CondBr(cond, body, nil, exit, nil)
	b.SetBlock(body)
	one := b.Const(1)
	ni := b.Bin(Add, i, one)
	nacc := b.Bin(Add, acc, i)
	b.Br(head, ni, nacc)
	b.SetBlock(exit)
	b.Ret(acc)
	return b.Fn
}

func testModule() *Module {
	m := NewModule("test")
	m.AddGlobal("g")
	m.AddFunc(buildAbs())
	m.AddFunc(buildLoop())
	m.AssignSites()
	return m
}

func TestVerifyOK(t *testing.T) {
	m := testModule()
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	f := buildAbs()
	f.Blocks[1].Instrs = f.Blocks[1].Instrs[:1] // drop the ret in "neg"
	if err := f.Verify(); err == nil {
		t.Fatal("expected error for missing terminator")
	}
}

func TestVerifyCatchesBadBranchArity(t *testing.T) {
	f := buildLoop()
	// Entry branches to head with 2 args; drop one.
	term := f.Entry().Term()
	term.Succs[0].Args = term.Succs[0].Args[:1]
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "passes") {
		t.Fatalf("expected arity error, got %v", err)
	}
}

func TestVerifyCatchesDominanceViolation(t *testing.T) {
	f := buildAbs()
	// Use the value defined in "neg" from "pos": not dominated.
	neg, pos := f.Blocks[1], f.Blocks[2]
	nn := neg.Instrs[0].Result
	pos.Instrs[len(pos.Instrs)-1].Args[0] = nn
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "dominated") {
		t.Fatalf("expected dominance error, got %v", err)
	}
}

func TestVerifyCatchesCallArity(t *testing.T) {
	m := testModule()
	b := NewFunction("caller", 0, true)
	c := b.Const(1)
	r := b.Call("abs", c, c) // abs takes 1 arg
	b.Ret(r)
	m.AddFunc(b.Fn)
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("expected call arity error, got %v", err)
	}
}

func TestVerifyCatchesUndeclaredGlobal(t *testing.T) {
	m := NewModule("m")
	b := NewFunction("f", 0, true)
	v := b.LoadG("nope")
	b.Ret(v)
	m.AddFunc(b.Fn)
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "undeclared global") {
		t.Fatalf("expected global error, got %v", err)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := testModule()
	text := m.String()
	m2, err := Parse("test", text)
	if err != nil {
		t.Fatalf("Parse: %v\nsource:\n%s", err, text)
	}
	text2 := m2.String()
	if text != text2 {
		t.Fatalf("round trip mismatch:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := []string{
		"func @f() {\nentry:\n  frobnicate %x\n}",
		"func @f() {\nentry:\n  ret %undefined\n}",
		"func @f() {\nentry:\n  br nowhere\n}",
		"func @f() {\nentry:\n  const 3\n",
	}
	for _, src := range cases {
		if _, err := Parse("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := buildLoop()
	g := f.Clone()
	if err := g.Verify(); err != nil {
		t.Fatalf("clone does not verify: %v", err)
	}
	if f.String() != g.String() {
		t.Fatalf("clone text differs:\n%s\nvs\n%s", f.String(), g.String())
	}
	// Mutating the clone must not affect the original.
	g.Blocks[0].Instrs[0].Const = 99
	if f.Blocks[0].Instrs[0].Const == 99 {
		t.Fatal("clone shares instruction storage with original")
	}
	for _, b := range g.Blocks {
		for _, orig := range f.Blocks {
			if b == orig {
				t.Fatal("clone shares a block with original")
			}
		}
	}
}

func TestCloneKeepsSitesAndTrails(t *testing.T) {
	b := NewFunction("f", 0, true)
	c := b.Const(1)
	call := b.Call("g", c)
	b.Ret(call)
	b.Fn.Blocks[0].Instrs[1].Site = 7
	b.Fn.Blocks[0].Instrs[1].Trail = []int{3, 4}
	g := b.Fn.Clone()
	in := g.Blocks[0].Instrs[1]
	if in.Site != 7 || len(in.Trail) != 2 || in.Trail[0] != 3 {
		t.Fatalf("site/trail not preserved: %+v", in)
	}
	in.Trail[0] = 99
	if b.Fn.Blocks[0].Instrs[1].Trail[0] == 99 {
		t.Fatal("trail storage shared with original")
	}
}

func TestDominators(t *testing.T) {
	f := buildAbs()
	idom := f.Dominators()
	entry, neg, pos := f.Blocks[0], f.Blocks[1], f.Blocks[2]
	if idom[entry] != nil {
		t.Fatal("entry must have nil idom")
	}
	if idom[neg] != entry || idom[pos] != entry {
		t.Fatalf("expected entry to dominate both arms: %v %v", idom[neg], idom[pos])
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := buildLoop()
	idom := f.Dominators()
	var head, body, exit *Block
	for _, b := range f.Blocks {
		switch b.Name {
		case "head":
			head = b
		case "body":
			body = b
		case "exit":
			exit = b
		}
	}
	if idom[body] != head || idom[exit] != head {
		t.Fatalf("head must dominate body and exit, got %v %v", idom[body], idom[exit])
	}
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	f := buildLoop()
	rpo := f.ReversePostorder()
	if len(rpo) != 4 || rpo[0] != f.Entry() {
		t.Fatalf("bad RPO: %v", rpo)
	}
}

func TestAssignSitesStable(t *testing.T) {
	m := NewModule("m")
	b := NewFunction("f", 0, true)
	c := b.Const(0)
	b.Call("g", c)
	r := b.Call("g", c)
	b.Ret(r)
	m.AddFunc(b.Fn)
	g := NewFunction("g", 1, false)
	g.Ret(g.Param(0))
	m.AddFunc(g.Fn)
	if n := m.AssignSites(); n != 2 {
		t.Fatalf("assigned %d sites, want 2", n)
	}
	calls := m.Func("f").Calls()
	if calls[0].Site == calls[1].Site || calls[0].Site == 0 {
		t.Fatalf("sites not distinct: %d %d", calls[0].Site, calls[1].Site)
	}
	before := calls[0].Site
	if n := m.AssignSites(); n != 0 {
		t.Fatalf("re-assignment touched %d sites", n)
	}
	if calls[0].Site != before {
		t.Fatal("site changed on re-assignment")
	}
}

func TestRemoveFunc(t *testing.T) {
	m := testModule()
	m.RemoveFunc("abs")
	if m.Func("abs") != nil || len(m.Funcs) != 1 {
		t.Fatal("RemoveFunc failed")
	}
	m.RemoveFunc("abs") // idempotent
}

func TestModuleCloneIndependent(t *testing.T) {
	m := testModule()
	m2 := m.Clone()
	m2.RemoveFunc("abs")
	if m.Func("abs") == nil {
		t.Fatal("module clone shares function table")
	}
	if m.String() == m2.String() {
		t.Fatal("expected differing text after mutation")
	}
}

func TestBlockTermAndSuccs(t *testing.T) {
	f := buildAbs()
	if f.Entry().Term() == nil || len(f.Entry().Succs()) != 2 {
		t.Fatal("entry terminator wrong")
	}
	if len(f.Blocks[1].Succs()) != 0 {
		t.Fatal("ret should have no successors")
	}
}

func TestPredecessors(t *testing.T) {
	f := buildLoop()
	preds := f.Predecessors()
	var head *Block
	for _, b := range f.Blocks {
		if b.Name == "head" {
			head = b
		}
	}
	if len(preds[head]) != 2 {
		t.Fatalf("head should have 2 preds, got %d", len(preds[head]))
	}
}

func TestPrintParseAllOps(t *testing.T) {
	src := `global @g

func @ops(%a, %b) {
entry:
  %n = neg %a
  %t = not %b
  %q = div %n, %t
  %r = mod %q, %a
  %s = shl %r, %b
  %u = shr %s, %a
  %v = ge %u, %b
  %w = le %v, %a
  storeg @g, %w
  %z = loadg @g
  output %z
  ret %z
}
`
	m, err := Parse("allops", src)
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != src {
		t.Fatalf("round trip mismatch:\n--- want ---\n%s\n--- got ---\n%s", src, m.String())
	}
}

func TestParseSiteAnnotationRoundTrip(t *testing.T) {
	src := `func @callee(%x) {
entry:
  ret %x
}

export func @caller(%x) {
entry:
  %r = call @callee(%x) !site 42
  ret %r
}
`
	m := MustParse("site", src)
	if m.Func("caller").Calls()[0].Site != 42 {
		t.Fatal("site annotation lost")
	}
	if m.String() != src {
		t.Fatalf("round trip:\n%s", m.String())
	}
}
