package ir

import "sync"

// cloneScratch holds the remapping tables Clone fills and discards on every
// call. Cloning dominates the per-function compile path (every cache miss
// clones its whole inline closure), so the maps are pooled: clear-and-reuse
// keeps their bucket arrays warm instead of re-growing them from scratch.
type cloneScratch struct {
	vmap map[*Value]*Value
	bmap map[*Block]*Block
}

var clonePool = sync.Pool{
	New: func() any {
		return &cloneScratch{
			vmap: make(map[*Value]*Value, 64),
			bmap: make(map[*Block]*Block, 16),
		}
	},
}

// Clone returns a deep copy of the function. The copy shares nothing with
// the original: all blocks, instructions, and values are fresh, with uses
// remapped. Call-site IDs and inline trails are preserved (clones of a call
// are coupled to the original's inlining label).
func (f *Function) Clone() *Function {
	nf := &Function{
		Name:      f.Name,
		Exported:  f.Exported,
		nextValue: f.nextValue,
		nextBlock: f.nextBlock,
	}
	scratch := clonePool.Get().(*cloneScratch)
	vmap, bmap := scratch.vmap, scratch.bmap
	defer func() {
		clear(vmap)
		clear(bmap)
		clonePool.Put(scratch)
	}()

	cloneValue := func(v *Value) *Value {
		if v == nil {
			return nil
		}
		if nv, ok := vmap[v]; ok {
			return nv
		}
		nv := &Value{ID: v.ID, Name: v.Name}
		vmap[v] = nv
		return nv
	}

	for _, b := range f.Blocks {
		nb := &Block{Name: b.Name}
		bmap[b] = nb
		for _, p := range b.Params {
			np := cloneValue(p)
			np.Parm = nb
			nb.Params = append(nb.Params, np)
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	for _, b := range f.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:     in.Op,
				Const:  in.Const,
				BinOp:  in.BinOp,
				UnOp:   in.UnOp,
				Callee: in.Callee,
				Global: in.Global,
				Site:   in.Site,
			}
			if len(in.Trail) > 0 {
				ni.Trail = append([]int(nil), in.Trail...)
			}
			for _, a := range in.Args {
				ni.Args = append(ni.Args, cloneValue(a))
			}
			for _, s := range in.Succs {
				ns := Succ{Dest: bmap[s.Dest]}
				for _, a := range s.Args {
					ns.Args = append(ns.Args, cloneValue(a))
				}
				ni.Succs = append(ni.Succs, ns)
			}
			if in.Result != nil {
				nr := cloneValue(in.Result)
				nr.Def = ni
				ni.Result = nr
			}
			nb.Instrs = append(nb.Instrs, ni)
		}
	}
	return nf
}

// Clone returns a deep copy of the module.
func (m *Module) Clone() *Module {
	nm := NewModule(m.Name)
	nm.Globals = append([]string(nil), m.Globals...)
	for _, f := range m.Funcs {
		nm.AddFunc(f.Clone())
	}
	return nm
}
