package compile

import (
	"bytes"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// snapshotSizes reads the ready non-failed entries under the cache lock —
// the survivor set the differential assertions compare across heal cycles.
func snapshotSizes(fc *FnCache) map[FnKey]int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make(map[FnKey]int, len(fc.entries))
	for k, e := range fc.entries {
		ready := e.done == nil // disk-loaded entries never had a done channel
		if !ready {
			select {
			case <-e.done:
				ready = true
			default:
			}
		}
		if ready && !e.failed {
			out[k] = e.size
		}
	}
	return out
}

// fuzzSeedLog builds a valid v2 log with n records (fakeSize oracle).
func fuzzSeedLog(n int) []byte {
	buf := []byte(fnCacheHeader)
	rec := [fnRecordSize]byte{}
	for i := 0; i < n; i++ {
		k := FnKey{Hi: uint64(i)*2654435761 + 1, Lo: uint64(i) + 7}
		encodeRecord(rec[:], k, fakeSize(k))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// FuzzFnCacheStoreOpen is the differential fuzz for the incremental store:
// arbitrary bytes masquerading as a log file must (1) never panic or error
// the open path, (2) load only checksum-valid, deduplicated records —
// every loaded entry must round-trip its stored size — and (3) reach a
// clean fixed point after one Compact: the healed store reopens with zero
// corruption, zero duplicates, and exactly the entries that survived the
// first open (the differential half: load(compact(load(x))) == load(x)).
func FuzzFnCacheStoreOpen(f *testing.F) {
	valid := fuzzSeedLog(8)
	f.Add(valid)                                                                                              // pristine log
	f.Add(valid[:len(valid)-13])                                                                              // torn final record
	f.Add(append(append([]byte{}, valid...), valid[len(fnCacheHeader):len(fnCacheHeader)+2*fnRecordSize]...)) // crash re-append duplicates
	f.Add(valid[:len(fnCacheHeader)])                                                                         // header only
	f.Add([]byte("OPTFNC2\nbogus-schema\n"))                                                                  // right magic, wrong schema
	f.Add([]byte{})                                                                                           // empty file
	f.Add(bytes.Repeat([]byte{0xff}, 200))                                                                    // garbage
	flipped := append([]byte{}, valid...)
	flipped[len(fnCacheHeader)+40] ^= 0x40 // checksum break mid-log
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, fnCacheFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		fc, err := OpenFnCacheWith(FnCacheConfig{Dir: dir})
		if err != nil {
			t.Fatalf("open on arbitrary bytes must degrade, not fail: %v", err)
		}
		st := fc.Stats()
		if st.Loaded < 0 || st.Corrupt < 0 || st.Dupes < 0 {
			t.Fatalf("negative open stats: %+v", st)
		}
		if int(st.Loaded) != fc.Len() {
			t.Fatalf("loaded %d != live entries %d", st.Loaded, fc.Len())
		}

		// Every surviving entry serves its stored size as a disk hit.
		sizes := snapshotSizes(fc)
		var h, m atomic.Int64
		for k, size := range sizes {
			if got := fc.sizeOf(k, &h, &m, func() int {
				t.Fatalf("key %v: loaded entry recomputed", k)
				return 0
			}); got != size {
				t.Fatalf("key %v: size %d, snapshot says %d", k, got, size)
			}
		}

		// Heal: one compaction must reach the clean fixed point.
		if err := fc.Compact(); err != nil {
			t.Fatalf("compact: %v", err)
		}
		if err := fc.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		fc2, err := OpenFnCacheWith(FnCacheConfig{Dir: dir})
		if err != nil {
			t.Fatalf("reopen after compact: %v", err)
		}
		defer fc2.Close()
		st2 := fc2.Stats()
		if st2.Corrupt != 0 || st2.Dupes != 0 {
			t.Fatalf("compacted store not clean: corrupt=%d dupes=%d", st2.Corrupt, st2.Dupes)
		}
		if int(st2.Loaded) != len(sizes) {
			t.Fatalf("compacted store has %d entries, survivor set has %d", st2.Loaded, len(sizes))
		}
		for k, size := range snapshotSizes(fc2) {
			if want, ok := sizes[k]; !ok || want != size {
				t.Fatalf("key %v: post-compact size %d, pre-compact %d (present %v)", k, size, want, ok)
			}
		}
	})
}
