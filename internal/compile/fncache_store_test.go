package compile

// Tests for the append-log incarnation of the FnCache store: incremental
// persistence (records durable before any end-of-run Save), the LRU
// eviction bound, canonical compaction, crash recovery after a SIGKILL
// mid-append, and the 16-goroutine race suite the concurrency test tier
// runs under -race in CI.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optinline/internal/codegen"
)

// storeRecords returns the number of complete records in dir's log file
// (panicking on a missing file is fine in tests).
func storeRecords(t *testing.T, dir string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < len(fnCacheHeader) {
		return 0
	}
	return (len(data) - len(fnCacheHeader)) / fnRecordSize
}

// fakeSize is the deterministic size oracle the synthetic-key tests use:
// any path that would return something else for a key is a store bug.
func fakeSize(k FnKey) int { return int((k.Hi*31 + k.Lo) % 4096) }

// TestFnCacheAppendsIncrementally: a computed entry must be on disk before
// any Save call — the property that lets a long-running daemon crash
// without losing its run's cache work (modulo the fsync window).
func TestFnCacheAppendsIncrementally(t *testing.T) {
	dir := t.TempDir()
	fc, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var h, m atomic.Int64
	for i := 1; i <= 5; i++ {
		k := FnKey{Hi: uint64(i), Lo: uint64(i * 7)}
		fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
		if got := storeRecords(t, dir); got != i {
			t.Fatalf("after %d computes: %d records on disk (no Save was called)", i, got)
		}
	}
	// A second cache opened on the same dir sees everything, Save or not.
	fc2, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := fc2.Stats(); st.Loaded != 5 || st.Corrupt != 0 {
		t.Fatalf("second open loaded %d corrupt %d, want 5 / 0", st.Loaded, st.Corrupt)
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFnCacheLRUEviction: the MaxEntries bound must hold, evict least
// recently used first, never evict in-flight entries, and keep sizes
// correct across the recompute of an evicted key.
func TestFnCacheLRUEviction(t *testing.T) {
	fc, err := OpenFnCacheWith(FnCacheConfig{MaxEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	var h, m atomic.Int64
	get := func(i int) int {
		k := FnKey{Hi: uint64(i), Lo: 9}
		return fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
	}
	for i := 1; i <= 5; i++ {
		get(i)
	}
	if n := fc.Len(); n != 3 {
		t.Fatalf("Len = %d after 5 inserts with MaxEntries 3", n)
	}
	if ev := fc.Stats().Evicted; ev != 2 {
		t.Fatalf("Evicted = %d, want 2", ev)
	}
	// Keys 1 and 2 were evicted; key 5 is resident. Touch order matters:
	// hitting 3 then inserting a new key must evict 4, not 3.
	missesBefore := m.Load()
	get(5)
	if m.Load() != missesBefore {
		t.Fatal("resident key 5 recomputed")
	}
	get(3) // touch: 3 becomes most recent
	get(6) // evicts 4 (now least recent)
	missesBefore = m.Load()
	get(3)
	if m.Load() != missesBefore {
		t.Fatal("touched key 3 was evicted instead of key 4")
	}
	get(4)
	if m.Load() != missesBefore+1 {
		t.Fatal("evicted key 4 did not recompute")
	}
	// Evicted keys recompute to the same size — the bound changes cost,
	// never answers.
	for i := 1; i <= 6; i++ {
		k := FnKey{Hi: uint64(i), Lo: 9}
		if got := fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) }); got != fakeSize(k) {
			t.Fatalf("key %d: size %d, want %d", i, got, fakeSize(k))
		}
	}
}

// TestFnCacheEvictionPinsInFlight: an entry being computed has no LRU node
// and must survive a flood of inserts that evicts everything ready.
func TestFnCacheEvictionPinsInFlight(t *testing.T) {
	fc, err := OpenFnCacheWith(FnCacheConfig{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	var h, m atomic.Int64
	inCompute := make(chan struct{})
	release := make(chan struct{})
	slow := FnKey{Hi: 99, Lo: 99}
	done := make(chan int, 1)
	go func() {
		done <- fc.sizeOf(slow, &h, &m, func() int {
			close(inCompute)
			<-release
			return 1234
		})
	}()
	<-inCompute
	for i := 1; i <= 10; i++ {
		k := FnKey{Hi: uint64(i), Lo: 1}
		fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
	}
	close(release)
	if got := <-done; got != 1234 {
		t.Fatalf("in-flight entry returned %d, want 1234", got)
	}
	// The slow entry must now be resident (it was published after the flood).
	missesBefore := m.Load()
	if got := fc.sizeOf(slow, &h, &m, func() int { return 0 }); got != 1234 {
		t.Fatalf("slow entry lookup = %d, want 1234", got)
	}
	if m.Load() != missesBefore {
		t.Fatal("slow entry was evicted while in flight")
	}
}

// TestFnCacheCompactCanonical: compaction output is a pure function of the
// cache contents — append order, duplicate records, and corrupt junk must
// not leak into the compacted bytes — and eviction bounds the store via
// compaction (dropped entries are scrubbed).
func TestFnCacheCompactCanonical(t *testing.T) {
	keys := make([]FnKey, 12)
	for i := range keys {
		keys[i] = FnKey{Hi: uint64(i * 17), Lo: uint64(i*i + 3)}
	}
	build := func(order []int) string {
		dir := t.TempDir()
		fc, err := OpenFnCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		var h, m atomic.Int64
		for _, i := range order {
			k := keys[i]
			fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
		}
		if err := fc.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := fc.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	fwd := make([]int, len(keys))
	rev := make([]int, len(keys))
	for i := range keys {
		fwd[i] = i
		rev[i] = len(keys) - 1 - i
	}
	a, b := build(fwd), build(rev)
	if a != b {
		t.Fatal("compacted logs differ across append orders")
	}

	// Dupes scrub: replay the same key set twice through two cache opens
	// (the second open dedups, but appending a fresh computation of an
	// evicted key duplicates the record), then compact and reopen clean.
	dir := t.TempDir()
	fc, err := OpenFnCacheWith(FnCacheConfig{Dir: dir, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	var h, m atomic.Int64
	for round := 0; round < 2; round++ {
		for _, k := range keys {
			k := k
			fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
		}
	}
	if fc.Stats().Evicted == 0 {
		t.Fatal("bound never evicted; dupes scenario not exercised")
	}
	if n := storeRecords(t, dir); n <= len(keys) {
		t.Fatalf("expected duplicate records from evict-recompute, have %d for %d keys", n, len(keys))
	}
	reopened, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := reopened.Stats(); st.Dupes == 0 || st.Corrupt != 0 {
		t.Fatalf("reopen of dup-bearing log: %+v (want dupes > 0, corrupt 0)", st)
	}
	if err := reopened.Compact(); err != nil {
		t.Fatal(err)
	}
	clean, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := clean.Stats(); st.Dupes != 0 || st.Corrupt != 0 || st.Loaded != int64(len(keys)) {
		t.Fatalf("compacted log reopen: %+v (want %d loaded, 0 dupes, 0 corrupt)", st, len(keys))
	}
}

// TestFnCacheStoreRace is the concurrency tier's store hammer: 16
// goroutines mixing lookups, inserts, evictions (via a tight MaxEntries),
// Save, and Compact against one shared persistent cache. Run under -race
// by ci.sh; correctness assertions are that every lookup returns the
// deterministic oracle size and the final log reopens with no corruption.
func TestFnCacheStoreRace(t *testing.T) {
	dir := t.TempDir()
	fc, err := OpenFnCacheWith(FnCacheConfig{Dir: dir, MaxEntries: 64, FsyncEvery: 16})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	const opsPerG = 400
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			var h, m atomic.Int64
			for op := 0; op < opsPerG; op++ {
				switch {
				case op%97 == 96:
					if err := fc.Save(); err != nil {
						errs <- fmt.Errorf("goroutine %d: Save: %w", g, err)
						return
					}
				case op%139 == 138:
					if err := fc.Compact(); err != nil {
						errs <- fmt.Errorf("goroutine %d: Compact: %w", g, err)
						return
					}
				default:
					// 200 distinct keys against a 64-entry bound: constant
					// churn of insert/evict/recompute across goroutines.
					k := FnKey{Hi: uint64(rng.Intn(200)), Lo: uint64(rng.Intn(2)) + 1}
					want := fakeSize(k)
					if got := fc.sizeOf(k, &h, &m, func() int { return want }); got != want {
						errs <- fmt.Errorf("goroutine %d: key %v: size %d, want %d", g, k, got, want)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := final.Stats()
	if st.Corrupt != 0 {
		t.Fatalf("store corrupt after concurrent run: %+v", st)
	}
	if st.Loaded == 0 {
		t.Fatalf("nothing persisted by concurrent run: %+v", st)
	}
	var h, m atomic.Int64
	for hi := 0; hi < 200; hi++ {
		for lo := 1; lo <= 2; lo++ {
			k := FnKey{Hi: uint64(hi), Lo: uint64(lo)}
			want := fakeSize(k)
			if got := final.sizeOf(k, &h, &m, func() int { return want }); got != want {
				t.Fatalf("key %v after reopen: %d, want %d", k, got, want)
			}
		}
	}
}

// TestFnCacheSharedCompilerRace hammers one shared cache through real
// Compilers — the inlined daemon's sharing shape — from 16 goroutines
// evaluating overlapping configurations of the twin module, asserting
// every size matches the single-threaded reference.
func TestFnCacheSharedCompilerRace(t *testing.T) {
	mod := twinModule(t)
	want := evalAll(New(mod, codegen.TargetX86))

	dir := t.TempDir()
	shared, err := OpenFnCacheWith(FnCacheConfig{Dir: dir, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: shared})
			for round := 0; round < 3; round++ {
				got := evalAll(c)
				for k, w := range want {
					if got[k] != w {
						errs <- fmt.Errorf("goroutine %d round %d cfg %s: %d, want %d", g, round, k, got[k], w)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFnCacheCrashRecovery kills a writer process with SIGKILL while it is
// appending records, then reopens the store: every record the kernel saw
// completely written must load, at most the final record may be torn, and
// nothing may load with a wrong size.
func TestFnCacheCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestFnCacheCrashWriterHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "FNCACHE_CRASH_HELPER=1", "FNCACHE_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the helper has demonstrably appended a few records, then
	// kill it hard mid-stream.
	path := filepath.Join(dir, fnCacheFile)
	deadline := time.Now().Add(20 * time.Second)
	for {
		if fi, err := os.Stat(path); err == nil && fi.Size() > int64(len(fnCacheHeader)+20*fnRecordSize) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("helper never wrote 20 records")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() // reaps; exit status is the kill, not meaningful

	fc, err := OpenFnCache(dir)
	if err != nil {
		t.Fatalf("store must open after crash: %v", err)
	}
	st := fc.Stats()
	if st.Loaded < 20 {
		t.Fatalf("crash lost completed appends: loaded %d", st.Loaded)
	}
	if st.Corrupt > 1 {
		t.Fatalf("more than a torn tail after crash: %+v", st)
	}
	// Every loaded record must carry the helper's deterministic size, and
	// re-deriving lost keys must not conflict with survivors: the recovered
	// cache answers the oracle for the whole key range the helper walked.
	var h, m atomic.Int64
	for i := uint64(1); i <= 20; i++ {
		k := FnKey{Hi: i, Lo: i * 3}
		want := fakeSize(k)
		if got := fc.sizeOf(k, &h, &m, func() int { return want }); got != want {
			t.Fatalf("key %v after crash recovery: %d, want %d", k, got, want)
		}
	}
	if h.Load() == 0 {
		t.Fatal("no crash survivor was served from disk")
	}
	// The reopened store heals: appends continue on a record boundary, and
	// a further reopen sees a consistent log again.
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cst := clean.Stats(); cst.Corrupt != 0 && !(st.Corrupt == 0 && cst.Corrupt == 0) {
		// Open truncated the torn tail, so the second open must be clean.
		t.Fatalf("torn tail not healed: %+v", cst)
	}
}

// TestFnCacheCrashWriterHelper is the subprocess body for
// TestFnCacheCrashRecovery; it appends records forever until killed.
func TestFnCacheCrashWriterHelper(t *testing.T) {
	if os.Getenv("FNCACHE_CRASH_HELPER") != "1" {
		t.Skip("helper process")
	}
	fc, err := OpenFnCacheWith(FnCacheConfig{Dir: os.Getenv("FNCACHE_CRASH_DIR"), FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	var h, m atomic.Int64
	for i := uint64(1); ; i++ {
		k := FnKey{Hi: i, Lo: i * 3}
		fc.sizeOf(k, &h, &m, func() int { return fakeSize(k) })
		time.Sleep(200 * time.Microsecond)
	}
}

// TestFnCacheRecordEncoding pins the record layout: 32 bytes, little-endian
// key/size/checksum — the compatibility contract Compact and load share.
func TestFnCacheRecordEncoding(t *testing.T) {
	var rec [fnRecordSize]byte
	k := FnKey{Hi: 0x1122334455667788, Lo: 0x99aabbccddeeff00}
	encodeRecord(rec[:], k, 777)
	if binary.LittleEndian.Uint64(rec[0:8]) != k.Hi ||
		binary.LittleEndian.Uint64(rec[8:16]) != k.Lo ||
		binary.LittleEndian.Uint64(rec[16:24]) != 777 {
		t.Fatal("record fields not little-endian at fixed offsets")
	}
	if binary.LittleEndian.Uint64(rec[24:32]) != fnRecordSum(k.Hi, k.Lo, 777) {
		t.Fatal("checksum word mismatch")
	}
}
