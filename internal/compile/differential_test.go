package compile

import (
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/workload"
)

// TestFullPipelinePreservesSemanticsOnCorpus is the end-to-end differential
// test: on generated translation units, the complete pipeline — inlining
// under an arbitrary configuration, the optimizer, and label-based
// dead-function elimination — must preserve observable behaviour of the
// exported entry point.
func TestFullPipelinePreservesSemanticsOnCorpus(t *testing.T) {
	p := workload.Profile{
		Name: "difftest", Files: 10, TotalEdges: 70,
		ConstArgProb: 0.4, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.12, BranchProb: 0.5, MultiRootPct: 0.15,
	}
	bench := workload.Generate(p)
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for _, f := range bench.Files {
		if f.Module.Func("entry") == nil {
			continue
		}
		c := New(f.Module, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		base, err := interp.Run(f.Module, "entry", []int64{4}, interp.Options{Fuel: 10_000_000})
		if err != nil {
			continue // exponential dynamic call tree; size-only file
		}
		for trial := 0; trial < 6; trial++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				if rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			m, err := c.Build(cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", f.Name, cfg, err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("%s %v: post-pipeline verify: %v", f.Name, cfg, err)
			}
			got, err := interp.Run(m, "entry", []int64{4}, interp.Options{Fuel: 10_000_000})
			if err != nil {
				t.Fatalf("%s %v: run: %v", f.Name, cfg, err)
			}
			if got.Observable() != base.Observable() {
				t.Fatalf("%s %v: pipeline changed behaviour", f.Name, cfg)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d configurations checked; corpus too hostile", checked)
	}
}

// TestSizeMonotonicityUnderDFE: fully inlining every call edge of an
// internal function can never be worse than inlining all of them except
// leaving the function alive artificially — i.e., DFE only helps.
func TestSizeMonotonicityUnderDFE(t *testing.T) {
	p := workload.Profile{
		Name: "dfemono", Files: 6, TotalEdges: 40,
		ConstArgProb: 0.3, HubProb: 0.2, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	bench := workload.Generate(p)
	for _, f := range bench.Files {
		c := New(f.Module, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		// All edges inlined: every internal callee with incoming edges dies.
		all := callgraph.NewConfig()
		for _, e := range g.Edges {
			all.Set(e.Site, true)
		}
		m, err := c.Build(all)
		if err != nil {
			continue // growth bound; fine
		}
		removable := g.CalleesAllInline(all)
		for name, ok := range removable {
			if !ok {
				continue
			}
			if fn := m.Func(name); fn != nil && !fn.Exported {
				t.Fatalf("%s: fully inlined internal %s not eliminated", f.Name, name)
			}
		}
	}
}
