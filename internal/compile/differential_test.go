package compile

import (
	"fmt"
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/lang"
	"optinline/internal/workload"
)

// TestFullPipelinePreservesSemanticsOnCorpus is the end-to-end differential
// test: on generated translation units, the complete pipeline — inlining
// under an arbitrary configuration, the optimizer, and label-based
// dead-function elimination — must preserve observable behaviour of the
// exported entry point.
func TestFullPipelinePreservesSemanticsOnCorpus(t *testing.T) {
	p := workload.Profile{
		Name: "difftest", Files: 10, TotalEdges: 70,
		ConstArgProb: 0.4, HubProb: 0.25, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.12, BranchProb: 0.5, MultiRootPct: 0.15,
	}
	bench := workload.Generate(p)
	rng := rand.New(rand.NewSource(31))
	checked := 0
	for _, f := range bench.Files {
		if f.Module.Func("entry") == nil {
			continue
		}
		c := New(f.Module, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		base, err := interp.Run(f.Module, "entry", []int64{4}, interp.Options{Fuel: 10_000_000})
		if err != nil {
			continue // exponential dynamic call tree; size-only file
		}
		for trial := 0; trial < 6; trial++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				if rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			m, err := c.Build(cfg)
			if err != nil {
				t.Fatalf("%s %v: %v", f.Name, cfg, err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("%s %v: post-pipeline verify: %v", f.Name, cfg, err)
			}
			got, err := interp.Run(m, "entry", []int64{4}, interp.Options{Fuel: 10_000_000})
			if err != nil {
				t.Fatalf("%s %v: run: %v", f.Name, cfg, err)
			}
			if got.Observable() != base.Observable() {
				t.Fatalf("%s %v: pipeline changed behaviour", f.Name, cfg)
			}
			checked++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d configurations checked; corpus too hostile", checked)
	}
}

// TestDifferentialFuzzGeneratedPrograms is the second differential front:
// where the corpus test above stresses synthetic IR shapes, this one
// stresses the full front end. Random MinC sources from the seeded
// generator are lowered, compiled under random inlining configurations,
// and executed; the observable behaviour (return value, output stream)
// must match the no-inline baseline for every configuration and argument.
// It also cross-checks the memoized per-component size against the size of
// the actually-built module, so the memo engine is fuzzed on lang-lowered
// code, not just on workload-generated IR.
func TestDifferentialFuzzGeneratedPrograms(t *testing.T) {
	const fuel = 40_000_000
	args := []int64{0, 4, 9}
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for seed := int64(1); seed <= 30; seed++ {
		name := fmt.Sprintf("fuzz%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		mod, err := lang.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		c := New(mod, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		base := make([]interp.Result, len(args))
		for i, a := range args {
			r, err := interp.Run(mod, "entry", []int64{a}, interp.Options{Fuel: fuel})
			if err != nil {
				t.Fatalf("seed %d arg %d: baseline run: %v\n%s", seed, a, err, src)
			}
			base[i] = r
		}
		for trial := 0; trial < 8; trial++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				// Trial 0 inlines everything (maximum DFE pressure);
				// later trials sample the space.
				if trial == 0 || rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			m, err := c.Build(cfg)
			if err != nil {
				t.Fatalf("seed %d cfg %v: build: %v", seed, cfg, err)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("seed %d cfg %v: post-pipeline verify: %v", seed, cfg, err)
			}
			if got, want := c.Size(cfg), codegen.ModuleSize(m, codegen.TargetX86); got != want {
				t.Fatalf("seed %d cfg %v: memoized size %d != built-module size %d", seed, cfg, got, want)
			}
			for i, a := range args {
				got, err := interp.Run(m, "entry", []int64{a}, interp.Options{Fuel: fuel})
				if err != nil {
					t.Fatalf("seed %d cfg %v arg %d: run: %v", seed, cfg, a, err)
				}
				if got.Observable() != base[i].Observable() {
					t.Fatalf("seed %d cfg %v arg %d: pipeline changed behaviour\n%s", seed, cfg, a, src)
				}
				checked++
			}
		}
	}
	if checked < 300 {
		t.Fatalf("only %d program/config/arg triples checked; generator too timid", checked)
	}
}

// TestCheckedModeFuzzGeneratedPrograms pushes every generated seed through
// checked compilation mode: invariants verified after every inline step and
// every optimization pass, plus the post-pipeline analyzer audit. A
// violation anywhere fails the build with a stage/pass attribution, so this
// is the analyzer suite's false-positive regression test as much as the
// pipeline's correctness test. It also pins checked-mode sizes to the
// memoized fast path's, and asserts the frontend lints stay silent in the
// categories the generator guarantees absent (generated programs do contain
// write-only locals, so unused-local is deliberately not on that list).
func TestCheckedModeFuzzGeneratedPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cleanLints := []string{"use-before-init", "unreachable-stmt", "shadow"}
	verified := 0
	for seed := int64(1); seed <= 30; seed++ {
		name := fmt.Sprintf("chk%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		prog, err := lang.Parse(name, src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		lints := lang.Lint(name, prog)
		if lints.HasErrors() {
			t.Fatalf("seed %d: lints at error severity on generated code:\n%s", seed, lints.Text())
		}
		for _, analyzer := range cleanLints {
			if ds := lints.ByAnalyzer(analyzer); len(ds) > 0 {
				t.Fatalf("seed %d: false-positive %s lints on generated code:\n%s\n%s",
					seed, analyzer, ds.Text(), src)
			}
		}
		mod, err := lang.Lower(name, prog)
		if err != nil {
			t.Fatalf("seed %d: lower: %v", seed, err)
		}
		plain := New(mod, codegen.TargetX86)
		chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
		g := chk.Graph()
		cfgs := []*callgraph.Config{callgraph.NewConfig()}
		all := callgraph.NewConfig()
		for _, e := range g.Edges {
			all.Set(e.Site, true)
		}
		cfgs = append(cfgs, all)
		for trial := 0; trial < 3; trial++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				if rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			cfgs = append(cfgs, cfg)
		}
		for _, cfg := range cfgs {
			got, want := chk.Size(cfg), plain.Size(cfg)
			if err := chk.CheckFailure(); err != nil {
				t.Fatalf("seed %d cfg %v: checked mode: %v\n%s", seed, cfg, err, src)
			}
			if got != want {
				t.Fatalf("seed %d cfg %v: checked size %d != memoized size %d", seed, cfg, got, want)
			}
			verified++
		}
	}
	if verified < 100 {
		t.Fatalf("only %d checked configurations; corpus too small", verified)
	}
}

// TestDeltaFuzzMatchesFullAndChecked is the delta engine's differential
// front: across the 30-seed generated-program corpus, every configuration is
// priced three ways — incrementally (SizeDelta/Rebase against a handle),
// through the whole-configuration memo path (-no-delta oracle), and in
// checked compilation mode — and all three must agree byte-for-byte. The
// toggle sets deliberately include ones that kill functions via label-based
// DFE (inline every incoming edge of an internal callee) and ones that
// resurrect them again from a rebased all-inline handle.
func TestDeltaFuzzMatchesFullAndChecked(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	compared := 0
	for seed := int64(1); seed <= 30; seed++ {
		name := fmt.Sprintf("dlt%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		mod, err := lang.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		delta := New(mod, codegen.TargetX86)
		full := New(mod, codegen.TargetX86)
		full.SetDelta(false)
		chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
		g := delta.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		sites := g.Sites()
		base := delta.Sized(callgraph.NewConfig())

		// Five toggle sets per seed: everything (maximum DFE kill pressure),
		// one internal callee's complete incoming-edge set (a targeted kill),
		// and three random samples.
		sets := [][]int{sites}
		victim := ""
		for _, e := range g.Edges {
			if callee := delta.Module().Func(e.Callee); callee != nil && !callee.Exported {
				victim = e.Callee
				break
			}
		}
		if victim != "" {
			var in []int
			for _, e := range g.Edges {
				if e.Callee == victim {
					in = append(in, e.Site)
				}
			}
			sets = append(sets, in)
		}
		for len(sets) < 5 {
			var ts []int
			for _, s := range sites {
				if rng.Intn(2) == 0 {
					ts = append(ts, s)
				}
			}
			sets = append(sets, ts)
		}
		for _, ts := range sets {
			cfg := callgraph.NewConfig()
			for _, s := range ts {
				cfg.Set(s, true)
			}
			got := delta.SizeDelta(base, ts)
			want := full.Size(cfg)
			chkGot := chk.Size(cfg)
			if err := chk.CheckFailure(); err != nil {
				t.Fatalf("seed %d cfg %v: checked mode: %v\n%s", seed, cfg, err, src)
			}
			if got != want || got != chkGot {
				t.Fatalf("seed %d cfg %v: delta %d / full %d / checked %d disagree",
					seed, cfg, got, want, chkGot)
			}
			compared++
		}

		// Rebase onto all-inline, then un-inline single sites: each probe can
		// resurrect a DFE-killed callee, and must still match both oracles.
		reb := delta.Rebase(base, sites)
		allCfg := callgraph.NewConfig()
		for _, s := range sites {
			allCfg.Set(s, true)
		}
		if got, want := reb.Size(), full.Size(allCfg); got != want {
			t.Fatalf("seed %d: rebased all-inline size %d != full %d", seed, got, want)
		}
		for _, s := range sites[:min(3, len(sites))] {
			cfg := allCfg.Clone().Set(s, false)
			got := delta.SizeDelta(reb, []int{s})
			want := full.Size(cfg)
			chkGot := chk.Size(cfg)
			if err := chk.CheckFailure(); err != nil {
				t.Fatalf("seed %d cfg %v: checked mode: %v\n%s", seed, cfg, err, src)
			}
			if got != want || got != chkGot {
				t.Fatalf("seed %d resurrect %d: delta %d / full %d / checked %d disagree",
					seed, s, got, want, chkGot)
			}
			compared++
		}
	}
	if compared < 100 {
		t.Fatalf("only %d configurations compared; corpus too trivial", compared)
	}
}

// TestSizeMonotonicityUnderDFE: fully inlining every call edge of an
// internal function can never be worse than inlining all of them except
// leaving the function alive artificially — i.e., DFE only helps.
func TestSizeMonotonicityUnderDFE(t *testing.T) {
	p := workload.Profile{
		Name: "dfemono", Files: 6, TotalEdges: 40,
		ConstArgProb: 0.3, HubProb: 0.2, BigBodyProb: 0.2, LoopProb: 0.3,
		RecProb: 0, BranchProb: 0.4, MultiRootPct: 0.1,
	}
	bench := workload.Generate(p)
	for _, f := range bench.Files {
		c := New(f.Module, codegen.TargetX86)
		g := c.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		// All edges inlined: every internal callee with incoming edges dies.
		all := callgraph.NewConfig()
		for _, e := range g.Edges {
			all.Set(e.Site, true)
		}
		m, err := c.Build(all)
		if err != nil {
			continue // growth bound; fine
		}
		removable := g.CalleesAllInline(all)
		for name, ok := range removable {
			if !ok {
				continue
			}
			if fn := m.Func(name); fn != nil && !fn.Exported {
				t.Fatalf("%s: fully inlined internal %s not eliminated", f.Name, name)
			}
		}
	}
}
