package compile

import (
	"math/rand"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
)

// TestSizeDeltaMatchesSizeOnCorpus is the exactness theorem of the delta
// engine: for arbitrary bases and toggle sets, SizeDelta must equal Size of
// the toggled configuration on a delta-free compiler.
func TestSizeDeltaMatchesSizeOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, f := range memoCorpus(t) {
		delta := New(f.Module, codegen.TargetX86)
		full := New(f.Module, codegen.TargetX86)
		full.SetDelta(false)
		sites := delta.Graph().Sites()

		// Random base, including the clean slate on the first trial.
		for trial := 0; trial < 4; trial++ {
			baseCfg := callgraph.NewConfig()
			if trial > 0 {
				for _, s := range sites {
					if rng.Intn(2) == 0 {
						baseCfg.Set(s, true)
					}
				}
			}
			base := delta.Sized(baseCfg)
			if got, want := base.Size(), full.Size(baseCfg); got != want {
				t.Fatalf("%s base %v: Sized %d != Size %d", f.Name, baseCfg, got, want)
			}
			// Single-site toggles (the autotuner's probes) ...
			for _, s := range sites {
				cfg := baseCfg.Clone().Set(s, !baseCfg.Inline(s))
				if got, want := delta.SizeDelta(base, []int{s}), full.Size(cfg); got != want {
					t.Fatalf("%s base %v toggle %d: delta %d != full %d",
						f.Name, baseCfg, s, got, want)
				}
			}
			// ... and multi-site toggle sets (the group extension's probes).
			var multi []int
			for _, s := range sites {
				if rng.Intn(3) == 0 {
					multi = append(multi, s)
				}
			}
			cfg := baseCfg.Clone()
			for _, s := range multi {
				cfg.Set(s, !baseCfg.Inline(s))
			}
			if got, want := delta.SizeDelta(base, multi), full.Size(cfg); got != want {
				t.Fatalf("%s base %v toggles %v: delta %d != full %d",
					f.Name, baseCfg, multi, got, want)
			}
		}
	}
}

// TestRebaseAdvancesHandle: Rebase must price the toggled configuration
// exactly and hand back a handle that remains a correct base for further
// deltas — the autotuner's round-to-round advance.
func TestRebaseAdvancesHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, f := range memoCorpus(t) {
		delta := New(f.Module, codegen.TargetX86)
		full := New(f.Module, codegen.TargetX86)
		full.SetDelta(false)
		sites := delta.Graph().Sites()

		handle := delta.Sized(callgraph.NewConfig())
		cfg := callgraph.NewConfig()
		for step := 0; step < 4; step++ {
			var toggles []int
			for _, s := range sites {
				if rng.Intn(3) == 0 {
					toggles = append(toggles, s)
				}
			}
			for _, s := range toggles {
				cfg.Set(s, !cfg.Inline(s))
			}
			handle = delta.Rebase(handle, toggles)
			if got, want := handle.Size(), full.Size(cfg); got != want {
				t.Fatalf("%s step %d: rebased size %d != full %d", f.Name, step, got, want)
			}
			if !handle.Config().Equal(cfg) {
				t.Fatalf("%s step %d: rebased config %v != %v", f.Name, step, handle.Config(), cfg)
			}
			// The rebased handle must still price probes exactly.
			s := sites[rng.Intn(len(sites))]
			probe := cfg.Clone().Set(s, !cfg.Inline(s))
			if got, want := delta.SizeDelta(handle, []int{s}), full.Size(probe); got != want {
				t.Fatalf("%s step %d probe %d: delta %d != full %d", f.Name, step, s, got, want)
			}
		}
	}
}

// TestDeltaCounterParity: a round of the autotuner's request pattern must
// leave the evaluation and cache-hit counters identical whether it was
// priced incrementally or through whole-configuration Size calls — the
// counters are printed on stdout by the CLIs, so parity is part of the
// byte-identical-output contract.
func TestDeltaCounterParity(t *testing.T) {
	for _, f := range memoCorpus(t) {
		delta := New(f.Module, codegen.TargetX86)
		full := New(f.Module, codegen.TargetX86)
		full.SetDelta(false)
		sites := delta.Graph().Sites()

		// Delta path: base handle, one probe per site, rebase on the winners.
		base := delta.Sized(callgraph.NewConfig())
		for _, s := range sites {
			delta.SizeDelta(base, []int{s})
		}
		kept := sites[:1+len(sites)/2]
		delta.Rebase(base, kept)

		// Full path: the same requests as whole configurations.
		baseCfg := callgraph.NewConfig()
		full.Size(baseCfg)
		for _, s := range sites {
			full.Size(baseCfg.Clone().Set(s, true))
		}
		next := callgraph.NewConfig()
		for _, s := range kept {
			next.Set(s, true)
		}
		full.Size(next)

		if d, w := delta.Evaluations(), full.Evaluations(); d != w {
			t.Fatalf("%s: delta evaluations %d != full %d", f.Name, d, w)
		}
		if d, w := delta.CacheHits(), full.CacheHits(); d != w {
			t.Fatalf("%s: delta cache hits %d != full %d", f.Name, d, w)
		}
		if delta.DeltaStats().Evals == 0 {
			t.Fatalf("%s: delta engine never engaged", f.Name)
		}
		if full.DeltaStats().Evals != 0 {
			t.Fatalf("%s: -no-delta compiler priced %d configs incrementally",
				f.Name, full.DeltaStats().Evals)
		}
	}
}

// TestDeltaDisabledFallsBack: with the engine off (SetDelta, memo off, or
// checked mode) the delta API must transparently become the classic path.
func TestDeltaDisabledFallsBack(t *testing.T) {
	f := memoCorpus(t)[0]
	mk := func(opt func(*Compiler)) *Compiler {
		c := New(f.Module, codegen.TargetX86)
		opt(c)
		return c
	}
	cases := map[string]*Compiler{
		"delta-off": mk(func(c *Compiler) { c.SetDelta(false) }),
		"memo-off":  mk(func(c *Compiler) { c.SetMemoize(false) }),
		"checked":   NewWithOptions(f.Module, codegen.TargetX86, Options{Check: true}),
	}
	ref := New(f.Module, codegen.TargetX86)
	ref.SetDelta(false)
	s := ref.Graph().Sites()[0]
	probe := callgraph.NewConfig().Set(s, true)
	for name, c := range cases {
		if c.DeltaEnabled() {
			t.Fatalf("%s: DeltaEnabled() = true", name)
		}
		if c.DeltaBase(callgraph.NewConfig()) != nil {
			t.Fatalf("%s: DeltaBase returned a handle", name)
		}
		base := c.Sized(callgraph.NewConfig())
		if got, want := c.SizeDelta(base, []int{s}), ref.Size(probe); got != want {
			t.Fatalf("%s: fallback SizeDelta %d != Size %d", name, got, want)
		}
		if got := c.DeltaStats().Evals; got != 0 {
			t.Fatalf("%s: %d delta evals despite disabled engine", name, got)
		}
	}
}

// TestSizeDeltaParallelMatchesSequential: parallel probing must return the
// same sizes in the same order as sequential, with identical counters
// (single-flight dedupes shared work).
func TestSizeDeltaParallelMatchesSequential(t *testing.T) {
	f := memoCorpus(t)[0]
	seq := New(f.Module, codegen.TargetX86)
	par := New(f.Module, codegen.TargetX86)
	sites := seq.Graph().Sites()
	toggles := make([][]int, len(sites))
	for i, s := range sites {
		toggles[i] = []int{s}
	}
	sb := seq.Sized(callgraph.NewConfig())
	pb := par.Sized(callgraph.NewConfig())
	want := seq.SizeDeltaParallel(sb, toggles, 1)
	got := par.SizeDeltaParallel(pb, toggles, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("toggle %v: parallel %d != sequential %d", toggles[i], got[i], want[i])
		}
	}
	if g, w := par.Evaluations(), seq.Evaluations(); g != w {
		t.Fatalf("parallel evaluations %d != sequential %d", g, w)
	}
}

// TestDeltaRecomputesOnlyDirtyClosure: single-edge probes must on the whole
// touch fewer functions than the module holds — the perf claim behind the
// engine. A file whose candidate graph reaches everything from one caller
// can legitimately dirty every function, so the assertion is corpus-wide:
// somewhere the dirty set must be a strict subset, and it can never exceed
// the function count.
func TestDeltaRecomputesOnlyDirtyClosure(t *testing.T) {
	sparedSomewhere := false
	checked := 0
	for _, f := range memoCorpus(t) {
		c := New(f.Module, codegen.TargetX86)
		if len(c.memo.funcs) < 4 {
			continue
		}
		base := c.Sized(callgraph.NewConfig())
		for _, e := range c.Graph().Edges {
			before := c.DeltaStats()
			c.SizeDelta(base, []int{e.Site})
			ds := c.DeltaStats()
			if ds.Evals != before.Evals+1 {
				t.Fatalf("%s: delta evals %d, want %d", f.Name, ds.Evals, before.Evals+1)
			}
			dirty := ds.DirtyFuncs - before.DirtyFuncs
			if dirty > int64(len(c.memo.funcs)) {
				t.Fatalf("%s site %d: dirtied %d of %d functions",
					f.Name, e.Site, dirty, len(c.memo.funcs))
			}
			if dirty < int64(len(c.memo.funcs)) {
				sparedSomewhere = true
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no file with enough functions in corpus")
	}
	if !sparedSomewhere {
		t.Fatal("every single-edge probe dirtied the whole module; delta engine saves nothing")
	}
}
