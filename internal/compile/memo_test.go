package compile

import (
	"math/rand"
	"sync"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/workload"
)

// memoCorpus returns generated translation units with non-trivial call
// graphs, covering hubs, loops, recursion, and multiple components.
func memoCorpus(t testing.TB) []workload.File {
	p := workload.Profile{
		Name: "memo", Files: 12, TotalEdges: 90,
		ConstArgProb: 0.4, HubProb: 0.3, BigBodyProb: 0.25, LoopProb: 0.4,
		RecProb: 0.15, BranchProb: 0.5, MultiRootPct: 0.2,
	}
	var out []workload.File
	for _, f := range workload.Generate(p).Files {
		c := New(f.Module, codegen.TargetX86)
		if len(c.Graph().Edges) > 0 {
			out = append(out, f)
		}
	}
	if len(out) < 4 {
		t.Fatalf("corpus too trivial: %d usable files", len(out))
	}
	return out
}

// TestMemoizedSizeMatchesWholeModule is the exactness theorem of the memo
// engine: for arbitrary configurations, the sum of cached per-function
// sizes over the surviving functions equals the size of the whole-module
// pipeline.
func TestMemoizedSizeMatchesWholeModule(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, f := range memoCorpus(t) {
		memo := New(f.Module, codegen.TargetX86)
		direct := New(f.Module, codegen.TargetX86)
		direct.SetMemoize(false)
		g := memo.Graph()
		cfgs := []*callgraph.Config{callgraph.NewConfig()}
		all := callgraph.NewConfig()
		for _, e := range g.Edges {
			all.Set(e.Site, true)
		}
		cfgs = append(cfgs, all)
		for trial := 0; trial < 12; trial++ {
			cfg := callgraph.NewConfig()
			for _, e := range g.Edges {
				if rng.Intn(2) == 0 {
					cfg.Set(e.Site, true)
				}
			}
			cfgs = append(cfgs, cfg)
		}
		for _, cfg := range cfgs {
			got, want := memo.Size(cfg), direct.Size(cfg)
			if got != want {
				t.Fatalf("%s %v: memoized size %d != whole-module size %d",
					f.Name, cfg, got, want)
			}
		}
		cs := memo.FuncCacheStats()
		if cs.Total() == 0 {
			t.Fatalf("%s: function cache never consulted", f.Name)
		}
	}
}

// TestMemoFuncCacheHits: two configurations that differ in a single label
// must recompile only the functions whose inline closure contains the
// flipped site — the caller (and, through DFE, the callee), never the
// whole module.
func TestMemoFuncCacheHits(t *testing.T) {
	checked := 0
	for _, f := range memoCorpus(t) {
		c := New(f.Module, codegen.TargetX86)
		if len(c.memo.funcs) < 4 {
			continue
		}
		c.Size(callgraph.NewConfig())
		miss0 := c.funcMisses.Load()
		// Toggle a single site: only closures containing it may recompile.
		e := c.Graph().Edges[0]
		cfg := callgraph.NewConfig().Set(e.Site, true)
		c.Size(cfg)
		newMisses := c.funcMisses.Load() - miss0
		if newMisses >= int64(len(c.memo.funcs)) {
			t.Fatalf("%s: toggling one site recompiled %d of %d functions",
				f.Name, newMisses, len(c.memo.funcs))
		}
		if c.funcHits.Load() == 0 {
			t.Fatalf("%s: expected function cache hits", f.Name)
		}
		// The flipped site is in the caller's closure, so unless DFE
		// removed the caller the toggle costs at least one recompile.
		if newMisses == 0 {
			t.Fatalf("%s: toggling site %d cost no recompilation", f.Name, e.Site)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no file with enough functions in corpus")
	}
}

// TestSizeSingleFlight: concurrent Size calls for the same configuration
// must coalesce into one evaluation, keeping counters deterministic.
func TestSizeSingleFlight(t *testing.T) {
	f := memoCorpus(t)[0]
	c := New(f.Module, codegen.TargetX86)
	cfg := callgraph.NewConfig().Set(c.Graph().Edges[0].Site, true)
	var wg sync.WaitGroup
	sizes := make([]int, 16)
	for i := range sizes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sizes[i] = c.Size(cfg)
		}(i)
	}
	wg.Wait()
	for _, s := range sizes[1:] {
		if s != sizes[0] {
			t.Fatalf("inconsistent sizes: %v", sizes)
		}
	}
	if got := c.Evaluations(); got != 1 {
		t.Fatalf("evaluations = %d, want 1 (single-flight)", got)
	}
	if got := c.CacheHits(); got != 15 {
		t.Fatalf("cache hits = %d, want 15", got)
	}
}

// TestMemoFingerprintStable: identical modules share a (structural)
// fingerprint, different modules do not — with the printed-form hash as
// the oracle: wherever PrintFingerprint separates two modules for a
// non-cosmetic reason, the structural hash must separate them too.
func TestMemoFingerprintStable(t *testing.T) {
	files := memoCorpus(t)
	a := New(files[0].Module, codegen.TargetX86)
	b := New(files[0].Module, codegen.TargetX86)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same module, different fingerprints")
	}
	other := New(files[1].Module, codegen.TargetX86)
	if a.Fingerprint() == other.Fingerprint() {
		t.Fatal("distinct modules share a fingerprint")
	}
	// Oracle cross-check over the whole corpus: the compilers' site-assigned
	// base modules are all structurally distinct, and both hashes must agree
	// on that.
	seen := make(map[uint64]string)
	for _, f := range files {
		c := New(f.Module, codegen.TargetX86)
		m := c.Module()
		if m.Fingerprint() == m.PrintFingerprint() {
			t.Fatalf("%s: structural and print hashes coincide suspiciously", f.Name)
		}
		if prev, ok := seen[m.Fingerprint()]; ok {
			t.Fatalf("structural fingerprint collision: %s vs %s", prev, f.Name)
		}
		seen[m.Fingerprint()] = f.Name
	}
}
