package compile

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

// fuzzConfigs samples the configuration space of g the way the other
// differential fronts do: empty, all-inline (maximum DFE pressure), one
// targeted internal-callee kill set, and random samples.
func fuzzConfigs(c *Compiler, rng *rand.Rand, trials int) []*callgraph.Config {
	g := c.Graph()
	cfgs := []*callgraph.Config{callgraph.NewConfig()}
	all := callgraph.NewConfig()
	for _, e := range g.Edges {
		all.Set(e.Site, true)
	}
	cfgs = append(cfgs, all)
	for _, e := range g.Edges {
		if callee := c.Module().Func(e.Callee); callee != nil && !callee.Exported {
			kill := callgraph.NewConfig()
			for _, e2 := range g.Edges {
				if e2.Callee == e.Callee {
					kill.Set(e2.Site, true)
				}
			}
			cfgs = append(cfgs, kill)
			break
		}
	}
	for trial := 0; trial < trials; trial++ {
		cfg := callgraph.NewConfig()
		for _, e := range g.Edges {
			if rng.Intn(2) == 0 {
				cfg.Set(e.Site, true)
			}
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestFnCacheDifferentialFuzz is the content cache's differential front:
// across 30 generated MinC programs and sampled configurations, sizes from
// the content-addressed path, the legacy-keyed -no-fncache path, and
// checked compilation mode must agree exactly. All 30 programs share ONE
// FnCache — the corpus-sharing mode inlinebench runs in — so cross-module
// key collisions would surface here as wrong sizes.
func TestFnCacheDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shared := NewFnCache()
	compared := 0
	for seed := int64(1); seed <= 30; seed++ {
		name := fmt.Sprintf("fnc%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		mod, err := lang.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		cached := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: shared})
		legacy := New(mod, codegen.TargetX86)
		legacy.SetFnCache(false)
		chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
		if legacy.FnCacheEnabled() {
			t.Fatal("SetFnCache(false) did not disable the content path")
		}
		if chk.FnCacheEnabled() {
			t.Fatal("checked mode must force the uncached path")
		}
		g := cached.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		for _, cfg := range fuzzConfigs(cached, rng, 5) {
			got := cached.Size(cfg)
			want := legacy.Size(cfg)
			chkGot := chk.Size(cfg)
			if err := chk.CheckFailure(); err != nil {
				t.Fatalf("seed %d cfg %v: checked mode: %v\n%s", seed, cfg, err, src)
			}
			if got != want || got != chkGot {
				t.Fatalf("seed %d cfg %v: fncache %d / -no-fncache %d / checked %d disagree\n%s",
					seed, cfg, got, want, chkGot, src)
			}
			compared++
		}
	}
	if compared < 100 {
		t.Fatalf("only %d configurations compared; corpus too trivial", compared)
	}
	if st := shared.Stats(); st.Hits == 0 {
		t.Fatalf("shared corpus cache never hit: %v", st)
	}
}

const twinSrc = `
func @h1(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

func @h2(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

export func @main(%n) {
entry:
  %a = call @h1(%n) !site 1
  %b = call @h2(%n) !site 2
  %s = add %a, %b
  ret %s
}
`

// TestFnCacheSharesStructuralTwins: two structurally identical helpers
// (different names) must share one content entry — the cross-file sharing
// property, demonstrated within one module where it is easiest to observe.
func TestFnCacheSharesStructuralTwins(t *testing.T) {
	mod, err := ir.Parse("twin", twinSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := New(mod, codegen.TargetX86)
	c.Size(callgraph.NewConfig())
	// Three alive functions, but h1 and h2 compile to the same content key:
	// two misses (main, one twin), one hit (the other twin).
	if got := c.funcMisses.Load(); got != 2 {
		t.Fatalf("funcMisses = %d, want 2 (structural twins must share)", got)
	}
	if got := c.funcHits.Load(); got != 1 {
		t.Fatalf("funcHits = %d, want 1", got)
	}

	// The same module behind a second compiler sharing the cache: every
	// closure is already cached, so the second compiler never compiles.
	c2 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: c.FnCache()})
	c2.Size(callgraph.NewConfig())
	if got := c2.funcMisses.Load(); got != 0 {
		t.Fatalf("second compiler funcMisses = %d, want 0 (cross-compiler sharing)", got)
	}
	if c2.funcHits.Load() == 0 {
		t.Fatal("second compiler saw no hits")
	}
}

// evalAll sizes a spread of configurations and returns them keyed by the
// canonical config string.
func evalAll(c *Compiler) map[string]int {
	g := c.Graph()
	out := make(map[string]int)
	cfgs := []*callgraph.Config{callgraph.NewConfig()}
	all := callgraph.NewConfig()
	for _, e := range g.Edges {
		all.Set(e.Site, true)
	}
	cfgs = append(cfgs, all)
	for _, e := range g.Edges {
		cfgs = append(cfgs, callgraph.NewConfig().Set(e.Site, true))
	}
	for _, cfg := range cfgs {
		out[cfg.Key()] = c.Size(cfg)
	}
	return out
}

func twinModule(t *testing.T) *ir.Module {
	t.Helper()
	mod, err := ir.Parse("twin", twinSrc)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestFnCachePersistence: a second run against the same cache directory
// must reuse every entry of the first (zero compilations), with identical
// sizes, and report the disk traffic in its stats.
func TestFnCachePersistence(t *testing.T) {
	dir := t.TempDir()
	mod := twinModule(t)

	cold, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: cold})
	want := evalAll(c1)
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Stored == 0 {
		t.Fatalf("cold run stored nothing: %v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fnCacheFile)); err != nil {
		t.Fatalf("store file missing: %v", err)
	}

	warm, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	wst := warm.Stats()
	if wst.Loaded != st.Stored || wst.Corrupt != 0 {
		t.Fatalf("warm open loaded %d (want %d), corrupt %d", wst.Loaded, st.Stored, wst.Corrupt)
	}
	c2 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: warm})
	got := evalAll(c2)
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("cfg %s: warm size %d != cold size %d", k, got[k], w)
		}
	}
	if m := c2.funcMisses.Load(); m != 0 {
		t.Fatalf("warm run compiled %d closures, want 0", m)
	}
	if wst = warm.Stats(); wst.DiskHits == 0 {
		t.Fatalf("warm run reported no disk hits: %v", wst)
	}

	// Determinism of the store itself: re-saving the same contents writes
	// byte-identical files (sorted records), so warm reruns are stable.
	before, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Save(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("re-saving identical contents changed the store bytes")
	}
}

// TestFnCacheCorruptionDegradesToMiss: any damage to the store — garbage
// header, truncated tail, bit flips inside a record — must surface as
// misses (recompute, correct sizes), never as a wrong size or a panic.
func TestFnCacheCorruptionDegradesToMiss(t *testing.T) {
	mod := twinModule(t)
	pristine := evalAll(New(mod, codegen.TargetX86))

	seedDir := t.TempDir()
	seedCache, err := OpenFnCache(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	evalAll(NewWithOptions(mod, codegen.TargetX86, Options{FnCache: seedCache}))
	if err := seedCache.Save(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(filepath.Join(seedDir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	nrec := (len(intact) - len(fnCacheHeader)) / fnRecordSize
	if nrec < 2 {
		t.Fatalf("need at least 2 records to corrupt, have %d", nrec)
	}

	cases := []struct {
		name        string
		mutate      func([]byte) []byte
		wantLoaded  int64
		wantCorrupt int64
	}{
		{"garbage-header", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out, "NOTACACHEFILE")
			return out
		}, 0, 1},
		{"stale-schema", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(fnCacheMagic)] ^= 0x01 // first byte of the schema line
			return out
		}, 0, 1},
		{"truncated-mid-record", func(b []byte) []byte {
			return b[:len(fnCacheHeader)+fnRecordSize+fnRecordSize/2]
		}, 1, 1},
		{"bitflip-size-field", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(fnCacheHeader)+18] ^= 0x40 // size word of record 0
			return out
		}, int64(nrec) - 1, 1},
		{"bitflip-key-field", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(fnCacheHeader)+3] ^= 0x01 // key word of record 0
			return out
		}, int64(nrec) - 1, 1},
		// An empty store file is indistinguishable from a fresh one now that
		// open itself creates the log (O_CREATE): not corruption, just empty.
		{"empty-file", func([]byte) []byte { return nil }, 0, 0},
		// Append-mode artifacts: a torn *final* record is the crash-mid-append
		// signature — everything before it loads, the tail is truncated away.
		{"torn-final-record", func(b []byte) []byte {
			return b[:len(b)-fnRecordSize/4]
		}, int64(nrec) - 1, 1},
		// Duplicate keys are what a crash-and-reappend cycle (or recompute
		// after eviction) leaves behind: legitimate, first record wins, and
		// the dupe is counted rather than treated as corruption.
		{"duplicate-keys", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			return append(out, b[len(fnCacheHeader):len(fnCacheHeader)+2*fnRecordSize]...)
		}, int64(nrec), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, fnCacheFile), tc.mutate(intact), 0o644); err != nil {
				t.Fatal(err)
			}
			fc, err := OpenFnCache(dir)
			if err != nil {
				t.Fatalf("corrupt store must open as misses, got error: %v", err)
			}
			st := fc.Stats()
			if st.Loaded != tc.wantLoaded || st.Corrupt != tc.wantCorrupt {
				t.Fatalf("loaded %d corrupt %d, want %d / %d", st.Loaded, st.Corrupt, tc.wantLoaded, tc.wantCorrupt)
			}
			got := evalAll(NewWithOptions(mod, codegen.TargetX86, Options{FnCache: fc}))
			for k, want := range pristine {
				if got[k] != want {
					t.Fatalf("cfg %s: size %d != pristine %d after %s", k, got[k], want, tc.name)
				}
			}
			// Re-saving heals the store: a subsequent open is clean.
			if err := fc.Save(); err != nil {
				t.Fatal(err)
			}
			healed, err := OpenFnCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if hst := healed.Stats(); hst.Corrupt != 0 || hst.Loaded == 0 {
				t.Fatalf("store not healed by Save: %v", hst)
			}
		})
	}
}

// swappedASrc and swappedBSrc contain the same three function bodies and a
// textually identical caller, but swap which name (@g or @h) binds to
// which helper body, with module order permuted to compensate: the inline
// closure of @f streams the same member-fingerprint sequence, the same
// canonical site indices, and the same labels in both modules. Only the
// name→body binding — which the cache key must therefore capture itself,
// since a function's own name is excluded from its fingerprint —
// distinguishes them, and @f's size differs because the constant argument
// at site 1 folds a different body away in each.
const swappedASrc = `
func @g(%x) {
entry:
  %r = add %x, %x
  ret %r
}

func @h(%x) {
entry:
  %t1 = add %x, %x
  %t2 = mul %t1, %x
  %t3 = add %t2, %t1
  ret %t3
}

export func @f(%n) {
entry:
  %z = const 2
  %a = call @g(%z) !site 1
  %b = call @h(%n) !site 2
  %s = add %a, %b
  ret %s
}
`

const swappedBSrc = `
func @h(%x) {
entry:
  %r = add %x, %x
  ret %r
}

func @g(%x) {
entry:
  %t1 = add %x, %x
  %t2 = mul %t1, %x
  %t3 = add %t2, %t1
  ret %t3
}

export func @f(%n) {
entry:
  %z = const 2
  %a = call @g(%z) !site 1
  %b = call @h(%n) !site 2
  %s = add %a, %b
  ret %s
}
`

// TestFnCacheKeyBindsNamesToBodies: two modules whose members swap names
// over the same multiset of bodies must not collide in a shared cache —
// the regression that motivated streaming canonical name indices into
// closureKey. Before that, module B silently reused module A's sizes.
func TestFnCacheKeyBindsNamesToBodies(t *testing.T) {
	parse := func(src string) *ir.Module {
		mod, err := ir.Parse("swapped", src)
		if err != nil {
			t.Fatal(err)
		}
		return mod
	}
	allInline := func(c *Compiler) *callgraph.Config {
		cfg := callgraph.NewConfig()
		for _, e := range c.Graph().Edges {
			cfg.Set(e.Site, true)
		}
		return cfg
	}
	// Ground truth from the legacy per-module path, no content sharing.
	pa := New(parse(swappedASrc), codegen.TargetX86)
	pa.SetFnCache(false)
	pb := New(parse(swappedBSrc), codegen.TargetX86)
	pb.SetFnCache(false)
	wantA := pa.Size(allInline(pa))
	wantB := pb.Size(allInline(pb))
	if wantA == wantB {
		t.Fatalf("counterexample degenerate: both modules size to %d", wantA)
	}
	// Shared content cache, A first: B must not reuse A's @f entry.
	shared := NewFnCache()
	ca := NewWithOptions(parse(swappedASrc), codegen.TargetX86, Options{FnCache: shared})
	cb := NewWithOptions(parse(swappedBSrc), codegen.TargetX86, Options{FnCache: shared})
	if got := ca.Size(allInline(ca)); got != wantA {
		t.Fatalf("module A with shared cache: %d, want %d", got, wantA)
	}
	if got := cb.Size(allInline(cb)); got != wantB {
		t.Fatalf("module B with shared cache: %d, want %d (key collision: name→body binding missing from the key)", got, wantB)
	}
}

// TestFnCachePanicDoesNotWedge: a compute that panics must withdraw its
// in-flight entry before the panic unwinds — later lookups of the same key
// recompute rather than blocking forever on the poisoned slot or reading a
// zero size, and a waiter blocked mid-flight is released to retry.
func TestFnCachePanicDoesNotWedge(t *testing.T) {
	fc := NewFnCache()
	var hits, misses atomic.Int64

	key := FnKey{Hi: 1, Lo: 2}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate out of sizeOf")
			}
		}()
		fc.sizeOf(key, &hits, &misses, func() int { panic("boom") })
	}()
	relookup := make(chan int, 1)
	go func() { relookup <- fc.sizeOf(key, &hits, &misses, func() int { return 7 }) }()
	select {
	case got := <-relookup:
		if got != 7 {
			t.Fatalf("recompute after panic = %d, want 7", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("lookup after panicked compute blocked (cache wedged)")
	}

	key2 := FnKey{Hi: 3, Lo: 4}
	inCompute := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		fc.sizeOf(key2, &hits, &misses, func() int {
			close(inCompute)
			<-release
			panic("boom")
		})
	}()
	<-inCompute
	waited := make(chan int, 1)
	go func() { waited <- fc.sizeOf(key2, &hits, &misses, func() int { return 9 }) }()
	close(release)
	select {
	case got := <-waited:
		if got != 9 {
			t.Fatalf("waiter after panicked compute = %d, want 9", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never released after panicked compute")
	}
}

// TestFnCacheKeyTargetSensitive: the same module measured for two targets
// must not share entries — the target byte is part of the key.
func TestFnCacheKeyTargetSensitive(t *testing.T) {
	mod := twinModule(t)
	shared := NewFnCache()
	x86 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: shared})
	wasm := NewWithOptions(mod, codegen.TargetWASM, Options{FnCache: shared})
	x86.Size(callgraph.NewConfig())
	if wasm.Size(callgraph.NewConfig()) == 0 {
		t.Fatal("degenerate wasm size")
	}
	if got := wasm.funcMisses.Load(); got == 0 {
		t.Fatal("wasm compiler reused x86 entries: target missing from the key")
	}
}
