package compile

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

// fuzzConfigs samples the configuration space of g the way the other
// differential fronts do: empty, all-inline (maximum DFE pressure), one
// targeted internal-callee kill set, and random samples.
func fuzzConfigs(c *Compiler, rng *rand.Rand, trials int) []*callgraph.Config {
	g := c.Graph()
	cfgs := []*callgraph.Config{callgraph.NewConfig()}
	all := callgraph.NewConfig()
	for _, e := range g.Edges {
		all.Set(e.Site, true)
	}
	cfgs = append(cfgs, all)
	for _, e := range g.Edges {
		if callee := c.Module().Func(e.Callee); callee != nil && !callee.Exported {
			kill := callgraph.NewConfig()
			for _, e2 := range g.Edges {
				if e2.Callee == e.Callee {
					kill.Set(e2.Site, true)
				}
			}
			cfgs = append(cfgs, kill)
			break
		}
	}
	for trial := 0; trial < trials; trial++ {
		cfg := callgraph.NewConfig()
		for _, e := range g.Edges {
			if rng.Intn(2) == 0 {
				cfg.Set(e.Site, true)
			}
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestFnCacheDifferentialFuzz is the content cache's differential front:
// across 30 generated MinC programs and sampled configurations, sizes from
// the content-addressed path, the legacy-keyed -no-fncache path, and
// checked compilation mode must agree exactly. All 30 programs share ONE
// FnCache — the corpus-sharing mode inlinebench runs in — so cross-module
// key collisions would surface here as wrong sizes.
func TestFnCacheDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shared := NewFnCache()
	compared := 0
	for seed := int64(1); seed <= 30; seed++ {
		name := fmt.Sprintf("fnc%03d", seed)
		src := lang.GenerateSource(seed, lang.GenOptions{})
		mod, err := lang.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not lower: %v\n%s", seed, err, src)
		}
		cached := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: shared})
		legacy := New(mod, codegen.TargetX86)
		legacy.SetFnCache(false)
		chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
		if legacy.FnCacheEnabled() {
			t.Fatal("SetFnCache(false) did not disable the content path")
		}
		if chk.FnCacheEnabled() {
			t.Fatal("checked mode must force the uncached path")
		}
		g := cached.Graph()
		if len(g.Edges) == 0 {
			continue
		}
		for _, cfg := range fuzzConfigs(cached, rng, 5) {
			got := cached.Size(cfg)
			want := legacy.Size(cfg)
			chkGot := chk.Size(cfg)
			if err := chk.CheckFailure(); err != nil {
				t.Fatalf("seed %d cfg %v: checked mode: %v\n%s", seed, cfg, err, src)
			}
			if got != want || got != chkGot {
				t.Fatalf("seed %d cfg %v: fncache %d / -no-fncache %d / checked %d disagree\n%s",
					seed, cfg, got, want, chkGot, src)
			}
			compared++
		}
	}
	if compared < 100 {
		t.Fatalf("only %d configurations compared; corpus too trivial", compared)
	}
	if st := shared.Stats(); st.Hits == 0 {
		t.Fatalf("shared corpus cache never hit: %v", st)
	}
}

const twinSrc = `
func @h1(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

func @h2(%x) {
entry:
  %one = const 1
  %r = add %x, %one
  ret %r
}

export func @main(%n) {
entry:
  %a = call @h1(%n) !site 1
  %b = call @h2(%n) !site 2
  %s = add %a, %b
  ret %s
}
`

// TestFnCacheSharesStructuralTwins: two structurally identical helpers
// (different names) must share one content entry — the cross-file sharing
// property, demonstrated within one module where it is easiest to observe.
func TestFnCacheSharesStructuralTwins(t *testing.T) {
	mod, err := ir.Parse("twin", twinSrc)
	if err != nil {
		t.Fatal(err)
	}
	c := New(mod, codegen.TargetX86)
	c.Size(callgraph.NewConfig())
	// Three alive functions, but h1 and h2 compile to the same content key:
	// two misses (main, one twin), one hit (the other twin).
	if got := c.funcMisses.Load(); got != 2 {
		t.Fatalf("funcMisses = %d, want 2 (structural twins must share)", got)
	}
	if got := c.funcHits.Load(); got != 1 {
		t.Fatalf("funcHits = %d, want 1", got)
	}

	// The same module behind a second compiler sharing the cache: every
	// closure is already cached, so the second compiler never compiles.
	c2 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: c.FnCache()})
	c2.Size(callgraph.NewConfig())
	if got := c2.funcMisses.Load(); got != 0 {
		t.Fatalf("second compiler funcMisses = %d, want 0 (cross-compiler sharing)", got)
	}
	if c2.funcHits.Load() == 0 {
		t.Fatal("second compiler saw no hits")
	}
}

// evalAll sizes a spread of configurations and returns them keyed by the
// canonical config string.
func evalAll(c *Compiler) map[string]int {
	g := c.Graph()
	out := make(map[string]int)
	cfgs := []*callgraph.Config{callgraph.NewConfig()}
	all := callgraph.NewConfig()
	for _, e := range g.Edges {
		all.Set(e.Site, true)
	}
	cfgs = append(cfgs, all)
	for _, e := range g.Edges {
		cfgs = append(cfgs, callgraph.NewConfig().Set(e.Site, true))
	}
	for _, cfg := range cfgs {
		out[cfg.Key()] = c.Size(cfg)
	}
	return out
}

func twinModule(t *testing.T) *ir.Module {
	t.Helper()
	mod, err := ir.Parse("twin", twinSrc)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestFnCachePersistence: a second run against the same cache directory
// must reuse every entry of the first (zero compilations), with identical
// sizes, and report the disk traffic in its stats.
func TestFnCachePersistence(t *testing.T) {
	dir := t.TempDir()
	mod := twinModule(t)

	cold, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: cold})
	want := evalAll(c1)
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Stored == 0 {
		t.Fatalf("cold run stored nothing: %v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, fnCacheFile)); err != nil {
		t.Fatalf("store file missing: %v", err)
	}

	warm, err := OpenFnCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	wst := warm.Stats()
	if wst.Loaded != st.Stored || wst.Corrupt != 0 {
		t.Fatalf("warm open loaded %d (want %d), corrupt %d", wst.Loaded, st.Stored, wst.Corrupt)
	}
	c2 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: warm})
	got := evalAll(c2)
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("cfg %s: warm size %d != cold size %d", k, got[k], w)
		}
	}
	if m := c2.funcMisses.Load(); m != 0 {
		t.Fatalf("warm run compiled %d closures, want 0", m)
	}
	if wst = warm.Stats(); wst.DiskHits == 0 {
		t.Fatalf("warm run reported no disk hits: %v", wst)
	}

	// Determinism of the store itself: re-saving the same contents writes
	// byte-identical files (sorted records), so warm reruns are stable.
	before, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Save(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(filepath.Join(dir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("re-saving identical contents changed the store bytes")
	}
}

// TestFnCacheCorruptionDegradesToMiss: any damage to the store — garbage
// header, truncated tail, bit flips inside a record — must surface as
// misses (recompute, correct sizes), never as a wrong size or a panic.
func TestFnCacheCorruptionDegradesToMiss(t *testing.T) {
	mod := twinModule(t)
	pristine := evalAll(New(mod, codegen.TargetX86))

	seedDir := t.TempDir()
	seedCache, err := OpenFnCache(seedDir)
	if err != nil {
		t.Fatal(err)
	}
	evalAll(NewWithOptions(mod, codegen.TargetX86, Options{FnCache: seedCache}))
	if err := seedCache.Save(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(filepath.Join(seedDir, fnCacheFile))
	if err != nil {
		t.Fatal(err)
	}
	nrec := (len(intact) - len(fnCacheMagic)) / fnRecordSize
	if nrec < 2 {
		t.Fatalf("need at least 2 records to corrupt, have %d", nrec)
	}

	cases := []struct {
		name        string
		mutate      func([]byte) []byte
		wantLoaded  int64
		wantCorrupt int64
	}{
		{"garbage-header", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			copy(out, "NOTACACHEFILE")
			return out
		}, 0, 1},
		{"truncated-mid-record", func(b []byte) []byte {
			return b[:len(fnCacheMagic)+fnRecordSize+fnRecordSize/2]
		}, 1, 1},
		{"bitflip-size-field", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(fnCacheMagic)+18] ^= 0x40 // size word of record 0
			return out
		}, int64(nrec) - 1, 1},
		{"bitflip-key-field", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(fnCacheMagic)+3] ^= 0x01 // key word of record 0
			return out
		}, int64(nrec) - 1, 1},
		{"empty-file", func([]byte) []byte { return nil }, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, fnCacheFile), tc.mutate(intact), 0o644); err != nil {
				t.Fatal(err)
			}
			fc, err := OpenFnCache(dir)
			if err != nil {
				t.Fatalf("corrupt store must open as misses, got error: %v", err)
			}
			st := fc.Stats()
			if st.Loaded != tc.wantLoaded || st.Corrupt != tc.wantCorrupt {
				t.Fatalf("loaded %d corrupt %d, want %d / %d", st.Loaded, st.Corrupt, tc.wantLoaded, tc.wantCorrupt)
			}
			got := evalAll(NewWithOptions(mod, codegen.TargetX86, Options{FnCache: fc}))
			for k, want := range pristine {
				if got[k] != want {
					t.Fatalf("cfg %s: size %d != pristine %d after %s", k, got[k], want, tc.name)
				}
			}
			// Re-saving heals the store: a subsequent open is clean.
			if err := fc.Save(); err != nil {
				t.Fatal(err)
			}
			healed, err := OpenFnCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			if hst := healed.Stats(); hst.Corrupt != 0 || hst.Loaded == 0 {
				t.Fatalf("store not healed by Save: %v", hst)
			}
		})
	}
}

// TestFnCacheKeyTargetSensitive: the same module measured for two targets
// must not share entries — the target byte is part of the key.
func TestFnCacheKeyTargetSensitive(t *testing.T) {
	mod := twinModule(t)
	shared := NewFnCache()
	x86 := NewWithOptions(mod, codegen.TargetX86, Options{FnCache: shared})
	wasm := NewWithOptions(mod, codegen.TargetWASM, Options{FnCache: shared})
	x86.Size(callgraph.NewConfig())
	if wasm.Size(callgraph.NewConfig()) == 0 {
		t.Fatal("degenerate wasm size")
	}
	if got := wasm.funcMisses.Load(); got == 0 {
		t.Fatal("wasm compiler reused x86 entries: target missing from the key")
	}
}
