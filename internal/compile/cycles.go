package compile

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/inline"
	"optinline/internal/interp"
	"optinline/internal/ir"
	"optinline/internal/opt"
)

// This file implements the incremental cycle-evaluation engine: the
// runtime-objective twin of the size delta engine (delta.go). One profiling
// pass (interp.Collect) interprets the workload once, under the baseline
// no-inline build, and records per-function frame counts, per-site frame
// counts, and the exact i-cache touch sequence. A CyclePricer then prices
// any configuration's total cycles without running the interpreter again:
//
//	cycles(cfg) = Σ_f entries(f,cfg) · perEntry(f,cfg) + icache(cfg)
//
//   - entries(f,cfg): frames entering f — the profiled count, minus the
//     frames created by call sites cfg inlines (inlining site s deletes
//     exactly the Hits[s] frames s created; their bodies now execute inside
//     the caller's frame and are priced there, because the caller's
//     post-inline body contains the spliced code);
//   - perEntry(f,cfg): the static cycle cost of f's final post-inline body
//     (interp.CostOf over every instruction, plus the call overhead of
//     calls that leave the module) plus the callee-side entry overhead
//     (CostCallOverhead + params·CostPerArg);
//   - icache(cfg): the LRU penalty, re-simulated over the profiled touch
//     sequence with the events of inlined frames deleted and every
//     function's size replaced by its size under cfg. The surviving
//     sequence is exactly the touch sequence the machine would produce on
//     the inlined build whenever the inlined build creates the same frames
//     in the same order, which holds for every configuration whose frame
//     tree the profile determines (see EXPERIMENTS.md for the boundary:
//     recursive self-inlining and post-inline constant folding make the
//     model an approximation of a true re-interpretation, applied equally
//     on every evaluation path).
//
// Toggling a site reprices only the dirty functions — the same inverse-
// reachability dirty set the size engine uses, because a function's
// per-entry cost changes exactly when its inline closure can contain a
// toggled site (the owner's ancestors) and its entry count changes exactly
// when an incoming site toggles (the callee). The -no-cycledelta oracle
// evaluates the same model non-incrementally from a whole-module Build;
// results are byte-identical by the memo engine's soundness argument (the
// per-closure body is bit-identical to the whole-module body).

// InfCycles is returned for configurations that fail to compile; it
// compares worse than any real cycle count and survives λ-weighting
// without overflowing.
const InfCycles = math.MaxInt64 / 4

// CycleOptions configures a CyclePricer.
type CycleOptions struct {
	// CacheBytes is the modelled i-cache capacity the penalty is
	// re-simulated under; 0 selects interp.DefaultCacheBytes. One profile
	// can be replayed under any capacity (the touch sequence is geometry-
	// independent), so pricers with different capacities share a profile.
	CacheBytes int
}

// CyclePricerStats are the engine's monotone counters.
type CyclePricerStats struct {
	Repricings   int64 // configurations priced incrementally (dirty-set walk)
	FullEvals    int64 // configurations priced by whole-module Build
	CacheHits    int64 // config-cache hits
	ReplayEvents int64 // i-cache events replayed across all evaluations
	CostHits     int64 // per-closure cost-cache hits
	CostMisses   int64 // per-closure cost-cache misses (closure compiles)
}

func (s CyclePricerStats) String() string {
	return fmt.Sprintf("repricings %d, full evals %d, cache hits %d, replay events %d, cost cache %d/%d",
		s.Repricings, s.FullEvals, s.CacheHits, s.ReplayEvents, s.CostHits, s.CostHits+s.CostMisses)
}

// Add accumulates counters across pricers.
func (s CyclePricerStats) Add(o CyclePricerStats) CyclePricerStats {
	s.Repricings += o.Repricings
	s.FullEvals += o.FullEvals
	s.CacheHits += o.CacheHits
	s.ReplayEvents += o.ReplayEvents
	s.CostHits += o.CostHits
	s.CostMisses += o.CostMisses
	return s
}

// cycEvent is one normalized profile event: the memo index of the function
// whose code is touched, and the candidate site that created the frame
// (0 when the frame cannot be deleted by any toggle: the root, calls
// without a site, and non-candidate sites).
type cycEvent struct {
	site int32
	fn   int32
}

// CyclePricer prices configurations in cycles against one profile.
// It is safe for concurrent use.
type CyclePricer struct {
	c          *Compiler
	cacheBytes int
	delta      bool

	entriesBase []int64       // per memo func: frames from the root and non-candidate sites
	hits        map[int]int64 // candidate site -> profiled frames
	events      []cycEvent

	mu    sync.Mutex
	cache map[string]*cycEntry

	costMu sync.Mutex
	costs  map[FnKey]*costEntry

	simPool sync.Pool

	repricings   atomic.Int64
	fullEvals    atomic.Int64
	cacheHits    atomic.Int64
	replayEvents atomic.Int64
	costHits     atomic.Int64
	costMisses   atomic.Int64
}

// cycEntry is a single-flight slot of the per-configuration cycle cache.
type cycEntry struct {
	done   chan struct{}
	cycles int64
}

// costEntry is a single-flight slot of the per-closure cost cache: the
// static per-entry cycle cost and encoded size of one final function body.
type costEntry struct {
	done   chan struct{}
	cost   int64
	size   int32
	ok     bool
	failed bool // computation panicked and was withdrawn; waiters retry
}

// NewCyclePricer builds a pricer for this compiler from a profile collected
// on the compiler's baseline (no-inline) build. It fails if the profile
// names functions the module does not contain, or attributes more frames to
// a function's candidate sites than the function has entries — both mean
// the profile belongs to a different module.
func (c *Compiler) NewCyclePricer(p *interp.Profile, opts CycleOptions) (*CyclePricer, error) {
	ms := c.memo
	cacheBytes := opts.CacheBytes
	if cacheBytes == 0 {
		cacheBytes = interp.DefaultCacheBytes
	}
	cp := &CyclePricer{
		c:           c,
		cacheBytes:  cacheBytes,
		delta:       true,
		entriesBase: []int64(nil),
		hits:        map[int]int64{},
		cache:       map[string]*cycEntry{},
		costs:       map[FnKey]*costEntry{},
	}
	cp.simPool.New = func() any { return interp.NewCacheSim(cacheBytes) }

	byIdx := make([]int32, len(p.Funcs)) // profile index -> memo index
	idxOf := make(map[string]int32, len(ms.funcs))
	for i, fi := range ms.funcs {
		idxOf[fi.name] = int32(i)
	}
	cp.entriesBase = make([]int64, len(ms.funcs))
	for pi, name := range p.Funcs {
		mi, ok := idxOf[name]
		if !ok {
			return nil, fmt.Errorf("cyclepricer: profiled function %q not in module", name)
		}
		byIdx[pi] = mi
		cp.entriesBase[mi] = p.Entries[pi]
	}
	for s, h := range p.Hits {
		callee, ok := ms.siteCallee[int(s)]
		if !ok {
			continue // non-candidate site: its frames stay in entriesBase
		}
		cp.hits[int(s)] = h
		cp.entriesBase[callee.idx] -= h
		if cp.entriesBase[callee.idx] < 0 {
			return nil, fmt.Errorf("cyclepricer: profile overcounts sites into %q", callee.name)
		}
	}
	cp.events = make([]cycEvent, len(p.Events))
	for i, ev := range p.Events {
		site := int32(0)
		if ev.Site > 0 {
			if _, ok := ms.siteCallee[int(ev.Site)]; ok {
				site = ev.Site
			}
		}
		cp.events[i] = cycEvent{site: site, fn: byIdx[ev.Fn]}
	}
	return cp, nil
}

// SetCycleDelta switches the incremental repricing path on or off (on by
// default). Off, every evaluation runs the whole-module Build — the
// differential oracle behind the CLIs' -no-cycledelta flags. Not safe to
// call concurrently with Cycles.
func (p *CyclePricer) SetCycleDelta(on bool) { p.delta = on }

// DeltaEnabled reports whether configurations are repriced incrementally.
// Like the size delta engine, the incremental path rides on the per-closure
// machinery, so checked mode and -no-memo force the full Build path.
func (p *CyclePricer) DeltaEnabled() bool { return p.delta && p.c.memoize && !p.c.check }

// CacheBytes returns the modelled i-cache capacity.
func (p *CyclePricer) CacheBytes() int { return p.cacheBytes }

// Events returns the number of profiled i-cache events (replay length).
func (p *CyclePricer) Events() int { return len(p.events) }

// Stats returns the engine's counters.
func (p *CyclePricer) Stats() CyclePricerStats {
	return CyclePricerStats{
		Repricings:   p.repricings.Load(),
		FullEvals:    p.fullEvals.Load(),
		CacheHits:    p.cacheHits.Load(),
		ReplayEvents: p.replayEvents.Load(),
		CostHits:     p.costHits.Load(),
		CostMisses:   p.costMisses.Load(),
	}
}

// entriesUnder returns the frames entering fi under cfg: the baseline
// remainder plus the hits of every incoming candidate site cfg leaves as a
// real call.
func (p *CyclePricer) entriesUnder(fi *funcInfo, cfg *callgraph.Config) int64 {
	n := p.entriesBase[fi.idx]
	for _, s := range fi.inSites {
		if h := p.hits[s]; h != 0 && !cfg.Inline(s) {
			n += h
		}
	}
	return n
}

// bodyCost walks a final (post-inline, post-opt) body and returns its
// static per-entry cycle cost: every instruction's CostOf, plus the call
// overhead of calls that leave the module (internal calls are priced
// callee-side via that callee's entries), plus this function's own
// callee-side entry overhead.
func (p *CyclePricer) bodyCost(fn *ir.Function) int64 {
	cost := int64(interp.CostCallOverhead) + int64(fn.NumParams())*interp.CostPerArg
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			cost += interp.CostOf(in)
			if in.Op == ir.OpCall && p.c.base.Func(in.Callee) == nil {
				cost += interp.CostCallOverhead
			}
		}
	}
	return cost
}

// closureCost returns fi's per-entry cost and size under cfg, compiling the
// inline closure at most once per content key (single-flight; the key is
// the same content-addressed closureKey the size memo uses, so equal keys
// imply bit-identical final bodies).
func (p *CyclePricer) closureCost(fi *funcInfo, cfg *callgraph.Config) (int64, int32, bool) {
	members, _ := p.c.memo.closure(fi, cfg)
	key := p.c.closureKey(fi, members, cfg)
	for {
		p.costMu.Lock()
		if e, ok := p.costs[key]; ok {
			p.costMu.Unlock()
			<-e.done
			if e.failed {
				continue
			}
			p.costHits.Add(1)
			return e.cost, e.size, e.ok
		}
		e := &costEntry{done: make(chan struct{})}
		p.costs[key] = e
		p.costMu.Unlock()

		p.costMisses.Add(1)
		panicked := true
		func() {
			defer func() {
				if panicked {
					p.costMu.Lock()
					delete(p.costs, key)
					p.costMu.Unlock()
					e.failed = true
					close(e.done)
				}
			}()
			e.cost, e.size, e.ok = p.compileClosureCost(fi, members, cfg)
			panicked = false
		}()
		close(e.done)
		return e.cost, e.size, e.ok
	}
}

// compileClosureCost is compileClosure returning the final body's per-entry
// cost and size instead of just the size.
func (p *CyclePricer) compileClosureCost(fi *funcInfo, members []*funcInfo, cfg *callgraph.Config) (int64, int32, bool) {
	c := p.c
	sub := ir.NewModule(c.base.Name)
	for _, g := range c.base.Globals {
		sub.AddGlobal(g)
	}
	for _, m := range members {
		sub.AddFunc(c.base.Func(m.name).Clone())
	}
	if err := inline.Apply(sub, cfg, inline.Options{}); err != nil {
		return 0, 0, false
	}
	fn := sub.Func(fi.name)
	opt.Function(fn)
	return p.bodyCost(fn), int32(codegen.FunctionSize(fn, c.target)), true
}

// replay re-simulates the LRU i-cache over the profiled touch sequence:
// events of frames cfg inlines are deleted (their code runs inside the
// caller's frame, whose own entry/ret events survive), and every surviving
// access uses the function's size under cfg.
func (p *CyclePricer) replay(cfg *callgraph.Config, sizes []int32) int64 {
	sim := p.simPool.Get().(*interp.CacheSim)
	sim.Grow(len(sizes))
	sim.Reset()
	var penalty int64
	for _, ev := range p.events {
		if ev.site != 0 && cfg.Inline(int(ev.site)) {
			continue
		}
		size := int(sizes[ev.fn])
		if sim.Access(ev.fn, size) {
			penalty += interp.MissPenalty(size)
		}
	}
	p.replayEvents.Add(int64(len(p.events)))
	p.simPool.Put(sim)
	return penalty
}

// Cycled is a priced configuration handle: the configuration, its total
// cycles, and (when the incremental path is active) the per-function entry
// counts, per-entry costs and sizes the total decomposes into. Handles are
// immutable and safe for concurrent use.
type Cycled struct {
	cfg     *callgraph.Config
	total   int64
	entries []int64
	perEnt  []int64
	sizes   []int32
	full    bool
}

// Cycles returns the handle's total cycle count.
func (h *Cycled) Cycles() int64 { return h.total }

// Config returns a copy of the handle's configuration.
func (h *Cycled) Config() *callgraph.Config { return h.cfg.Clone() }

// Cycles prices one configuration, compiling at most once per canonical
// configuration (single-flight, like Compiler.Size).
func (p *CyclePricer) Cycles(cfg *callgraph.Config) int64 {
	e, isNew := p.lookup(cfg)
	if !isNew {
		<-e.done
		p.cacheHits.Add(1)
		return e.cycles
	}
	if p.DeltaEnabled() {
		h := p.pricedMiss(cfg)
		e.cycles = h.total
	} else {
		e.cycles = p.fullCycles(cfg)
	}
	close(e.done)
	return e.cycles
}

// Priced evaluates cfg and returns the handle the delta calls start from.
func (p *CyclePricer) Priced(cfg *callgraph.Config) *Cycled {
	if !p.DeltaEnabled() {
		return &Cycled{cfg: cfg.Clone(), total: p.Cycles(cfg), full: true}
	}
	e, isNew := p.lookup(cfg)
	if !isNew {
		<-e.done
		p.cacheHits.Add(1)
		if e.cycles == InfCycles {
			return &Cycled{cfg: cfg.Clone(), total: InfCycles, full: true}
		}
		return p.contribCycled(cfg) // cost cache resident: a walk, not a compile
	}
	h := p.pricedMiss(cfg)
	e.cycles = h.total
	close(e.done)
	return h
}

func (p *CyclePricer) lookup(cfg *callgraph.Config) (e *cycEntry, isNew bool) {
	key := cfg.CacheKey()
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.cache[key]; ok {
		return e, false
	}
	e = &cycEntry{done: make(chan struct{})}
	p.cache[key] = e
	return e, true
}

// pricedMiss prices cfg from scratch on the incremental path, recording
// per-function terms.
func (p *CyclePricer) pricedMiss(cfg *callgraph.Config) *Cycled {
	p.repricings.Add(1)
	return p.contribCycled(cfg)
}

func (p *CyclePricer) contribCycled(cfg *callgraph.Config) *Cycled {
	ms := p.c.memo
	h := &Cycled{
		cfg:     cfg.Clone(),
		entries: make([]int64, len(ms.funcs)),
		perEnt:  make([]int64, len(ms.funcs)),
		sizes:   make([]int32, len(ms.funcs)),
	}
	var instr int64
	for i, fi := range ms.funcs {
		n := p.entriesUnder(fi, cfg)
		h.entries[i] = n
		if n == 0 {
			continue
		}
		cost, size, ok := p.closureCost(fi, cfg)
		if !ok {
			return &Cycled{cfg: cfg.Clone(), total: InfCycles, full: true}
		}
		h.perEnt[i] = cost
		h.sizes[i] = size
		instr += n * cost
	}
	h.total = instr + p.replay(cfg, h.sizes)
	return h
}

// fullCycles prices cfg with a whole-module Build — the -no-cycledelta
// oracle. It evaluates the identical model (same entry counts, same static
// walk over the final bodies, same replay), just without the per-closure
// cache or the dirty-set shortcut.
func (p *CyclePricer) fullCycles(cfg *callgraph.Config) int64 {
	p.fullEvals.Add(1)
	built, err := p.c.Build(cfg)
	if err != nil {
		return InfCycles
	}
	ms := p.c.memo
	idxOf := make(map[string]int32, len(ms.funcs))
	for i, fi := range ms.funcs {
		idxOf[fi.name] = int32(i)
	}
	sizes := make([]int32, len(ms.funcs))
	var instr int64
	for _, fn := range built.Funcs {
		mi, ok := idxOf[fn.Name]
		if !ok {
			continue // functions introduced by the pipeline never run
		}
		fi := ms.funcs[mi]
		sizes[mi] = int32(codegen.FunctionSize(fn, p.c.target))
		n := p.entriesUnder(fi, cfg)
		if n == 0 {
			continue
		}
		instr += n * p.bodyCost(fn)
	}
	return instr + p.replay(cfg, sizes)
}

// toggledCfg returns base's configuration with every listed site flipped.
func (h *Cycled) toggledCfg(toggles []int) *callgraph.Config {
	cfg := h.cfg.Clone()
	for _, s := range toggles {
		cfg.Set(s, !h.cfg.Inline(s))
	}
	return cfg
}

// CyclesDelta prices the configuration that differs from base by the given
// toggles, recomputing only the dirty functions' terms before the replay.
// Byte-identical to Cycles(toggled config) on every path.
func (p *CyclePricer) CyclesDelta(base *Cycled, toggles []int) int64 {
	cfg := base.toggledCfg(toggles)
	if base.full || !p.DeltaEnabled() {
		return p.Cycles(cfg)
	}
	e, isNew := p.lookup(cfg)
	if !isNew {
		<-e.done
		p.cacheHits.Add(1)
		return e.cycles
	}
	e.cycles = p.measureCycleDelta(base, cfg, toggles, nil)
	close(e.done)
	return e.cycles
}

// CyclesDeltaParallel prices many toggle sets against the same base
// concurrently, in order. workers <= 0 selects GOMAXPROCS.
func (p *CyclePricer) CyclesDeltaParallel(base *Cycled, toggles [][]int, workers int) []int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(toggles) {
		workers = len(toggles)
	}
	out := make([]int64, len(toggles))
	if workers <= 1 {
		for i, t := range toggles {
			out[i] = p.CyclesDelta(base, t)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(toggles) {
					return
				}
				out[i] = p.CyclesDelta(base, toggles[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Rebase prices base⊕toggles and carries the updated per-function terms
// forward, so a round-based client advances its base without re-walking
// the module.
func (p *CyclePricer) Rebase(base *Cycled, toggles []int) *Cycled {
	cfg := base.toggledCfg(toggles)
	if base.full || !p.DeltaEnabled() {
		return &Cycled{cfg: cfg, total: p.Cycles(cfg), full: true}
	}
	h := &Cycled{
		cfg:     cfg,
		entries: append([]int64(nil), base.entries...),
		perEnt:  append([]int64(nil), base.perEnt...),
		sizes:   append([]int32(nil), base.sizes...),
	}
	e, isNew := p.lookup(cfg)
	if isNew {
		e.cycles = p.measureCycleDelta(base, cfg, toggles, h)
		close(e.done)
	} else {
		<-e.done
		p.cacheHits.Add(1)
		if e.cycles != InfCycles {
			p.applyCycleDelta(base, cfg, toggles, h)
		}
	}
	if e.cycles == InfCycles {
		return &Cycled{cfg: cfg, total: InfCycles, full: true}
	}
	h.total = e.cycles
	return h
}

// measureCycleDelta is the miss path of CyclesDelta/Rebase.
func (p *CyclePricer) measureCycleDelta(base *Cycled, cfg *callgraph.Config, toggles []int, into *Cycled) int64 {
	p.repricings.Add(1)
	return p.applyCycleDelta(base, cfg, toggles, into)
}

// applyCycleDelta recomputes the dirty functions' terms under cfg and
// returns the adjusted total. When into is non-nil (carrying copies of
// base's vectors) the dirty entries are updated in place. The replay runs
// over the updated sizes either way; it is the per-evaluation floor of the
// engine — O(profiled events), independent of module size.
func (p *CyclePricer) applyCycleDelta(base *Cycled, cfg *callgraph.Config, toggles []int, into *Cycled) int64 {
	ms := p.c.memo
	dirty := ms.dirty(toggles)
	// The replay needs the full size vector with dirty slots updated; base
	// handles are immutable, so update into's copy or a scratch copy.
	sizes := base.sizes
	if into != nil {
		sizes = into.sizes
	} else {
		sizes = append([]int32(nil), base.sizes...)
	}
	var instr int64
	for i := range base.entries {
		instr += base.entries[i] * base.perEnt[i]
	}
	for _, i := range dirty {
		fi := ms.funcs[i]
		n := p.entriesUnder(fi, cfg)
		var cost int64
		var size int32
		if n > 0 {
			var ok bool
			cost, size, ok = p.closureCost(fi, cfg)
			if !ok {
				return InfCycles
			}
		}
		instr += n*cost - base.entries[i]*base.perEnt[i]
		sizes[i] = size
		if into != nil {
			into.entries[i], into.perEnt[i] = n, cost
		}
	}
	return instr + p.replay(cfg, sizes)
}

// DirtySorted exposes the dirty-set computation for tests.
func (p *CyclePricer) DirtySorted(toggles []int) []int {
	d := p.c.memo.dirty(toggles)
	out := make([]int, len(d))
	for i, v := range d {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}
