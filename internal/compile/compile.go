// Package compile is the driver that turns an inlining configuration into a
// binary size: clone → inline → optimize → label-based dead-function
// elimination → measure. It memoizes sizes by canonical configuration key
// and is safe for concurrent use, which the search and the autotuner exploit
// (the paper calls both "embarrassingly parallel").
package compile

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/opt"
)

// InfSize is returned for configurations that fail to compile (the inliner's
// growth bound tripped); it compares worse than any real size.
const InfSize = math.MaxInt32

// Compiler evaluates inlining configurations against a fixed base module.
type Compiler struct {
	base   *ir.Module
	graph  *callgraph.Graph
	target codegen.Target

	mu    sync.Mutex
	cache map[string]int

	evals  atomic.Int64
	hits   atomic.Int64
	errors atomic.Int64
}

// New prepares a compiler for the module. The module is cloned defensively;
// callers may keep using the original. Site IDs are assigned if absent.
func New(m *ir.Module, target codegen.Target) *Compiler {
	base := m.Clone()
	base.AssignSites()
	return &Compiler{
		base:   base,
		graph:  callgraph.Build(base),
		target: target,
		cache:  make(map[string]int),
	}
}

// Graph returns the inlining-candidate call graph of the base module.
func (c *Compiler) Graph() *callgraph.Graph { return c.graph }

// Module returns the (site-assigned) base module.
func (c *Compiler) Module() *ir.Module { return c.base }

// Target returns the codegen target being measured.
func (c *Compiler) Target() codegen.Target { return c.target }

// Build runs the full pipeline for a configuration and returns the
// optimized module. It does not consult or fill the size cache.
func (c *Compiler) Build(cfg *callgraph.Config) (*ir.Module, error) {
	m := c.base.Clone()
	if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
		return nil, err
	}
	// Label-based dead-function elimination: an internal function whose
	// every original call edge is labeled inline is removable. This
	// predicate depends only on labels of edges incident to the function,
	// which keeps independent components exactly independent (DESIGN.md).
	removable := c.graph.CalleesAllInline(cfg)
	opt.RemoveDeadFunctions(m, func(name string) bool { return removable[name] })
	opt.Module(m)
	return m, nil
}

// Size returns the .text size of the configuration, compiling at most once
// per canonical configuration.
func (c *Compiler) Size(cfg *callgraph.Config) int {
	key := cfg.Key()
	c.mu.Lock()
	if s, ok := c.cache[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return s
	}
	c.mu.Unlock()

	size := c.measure(cfg)

	c.mu.Lock()
	c.cache[key] = size
	c.mu.Unlock()
	return size
}

func (c *Compiler) measure(cfg *callgraph.Config) int {
	c.evals.Add(1)
	m, err := c.Build(cfg)
	if err != nil {
		c.errors.Add(1)
		return InfSize
	}
	return codegen.ModuleSize(m, c.target)
}

// SizeParallel evaluates many configurations concurrently and returns their
// sizes in order. workers <= 0 selects GOMAXPROCS.
func (c *Compiler) SizeParallel(cfgs []*callgraph.Config, workers int) []int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]int, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			out[i] = c.Size(cfg)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				out[i] = c.Size(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Evaluations returns the number of real (uncached) compilations so far.
func (c *Compiler) Evaluations() int64 { return c.evals.Load() }

// CacheHits returns the number of size requests served from the cache.
func (c *Compiler) CacheHits() int64 { return c.hits.Load() }

// Errors returns the number of configurations that failed to compile.
func (c *Compiler) Errors() int64 { return c.errors.Load() }
