// Package compile is the driver that turns an inlining configuration into a
// binary size: clone → inline → optimize → label-based dead-function
// elimination → measure. It memoizes sizes at two levels — by canonical
// whole-module configuration key, and per function keyed by (module
// fingerprint, function, inline closure labels; see memo.go) — and is safe
// for concurrent use, which the search and the autotuner exploit (the paper calls both "embarrassingly parallel"). Both
// caches are single-flight: concurrent requests for the same key share one
// compilation, which also makes evaluation counters schedule-independent.
package compile

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/opt"
	"optinline/internal/stats"
)

// InfSize is returned for configurations that fail to compile (the inliner's
// growth bound tripped); it compares worse than any real size.
const InfSize = math.MaxInt32

// Compiler evaluates inlining configurations against a fixed base module.
type Compiler struct {
	base        *ir.Module
	graph       *callgraph.Graph
	target      codegen.Target
	fingerprint uint64

	mu    sync.Mutex
	cache map[string]*sizeEntry

	memo    *memoState
	memoize bool

	evals      atomic.Int64
	hits       atomic.Int64
	errors     atomic.Int64
	funcHits   atomic.Int64
	funcMisses atomic.Int64
}

// sizeEntry is a single-flight slot of the whole-configuration cache.
type sizeEntry struct {
	done chan struct{}
	size int
}

// New prepares a compiler for the module. The module is cloned defensively;
// callers may keep using the original. Site IDs are assigned if absent.
func New(m *ir.Module, target codegen.Target) *Compiler {
	base := m.Clone()
	base.AssignSites()
	g := callgraph.Build(base)
	return &Compiler{
		base:        base,
		graph:       g,
		target:      target,
		fingerprint: base.Fingerprint(),
		cache:       make(map[string]*sizeEntry),
		memo:        buildMemo(base, g),
		memoize:     true,
	}
}

// SetMemoize switches the per-function memoized evaluation path on or off
// (on by default). Off, every cache miss runs the whole-module pipeline —
// kept for benchmarking and for differential tests of the memo engine
// itself. Not safe to call concurrently with Size.
func (c *Compiler) SetMemoize(on bool) { c.memoize = on }

// Fingerprint returns the base module's fingerprint; per-function cache
// entries are keyed under it.
func (c *Compiler) Fingerprint() uint64 { return c.fingerprint }

// Graph returns the inlining-candidate call graph of the base module.
func (c *Compiler) Graph() *callgraph.Graph { return c.graph }

// Module returns the (site-assigned) base module.
func (c *Compiler) Module() *ir.Module { return c.base }

// Target returns the codegen target being measured.
func (c *Compiler) Target() codegen.Target { return c.target }

// Build runs the full pipeline for a configuration and returns the
// optimized module. It does not consult or fill the size cache.
func (c *Compiler) Build(cfg *callgraph.Config) (*ir.Module, error) {
	m := c.base.Clone()
	if err := inline.Apply(m, cfg, inline.Options{}); err != nil {
		return nil, err
	}
	// Label-based dead-function elimination: an internal function whose
	// every original call edge is labeled inline is removable. This
	// predicate depends only on labels of edges incident to the function,
	// which keeps independent components exactly independent (DESIGN.md).
	removable := c.graph.CalleesAllInline(cfg)
	opt.RemoveDeadFunctions(m, func(name string) bool { return removable[name] })
	opt.Module(m)
	return m, nil
}

// Size returns the .text size of the configuration, compiling at most once
// per canonical configuration. Concurrent calls for the same configuration
// share one compilation (single-flight), so the evaluation counter counts
// distinct configurations regardless of scheduling.
func (c *Compiler) Size(cfg *callgraph.Config) int {
	key := cfg.Key()
	c.mu.Lock()
	if e, ok := c.cache[key]; ok {
		c.mu.Unlock()
		<-e.done
		c.hits.Add(1)
		return e.size
	}
	e := &sizeEntry{done: make(chan struct{})}
	c.cache[key] = e
	c.mu.Unlock()

	e.size = c.measure(cfg)
	close(e.done)
	return e.size
}

func (c *Compiler) measure(cfg *callgraph.Config) int {
	c.evals.Add(1)
	if c.memoize {
		return c.measureMemo(cfg)
	}
	m, err := c.Build(cfg)
	if err != nil {
		c.errors.Add(1)
		return InfSize
	}
	return codegen.ModuleSize(m, c.target)
}

// SizeParallel evaluates many configurations concurrently and returns their
// sizes in order. workers <= 0 selects GOMAXPROCS.
func (c *Compiler) SizeParallel(cfgs []*callgraph.Config, workers int) []int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]int, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			out[i] = c.Size(cfg)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				out[i] = c.Size(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Evaluations returns the number of distinct configurations evaluated so
// far (configuration-cache misses).
func (c *Compiler) Evaluations() int64 { return c.evals.Load() }

// CacheHits returns the number of size requests served from the
// configuration cache.
func (c *Compiler) CacheHits() int64 { return c.hits.Load() }

// Errors returns the number of configurations that failed to compile.
func (c *Compiler) Errors() int64 { return c.errors.Load() }

// ConfigCacheStats returns the whole-configuration cache counters.
func (c *Compiler) ConfigCacheStats() stats.CacheStats {
	return stats.CacheStats{Hits: c.hits.Load(), Misses: c.evals.Load()}
}

// FuncCacheStats returns the per-function memo cache counters; a hit means
// a function's compilation was skipped because another configuration
// already compiled it with the same inline-closure labels.
func (c *Compiler) FuncCacheStats() stats.CacheStats {
	return stats.CacheStats{Hits: c.funcHits.Load(), Misses: c.funcMisses.Load()}
}
