// Package compile is the driver that turns an inlining configuration into a
// binary size: clone → inline → optimize → label-based dead-function
// elimination → measure. It memoizes sizes at two levels — by canonical
// whole-module configuration key, and per function keyed by (module
// fingerprint, function, inline closure labels; see memo.go) — and is safe
// for concurrent use, which the search and the autotuner exploit (the paper calls both "embarrassingly parallel"). Both
// caches are single-flight: concurrent requests for the same key share one
// compilation, which also makes evaluation counters schedule-independent.
package compile

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"optinline/internal/analysis"
	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/diag"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/opt"
	"optinline/internal/stats"
)

// InfSize is returned for configurations that fail to compile (the inliner's
// growth bound tripped); it compares worse than any real size.
const InfSize = math.MaxInt32

// Options configures a Compiler beyond its module and target.
type Options struct {
	// Check enables checked compilation mode, the -verify-each analogue:
	// ir.Verify runs after every individual inline expansion and after every
	// optimization pass that changed a function, and the static-analyzer
	// suite (internal/analysis) audits the final module with its
	// post-pipeline invariants escalated to errors. The first violation
	// aborts the build with a *CheckError naming the exact stage and pass.
	//
	// Checked mode bypasses the per-function memo fast path (and with it
	// the content-addressed function cache) — those paths skip whole-module
	// pipelines, which is precisely the work being checked — so it is
	// substantially slower; it exists as a regression tripwire for tests,
	// fuzzing, and the CLIs' -check flags, not for production search runs.
	Check bool

	// FnCache, when non-nil, is the content-addressed per-function cache
	// (fncache.go) this compiler shares with others. Content keys are
	// module-independent, so one cache may — and for corpus runs should —
	// be shared across every file's compiler, letting structurally
	// identical helpers compile once for the whole corpus. Nil gives the
	// compiler a private in-memory cache, which still shares sizes across
	// configurations of its own module.
	FnCache *FnCache
}

// Compiler evaluates inlining configurations against a fixed base module.
type Compiler struct {
	base        *ir.Module
	graph       *callgraph.Graph
	target      codegen.Target
	fingerprint uint64

	mu    sync.Mutex
	cache map[string]*sizeEntry // Config.CacheKey -> single-flight slot

	memo      *memoState
	memoize   bool
	check     bool
	delta     bool
	fncache   *FnCache
	fncacheOn bool

	checkMu  sync.Mutex
	checkErr error // first *CheckError observed by a cached Size path

	evals      atomic.Int64
	hits       atomic.Int64
	errors     atomic.Int64
	funcHits   atomic.Int64
	funcMisses atomic.Int64
	deltaEvals atomic.Int64
	deltaDirty atomic.Int64
}

// CheckError is a checked-mode invariant violation, attributed to the first
// stage and pass that broke it.
type CheckError struct {
	Stage string    // "input", "inline", "dead-function-elimination", "opt", "post-pipeline"
	Pass  string    // inline step, opt pass name, or "analysis" — empty when the stage has no finer unit
	Func  string    // function being transformed, when known
	Diags diag.List // error-severity analyzer findings (Stage "post-pipeline")
	Err   error
}

func (e *CheckError) Error() string {
	msg := fmt.Sprintf("checked mode: stage %q", e.Stage)
	if e.Pass != "" {
		msg += fmt.Sprintf(", pass %q", e.Pass)
	}
	if e.Func != "" {
		msg += fmt.Sprintf(", func %s", e.Func)
	}
	return msg + ": " + e.Err.Error()
}

func (e *CheckError) Unwrap() error { return e.Err }

// sizeEntry is a single-flight slot of the whole-configuration cache.
type sizeEntry struct {
	done chan struct{}
	size int
}

// lookup finds or creates the single-flight slot for cfg. isNew reports
// whether the caller owns the computation (and must close e.done).
//
// The key is Config.CacheKey — the raw bitset words, O(words) to build and
// far denser than the canonical decimal Key the old cache sorted out per
// call. Retention matters as much as speed here: the cache holds hundreds
// of thousands of entries on big runs, and a compact pointer-free key per
// entry keeps the live heap (and so every GC scan) small.
func (c *Compiler) lookup(cfg *callgraph.Config) (e *sizeEntry, isNew bool) {
	key := cfg.CacheKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.cache[key]; ok {
		return e, false
	}
	e = &sizeEntry{done: make(chan struct{})}
	c.cache[key] = e
	return e, true
}

// New prepares a compiler for the module. The module is cloned defensively;
// callers may keep using the original. Site IDs are assigned if absent.
func New(m *ir.Module, target codegen.Target) *Compiler {
	return NewWithOptions(m, target, Options{})
}

// NewWithOptions is New with explicit options (checked compilation mode).
func NewWithOptions(m *ir.Module, target codegen.Target, opts Options) *Compiler {
	base := m.Clone()
	base.AssignSites()
	g := callgraph.Build(base)
	fc := opts.FnCache
	if fc == nil {
		fc = NewFnCache()
	}
	return &Compiler{
		base:        base,
		graph:       g,
		target:      target,
		fingerprint: base.Fingerprint(),
		cache:       make(map[string]*sizeEntry),
		memo:        buildMemo(base, g),
		memoize:     true,
		delta:       true,
		fncache:     fc,
		fncacheOn:   true,
		check:       opts.Check,
	}
}

// Checked reports whether checked compilation mode is enabled.
func (c *Compiler) Checked() bool { return c.check }

// CheckFailure returns the first checked-mode invariant violation observed
// by a Size evaluation, or nil. Size must map build failures to InfSize to
// stay a total function for the search algorithms, so checked-mode
// violations are latched here for the caller to inspect after a run.
func (c *Compiler) CheckFailure() error {
	c.checkMu.Lock()
	defer c.checkMu.Unlock()
	return c.checkErr
}

func (c *Compiler) recordCheckFailure(err error) {
	c.checkMu.Lock()
	if c.checkErr == nil {
		c.checkErr = err
	}
	c.checkMu.Unlock()
}

// SetMemoize switches the per-function memoized evaluation path on or off
// (on by default). Off, every cache miss runs the whole-module pipeline —
// kept for benchmarking and for differential tests of the memo engine
// itself. Not safe to call concurrently with Size.
func (c *Compiler) SetMemoize(on bool) { c.memoize = on }

// SetDelta switches the incremental delta-evaluation path on or off (on by
// default). Off, Sized/SizeDelta/Rebase fall back to whole-configuration
// Size calls — the differential oracle behind the CLIs' -no-delta flags.
// Not safe to call concurrently with Size.
func (c *Compiler) SetDelta(on bool) { c.delta = on }

// SetFnCache switches the content-addressed per-function cache on or off
// (on by default). Off, per-function sizes are keyed by the legacy
// (module fingerprint, function name, closure site list) string — an
// identity with no cross-module or cross-run sharing — which is the
// differential oracle behind the CLIs' -no-fncache flags. Not safe to call
// concurrently with Size.
func (c *Compiler) SetFnCache(on bool) { c.fncacheOn = on }

// FnCacheEnabled reports whether per-function sizes go through the content
// cache. Like the delta path, it rides on the per-function memo layer, so
// it is off whenever memoization is off, and checked mode forces the
// uncached whole-module path.
func (c *Compiler) FnCacheEnabled() bool { return c.fncacheOn && c.memoize && !c.check }

// FnCache returns the content-addressed cache this compiler resolves
// per-function sizes in (its own private one unless Options.FnCache
// injected a shared instance).
func (c *Compiler) FnCache() *FnCache { return c.fncache }

// DeltaEnabled reports whether SizeDelta prices toggles incrementally.
// The delta path rides on the per-function memo, so it is off whenever the
// memo is off — and checked mode forces the full pipeline for the same
// reason the memo does: skipping whole-module compilations would skip
// exactly the work being checked.
func (c *Compiler) DeltaEnabled() bool { return c.delta && c.memoize && !c.check }

// Fingerprint returns the base module's fingerprint; per-function cache
// entries are keyed under it.
func (c *Compiler) Fingerprint() uint64 { return c.fingerprint }

// Graph returns the inlining-candidate call graph of the base module.
func (c *Compiler) Graph() *callgraph.Graph { return c.graph }

// Module returns the (site-assigned) base module.
func (c *Compiler) Module() *ir.Module { return c.base }

// Target returns the codegen target being measured.
func (c *Compiler) Target() codegen.Target { return c.target }

// Build runs the full pipeline for a configuration and returns the
// optimized module. It does not consult or fill the size cache. In checked
// mode the pipeline verifies after every inline expansion and every opt
// pass, and any violation is returned as a *CheckError naming the stage and
// pass that introduced it.
func (c *Compiler) Build(cfg *callgraph.Config) (*ir.Module, error) {
	m := c.base.Clone()
	if c.check {
		if err := m.Verify(); err != nil {
			return nil, &CheckError{Stage: "input", Err: err}
		}
	}
	iopts := inline.Options{}
	if c.check {
		iopts.Check = func(string) error { return m.Verify() }
	}
	if err := inline.Apply(m, cfg, iopts); err != nil {
		var se *inline.StepError
		if errors.As(err, &se) {
			return nil, &CheckError{Stage: "inline", Pass: se.Step, Err: se.Err}
		}
		return nil, err
	}
	// Label-based dead-function elimination: an internal function whose
	// every original call edge is labeled inline is removable. This
	// predicate depends only on labels of edges incident to the function,
	// which keeps independent components exactly independent (DESIGN.md).
	removable := c.graph.CalleesAllInline(cfg)
	opt.RemoveDeadFunctions(m, func(name string) bool { return removable[name] })
	if !c.check {
		opt.Module(m)
		return m, nil
	}

	if err := m.Verify(); err != nil {
		return nil, &CheckError{Stage: "dead-function-elimination", Err: err}
	}
	// Per-pass verification: structural invariants plus the mid-pipeline
	// analyzer suite (error severity only; Warning-level findings like
	// not-yet-folded constant conditions are expected mid-flight).
	perPass := func(pass string, f *ir.Function) error {
		if err := f.Verify(); err != nil {
			return err
		}
		if ds := analysis.RunFunction(m, f, analysis.Options{}).MinSeverity(diag.Error); len(ds) > 0 {
			return fmt.Errorf("analyzer %s: %s", ds[0].Analyzer, ds[0].Message)
		}
		return nil
	}
	if _, err := opt.ModuleChecked(m, perPass); err != nil {
		var pe *opt.PassError
		if errors.As(err, &pe) {
			return nil, &CheckError{Stage: "opt", Pass: pe.Pass, Func: pe.Func, Err: pe.Err}
		}
		return nil, &CheckError{Stage: "opt", Err: err}
	}
	// Post-pipeline audit: the full analyzer suite with the fixpoint
	// guarantees (no unreachable blocks, no constant conditions, no dead
	// pure instructions, no unused block parameters) escalated to errors.
	if err := m.Verify(); err != nil {
		return nil, &CheckError{Stage: "post-pipeline", Err: err}
	}
	if ds := analysis.RunModule(m, analysis.Options{PostPipeline: true}).MinSeverity(diag.Error); len(ds) > 0 {
		return nil, &CheckError{
			Stage: "post-pipeline",
			Pass:  "analysis",
			Diags: ds,
			Err:   fmt.Errorf("%d analyzer error(s), first: %s", len(ds), ds[0]),
		}
	}
	return m, nil
}

// Size returns the .text size of the configuration, compiling at most once
// per canonical configuration. Concurrent calls for the same configuration
// share one compilation (single-flight), so the evaluation counter counts
// distinct configurations regardless of scheduling.
func (c *Compiler) Size(cfg *callgraph.Config) int {
	e, isNew := c.lookup(cfg)
	if !isNew {
		<-e.done
		c.hits.Add(1)
		return e.size
	}
	e.size = c.measure(cfg)
	close(e.done)
	return e.size
}

func (c *Compiler) measure(cfg *callgraph.Config) int {
	c.evals.Add(1)
	// Checked mode forces the full-pipeline path: the memo engine skips
	// whole-module compilations, which is exactly the work being checked.
	if c.memoize && !c.check {
		return c.measureMemo(cfg)
	}
	m, err := c.Build(cfg)
	if err != nil {
		var ce *CheckError
		if errors.As(err, &ce) {
			c.recordCheckFailure(err)
		}
		c.errors.Add(1)
		return InfSize
	}
	return codegen.ModuleSize(m, c.target)
}

// SizeParallel evaluates many configurations concurrently and returns their
// sizes in order. workers <= 0 selects GOMAXPROCS.
func (c *Compiler) SizeParallel(cfgs []*callgraph.Config, workers int) []int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]int, len(cfgs))
	if workers <= 1 {
		for i, cfg := range cfgs {
			out[i] = c.Size(cfg)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				out[i] = c.Size(cfgs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Evaluations returns the number of distinct configurations evaluated so
// far (configuration-cache misses).
func (c *Compiler) Evaluations() int64 { return c.evals.Load() }

// CacheHits returns the number of size requests served from the
// configuration cache.
func (c *Compiler) CacheHits() int64 { return c.hits.Load() }

// Errors returns the number of configurations that failed to compile.
func (c *Compiler) Errors() int64 { return c.errors.Load() }

// ConfigCacheStats returns the whole-configuration cache counters.
func (c *Compiler) ConfigCacheStats() stats.CacheStats {
	return stats.CacheStats{Hits: c.hits.Load(), Misses: c.evals.Load()}
}

// FuncCacheStats returns the per-function memo cache counters; a hit means
// a function's compilation was skipped because another configuration
// already compiled it with the same inline-closure labels.
func (c *Compiler) FuncCacheStats() stats.CacheStats {
	return stats.CacheStats{Hits: c.funcHits.Load(), Misses: c.funcMisses.Load()}
}

// DeltaStats returns the delta engine's counters: how many configurations
// were priced incrementally and how many dirty functions those prices
// touched in total (everything else was reused from the base handle).
func (c *Compiler) DeltaStats() stats.DeltaStats {
	return stats.DeltaStats{Evals: c.deltaEvals.Load(), DirtyFuncs: c.deltaDirty.Load()}
}
