package compile

import (
	"sync"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/interp"
	"optinline/internal/ir"
)

const src = `
func @wrapper(%x) {
entry:
  %r = call @work(%x) !site 1
  ret %r
}

func @work(%x) {
entry:
  %two = const 2
  %a = mul %x, %two
  %b = add %a, %x
  ret %b
}

func @huge(%x) {
entry:
  %a1 = mul %x, %x
  %a2 = mul %a1, %x
  %a3 = mul %a2, %x
  %a4 = mul %a3, %x
  %a5 = add %a4, %a3
  %a6 = add %a5, %a2
  %a7 = add %a6, %a1
  %a8 = mul %a7, %x
  %a9 = add %a8, %a7
  %a10 = mul %a9, %a9
  ret %a10
}

export func @main(%n) {
entry:
  %a = call @wrapper(%n) !site 2
  %b = call @huge(%n) !site 3
  %c = call @huge(%a) !site 4
  %s = add %a, %b
  %t = add %s, %c
  output %t
  ret %t
}
`

func newCompiler(t *testing.T) *Compiler {
	t.Helper()
	m, err := ir.Parse("cmp", src)
	if err != nil {
		t.Fatal(err)
	}
	return New(m, codegen.TargetX86)
}

func TestSizeIsDeterministic(t *testing.T) {
	c1, c2 := newCompiler(t), newCompiler(t)
	cfg := callgraph.NewConfig().Set(1, true).Set(3, true)
	if c1.Size(cfg) != c2.Size(cfg) {
		t.Fatal("size not deterministic across compilers")
	}
	if c1.Size(cfg) != c1.Size(cfg.Clone()) {
		t.Fatal("size not deterministic across equivalent configs")
	}
}

func TestSizeCaching(t *testing.T) {
	c := newCompiler(t)
	cfg := callgraph.NewConfig().Set(1, true)
	s1 := c.Size(cfg)
	evals := c.Evaluations()
	s2 := c.Size(cfg.Clone())
	if s1 != s2 {
		t.Fatal("cached size differs")
	}
	if c.Evaluations() != evals {
		t.Fatal("cache miss on identical config")
	}
	if c.CacheHits() == 0 {
		t.Fatal("hit counter not incremented")
	}
}

func TestInliningWrapperShrinks(t *testing.T) {
	c := newCompiler(t)
	clean := c.Size(callgraph.NewConfig())
	inlined := c.Size(callgraph.NewConfig().Set(2, true).Set(1, true))
	if inlined >= clean {
		t.Fatalf("inlining trivial wrappers should shrink: %d -> %d", clean, inlined)
	}
}

func TestInliningHugeCalleeGrows(t *testing.T) {
	c := newCompiler(t)
	clean := c.Size(callgraph.NewConfig())
	// Inlining only one of huge's two call sites duplicates the body
	// without removing the function.
	one := c.Size(callgraph.NewConfig().Set(3, true))
	if one <= clean {
		t.Fatalf("duplicating a huge callee should grow: %d -> %d", clean, one)
	}
}

func TestLabelBasedDFE(t *testing.T) {
	c := newCompiler(t)
	// All call sites into huge inlined: huge (internal) must be removed.
	cfg := callgraph.NewConfig().Set(3, true).Set(4, true)
	m, err := c.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("huge") != nil {
		t.Fatal("fully inlined internal callee not removed")
	}
	// One remaining no-inline edge keeps it alive.
	m, err = c.Build(callgraph.NewConfig().Set(3, true))
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("huge") == nil {
		t.Fatal("callee with a surviving call site was removed")
	}
	// Exported functions are never removed.
	if m.Func("main") == nil {
		t.Fatal("exported function removed")
	}
}

func TestBuildPreservesSemantics(t *testing.T) {
	c := newCompiler(t)
	base, err := interp.Run(c.Module(), "main", []int64{5}, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []*callgraph.Config{
		callgraph.NewConfig(),
		callgraph.NewConfig().Set(1, true).Set(2, true).Set(3, true).Set(4, true),
		callgraph.NewConfig().Set(2, true),
	} {
		m, err := c.Build(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		got, err := interp.Run(m, "main", []int64{5}, interp.Options{})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if got.Observable() != base.Observable() {
			t.Fatalf("%v changed behaviour", cfg)
		}
	}
}

func TestSizeParallelMatchesSequential(t *testing.T) {
	c := newCompiler(t)
	sites := c.Graph().Sites()
	var cfgs []*callgraph.Config
	for mask := 0; mask < 16; mask++ {
		cfg := callgraph.NewConfig()
		for i, s := range sites {
			if mask&(1<<i) != 0 {
				cfg.Set(s, true)
			}
		}
		cfgs = append(cfgs, cfg)
	}
	seq := newCompiler(t)
	want := make([]int, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = seq.Size(cfg)
	}
	got := c.SizeParallel(cfgs, 8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cfg %d: parallel %d != sequential %d", i, got[i], want[i])
		}
	}
}

func TestConcurrentSizeIsSafe(t *testing.T) {
	c := newCompiler(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cfg := callgraph.NewConfig()
				for s := 1; s <= 4; s++ {
					if (seed+i)&s != 0 {
						cfg.Set(s, true)
					}
				}
				c.Size(cfg)
			}
		}(w)
	}
	wg.Wait()
}

func TestNewAssignsSitesAndIsDefensive(t *testing.T) {
	m := ir.NewModule("fresh")
	b := ir.NewFunction("callee", 1, false)
	b.Ret(b.Param(0))
	m.AddFunc(b.Fn)
	mb := ir.NewFunction("main", 1, true)
	r := mb.Call("callee", mb.Param(0))
	mb.Ret(r)
	m.AddFunc(mb.Fn)
	// No sites assigned yet; New must handle it.
	c := New(m, codegen.TargetX86)
	if len(c.Graph().Edges) != 1 {
		t.Fatalf("edges=%d", len(c.Graph().Edges))
	}
	// The original module must be untouched (still unassigned).
	if m.MaxSite() != 0 {
		t.Fatal("New mutated the caller's module")
	}
}

func TestIndependenceOfComponents(t *testing.T) {
	// Two disjoint call chains in one module: the size delta of toggling
	// an edge in one chain must not depend on labels in the other. This is
	// the exactness property of the recursively partitioned search.
	twoComp := `
func @a1(%x) {
entry:
  %c = const 3
  %r = mul %x, %c
  ret %r
}
func @a0(%x) {
entry:
  %r = call @a1(%x) !site 1
  ret %r
}
func @b1(%x) {
entry:
  %c = const 9
  %r = add %x, %c
  ret %r
}
func @b0(%x) {
entry:
  %r = call @b1(%x) !site 2
  ret %r
}
export func @mainA(%x) {
entry:
  %r = call @a0(%x) !site 3
  ret %r
}
export func @mainB(%x) {
entry:
  %r = call @b0(%x) !site 4
  ret %r
}
`
	m, err := ir.Parse("ind", twoComp)
	if err != nil {
		t.Fatal(err)
	}
	c := New(m, codegen.TargetX86)
	// Delta of toggling site 3 must be identical across all labelings of
	// the B component.
	for _, s1 := range []bool{false, true} {
		var ref *int
		for maskB := 0; maskB < 4; maskB++ {
			base := callgraph.NewConfig()
			if maskB&1 != 0 {
				base.Set(2, true)
			}
			if maskB&2 != 0 {
				base.Set(4, true)
			}
			if s1 {
				base.Set(1, true)
			}
			d := c.Size(base.Clone().Set(3, true)) - c.Size(base)
			if ref == nil {
				ref = &d
			} else if *ref != d {
				t.Fatalf("component independence violated: delta %d vs %d", *ref, d)
			}
		}
	}
}
