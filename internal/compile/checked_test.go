package compile

import (
	"errors"
	"strings"
	"testing"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/ir"
	"optinline/internal/lang"
)

func chainModule(t *testing.T) *ir.Module {
	t.Helper()
	m, err := lang.Compile("chain.minc", `
func leaf(k) {
    return k + 1;
}
func mid(k) {
    return leaf(k) * 2;
}
export func entry(n) {
    return mid(n) + leaf(n);
}`)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func everySite(c *Compiler) *callgraph.Config {
	cfg := callgraph.NewConfig()
	for _, e := range c.Graph().Edges {
		cfg.Set(e.Site, true)
	}
	return cfg
}

func TestCheckedBuildMatchesUnchecked(t *testing.T) {
	mod := chainModule(t)
	plain := New(mod, codegen.TargetX86)
	chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
	if !chk.Checked() || plain.Checked() {
		t.Fatal("Checked() accessor wrong")
	}
	for _, cfg := range []*callgraph.Config{callgraph.NewConfig(), everySite(plain)} {
		pm, err := plain.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := chk.Build(cfg)
		if err != nil {
			t.Fatalf("checked build: %v", err)
		}
		if pm.String() != cm.String() {
			t.Errorf("cfg %v: checked mode changed the build output", cfg)
		}
	}
}

func TestCheckedModeBypassesMemoPath(t *testing.T) {
	mod := chainModule(t)
	chk := NewWithOptions(mod, codegen.TargetX86, Options{Check: true})
	chk.Size(everySite(chk))
	if st := chk.FuncCacheStats(); st.Hits != 0 || st.Misses != 0 {
		t.Errorf("checked Size used the memo engine (%v); it must run the full pipeline", st)
	}
	if chk.Evaluations() != 1 {
		t.Errorf("evaluations = %d, want 1", chk.Evaluations())
	}
	if err := chk.CheckFailure(); err != nil {
		t.Errorf("unexpected check failure: %v", err)
	}
}

// TestCheckedBuildFlagsInvalidInput feeds checked mode a module that
// violates a Verify invariant (a call to a defined function with the wrong
// arity) and expects an input-stage CheckError, a latched CheckFailure, and
// an InfSize — while unchecked mode compiles the same module without noticing.
func TestCheckedBuildFlagsInvalidInput(t *testing.T) {
	callee := ir.NewFunction("callee", 2, false)
	callee.Ret(callee.Param(0))
	caller := ir.NewFunction("entry", 1, true)
	caller.Ret(caller.Call("callee", caller.Param(0))) // arity 1, want 2
	m := ir.NewModule("bad")
	m.AddFunc(callee.Fn)
	m.AddFunc(caller.Fn)

	chk := NewWithOptions(m, codegen.TargetX86, Options{Check: true})
	_, err := chk.Build(callgraph.NewConfig())
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CheckError", err)
	}
	if ce.Stage != "input" {
		t.Errorf("Stage = %q, want input", ce.Stage)
	}
	if !strings.Contains(ce.Error(), "stage") {
		t.Errorf("Error() should name the stage: %q", ce.Error())
	}

	// Size must stay total (InfSize) but latch the violation.
	if size := chk.Size(callgraph.NewConfig()); size != InfSize {
		t.Errorf("Size = %d, want InfSize", size)
	}
	if cerr := chk.CheckFailure(); cerr == nil {
		t.Error("CheckFailure() = nil, want the latched CheckError")
	}

	// Unchecked mode happily compiles the same module — that asymmetry is
	// the point of the mode.
	plain := New(m, codegen.TargetX86)
	if _, err := plain.Build(callgraph.NewConfig()); err != nil {
		t.Errorf("unchecked build should not verify: %v", err)
	}
}

func TestCheckErrorFormatting(t *testing.T) {
	e := &CheckError{Stage: "opt", Pass: "fold-branches", Func: "f", Err: errors.New("boom")}
	msg := e.Error()
	for _, want := range []string{"opt", "fold-branches", "func f", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
	if !errors.Is(e, e.Err) {
		t.Error("CheckError must unwrap to the underlying error")
	}
}
