package compile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"optinline/internal/callgraph"
	"optinline/internal/codegen"
	"optinline/internal/inline"
	"optinline/internal/ir"
	"optinline/internal/opt"
)

// This file implements the memoized evaluation engine: instead of running
// the full pipeline over the whole module for every configuration, each
// function's post-pipeline encoded size is cached keyed by
// (module fingerprint, function, inlined sites in its inline closure).
//
// The inline closure of a function f under a configuration is the smallest
// set of functions containing f that is closed under "callee of an
// inline-labeled site owned by a member". Only those labels can reach f's
// final code:
//
//   - a non-inlined site stays a plain call and never changes the caller's
//     body, so only inline-labeled sites matter;
//   - inline.Apply is a FIFO work queue seeded by scanning functions in
//     module order; an expansion mutates only the function containing the
//     site and enqueues only sites inside that function, so restricting the
//     module to f's closure (kept in module order) yields exactly the
//     projection of the global event sequence that touches the closure —
//     f's expanded body is bit-identical to the whole-module run;
//   - the optimization pipeline is function-local (package opt);
//   - dead-function elimination is label-based and decided analytically
//     from the labels of the callee's incoming edges (CalleesAllInline), so
//     survival needs no compilation at all;
//   - the size metric is additive per function (package codegen).
//
// Size(cfg) is therefore the sum of cached per-function sizes over the
// surviving functions. A configuration that differs from an evaluated one
// in a few labels recompiles only the functions whose closures contain a
// flipped site — during the recursive search, sibling subtrees share the
// rest. The one deliberate approximation is the inliner's global growth
// bound (inline.DefaultMaxInstrs): the memoized path applies it per
// closure rather than module-wide, so the two paths can diverge only on
// configurations that trip the 4M-instruction safety valve, which the
// corpus never approaches (and both paths still return InfSize for any
// closure that trips it alone).

// funcInfo is the per-function slice of the candidate graph.
type funcInfo struct {
	name     string
	idx      int   // module order
	exported bool
	sites    []int // candidate sites owned (caller side), ascending
}

// memoState holds the per-function site ownership and the size cache.
type memoState struct {
	funcs      []*funcInfo // module order
	siteCallee map[int]*funcInfo

	mu      sync.Mutex
	entries map[string]*memoEntry
}

// memoEntry is a single-flight cache slot: the first requester computes,
// concurrent requesters for the same key wait on done.
type memoEntry struct {
	done chan struct{}
	size int
}

// buildMemo indexes site ownership per function.
func buildMemo(base *ir.Module, g *callgraph.Graph) *memoState {
	ms := &memoState{
		siteCallee: make(map[int]*funcInfo),
		entries:    make(map[string]*memoEntry),
	}
	byName := make(map[string]*funcInfo, len(base.Funcs))
	for i, f := range base.Funcs {
		fi := &funcInfo{name: f.Name, idx: i, exported: f.Exported}
		ms.funcs = append(ms.funcs, fi)
		byName[f.Name] = fi
	}
	for _, e := range g.Edges {
		caller := byName[e.Caller]
		caller.sites = append(caller.sites, e.Site)
		ms.siteCallee[e.Site] = byName[e.Callee]
	}
	for _, fi := range ms.funcs {
		sort.Ints(fi.sites)
	}
	return ms
}

// closure returns f's inline closure under cfg (module order) and the
// inline-labeled sites owned by its members — the cache identity of f's
// final code.
func (ms *memoState) closure(f *funcInfo, cfg *callgraph.Config) ([]*funcInfo, []int) {
	members := []*funcInfo{f}
	seen := map[*funcInfo]bool{f: true}
	var inlined []int
	for i := 0; i < len(members); i++ {
		for _, s := range members[i].sites {
			if !cfg.Inline(s) {
				continue
			}
			inlined = append(inlined, s)
			if callee := ms.siteCallee[s]; !seen[callee] {
				seen[callee] = true
				members = append(members, callee)
			}
		}
	}
	// Module order matters: inline.Apply seeds its work queue by scanning
	// functions in module order, and with recursion trails the expansion
	// fixpoint depends on that order. Keeping it makes the sub-module
	// queue an exact projection of the whole-module one.
	sort.Slice(members, func(i, j int) bool { return members[i].idx < members[j].idx })
	sort.Ints(inlined)
	return members, inlined
}

// measureMemo is the memoized equivalent of one whole-module pipeline run:
// label-based DFE decides survival analytically, and each survivor's size
// comes from the per-closure cache.
func (c *Compiler) measureMemo(cfg *callgraph.Config) int {
	removable := c.graph.CalleesAllInline(cfg)
	total := 0
	for _, fi := range c.memo.funcs {
		if !fi.exported && removable[fi.name] {
			continue
		}
		s := c.funcSize(fi, cfg)
		if s == InfSize {
			c.errors.Add(1)
			return InfSize
		}
		total += s
	}
	return total
}

// funcSize returns fi's post-pipeline encoded size under cfg, computing it
// at most once per closure configuration (single-flight, so concurrent
// search workers requesting the same closure share one compilation).
func (c *Compiler) funcSize(fi *funcInfo, cfg *callgraph.Config) int {
	members, inlined := c.memo.closure(fi, cfg)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%016x/%s/", c.fingerprint, fi.name)
	for i, s := range inlined {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(s))
	}
	key := sb.String()

	ms := c.memo
	ms.mu.Lock()
	if e, ok := ms.entries[key]; ok {
		ms.mu.Unlock()
		<-e.done
		c.funcHits.Add(1)
		return e.size
	}
	e := &memoEntry{done: make(chan struct{})}
	ms.entries[key] = e
	ms.mu.Unlock()

	c.funcMisses.Add(1)
	e.size = c.compileClosure(fi, members, cfg)
	close(e.done)
	return e.size
}

// compileClosure runs inlining over just the closure's functions and
// optimizes + measures the one function of interest.
func (c *Compiler) compileClosure(fi *funcInfo, members []*funcInfo, cfg *callgraph.Config) int {
	sub := ir.NewModule(c.base.Name)
	for _, g := range c.base.Globals {
		sub.AddGlobal(g)
	}
	for _, m := range members {
		sub.AddFunc(c.base.Func(m.name).Clone())
	}
	if err := inline.Apply(sub, cfg, inline.Options{}); err != nil {
		return InfSize
	}
	fn := sub.Func(fi.name)
	opt.Function(fn)
	return codegen.FunctionSize(fn, c.target)
}
